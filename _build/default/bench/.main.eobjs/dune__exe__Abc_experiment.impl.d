bench/abc_experiment.ml: Cold Cold_context Cold_prng Config List Printf
