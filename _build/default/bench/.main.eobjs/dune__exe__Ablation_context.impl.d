bench/ablation_context.ml: Array Cold Cold_context Cold_geom Cold_metrics Cold_prng Cold_stats Cold_traffic Config Float List Printf
