bench/ablation_cost.ml: Cold Cold_context Cold_graph Cold_metrics Cold_prng Config Format Printf
