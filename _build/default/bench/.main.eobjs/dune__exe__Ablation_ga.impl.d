bench/ablation_ga.ml: Array Cold Cold_context Cold_prng Cold_stats Config Printf
