bench/ablation_optimizer.ml: Array Cold Cold_context Cold_prng Cold_stats Config Float Hashtbl Option Printf
