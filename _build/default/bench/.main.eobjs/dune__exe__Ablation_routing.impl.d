bench/ablation_routing.ml: Array Cold Cold_context Cold_net Cold_prng Cold_stats Config Float List Printf
