bench/config.ml: Cold Cold_prng Cold_stats Printf String Sys Unix
