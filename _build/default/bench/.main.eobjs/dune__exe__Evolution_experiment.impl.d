bench/evolution_experiment.ml: Cold Cold_graph Cold_net Cold_prng Config Float List Printf
