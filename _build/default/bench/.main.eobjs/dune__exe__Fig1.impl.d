bench/fig1.ml: Cold_dk Cold_graph Cold_prng Config List Printf
