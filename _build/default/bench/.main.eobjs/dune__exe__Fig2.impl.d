bench/fig2.ml: Cold_baselines Cold_dk Cold_graph Cold_metrics Cold_prng Config Format Printf
