bench/fig4.ml: Array Cold Cold_context Cold_prng Cold_stats Config List Printf
