bench/ga_hotpath.ml: Cold Cold_context Cold_par Cold_prng Config Float Fun List Printf String
