bench/ga_optimality.ml: Cold Cold_context Cold_prng Config List Printf
