bench/hubcost.ml: Array Cold Cold_context Cold_metrics Cold_prng Cold_stats Cold_zoo Config Format List Printf
