bench/main.mli:
