bench/micro.ml: Analyze Bechamel Benchmark Cold Cold_context Cold_dk Cold_graph Cold_metrics Cold_net Cold_prng Config Hashtbl List Measure Printf Staged Test Time Toolkit
