bench/table1.ml: Array Cold_baselines Config Format List Printf
