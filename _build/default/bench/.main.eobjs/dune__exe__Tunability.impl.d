bench/tunability.ml: Array Cold Cold_context Cold_metrics Cold_prng Cold_stats Config List Printf
