(* X7: ABC parameter recovery. §8 proposes "statistical estimation
   techniques, most notably ABC ... to map real networks to parameters ki".
   We close the loop: synthesize a network at known parameters, observe only
   its summary statistics, run rejection-ABC, and check the posterior
   recovers the bandwidth cost k2 (the parameter with the strongest
   observable signature) to within an order of magnitude. *)

module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Abc = Cold.Abc
module Cost = Cold.Cost

let run () =
  Config.section "X7: ABC parameter recovery (§8 future work)";
  let truths = [ 1.0e-4; 8.0e-4 ] in
  let trials = match Config.scale with Config.Smoke -> 15 | Config.Quick -> 40 | Config.Full -> 200 in
  let ok = ref true in
  List.iter
    (fun k2_true ->
      let params = Cost.params ~k2:k2_true ~k3:10.0 () in
      let cfg = Config.synthesis_config ~params () in
      let rng = Prng.create (Config.master_seed + 901) in
      let ctx = Context.generate (Context.default_spec ~n:20) rng in
      let result = Cold.Synthesis.design_ga cfg ctx rng in
      let obs = Abc.observe result.Cold.Ga.best in
      let samples =
        Abc.infer ~trials ~epsilon:0.4 obs ~seed:(Config.master_seed + 902)
      in
      match Abc.posterior_mean samples with
      | None ->
        ok := false;
        Printf.printf "k2 = %.1e: no acceptance in %d trials\n" k2_true trials
      | Some p ->
        let ratio = p.Cost.k2 /. k2_true in
        let recovered = ratio > 0.1 && ratio < 10.0 in
        if not recovered then ok := false;
        Printf.printf
          "k2 = %.1e: accepted %3d/%3d, posterior k2 = %.1e (ratio %.2f), k3 = %.1f\n"
          k2_true (List.length samples) trials p.Cost.k2 ratio p.Cost.k3)
    truths;
  Printf.printf
    "\nshape check: k2 recovered within an order of magnitude for all truths: %b\n"
    !ok
