(* X2 (§3.1, §7): context insensitivity. The paper found that bursty PoP
   locations, long-thin regions, and heavy-tailed (Pareto) traffic change the
   PoP-level topology statistics only mildly — in particular none of them
   raises CVND the way the explicit hub cost k3 does. *)

module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Point_process = Cold_geom.Point_process
module Region = Cold_geom.Region
module Population = Cold_traffic.Population
module Summary = Cold_metrics.Summary
module Cost = Cold.Cost
module D = Cold_stats.Descriptive

let variants =
  [
    ("baseline (uniform, exp)", Context.default_spec ~n:0);
    ( "bursty PoPs",
      { (Context.default_spec ~n:0) with
        (* sigma = 5 % of the region side. *)
        Context.point_process = Point_process.Bursty { clusters = 5; sigma = 2.5 } } );
    ( "aspect 4:1 region",
      { (Context.default_spec ~n:0) with
        Context.region =
          Region.rectangle ~aspect:4.0 ~area:(Region.area Context.default_region) } );
    ( "Pareto 1.5 traffic",
      { (Context.default_spec ~n:0) with Context.population = Population.pareto_moderate } );
    ( "Pareto 10/9 traffic",
      { (Context.default_spec ~n:0) with Context.population = Population.pareto_heavy } );
  ]

let stats_for spec ~params label =
  let cfg = Config.synthesis_config ~params () in
  let summaries =
    Array.init Config.trials (fun t ->
        let rng =
          Prng.split_at
            (Prng.create (Cold_prng.Prng.seed_of_string label))
            t
        in
        let ctx = Context.generate { spec with Context.n = Config.n_pops } rng in
        let result = Cold.Synthesis.design_ga cfg ctx rng in
        Summary.compute result.Cold.Ga.best)
  in
  ( D.mean (Array.map (fun s -> s.Summary.average_degree) summaries),
    D.mean (Array.map (fun s -> s.Summary.cvnd) summaries) )

let run () =
  Config.section "X2: context-sensitivity ablation (§3.1/§7)";
  let params = Cost.params ~k2:1e-4 () in
  Printf.printf "k0=10 k1=1 k2=1e-4 k3=0, n=%d, %d trials per variant\n\n"
    Config.n_pops Config.trials;
  Printf.printf "%-26s %12s %8s\n" "context variant" "avg degree" "CVND";
  let results =
    List.map
      (fun (label, spec) ->
        let (deg, cvnd) = stats_for spec ~params label in
        Printf.printf "%-26s %12.3f %8.3f\n" label deg cvnd;
        (label, deg, cvnd))
      variants
  in
  (* For contrast: the k3 knob at the same k2. *)
  let (k3_deg, k3_cvnd) =
    stats_for (Context.default_spec ~n:0) ~params:(Cost.params ~k2:1e-4 ~k3:300.0 ())
      "ablation-k3-contrast"
  in
  Printf.printf "%-26s %12.3f %8.3f\n" "baseline + k3 = 300" k3_deg k3_cvnd;
  let (_, _, base_cvnd) = List.hd results in
  let max_context_shift =
    List.fold_left
      (fun acc (_, _, cvnd) -> Float.max acc (Float.abs (cvnd -. base_cvnd)))
      0.0 (List.tl results)
  in
  let k3_shift = Float.abs (k3_cvnd -. base_cvnd) in
  Printf.printf
    "\nshape check: max CVND shift from context variants %.3f << shift from hub cost %.3f: %b\n"
    max_context_shift k3_shift
    (k3_shift > 2.0 *. max_context_shift)
