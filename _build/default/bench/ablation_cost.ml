(* X4 (§3.2.3): single-cost dominance sanity. When one cost component
   dominates, the optimal topology collapses to a known family:
   k0 -> spanning trees, k1 -> the Euclidean MST, k2 -> the clique,
   k3 -> hub-and-spoke. Verified against brute-force enumeration. *)

module Graph = Cold_graph.Graph
module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Cost = Cold.Cost
module Degree = Cold_metrics.Degree

let run () =
  Config.section "X4: cost-term dominance (brute-force verified)";
  let n = min Config.brute_force_n 6 in
  let rng = Prng.create (Config.master_seed + 4242) in
  let ctx = Context.generate (Context.default_spec ~n) rng in
  let check label params predicate =
    let (opt, _) = Cold.Brute_force.optimal params ctx in
    let ok = predicate opt in
    Printf.printf "%-14s -> %-40s %b\n" label (Format.asprintf "%a" Graph.pp opt) ok;
    ok
  in
  let mst = Cold.Heuristics.mst_topology ctx in
  let ok0 =
    check "k0 dominant" (Cost.params ~k0:1e6 ~k1:1.0 ~k2:1e-9 ~k3:0.0 ())
      (fun g -> Graph.edge_count g = n - 1)
  in
  let ok1 =
    check "k1 dominant" (Cost.params ~k0:0.0 ~k1:1.0 ~k2:1e-9 ~k3:0.0 ())
      (fun g -> Graph.equal g mst)
  in
  let ok2 =
    check "k2 dominant" (Cost.params ~k0:0.0 ~k1:0.0 ~k2:1.0 ~k3:0.0 ())
      (fun g -> Graph.edge_count g = n * (n - 1) / 2)
  in
  let ok3 =
    check "k3 dominant" (Cost.params ~k0:1.0 ~k1:1.0 ~k2:1e-9 ~k3:1e6 ())
      (fun g -> Degree.hub_count g = 1)
  in
  Printf.printf "\nshape check: all four dominance regimes verified: %b\n"
    (ok0 && ok1 && ok2 && ok3)
