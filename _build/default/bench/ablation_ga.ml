(* X3 (§5): GA settings sensitivity. The paper reports that quadrupling both
   the population and the generations improves the best cost by at most
   ~10 % — T = M = 100 is already a good operating point. We compare the
   harness's GA against a double-sized one on shared contexts. *)

module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Cost = Cold.Cost
module Ga = Cold.Ga

let scaled s factor =
  {
    s with
    Ga.population_size = s.Ga.population_size * factor;
    generations = s.Ga.generations * factor;
    num_saved = s.Ga.num_saved * factor;
    num_crossover = s.Ga.num_crossover * factor;
    num_mutation = s.Ga.num_mutation * factor;
  }

let run () =
  Config.section "X3: GA settings sensitivity (bigger M, T)";
  let params = Cost.params ~k2:2e-4 ~k3:10.0 () in
  let base = Config.ga_settings in
  let big = scaled base 2 in
  Printf.printf "base: M=%d T=%d   doubled: M=%d T=%d   (%d contexts)\n\n"
    base.Ga.population_size base.Ga.generations big.Ga.population_size
    big.Ga.generations Config.trials;
  let improvements =
    Array.init Config.trials (fun t ->
        let rng = Prng.split_at (Prng.create (Config.master_seed + 555)) t in
        let ctx = Context.generate (Context.default_spec ~n:Config.n_pops) rng in
        let c_base = (Ga.run base params ctx (Prng.split_at rng 1)).Ga.best_cost in
        let c_big = (Ga.run big params ctx (Prng.split_at rng 2)).Ga.best_cost in
        let gain = (c_base -. c_big) /. c_base in
        Printf.printf "context %d: base %10.2f | doubled %10.2f | gain %6.2f%%\n" t
          c_base c_big (100.0 *. gain);
        gain)
  in
  let mean_gain = Cold_stats.Descriptive.mean improvements in
  (* The paper reports <= ~10 % from quadrupling T = M = 100; smaller
     harness-scale GAs have more headroom, so allow a little slack. *)
  Printf.printf
    "\nshape check: mean improvement from doubling M and T: %.2f%% (paper: <= ~10%%): %b\n"
    (100.0 *. mean_gain)
    (mean_gain <= 0.15)
