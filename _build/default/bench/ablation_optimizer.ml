(* X5: optimizer ablation. §3.3 motivates the GA by flexibility, not by
   optimality — engineers "optimize heuristically". This experiment compares
   the initialised GA against simulated annealing and hill climbing at a
   matched evaluation budget, on shared contexts. Expected: all land within a
   few percent; the initialised GA is the most reliable (smallest spread),
   which is the paper's real argument for it. *)

module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Cost = Cold.Cost
module Ga = Cold.Ga
module Local_search = Cold.Local_search
module D = Cold_stats.Descriptive

let run () =
  Config.section "X5: optimizer ablation (initialised GA vs annealing vs hill climbing)";
  let params = Cost.params ~k2:2e-4 ~k3:10.0 () in
  let budget =
    Config.ga_settings.Ga.population_size * (Config.ga_settings.Ga.generations + 1)
  in
  let ls_settings budgeted temperature =
    {
      Local_search.default_settings with
      Local_search.iterations = budgeted;
      initial_temperature = temperature;
      cooling = exp (log 1e-3 /. float_of_int (max 1 budgeted));
    }
  in
  Printf.printf "k2 = 2e-4, k3 = 10, n = %d, ~%d evaluations per optimizer, %d contexts\n\n"
    Config.n_pops budget Config.trials;
  let ratios = Hashtbl.create 4 in
  let record name r =
    Hashtbl.replace ratios name (r :: Option.value ~default:[] (Hashtbl.find_opt ratios name))
  in
  for t = 0 to Config.trials - 1 do
    let rng = Prng.split_at (Prng.create (Config.master_seed + 777)) t in
    let ctx = Context.generate (Context.default_spec ~n:Config.n_pops) rng in
    let seeds =
      Cold.Heuristics.seed_set ~permutations:Config.heuristic_permutations params
        ctx rng
    in
    let ga = (Ga.run ~seeds Config.ga_settings params ctx rng).Ga.best_cost in
    let sa =
      (Local_search.run (ls_settings budget 0.03) params ctx rng).Local_search.best_cost
    in
    let hc =
      (Local_search.run (ls_settings budget 0.0) params ctx rng).Local_search.best_cost
    in
    let best = Float.min ga (Float.min sa hc) in
    record "initialised GA" (ga /. best);
    record "simulated annealing" (sa /. best);
    record "hill climbing" (hc /. best)
  done;
  let summary name =
    let values = Array.of_list (Hashtbl.find ratios name) in
    Printf.printf "%-22s mean ratio to best %6.4f (worst %6.4f)\n" name
      (D.mean values) (D.max_value values)
  in
  summary "initialised GA";
  summary "simulated annealing";
  summary "hill climbing";
  let ga_worst = D.max_value (Array.of_list (Hashtbl.find ratios "initialised GA")) in
  Printf.printf
    "\nshape check: initialised GA within 3%% of the per-context best everywhere: %b\n"
    (ga_worst <= 1.03)
