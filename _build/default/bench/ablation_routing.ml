(* X8: routing-policy ablation. The paper routes single shortest paths and
   notes ISPs add load balancing on top. With geographic link lengths,
   equal-cost ties have probability zero, so ECMP only bites under the
   hop-count IGP metric operators commonly deploy (every link cost 1). We
   evaluate synthesized topologies under that metric, single-path vs ECMP:
   route lengths (and hence hop-volume) are invariant; the peak link load —
   what sizes the hottest capacity module — drops, and drops more on
   meshier (high-k2) designs where more equal-cost paths exist. *)

module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Routing = Cold_net.Routing
module D = Cold_stats.Descriptive

let run () =
  Config.section "X8: routing-policy ablation (single-path vs ECMP)";
  Printf.printf "(hop-count IGP metric; topologies synthesized as usual)\n";
  Printf.printf "%10s %22s %22s\n" "k2" "max-load reduction" "hop-volume delta";
  List.iter
    (fun k2 ->
      let params = Cold.Cost.params ~k2 () in
      let cfg = Config.synthesis_config ~params () in
      let reductions =
        Array.init Config.trials (fun t ->
            let rng =
              Prng.split_at
                (Prng.create (Config.master_seed + 1300))
                ((int_of_float (k2 *. 1e7) * 11) + t)
            in
            let ctx = Context.generate (Context.default_spec ~n:Config.n_pops) rng in
            let result = Cold.Synthesis.design_ga cfg ctx rng in
            let g = result.Cold.Ga.best in
            (* Hop-count IGP metric: unit cost per link. *)
            let length _ _ = 1.0 in
            let single = Routing.route g ~length ~tm:ctx.Context.tm in
            let ecmp = Routing.route ~multipath:true g ~length ~tm:ctx.Context.tm in
            let reduction =
              1.0 -. (Routing.max_load ecmp /. Routing.max_load single)
            in
            let delta =
              Float.abs
                (Routing.total_volume_length ecmp ~length
                -. Routing.total_volume_length single ~length)
              /. Routing.total_volume_length single ~length
            in
            (reduction, delta))
      in
      let r = Array.map fst reductions and d = Array.map snd reductions in
      Printf.printf "%10.1e %20.1f%% %21.2e\n" k2 (100.0 *. D.mean r) (D.mean d))
    Config.k2_grid;
  print_endline
    "\nshape check: ECMP leaves total hop-volume invariant (deltas ~1e-16)\n\
     and its max-load benefit appears on meshy designs (equal-cost paths)."
