(* Shared configuration for the experiment harness.

   COLD_BENCH_SCALE selects the fidelity/run-time trade-off:
     smoke — seconds; sanity only.
     quick — minutes; the default. Reproduces every figure's shape with
             reduced trial counts and a reduced GA.
     full  — paper scale (T = M = 100, 20 trials, n up to 100, brute force
             to n = 7). Expect a long run. *)

type scale = Smoke | Quick | Full

let scale =
  match Sys.getenv_opt "COLD_BENCH_SCALE" with
  | Some "full" -> Full
  | Some "smoke" -> Smoke
  | _ -> Quick

let scale_name = match scale with Smoke -> "smoke" | Quick -> "quick" | Full -> "full"

(* Number of PoPs for the §6 tunability experiments (paper: 30). *)
let n_pops = match scale with Smoke -> 16 | Quick | Full -> 30

(* Trials per parameter point. Paper: 20 (Fig 3) / 200 (Figs 5-9). *)
let trials = match scale with Smoke -> 2 | Quick -> 5 | Full -> 20

let ga_settings =
  match scale with
  | Smoke ->
    {
      Cold.Ga.default_settings with
      Cold.Ga.population_size = 30;
      generations = 20;
      num_saved = 6;
      num_crossover = 15;
      num_mutation = 9;
    }
  | Quick ->
    {
      Cold.Ga.default_settings with
      Cold.Ga.population_size = 50;
      generations = 50;
      num_saved = 10;
      num_crossover = 25;
      num_mutation = 15;
    }
  | Full -> Cold.Ga.default_settings (* T = M = 100, as in §5 *)

let heuristic_permutations = match scale with Smoke -> 2 | Quick -> 3 | Full -> 10

(* The paper's Fig 3/5-9 x-axis: k2 from 2.5e-5 to 1.6e-3 (log grid). *)
let k2_grid =
  match scale with
  | Smoke -> [ 2.5e-5; 1.6e-3 ]
  | Quick -> [ 2.5e-5; 1.0e-4; 4.0e-4; 1.6e-3 ]
  | Full -> [ 2.5e-5; 5.0e-5; 1.0e-4; 2.0e-4; 4.0e-4; 8.0e-4; 1.6e-3 ]

(* Fig 5-7 series: k3 ∈ {0, 10, 100, 1000}. *)
let k3_series = [ 0.0; 10.0; 100.0; 1000.0 ]

(* Fig 8b/9 x-axis: k3 sweep at fixed k2 values. *)
let k3_grid =
  match scale with
  | Smoke -> [ 1.0; 1000.0 ]
  | Quick -> [ 1.0; 10.0; 100.0; 1000.0 ]
  | Full -> [ 1.0; 3.0; 10.0; 30.0; 100.0; 300.0; 1000.0 ]

let fig8_k2_series = [ 2.5e-5; 1.0e-4; 4.0e-4; 1.6e-3 ]

(* Fig 4 network sizes. Paper: up to several hundred. *)
let fig4_sizes =
  match scale with
  | Smoke -> [ 8; 12; 16 ]
  | Quick -> [ 10; 14; 20; 28; 40; 56 ]
  | Full -> [ 10; 14; 20; 28; 40; 56; 80; 100 ]

(* Brute-force validation size (§5: up to 8 in the paper; 2^21 graphs at
   n = 7 already takes minutes). *)
let brute_force_n = match scale with Smoke -> 5 | Quick -> 6 | Full -> 7

let table1_trials = match scale with Smoke -> 4 | Quick -> 8 | Full -> 20

let zoo_count = match scale with Smoke -> 60 | Quick -> 250 | Full -> 250

let fig1_sizes =
  match scale with
  | Smoke -> [ 10; 20; 30 ]
  | Quick | Full -> [ 10; 15; 20; 25; 30; 35; 40; 45; 50 ]

let master_seed = 20140702 (* CoNEXT'14 camera-ready vibes; any constant works. *)

let synthesis_config ?(params = Cold.Cost.params ()) () =
  {
    (Cold.Synthesis.default_config ~params ()) with
    Cold.Synthesis.ga = ga_settings;
    heuristic_permutations;
  }

(* --- output helpers --------------------------------------------------------- *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title

let time_it f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)

let pp_ci (ci : Cold_stats.Bootstrap.interval) =
  Printf.sprintf "%8.3f [%8.3f, %8.3f]" ci.Cold_stats.Bootstrap.point
    ci.Cold_stats.Bootstrap.lo ci.Cold_stats.Bootstrap.hi

(* Mean + bootstrap CI of a per-trial statistic, with a deterministic
   bootstrap stream per label. *)
let ci_of label values =
  Cold_stats.Bootstrap.mean_ci
    (Cold_prng.Prng.create (Cold_prng.Prng.seed_of_string label))
    values
