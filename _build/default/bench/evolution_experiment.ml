(* X6: incremental evolution. §3 notes real networks "are rarely designed
   from scratch — they evolve". We grow a network over several steps and
   measure the legacy penalty: how much more the evolved design costs than a
   greenfield design of the same final context, as a function of the
   decommissioning cost. Expected: penalty ~0 when decommissioning is free,
   growing (but modest) when legacy links are expensive to remove. *)

module Prng = Cold_prng.Prng
module Evolution = Cold.Evolution
module Graph = Cold_graph.Graph
module Network = Cold_net.Network

let steps =
  [
    { Evolution.new_pops = 5; traffic_growth = 1.6 };
    { Evolution.new_pops = 5; traffic_growth = 1.6 };
    { Evolution.new_pops = 5; traffic_growth = 1.6 };
  ]

let run () =
  Config.section "X6: incremental evolution and the cost of legacy";
  let params = Cold.Cost.params ~k2:2e-4 ~k3:10.0 () in
  Printf.printf "15 -> 30 PoPs over 3 steps, traffic x4; decommission cost swept\n\n";
  Printf.printf "%14s %10s %12s %14s\n" "decommission" "links" "removed" "legacy penalty";
  let penalties =
    List.map
      (fun dc ->
        let cfg =
          {
            (Evolution.default_config ~params ()) with
            Evolution.decommission_cost = dc;
            ga = Config.ga_settings;
          }
        in
        let states =
          Evolution.run cfg ~initial_n:15 ~steps ~seed:(Config.master_seed + 31)
        in
        let final = List.nth states (List.length states - 1) in
        let penalty =
          Evolution.legacy_penalty cfg final (Prng.create (Config.master_seed + 32))
        in
        Printf.printf "%14.0f %10d %12d %13.2f%%\n" dc
          (Graph.edge_count final.Evolution.network.Network.graph)
          final.Evolution.cumulative_decommissions (100.0 *. penalty);
        (dc, penalty))
      [ 0.0; 50.0; 1e6 ]
  in
  let penalty_of dc = List.assoc dc penalties in
  Printf.printf
    "\nshape check: free decommissioning ~ greenfield (|penalty| <= 5%%): %b;\n\
    \  frozen legacy costs at least as much: %b\n"
    (Float.abs (penalty_of 0.0) <= 0.05)
    (penalty_of 1e6 >= penalty_of 0.0 -. 0.02)
