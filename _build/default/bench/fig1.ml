(* Fig 1: the number of distinct dK parameters (isomorphism classes of
   degree-labelled connected subgraphs) grows rapidly with both graph size
   and d. The paper plots this for d = 2, 3, 4 on graphs of 10-50 nodes. *)

module Graph = Cold_graph.Graph
module Builders = Cold_graph.Builders
module Prng = Cold_prng.Prng
module Census = Cold_dk.Subgraph_census

(* Connected random graph with average degree ~3, the regime of the paper's
   figure. *)
let sample_graph n seed =
  let rng = Prng.create seed in
  let g = Builders.random_tree n rng in
  let extra = n / 2 in
  let added = ref 0 and attempts = ref 0 in
  while !added < extra && !attempts < 100 * n do
    incr attempts;
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v && not (Graph.mem_edge g u v) then begin
      Graph.add_edge g u v;
      incr added
    end
  done;
  g

let run () =
  Config.section "Figure 1: dK-series parameter growth";
  Printf.printf "distinct labelled connected subgraphs (avg over 3 samples)\n\n";
  Printf.printf "%8s %10s %10s %10s %12s\n" "n" "d=2" "d=3" "d=4" "n(n-1)/2";
  let mean3 f n =
    let s = List.fold_left (fun acc i -> acc + f (sample_graph n (Config.master_seed + i))) 0 [ 1; 2; 3 ] in
    float_of_int s /. 3.0
  in
  let last = ref (0.0, 0.0, 0.0) in
  List.iter
    (fun n ->
      let d2 = mean3 (fun g -> Census.distinct g ~d:2) n in
      let d3 = mean3 (fun g -> Census.distinct g ~d:3) n in
      let d4 = mean3 (fun g -> Census.distinct g ~d:4) n in
      last := (d2, d3, d4);
      Printf.printf "%8d %10.1f %10.1f %10.1f %12d\n" n d2 d3 d4 (n * (n - 1) / 2))
    Config.fig1_sizes;
  let (d2, d3, d4) = !last in
  let n = List.nth Config.fig1_sizes (List.length Config.fig1_sizes - 1) in
  Printf.printf
    "\nshape check: d4 > d3 > d2 at n=%d: %b; d4 exceeds node count: %b\n" n
    (d4 > d3 && d3 > d2)
    (d4 > float_of_int n)
