(* Fig 2: (a) a small example network; (b) ER graphs with the same link
   count — disconnection and long paths appear; (c) graphs with the same
   3K-distribution — all isomorphic to the input (over-constraint). *)

module Graph = Cold_graph.Graph
module Builders = Cold_graph.Builders
module Traversal = Cold_graph.Traversal
module Prng = Cold_prng.Prng
module Er = Cold_baselines.Erdos_renyi
module Rewire = Cold_dk.Rewire
module Iso = Cold_dk.Iso
module Distance_metrics = Cold_metrics.Distance_metrics

(* The example input: a hub-and-spoke with a triangle at the core, the shape
   of the paper's Fig 2(a). *)
let example () =
  let g = Builders.double_star 8 in
  Graph.add_edge g 2 3;
  g

let run () =
  Config.section "Figure 2: ER vs 3K-matching graphs on a small example";
  let input = example () in
  Printf.printf "(a) input: %s\n" (Format.asprintf "%a" Graph.pp input);
  Printf.printf "    diameter %d, connected %b\n\n"
    (Distance_metrics.diameter input)
    (Traversal.is_connected input);

  Config.subsection "(b) Erdos-Renyi with the same number of links";
  let rng = Prng.create Config.master_seed in
  let samples = 8 in
  let disconnected = ref 0 and long_paths = ref 0 in
  for i = 1 to samples do
    let g = Er.gnm ~n:(Graph.node_count input) ~m:(Graph.edge_count input) rng in
    let connected = Traversal.is_connected g in
    let diam = Distance_metrics.diameter g in
    if not connected then incr disconnected;
    if connected && diam > Distance_metrics.diameter input then incr long_paths;
    Printf.printf "  sample %d: connected %-5b diameter %d\n" i connected diam
  done;
  Printf.printf "  -> %d/%d disconnected, %d/%d with longer shortest paths\n"
    !disconnected samples !long_paths samples;

  Config.subsection "(c) graphs with the same 3K-distribution";
  let all_isomorphic = ref true in
  for i = 1 to samples do
    let out = Rewire.sample ~level:Rewire.K3 ~attempts:300 input rng in
    let iso = Iso.isomorphic input out in
    if not iso then all_isomorphic := false;
    Printf.printf "  sample %d: isomorphic to input %b\n" i iso
  done;
  Printf.printf
    "  -> all 3K-matching samples isomorphic to the input: %b (the paper's\n\
    \     over-constraint: 'the only possible 3K graph ... is isomorphic to\n\
    \     the input itself')\n"
    !all_isomorphic
