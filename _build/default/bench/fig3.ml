(* Fig 3: cost of the best solution found by each algorithm versus k2,
   normalized by the initialised GA's result; two panels, k3 = 0 and k3 = 10.
   The paper's claims: (i) different greedy algorithms win in different
   regimes, (ii) the plain GA is good at k3 = 0 but weaker at k3 = 10,
   (iii) the initialised GA is never worse than any competitor. *)

module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Cost = Cold.Cost
module Ga = Cold.Ga
module Heuristics = Cold.Heuristics
module D = Cold_stats.Descriptive

let algorithms = [ "random greedy"; "complete"; "mst"; "greedy attachment"; "GA"; "init GA" ]

let run_cell params ctx rng =
  (* Returns costs in the order of [algorithms]. The very topologies found by
     the greedy competitors are handed to the initialised GA as seeds, so it
     can never be worse than any of them — the paper's §5 construction. *)
  let greedy =
    List.map
      (fun alg -> Heuristics.run alg params ctx rng)
      (Heuristics.all ~permutations:Config.heuristic_permutations)
  in
  let plain = (Ga.run Config.ga_settings params ctx rng).Ga.best_cost in
  let seeds = fst (Heuristics.best_star params ctx) :: List.map fst greedy in
  let init = (Ga.run ~seeds Config.ga_settings params ctx rng).Ga.best_cost in
  (* Heuristics.all yields [random greedy; complete; mst; greedy attach]. *)
  List.map snd greedy @ [ plain; init ]

let panel ~k3 =
  Config.subsection (Printf.sprintf "panel k3 = %g (k0 = 10, k1 = 1, n = %d)" k3 Config.n_pops);
  Printf.printf "%10s" "k2";
  List.iter (fun a -> Printf.printf " %18s" a) algorithms;
  print_newline ();
  let init_ga_always_best = ref true in
  List.iter
    (fun k2 ->
      let params = Cost.params ~k2 ~k3 () in
      (* trials × algorithms cost matrix, ratios vs initialised GA. *)
      let ratios = Array.make_matrix (List.length algorithms) Config.trials 0.0 in
      for t = 0 to Config.trials - 1 do
        let rng =
          Prng.split_at
            (Prng.create Config.master_seed)
            ((int_of_float (k2 *. 1e7) * 100) + (int_of_float k3 * 7) + t)
        in
        let ctx = Context.generate (Context.default_spec ~n:Config.n_pops) rng in
        let costs = run_cell params ctx rng in
        let init = List.nth costs (List.length costs - 1) in
        List.iteri (fun a c -> ratios.(a).(t) <- c /. init) costs;
        List.iteri
          (fun a c -> if a < List.length costs - 1 && c < init -. 1e-9 then
              init_ga_always_best := false)
          costs
      done;
      Printf.printf "%10.1e" k2;
      Array.iter
        (fun row ->
          let ci = Config.ci_of "fig3" row in
          Printf.printf " %6.3f[%5.3f,%5.3f]" ci.Cold_stats.Bootstrap.point
            ci.Cold_stats.Bootstrap.lo ci.Cold_stats.Bootstrap.hi)
        ratios;
      print_newline ())
    Config.k2_grid;
  !init_ga_always_best

let run () =
  Config.section "Figure 3: best-cost ratio vs k2 (normalized by initialised GA)";
  let (ok0, dt0) = Config.time_it (fun () -> panel ~k3:0.0) in
  let (ok10, dt10) = Config.time_it (fun () -> panel ~k3:10.0) in
  Printf.printf
    "\nshape check: initialised GA never beaten: k3=0 -> %b, k3=10 -> %b  (%.0fs + %.0fs)\n"
    ok0 ok10 dt0 dt10
