(* Fig 4: GA runtime versus number of PoPs. The paper reports O(n^3 M T)
   growth (the n^3 from all-pairs shortest paths inside cost evaluation) with
   a Matlab constant of 2.3e-5; we reproduce the cubic exponent by log-log
   regression on wall-clock measurements. *)

module Prng = Cold_prng.Prng
module Context = Cold_context.Context

let run () =
  Config.section "Figure 4: GA runtime scaling";
  Printf.printf "GA settings: M = %d, T = %d\n\n"
    Config.ga_settings.Cold.Ga.population_size
    Config.ga_settings.Cold.Ga.generations;
  Printf.printf "%8s %12s\n" "n" "seconds";
  let points =
    List.map
      (fun n ->
        let rng = Prng.create (Config.master_seed + n) in
        let ctx = Context.generate (Context.default_spec ~n) rng in
        let (_, dt) =
          Config.time_it (fun () ->
              Cold.Ga.run Config.ga_settings (Cold.Cost.params ()) ctx rng)
        in
        Printf.printf "%8d %12.3f\n" n dt;
        (float_of_int n, dt))
      Config.fig4_sizes
  in
  let exponent = ref 0.0 and coefficient = ref 0.0 in
  let r2 =
    Cold_stats.Regression.power_law (Array.of_list points) ~exponent ~coefficient
  in
  Printf.printf
    "\nfit: time = %.2e * n^%.2f   (R^2 = %.3f; paper: cubic, 2.3e-5 * n^3 in Matlab)\n"
    !coefficient !exponent r2;
  (* At smoke scale n only reaches 16 and constant overheads dominate, so the
     asymptotic slope is not yet visible. *)
  (match Config.scale with
  | Config.Smoke ->
    Printf.printf "shape check: skipped at smoke scale (n too small for the asymptote)\n"
  | Config.Quick | Config.Full ->
    (* The paper's n^3 comes from dense all-pairs shortest paths; our routing
       runs one heap Dijkstra per source over sparse candidates, so the
       measured exponent sits nearer n^2 log n ≈ n^2.2 — a strictly better
       constant-factor story with the same super-quadratic shape. *)
    Printf.printf "shape check: exponent in [2.0, 3.7] (super-quadratic): %b\n"
      (!exponent >= 2.0 && !exponent <= 3.7))
