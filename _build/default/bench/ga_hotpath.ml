(* GA hot-path throughput: evaluations/sec of the domain-parallel evaluation
   engine, sequential vs autodetected domains, at n = 20 and n = 40.

   This seeds the repo's perf trajectory: every run rewrites BENCH_ga.json
   with one record per (n, domains) cell using the schema
     {bench, n, domains, evals_per_sec, wall_s, speedup_vs_seq}
   so later PRs can diff throughput against this baseline. The fitness memo
   is disabled for the measurement: with the cache on, duplicate children
   skip routing and evals/sec stops being a routing-throughput number (the
   memo's effect is reported separately on stdout). *)

module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Par = Cold_par.Par

type cell = {
  n : int;
  domains : int;
  evals_per_sec : float;
  wall_s : float;
  speedup_vs_seq : float;
}

let settings =
  match Config.scale with
  | Config.Smoke ->
    {
      Cold.Ga.default_settings with
      Cold.Ga.population_size = 20;
      generations = 10;
      num_saved = 4;
      num_crossover = 10;
      num_mutation = 6;
    }
  | Config.Quick ->
    {
      Cold.Ga.default_settings with
      Cold.Ga.population_size = 40;
      generations = 25;
      num_saved = 8;
      num_crossover = 20;
      num_mutation = 12;
    }
  | Config.Full -> Cold.Ga.default_settings

let measure ~n ~domains =
  let ctx =
    Context.generate (Context.default_spec ~n) (Prng.create (Config.master_seed + n))
  in
  let params = Cold.Cost.params ~k2:1e-4 () in
  let run () =
    Cold.Ga.run ~domains ~cache_slots:0 settings params ctx (Prng.create 42)
  in
  let (result, wall) = Config.time_it run in
  (result, wall, float_of_int result.Cold.Ga.evaluations /. wall)

let json_of_cells cells =
  let row c =
    Printf.sprintf
      "  {\"bench\": \"ga_hotpath\", \"n\": %d, \"domains\": %d, \
       \"evals_per_sec\": %.1f, \"wall_s\": %.3f, \"speedup_vs_seq\": %.3f}"
      c.n c.domains c.evals_per_sec c.wall_s c.speedup_vs_seq
  in
  "[\n" ^ String.concat ",\n" (List.map row cells) ^ "\n]\n"

let run () =
  Config.section "GA hot path: domain-parallel evaluation (BENCH_ga.json)";
  let auto = Par.resolve ~domains:0 () in
  Printf.printf "autodetected domains: %d\n" auto;
  let cells =
    List.concat_map
      (fun n ->
        let (seq_result, seq_wall, seq_eps) = measure ~n ~domains:1 in
        let seq_cell =
          { n; domains = 1; evals_per_sec = seq_eps; wall_s = seq_wall;
            speedup_vs_seq = 1.0 }
        in
        let par_cell =
          if auto = 1 then []
          else begin
            let (par_result, par_wall, par_eps) = measure ~n ~domains:auto in
            assert (Float.equal par_result.Cold.Ga.best_cost seq_result.Cold.Ga.best_cost);
            [ { n; domains = auto; evals_per_sec = par_eps; wall_s = par_wall;
                speedup_vs_seq = par_eps /. seq_eps } ]
          end
        in
        (* The memo's contribution, reported alongside (not in the JSON):
           same workload with the default cache. *)
        let (cached, cached_wall) =
          Config.time_it (fun () ->
              Cold.Ga.run ~domains:1 settings
                (Cold.Cost.params ~k2:1e-4 ())
                (Context.generate (Context.default_spec ~n)
                   (Prng.create (Config.master_seed + n)))
                (Prng.create 42))
        in
        Printf.printf
          "n=%-3d seq %7.1f evals/s (%.2fs); cache on: %.2fs, %d/%d hits\n%!" n
          seq_eps seq_wall cached_wall cached.Cold.Ga.cache_hits
          cached.Cold.Ga.evaluations;
        List.iter
          (fun c ->
            Printf.printf "n=%-3d %d domains %7.1f evals/s (%.2fs)  speedup %.2fx\n%!"
              c.n c.domains c.evals_per_sec c.wall_s c.speedup_vs_seq)
          par_cell;
        seq_cell :: par_cell)
      [ 20; 40 ]
  in
  let oc = open_out "BENCH_ga.json" in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (json_of_cells cells));
  Printf.printf "wrote BENCH_ga.json (%d cells)\n" (List.length cells)
