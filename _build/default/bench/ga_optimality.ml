(* X1 (§5): on small instances the GA finds the true (brute-force) optimum.
   The paper verified this for up to 8 PoPs; enumeration is 2^C(n,2) so we
   default to n = 6 (32k graphs) and use n = 7 (2M graphs) at full scale. *)

module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Cost = Cold.Cost

let corners =
  [
    ("baseline", Cost.params ());
    ("high k2", Cost.params ~k2:2e-3 ());
    ("high k3", Cost.params ~k3:100.0 ());
    ("mixed", Cost.params ~k0:5.0 ~k2:5e-4 ~k3:10.0 ());
  ]

let run () =
  Config.section "X1: GA vs brute-force optimum (small n)";
  let n = Config.brute_force_n in
  Printf.printf "n = %d (%d candidate graphs per context)\n\n" n
    (1 lsl (n * (n - 1) / 2));
  let all_match = ref true in
  List.iteri
    (fun i (label, params) ->
      let rng = Prng.create (Config.master_seed + (41 * i)) in
      let ctx = Context.generate (Context.default_spec ~n) rng in
      let ((_, opt_cost), bf_dt) =
        Config.time_it (fun () -> Cold.Brute_force.optimal params ctx)
      in
      let (result, ga_dt) =
        Config.time_it (fun () ->
            let cfg = Config.synthesis_config ~params () in
            Cold.Synthesis.design_ga cfg ctx rng)
      in
      let gap = (result.Cold.Ga.best_cost -. opt_cost) /. opt_cost in
      if gap > 1e-9 then all_match := false;
      Printf.printf
        "%-10s optimum %10.2f | GA %10.2f | gap %7.4f%% (bf %.1fs, ga %.1fs)\n"
        label opt_cost result.Cold.Ga.best_cost (100.0 *. gap) bf_dt ga_dt)
    corners;
  Printf.printf "\nshape check: GA matches the optimum on all corners: %b\n" !all_match
