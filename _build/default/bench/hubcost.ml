(* Figures 8 and 9: the node-based (hub) cost section.

   Fig 8a: the distribution of CVND over a population of real-world-shaped
   networks (Topology-Zoo substitute; see DESIGN.md) — about 15 % above 1.
   Fig 8b: CVND of synthesized networks vs k3 for several k2 — without a hub
   cost (small k3) CVND stays well below 1; large k3 pushes it toward 2.
   Fig 9: number of core (hub) PoPs vs k3 — large when the hub cost is
   insignificant, driven down by k3. *)

module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Summary = Cold_metrics.Summary
module Cost = Cold.Cost
module Histogram = Cold_stats.Histogram

let fig8a () =
  Config.subsection "Figure 8a: CVND distribution of the (synthetic) topology zoo";
  let zoo = Cold_zoo.Zoo.synthetic ~count:Config.zoo_count ~seed:Config.master_seed () in
  let cvnd = Cold_zoo.Zoo.cvnd_values zoo in
  let h = Cold_stats.Histogram.create ~lo:0.0 ~hi:2.0 ~bins:10 cvnd in
  Format.printf "%a" (Cold_stats.Histogram.pp_ascii ~width:40) h;
  let above1 = Histogram.fraction_above cvnd 1.0 in
  Printf.printf
    "fraction with CVND > 1: %.3f (paper: about 15%%); max CVND: %.2f (paper: ~2)\n"
    above1
    (Cold_stats.Descriptive.max_value cvnd);
  above1

let sweep_k3 () =
  (* CVND and hub counts vs k3 for the Fig 8b/9 k2 series. *)
  List.map
    (fun k2 ->
      let rows =
        List.map
          (fun k3 ->
            let params = Cost.params ~k2 ~k3 () in
            let cfg = Config.synthesis_config ~params () in
            let summaries =
              Array.init Config.trials (fun t ->
                  let rng =
                    Prng.split_at
                      (Prng.create (Config.master_seed + 991))
                      ((int_of_float (k2 *. 1e7) * 997) + (int_of_float k3 * 31) + t)
                  in
                  let ctx =
                    Context.generate (Context.default_spec ~n:Config.n_pops) rng
                  in
                  let result = Cold.Synthesis.design_ga cfg ctx rng in
                  Summary.compute result.Cold.Ga.best)
            in
            (k3, summaries))
          Config.k3_grid
      in
      (k2, rows))
    Config.fig8_k2_series

let print_stat sweep ~title ~stat ~name =
  Config.subsection title;
  Printf.printf "%10s" "k3 \\ k2";
  List.iter (fun k2 -> Printf.printf " %24.1e" k2) Config.fig8_k2_series;
  print_newline ();
  List.iter
    (fun k3 ->
      Printf.printf "%10.0f" k3;
      List.iter
        (fun (_, rows) ->
          let (_, summaries) = List.find (fun (x, _) -> x = k3) rows in
          let ci = Config.ci_of name (Array.map stat summaries) in
          Printf.printf " %s" (Config.pp_ci ci))
        sweep;
      print_newline ())
    Config.k3_grid

let run () =
  Config.section "Figures 8-9: the hub cost k3 (CVND and core-PoP count)";
  let above1 = fig8a () in
  let (sweep, dt) = Config.time_it sweep_k3 in
  print_stat sweep ~title:"Figure 8b: CVND of synthesized networks vs k3"
    ~stat:(fun s -> s.Summary.cvnd) ~name:"fig8b";
  print_stat sweep ~title:"Figure 9: number of core (hub) PoPs vs k3"
    ~stat:(fun s -> float_of_int s.Summary.hubs)
    ~name:"fig9";
  (* Shape checks. *)
  let mean_at k2 k3 stat =
    let (_, rows) = List.find (fun (x, _) -> x = k2) sweep in
    let (_, summaries) = List.find (fun (x, _) -> x = k3) rows in
    Cold_stats.Descriptive.mean (Array.map stat summaries)
  in
  let k2_mid = List.nth Config.fig8_k2_series 1 in
  let low_k3 = List.hd Config.k3_grid in
  let high_k3 = List.nth Config.k3_grid (List.length Config.k3_grid - 1) in
  let cvnd_low = mean_at k2_mid low_k3 (fun s -> s.Summary.cvnd) in
  let cvnd_high = mean_at k2_mid high_k3 (fun s -> s.Summary.cvnd) in
  let hubs_low = mean_at k2_mid low_k3 (fun s -> float_of_int s.Summary.hubs) in
  let hubs_high = mean_at k2_mid high_k3 (fun s -> float_of_int s.Summary.hubs) in
  Printf.printf
    "\nshape checks (k2 = %.1e): CVND below 1 without hub cost: %b (%.2f);\n\
    \  CVND exceeds 1 at k3 = %g: %b (%.2f); hubs collapse %.1f -> %.1f: %b;\n\
    \  zoo fraction above 1 in [0.08, 0.25]: %b   (sweep took %.0fs)\n"
    k2_mid (cvnd_low < 1.0) cvnd_low high_k3 (cvnd_high > 1.0) cvnd_high hubs_low
    hubs_high (hubs_high < hubs_low)
    (above1 >= 0.08 && above1 <= 0.25)
    dt
