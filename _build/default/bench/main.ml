(* COLD experiment harness: regenerates every table and figure of the paper
   plus the §5/§7 validation experiments. Scale with COLD_BENCH_SCALE =
   smoke | quick (default) | full; see bench/config.ml and EXPERIMENTS.md. *)

let () =
  Printf.printf "COLD benchmark harness — scale: %s\n" Config.scale_name;
  Printf.printf "(set COLD_BENCH_SCALE=smoke|quick|full to change)\n";
  let t0 = Unix.gettimeofday () in
  Table1.run ();
  Fig1.run ();
  Fig2.run ();
  Fig3.run ();
  Fig4.run ();
  ignore (Tunability.run ());
  Hubcost.run ();
  Ga_optimality.run ();
  Ablation_context.run ();
  Ablation_ga.run ();
  Ablation_cost.run ();
  Ablation_optimizer.run ();
  Evolution_experiment.run ();
  Abc_experiment.run ();
  Ablation_routing.run ();
  Ga_hotpath.run ();
  Micro.run ();
  Printf.printf "\ntotal harness time: %.0fs\n" (Unix.gettimeofday () -. t0)
