(* Bechamel micro-benchmarks of the hot paths: cost evaluation (the unit of
   Fig 4's n^3 M T), routing, a single Dijkstra, and the Fig 1 census. *)

open Bechamel

module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Graph = Cold_graph.Graph

let fixture n =
  let rng = Prng.create (Config.master_seed + n) in
  let ctx = Context.generate (Context.default_spec ~n) rng in
  let g = Cold.Heuristics.mst_topology ctx in
  (* A slightly meshy topology: MST plus a few shortcuts. *)
  for i = 0 to (n / 4) - 1 do
    let u = (i * 3) mod n and v = ((i * 7) + 2) mod n in
    if u <> v then Graph.add_edge g u v
  done;
  (ctx, g)

let tests () =
  let (ctx30, g30) = fixture 30 in
  let (ctx100, g100) = fixture 100 in
  let params = Cold.Cost.params ~k3:10.0 () in
  let ga_one_generation =
    let settings =
      {
        Cold.Ga.default_settings with
        Cold.Ga.population_size = 20;
        generations = 1;
        num_saved = 4;
        num_crossover = 10;
        num_mutation = 6;
      }
    in
    fun () ->
      ignore (Cold.Ga.run settings params ctx30 (Prng.create 7))
  in
  Test.make_grouped ~name:"cold"
    [
      Test.make ~name:"cost evaluation (n=30)"
        (Staged.stage (fun () -> ignore (Cold.Cost.evaluate params ctx30 g30)));
      Test.make ~name:"cost evaluation (n=100)"
        (Staged.stage (fun () -> ignore (Cold.Cost.evaluate params ctx100 g100)));
      Test.make ~name:"routing (n=30)"
        (Staged.stage (fun () ->
             ignore
               (Cold_net.Routing.route g30
                  ~length:(fun u v -> Context.distance ctx30 u v)
                  ~tm:ctx30.Context.tm)));
      Test.make ~name:"dijkstra (n=100)"
        (Staged.stage (fun () ->
             ignore
               (Cold_graph.Shortest_path.dijkstra g100
                  ~length:(fun u v -> Context.distance ctx100 u v)
                  ~source:0)));
      Test.make ~name:"GA generation (M=20, n=30)" (Staged.stage ga_one_generation);
      Test.make ~name:"subgraph census d=3 (n=30)"
        (Staged.stage (fun () ->
             ignore (Cold_dk.Subgraph_census.distinct g30 ~d:3)));
      Test.make ~name:"summary statistics (n=100)"
        (Staged.stage (fun () -> ignore (Cold_metrics.Summary.compute g100)));
    ]

let run () =
  Config.section "Micro-benchmarks (bechamel)";
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg [ instance ] (tests ()) in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name r acc -> (name, r) :: acc) results [] in
  List.iter
    (fun (name, r) ->
      match Analyze.OLS.estimates r with
      | Some [ ns ] ->
        if ns > 1e6 then Printf.printf "%-36s %12.3f ms/run\n" name (ns /. 1e6)
        else Printf.printf "%-36s %12.1f ns/run\n" name ns
      | _ -> Printf.printf "%-36s (no estimate)\n" name)
    (List.sort compare rows)
