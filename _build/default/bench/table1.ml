(* Table 1: six synthesis methods scored against the six criteria, with the
   paper's printed verdicts alongside the locally measured ones. *)

module Comparison = Cold_baselines.Comparison

let run () =
  Config.section "Table 1: comparison of synthesis methods";
  let (rows, dt) =
    Config.time_it (fun () ->
        Comparison.run ~trials:Config.table1_trials ~n:16 ~seed:Config.master_seed ())
  in
  Printf.printf "measured (this machine, %d trials per method):\n\n"
    Config.table1_trials;
  Format.printf "%a@." Comparison.pp_table rows;
  print_newline ();
  print_endline "paper's Table 1 for reference (Y = yes, P = partial, x = no):";
  Format.printf "%-24s" "criterion";
  List.iter
    (fun (id, _) ->
      let name =
        List.find (fun r -> r.Comparison.id = id) rows |> fun r -> r.Comparison.name
      in
      Format.printf " %10s" name)
    Comparison.paper_table;
  Format.print_newline ();
  Array.iteri
    (fun c label ->
      Format.printf "%-24s" label;
      List.iter
        (fun (_, verdicts) ->
          Format.printf " %10s"
            (Format.asprintf "%a" Comparison.pp_verdict verdicts.(c)))
        Comparison.paper_table;
      Format.print_newline ())
    Comparison.criteria;
  (* Agreement score: fraction of the 36 cells where measured = paper. *)
  let agree = ref 0 and total = ref 0 in
  List.iter
    (fun r ->
      let (_, paper) = List.find (fun (id, _) -> id = r.Comparison.id) Comparison.paper_table in
      Array.iteri
        (fun i v ->
          incr total;
          if v = paper.(i) then incr agree)
        r.Comparison.verdicts)
    rows;
  Printf.printf "\nagreement with the paper's table: %d/%d cells (%.1fs)\n" !agree
    !total dt
