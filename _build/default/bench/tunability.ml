(* Figures 5, 6, 7: average node degree, hop diameter and global clustering
   coefficient versus k2, one series per k3 ∈ {0, 10, 100, 1000}, with 95 %
   bootstrap confidence intervals — the §6 tunability experiments. All three
   figures share one parameter sweep, so the synthesis runs are done once and
   every statistic is extracted from the same ensembles. *)

module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Summary = Cold_metrics.Summary
module Cost = Cold.Cost

type cell = {
  k2 : float;
  k3 : float;
  summaries : Summary.t array;  (* one per trial *)
}

let sweep () =
  let cells = ref [] in
  List.iter
    (fun k3 ->
      List.iter
        (fun k2 ->
          let params = Cost.params ~k2 ~k3 () in
          let cfg = Config.synthesis_config ~params () in
          let summaries =
            Array.init Config.trials (fun t ->
                let rng =
                  Prng.split_at
                    (Prng.create (Config.master_seed + 77))
                    ((int_of_float (k2 *. 1e7) * 1000) + (int_of_float k3 * 13) + t)
                in
                let ctx =
                  Context.generate (Context.default_spec ~n:Config.n_pops) rng
                in
                let result = Cold.Synthesis.design_ga cfg ctx rng in
                Summary.compute result.Cold.Ga.best)
          in
          cells := { k2; k3; summaries } :: !cells)
        Config.k2_grid)
    Config.k3_series;
  List.rev !cells

let print_figure cells ~title ~stat ~name =
  Config.subsection title;
  Printf.printf "%10s" "k2 \\ k3";
  List.iter (fun k3 -> Printf.printf " %24.0f" k3) Config.k3_series;
  print_newline ();
  List.iter
    (fun k2 ->
      Printf.printf "%10.1e" k2;
      List.iter
        (fun k3 ->
          let cell = List.find (fun c -> c.k2 = k2 && c.k3 = k3) cells in
          let values = Array.map stat cell.summaries in
          let ci = Config.ci_of name values in
          Printf.printf " %s" (Config.pp_ci ci))
        Config.k3_series;
      print_newline ())
    Config.k2_grid

let monotone_along_k2 cells ~stat ~k3 ~increasing =
  let means =
    List.map
      (fun k2 ->
        let cell = List.find (fun c -> c.k2 = k2 && c.k3 = k3) cells in
        Cold_stats.Descriptive.mean (Array.map stat cell.summaries))
      Config.k2_grid
  in
  let rec check = function
    | a :: (b :: _ as rest) ->
      (if increasing then b >= a -. 0.15 else b <= a +. 0.15) && check rest
    | _ -> true
  in
  check means

let run () =
  Config.section "Figures 5-7: tunability (avg degree, diameter, clustering)";
  Printf.printf "n = %d, k0 = 10, k1 = 1, %d trials/point, GA M=%d T=%d\n"
    Config.n_pops Config.trials Config.ga_settings.Cold.Ga.population_size
    Config.ga_settings.Cold.Ga.generations;
  let (cells, dt) = Config.time_it sweep in
  print_figure cells ~title:"Figure 5: average node degree"
    ~stat:(fun s -> s.Summary.average_degree)
    ~name:"fig5";
  print_figure cells ~title:"Figure 6: network diameter (hops)"
    ~stat:(fun s -> float_of_int s.Summary.diameter)
    ~name:"fig6";
  print_figure cells ~title:"Figure 7: global clustering coefficient"
    ~stat:(fun s -> s.Summary.global_clustering)
    ~name:"fig7";
  (* Shape checks from the paper's discussion. *)
  let deg s = s.Summary.average_degree in
  let deg_up = monotone_along_k2 cells ~stat:deg ~k3:0.0 ~increasing:true in
  let lowest_k3, highest_k3 = (List.hd Config.k3_series, 1000.0) in
  let mean_at k2 k3 st =
    let cell = List.find (fun c -> c.k2 = k2 && c.k3 = k3) cells in
    Cold_stats.Descriptive.mean (Array.map st cell.summaries)
  in
  let top_k2 = List.nth Config.k2_grid (List.length Config.k2_grid - 1) in
  let deg_down_in_k3 = mean_at top_k2 highest_k3 deg <= mean_at top_k2 lowest_k3 deg +. 0.1 in
  let gcc_up =
    mean_at top_k2 0.0 (fun s -> s.Summary.global_clustering)
    >= mean_at (List.hd Config.k2_grid) 0.0 (fun s -> s.Summary.global_clustering) -. 0.01
  in
  Printf.printf
    "\nshape checks: degree increases with k2 (k3=0): %b; degree decreases with k3: %b;\n\
    \               clustering rises with k2 (k3=0): %b   (sweep took %.0fs)\n"
    deg_up deg_down_in_k3 gcc_up dt;
  cells

(* The sweep's cells are reused by Fig 8b/9 callers if needed. *)
