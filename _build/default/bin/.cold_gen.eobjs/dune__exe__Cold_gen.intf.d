bin/cold_gen.mli:
