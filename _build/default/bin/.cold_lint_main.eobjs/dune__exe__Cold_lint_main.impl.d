bin/cold_lint_main.ml: Arg Cold_lint List Printf String
