bin/cold_lint_main.mli:
