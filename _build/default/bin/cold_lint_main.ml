(* cold_lint: enforce COLD's determinism and correctness invariants.

   Exit codes: 0 clean, 1 violations found, 2 usage or I/O error. *)

let usage = "usage: cold_lint [--json] [--rules r1,r2] [--list-rules] PATH..."

let () =
  let json = ref false in
  let rules = ref None in
  let list_rules = ref false in
  let paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit findings as a JSON array");
      ( "--rules",
        Arg.String
          (fun s ->
            rules :=
              Some (String.split_on_char ',' s |> List.filter (( <> ) ""))),
        "R1,R2 run only the named rules" );
      ("--list-rules", Arg.Set list_rules, " print the rule catalogue and exit");
    ]
  in
  (try Arg.parse spec (fun p -> paths := p :: !paths) usage
   with _ -> exit 2);
  if !list_rules then begin
    List.iter
      (fun (r : Cold_lint.Rules.t) ->
        Printf.printf "%-24s %s\n" r.Cold_lint.Rules.name
          r.Cold_lint.Rules.summary)
      Cold_lint.Rules.all;
    exit 0
  end;
  let paths = List.rev !paths in
  if paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  match Cold_lint.Engine.check_paths ?only:!rules paths with
  | Error msg ->
    Printf.eprintf "cold_lint: %s\n" msg;
    exit 2
  | exception Sys_error msg ->
    Printf.eprintf "cold_lint: %s\n" msg;
    exit 2
  | Ok findings ->
    print_string
      (if !json then Cold_lint.Report.json findings
       else Cold_lint.Report.text findings);
    if findings = [] then exit 0 else exit 1
