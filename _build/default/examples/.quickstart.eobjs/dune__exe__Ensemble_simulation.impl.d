examples/ensemble_simulation.ml: Array Cold Cold_context Cold_net Cold_prng Cold_stats Format List Printf
