examples/ensemble_simulation.mli:
