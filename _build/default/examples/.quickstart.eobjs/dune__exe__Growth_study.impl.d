examples/growth_study.ml: Cold Cold_context Cold_metrics Cold_net Cold_prng List Printf String
