examples/growth_study.mli:
