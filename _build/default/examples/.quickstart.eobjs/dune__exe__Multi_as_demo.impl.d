examples/multi_as_demo.ml: Array Cold Cold_graph Cold_metrics Cold_net List Printf
