examples/multi_as_demo.mli:
