examples/network_evolution.ml: Cold Cold_metrics Cold_net Cold_prng List Printf
