examples/network_evolution.ml: Cold Cold_graph Cold_metrics Cold_net Cold_prng List Printf
