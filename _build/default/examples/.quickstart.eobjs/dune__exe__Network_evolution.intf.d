examples/network_evolution.mli:
