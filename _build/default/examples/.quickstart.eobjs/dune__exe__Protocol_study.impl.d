examples/protocol_study.ml: Array Cold Cold_context Cold_prng Cold_sim Cold_stats Format List Printf
