examples/protocol_study.mli:
