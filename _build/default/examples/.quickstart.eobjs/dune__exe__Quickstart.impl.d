examples/quickstart.ml: Cold Cold_context Cold_metrics Cold_net Cold_netio Format List Printf String
