examples/quickstart.mli:
