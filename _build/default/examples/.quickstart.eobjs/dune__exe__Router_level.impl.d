examples/router_level.ml: Array Cold Cold_context Cold_graph Cold_net Cold_router Cold_traffic List Printf
