examples/router_level.mli:
