examples/tunability_sweep.ml: Cold Cold_context Cold_metrics Cold_prng List Printf String
