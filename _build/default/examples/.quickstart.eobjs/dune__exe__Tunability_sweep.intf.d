examples/tunability_sweep.mli:
