examples/zoo_comparison.ml: Cold Cold_context Cold_metrics Cold_stats Cold_zoo List Printf String
