examples/zoo_comparison.mli:
