(* Ensemble simulation: the paper's core motivation (§1, challenge 1) — a
   protocol experiment needs MANY similar-but-distinct networks so results
   come with confidence intervals, not a single anecdote.

   Here the "protocol" under test is a toy link-failure study: for each
   synthesized network we fail its most-loaded link and measure how much
   traffic becomes unroutable, then report the ensemble mean with a 95 %
   bootstrap CI.

   Run with:  dune exec examples/ensemble_simulation.exe *)

module Network = Cold_net.Network
module Context = Cold_context.Context

let settings =
  {
    Cold.Ga.default_settings with
    Cold.Ga.population_size = 40;
    generations = 40;
    num_saved = 8;
    num_crossover = 20;
    num_mutation = 12;
  }

(* Fraction of total traffic stranded when the worst link fails — the
   resilience library does the failure analysis. *)
let stranded_traffic_fraction (net : Network.t) =
  (Cold_net.Resilience.worst_link net).Cold_net.Resilience.stranded_fraction

let run_study ~k3 =
  let params = Cold.Cost.params ~k2:3e-4 ~k3 () in
  let cfg =
    { (Cold.Synthesis.default_config ~params ()) with
      Cold.Synthesis.ga = settings; heuristic_permutations = 3 }
  in
  let ensemble =
    Cold.Ensemble.generate cfg (Context.default_spec ~n:20) ~count:12 ~seed:99
  in
  Array.map stranded_traffic_fraction ensemble.Cold.Ensemble.networks

let () =
  print_endline
    "link-failure study: traffic stranded by the single worst link failure,\n\
     over an ensemble of 12 synthesized 20-PoP networks per design point.\n";
  let samples =
    List.map
      (fun k3 ->
        let values = run_study ~k3 in
        let ci = Cold_stats.Bootstrap.mean_ci (Cold_prng.Prng.create 1) values in
        Printf.printf "k3 = %6.0f  stranded traffic: %s\n" k3
          (Format.asprintf "%a" Cold_stats.Bootstrap.pp ci);
        (k3, values))
      [ 0.0; 1000.0 ]
  in
  (* An ensemble supports a significance statement, not just two means. *)
  (match samples with
  | [ (_, flat); (_, hubby) ] ->
    let r = Cold_stats.Hypothesis.mann_whitney_u flat hubby in
    Printf.printf
      "\nMann-Whitney U: z = %.2f, p = %.4f -> difference %s at alpha = 0.05\n"
      r.Cold_stats.Hypothesis.z_score r.Cold_stats.Hypothesis.p_value
      (if Cold_stats.Hypothesis.significant r then "significant" else "not significant")
  | _ -> ());
  print_endline
    "\nhub-heavy designs concentrate traffic on hub-adjacent links, changing\n\
     what the worst single failure costs — the kind of conclusion that needs\n\
     an ensemble with a test, not one network and an anecdote."
