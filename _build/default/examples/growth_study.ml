(* Growth study: because COLD's parameters are real costs, scaling scenarios
   are expressible directly (§1, challenge 3): a maturing ISP adds PoPs and
   carries more traffic, while its cost structure stays put. We watch the
   designed network change shape as the market grows.

   Run with:  dune exec examples/growth_study.exe *)

module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Summary = Cold_metrics.Summary
module Network = Cold_net.Network

let settings =
  {
    Cold.Ga.default_settings with
    Cold.Ga.population_size = 40;
    generations = 40;
    num_saved = 8;
    num_crossover = 20;
    num_mutation = 12;
  }

let design ~n ~traffic_multiplier ~seed =
  (* A young network in a burgeoning market: connectivity as cheaply as
     possible. The SAME cost parameters, applied to a bigger, busier
     context, yield a meshier network — the economics shift, not the
     model. *)
  let params = Cold.Cost.params ~k0:10.0 ~k1:1.0 ~k2:2e-4 ~k3:20.0 () in
  let cfg =
    { (Cold.Synthesis.default_config ~params ()) with
      Cold.Synthesis.ga = settings; heuristic_permutations = 3 }
  in
  let spec =
    { (Context.default_spec ~n) with
      Context.traffic_scale = Context.default_traffic_scale *. traffic_multiplier }
  in
  let rng = Prng.create seed in
  let ctx = Context.generate spec rng in
  Cold.Synthesis.design cfg ctx rng

let () =
  Printf.printf "%6s %9s | %7s %11s %6s %7s %13s\n" "PoPs" "traffic" "links"
    "avg degree" "hubs" "diam" "capacity";
  print_endline (String.make 70 '-');
  List.iter
    (fun (n, mult) ->
      let net = design ~n ~traffic_multiplier:mult ~seed:5 in
      let s = Summary.compute net.Network.graph in
      Printf.printf "%6d %8.0fx | %7d %11.2f %6d %7d %13.0f\n" n mult
        s.Summary.edges s.Summary.average_degree s.Summary.hubs
        s.Summary.diameter
        (Cold_net.Capacity.total net.Network.capacities))
    [ (10, 1.0); (15, 2.0); (20, 4.0); (25, 8.0); (30, 16.0) ];
  print_endline
    "\nas the market grows, bandwidth economics (k2 x traffic) overtake the\n\
     fixed link costs: the design gains links, hubs multiply, and the\n\
     diameter stays controlled — intuitive and sensible scaling (paper §8)."
