(* Multi-AS extension (§2): several providers share the same cities; each
   designs its own network over its footprint, and AS pairs interconnect at
   shared cities.

   Run with:  dune exec examples/multi_as_demo.exe *)

module Multi_as = Cold.Multi_as
module Graph = Cold_graph.Graph
module Network = Cold_net.Network

let () =
  let cfg =
    {
      (Multi_as.default_config ~ases:3 ~cities:30 ()) with
      Multi_as.synthesis =
        {
          (Cold.Synthesis.default_config
             ~params:(Cold.Cost.params ~k2:2e-4 ~k3:20.0 ())
             ())
          with
          Cold.Synthesis.ga =
            {
              Cold.Ga.default_settings with
              Cold.Ga.population_size = 30;
              generations = 30;
              num_saved = 6;
              num_crossover = 15;
              num_mutation = 9;
            };
          heuristic_permutations = 2;
        };
      presence = 0.55;
    }
  in
  let world = Multi_as.synthesize cfg ~seed:17 in
  Printf.printf "shared geography: %d cities\n\n"
    (Array.length world.Multi_as.city_points);
  Array.iter
    (fun (asn : Multi_as.as_network) ->
      let g = asn.Multi_as.network.Network.graph in
      Printf.printf "AS %d: present in %2d cities, %2d links, avg degree %.2f\n"
        asn.Multi_as.as_id
        (Array.length asn.Multi_as.cities)
        (Graph.edge_count g)
        (Cold_metrics.Degree.average g))
    world.Multi_as.ases;
  Printf.printf "\ninterconnects (chosen at the busiest shared cities):\n";
  List.iter
    (fun ic ->
      Printf.printf "  AS%d <-> AS%d at city %d\n" ic.Multi_as.a ic.Multi_as.b
        ic.Multi_as.city)
    world.Multi_as.interconnects;
  List.iter
    (fun (a, b) ->
      Printf.printf "AS%d/AS%d share %d cities\n" a b
        (List.length (Multi_as.shared_cities world a b)))
    [ (0, 1); (0, 2); (1, 2) ]
