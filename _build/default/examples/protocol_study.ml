(* Protocol study: the end-to-end workflow the paper exists for. Synthesize
   an ensemble per design archetype, run a flow-level simulation on every
   member, and compare flow completion times with confidence intervals and a
   significance test — "testing new networking algorithms and protocols whose
   properties and performance often depend on the structure of the
   underlying network" (§1).

   Run with:  dune exec examples/protocol_study.exe *)

module Context = Cold_context.Context
module Flow_sim = Cold_sim.Flow_sim
module Prng = Cold_prng.Prng

let settings =
  {
    Cold.Ga.default_settings with
    Cold.Ga.population_size = 40;
    generations = 40;
    num_saved = 8;
    num_crossover = 20;
    num_mutation = 12;
  }

let sim_config = { Flow_sim.default_config with Flow_sim.load = 1.5; flow_limit = 400 }

let fcts_for preset =
  let cfg =
    { (Cold.Synthesis.default_config ~params:preset.Cold.Presets.params ()) with
      Cold.Synthesis.ga = settings; heuristic_permutations = 3 }
  in
  let ensemble =
    Cold.Ensemble.generate cfg (Context.default_spec ~n:15) ~count:8 ~seed:31
  in
  Array.mapi
    (fun i net ->
      (Flow_sim.run sim_config net (Prng.create (100 + i))).Flow_sim.mean_fct)
    ensemble.Cold.Ensemble.networks

let () =
  Printf.printf
    "flow-level simulation at 1.5x design load, 8 networks x 400 flows per preset\n\n";
  Printf.printf "%-24s %28s\n" "design archetype" "mean flow completion time";
  let results =
    List.map
      (fun preset ->
        let fcts = fcts_for preset in
        let ci = Cold_stats.Bootstrap.mean_ci (Prng.create 1) fcts in
        Printf.printf "%-24s %28s\n" preset.Cold.Presets.name
          (Format.asprintf "%a" Cold_stats.Bootstrap.pp ci);
        (preset.Cold.Presets.name, fcts))
      [ Cold.Presets.startup; Cold.Presets.mature_carrier ]
  in
  (match results with
  | [ (na, a); (nb, b) ] ->
    let r = Cold_stats.Hypothesis.mann_whitney_u a b in
    Printf.printf "\n%s vs %s: Mann-Whitney p = %.4f (%s)\n" na nb
      r.Cold_stats.Hypothesis.p_value
      (if Cold_stats.Hypothesis.significant r then "significant" else "not significant")
  | _ -> ());
  print_endline
    "\na non-obvious outcome: the tree-like startup design completes flows\n\
     FASTER. Because capacities are provisioned from carried load, a tree's\n\
     few links are fat and a single flow sees a large bottleneck; the meshy\n\
     design spreads the same provisioning across many thinner links. (Meshes\n\
     win on resilience and latency, not per-flow bandwidth.) This is exactly\n\
     the kind of conclusion that depends on topology *and* provisioning —\n\
     why synthesis must output a network, not a graph (§2, criterion 5)."
