(* Quickstart: synthesize one 20-PoP network with default costs, print its
   statistics, inspect a route, and export DOT/GML for visualization.

   Run with:  dune exec examples/quickstart.exe *)

module Network = Cold_net.Network
module Summary = Cold_metrics.Summary

let () =
  (* 1. Choose cost parameters. k0/k1 are link build costs, k2 prices
        bandwidth-distance, k3 taxes multi-link (hub) PoPs. *)
  let params = Cold.Cost.params ~k0:10.0 ~k1:1.0 ~k2:2e-4 ~k3:10.0 () in
  let config = Cold.Synthesis.default_config ~params () in

  (* 2. Describe the random context: 20 PoPs uniform on the paper-calibrated
        50x50 region with exponential gravity traffic. *)
  let spec = Cold_context.Context.default_spec ~n:20 in

  (* 3. Synthesize. Everything is deterministic given the seed. *)
  let net = Cold.Synthesis.synthesize config spec ~seed:2014 in

  (* 4. The result is a *network*: topology + distances + capacities +
        routes. *)
  print_endline "topology statistics:";
  Format.printf "%a@.@." Summary.pp (Summary.compute net.Network.graph);
  print_endline "network summary:";
  Format.printf "%a@.@." Network.pp_summary net;

  let route = Network.path net 0 7 in
  Printf.printf "route 0 -> 7: %s (geographic length %.3f)\n"
    (String.concat " -> " (List.map string_of_int route))
    (Network.path_length net 0 7);

  (* 5. Eyeball the map right here... *)
  print_newline ();
  print_endline (Cold_netio.Ascii_map.render net);
  print_newline ();

  (* 6. ...and export for graphviz (`neato -n -Tpng /tmp/cold_quickstart.dot`). *)
  Cold_netio.Dot.write_file ~path:"/tmp/cold_quickstart.dot"
    (Cold_netio.Dot.of_network net);
  Cold_netio.Dot.write_file ~path:"/tmp/cold_quickstart.gml"
    (Cold_netio.Gml.of_network net);
  print_endline "wrote /tmp/cold_quickstart.dot and /tmp/cold_quickstart.gml"
