(* Layered design: synthesize the PoP level with COLD, then expand each PoP
   with a traffic-sized template into a router-level network (§1: "the
   generation of the router-level network from the PoP level can be easily
   accomplished using ... structural methods").

   Run with:  dune exec examples/router_level.exe *)

module Graph = Cold_graph.Graph
module Network = Cold_net.Network
module Template = Cold_router.Template
module Expand = Cold_router.Expand

let () =
  let params = Cold.Cost.params ~k2:3e-4 ~k3:50.0 () in
  let cfg =
    {
      (Cold.Synthesis.default_config ~params ()) with
      Cold.Synthesis.ga =
        {
          Cold.Ga.default_settings with
          Cold.Ga.population_size = 40;
          generations = 40;
          num_saved = 8;
          num_crossover = 20;
          num_mutation = 12;
        };
      heuristic_permutations = 3;
    }
  in
  let spec =
    {
      (Cold_context.Context.default_spec ~n:15) with
      (* Pareto populations spread PoP traffic shares, so templates differ —
         exactly the paper's observation that the router level is more
         sensitive to the traffic model than the PoP level (§3.1). *)
      Cold_context.Context.population = Cold_traffic.Population.pareto_moderate;
    }
  in
  let net = Cold.Synthesis.synthesize cfg spec ~seed:11 in
  let r = Expand.expand net in
  Printf.printf "PoP level:    %3d nodes, %3d links\n"
    (Graph.node_count net.Network.graph)
    (Graph.edge_count net.Network.graph);
  Printf.printf "router level: %3d nodes, %3d links\n\n"
    (Expand.router_count r)
    (Graph.edge_count r.Expand.graph);
  Printf.printf "%5s %-14s %8s %6s\n" "PoP" "template" "routers" "cores";
  Array.iteri
    (fun pop t ->
      let name =
        match t with
        | Template.Single -> "single"
        | Template.Dual -> "dual"
        | Template.Full { access } -> Printf.sprintf "full+%d" access
      in
      Printf.printf "%5d %-14s %8d %6d\n" pop name (Template.router_count t)
        (List.length (Template.core_indices t)))
    r.Expand.templates;
  (* Check the expansion kept the network usable. *)
  Printf.printf "\nrouter-level connected: %b\n"
    (Cold_graph.Traversal.is_connected r.Expand.graph)
