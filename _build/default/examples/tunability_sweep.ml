(* Tunability: the §6 use case. An experimenter wants networks that range
   from tree-like to meshy and from flat to hub-and-spoke, controlled by two
   meaningful knobs: the bandwidth cost k2 and the hub cost k3.

   Run with:  dune exec examples/tunability_sweep.exe *)

module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Summary = Cold_metrics.Summary

let settings =
  (* A lighter GA than the paper's M = T = 100 keeps this example snappy. *)
  {
    Cold.Ga.default_settings with
    Cold.Ga.population_size = 40;
    generations = 40;
    num_saved = 8;
    num_crossover = 20;
    num_mutation = 12;
  }

let synthesize ~k2 ~k3 ~seed =
  let params = Cold.Cost.params ~k2 ~k3 () in
  let cfg =
    { (Cold.Synthesis.default_config ~params ()) with
      Cold.Synthesis.ga = settings; heuristic_permutations = 3 }
  in
  let rng = Prng.create seed in
  let ctx = Context.generate (Context.default_spec ~n:25) rng in
  let result = Cold.Synthesis.design_ga cfg ctx rng in
  Summary.compute result.Cold.Ga.best

let () =
  Printf.printf "%10s %8s | %10s %8s %8s %8s\n" "k2" "k3" "avg degree" "CVND"
    "diam" "GCC";
  print_endline (String.make 62 '-');
  List.iter
    (fun k3 ->
      List.iter
        (fun k2 ->
          let s = synthesize ~k2 ~k3 ~seed:7 in
          Printf.printf "%10.1e %8.0f | %10.2f %8.2f %8d %8.3f\n" k2 k3
            s.Summary.average_degree s.Summary.cvnd s.Summary.diameter
            s.Summary.global_clustering)
        [ 2.5e-5; 4.0e-4; 1.6e-3 ])
    [ 0.0; 100.0; 1000.0 ];
  print_endline
    "\nreading the table: degree and clustering rise with k2 (meshier);\n\
     CVND rises and the network collapses to hub-and-spoke as k3 grows."
