(* Zoo comparison: §6's validation workflow as a runnable example. Synthesize
   ensembles from each named cost preset and check where their statistics
   fall relative to the (synthetic) Topology Zoo population and the embedded
   real maps — "we can reproduce a representative range of these features".

   Run with:  dune exec examples/zoo_comparison.exe *)

module Context = Cold_context.Context
module Summary = Cold_metrics.Summary
module D = Cold_stats.Descriptive

let settings =
  {
    Cold.Ga.default_settings with
    Cold.Ga.population_size = 40;
    generations = 40;
    num_saved = 8;
    num_crossover = 20;
    num_mutation = 12;
  }

let ensemble_stats preset =
  let cfg =
    { (Cold.Synthesis.default_config ~params:preset.Cold.Presets.params ()) with
      Cold.Synthesis.ga = settings; heuristic_permutations = 3 }
  in
  let e = Cold.Ensemble.generate cfg (Context.default_spec ~n:25) ~count:6 ~seed:77 in
  let stat f = D.mean (Cold.Ensemble.statistic e f) in
  ( stat (fun s -> s.Summary.average_degree),
    stat (fun s -> s.Summary.cvnd),
    stat (fun s -> s.Summary.global_clustering) )

let () =
  let zoo = Cold_zoo.Zoo.synthetic ~count:250 ~seed:1 () in
  let cvnd = Cold_zoo.Zoo.cvnd_values zoo in
  let gcc = Cold_zoo.Zoo.gcc_values zoo in
  Printf.printf
    "zoo population (n=250): CVND p10/p50/p90 = %.2f / %.2f / %.2f;\n\
    \                        GCC  p10/p50/p90 = %.2f / %.2f / %.2f\n\n"
    (D.quantile cvnd 0.1) (D.median cvnd) (D.quantile cvnd 0.9)
    (D.quantile gcc 0.1) (D.median gcc) (D.quantile gcc 0.9);
  Printf.printf "%-24s %11s %7s %7s\n" "preset" "avg degree" "CVND" "GCC";
  print_endline (String.make 52 '-');
  List.iter
    (fun preset ->
      let (deg, cv, cl) = ensemble_stats preset in
      Printf.printf "%-24s %11.2f %7.2f %7.3f\n" preset.Cold.Presets.name deg cv cl)
    Cold.Presets.all;
  print_endline "\nembedded real maps for orientation:";
  List.iter
    (fun (e : Cold_zoo.Zoo.entry) ->
      let s = Summary.compute e.Cold_zoo.Zoo.graph in
      Printf.printf "%-24s %11.2f %7.2f %7.3f\n" e.Cold_zoo.Zoo.name
        s.Summary.average_degree s.Summary.cvnd s.Summary.global_clustering)
    (Cold_zoo.Zoo.reference ());
  print_endline
    "\nthe presets span the zoo's CVND range (≈0.2 trees to >1 hub-and-spoke)\n\
     and its clustering range — the §6 tunability claim, as a user workflow."
