lib/baselines/barabasi_albert.ml: Array Cold_graph Cold_prng Hashtbl
