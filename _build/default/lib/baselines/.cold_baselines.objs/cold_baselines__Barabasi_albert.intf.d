lib/baselines/barabasi_albert.mli: Cold_graph Cold_prng
