lib/baselines/comparison.ml: Array Cold Cold_context Cold_dk Cold_geom Cold_graph Cold_metrics Cold_prng Erdos_renyi Fkp Float Format List Plrg Waxman
