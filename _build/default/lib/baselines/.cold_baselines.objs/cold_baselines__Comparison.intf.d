lib/baselines/comparison.mli: Format
