lib/baselines/erdos_renyi.ml: Array Cold_graph Cold_prng
