lib/baselines/erdos_renyi.mli: Cold_graph Cold_prng
