lib/baselines/fkp.ml: Array Cold_geom Cold_graph
