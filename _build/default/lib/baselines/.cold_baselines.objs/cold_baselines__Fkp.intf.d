lib/baselines/fkp.mli: Cold_geom Cold_graph Cold_prng
