lib/baselines/plrg.ml: Array Cold_graph Cold_prng Float
