lib/baselines/plrg.mli: Cold_graph Cold_prng
