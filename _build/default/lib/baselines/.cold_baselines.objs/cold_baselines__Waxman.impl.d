lib/baselines/waxman.ml: Array Cold_geom Cold_graph Cold_prng Float
