lib/baselines/waxman.mli: Cold_geom Cold_graph Cold_prng
