(** Barabási–Albert preferential attachment — the generative mechanism behind
    power-law models, included so the criticism in §2 ("PoPs do not 'attach'
    to other PoPs according to a probability based on degree!") can be
    demonstrated quantitatively. *)

val generate : n:int -> m:int -> Cold_prng.Prng.t -> Cold_graph.Graph.t
(** [generate ~n ~m rng] grows a graph from an [m]-clique by attaching each
    new vertex to [m] distinct existing vertices chosen with probability
    proportional to degree. Requires [1 <= m < n]. Always connected. *)
