module Graph = Cold_graph.Graph
module Traversal = Cold_graph.Traversal
module Prng = Cold_prng.Prng
module Point_process = Cold_geom.Point_process
module Region = Cold_geom.Region
module Degree = Cold_metrics.Degree
module Context = Cold_context.Context

type method_id = Er | Waxman_m | Plrg | Hot | Dk_series | Cold_m

type verdict = Yes | Partial | No

type evidence = {
  distinct_fraction : float;
  connected_fraction : float;
  degree_range : float * float;
  parameter_count : int;
}

type row = {
  id : method_id;
  name : string;
  verdicts : verdict array;
  evidence : evidence;
}

let criteria =
  [|
    "statistical variation";
    "meets constraints";
    "meaningful parameters";
    "tunable";
    "generates network";
    "simple model";
  |]

let paper_table =
  [
    (Er, [| Yes; No; No; Partial; No; Yes |]);
    (Waxman_m, [| Yes; No; No; Partial; No; Yes |]);
    (Plrg, [| Yes; No; No; Partial; No; Yes |]);
    (Hot, [| Yes; Yes; Partial; Partial; Yes; Yes |]);
    (Dk_series, [| No; Partial; No; No; No; No |]);
    (Cold_m, [| Yes; Yes; Yes; Yes; Yes; Yes |]);
  ]

let method_name = function
  | Er -> "ER"
  | Waxman_m -> "Waxman"
  | Plrg -> "PLRG"
  | Hot -> "HOT"
  | Dk_series -> "dK-series"
  | Cold_m -> "COLD"

(* The structured input used for the dK row: a double-hub network with leaf
   spread, the shape of Fig 2(a). *)
let dk_input n =
  let g = Cold_graph.Builders.double_star (max 6 n) in
  Graph.add_edge g 2 3;
  (* A triangle between the two hubs and a shared neighbour hardens the 3K
     profile, as in the paper's small example. *)
  g

(* Reduced COLD settings: the table needs many runs, not paper-scale
   optimization quality. *)
let cold_settings =
  {
    Cold.Ga.default_settings with
    Cold.Ga.population_size = 40;
    generations = 30;
    num_saved = 8;
    num_crossover = 20;
    num_mutation = 12;
  }

let cold_graph ~n ~k2 rng =
  let ctx = Context.generate (Context.default_spec ~n) rng in
  let params = Cold.Cost.params ~k2 () in
  let result = Cold.Ga.run cold_settings params ctx rng in
  result.Cold.Ga.best

let generate_one id ~n ~knob rng =
  match id with
  | Er ->
    let p = knob /. float_of_int (n - 1) in
    Erdos_renyi.gnp ~n ~p:(Float.min 1.0 p) rng
  | Waxman_m ->
    let points =
      Point_process.generate Point_process.Uniform ~region:Region.unit_square
        ~n rng
    in
    Waxman.generate ~alpha:0.4 ~beta:(Float.min 1.0 (knob /. 6.0)) points rng
  | Plrg ->
    let w = Plrg.power_law_weights ~n ~exponent:2.5 ~average:knob in
    Plrg.chung_lu w rng
  | Hot ->
    let (g, _) = Fkp.generate ~n ~alpha:knob ~region:Region.unit_square rng in
    g
  | Dk_series ->
    Cold_dk.Rewire.sample ~level:Cold_dk.Rewire.K3 ~attempts:400 (dk_input n) rng
  | Cold_m ->
    (* knob rides k2 over the paper's range: map [2,6] → [2.5e-5, 1.6e-3]
       log-linearly. The range is calibrated for n = 30 PoPs; traffic volume
       grows as n², so rescale to keep the same cost regimes at other n. *)
    let t = (knob -. 2.0) /. 4.0 in
    let k2 = exp (log 2.5e-5 +. (t *. (log 1.6e-3 -. log 2.5e-5))) in
    let k2 = k2 *. (30.0 /. float_of_int n) ** 2.0 in
    cold_graph ~n ~k2 rng

let measure id ~trials ~n root =
  let mid_knob = match id with Hot -> 10.0 | _ -> 3.0 in
  let graphs =
    Array.init trials (fun i ->
        generate_one id ~n ~knob:mid_knob (Prng.split_at root i))
  in
  let distinct =
    (* Variation must be measured up to isomorphism: the paper's dK
       over-constraint is invisible to labelled comparison (Fig 2). *)
    let classes = Cold_dk.Iso.count_non_isomorphic (Array.to_list graphs) in
    float_of_int classes /. float_of_int trials
  in
  let connected =
    let c =
      Array.fold_left
        (fun acc g -> if Traversal.is_connected g then acc + 1 else acc)
        0 graphs
    in
    float_of_int c /. float_of_int trials
  in
  (* Tunability statistic: average degree for density-controlled models; the
     FKP/HOT family controls tree shape, so its knob is judged on hub size
     (max degree). *)
  let sweep stat knob =
    let gs = Array.init 5 (fun i -> generate_one id ~n ~knob (Prng.split_at root (1000 + i))) in
    Array.fold_left (fun acc g -> acc +. stat g) 0.0 gs /. 5.0
  in
  let degree_range =
    match id with
    | Hot ->
      let stat g = float_of_int (Degree.max_degree g) in
      (sweep stat 400.0, sweep stat 0.5)
    | Dk_series -> (sweep Degree.average mid_knob, sweep Degree.average mid_knob)
    | _ -> (sweep Degree.average 2.0, sweep Degree.average 6.0)
  in
  let parameter_count =
    match id with
    | Er -> 1
    | Waxman_m -> 2
    | Plrg -> 2
    | Hot -> 1
    | Dk_series -> Cold_dk.Subgraph_census.distinct (dk_input n) ~d:3 + n
      (* the 3K census plus the degree sequence itself *)
    | Cold_m -> 4
  in
  { distinct_fraction = distinct; connected_fraction = connected;
    degree_range; parameter_count }

let verdicts id (e : evidence) =
  let v1 =
    (* Occasional isomorphic collisions among small sparse outputs are normal
       even for genuinely random models; rigidity shows up as a collapse. *)
    if e.distinct_fraction >= 0.75 then Yes
    else if e.distinct_fraction >= 0.5 then Partial
    else No
  in
  let capacity_aware = match id with Hot | Cold_m -> true | _ -> false in
  let v2 =
    if e.connected_fraction < 0.8 then No
    else if capacity_aware then Yes
    else Partial
  in
  let v3 =
    (* Structural: are the parameters quantities a network engineer budgets
       (costs, locations, traffic)? *)
    match id with Cold_m -> Yes | Hot -> Partial | _ -> No
  in
  let v4 =
    let (lo, hi) = e.degree_range in
    (* Relative movement of the tuned statistic across the knob's range. *)
    let moves = Float.abs (hi -. lo) >= 0.2 *. Float.max 1e-9 (Float.min lo hi) in
    match id with
    | Cold_m -> if moves then Yes else Partial
    | Dk_series -> No
    | _ -> if moves then Partial else No
  in
  let v5 = match id with Hot | Cold_m -> Yes | _ -> No in
  let v6 = if e.parameter_count <= 6 then Yes else No in
  [| v1; v2; v3; v4; v5; v6 |]

let run ?(trials = 20) ~n ~seed () =
  if trials < 2 then invalid_arg "Comparison.run: need at least 2 trials";
  if n < 6 then invalid_arg "Comparison.run: need n >= 6";
  let methods = [ Er; Waxman_m; Plrg; Hot; Dk_series; Cold_m ] in
  List.mapi
    (fun i id ->
      let root = Prng.split_at (Prng.create seed) (i * 100_000) in
      let evidence = measure id ~trials ~n root in
      { id; name = method_name id; verdicts = verdicts id evidence; evidence })
    methods

let pp_verdict fmt = function
  | Yes -> Format.pp_print_string fmt "Y"
  | Partial -> Format.pp_print_string fmt "P"
  | No -> Format.pp_print_string fmt "x"

let pp_table fmt rows =
  Format.fprintf fmt "%-24s" "criterion";
  List.iter (fun r -> Format.fprintf fmt " %10s" r.name) rows;
  Format.pp_print_newline fmt ();
  Array.iteri
    (fun c label ->
      Format.fprintf fmt "%-24s" label;
      List.iter
        (fun r ->
          Format.fprintf fmt " %10s"
            (Format.asprintf "%a" pp_verdict r.verdicts.(c)))
        rows;
      Format.pp_print_newline fmt ())
    criteria;
  Format.fprintf fmt "%-24s" "(distinct frac)";
  List.iter (fun r -> Format.fprintf fmt " %10.2f" r.evidence.distinct_fraction) rows;
  Format.pp_print_newline fmt ();
  Format.fprintf fmt "%-24s" "(connected frac)";
  List.iter (fun r -> Format.fprintf fmt " %10.2f" r.evidence.connected_fraction) rows;
  Format.pp_print_newline fmt ();
  Format.fprintf fmt "%-24s" "(param count)";
  List.iter (fun r -> Format.fprintf fmt " %10d" r.evidence.parameter_count) rows;
  Format.pp_print_newline fmt ()
