(** Programmatic reproduction of Table 1: six synthesis methods scored
    against the six Introduction criteria.

    Three of the criteria are measured by experiment on this machine:
    {e statistical variation} (are repeated runs distinct?), {e meets
    constraints} (are outputs connected, i.e. able to carry any traffic
    matrix?), and {e tunable} (does the method's primary knob actually move
    average degree across a useful range?). The other three — meaningful
    parameters, generates-a-network, simplicity — are structural properties
    of each model, recorded here with the measured parameter counts that
    justify them (e.g. the dK-series' census size from
    {!Cold_dk.Subgraph_census} versus COLD's four costs). *)

type method_id = Er | Waxman_m | Plrg | Hot | Dk_series | Cold_m

type verdict = Yes | Partial | No

type evidence = {
  distinct_fraction : float;
      (** Fraction of pairwise-distinct outputs over the trial set. *)
  connected_fraction : float;
  degree_range : float * float;  (** Avg degree at the knob's extremes. *)
  parameter_count : int;  (** Parameters needed to specify the model. *)
}

type row = {
  id : method_id;
  name : string;
  verdicts : verdict array;  (** Length 6, criteria in the paper's order. *)
  evidence : evidence;
}

val criteria : string array
(** The six row labels of Table 1. *)

val paper_table : (method_id * verdict array) list
(** Table 1 exactly as printed in the paper, for side-by-side comparison. *)

val run : ?trials:int -> n:int -> seed:int -> unit -> row list
(** [run ~n ~seed ()] measures every method with [trials] (default 20)
    independent runs on [n]-node instances. *)

val pp_verdict : Format.formatter -> verdict -> unit
(** ✓ / P / ✗. *)

val pp_table : Format.formatter -> row list -> unit
(** Renders the measured table in the paper's layout. *)
