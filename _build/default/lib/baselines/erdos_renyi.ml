module Graph = Cold_graph.Graph
module Dist = Cold_prng.Dist

let gnp ~n ~p rng =
  if p < 0.0 || p > 1.0 then invalid_arg "Erdos_renyi.gnp: p out of range";
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Dist.bernoulli rng ~p then Graph.add_edge g u v
    done
  done;
  g

let gnm ~n ~m rng =
  let total = n * (n - 1) / 2 in
  if m < 0 || m > total then invalid_arg "Erdos_renyi.gnm: m out of range";
  (* Sample m distinct pair indices and decode them. *)
  let picks = Dist.sample_without_replacement rng ~k:m ~n:total in
  let g = Graph.create n in
  Array.iter
    (fun idx ->
      (* Decode linear index into (u, v), u < v, row-major upper triangle. *)
      let rec find_row u acc =
        let row = n - 1 - u in
        if idx < acc + row then (u, u + 1 + (idx - acc)) else find_row (u + 1) (acc + row)
      in
      let (u, v) = find_row 0 0 in
      Graph.add_edge g u v)
    picks;
  g
