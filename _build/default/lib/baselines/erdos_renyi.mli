(** Erdős–Rényi random graphs — the classic null model of Table 1 and the
    random component of the GA's initial population. Both the G(n,p) and
    G(n,m) variants are provided; Fig 2's "(b)" panels are G(n,m) with m set
    to the example network's link count. *)

val gnp : n:int -> p:float -> Cold_prng.Prng.t -> Cold_graph.Graph.t
(** Each of the C(n,2) links present independently with probability [p].
    Raises [Invalid_argument] if [p] is outside [0, 1]. *)

val gnm : n:int -> m:int -> Cold_prng.Prng.t -> Cold_graph.Graph.t
(** Exactly [m] links, uniform over all such graphs. Raises
    [Invalid_argument] if [m] exceeds C(n,2). *)
