module Graph = Cold_graph.Graph
module Point = Cold_geom.Point
module Region = Cold_geom.Region

let generate ~n ~alpha ~region rng =
  if n < 1 then invalid_arg "Fkp.generate: n must be positive";
  if alpha < 0.0 then invalid_arg "Fkp.generate: alpha must be non-negative";
  let points = Array.init n (fun _ -> Region.sample region rng) in
  let g = Graph.create n in
  let hops = Array.make n 0 in
  for v = 1 to n - 1 do
    let best = ref 0 in
    let best_cost = ref infinity in
    for u = 0 to v - 1 do
      let c = (alpha *. Point.distance points.(u) points.(v)) +. float_of_int hops.(u) in
      if c < !best_cost then begin
        best_cost := c;
        best := u
      end
    done;
    Graph.add_edge g v !best;
    hops.(v) <- hops.(!best) + 1
  done;
  (g, points)
