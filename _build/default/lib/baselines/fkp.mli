(** The FKP heuristically-optimized trade-off model (Fabrikant, Koutsoupias &
    Papadimitriou, 2002), cited in §3 as the precursor of optimization-driven
    synthesis "but their cost function did not have a strong analogue to
    real-life costs".

    Vertices arrive one at a time at uniform random positions; each attaches
    to the existing vertex minimizing α·d(u, v) + h_v, where h_v is v's hop
    count to the root. Small α gives stars, large α gives geometric trees —
    a one-parameter HOT family used as a Table 1 reference point. *)

val generate :
  n:int ->
  alpha:float ->
  region:Cold_geom.Region.t ->
  Cold_prng.Prng.t ->
  Cold_graph.Graph.t * Cold_geom.Point.t array
(** [generate ~n ~alpha ~region rng] returns the attachment tree (vertex 0 is
    the root) and the sampled positions. Requires [n >= 1], [alpha >= 0]. *)
