(** Power-Law Random Graphs (Aiello–Chung–Lu) — Table 1's PLRG row.

    Two classic constructions over a power-law degree/weight sequence with
    exponent β:
    - the Chung–Lu model, where link {u,v} appears independently with
      probability min(1, w_u·w_v / Σw);
    - the configuration model, which realizes an explicit degree sequence by
      uniform stub matching (self-loops and duplicate edges are discarded,
      the usual "erased" variant). *)

val power_law_weights : n:int -> exponent:float -> average:float -> float array
(** [power_law_weights ~n ~exponent ~average] is a deterministic Zipf-like
    weight sequence w_i ∝ (i+1)^(−1/(exponent−1)), rescaled so the mean is
    [average]. Requires [exponent > 1]. *)

val power_law_degrees :
  n:int -> exponent:float -> min_degree:int -> Cold_prng.Prng.t -> int array
(** Random degree sequence: P(D ≥ d) = (min_degree/d)^(exponent−1). The sum
    is forced even by incrementing one entry if needed. *)

val chung_lu : float array -> Cold_prng.Prng.t -> Cold_graph.Graph.t
(** [chung_lu weights rng] draws a Chung–Lu graph. *)

val configuration : int array -> Cold_prng.Prng.t -> Cold_graph.Graph.t
(** [configuration degrees rng] matches stubs uniformly; collisions are
    erased so realized degrees can undershoot the request. Raises
    [Invalid_argument] on negative degrees or odd sum. *)
