module Graph = Cold_graph.Graph
module Point = Cold_geom.Point
module Dist = Cold_prng.Dist

let generate ~alpha ~beta points rng =
  if alpha <= 0.0 then invalid_arg "Waxman.generate: alpha must be positive";
  if beta < 0.0 || beta > 1.0 then invalid_arg "Waxman.generate: beta out of range";
  let n = Array.length points in
  let g = Graph.create n in
  let scale = ref 0.0 in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      scale := Float.max !scale (Point.distance points.(u) points.(v))
    done
  done;
  if !scale > 0.0 then
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        let d = Point.distance points.(u) points.(v) in
        let p = beta *. exp (-.d /. (alpha *. !scale)) in
        if Dist.bernoulli rng ~p then Graph.add_edge g u v
      done
    done;
  g
