(** Waxman random graphs: ER with geographic locality. Link {u,v} appears
    with probability β·exp(−d(u,v) / (α·L)) where L is the largest pairwise
    distance. One of Table 1's comparison models. *)

val generate :
  alpha:float ->
  beta:float ->
  Cold_geom.Point.t array ->
  Cold_prng.Prng.t ->
  Cold_graph.Graph.t
(** Raises [Invalid_argument] unless [alpha > 0] and [beta ∈ [0, 1]]. For a
    single point (L = 0) the result has no links. *)
