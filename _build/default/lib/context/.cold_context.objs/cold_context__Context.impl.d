lib/context/context.ml: Array Cold_geom Cold_traffic
