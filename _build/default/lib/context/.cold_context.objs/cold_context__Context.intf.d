lib/context/context.mli: Cold_geom Cold_prng Cold_traffic
