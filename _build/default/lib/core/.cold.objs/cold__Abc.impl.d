lib/core/abc.ml: Cold_context Cold_metrics Cold_prng Cost Float Ga List Synthesis
