lib/core/abc.ml: Array Cold_context Cold_metrics Cold_par Cold_prng Cost Float Ga List Synthesis
