lib/core/abc.mli: Cold_graph Cost Ga
