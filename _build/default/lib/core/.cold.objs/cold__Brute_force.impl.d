lib/core/brute_force.ml: Array Cold_context Cold_graph Cold_par Cost Int Option
