lib/core/brute_force.mli: Cold_context Cold_graph Cost
