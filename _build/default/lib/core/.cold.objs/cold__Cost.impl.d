lib/core/cost.ml: Cold_context Cold_graph Cold_net Format
