lib/core/cost.mli: Cold_context Cold_graph Format
