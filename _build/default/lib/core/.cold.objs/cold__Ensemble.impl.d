lib/core/ensemble.ml: Array Cold_context Cold_graph Cold_metrics Cold_net Cold_par Cold_prng Cold_stats Synthesis
