lib/core/ensemble.mli: Cold_context Cold_metrics Cold_net Cold_stats Synthesis
