lib/core/evolution.ml: Array Cold_context Cold_geom Cold_graph Cold_net Cold_prng Cold_traffic Cost Float Ga Heuristics List Repair
