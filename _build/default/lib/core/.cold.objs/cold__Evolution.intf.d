lib/core/evolution.mli: Cold_context Cold_net Cold_prng Cost Ga
