lib/core/fitness_cache.ml: Array Cold_graph Int64 Mutex
