lib/core/fitness_cache.mli: Cold_graph
