lib/core/ga.ml: Array Cold_context Cold_graph Cold_par Cold_prng Cost Fitness_cache Float List Operators Repair
