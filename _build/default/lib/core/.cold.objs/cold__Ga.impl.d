lib/core/ga.ml: Array Cold_context Cold_graph Cold_prng Cost Float List Operators Repair
