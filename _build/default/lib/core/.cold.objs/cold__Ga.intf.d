lib/core/ga.mli: Cold_context Cold_graph Cold_prng Cost
