lib/core/heuristics.ml: Array Cold_context Cold_graph Cold_prng Cost List Option
