lib/core/heuristics.mli: Cold_context Cold_graph Cold_prng Cost
