lib/core/local_search.ml: Cold_context Cold_graph Cold_prng Cost Operators Repair
