lib/core/local_search.mli: Cold_context Cold_graph Cold_prng Cost
