lib/core/multi_as.ml: Array Cold_context Cold_geom Cold_net Cold_prng Cold_traffic Float Hashtbl List Synthesis
