lib/core/multi_as.mli: Cold_geom Cold_net Synthesis
