lib/core/operators.ml: Array Cold_context Cold_geom Cold_graph Cold_prng Float Repair
