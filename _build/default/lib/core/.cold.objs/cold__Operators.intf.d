lib/core/operators.mli: Cold_context Cold_graph Cold_prng
