lib/core/presets.ml: Cost List
