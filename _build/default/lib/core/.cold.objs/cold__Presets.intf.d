lib/core/presets.mli: Cost
