lib/core/repair.ml: Cold_context Cold_graph List
