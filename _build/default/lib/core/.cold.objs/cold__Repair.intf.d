lib/core/repair.mli: Cold_context Cold_graph
