lib/core/synthesis.ml: Cold_context Cold_net Cold_prng Cost Ga Heuristics
