module Prng = Cold_prng.Prng
module Dist = Cold_prng.Dist
module Context = Cold_context.Context
module Summary = Cold_metrics.Summary

type observation = {
  n : int;
  average_degree : float;
  global_clustering : float;
  cvnd : float;
  diameter : float;
}

type prior = {
  k0_range : float * float;
  k2_range : float * float;
  k3_range : float * float;
}

type posterior_sample = { params : Cost.params; distance : float }

let observe g =
  let s = Summary.compute g in
  {
    n = s.Summary.nodes;
    average_degree = s.Summary.average_degree;
    global_clustering = s.Summary.global_clustering;
    cvnd = s.Summary.cvnd;
    diameter = float_of_int s.Summary.diameter;
  }

let default_prior =
  { k0_range = (1.0, 100.0); k2_range = (1e-5, 1e-2); k3_range = (0.1, 1000.0) }

let log_uniform rng (lo, hi) =
  if lo <= 0.0 || hi <= lo then invalid_arg "Abc: bad prior range";
  exp (Dist.uniform rng ~lo:(log lo) ~hi:(log hi))

let distance obs sim =
  (* Relative error per statistic; clustering and CVND are already O(1) so a
     floor keeps near-zero observations from exploding the scale. *)
  let term o s =
    let scale = Float.max 0.25 (Float.abs o) in
    let d = (s -. o) /. scale in
    d *. d
  in
  sqrt
    (term obs.average_degree sim.average_degree
    +. term obs.global_clustering sim.global_clustering
    +. term obs.cvnd sim.cvnd
    +. term obs.diameter sim.diameter)
  /. 2.0

let reduced_ga =
  {
    Ga.default_settings with
    Ga.population_size = 40;
    generations = 40;
    num_saved = 8;
    num_crossover = 20;
    num_mutation = 12;
  }

(* The paper fixes k1 as the unit of cost; ABC infers only k0, k2, k3. *)
let unit_k1 = 1.0

let infer ?(domains = 1) ?(prior = default_prior) ?(trials = 200)
    ?(epsilon = 0.35) ?(ga = reduced_ga) obs ~seed =
  if obs.n < 2 then invalid_arg "Abc.infer: observation too small";
  if trials < 1 then invalid_arg "Abc.infer: trials must be positive";
  let root = Prng.create seed in
  let spec = Context.default_spec ~n:obs.n in
  (* Each trial owns a child PRNG stream, so trials are independent tasks;
     acceptances are then folded in trial order, reproducing the sequential
     accumulation (and the stable sort's ordering of equal distances)
     exactly. *)
  let simulate trial =
    let rng = Prng.split_at root trial in
    let k0 = log_uniform rng prior.k0_range in
    let k2 = log_uniform rng prior.k2_range in
    let k3_raw = log_uniform rng prior.k3_range in
    (* Keep posterior mass at "no hub cost": small draws collapse to 0 on a
       coin flip. *)
    let k3 = if k3_raw < 1.0 && Prng.bool rng then 0.0 else k3_raw in
    let params = Cost.params ~k0 ~k1:unit_k1 ~k2 ~k3 () in
    let cfg =
      { (Synthesis.default_config ~params ()) with Synthesis.ga;
        seed_with_heuristics = false }
    in
    let ctx = Context.generate spec rng in
    let result = Synthesis.design_ga cfg ctx rng in
    let sim = observe result.Ga.best in
    let d = distance obs sim in
    if d <= epsilon then Some { params; distance = d } else None
  in
  let outcomes =
    Cold_par.Par.with_pool ~domains (fun pool ->
        Cold_par.Par.map_array pool simulate (Array.init trials (fun i -> i)))
  in
  let accepted =
    Array.fold_left
      (fun acc outcome ->
        match outcome with Some s -> s :: acc | None -> acc)
      [] outcomes
  in
  List.sort (fun a b -> Float.compare a.distance b.distance) accepted

let posterior_mean = function
  | [] -> None
  | samples ->
    let k = float_of_int (List.length samples) in
    let geo f =
      exp
        (List.fold_left (fun acc s -> acc +. log (Float.max 1e-12 (f s.params)))
           0.0 samples
        /. k)
    in
    let arith f = List.fold_left (fun acc s -> acc +. f s.params) 0.0 samples /. k in
    Some
      (Cost.params ~k0:(geo (fun p -> p.Cost.k0)) ~k1:unit_k1
         ~k2:(geo (fun p -> p.Cost.k2))
         ~k3:(arith (fun p -> p.Cost.k3))
         ())
