(** Approximate Bayesian Computation for cost-parameter estimation.

    The paper's stated future work (§8): "use statistical estimation
    techniques, most notably ABC ... to map real networks to parameters ki,
    to assist experimenters in determining appropriate values". This module
    implements rejection-ABC: draw candidate (k0, k2, k3) from log-uniform
    priors (k1 ≡ 1 by the scale-invariance of §3.2.3), synthesize a network
    of the observed size, and accept the candidate when the synthetic
    network's summary statistics fall within ε of the observation. *)

type observation = {
  n : int;
  average_degree : float;
  global_clustering : float;
  cvnd : float;
  diameter : float;
}

type prior = {
  k0_range : float * float;  (** Log-uniform; default (1, 100). *)
  k2_range : float * float;  (** Log-uniform; default (1e-5, 1e-2). *)
  k3_range : float * float;  (** Log-uniform; default (0.1, 1000); a draw
                                 below 1 is treated as k3 = 0 half the time
                                 to keep mass at "no hub cost". *)
}

type posterior_sample = { params : Cost.params; distance : float }

val observe : Cold_graph.Graph.t -> observation
(** Summary statistics of a real (or reference) topology. *)

val default_prior : prior

val distance : observation -> observation -> float
(** Normalized L2 distance over the four statistics (each scaled by the
    observation's magnitude, so statistics with different units are
    comparable). *)

val infer :
  ?domains:int ->
  ?prior:prior ->
  ?trials:int ->
  ?epsilon:float ->
  ?ga:Ga.settings ->
  observation ->
  seed:int ->
  posterior_sample list
(** [infer obs ~seed] runs [trials] (default 200) simulations with reduced
    GA settings (default: M = 40, T = 40) and returns accepted samples
    (distance ≤ [epsilon], default 0.35) sorted by ascending distance.
    Contexts are drawn fresh per trial with the observation's n.

    [?domains] (default 1; 0 autodetects) spreads trials — each a full
    synthesis on its own split PRNG stream — across a domain pool; the
    accepted list is identical at every setting. *)

val posterior_mean : posterior_sample list -> Cost.params option
(** Mean of accepted parameters (geometric mean for the log-scale ki);
    [None] when no sample was accepted. *)
