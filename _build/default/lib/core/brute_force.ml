module Graph = Cold_graph.Graph
module Union_find = Cold_graph.Union_find
module Context = Cold_context.Context

(* All C(n,2) vertex pairs in a fixed order. *)
let pairs n =
  let acc = ref [] in
  for u = n - 1 downto 0 do
    for v = n - 1 downto u + 1 do
      acc := (u, v) :: !acc
    done
  done;
  Array.of_list !acc

(* Connectivity of an edge-subset given as a bitmask, via union-find. *)
let mask_connected n pair_array mask =
  let uf = Union_find.create n in
  Array.iteri
    (fun i (u, v) ->
      if mask land (1 lsl i) <> 0 then ignore (Union_find.union uf u v))
    pair_array;
  Union_find.count uf = 1

let graph_of_mask n pair_array mask =
  let g = Graph.create n in
  Array.iteri
    (fun i (u, v) -> if mask land (1 lsl i) <> 0 then Graph.add_edge g u v)
    pair_array;
  g

let optimal ?(max_n = 8) params ctx =
  let n = Context.n ctx in
  if n < 2 then invalid_arg "Brute_force.optimal: need at least 2 PoPs";
  if n > max_n then invalid_arg "Brute_force.optimal: too many PoPs to enumerate";
  let pair_array = pairs n in
  let bits = Array.length pair_array in
  let best = ref None in
  for mask = 0 to (1 lsl bits) - 1 do
    (* A connected graph needs at least n-1 edges: cheap popcount prune. *)
    let rec popcount m acc = if m = 0 then acc else popcount (m lsr 1) (acc + (m land 1)) in
    if popcount mask 0 >= n - 1 && mask_connected n pair_array mask then begin
      let g = graph_of_mask n pair_array mask in
      let c = Cost.evaluate params ctx g in
      match !best with
      | None -> best := Some (g, c)
      | Some (_, bc) -> if c < bc then best := Some (g, c)
    end
  done;
  Option.get !best

let count_connected n =
  if n < 1 || n > 6 then invalid_arg "Brute_force.count_connected: n must be in 1..6";
  if n = 1 then 1
  else begin
    let pair_array = pairs n in
    let bits = Array.length pair_array in
    let count = ref 0 in
    for mask = 0 to (1 lsl bits) - 1 do
      if mask_connected n pair_array mask then incr count
    done;
    !count
  end
