module Graph = Cold_graph.Graph
module Context = Cold_context.Context
module Routing = Cold_net.Routing

type params = { k0 : float; k1 : float; k2 : float; k3 : float }

type breakdown = {
  existence : float;
  length : float;
  bandwidth : float;
  hub : float;
  total : float;
}

(* lint: allow magic-cost-constant — these defaults are the canonical values. *)
let params ?(k0 = 10.0) ?(k1 = 1.0) ?(k2 = 1e-4) ?(k3 = 0.0) () =
  if k0 < 0.0 || k1 < 0.0 || k2 < 0.0 || k3 < 0.0 then
    invalid_arg "Cost.params: costs must be non-negative";
  { k0; k1; k2; k3 }

let infeasible =
  { existence = infinity; length = infinity; bandwidth = infinity;
    hub = infinity; total = infinity }

let evaluate_breakdown p ctx g =
  if Graph.node_count g <> Context.n ctx then
    invalid_arg "Cost.evaluate: graph size does not match context";
  let length u v = Context.distance ctx u v in
  match Routing.route g ~length ~tm:ctx.Context.tm with
  | exception Routing.Disconnected -> infeasible
  | loads ->
    let existence = p.k0 *. float_of_int (Graph.edge_count g) in
    let len = Graph.fold_edges g (fun acc u v -> acc +. length u v) 0.0 in
    let bandwidth = p.k2 *. Routing.total_volume_length loads ~length in
    let hub = p.k3 *. float_of_int (Graph.core_count g) in
    let length_cost = p.k1 *. len in
    {
      existence;
      length = length_cost;
      bandwidth;
      hub;
      total = existence +. length_cost +. bandwidth +. hub;
    }

let evaluate p ctx g = (evaluate_breakdown p ctx g).total

let pp_params fmt p =
  Format.fprintf fmt "{k0=%g; k1=%g; k2=%g; k3=%g}" p.k0 p.k1 p.k2 p.k3

let pp_breakdown fmt b =
  Format.fprintf fmt
    "total=%.4f (existence=%.4f length=%.4f bandwidth=%.4f hub=%.4f)" b.total
    b.existence b.length b.bandwidth b.hub
