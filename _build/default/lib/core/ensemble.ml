module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Network = Cold_net.Network
module Summary = Cold_metrics.Summary
module Graph = Cold_graph.Graph

type t = { networks : Network.t array; summaries : Summary.t array }

let finish networks =
  {
    networks;
    summaries = Array.map (fun n -> Summary.compute n.Network.graph) networks;
  }

let generate ?(on_progress = fun _ -> ()) cfg spec ~count ~seed =
  if count < 0 then invalid_arg "Ensemble.generate";
  let root = Prng.create seed in
  let networks =
    Array.init count (fun i ->
        let rng = Prng.split_at root i in
        let ctx = Context.generate spec rng in
        let net = Synthesis.design cfg ctx rng in
        on_progress i;
        net)
  in
  finish networks

let same_context cfg ctx ~count ~seed =
  if count < 0 then invalid_arg "Ensemble.same_context";
  let root = Prng.create seed in
  let networks =
    Array.init count (fun i ->
        let rng = Prng.split_at root i in
        Synthesis.design cfg ctx rng)
  in
  finish networks

let statistic t f = Array.map f t.summaries

let mean_ci t f ~seed =
  Cold_stats.Bootstrap.mean_ci (Prng.create seed) (statistic t f)

let distinct_topologies t =
  let n = Array.length t.networks in
  let distinct = ref 0 in
  for i = 0 to n - 1 do
    let duplicate = ref false in
    for j = 0 to i - 1 do
      if
        (not !duplicate)
        && Graph.equal t.networks.(i).Network.graph t.networks.(j).Network.graph
      then duplicate := true
    done;
    if not !duplicate then incr distinct
  done;
  !distinct
