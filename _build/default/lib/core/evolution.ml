module Graph = Cold_graph.Graph
module Prng = Cold_prng.Prng
module Point_process = Cold_geom.Point_process
module Population = Cold_traffic.Population
module Gravity = Cold_traffic.Gravity
module Context = Cold_context.Context
module Network = Cold_net.Network

type step = { new_pops : int; traffic_growth : float }

type config = {
  params : Cost.params;
  decommission_cost : float;
  ga : Ga.settings;
}

type state = {
  context : Context.t;
  network : Network.t;
  installed : (int * int) list;
  cumulative_decommissions : int;
}

let default_config ?(params = Cost.params ()) () =
  {
    params;
    decommission_cost = 50.0;
    ga =
      {
        Ga.default_settings with
        Ga.population_size = 50;
        generations = 50;
        num_saved = 10;
        num_crossover = 25;
        num_mutation = 15;
      };
  }

let greenfield cfg ctx rng =
  let seeds = Heuristics.seed_set cfg.params ctx rng in
  let result = Ga.run ~seeds cfg.ga cfg.params ctx rng in
  {
    context = ctx;
    network = Network.build ctx result.Ga.best;
    installed = Graph.edges result.Ga.best;
    cumulative_decommissions = 0;
  }

(* Objective with legacy charges: plain COLD cost plus decommission_cost per
   installed link the candidate drops. *)
let legacy_objective cfg ctx ~installed g =
  let base = Cost.evaluate cfg.params ctx g in
  if not (Float.is_finite base) then base
  else begin
    let dropped =
      List.fold_left
        (fun acc (u, v) -> if Graph.mem_edge g u v then acc else acc + 1)
        0 installed
    in
    base +. (cfg.decommission_cost *. float_of_int dropped)
  end

let evolve cfg state step rng =
  if step.new_pops < 0 then invalid_arg "Evolution.evolve: negative new_pops";
  if step.traffic_growth < 0.0 then
    invalid_arg "Evolution.evolve: negative traffic growth";
  let old_ctx = state.context in
  let spec = old_ctx.Context.spec in
  (* Extend the geography: old PoPs keep their indices. *)
  let new_points =
    Point_process.generate Point_process.Uniform ~region:spec.Context.region
      ~n:step.new_pops rng
  in
  let points = Array.append old_ctx.Context.points new_points in
  let new_pops_arr = Population.generate spec.Context.population ~n:step.new_pops rng in
  let populations = Array.append (Gravity.populations old_ctx.Context.tm) new_pops_arr in
  let traffic_scale = spec.Context.traffic_scale *. step.traffic_growth in
  let ctx = Context.of_points_and_populations ~traffic_scale points populations in
  let n = Array.length points in
  (* Legacy seed: installed plant plus cheap attachment of the new PoPs. *)
  let legacy = Graph.create n in
  List.iter (fun (u, v) -> Graph.add_edge legacy u v) state.installed;
  ignore (Repair.repair ctx legacy);
  let seeds = legacy :: Heuristics.seed_set cfg.params ctx rng in
  let objective = legacy_objective cfg ctx ~installed:state.installed in
  let result = Ga.run_custom ~seeds cfg.ga ~objective ctx rng in
  let best = result.Ga.best in
  let dropped =
    List.fold_left
      (fun acc (u, v) -> if Graph.mem_edge best u v then acc else acc + 1)
      0 state.installed
  in
  {
    context = ctx;
    network = Network.build ctx best;
    installed = Graph.edges best;
    cumulative_decommissions = state.cumulative_decommissions + dropped;
  }

let run cfg ~initial_n ~steps ~seed =
  let root = Prng.create seed in
  let ctx = Context.generate (Context.default_spec ~n:initial_n) (Prng.split_at root 0) in
  let initial = greenfield cfg ctx (Prng.split_at root 1) in
  let (_, states) =
    List.fold_left
      (fun (i, acc) step ->
        let prev = List.hd acc in
        let next = evolve cfg prev step (Prng.split_at root (i + 2)) in
        (i + 1, next :: acc))
      (0, [ initial ])
      steps
  in
  List.rev states

let legacy_penalty cfg state rng =
  let fresh = greenfield cfg state.context rng in
  let evolved_cost =
    Cost.evaluate cfg.params state.context state.network.Network.graph
  in
  let fresh_cost =
    Cost.evaluate cfg.params state.context fresh.network.Network.graph
  in
  (evolved_cost -. fresh_cost) /. fresh_cost
