(** Incremental network evolution.

    "Networks are rarely designed from scratch — they evolve" (§3). This
    module grows an existing design: new PoPs join the geography, traffic
    grows, and the operator re-optimizes {e subject to what is already in the
    ground} — installed links may be kept or (at a price) decommissioned,
    which is how real backbones accrete their shape. Comparing an evolved
    network against a greenfield design for the same final context measures
    the {e cost of legacy}, a question COLD's meaningful parameters make
    directly expressible. *)

type step = {
  new_pops : int;  (** PoPs added this step. *)
  traffic_growth : float;  (** Multiplier on the traffic scale, >= 0. *)
}

type config = {
  params : Cost.params;
  decommission_cost : float;
      (** One-off cost per removed installed link (digging it up / breaking a
          contract). [infinity] freezes installed links. *)
  ga : Ga.settings;
}

type state = {
  context : Cold_context.Context.t;
  network : Cold_net.Network.t;
  installed : (int * int) list;  (** Links inherited by the next step. *)
  cumulative_decommissions : int;
}

val default_config : ?params:Cost.params -> unit -> config
(** Decommission cost 50, reduced GA (M = T = 50). *)

val greenfield : config -> Cold_context.Context.t -> Cold_prng.Prng.t -> state
(** Plain COLD design of the context — evolution's starting point. *)

val evolve : config -> state -> step -> Cold_prng.Prng.t -> state
(** [evolve cfg state step rng] extends the geography by [step.new_pops]
    uniform PoPs (with fresh populations), scales traffic, and re-optimizes.
    The optimization cost charges [decommission_cost] for every installed
    link absent from a candidate, so designs keep legacy links unless
    removing them pays. Raises [Invalid_argument] on negative growth. *)

val run :
  config ->
  initial_n:int ->
  steps:step list ->
  seed:int ->
  state list
(** [run cfg ~initial_n ~steps ~seed] is the full trajectory: greenfield
    design of [initial_n] PoPs, then one {!evolve} per step. Returns all
    states, oldest first. *)

val legacy_penalty : config -> state -> Cold_prng.Prng.t -> float
(** [legacy_penalty cfg state rng] is (evolved cost − greenfield cost) /
    greenfield cost for [state]'s context: how much the inherited plant
    costs relative to designing from scratch (>= 0 up to optimizer noise). *)
