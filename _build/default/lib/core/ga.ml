module Graph = Cold_graph.Graph
module Mst = Cold_graph.Mst
module Dist = Cold_prng.Dist
module Context = Cold_context.Context
module Par = Cold_par.Par

type settings = {
  population_size : int;
  generations : int;
  num_saved : int;
  num_crossover : int;
  num_mutation : int;
  tournament_pool : int;
  tournament_winners : int;
  node_mutation_prob : float;
  init_edge_factor : float;
}

type result = {
  best : Graph.t;
  best_cost : float;
  final_population : (Graph.t * float) array;
  history : float array;
  evaluations : int;
  cache_hits : int;
  cache_misses : int;
}

let default_settings =
  {
    population_size = 100;
    generations = 100;
    num_saved = 20;
    num_crossover = 50;
    num_mutation = 30;
    tournament_pool = 10;
    tournament_winners = 2;
    node_mutation_prob = 0.5;
    init_edge_factor = 1.5;
  }

let default_cache_slots = 1024

let validate s =
  if s.population_size < 2 then invalid_arg "Ga: population_size must be >= 2";
  if s.generations < 0 then invalid_arg "Ga: generations must be >= 0";
  if s.num_saved < 1 then invalid_arg "Ga: num_saved must be >= 1";
  if s.num_crossover < 0 || s.num_mutation < 0 then
    invalid_arg "Ga: operator counts must be non-negative";
  if s.num_saved + s.num_crossover + s.num_mutation <> s.population_size then
    invalid_arg "Ga: num_saved + num_crossover + num_mutation must equal population_size";
  if s.tournament_winners < 1 || s.tournament_pool < s.tournament_winners then
    invalid_arg "Ga: need tournament_pool >= tournament_winners >= 1";
  if s.node_mutation_prob < 0.0 || s.node_mutation_prob > 1.0 then
    invalid_arg "Ga: node_mutation_prob out of range";
  if s.init_edge_factor <= 0.0 then invalid_arg "Ga: init_edge_factor must be positive"

let erdos_renyi_repaired ctx ~p rng =
  let n = Context.n ctx in
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Dist.bernoulli rng ~p then Graph.add_edge g u v
    done
  done;
  ignore (Repair.repair ctx g);
  g

(* Candidate graphs are produced serially with the RNG (so the random
   stream is identical at every domain count), then costed as one batch:
   the pool writes each cost into the slot named by its candidate's index,
   which keeps population order — and every downstream sort and tie-break —
   bit-identical to the sequential run. *)
let initial_population ~seeds settings ctx rng ~evaluate_batch =
  let n = Context.n ctx in
  let mst = Mst.mst_graph ~n ~weight:(fun u v -> Context.distance ctx u v) in
  let clique = Graph.complete n in
  let fixed = mst :: clique :: seeds in
  let fixed_count = List.length fixed in
  let pairs = float_of_int (n * (n - 1) / 2) in
  let p = Float.min 1.0 (settings.init_edge_factor *. float_of_int n /. pairs) in
  let random_count = max 0 (settings.population_size - fixed_count) in
  let graphs = Array.make (fixed_count + random_count) clique in
  List.iteri (fun i g -> graphs.(i) <- g) fixed;
  for i = 0 to random_count - 1 do
    graphs.(fixed_count + i) <- erdos_renyi_repaired ctx ~p rng
  done;
  let pop = evaluate_batch graphs in
  (* If seeds overflow the population, keep the cheapest M. *)
  Array.sort (fun (_, a) (_, b) -> Float.compare a b) pop;
  if Array.length pop > settings.population_size then
    Array.sub pop 0 settings.population_size
  else pop

let run_custom ?(domains = 1) ?(cache_slots = default_cache_slots) ?(seeds = [])
    settings ~objective ctx rng =
  validate settings;
  let n = Context.n ctx in
  if n < 2 then invalid_arg "Ga.run: need at least 2 PoPs";
  List.iter
    (fun g ->
      if Graph.node_count g <> n then
        invalid_arg "Ga.run: seed topology size does not match context")
    seeds;
  let cache = Fitness_cache.create ~slots:cache_slots in
  let evaluations = ref 0 in
  Par.with_pool ~domains (fun pool ->
      let evaluate_batch graphs =
        evaluations := !evaluations + Array.length graphs;
        Par.map_array pool
          (fun g -> (g, Fitness_cache.find_or_compute cache g (fun () -> objective g)))
          graphs
      in
      let pop = ref (initial_population ~seeds settings ctx rng ~evaluate_batch) in
      (* Population is kept sorted ascending by cost. *)
      let history = Array.make (settings.generations + 1) infinity in
      history.(0) <- snd !pop.(0);
      let children_count = settings.num_crossover + settings.num_mutation in
      for gen = 1 to settings.generations do
        let prev = !pop in
        (* Children are bred serially — tournament, crossover and mutation
           all draw from the single RNG stream in the original order — and
           only their (pure) evaluations fan out across domains. *)
        let children = Array.make (max children_count 1) (fst prev.(0)) in
        for i = 0 to settings.num_crossover - 1 do
          let parents =
            Operators.tournament ~pool:settings.tournament_pool
              ~winners:settings.tournament_winners prev rng
          in
          children.(i) <- Operators.crossover ctx ~parents rng
        done;
        for i = 0 to settings.num_mutation - 1 do
          let idx = Operators.select_inverse_cost prev rng in
          let mutant = Graph.copy (fst prev.(idx)) in
          if Dist.bernoulli rng ~p:settings.node_mutation_prob then
            Operators.node_mutation ctx mutant rng
          else Operators.link_mutation ctx mutant rng;
          children.(settings.num_crossover + i) <- mutant
        done;
        let evaluated = evaluate_batch (Array.sub children 0 children_count) in
        let next = Array.make settings.population_size prev.(0) in
        (* Elites survive unchanged (they are never mutated in place). *)
        for i = 0 to settings.num_saved - 1 do
          next.(i) <- prev.(i)
        done;
        Array.blit evaluated 0 next settings.num_saved children_count;
        Array.sort (fun (_, a) (_, b) -> Float.compare a b) next;
        pop := next;
        history.(gen) <- snd next.(0)
      done;
      let (best, best_cost) = !pop.(0) in
      {
        best;
        best_cost;
        final_population = !pop;
        history;
        evaluations = !evaluations;
        cache_hits = Fitness_cache.hits cache;
        cache_misses = Fitness_cache.misses cache;
      })

let run ?domains ?cache_slots ?seeds settings params ctx rng =
  run_custom ?domains ?cache_slots ?seeds settings
    ~objective:(fun g -> Cost.evaluate params ctx g)
    ctx rng
