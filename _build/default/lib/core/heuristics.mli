(** Greedy hub heuristics (§5).

    Each algorithm starts from the best single-hub star (one hub, every other
    PoP a leaf attached to it) and converts leaves into hubs one at a time
    while the network cost decreases; leaves always re-attach to their
    closest hub. The algorithms differ in how new hubs wire to existing
    hubs:

    - {e Complete}: hubs form a clique; at each round every remaining leaf is
      tried as the next hub and the best is kept.
    - {e MST}: like Complete, but hubs are wired as a distance-MST.
    - {e Greedy attachment}: like Complete, but each new hub's links to the
      existing hubs are added greedily (cheapest first) while cost drops.
    - {e Random greedy}: PoPs are visited in a random permutation and
      hub-ified if that reduces cost (greedy attachment wiring); the process
      is repeated over several permutations and the best result kept.

    These serve two roles in the paper: competitors to the GA (Fig 3) and —
    their real value — seeds for the {e initialised GA}, which then dominates
    every competitor across the whole parameter range. *)

type algorithm =
  | Complete
  | Mst_hubs
  | Greedy_attachment
  | Random_greedy of { permutations : int }

val name : algorithm -> string
(** ["complete"], ["mst"], ["greedy attachment"], ["random greedy"]. *)

val all : permutations:int -> algorithm list
(** The four §5 algorithms, Random_greedy configured with [permutations]. *)

val best_star : Cost.params -> Cold_context.Context.t -> Cold_graph.Graph.t * float
(** [best_star p ctx] is the cheapest single-hub star over all hub choices. *)

val mst_topology : Cold_context.Context.t -> Cold_graph.Graph.t
(** The Euclidean minimum spanning tree — the optimum when k1 dominates. *)

val clique_topology : Cold_context.Context.t -> Cold_graph.Graph.t
(** The full mesh — the optimum when k2 dominates. *)

val run :
  algorithm ->
  Cost.params ->
  Cold_context.Context.t ->
  Cold_prng.Prng.t ->
  Cold_graph.Graph.t * float
(** [run alg p ctx rng] returns the heuristic's topology and cost. The rng
    is only consumed by [Random_greedy]. The result is always connected. *)

val seed_set :
  ?permutations:int ->
  Cost.params ->
  Cold_context.Context.t ->
  Cold_prng.Prng.t ->
  Cold_graph.Graph.t list
(** Topologies from all four heuristics (plus the best star), for seeding the
    initialised GA. Default [permutations] = 10. *)
