module Prng = Cold_prng.Prng
module Dist = Cold_prng.Dist
module Point = Cold_geom.Point
module Point_process = Cold_geom.Point_process
module Population = Cold_traffic.Population
module Context = Cold_context.Context

type as_network = {
  as_id : int;
  cities : int array;
  network : Cold_net.Network.t;
}

type interconnect = { a : int; b : int; city : int }

type t = {
  city_points : Point.t array;
  ases : as_network array;
  interconnects : interconnect list;
}

type config = {
  cities : int;
  ases : int;
  presence : float;
  peering_cost : float;
  min_interconnects : int;
  synthesis : Synthesis.config;
}

let default_config ?(ases = 3) ?(cities = 40) () =
  {
    cities;
    ases;
    presence = 0.5;
    peering_cost = 5.0;
    min_interconnects = 2;
    synthesis = Synthesis.default_config ();
  }

let draw_presence cfg rng =
  (* Retry until at least 2 cities are selected, so each AS is a network. *)
  let rec go attempts =
    if attempts > 1000 then invalid_arg "Multi_as: presence too low to place ASes";
    let picked = ref [] in
    for c = cfg.cities - 1 downto 0 do
      if Dist.bernoulli rng ~p:cfg.presence then picked := c :: !picked
    done;
    if List.length !picked >= 2 then Array.of_list !picked else go (attempts + 1)
  in
  go 0

let synthesize cfg ~seed =
  if cfg.cities < 2 || cfg.ases < 1 then invalid_arg "Multi_as.synthesize";
  if cfg.presence <= 0.0 || cfg.presence > 1.0 then
    invalid_arg "Multi_as.synthesize: presence out of range";
  let root = Prng.create seed in
  let geo_rng = Prng.split_at root 0 in
  let city_points =
    Point_process.generate Point_process.Uniform ~region:Context.default_region
      ~n:cfg.cities geo_rng
  in
  let ases =
    Array.init cfg.ases (fun a ->
        let rng = Prng.split_at root (a + 1) in
        let cities = draw_presence cfg rng in
        let points = Array.map (fun c -> city_points.(c)) cities in
        let pops =
          Population.generate Population.default ~n:(Array.length cities) rng
        in
        let ctx = Context.of_points_and_populations points pops in
        let network = Synthesis.design cfg.synthesis ctx rng in
        { as_id = a; cities; network })
  in
  (* Interconnect each AS pair at their shared cities. Cities are ranked by
     combined local population (gravity proxy for inter-AS traffic) per unit
     peering cost; the top min_interconnects are taken. *)
  let interconnects = ref [] in
  let city_of_pop (asn : as_network) = asn.cities in
  for a = 0 to cfg.ases - 1 do
    for b = a + 1 to cfg.ases - 1 do
      let in_b = Hashtbl.create 16 in
      Array.iteri (fun i c -> Hashtbl.replace in_b c i) (city_of_pop ases.(b));
      let shared = ref [] in
      Array.iteri
        (fun i c ->
          match Hashtbl.find_opt in_b c with
          | Some j -> shared := (c, i, j) :: !shared
          | None -> ())
        (city_of_pop ases.(a));
      let pop_of asn i =
        (Cold_traffic.Gravity.populations
           asn.network.Cold_net.Network.context.Context.tm).(i)
      in
      let ranked =
        List.sort
          (fun (_, i1, j1) (_, i2, j2) ->
            Float.compare
              (-.(pop_of ases.(a) i1 +. pop_of ases.(b) j1) /. cfg.peering_cost)
              (-.(pop_of ases.(a) i2 +. pop_of ases.(b) j2) /. cfg.peering_cost))
          !shared
      in
      List.iteri
        (fun rank (c, _, _) ->
          if rank < cfg.min_interconnects then
            interconnects := { a; b; city = c } :: !interconnects)
        ranked
    done
  done;
  { city_points; ases; interconnects = List.rev !interconnects }

let shared_cities (t : t) a b =
  let in_b = Hashtbl.create 16 in
  Array.iter (fun c -> Hashtbl.replace in_b c ()) t.ases.(b).cities;
  Array.to_list t.ases.(a).cities
  |> List.filter (fun c -> Hashtbl.mem in_b c)
