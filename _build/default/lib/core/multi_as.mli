(** Multi-AS extension (§2, "Extensibility").

    The paper sketches how COLD "could naturally be extended to multiple
    ASes. Imagine the PoPs are in fact cities, in which different networks
    may have presence. PoP interconnects in same cities could then be
    assigned a cost, and we could run the optimization with respect to this
    additional cost."

    This module implements that sketch: a set of shared cities is generated
    once; each AS has presence in a random subset and designs its own
    network with its own cost parameters; ASes are then interconnected at
    shared cities, choosing interconnect cities greedily to minimize
    [peering_cost] per interconnect plus the gravity-weighted inter-AS
    traffic detour, with at least [min_interconnects] per AS pair. *)

type as_network = {
  as_id : int;
  cities : int array;  (** City index of each of the AS's PoPs. *)
  network : Cold_net.Network.t;
}

type interconnect = {
  a : int;  (** First AS id. *)
  b : int;  (** Second AS id. *)
  city : int;  (** Shared city where the ASes peer. *)
}

type t = {
  city_points : Cold_geom.Point.t array;
  ases : as_network array;
  interconnects : interconnect list;
}

type config = {
  cities : int;  (** Number of cities in the shared geography. *)
  ases : int;
  presence : float;  (** Probability an AS is present in a city; ∈ (0, 1]. *)
  peering_cost : float;  (** Cost per interconnect (the §2 "additional cost"). *)
  min_interconnects : int;  (** Redundancy floor per AS pair with shared cities. *)
  synthesis : Synthesis.config;
}

val default_config : ?ases:int -> ?cities:int -> unit -> config
(** 3 ASes over 40 cities, presence 0.5, peering cost 5, 2 interconnects. *)

val synthesize : config -> seed:int -> t
(** Generates the shared geography, per-AS networks and interconnects.
    Deterministic in [seed]. Each AS is guaranteed at least 2 PoPs
    (presence draws are retried). *)

val shared_cities : t -> int -> int -> int list
(** Cities where both ASes have presence. *)
