(** Genetic operators on topology chromosomes (§4.1.1–4.1.2).

    A chromosome is an adjacency matrix ({!Cold_graph.Graph.t}). All
    operators return {e connected} children: any child disconnected by
    recombination is passed through {!Repair}. *)

val crossover :
  Cold_context.Context.t ->
  parents:(Cold_graph.Graph.t * float) array ->
  Cold_prng.Prng.t ->
  Cold_graph.Graph.t
(** [crossover ctx ~parents g] builds a child: for each of the C(n,2)
    possible links, one parent is drawn with probability inversely
    proportional to its cost and the link's presence is copied from it
    (§4.1.1). Parents must be non-empty with positive finite costs. The
    child is repaired to connectivity. *)

val link_mutation :
  Cold_context.Context.t -> Cold_graph.Graph.t -> Cold_prng.Prng.t -> unit
(** [link_mutation ctx g rng] removes [m+] random existing links and adds
    [m−] random absent links, where m+ and m− are geometric(0.5) — "an
    average of two link changes each time" (§4.1.2) — then repairs. *)

val node_mutation :
  Cold_context.Context.t -> Cold_graph.Graph.t -> Cold_prng.Prng.t -> unit
(** [node_mutation ctx g rng] picks a non-leaf node uniformly at random and
    turns it into a leaf: all its links are removed and a single link is
    added to the closest remaining non-leaf node (§4.1.2), then repairs.
    No-op on graphs with no non-leaf node. *)

val select_inverse_cost :
  (Cold_graph.Graph.t * float) array -> Cold_prng.Prng.t -> int
(** [select_inverse_cost pop rng] draws an index with probability
    proportional to 1/cost (infeasible members get weight 0; if every member
    is infeasible the draw is uniform). Raises [Invalid_argument] on an
    empty population. *)

val tournament :
  pool:int ->
  winners:int ->
  (Cold_graph.Graph.t * float) array ->
  Cold_prng.Prng.t ->
  (Cold_graph.Graph.t * float) array
(** [tournament ~pool ~winners pop rng] picks [pool] members uniformly at
    random (b in the paper, with replacement) and returns the [winners]
    cheapest of them (a in the paper) — the parent-selection rule of
    §4.1.1. *)
