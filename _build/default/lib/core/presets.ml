type preset = { name : string; description : string; params : Cost.params }

let startup =
  {
    name = "startup";
    description =
      "burgeoning market: connect everything as cheaply as possible (near-MST trees)";
    params = Cost.params ~k0:10.0 ~k1:1.0 ~k2:2.5e-5 ~k3:0.0 ();
  }

let mature_carrier =
  {
    name = "mature-carrier";
    description =
      "bandwidth economics dominate: meshy low-diameter core, high average degree";
    params = Cost.params ~k0:10.0 ~k1:1.0 ~k2:1.6e-3 ~k3:0.0 ();
  }

let consolidated_operator =
  {
    name = "consolidated-operator";
    description =
      "operational complexity taxed hard: few hubs, hub-and-spoke periphery, CVND > 1";
    params = Cost.params ~k0:10.0 ~k1:1.0 ~k2:1.0e-4 ~k3:300.0 ();
  }

let regional_isp =
  {
    name = "regional-isp";
    description = "small hub set with local meshing: the most common Zoo shape";
    params = Cost.params ~k0:10.0 ~k1:1.0 ~k2:4.0e-4 ~k3:30.0 ();
  }

let all = [ startup; mature_carrier; consolidated_operator; regional_isp ]

let find name = List.find_opt (fun p -> p.name = name) all
