(** Named cost-parameter archetypes.

    The paper's introduction motivates tuning with an economic narrative: "a
    newly formed network servicing a burgeoning market in a developing
    country wishes primarily to provide connectivity as quickly and as
    cheaply as possible. As the market matures there is an incentive to
    increase the level of service…". These presets encode that narrative
    (and the shapes observed in the Topology Zoo) as starting points; they
    are ordinary {!Cost.params} values under the library's calibrated units
    (see DESIGN.md), not magic. *)

type preset = {
  name : string;
  description : string;
  params : Cost.params;
}

val startup : preset
(** Connectivity as cheaply as possible: link costs dominate, no hub
    aversion ⇒ near-MST trees. *)

val mature_carrier : preset
(** Bandwidth-distance costs matter ⇒ meshy cores, moderate redundancy,
    higher clustering, low diameter. *)

val consolidated_operator : preset
(** Heavy operational-complexity aversion ⇒ few hubs, hub-and-spoke
    periphery, CVND above 1. *)

val regional_isp : preset
(** In-between: a small hub set with local meshing. *)

val all : preset list

val find : string -> preset option
(** Lookup by [name] (exact match). *)
