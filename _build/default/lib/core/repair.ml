module Graph = Cold_graph.Graph
module Mst = Cold_graph.Mst
module Traversal = Cold_graph.Traversal
module Context = Cold_context.Context

let repair ctx g =
  if Graph.node_count g <> Context.n ctx then
    invalid_arg "Repair.repair: graph size does not match context";
  let weight u v = Context.distance ctx u v in
  let added = Mst.spanning_connector g ~weight in
  List.iter (fun (u, v) -> Graph.add_edge g u v) added;
  List.length added

let is_feasible ctx g =
  Graph.node_count g = Context.n ctx && Traversal.is_connected g
