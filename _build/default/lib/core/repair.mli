(** Connectivity repair (§4.1.3).

    Crossover and mutation can disconnect a candidate. COLD then finds all
    connected components and the shortest link between each pair of
    components, and adds a minimum spanning tree (in physical link distance)
    over the components. The repaired graph is always connected. *)

val repair : Cold_context.Context.t -> Cold_graph.Graph.t -> int
(** [repair ctx g] connects [g] in place; returns the number of links added
    (0 if already connected). *)

val is_feasible : Cold_context.Context.t -> Cold_graph.Graph.t -> bool
(** [is_feasible ctx g]: connected and of matching size. *)
