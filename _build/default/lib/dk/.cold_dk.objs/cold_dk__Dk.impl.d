lib/dk/dk.ml: Cold_graph Hashtbl Int List Option
