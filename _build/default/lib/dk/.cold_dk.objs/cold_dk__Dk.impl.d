lib/dk/dk.ml: Cold_graph Hashtbl List Option
