lib/dk/dk.mli: Cold_graph
