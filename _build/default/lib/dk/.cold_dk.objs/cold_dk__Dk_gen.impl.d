lib/dk/dk_gen.ml: Array Cold_graph Cold_prng Dk Hashtbl List Option
