lib/dk/dk_gen.mli: Cold_graph Cold_prng
