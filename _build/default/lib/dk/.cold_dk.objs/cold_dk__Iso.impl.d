lib/dk/iso.ml: Array Cold_graph Hashtbl List Option
