lib/dk/iso.ml: Array Cold_graph Hashtbl Int List Option
