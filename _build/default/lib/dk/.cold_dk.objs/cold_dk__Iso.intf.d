lib/dk/iso.mli: Cold_graph
