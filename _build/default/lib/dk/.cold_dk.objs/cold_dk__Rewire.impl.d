lib/dk/rewire.ml: Cold_graph Cold_prng Dk
