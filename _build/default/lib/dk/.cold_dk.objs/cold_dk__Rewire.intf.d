lib/dk/rewire.mli: Cold_graph Cold_prng
