lib/dk/subgraph_census.ml: Array Bool Cold_graph Fun Hashtbl Int List Option
