lib/dk/subgraph_census.mli: Cold_graph
