(** dK-distributions (Mahadevan et al., §2 of the paper).

    The dK-distribution of a graph records, for each isomorphism class of
    connected degree-labelled subgraphs of size d, how many times it occurs.
    d = 0 is the average degree, d = 1 the degree distribution, d = 2 the
    joint degree distribution (fixing assortativity), d = 3 wedge/triangle
    profiles (fixing clustering). The paper's critique — which this library
    makes measurable — is that these "distributions" are huge parameter
    lists, not single statistics, and can over-constrain generation to the
    point where only graphs isomorphic to the input match (Fig 2). *)

type zero_k = float
(** Average degree. *)

type one_k = (int * int) list
(** Sorted [(degree, node count)] pairs. *)

type two_k = ((int * int) * int) list
(** Sorted [((d_u, d_v), edge count)] with d_u <= d_v: the joint degree
    distribution. *)

type three_k = {
  wedges : ((int * int * int) * int) list;
      (** [((d_end1, d_centre, d_end2), count)] with d_end1 <= d_end2, for
          paths of length 2 that are NOT part of that entry (open wedges are
          counted regardless of closure; triangles are tallied separately,
          as in Mahadevan et al.'s wedge/triangle decomposition). *)
  triangles : ((int * int * int) * int) list;
      (** [((d_a, d_b, d_c), count)] with d_a <= d_b <= d_c. *)
}

val zero_k : Cold_graph.Graph.t -> zero_k

val one_k : Cold_graph.Graph.t -> one_k

val two_k : Cold_graph.Graph.t -> two_k

val three_k : Cold_graph.Graph.t -> three_k

val equal_one_k : one_k -> one_k -> bool

val equal_two_k : two_k -> two_k -> bool

val equal_three_k : three_k -> three_k -> bool

val two_k_entry_count : Cold_graph.Graph.t -> int
(** Number of distinct (d_u, d_v) classes — the 2K parameter count. *)

val three_k_entry_count : Cold_graph.Graph.t -> int
(** Distinct wedge classes + distinct triangle classes. *)
