module Graph = Cold_graph.Graph
module Prng = Cold_prng.Prng
module Dist = Cold_prng.Dist

(* One stub-matching pass for a plain degree sequence; None if wedged. *)
let try_degree_sequence degrees rng =
  let n = Array.length degrees in
  let sum = Array.fold_left ( + ) 0 degrees in
  let stubs = Array.make sum 0 in
  let k = ref 0 in
  Array.iteri
    (fun v d ->
      for _ = 1 to d do
        stubs.(!k) <- v;
        incr k
      done)
    degrees;
  Dist.shuffle rng stubs;
  let g = Graph.create n in
  let ok = ref true in
  let i = ref 0 in
  while !ok && !i + 1 < sum do
    let u = stubs.(!i) and v = stubs.(!i + 1) in
    if u = v || Graph.mem_edge g u v then ok := false
    else begin
      Graph.add_edge g u v;
      i := !i + 2
    end
  done;
  if !ok then Some g else None

let degree_sequence_graph ?(attempts = 100) degrees rng =
  Array.iter
    (fun d -> if d < 0 then invalid_arg "Dk_gen: negative degree")
    degrees;
  if Array.fold_left ( + ) 0 degrees mod 2 = 1 then
    invalid_arg "Dk_gen: odd degree sum";
  let rec go k =
    if k = 0 then None
    else
      match try_degree_sequence degrees rng with
      | Some g -> Some g
      | None -> go (k - 1)
  in
  go (max 1 attempts)

(* One class-wise matching pass for a JDD target; None if wedged. *)
let try_two_k ~degrees ~jdd rng =
  let n = Array.length degrees in
  let g = Graph.create n in
  let free = Array.copy degrees in
  (* Nodes per degree class. *)
  let class_members = Hashtbl.create 16 in
  Array.iteri
    (fun v d ->
      Hashtbl.replace class_members d
        (v :: Option.value ~default:[] (Hashtbl.find_opt class_members d)))
    degrees;
  let members d = Array.of_list (Option.value ~default:[] (Hashtbl.find_opt class_members d)) in
  (* Process JDD entries in random order; within an entry place edges one at
     a time between random free-stub nodes of the two classes. *)
  let entries = Array.of_list jdd in
  Dist.shuffle rng entries;
  let pick_free d ~avoid ~not_adjacent_to =
    let cands =
      Array.to_list (members d)
      |> List.filter (fun v ->
             free.(v) > 0 && v <> avoid
             &&
             match not_adjacent_to with
             | Some u -> not (Graph.mem_edge g u v)
             | None -> true)
    in
    match cands with
    | [] -> None
    | _ ->
      let arr = Array.of_list cands in
      Some arr.(Prng.int rng (Array.length arr))
  in
  let ok = ref true in
  Array.iter
    (fun ((a, b), count) ->
      for _ = 1 to count do
        if !ok then begin
          match pick_free a ~avoid:(-1) ~not_adjacent_to:None with
          | None -> ok := false
          | Some u -> (
            match pick_free b ~avoid:u ~not_adjacent_to:(Some u) with
            | None -> ok := false
            | Some v ->
              Graph.add_edge g u v;
              free.(u) <- free.(u) - 1;
              free.(v) <- free.(v) - 1)
        end
      done)
    entries;
  if !ok && Array.for_all (fun f -> f = 0) free then Some g else None

let two_k_graph ?(attempts = 100) reference rng =
  let degrees = Graph.degree_sequence reference in
  let jdd = Dk.two_k reference in
  let rec go k =
    if k = 0 then None
    else
      match try_two_k ~degrees ~jdd rng with
      | Some g -> Some g
      | None -> go (k - 1)
  in
  go (max 1 attempts)
