(** dK-series {e construction}: sample a fresh random graph with a
    prescribed 1K (degree sequence) or 2K (joint degree) distribution.

    {!Rewire} randomizes an existing graph while preserving dK properties;
    this module builds a graph from the distribution alone, the way
    Mahadevan et al.'s generators do — stub matching within degree classes,
    with bounded restarts when the greedy matching wedges. Together they
    make the Table 1 dK row a real generator, not a strawman.

    Generated graphs are simple but {e not necessarily connected} — exactly
    the gap the paper pounces on (criterion 2): matching a dK-distribution
    does not make a network. *)

val degree_sequence_graph :
  ?attempts:int -> int array -> Cold_prng.Prng.t -> Cold_graph.Graph.t option
(** [degree_sequence_graph degrees rng] samples a simple graph realizing
    [degrees] exactly (uniform stub matching with restarts, default 100
    attempts); [None] if the sequence resisted (e.g. non-graphical).
    Raises [Invalid_argument] on negative entries or odd sum. *)

val two_k_graph :
  ?attempts:int -> Cold_graph.Graph.t -> Cold_prng.Prng.t -> Cold_graph.Graph.t option
(** [two_k_graph reference rng] samples a simple graph with exactly the
    degree sequence {e and} joint degree distribution of [reference]
    (class-wise stub matching, restarts on wedging; default 100 attempts).
    The result is guaranteed 2K-equal to the reference when [Some]. *)
