(** Graph isomorphism for small graphs.

    The paper's over-constraint argument (Fig 2) is about {e isomorphism}:
    "the only possible 3K graph that can match the input is isomorphic to the
    input itself", and it stresses that this is hidden in practice because
    isomorphism is hard to see. This module makes the claim checkable:
    invariant screening (vertex count, degree sequence, sorted triangle and
    neighbour-degree profiles) followed by backtracking search with degree
    partitioning. Intended for the tens-of-vertices graphs the paper's
    figures use — not a general-purpose VF2. *)

val isomorphic : Cold_graph.Graph.t -> Cold_graph.Graph.t -> bool
(** [isomorphic g h] decides whether some bijection of vertices maps the edge
    set of [g] onto that of [h]. Exponential worst case; fast for the small,
    structured graphs used here. *)

val count_non_isomorphic : Cold_graph.Graph.t list -> int
(** Number of isomorphism classes present in the list (pairwise testing —
    quadratic in list length). *)
