module Graph = Cold_graph.Graph
module Traversal = Cold_graph.Traversal
module Prng = Cold_prng.Prng

type constraint_level = K1 | K2 | K3

let random_edge g rng =
  let m = Graph.edge_count g in
  if m = 0 then None
  else begin
    let target = Prng.int rng m in
    let found = ref None in
    let i = ref 0 in
    Graph.iter_edges g (fun u v ->
        if !i = target then found := Some (u, v);
        incr i);
    !found
  end

let rewire ?(require_connected = true) ~level ~attempts g rng =
  if attempts < 0 then invalid_arg "Rewire.rewire: negative attempts";
  let accepted = ref 0 in
  let degrees_ok u v x y =
    match level with
    | K1 -> true
    | K2 | K3 ->
      (* Swapping {u,v},{x,y} → {u,y},{x,v} keeps the JDD iff the endpoints
         that change partners have equal degrees. *)
      Graph.degree g v = Graph.degree g y || Graph.degree g u = Graph.degree g x
  in
  let three_k_before = if level = K3 then Some (Dk.three_k g) else None in
  for _ = 1 to attempts do
    match (random_edge g rng, random_edge g rng) with
    | Some (u, v), Some (x, y)
      when u <> x && u <> y && v <> x && v <> y
           && (not (Graph.mem_edge g u y))
           && not (Graph.mem_edge g x v) ->
      if degrees_ok u v x y then begin
        Graph.remove_edge g u v;
        Graph.remove_edge g x y;
        Graph.add_edge g u y;
        Graph.add_edge g x v;
        let ok_connect = (not require_connected) || Traversal.is_connected g in
        let ok_3k =
          match three_k_before with
          | None -> true
          | Some before -> Dk.equal_three_k before (Dk.three_k g)
        in
        if ok_connect && ok_3k then incr accepted
        else begin
          (* Revert. *)
          Graph.remove_edge g u y;
          Graph.remove_edge g x v;
          Graph.add_edge g u v;
          Graph.add_edge g x y
        end
      end
    | _ -> ()
  done;
  !accepted

let sample ?require_connected ~level ~attempts g rng =
  let copy = Graph.copy g in
  ignore (rewire ?require_connected ~level ~attempts copy rng);
  copy
