(** dK-preserving random rewiring — the standard way to sample "another graph
    with the same dK-distribution", and the machinery behind Fig 2(c).

    All rewiring is by double-edge swaps: edges {u,v} and {x,y} become
    {u,y} and {x,v}. A plain swap preserves the degree sequence (1K); if
    additionally deg v = deg y (or symmetrically deg u = deg x) the joint
    degree distribution (2K) is preserved; a candidate 2K swap accepted only
    when the wedge/triangle profile is unchanged preserves 3K.

    The number of accepted moves is returned: the paper's over-constraint
    argument (Fig 2, "the only possible 3K graph that can match the input is
    isomorphic to the input itself") manifests as 3K acceptance collapsing
    to swaps that produce isomorphic graphs — or to zero — on structured
    inputs. *)

type constraint_level = K1 | K2 | K3

val rewire :
  ?require_connected:bool ->
  level:constraint_level ->
  attempts:int ->
  Cold_graph.Graph.t ->
  Cold_prng.Prng.t ->
  int
(** [rewire ~level ~attempts g rng] mutates [g] in place with up to
    [attempts] candidate swaps and returns the number accepted.
    [require_connected] (default [true], matching dK generation practice —
    the dK-distribution is defined on connected graphs) rejects swaps that
    disconnect the graph. *)

val sample :
  ?require_connected:bool ->
  level:constraint_level ->
  attempts:int ->
  Cold_graph.Graph.t ->
  Cold_prng.Prng.t ->
  Cold_graph.Graph.t
(** Non-destructive {!rewire}: returns a rewired copy. *)
