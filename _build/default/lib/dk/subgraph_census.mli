(** Census of distinct degree-labelled connected subgraphs — the parameter
    count of a dK-distribution.

    Fig 1 of the paper shows that the number of distinct labelled subgraphs
    (i.e. of dK parameters) "grows rapidly both with the size of the graph
    and with d", overtaking the number of nodes and even of possible edges —
    the core of the paper's simplicity critique. This module measures that
    count exactly for d = 2, 3, 4 by exhaustive enumeration with
    brute-force canonicalization (subgraphs up to size 4 have at most 4! = 24
    labelings, so exact isomorphism is cheap). *)

val distinct : Cold_graph.Graph.t -> d:int -> int
(** [distinct g ~d] is the number of isomorphism classes of connected
    [d]-vertex induced subgraphs of [g], where vertices are labelled by their
    degree {e in g}. Supported d: 2, 3, 4 ([Invalid_argument] otherwise).
    O(n^d) — intended for n up to a few hundred. *)

val connected_subgraph_count : Cold_graph.Graph.t -> d:int -> int
(** Total number (with multiplicity) of connected induced [d]-subgraphs —
    the normalizing bulk of the dK-distribution. Same d support. *)
