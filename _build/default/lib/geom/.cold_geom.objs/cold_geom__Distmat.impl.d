lib/geom/distmat.ml: Array Float Point
