lib/geom/distmat.ml: Array Point
