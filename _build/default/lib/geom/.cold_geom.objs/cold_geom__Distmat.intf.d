lib/geom/distmat.mli: Point
