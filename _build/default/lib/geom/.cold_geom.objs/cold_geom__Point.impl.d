lib/geom/point.ml: Format
