lib/geom/point_process.ml: Array Cold_prng Float List Point Region
