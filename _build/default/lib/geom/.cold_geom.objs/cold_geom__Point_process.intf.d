lib/geom/point_process.mli: Cold_prng Point Region
