lib/geom/region.ml: Cold_prng Float Point
