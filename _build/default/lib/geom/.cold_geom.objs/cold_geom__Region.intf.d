lib/geom/region.mli: Cold_prng Point
