(** Symmetric Euclidean distance matrices over point sets.

    Cost evaluation queries pairwise distances millions of times per GA run,
    so distances are precomputed once per context into a flat upper-triangular
    float array. *)

type t

val of_points : Point.t array -> t
(** [of_points pts] precomputes all pairwise distances. *)

val size : t -> int
(** Number of points. *)

val get : t -> int -> int -> float
(** [get d i j] is the distance between points [i] and [j]; [get d i i = 0].
    Raises [Invalid_argument] on out-of-range indices. *)

val max_distance : t -> float
(** Largest pairwise distance (0 for fewer than 2 points). *)

val nearest : t -> int -> except:(int -> bool) -> int option
(** [nearest d i ~except] is the index [j <> i] minimizing [get d i j] among
    indices for which [except j] is [false]; ties break to the smaller index.
    [None] if no candidate exists. *)
