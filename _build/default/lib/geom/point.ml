type t = { x : float; y : float }

let make x y = { x; y }

let distance_sq p q =
  let dx = p.x -. q.x and dy = p.y -. q.y in
  (dx *. dx) +. (dy *. dy)

let distance p q = sqrt (distance_sq p q)

let midpoint p q = { x = (p.x +. q.x) /. 2.0; y = (p.y +. q.y) /. 2.0 }

let equal p q = p.x = q.x && p.y = q.y

let pp fmt p = Format.fprintf fmt "(%.4f, %.4f)" p.x p.y
