(** Points in the plane. PoP locations live on a 2-D region (by default the
    unit square, §3.1 of the paper); all link lengths in the cost model are
    Euclidean distances between such points. *)

type t = { x : float; y : float }

val make : float -> float -> t

val distance : t -> t -> float
(** [distance p q] is the Euclidean distance between [p] and [q]. *)

val distance_sq : t -> t -> float
(** [distance_sq p q] is the squared Euclidean distance (no [sqrt]); use it
    for nearest-neighbour comparisons. *)

val midpoint : t -> t -> t

val equal : t -> t -> bool
(** Exact float equality on both coordinates. *)

val pp : Format.formatter -> t -> unit
(** Prints as [(x, y)] with 4 decimal places. *)
