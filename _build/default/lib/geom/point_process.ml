module Prng = Cold_prng.Prng
module Dist = Cold_prng.Dist

type spec =
  | Uniform
  | Bursty of { clusters : int; sigma : float }
  | Jittered_grid of { jitter : float }

let generate_uniform ~region ~n g = Array.init n (fun _ -> Region.sample region g)

let generate_bursty ~clusters ~sigma ~region ~n g =
  if clusters <= 0 then invalid_arg "Point_process: clusters must be positive";
  if sigma < 0.0 then invalid_arg "Point_process: sigma must be non-negative";
  let parents = Array.init clusters (fun _ -> Region.sample region g) in
  let rec scatter parent =
    let dx = Dist.normal g ~mean:0.0 ~stddev:sigma in
    let dy = Dist.normal g ~mean:0.0 ~stddev:sigma in
    let p = Point.make (parent.Point.x +. dx) (parent.Point.y +. dy) in
    if Region.contains region p then p else scatter parent
  in
  Array.init n (fun _ -> scatter parents.(Prng.int g clusters))

let generate_jittered_grid ~jitter ~region ~n g =
  (* Lay a near-square grid over the region's bounding box and keep the
     first n in-region cells; jitter each point within its cell. *)
  let side = int_of_float (Float.ceil (sqrt (float_of_int n))) in
  let w, h =
    match region with
    | Region.Unit_square -> (1.0, 1.0)
    | Region.Rectangle { width; height } -> (width, height)
    | Region.Disk { radius } -> (2.0 *. radius, 2.0 *. radius)
  in
  let cell_w = w /. float_of_int side and cell_h = h /. float_of_int side in
  let points = ref [] in
  let count = ref 0 in
  (* Visit cells in row-major order, wrapping if rejections (disk) leave us
     short; the wrap re-jitters already-visited cells. *)
  let attempts = ref 0 in
  while !count < n && !attempts < 100 * n do
    let idx = !attempts mod (side * side) in
    incr attempts;
    let i = idx mod side and j = idx / side in
    let cx = (float_of_int i +. 0.5) *. cell_w in
    let cy = (float_of_int j +. 0.5) *. cell_h in
    let jx = Dist.uniform g ~lo:(-.jitter) ~hi:jitter *. cell_w in
    let jy = Dist.uniform g ~lo:(-.jitter) ~hi:jitter *. cell_h in
    let p = Point.make (cx +. jx) (cy +. jy) in
    if Region.contains region p then begin
      points := p :: !points;
      incr count
    end
  done;
  if !count < n then invalid_arg "Point_process: could not place points in region";
  Array.of_list (List.rev !points)

let generate spec ~region ~n g =
  if n < 0 then invalid_arg "Point_process.generate: n must be non-negative";
  match spec with
  | Uniform -> generate_uniform ~region ~n g
  | Bursty { clusters; sigma } -> generate_bursty ~clusters ~sigma ~region ~n g
  | Jittered_grid { jitter } -> generate_jittered_grid ~jitter ~region ~n g

let poisson spec ~region ~intensity g =
  if intensity < 0.0 then
    invalid_arg "Point_process.poisson: intensity must be non-negative";
  let n = Dist.poisson g ~mean:(intensity *. Region.area region) in
  generate spec ~region ~n g
