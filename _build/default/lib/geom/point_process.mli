(** 2-D point processes for PoP locations (§3.1).

    The paper's default context draws [n] PoP locations independently and
    uniformly on the unit square (a binomial/conditional-Poisson process). To
    support the §7 sensitivity ablation the module also provides a {e bursty}
    (Thomas cluster) process, in which cluster centres are uniform and points
    scatter around them with Gaussian dispersion, and a {e jittered-grid}
    process that is {e more} regular than Poisson. All processes return
    exactly [n] points inside the region. *)

type spec =
  | Uniform
      (** Independent uniform locations: the paper's default model. *)
  | Bursty of { clusters : int; sigma : float }
      (** Thomas cluster process conditioned on [n] total points:
          [clusters] uniform parents, each point is attached to a uniformly
          chosen parent and displaced by an isotropic Gaussian with standard
          deviation [sigma] (resampled until it falls inside the region). *)
  | Jittered_grid of { jitter : float }
      (** Points on a near-square grid, each perturbed uniformly by up to
          [jitter] cell-widths — an under-dispersed contrast case. *)

val generate :
  spec -> region:Region.t -> n:int -> Cold_prng.Prng.t -> Point.t array
(** [generate spec ~region ~n g] draws [n] points. Raises [Invalid_argument]
    if [n < 0], or for [Bursty] with [clusters <= 0] or [sigma < 0]. *)

val poisson :
  spec -> region:Region.t -> intensity:float -> Cold_prng.Prng.t -> Point.t array
(** [poisson spec ~region ~intensity g] draws the {e unconditioned} process:
    the point count is Poisson([intensity] · area). The paper conditions on
    n (its default "is a 2D Poisson process conditional on the number of
    PoPs"); this variant serves studies where the PoP count itself should
    fluctuate. Raises [Invalid_argument] on negative intensity. *)
