module Prng = Cold_prng.Prng

type t =
  | Unit_square
  | Rectangle of { width : float; height : float }
  | Disk of { radius : float }

let unit_square = Unit_square

let rectangle ~aspect ~area =
  if aspect <= 0.0 || area <= 0.0 then
    invalid_arg "Region.rectangle: aspect and area must be positive";
  (* width / height = aspect, width * height = area *)
  let height = sqrt (area /. aspect) in
  let width = aspect *. height in
  Rectangle { width; height }

let disk ~radius =
  if radius <= 0.0 then invalid_arg "Region.disk: radius must be positive";
  Disk { radius }

let rec sample region g =
  match region with
  | Unit_square -> Point.make (Prng.float g) (Prng.float g)
  | Rectangle { width; height } ->
    Point.make (Prng.float g *. width) (Prng.float g *. height)
  | Disk { radius } ->
    let x = Prng.float g *. 2.0 *. radius and y = Prng.float g *. 2.0 *. radius in
    let p = Point.make x y in
    let centre = Point.make radius radius in
    if Point.distance p centre <= radius then p else sample region g

let diameter = function
  | Unit_square -> sqrt 2.0
  | Rectangle { width; height } -> sqrt ((width *. width) +. (height *. height))
  | Disk { radius } -> 2.0 *. radius

let contains region p =
  match region with
  | Unit_square -> p.Point.x >= 0.0 && p.Point.x <= 1.0 && p.Point.y >= 0.0 && p.Point.y <= 1.0
  | Rectangle { width; height } ->
    p.Point.x >= 0.0 && p.Point.x <= width && p.Point.y >= 0.0 && p.Point.y <= height
  | Disk { radius } ->
    Point.distance p (Point.make radius radius) <= radius

let area = function
  | Unit_square -> 1.0
  | Rectangle { width; height } -> width *. height
  | Disk { radius } -> Float.pi *. radius *. radius
