(** Regions on which PoP locations are drawn.

    The paper's default is the unit square; §3.1 and §7 also experiment with
    rectangles of different aspect ratios (a region "had to be quite long and
    thin before it changed the resulting networks significantly") and with
    disks. A region knows how to sample a uniform point and how to report its
    maximum chord, which the Waxman baseline needs. *)

type t =
  | Unit_square
  | Rectangle of { width : float; height : float }
      (** Axis-aligned rectangle anchored at the origin. *)
  | Disk of { radius : float }  (** Disk centred at ([radius], [radius]). *)

val unit_square : t

val rectangle : aspect:float -> area:float -> t
(** [rectangle ~aspect ~area] is a rectangle with width/height ratio [aspect]
    and the given area, so regions of different shapes remain comparable in
    PoP density. Raises [Invalid_argument] on non-positive arguments. *)

val disk : radius:float -> t

val sample : t -> Cold_prng.Prng.t -> Point.t
(** [sample region g] draws a uniform point on [region] (rejection sampling
    for the disk). *)

val diameter : t -> float
(** [diameter region] is the length of the longest chord (diagonal for
    rectangles, 2r for disks). *)

val contains : t -> Point.t -> bool

val area : t -> float
