lib/graph/builders.ml: Array Cold_prng Graph
