lib/graph/builders.mli: Cold_prng Graph
