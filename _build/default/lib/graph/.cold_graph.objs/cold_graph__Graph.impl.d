lib/graph/graph.ml: Array Bytes Format List
