lib/graph/graph.ml: Array Bytes Char Format Int64 List
