lib/graph/heap.mli:
