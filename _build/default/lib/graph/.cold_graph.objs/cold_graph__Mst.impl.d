lib/graph/mst.ml: Array Graph List Traversal
