lib/graph/robustness.ml: Array Graph Int List Traversal
