lib/graph/robustness.ml: Array Graph List Traversal
