lib/graph/robustness.mli: Graph
