lib/graph/shortest_path.ml: Array Float Graph Heap Traversal
