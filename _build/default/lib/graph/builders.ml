module Prng = Cold_prng.Prng

let path n =
  let g = Graph.create n in
  for v = 0 to n - 2 do
    Graph.add_edge g v (v + 1)
  done;
  g

let cycle n =
  if n < 3 then invalid_arg "Builders.cycle: need at least 3 vertices";
  let g = path n in
  Graph.add_edge g 0 (n - 1);
  g

let star n =
  let g = Graph.create n in
  for v = 1 to n - 1 do
    Graph.add_edge g 0 v
  done;
  g

let double_star n =
  if n < 2 then invalid_arg "Builders.double_star: need at least 2 vertices";
  let g = Graph.create n in
  Graph.add_edge g 0 1;
  for v = 2 to n - 1 do
    Graph.add_edge g (v mod 2) v
  done;
  g

let ladder k =
  if k < 1 then invalid_arg "Builders.ladder";
  let g = Graph.create (2 * k) in
  for i = 0 to k - 2 do
    Graph.add_edge g i (i + 1);
    Graph.add_edge g (k + i) (k + i + 1)
  done;
  for i = 0 to k - 1 do
    Graph.add_edge g i (k + i)
  done;
  g

let balanced_tree ~branching ~depth =
  if branching < 1 || depth < 0 then invalid_arg "Builders.balanced_tree";
  (* Number of nodes: 1 + b + b^2 + ... + b^depth. *)
  let rec count d acc pow = if d > depth then acc else count (d + 1) (acc + pow) (pow * branching) in
  let n = count 0 0 1 in
  let g = Graph.create n in
  (* Children of node i are b*i+1 .. b*i+b (heap numbering). *)
  for v = 1 to n - 1 do
    Graph.add_edge g ((v - 1) / branching) v
  done;
  g

let wheel n =
  if n < 4 then invalid_arg "Builders.wheel: need at least 4 vertices";
  let g = Graph.create n in
  for v = 1 to n - 2 do
    Graph.add_edge g v (v + 1)
  done;
  Graph.add_edge g 1 (n - 1);
  for v = 1 to n - 1 do
    Graph.add_edge g 0 v
  done;
  g

let grid ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Builders.grid";
  let g = Graph.create (rows * cols) in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then Graph.add_edge g (id r c) (id r (c + 1));
      if r + 1 < rows then Graph.add_edge g (id r c) (id (r + 1) c)
    done
  done;
  g

let random_tree n g =
  if n <= 0 then invalid_arg "Builders.random_tree";
  if n = 1 then Graph.create 1
  else if n = 2 then Graph.of_edges 2 [ (0, 1) ]
  else begin
    (* Decode a uniform Prüfer sequence of length n-2. *)
    let seq = Array.init (n - 2) (fun _ -> Prng.int g n) in
    let deg = Array.make n 1 in
    Array.iter (fun v -> deg.(v) <- deg.(v) + 1) seq;
    let t = Graph.create n in
    let deg = deg in
    Array.iter
      (fun v ->
        (* Attach the smallest current leaf to v. *)
        let leaf = ref (-1) in
        (try
           for u = 0 to n - 1 do
             if deg.(u) = 1 then begin
               leaf := u;
               raise Exit
             end
           done
         with Exit -> ());
        Graph.add_edge t !leaf v;
        deg.(!leaf) <- 0;
        deg.(v) <- deg.(v) - 1)
      seq;
    (* Join the last two remaining leaves. *)
    let rest = ref [] in
    for u = n - 1 downto 0 do
      if deg.(u) = 1 then rest := u :: !rest
    done;
    (match !rest with
    | [ a; b ] -> Graph.add_edge t a b
    | _ -> assert false);
    t
  end
