(** Parametric graph families: references for tests, cost-term sanity checks
    (§3.2.3: trees, cliques, stars are the single-cost optima) and building
    blocks of the synthetic topology zoo. *)

val path : int -> Graph.t
(** [path n]: vertices in a line, [n-1] edges. *)

val cycle : int -> Graph.t
(** [cycle n]: ring; requires [n >= 3]. *)

val star : int -> Graph.t
(** [star n]: vertex 0 is the hub; all others are leaves. *)

val double_star : int -> Graph.t
(** [double_star n]: two adjacent hubs (0 and 1) splitting [n-2] leaves as
    evenly as possible — a common ISP shape in the Topology Zoo. *)

val ladder : int -> Graph.t
(** [ladder k]: two parallel paths of [k] vertices joined by rungs
    ([n = 2k]). *)

val balanced_tree : branching:int -> depth:int -> Graph.t
(** [balanced_tree ~branching ~depth]: rooted tree with fan-out [branching];
    [depth 0] is a single vertex. *)

val wheel : int -> Graph.t
(** [wheel n]: cycle on [n-1] vertices plus a centre adjacent to all;
    requires [n >= 4]. *)

val grid : rows:int -> cols:int -> Graph.t
(** [grid ~rows ~cols]: 2-D lattice. *)

val random_tree : int -> Cold_prng.Prng.t -> Graph.t
(** [random_tree n g]: uniform labelled random tree via Prüfer sequence. *)
