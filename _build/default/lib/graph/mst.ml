let prim_complete ~n ~weight =
  if n <= 1 then []
  else begin
    let in_tree = Array.make n false in
    let best_w = Array.make n infinity in
    let best_to = Array.make n (-1) in
    in_tree.(0) <- true;
    for v = 1 to n - 1 do
      best_w.(v) <- weight 0 v;
      best_to.(v) <- 0
    done;
    let edges = ref [] in
    for _ = 1 to n - 1 do
      (* Pick the cheapest fringe vertex; ties to the smaller id. *)
      let u = ref (-1) in
      for v = 0 to n - 1 do
        if (not in_tree.(v)) && (!u < 0 || best_w.(v) < best_w.(!u)) then u := v
      done;
      let u = !u in
      in_tree.(u) <- true;
      let a = min u best_to.(u) and b = max u best_to.(u) in
      edges := (a, b) :: !edges;
      for v = 0 to n - 1 do
        if not in_tree.(v) then begin
          let w = weight u v in
          if w < best_w.(v) then begin
            best_w.(v) <- w;
            best_to.(v) <- u
          end
        end
      done
    done;
    List.rev !edges
  end

let mst_graph ~n ~weight = Graph.of_edges n (prim_complete ~n ~weight)

let spanning_connector g ~weight =
  let (comp, k) = Traversal.connected_components g in
  if k <= 1 then []
  else begin
    let members = Traversal.component_members (comp, k) in
    (* Shortest vertex pair between each pair of components. *)
    let best_pair = Array.make_matrix k k (-1, -1) in
    let best_w = Array.make_matrix k k infinity in
    Array.iteri
      (fun a ma ->
        Array.iteri
          (fun b mb ->
            if a < b then begin
              List.iter
                (fun u ->
                  List.iter
                    (fun v ->
                      let w = weight u v in
                      if w < best_w.(a).(b) then begin
                        best_w.(a).(b) <- w;
                        best_pair.(a).(b) <- (u, v)
                      end)
                    mb)
                ma
            end)
          members)
      members;
    let meta_weight a b =
      let a, b = if a < b then (a, b) else (b, a) in
      best_w.(a).(b)
    in
    let meta_edges = prim_complete ~n:k ~weight:meta_weight in
    List.map
      (fun (a, b) ->
        let (u, v) = best_pair.(a).(b) in
        if u < v then (u, v) else (v, u))
      meta_edges
  end

let connect g ~weight =
  List.iter (fun (u, v) -> Graph.add_edge g u v) (spanning_connector g ~weight)
