(** Minimum spanning trees and the minimum spanning connector.

    The MST over PoP distances is a GA seed topology and the optimal network
    when the per-length cost k1 dominates (§3.2.3). The {e spanning
    connector} implements §4.1.3: when crossover or mutation disconnects a
    candidate, the components are re-joined by the cheapest set of
    inter-component links (an MST over the component meta-graph where each
    meta-edge is the shortest vertex pair between two components). *)

val prim_complete : n:int -> weight:(int -> int -> float) -> (int * int) list
(** [prim_complete ~n ~weight] is the MST edge list of the complete graph on
    [n] vertices under [weight] (symmetric, positive). O(n²). Empty for
    [n <= 1]. Deterministic: ties break to smaller vertex ids. *)

val mst_graph : n:int -> weight:(int -> int -> float) -> Graph.t
(** [mst_graph ~n ~weight] is {!prim_complete} materialised as a graph. *)

val spanning_connector :
  Graph.t -> weight:(int -> int -> float) -> (int * int) list
(** [spanning_connector g ~weight] is the list of edges (possibly empty) that,
    added to [g], make it connected at minimum total [weight], connecting
    whole components via their closest vertex pairs. O(k² + n²) for [k]
    components. *)

val connect : Graph.t -> weight:(int -> int -> float) -> unit
(** [connect g ~weight] adds the spanning connector edges to [g] in place. *)
