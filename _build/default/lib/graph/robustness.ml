(* Tarjan low-link DFS, iterative to survive deep path graphs. *)
let dfs_low_links g ~on_bridge ~on_articulation =
  let n = Graph.node_count g in
  let disc = Array.make n (-1) in
  let low = Array.make n 0 in
  let parent = Array.make n (-1) in
  let child_count = Array.make n 0 in
  let is_articulation = Array.make n false in
  let timer = ref 0 in
  (* Explicit stack of (vertex, remaining neighbours). *)
  for root = 0 to n - 1 do
    if disc.(root) < 0 then begin
      let stack = ref [ (root, Graph.neighbors g root) ] in
      disc.(root) <- !timer;
      low.(root) <- !timer;
      incr timer;
      while !stack <> [] do
        match !stack with
        | [] -> ()
        | (v, remaining) :: rest -> (
          match remaining with
          | [] ->
            stack := rest;
            (* Post-visit: propagate low-link to the parent and classify. *)
            let p = parent.(v) in
            if p >= 0 then begin
              if low.(v) < low.(p) then low.(p) <- low.(v);
              if low.(v) > disc.(p) then on_bridge (min p v) (max p v);
              if parent.(p) >= 0 && low.(v) >= disc.(p) then
                is_articulation.(p) <- true
            end
          | u :: more ->
            stack := (v, more) :: rest;
            if disc.(u) < 0 then begin
              parent.(u) <- v;
              child_count.(v) <- child_count.(v) + 1;
              disc.(u) <- !timer;
              low.(u) <- !timer;
              incr timer;
              stack := (u, Graph.neighbors g u) :: !stack
            end
            else if u <> parent.(v) && disc.(u) < low.(v) then
              low.(v) <- disc.(u))
      done;
      if child_count.(root) > 1 then is_articulation.(root) <- true
    end
  done;
  for v = 0 to n - 1 do
    if is_articulation.(v) then on_articulation v
  done

let bridges g =
  let acc = ref [] in
  dfs_low_links g
    ~on_bridge:(fun u v -> acc := (u, v) :: !acc)
    ~on_articulation:(fun _ -> ());
  let edge_compare (u1, v1) (u2, v2) =
    match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c
  in
  List.sort edge_compare !acc

let articulation_points g =
  let acc = ref [] in
  dfs_low_links g
    ~on_bridge:(fun _ _ -> ())
    ~on_articulation:(fun v -> acc := v :: !acc);
  List.rev !acc

let is_two_edge_connected g =
  Graph.node_count g <= 1 || (Traversal.is_connected g && bridges g = [])

let core_number g =
  let n = Graph.node_count g in
  let core = Graph.degree_sequence g in
  (* Peel vertices in order of current degree using bucket queues. *)
  let max_deg = Array.fold_left max 0 core in
  let buckets = Array.make (max_deg + 1) [] in
  Array.iteri (fun v d -> buckets.(d) <- v :: buckets.(d)) core;
  let removed = Array.make n false in
  let current = Array.copy core in
  for d = 0 to max_deg do
    (* Buckets gain members as degrees drop; iterate until the bucket is
       stable at this level. *)
    let rec drain () =
      match buckets.(d) with
      | [] -> ()
      | v :: rest ->
        buckets.(d) <- rest;
        if (not removed.(v)) && current.(v) <= d then begin
          removed.(v) <- true;
          core.(v) <- d;
          Graph.iter_neighbors g v (fun u ->
              if (not removed.(u)) && current.(u) > d then begin
                current.(u) <- current.(u) - 1;
                if current.(u) <= d then buckets.(d) <- u :: buckets.(d)
                else buckets.(current.(u)) <- u :: buckets.(current.(u))
              end)
        end;
        drain ()
    in
    drain ()
  done;
  core

let k_core g ~k =
  if k < 0 then invalid_arg "Robustness.k_core: negative k";
  let core = core_number g in
  let acc = ref [] in
  for v = Graph.node_count g - 1 downto 0 do
    if core.(v) >= k then acc := v :: !acc
  done;
  !acc

let degeneracy g = Array.fold_left max 0 (core_number g)
