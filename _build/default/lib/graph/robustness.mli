(** Structural robustness primitives: bridges, articulation points (cut
    vertices) and k-core decomposition.

    A PoP-level link in the paper may hide redundant router-level links, but
    the PoP-level graph's bridges and cut vertices still identify where a
    single fibre conduit or site failure splits the network — the inputs to
    the resilience analyses in {!Cold_net.Resilience}. Computed with one
    Tarjan DFS (O(n + m)). *)

val bridges : Graph.t -> (int * int) list
(** Edges whose removal disconnects their component; [(u, v)] with [u < v],
    lexicographic order. Every edge of a tree is a bridge. *)

val articulation_points : Graph.t -> int list
(** Vertices whose removal disconnects their component, ascending. The hub of
    a star is one; no vertex of a cycle is. *)

val is_two_edge_connected : Graph.t -> bool
(** Connected and bridge-free: every link failure leaves the network whole —
    the classic backbone survivability requirement. Trivial graphs
    (n <= 1) count as two-edge-connected. *)

val core_number : Graph.t -> int array
(** [core_number g].(v) is the largest k such that [v] belongs to the k-core
    (the maximal subgraph of minimum degree k). Leaves get 1, isolated
    vertices 0. Batagelj–Zaveršnik peeling, O(n + m). *)

val k_core : Graph.t -> k:int -> int list
(** Vertices of the k-core, ascending (possibly empty). *)

val degeneracy : Graph.t -> int
(** Maximum core number — the graph's degeneracy. *)
