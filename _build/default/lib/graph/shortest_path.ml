type tree = { dist : float array; pred : int array; order : int array }

let dijkstra ?adj g ~length ~source =
  let n = Graph.node_count g in
  if source < 0 || source >= n then invalid_arg "Shortest_path.dijkstra";
  let dist = Array.make n infinity in
  let pred = Array.make n (-1) in
  let settled = Array.make n false in
  let order = Array.make n (-1) in
  let count = ref 0 in
  let heap = Heap.create ~capacity:(2 * n) in
  dist.(source) <- 0.0;
  Heap.push heap ~priority:0.0 source;
  let relax u d v =
    if not settled.(v) then begin
      let nd = d +. length u v in
      if nd < dist.(v) then begin
        dist.(v) <- nd;
        pred.(v) <- u;
        Heap.push heap ~priority:nd v
      end
      else if Float.equal nd dist.(v) && pred.(v) >= 0 && u < pred.(v) then
        (* Deterministic tie-break: prefer the smaller predecessor. *)
        pred.(v) <- u
    end
  in
  let rec drain () =
    match Heap.pop_min heap with
    | None -> ()
    | Some (d, u) ->
      if not settled.(u) && d <= dist.(u) then begin
        settled.(u) <- true;
        order.(!count) <- u;
        incr count;
        (* Precomputed neighbour arrays skip the O(n) adjacency-row scan per
           settle — the win compounds over the n sources of a routing pass. *)
        (match adj with
        | Some neighbours -> Array.iter (relax u d) neighbours.(u)
        | None -> Graph.iter_neighbors g u (relax u d))
      end;
      drain ()
  in
  drain ();
  { dist; pred; order = Array.sub order 0 !count }

let path t v =
  if v < 0 || v >= Array.length t.dist then invalid_arg "Shortest_path.path";
  if Float.equal t.dist.(v) infinity then None
  else begin
    let rec walk v acc = if t.pred.(v) < 0 then v :: acc else walk t.pred.(v) (v :: acc) in
    Some (walk v [])
  end

let apsp_hops g =
  Array.init (Graph.node_count g) (fun s -> Traversal.bfs_hops g s)

let apsp_lengths g ~length =
  let adj = Graph.adjacency_arrays g in
  Array.init (Graph.node_count g) (fun s -> (dijkstra ~adj g ~length ~source:s).dist)
