(** Disjoint-set forest with path compression and union by rank; used by
    Kruskal-style constructions and by the connectivity repair step. *)

type t

val create : int -> t
(** [create n] puts each of [0 .. n-1] in its own set. *)

val find : t -> int -> int
(** Canonical representative. *)

val union : t -> int -> int -> bool
(** [union uf a b] merges the sets of [a] and [b]; returns [false] if they
    were already the same set. *)

val same : t -> int -> int -> bool

val count : t -> int
(** Number of disjoint sets remaining. *)
