lib/lint/engine.ml: Array Filename Finding Fun Lexer List Printf Rules String Sys Walker
