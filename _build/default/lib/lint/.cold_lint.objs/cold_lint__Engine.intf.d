lib/lint/engine.mli: Finding
