lib/lint/finding.ml: Buffer Char Int Printf String
