lib/lint/finding.mli:
