lib/lint/lexer.ml: List String
