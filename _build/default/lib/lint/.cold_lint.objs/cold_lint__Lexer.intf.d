lib/lint/lexer.mli:
