lib/lint/report.ml: Buffer Finding List Printf
