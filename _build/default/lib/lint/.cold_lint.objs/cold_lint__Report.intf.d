lib/lint/report.mli: Finding
