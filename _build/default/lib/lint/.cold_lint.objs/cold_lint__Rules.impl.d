lib/lint/rules.ml: Array Filename Finding Lexer List Printf String
