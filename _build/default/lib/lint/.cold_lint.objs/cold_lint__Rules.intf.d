lib/lint/rules.mli: Finding Lexer
