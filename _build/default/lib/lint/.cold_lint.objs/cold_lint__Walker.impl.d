lib/lint/walker.ml: Array Filename List Printf String Sys
