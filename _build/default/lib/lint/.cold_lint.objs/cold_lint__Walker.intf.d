lib/lint/walker.mli:
