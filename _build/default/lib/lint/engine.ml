(* Suppression comments: [(* lint: allow rule-a rule-b optional prose *)].
   Each yields (rule, first_line, last_line) covering the comment's span plus
   the following line. *)
let suppressions tokens =
  List.concat_map
    (fun (t : Lexer.token) ->
      match t.Lexer.kind with
      | Lexer.Comment text -> (
        let words =
          String.split_on_char ' ' text
          |> List.concat_map (String.split_on_char '\n')
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun w -> w <> "")
        in
        let rec after_allow = function
          | "lint:" :: "allow" :: rest -> Some rest
          | _ :: rest -> after_allow rest
          | [] -> None
        in
        match after_allow words with
        | None -> []
        | Some rest ->
          let rec rules_of = function
            | w :: rest when Rules.find w <> None ->
              w :: rules_of rest
            | _ -> []
          in
          List.map
            (fun rule -> (rule, t.Lexer.line, t.Lexer.end_line + 1))
            (rules_of rest))
      | _ -> [])
    tokens

let rule_set only =
  match only with
  | None -> Rules.all
  | Some names ->
    List.filter (fun (r : Rules.t) -> List.mem r.Rules.name names) Rules.all

let check_source ?only ?mli_exists ~path source =
  let tokens = Lexer.tokenize source in
  let arr = Array.of_list tokens in
  let ctx = { Rules.path; mli_exists } in
  let raw =
    List.concat_map
      (fun (r : Rules.t) ->
        if r.Rules.applies path then r.Rules.check ctx arr else [])
      (rule_set only)
  in
  let sups = suppressions tokens in
  raw
  |> List.filter (fun (f : Finding.t) ->
         not
           (List.exists
              (fun (rule, first, last) ->
                rule = f.Finding.rule
                && f.Finding.line >= first
                && f.Finding.line <= last)
              sups))
  |> List.sort Finding.compare

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_file ?only path =
  let mli_exists =
    if Filename.check_suffix path ".ml" then
      Some (Sys.file_exists (path ^ "i"))
    else None
  in
  check_source ?only ?mli_exists ~path (read_file path)

let check_paths ?only paths =
  let unknown =
    match only with
    | None -> []
    | Some names -> List.filter (fun n -> Rules.find n = None) names
  in
  match unknown with
  | n :: _ -> Error (Printf.sprintf "unknown rule: %s" n)
  | [] -> (
    match Walker.collect paths with
    | Error _ as e -> e
    | Ok files ->
      Ok
        (List.concat_map (fun f -> check_file ?only f) files
        |> List.sort Finding.compare))
