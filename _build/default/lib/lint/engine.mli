(** Runs the rule set over sources and filters suppressions.

    A finding is suppressed by a comment [(* lint: allow <rule> ... *)]
    placed on the same line as the violation or on the line directly above
    it (for multi-line comments: any line the comment touches, plus one).
    Several rule names may be listed in one comment; prose after the rule
    names is ignored. *)

val check_source :
  ?only:string list ->
  ?mli_exists:bool ->
  path:string ->
  string ->
  Finding.t list
(** [check_source ~path src] lints one in-memory source. [path] selects
    which rules apply (per-directory scoping) and is echoed in findings.
    [only] restricts to the named rules. [mli_exists] feeds the
    [mli-required] rule; when omitted the rule cannot fire. Findings are in
    canonical {!Finding.compare} order. *)

val check_file : ?only:string list -> string -> Finding.t list
(** [check_file path] reads and lints one file; the sibling [.mli] check is
    resolved against the filesystem. Raises [Sys_error] if unreadable. *)

val check_paths : ?only:string list -> string list -> (Finding.t list, string) result
(** [check_paths paths] walks directories (via {!Walker.collect}), lints
    every [.ml]/[.mli] found, and merges findings in canonical order.
    [Error msg] on a nonexistent path or unknown rule name in [only]. *)
