type t = { rule : string; file : string; line : int; message : string }

let make ~rule ~file ~line message = { rule; file; line; message }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match String.compare a.rule b.rule with
      | 0 -> String.compare a.message b.message
      | c -> c)
    | c -> c)
  | c -> c

let to_string f =
  Printf.sprintf "%s:%d: [%s] %s" f.file f.line f.rule f.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf {|{"rule": "%s", "file": "%s", "line": %d, "message": "%s"}|}
    (json_escape f.rule) (json_escape f.file) f.line (json_escape f.message)
