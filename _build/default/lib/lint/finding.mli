(** A single lint violation: which rule fired, where, and why. *)

type t = { rule : string; file : string; line : int; message : string }

val make : rule:string -> file:string -> line:int -> string -> t

val compare : t -> t -> int
(** Orders by file, then line, then rule name, then message — the canonical
    report order, independent of rule evaluation order. *)

val to_string : t -> string
(** ["file:line: [rule] message"] — one line, editor-clickable. *)

val to_json : t -> string
(** A single JSON object [{"rule": …, "file": …, "line": …, "message": …}]
    with proper string escaping. *)
