(** A small, permissive OCaml surface lexer for lint rules.

    This is not a full OCaml lexer: it classifies just enough structure —
    comments (nested, with embedded strings), string and char literals,
    numeric literals with an int/float distinction, identifiers, and
    operator runs — for token-level rules to match reliably without parsing.
    Anything it cannot classify is skipped. Rules must therefore be written
    against token shapes, never against raw source text, so that matches
    inside comments or string literals are impossible by construction. *)

type kind =
  | Ident of string  (** lowercase identifier or keyword, e.g. [compare] *)
  | Uident of string  (** capitalised identifier, e.g. [Random] *)
  | Int_lit of string
  | Float_lit of string
  | String_lit  (** contents deliberately dropped *)
  | Char_lit
  | Comment of string  (** full text between [(*] and [*)], exclusive *)
  | Op of string
      (** maximal run of symbolic characters, or a single bracket/punct:
          ["="], ["<>"], ["."], ["("], ["{"], [";"], … *)

type token = {
  kind : kind;
  line : int;  (** 1-based line where the token starts *)
  end_line : int;  (** last line the token touches (multi-line comments) *)
}

val tokenize : string -> token list
(** [tokenize src] scans the whole string; never raises. Unterminated
    comments or strings are closed implicitly at end of input. *)
