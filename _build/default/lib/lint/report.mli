(** Rendering findings for humans and machines. *)

val text : Finding.t list -> string
(** One editor-clickable line per finding, then a summary line
    ("N violation(s)" or "clean"). Always newline-terminated. *)

val json : Finding.t list -> string
(** A JSON array of [{"rule", "file", "line", "message"}] objects (["[]"]
    when clean), newline-terminated — stable input for diffing lint
    baselines across PRs. *)
