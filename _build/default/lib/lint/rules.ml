type context = { path : string; mli_exists : bool option }

type t = {
  name : string;
  summary : string;
  rationale : string;
  applies : string -> bool;
  check : context -> Lexer.token array -> Finding.t list;
}

(* --- path scopes ------------------------------------------------------------ *)

let components path =
  String.split_on_char '/' path
  |> List.concat_map (String.split_on_char '\\')
  |> List.filter (fun c -> c <> "" && c <> ".")

let dir_components path =
  match List.rev (components path) with [] -> [] | _ :: dirs -> List.rev dirs

let in_dir d path = List.mem d (dir_components path)

let basename path =
  match List.rev (components path) with [] -> "" | b :: _ -> b

let is_ml path = Filename.check_suffix path ".ml"

let everywhere (_ : string) = true
let lib_only path = in_dir "lib" path
let lib_and_bin path = in_dir "lib" path || in_dir "bin" path
let outside_bench path = not (in_dir "bench" path)

(* --- token utilities -------------------------------------------------------- *)

(* Rules match against code tokens only; comments never participate in
   sequence patterns. *)
let code_tokens ts =
  Array.of_list
    (List.filter
       (fun (t : Lexer.token) ->
         match t.Lexer.kind with Lexer.Comment _ -> false | _ -> true)
       (Array.to_list ts))

let kind_at (code : Lexer.token array) i =
  if i >= 0 && i < Array.length code then Some code.(i).Lexer.kind else None

let is_float_lit = function Some (Lexer.Float_lit _) -> true | _ -> false

let finding ~rule ~(ctx : context) ~line message =
  Finding.make ~rule ~file:ctx.path ~line message

(* --- no-stdlib-random ------------------------------------------------------- *)

let check_stdlib_random ctx ts =
  let code = code_tokens ts in
  let acc = ref [] in
  Array.iteri
    (fun _ (t : Lexer.token) ->
      match t.Lexer.kind with
      | Lexer.Uident "Random" ->
        acc :=
          finding ~rule:"no-stdlib-random" ~ctx ~line:t.Lexer.line
            "Stdlib.Random is seeded globally and not splittable; draw from \
             Cold_prng.Prng so runs stay reproducible"
          :: !acc
      | _ -> ())
    code;
  !acc

(* --- no-wall-clock ---------------------------------------------------------- *)

let wall_clock_calls =
  [ ("Sys", "time"); ("Unix", "gettimeofday"); ("Unix", "time");
    ("Unix", "localtime"); ("Unix", "gmtime") ]

let check_wall_clock ctx ts =
  let code = code_tokens ts in
  let acc = ref [] in
  for i = 0 to Array.length code - 3 do
    match (code.(i).Lexer.kind, code.(i + 1).Lexer.kind, code.(i + 2).Lexer.kind)
    with
    | Lexer.Uident m, Lexer.Op ".", Lexer.Ident f
      when List.mem (m, f) wall_clock_calls ->
      acc :=
        finding ~rule:"no-wall-clock" ~ctx ~line:code.(i).Lexer.line
          (Printf.sprintf
             "%s.%s reads the wall clock; outputs must depend only on the \
              seed (timing belongs in bench/)"
             m f)
        :: !acc
    | _ -> ()
  done;
  !acc

(* --- no-polymorphic-compare ------------------------------------------------- *)

let check_poly_compare ctx ts =
  let code = code_tokens ts in
  let acc = ref [] in
  let flag line =
    acc :=
      finding ~rule:"no-polymorphic-compare" ~ctx ~line
        "polymorphic compare silently depends on memory representation; use \
         a typed comparator (Int.compare, Float.compare, a record comparator)"
      :: !acc
  in
  Array.iteri
    (fun i (t : Lexer.token) ->
      match t.Lexer.kind with
      | Lexer.Ident "compare" -> (
        let prev = kind_at code (i - 1) in
        let next = kind_at code (i + 1) in
        let qualified = prev = Some (Lexer.Op ".") in
        let poly_module =
          qualified
          && (kind_at code (i - 2) = Some (Lexer.Uident "Stdlib")
             || kind_at code (i - 2) = Some (Lexer.Uident "Poly"))
        in
        let is_definition =
          match prev with
          | Some (Lexer.Ident ("let" | "and" | "rec" | "method" | "val" | "external"))
            -> true
          | _ -> false
        in
        let is_label =
          prev = Some (Lexer.Op "~")
          ||
          match next with
          | Some (Lexer.Op op) -> String.length op > 0 && op.[0] = ':'
          | _ -> false
        in
        if poly_module then flag t.Lexer.line
        else if (not qualified) && (not is_definition) && not is_label then
          flag t.Lexer.line)
      | _ -> ())
    code;
  !acc

(* --- no-polymorphic-minmax --------------------------------------------------- *)

(* Token-level float detection: a float literal or a well-known float
   constant in an argument window right after the callee. Type information
   would catch more (see doc/LINTS.md), but this shape already covers the
   characteristic [max 0.0 x] / [Array.fold_left max 0.0 xs] accumulators. *)
let floatish_token = function
  | Some (Lexer.Float_lit _) -> true
  | Some
      (Lexer.Ident
        ("infinity" | "neg_infinity" | "nan" | "max_float" | "min_float"
        | "epsilon_float")) -> true
  | _ -> false

(* Stop scanning at tokens that end the argument list of a simple
   application, so floats in a later expression cannot trigger a match. *)
let argument_window_break = function
  | Some (Lexer.Op (";" | "|" | "->" | ")" | "]" | "}" | "," | "<-" | ":="))
  | Some
      (Lexer.Ident
        ("then" | "else" | "in" | "do" | "done" | "with" | "when" | "and")) ->
    true
  | None -> true
  | _ -> false

let check_poly_minmax ctx ts =
  let code = code_tokens ts in
  let acc = ref [] in
  let flag line name =
    acc :=
      finding ~rule:"no-polymorphic-minmax" ~ctx ~line
        (Printf.sprintf
           "polymorphic '%s' on float-looking operands compares boxed \
            representations; use Float.%s (explicit NaN/-0. semantics, no \
            polymorphic dispatch)"
           name
           (match name with "compare" -> "compare" | n -> n))
      :: !acc
  in
  Array.iteri
    (fun i (t : Lexer.token) ->
      match t.Lexer.kind with
      | Lexer.Ident (("min" | "max" | "compare") as name) -> (
        let prev = kind_at code (i - 1) in
        let next = kind_at code (i + 1) in
        let qualified = prev = Some (Lexer.Op ".") in
        let is_definition =
          match prev with
          | Some (Lexer.Ident ("let" | "and" | "rec" | "method" | "val" | "external"))
            -> true
          | _ -> false
        in
        let is_label =
          prev = Some (Lexer.Op "~")
          ||
          match next with
          | Some (Lexer.Op op) -> String.length op > 0 && op.[0] = ':'
          | _ -> false
        in
        (* [max = ...] is a binding or record field, never an application. *)
        let is_binding = next = Some (Lexer.Op "=") in
        if not (qualified || is_definition || is_label || is_binding) then begin
          let rec scan j =
            if j > i + 4 then ()
            else if argument_window_break (kind_at code j) then ()
            else if floatish_token (kind_at code j) then flag t.Lexer.line name
            else scan (j + 1)
          in
          scan (i + 1)
        end)
      | _ -> ())
    code;
  !acc

(* --- no-failwith-in-lib ----------------------------------------------------- *)

let check_failwith ctx ts =
  let code = code_tokens ts in
  let acc = ref [] in
  Array.iteri
    (fun i (t : Lexer.token) ->
      match t.Lexer.kind with
      | Lexer.Ident "failwith"
        when kind_at code (i - 1) <> Some (Lexer.Op ".") ->
        acc :=
          finding ~rule:"no-failwith-in-lib" ~ctx ~line:t.Lexer.line
            "library errors must be typed: return a result or raise an \
             exception declared in the .mli (failwith hides the contract)"
          :: !acc
      | _ -> ())
    code;
  !acc

(* --- mli-required ----------------------------------------------------------- *)

let check_mli ctx (_ : Lexer.token array) =
  match ctx.mli_exists with
  | Some false ->
    [ finding ~rule:"mli-required" ~ctx ~line:1
        "library modules need a .mli: an explicit interface is the contract \
         the lint rules (and reviewers) check errors and determinism against" ]
  | _ -> []

(* --- no-naked-float-eq ------------------------------------------------------ *)

(* [=] doubles as binding syntax, so only flag it when backward context says
   we are inside an expression comparison. [<>], [==] and [!=] are always
   comparisons. *)
let comparison_context code i =
  let rec scan j steps =
    if j < 0 || steps > 40 then false
    else
      match code.(j).Lexer.kind with
      | Lexer.Ident
          ( "if" | "when" | "while" | "then" | "else" | "begin" | "do" | "in"
          | "not" ) -> true
      | Lexer.Op ("&&" | "||" | "->") -> true
      | Lexer.Ident
          ( "let" | "and" | "with" | "fun" | "function" | "module" | "type"
          | "method" | "val" | "mutable" ) -> false
      | Lexer.Op ("{" | ";" | "," | "|" | "~" | "?" | "<-" | ":=") -> false
      | _ -> scan (j - 1) (steps + 1)
  in
  scan (i - 1) 0

let check_float_eq ctx ts =
  let code = code_tokens ts in
  let acc = ref [] in
  let flag line op =
    acc :=
      finding ~rule:"no-naked-float-eq" ~ctx ~line
        (Printf.sprintf
           "'%s' on a float literal: exact float equality is \
            representation-dependent; use Float.equal for intentional exact \
            tests or compare against an epsilon"
           op)
      :: !acc
  in
  Array.iteri
    (fun i (t : Lexer.token) ->
      match t.Lexer.kind with
      | Lexer.Op (("=" | "<>" | "==" | "!=") as op) ->
        let prev_float = is_float_lit (kind_at code (i - 1)) in
        let next_float = is_float_lit (kind_at code (i + 1)) in
        if prev_float || next_float then
          if op <> "=" then flag t.Lexer.line op
          else if prev_float || comparison_context code i then
            flag t.Lexer.line op
      | _ -> ())
    code;
  !acc

(* --- todo-tracker ----------------------------------------------------------- *)

let todo_markers = [ "TODO"; "FIXME"; "XXX" ]

let find_bare_marker text =
  (* A marker counts as tracked when immediately followed by '(' — e.g.
     TODO(owner) or FIXME(#42). *)
  let n = String.length text in
  let is_word_char c =
    (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  let rec try_marker = function
    | [] -> None
    | m :: rest ->
      let ml = String.length m in
      let rec scan i =
        if i + ml > n then try_marker rest
        else if
          String.sub text i ml = m
          && (i = 0 || not (is_word_char text.[i - 1]))
          && (i + ml >= n || text.[i + ml] <> '(')
          && (i + ml >= n || not (is_word_char text.[i + ml]))
        then Some m
        else scan (i + 1)
      in
      scan 0
  in
  try_marker todo_markers

let check_todo ctx ts =
  let acc = ref [] in
  Array.iter
    (fun (t : Lexer.token) ->
      match t.Lexer.kind with
      | Lexer.Comment text -> (
        match find_bare_marker text with
        | Some m ->
          acc :=
            finding ~rule:"todo-tracker" ~ctx ~line:t.Lexer.line
              (Printf.sprintf
                 "untracked %s: attach an owner or issue, e.g. %s(name), so \
                  stale markers cannot silently accumulate"
                 m m)
            :: !acc
        | None -> ())
      | _ -> ())
    ts;
  !acc

(* --- magic-cost-constant ---------------------------------------------------- *)

let cost_params = [ "k0"; "k1"; "k2"; "k3" ]

(* Value position may open with parens or unary minus before the literal. *)
let rec literal_after code i =
  match kind_at code i with
  | Some (Lexer.Op ("(" | "-" | "-." | "+." | "+")) -> literal_after code (i + 1)
  | Some (Lexer.Int_lit _ | Lexer.Float_lit _) -> true
  | _ -> false

let check_magic_cost ctx ts =
  let code = code_tokens ts in
  let acc = ref [] in
  let flag line k =
    acc :=
      finding ~rule:"magic-cost-constant" ~ctx ~line
        (Printf.sprintf
           "magic literal for cost parameter %s: name it or take it from \
            Presets so the paper's parameter points stay in one place"
           k)
      :: !acc
  in
  Array.iteri
    (fun i (t : Lexer.token) ->
      match t.Lexer.kind with
      | Lexer.Ident k when List.mem k cost_params -> (
        let next = kind_at code (i + 1) in
        let labelled =
          kind_at code (i - 1) = Some (Lexer.Op "~")
          &&
          match next with
          | Some (Lexer.Op op) -> String.length op > 0 && op.[0] = ':'
          | _ -> false
        in
        let bound = next = Some (Lexer.Op "=") in
        if (labelled || bound) && literal_after code (i + 2) then
          flag t.Lexer.line k)
      | _ -> ())
    code;
  !acc

(* --- catalogue -------------------------------------------------------------- *)

let all =
  [
    {
      name = "no-stdlib-random";
      summary = "all randomness must flow through Cold_prng.Prng";
      rationale =
        "Stdlib.Random has hidden global state; a stray call desynchronizes \
         seeded ensembles without failing any test.";
      applies = everywhere;
      check = check_stdlib_random;
    };
    {
      name = "no-wall-clock";
      summary = "no Sys.time / Unix.gettimeofday outside bench/";
      rationale =
        "Wall-clock reads make output depend on when a run happened, \
         breaking bit-reproducibility of synthesized topologies.";
      applies = outside_bench;
      check = check_wall_clock;
    };
    {
      name = "no-polymorphic-compare";
      summary = "use typed comparators instead of bare compare";
      rationale =
        "Polymorphic compare on records, tuples-of-floats or lazy values is \
         representation-dependent; canonical orderings (edge lists, GA \
         populations) must be typed to stay stable across refactors.";
      applies = lib_and_bin;
      check = check_poly_compare;
    };
    {
      name = "no-polymorphic-minmax";
      summary = "use Float.min/Float.max/Float.compare on float operands";
      rationale =
        "Polymorphic min/max/compare on floats dispatch on the boxed \
         representation and pin down no NaN or -0. semantics; the Float \
         module's versions are explicit and branch-free. Detection is \
         token-level (a float literal or constant in the argument window) \
         — the typed-operand generalization is a ROADMAP item.";
      applies = lib_and_bin;
      check = check_poly_minmax;
    };
    {
      name = "no-failwith-in-lib";
      summary = "library errors must be typed results or declared exceptions";
      rationale =
        "failwith \"...\" turns every caller mistake into an untyped crash; \
         parsers and validators must expose errors callers can match on.";
      applies = lib_only;
      check = check_failwith;
    };
    {
      name = "mli-required";
      summary = "every lib/**/*.ml needs a sibling .mli";
      rationale =
        "Without an interface, internal helpers leak and the determinism \
         audit cannot tell the contract from the implementation.";
      applies = (fun p -> lib_only p && is_ml p);
      check = check_mli;
    };
    {
      name = "no-naked-float-eq";
      summary = "no =, <>, == or != against float literals";
      rationale =
        "Exact float comparison against literals hides rounding assumptions \
         that differ across optimization levels and platforms.";
      applies = lib_and_bin;
      check = check_float_eq;
    };
    {
      name = "todo-tracker";
      summary = "TODO/FIXME/XXX must carry an owner or issue reference";
      rationale =
        "Bare markers rot; tracked ones — TODO(name) — keep the backlog \
         auditable as the system scales.";
      applies = everywhere;
      check = check_todo;
    };
    {
      name = "magic-cost-constant";
      summary = "k0–k3 literals belong in presets.ml (or a named constant)";
      rationale =
        "The paper's cost-parameter points define every figure; scattering \
         literal k-values makes ensembles incomparable across modules.";
      applies = (fun p -> lib_only p && basename p <> "presets.ml");
      check = check_magic_cost;
    };
  ]

let find name = List.find_opt (fun r -> r.name = name) all
