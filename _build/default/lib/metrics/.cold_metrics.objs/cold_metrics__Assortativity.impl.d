lib/metrics/assortativity.ml: Cold_graph Float
