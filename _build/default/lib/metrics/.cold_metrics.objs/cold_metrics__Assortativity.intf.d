lib/metrics/assortativity.mli: Cold_graph
