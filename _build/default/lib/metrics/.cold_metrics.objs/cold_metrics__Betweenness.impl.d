lib/metrics/betweenness.ml: Array Cold_graph Hashtbl List Option Queue Stack
