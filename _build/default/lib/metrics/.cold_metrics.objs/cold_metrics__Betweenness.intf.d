lib/metrics/betweenness.mli: Cold_graph
