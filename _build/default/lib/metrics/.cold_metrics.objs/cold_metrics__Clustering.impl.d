lib/metrics/clustering.ml: Cold_graph
