lib/metrics/clustering.mli: Cold_graph
