lib/metrics/degree.ml: Cold_graph Hashtbl List Option
