lib/metrics/degree.ml: Cold_graph Float Hashtbl Int List Option
