lib/metrics/degree.mli: Cold_graph
