lib/metrics/distance_metrics.ml: Array Cold_graph
