lib/metrics/distance_metrics.mli: Cold_graph
