lib/metrics/spectral.ml: Array Cold_graph Float
