lib/metrics/spectral.mli: Cold_graph
