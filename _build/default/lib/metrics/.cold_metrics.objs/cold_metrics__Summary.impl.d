lib/metrics/summary.ml: Assortativity Clustering Cold_graph Degree Distance_metrics Format Printf
