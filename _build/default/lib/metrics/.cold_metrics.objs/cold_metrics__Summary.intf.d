lib/metrics/summary.mli: Cold_graph Format
