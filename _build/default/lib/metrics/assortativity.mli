(** Degree assortativity (Newman's r): the Pearson correlation of the degrees
    at either end of an edge. The 2K-distribution fixes exactly this
    statistic (§2), so it is used to validate the dK machinery and appears in
    the extended statistics the paper mentions examining. *)

val degree_assortativity : Cold_graph.Graph.t -> float
(** [degree_assortativity g] ∈ [-1, 1]; [nan] when undefined (fewer than one
    edge or zero variance, e.g. regular graphs). *)
