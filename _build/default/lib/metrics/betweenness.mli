(** Shortest-path betweenness centrality (Brandes' algorithm, unweighted).
    Listed among the "much larger set of network features" the paper examined
    (§6); exposed for users who tune against it. *)

val nodes : Cold_graph.Graph.t -> float array
(** [nodes g].(v) is the betweenness of vertex [v]: the sum over pairs
    (s,t) of the fraction of shortest s–t paths through [v]. Endpoints are
    excluded. Each unordered pair is counted once. *)

val edges : Cold_graph.Graph.t -> ((int * int) * float) list
(** Per-edge betweenness, keyed by [(u, v)] with [u < v]. *)
