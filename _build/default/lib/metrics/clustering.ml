module Graph = Cold_graph.Graph

let triangle_count g =
  let count = ref 0 in
  (* For each edge (u,v) count common neighbours w > v to count each
     triangle once (u < v < w). *)
  Graph.iter_edges g (fun u v ->
      Graph.iter_neighbors g u (fun w ->
          if w > v && Graph.mem_edge g v w then incr count));
  !count

let wedge_count g =
  let count = ref 0 in
  for v = 0 to Graph.node_count g - 1 do
    let d = Graph.degree g v in
    count := !count + (d * (d - 1) / 2)
  done;
  !count

let global g =
  let wedges = wedge_count g in
  if wedges = 0 then 0.0
  else 3.0 *. float_of_int (triangle_count g) /. float_of_int wedges

let local_coefficient g v =
  let d = Graph.degree g v in
  if d < 2 then 0.0
  else begin
    let links = ref 0 in
    Graph.iter_neighbors g v (fun a ->
        Graph.iter_neighbors g v (fun b ->
            if a < b && Graph.mem_edge g a b then incr links));
    float_of_int !links /. float_of_int (d * (d - 1) / 2)
  end

let average_local g =
  let n = Graph.node_count g in
  if n = 0 then 0.0
  else begin
    let total = ref 0.0 in
    for v = 0 to n - 1 do
      total := !total +. local_coefficient g v
    done;
    !total /. float_of_int n
  end
