(** Clustering coefficients (Fig 7).

    The paper's "graph-wide clustering" is the {e global} clustering
    coefficient: the fraction of connected triples (wedges) that are closed
    into triangles. Trees score 0, cliques score 1. *)

val triangle_count : Cold_graph.Graph.t -> int
(** Number of distinct triangles. *)

val wedge_count : Cold_graph.Graph.t -> int
(** Number of connected vertex triples centred anywhere:
    Σ_v C(deg v, 2). *)

val global : Cold_graph.Graph.t -> float
(** [global g] = 3·triangles / wedges; 0 if there are no wedges. *)

val local_coefficient : Cold_graph.Graph.t -> int -> float
(** [local_coefficient g v]: fraction of neighbour pairs of [v] that are
    adjacent; 0 when [deg v < 2]. *)

val average_local : Cold_graph.Graph.t -> float
(** Watts–Strogatz average of local coefficients over all vertices. *)
