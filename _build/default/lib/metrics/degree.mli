(** Degree-based statistics.

    These are the statistics the paper tunes and reports: average node degree
    (Fig 5), the coefficient of variation of node degree — CVND, the paper's
    "hubbiness" measure (Fig 8) — and the hub/leaf decomposition (Fig 9). *)

val average : Cold_graph.Graph.t -> float
(** [average g] is 2m/n; 0 for the empty vertex set. *)

val coefficient_of_variation : Cold_graph.Graph.t -> float
(** [coefficient_of_variation g] is the population standard deviation of the
    degree sequence divided by its mean (CVND). 0 when the mean is 0. *)

val distribution : Cold_graph.Graph.t -> (int * int) list
(** [distribution g] is the sorted [(degree, count)] histogram. *)

val hub_count : Cold_graph.Graph.t -> int
(** Number of core PoPs: vertices of degree > 1 (Fig 9). *)

val leaf_count : Cold_graph.Graph.t -> int
(** Vertices of degree exactly 1. *)

val leaf_fraction : Cold_graph.Graph.t -> float

val max_degree : Cold_graph.Graph.t -> int

val entropy : Cold_graph.Graph.t -> float
(** Shannon entropy (nats) of the degree distribution — the graph-entropy
    style statistic Li et al. use to expose PLRG flaws (§2). 0 for regular
    graphs. *)
