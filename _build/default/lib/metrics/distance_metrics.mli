(** Hop-distance statistics: diameter (Fig 6) and average shortest-path
    length. Both are defined on the hop metric, matching the paper
    ("the maximum number of hops between pairs of nodes"). *)

val diameter : Cold_graph.Graph.t -> int
(** [diameter g] is the largest hop distance between any reachable pair; [-1]
    if [g] is disconnected (diameter undefined), 0 for trivial graphs. *)

val average_shortest_path : Cold_graph.Graph.t -> float
(** Mean hop distance over all ordered reachable pairs; [nan] if no pair is
    reachable. *)

val eccentricity : Cold_graph.Graph.t -> int -> int
(** [eccentricity g v]: max hop distance from [v] to any reachable vertex. *)

val radius : Cold_graph.Graph.t -> int
(** Minimum eccentricity; [-1] if disconnected. *)
