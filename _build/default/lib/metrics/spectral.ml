module Graph = Cold_graph.Graph

let norm v = sqrt (Array.fold_left (fun acc x -> acc +. (x *. x)) 0.0 v)

let normalize v =
  let n = norm v in
  if n > 0.0 then Array.map (fun x -> x /. n) v else v

(* Deterministic pseudo-random start vector, orthogonal enough to special
   eigenvectors to converge. *)
let start_vector n =
  Array.init n (fun i ->
      let x = float_of_int ((i * 2654435761) land 0xFFFF) /. 65536.0 in
      x -. 0.5)

let spectral_radius ?(iterations = 500) g =
  let n = Graph.node_count g in
  if n = 0 || Graph.edge_count g = 0 then 0.0
  else begin
    let v = ref (normalize (start_vector n)) in
    let lambda = ref 0.0 in
    for _ = 1 to iterations do
      let w = Array.make n 0.0 in
      for u = 0 to n - 1 do
        Graph.iter_neighbors g u (fun x -> w.(u) <- w.(u) +. !v.(x))
      done;
      lambda := norm w;
      if !lambda > 0.0 then v := normalize w
    done;
    !lambda
  end

let algebraic_connectivity ?(iterations = 500) g =
  let n = Graph.node_count g in
  if n <= 1 then 0.0
  else begin
    (* Power-iterate B = cI − L on the complement of span{1}; the dominant
       eigenvalue there is c − λ₂. *)
    let max_deg = ref 0 in
    for v = 0 to n - 1 do
      max_deg := max !max_deg (Graph.degree g v)
    done;
    let c = float_of_int (2 * !max_deg) +. 1.0 in
    let deflate v =
      let mean = Array.fold_left ( +. ) 0.0 v /. float_of_int n in
      Array.map (fun x -> x -. mean) v
    in
    let v = ref (normalize (deflate (start_vector n))) in
    let mu = ref 0.0 in
    for _ = 1 to iterations do
      let w = Array.make n 0.0 in
      for u = 0 to n - 1 do
        w.(u) <- (c -. float_of_int (Graph.degree g u)) *. !v.(u);
        Graph.iter_neighbors g u (fun x -> w.(u) <- w.(u) +. !v.(x))
      done;
      let w = deflate w in
      mu := norm w;
      if !mu > 0.0 then v := normalize w
    done;
    Float.max 0.0 (c -. !mu)
  end
