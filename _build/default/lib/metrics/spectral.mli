(** Spectral graph measures, computed with deflated power iteration (no
    external linear algebra).

    The algebraic connectivity (Fiedler value, λ₂ of the Laplacian) is a
    standard robustness score for backbone designs — 0 iff disconnected,
    larger when better connected — complementing the combinatorial measures
    in {!Cold_graph.Robustness}. Iterative and approximate: tolerances suit
    PoP-scale graphs (tens to hundreds of vertices). *)

val spectral_radius : ?iterations:int -> Cold_graph.Graph.t -> float
(** Largest adjacency eigenvalue (power iteration, default 500 rounds).
    For a d-regular graph this is d; 0 for edgeless graphs. *)

val algebraic_connectivity : ?iterations:int -> Cold_graph.Graph.t -> float
(** λ₂ of the combinatorial Laplacian: 0 (within tolerance) iff the graph is
    disconnected; n for the complete graph K_n; 2(1 − cos(π/n)) for the path
    P_n. Power iteration on a spectral shift of L, deflated against the
    constant vector. *)
