module Graph = Cold_graph.Graph
module Traversal = Cold_graph.Traversal

type t = {
  nodes : int;
  edges : int;
  connected : bool;
  average_degree : float;
  cvnd : float;
  max_degree : int;
  hubs : int;
  leaves : int;
  diameter : int;
  average_shortest_path : float;
  global_clustering : float;
  average_local_clustering : float;
  assortativity : float;
  degree_entropy : float;
}

let compute g =
  {
    nodes = Graph.node_count g;
    edges = Graph.edge_count g;
    connected = Traversal.is_connected g;
    average_degree = Degree.average g;
    cvnd = Degree.coefficient_of_variation g;
    max_degree = Degree.max_degree g;
    hubs = Degree.hub_count g;
    leaves = Degree.leaf_count g;
    diameter = Distance_metrics.diameter g;
    average_shortest_path = Distance_metrics.average_shortest_path g;
    global_clustering = Clustering.global g;
    average_local_clustering = Clustering.average_local g;
    assortativity = Assortativity.degree_assortativity g;
    degree_entropy = Degree.entropy g;
  }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>nodes: %d@ edges: %d@ connected: %b@ average degree: %.3f@ \
     CVND: %.3f@ max degree: %d@ hubs (deg>1): %d@ leaves: %d@ \
     diameter (hops): %d@ avg shortest path: %.3f@ global clustering: %.3f@ \
     avg local clustering: %.3f@ assortativity: %.3f@ degree entropy: %.3f@]"
    t.nodes t.edges t.connected t.average_degree t.cvnd t.max_degree t.hubs
    t.leaves t.diameter t.average_shortest_path t.global_clustering
    t.average_local_clustering t.assortativity t.degree_entropy

let to_csv_header =
  "nodes,edges,connected,avg_degree,cvnd,max_degree,hubs,leaves,diameter,\
   avg_shortest_path,global_clustering,avg_local_clustering,assortativity,\
   degree_entropy"

let to_csv_row t =
  Printf.sprintf "%d,%d,%b,%.6f,%.6f,%d,%d,%d,%d,%.6f,%.6f,%.6f,%.6f,%.6f"
    t.nodes t.edges t.connected t.average_degree t.cvnd t.max_degree t.hubs
    t.leaves t.diameter t.average_shortest_path t.global_clustering
    t.average_local_clustering t.assortativity t.degree_entropy
