(** One-shot bundle of every headline statistic for a topology — what the
    benchmark harness and the CLI print per network. *)

type t = {
  nodes : int;
  edges : int;
  connected : bool;
  average_degree : float;
  cvnd : float;  (** Coefficient of variation of node degree (Fig 8). *)
  max_degree : int;
  hubs : int;  (** Core PoPs: degree > 1 (Fig 9). *)
  leaves : int;
  diameter : int;  (** Hop diameter; [-1] if disconnected (Fig 6). *)
  average_shortest_path : float;
  global_clustering : float;  (** Fig 7. *)
  average_local_clustering : float;
  assortativity : float;
  degree_entropy : float;
}

val compute : Cold_graph.Graph.t -> t

val pp : Format.formatter -> t -> unit
(** Multi-line human-readable rendering. *)

val to_csv_header : string
(** Comma-separated column names matching {!to_csv_row}. *)

val to_csv_row : t -> string
