lib/net/capacity.ml: Array Float List Routing
