lib/net/capacity.mli: Routing
