lib/net/network.ml: Array Capacity Cold_context Cold_graph Format List Routing
