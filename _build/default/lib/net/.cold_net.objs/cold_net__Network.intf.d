lib/net/network.mli: Capacity Cold_context Cold_graph Format Routing
