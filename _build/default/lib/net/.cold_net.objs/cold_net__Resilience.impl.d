lib/net/resilience.ml: Array Cold_context Cold_graph Cold_traffic Float Int List Network Routing
