lib/net/resilience.mli: Network
