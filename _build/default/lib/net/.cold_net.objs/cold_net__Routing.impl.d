lib/net/routing.ml: Array Cold_graph Cold_traffic Float List
