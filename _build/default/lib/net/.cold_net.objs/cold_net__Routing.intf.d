lib/net/routing.mli: Cold_graph Cold_traffic
