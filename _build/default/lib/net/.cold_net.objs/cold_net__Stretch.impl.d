lib/net/stretch.ml: Array Cold_context Cold_graph Cold_traffic Float Network
