lib/net/stretch.mli: Network
