type policy = { overprovision : float; module_size : float option }

type t = { n : int; matrix : float array }

let default = { overprovision = 2.0; module_size = None }

let assign policy loads =
  if policy.overprovision < 1.0 then
    invalid_arg "Capacity.assign: overprovision must be >= 1";
  (match policy.module_size with
  | Some c when c <= 0.0 -> invalid_arg "Capacity.assign: module_size must be positive"
  | _ -> ());
  let round w =
    match policy.module_size with
    | None -> w
    | Some c -> c *. Float.ceil (w /. c)
  in
  let seed = Routing.fold loads (fun acc u v w -> (u, v, w) :: acc) [] in
  let n =
    List.fold_left (fun acc (u, v, _) -> max acc (max u v + 1)) 0 seed
  in
  (* Size by the largest endpoint seen; capacity queries beyond that are 0. *)
  let matrix = Array.make (max 1 (n * n)) 0.0 in
  List.iter
    (fun (u, v, w) ->
      let c = round (policy.overprovision *. w) in
      matrix.((u * n) + v) <- c;
      matrix.((v * n) + u) <- c)
    seed;
  { n = max 1 n; matrix }

let capacity t u v =
  if u < 0 || v < 0 then invalid_arg "Capacity.capacity";
  if u >= t.n || v >= t.n then 0.0 else t.matrix.((u * t.n) + v)

let fold t f init =
  let acc = ref init in
  for u = 0 to t.n - 1 do
    for v = u + 1 to t.n - 1 do
      let c = t.matrix.((u * t.n) + v) in
      if c > 0.0 then acc := f !acc u v c
    done
  done;
  !acc

let total t = fold t (fun acc _ _ c -> acc +. c) 0.0

let utilization t loads =
  let cap = total t in
  if cap <= 0.0 then 0.0
  else Routing.fold loads (fun acc _ _ w -> acc +. w) 0.0 /. cap
