(** Link capacity assignment.

    Equation (1) of the paper introduces the over-provisioning factor [O]:
    "the factor by which the capacity will exceed the required bandwidth,
    constant across all links". Because it is constant it does not affect
    which topology is optimal, so capacities are assigned {e after}
    optimization. Optionally capacities are rounded up to multiples of a
    module size (line cards come in discrete rates), which is how a
    router-level implementation would provision the PoP-level design. *)

type policy = {
  overprovision : float;  (** The paper's O; must be >= 1. *)
  module_size : float option;
      (** When [Some c], capacities round up to multiples of [c]. *)
}

type t
(** Per-link capacities. *)

val default : policy
(** O = 2.0, no modular rounding. *)

val assign : policy -> Routing.loads -> t
(** [assign policy loads] gives every loaded link capacity
    [O · load], rounded up per [module_size]. Raises [Invalid_argument] if
    [overprovision < 1] or [module_size <= 0]. *)

val capacity : t -> int -> int -> float
(** [capacity c u v]; 0 for unloaded pairs. *)

val utilization : t -> Routing.loads -> float
(** [utilization c loads] is total load / total capacity (0 if no capacity);
    with no rounding this is 1/O on every network. *)

val fold : t -> ('a -> int -> int -> float -> 'a) -> 'a -> 'a
(** Folds over links with positive capacity, [u < v], lexicographic. *)

val total : t -> float
(** Sum of link capacities. *)
