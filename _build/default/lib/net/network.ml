module Graph = Cold_graph.Graph
module Shortest_path = Cold_graph.Shortest_path
module Context = Cold_context.Context

type t = {
  graph : Graph.t;
  context : Context.t;
  loads : Routing.loads;
  capacities : Capacity.t;
}

let build ?(policy = Capacity.default) ?multipath ctx g =
  if Graph.node_count g <> Context.n ctx then
    invalid_arg "Network.build: graph size does not match context";
  let length u v = Context.distance ctx u v in
  let loads = Routing.route ?multipath g ~length ~tm:ctx.Context.tm in
  { graph = g; context = ctx; loads; capacities = Capacity.assign policy loads }

let link_length net u v = Context.distance net.context u v

let total_link_length net =
  Graph.fold_edges net.graph (fun acc u v -> acc +. link_length net u v) 0.0

let path net s d =
  let n = Graph.node_count net.graph in
  if s < 0 || d < 0 || s >= n || d >= n then invalid_arg "Network.path";
  if s = d then [ s ]
  else begin
    (* Pairs are carried on the tree rooted at the smaller endpoint, matching
       how Routing accumulated loads. *)
    let root = min s d and other = max s d in
    let tree = (Routing.trees net.loads).(root) in
    match Shortest_path.path tree other with
    | None -> invalid_arg "Network.path: unreachable (network disconnected?)"
    | Some p -> if root = s then p else List.rev p
  end

let path_length net s d =
  let rec walk = function
    | [] | [ _ ] -> 0.0
    | u :: (v :: _ as rest) -> link_length net u v +. walk rest
  in
  walk (path net s d)

let pp_summary fmt net =
  let g = net.graph in
  Format.fprintf fmt
    "@[<v>PoPs: %d@ links: %d@ total link length: %.4f@ total capacity: %.1f@ \
     max link load: %.1f@ utilization: %.3f@]"
    (Graph.node_count g) (Graph.edge_count g) (total_link_length net)
    (Capacity.total net.capacities)
    (Routing.max_load net.loads)
    (Capacity.utilization net.capacities net.loads)
