(** A synthesized {e network}: topology plus link lengths, capacities and
    routing — "more than just a series of connected nodes" (§2, criterion 5).
    This is the value COLD ultimately returns; simulators consume it
    directly. *)

type t = {
  graph : Cold_graph.Graph.t;  (** PoP-level topology. *)
  context : Cold_context.Context.t;  (** Locations + traffic matrix it was designed for. *)
  loads : Routing.loads;  (** Traffic carried per link under shortest-path routing. *)
  capacities : Capacity.t;
}

val build :
  ?policy:Capacity.policy ->
  ?multipath:bool ->
  Cold_context.Context.t ->
  Cold_graph.Graph.t ->
  t
(** [build ?policy ?multipath ctx g] routes [ctx]'s traffic matrix over [g]
    (raising {!Routing.Disconnected} if it cannot be carried) and assigns
    capacities (default policy {!Capacity.default}). [multipath] selects
    ECMP load balancing (see {!Routing.route}); default single-path. *)

val link_length : t -> int -> int -> float
(** Euclidean length of a (potential) link. *)

val total_link_length : t -> float
(** Σ ℓ over present links. *)

val path : t -> int -> int -> int list
(** [path net s d] is the routed PoP sequence from [s] to [d] (as carried:
    pairs are routed on the tree rooted at the smaller endpoint). *)

val path_length : t -> int -> int -> float
(** Geographic length of the routed path — a latency proxy. *)

val pp_summary : Format.formatter -> t -> unit
(** Topology statistics plus capacity totals. *)
