(** Failure analysis of synthesized networks.

    Simulation studies of the kind the paper motivates (§1: anomaly
    detection, protocol evaluation) usually stress networks with failures.
    This module answers, for a {!Network.t}: which traffic is stranded when a
    link or a PoP fails, which links are single points of failure, and how
    the designs produced by different cost parameters trade capacity for
    survivability. All fractions are of the context's total traffic. *)

type link_report = {
  link : int * int;
  stranded_fraction : float;
      (** Traffic whose endpoints are separated by the failure. *)
  load_fraction : float;  (** Share of total carried volume on the link. *)
  is_bridge : bool;
}

val stranded_by_link_failure : Network.t -> int -> int -> float
(** [stranded_by_link_failure net u v] is the fraction of total demand that
    becomes unroutable when link [{u,v}] fails (0 if the pair is not a link
    or the residual graph stays connected). *)

val stranded_by_node_failure : Network.t -> int -> float
(** Fraction of total demand lost when PoP [v] fails: demand to/from [v]
    plus demand separated by its removal. *)

val worst_link : Network.t -> link_report
(** The link whose failure strands the most traffic (ties broken towards the
    higher-load link, then lexicographically). Raises [Invalid_argument] on
    an edgeless network. *)

val link_reports : Network.t -> link_report list
(** One report per link, sorted by descending [stranded_fraction]. *)

val single_points_of_failure : Network.t -> int list
(** Articulation PoPs: their failure disconnects some remaining pair. *)

val survivable : Network.t -> bool
(** No single link failure strands transit traffic: the topology is
    two-edge-connected. *)
