(** Shortest-path routing of a traffic matrix over a topology (§3.2.1).

    The paper routes every demand over the length-shortest path — "the
    natural choice ... which will minimize the length of routes, and hence
    the bandwidth dependent component of cost", and also what ISPs actually
    deploy. This module computes, for a candidate topology, the per-link
    bandwidth [w] that appears in the k2 cost term, by building one
    shortest-path tree per source and pushing each source's demands down the
    tree in reverse settling order — O(n·(m log n + n)) per topology, the
    dominant cost of the whole synthesis (Fig 4's n³).

    Loads are undirected: demand s→d and d→s both accumulate on the same
    links (shortest paths are symmetric under symmetric lengths and
    deterministic tie-breaking). *)

exception Disconnected
(** Raised when some demand cannot be routed. A data network that cannot
    carry its traffic matrix is infeasible (§1, requirement 2). *)

type loads
(** Per-link traffic volumes for one topology. *)

val route :
  ?multipath:bool ->
  Cold_graph.Graph.t ->
  length:(int -> int -> float) ->
  tm:Cold_traffic.Gravity.t ->
  loads
(** [route g ~length ~tm] routes all demands. Raises {!Disconnected} if [g]
    does not connect every positive demand (with positive populations, any
    disconnection).

    [multipath] (default [false]) selects ECMP load balancing — the "tweaks
    … to allow load balancing" the paper notes real ISPs apply on top of
    shortest-path routing: at every node, traffic towards a destination is
    split equally across all next hops that lie on {e some} shortest path.
    Path lengths (and therefore the k2 cost term) are unchanged — only the
    per-link load distribution differs — so optimization under single-path
    routing remains valid and ECMP is an evaluation-time choice. *)

val load : loads -> int -> int -> float
(** [load ld u v] is the total traffic on link [{u,v}] (0 if not a link). *)

val fold : loads -> ('a -> int -> int -> float -> 'a) -> 'a -> 'a
(** [fold ld f init] folds over links with positive load, [u < v],
    lexicographic. *)

val total_volume_length : loads -> length:(int -> int -> float) -> float
(** [total_volume_length ld ~length] is Σ_links w·ℓ — equivalently
    Σ_routes t_r·L_r of equation (1). *)

val max_load : loads -> float

val trees : loads -> Cold_graph.Shortest_path.tree array
(** The per-source shortest-path trees used for routing — the "routing
    matrix" output of the paper's algorithm (§4, Outputs). *)
