(** Geographic path stretch — a latency proxy.

    For a pair (s, d), stretch is the routed geographic length divided by the
    straight-line distance: 1.0 means the network carries the pair as the
    crow flies; trees and hub-and-spokes force detours. Simulation studies
    use this as the latency side of the cost/performance trade-off that the
    k2 knob controls (§6: low diameter / latency motivates meshiness). *)

val pair : Network.t -> int -> int -> float
(** [pair net s d] for [s <> d]; 1.0 when a direct link exists. Raises
    [Invalid_argument] on equal or out-of-range endpoints, or when the PoPs
    are co-located (zero distance). *)

val average : Network.t -> float
(** Demand-weighted mean stretch over all pairs (each unordered pair weighted
    by its traffic). [nan] for single-PoP networks. *)

val maximum : Network.t -> float * (int * int)
(** Worst pair and its stretch. Raises [Invalid_argument] for networks with
    fewer than 2 PoPs. *)

val distribution : Network.t -> float array
(** Per-unordered-pair stretch values, pair order (0,1), (0,2), … — feed to
    {!Cold_stats.Histogram} or {!Cold_stats.Descriptive}. *)
