lib/netio/ascii_map.ml: Array Cold_context Cold_geom Cold_graph Cold_net Float String
