lib/netio/ascii_map.mli: Cold_geom Cold_graph Cold_net
