lib/netio/dot.ml: Array Buffer Cold_context Cold_geom Cold_graph Cold_net Fun Printf
