lib/netio/dot.mli: Cold_graph Cold_net
