lib/netio/edge_list.ml: Buffer Cold_graph Fun List Parse_error Printf String
