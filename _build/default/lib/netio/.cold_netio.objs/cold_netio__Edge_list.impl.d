lib/netio/edge_list.ml: Buffer Cold_graph Fun List Printf String
