lib/netio/edge_list.mli: Cold_graph Parse_error
