lib/netio/edge_list.mli: Cold_graph
