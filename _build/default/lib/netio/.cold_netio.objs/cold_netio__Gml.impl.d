lib/netio/gml.ml: Array Buffer Cold_context Cold_geom Cold_graph Cold_net Printf
