lib/netio/gml.mli: Cold_graph Cold_net
