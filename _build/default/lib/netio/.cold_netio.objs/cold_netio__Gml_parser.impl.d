lib/netio/gml_parser.ml: Cold_graph Fun Gml Hashtbl Int List Parse_error String
