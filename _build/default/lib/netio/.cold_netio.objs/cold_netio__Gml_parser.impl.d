lib/netio/gml_parser.ml: Cold_graph Fun Gml Hashtbl List String
