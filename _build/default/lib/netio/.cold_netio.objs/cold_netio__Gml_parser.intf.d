lib/netio/gml_parser.mli: Cold_graph Parse_error
