lib/netio/gml_parser.mli: Cold_graph
