lib/netio/parse_error.ml: Printf
