lib/netio/parse_error.mli:
