module Graph = Cold_graph.Graph
module Point = Cold_geom.Point
module Network = Cold_net.Network
module Context = Cold_context.Context

let render_graph ?(width = 60) ?(height = 24) points g =
  if Array.length points <> Graph.node_count g then
    invalid_arg "Ascii_map.render_graph: size mismatch";
  if width < 8 || height < 4 then invalid_arg "Ascii_map: canvas too small";
  let n = Array.length points in
  let canvas = Array.make_matrix height width ' ' in
  if n = 0 then String.concat "\n" (Array.to_list (Array.map (fun r -> String.init width (fun c -> r.(c))) canvas))
  else begin
    (* Bounding box with a small margin. *)
    let min_x = ref infinity and max_x = ref neg_infinity in
    let min_y = ref infinity and max_y = ref neg_infinity in
    Array.iter
      (fun p ->
        min_x := Float.min !min_x p.Point.x;
        max_x := Float.max !max_x p.Point.x;
        min_y := Float.min !min_y p.Point.y;
        max_y := Float.max !max_y p.Point.y)
      points;
    let span v lo hi = if hi -. lo <= 0.0 then 0.5 else (v -. lo) /. (hi -. lo) in
    let col p = min (width - 1) (int_of_float (span p.Point.x !min_x !max_x *. float_of_int (width - 1))) in
    (* Screen y grows downward. *)
    let row p =
      min (height - 1)
        (int_of_float ((1.0 -. span p.Point.y !min_y !max_y) *. float_of_int (height - 1)))
    in
    (* Links first so node markers overwrite them. *)
    let plot_line (r0, c0) (r1, c1) =
      let steps = max (abs (r1 - r0)) (abs (c1 - c0)) in
      for s = 0 to steps do
        let t = if steps = 0 then 0.0 else float_of_int s /. float_of_int steps in
        let r = r0 + int_of_float (Float.round (t *. float_of_int (r1 - r0))) in
        let c = c0 + int_of_float (Float.round (t *. float_of_int (c1 - c0))) in
        if canvas.(r).(c) = ' ' then canvas.(r).(c) <- '.'
      done
    in
    Graph.iter_edges g (fun u v ->
        plot_line (row points.(u), col points.(u)) (row points.(v), col points.(v)));
    (* Node markers and (best-effort) labels. *)
    for v = 0 to n - 1 do
      let r = row points.(v) and c = col points.(v) in
      canvas.(r).(c) <- (if Graph.degree g v > 1 then '#' else 'o');
      let label = string_of_int v in
      if String.length label <= 2 && c + String.length label < width then
        String.iteri
          (fun i ch ->
            if canvas.(r).(c + 1 + i) = ' ' || canvas.(r).(c + 1 + i) = '.' then
              canvas.(r).(c + 1 + i) <- ch)
          label
    done;
    let rows =
      Array.to_list (Array.map (fun r -> String.init width (fun c -> r.(c))) canvas)
    in
    String.concat "\n" (rows @ [ "legend: # hub PoP (degree > 1), o leaf PoP, . link" ])
  end

let render ?width ?height (net : Network.t) =
  render_graph ?width ?height net.Network.context.Context.points net.Network.graph
