(** Terminal rendering of a network's geography: PoPs plotted on a character
    grid at their coordinates (hubs as [#], leaves as [o]), links drawn as
    line segments. Crude by construction — it exists so examples and the CLI
    can show a topology without Graphviz. *)

val render : ?width:int -> ?height:int -> Cold_net.Network.t -> string
(** [render net] is a [width] × [height] character picture (defaults 60 × 24)
    with a one-line legend. Node ids ≤ 2 digits are printed next to their
    marker where space allows. *)

val render_graph :
  ?width:int ->
  ?height:int ->
  Cold_geom.Point.t array ->
  Cold_graph.Graph.t ->
  string
(** Same, from bare points + topology. Raises [Invalid_argument] if sizes
    disagree. *)
