module Graph = Cold_graph.Graph
module Network = Cold_net.Network
module Capacity = Cold_net.Capacity
module Context = Cold_context.Context

let of_graph ?(name = "topology") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n" name);
  for v = 0 to Graph.node_count g - 1 do
    Buffer.add_string buf (Printf.sprintf "  %d;\n" v)
  done;
  Graph.iter_edges g (fun u v ->
      Buffer.add_string buf (Printf.sprintf "  %d -- %d;\n" u v));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let of_network ?(name = "network") (net : Network.t) =
  let g = net.Network.graph in
  let ctx = net.Network.context in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "graph %s {\n  node [fontsize=10];\n" name);
  for v = 0 to Graph.node_count g - 1 do
    let p = ctx.Context.points.(v) in
    let shape = if Graph.degree g v > 1 then "box" else "circle" in
    Buffer.add_string buf
      (Printf.sprintf "  %d [pos=\"%.1f,%.1f!\", shape=%s];\n" v
         (p.Cold_geom.Point.x *. 500.0)
         (p.Cold_geom.Point.y *. 500.0)
         shape)
  done;
  Graph.iter_edges g (fun u v ->
      let cap = Capacity.capacity net.Network.capacities u v in
      Buffer.add_string buf
        (Printf.sprintf "  %d -- %d [label=\"%.0f\"];\n" u v cap));
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ~path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)
