(** Graphviz DOT export. Networks come out with geographic positions (for
    [neato -n]), link capacities as labels and leaf/core styling, so a
    synthesized topology can be eyeballed directly. *)

val of_graph : ?name:string -> Cold_graph.Graph.t -> string
(** Bare topology. *)

val of_network : ?name:string -> Cold_net.Network.t -> string
(** Topology with positions ([pos="x,y!"]), capacity edge labels, and core
    PoPs drawn as boxes. *)

val write_file : path:string -> string -> unit
(** Writes any DOT string to [path]. *)
