module Graph = Cold_graph.Graph

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" (Graph.node_count g) (Graph.edge_count g));
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

(* Internal control flow only; [of_string] catches this and returns [Error]. *)
exception Err of Parse_error.t

let err line fmt =
  Printf.ksprintf (fun m -> raise (Err (Parse_error.make ~line m))) fmt

let of_string s =
  let meaningful =
    String.split_on_char '\n' s
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  match
    match meaningful with
    | [] -> err 0 "empty input"
    | (header_line, header) :: rest ->
      let parse_two line text =
        match String.split_on_char ' ' text |> List.filter (( <> ) "") with
        | [ a; b ] -> (
          match (int_of_string_opt a, int_of_string_opt b) with
          | Some x, Some y -> (x, y)
          | _ -> err line "not integers")
        | _ -> err line "expected two fields"
      in
      let (n, m) = parse_two header_line header in
      if n < 0 || m < 0 then err header_line "negative header";
      let g = Graph.create n in
      List.iter
        (fun (line, text) ->
          let (u, v) = parse_two line text in
          if u < 0 || v < 0 || u >= n || v >= n then err line "vertex out of range";
          if u = v then err line "self-loop";
          Graph.add_edge g u v)
        rest;
      if Graph.edge_count g <> m then
        err header_line "header claims %d edges, found %d" m (Graph.edge_count g);
      g
  with
  | g -> Ok g
  | exception Err e -> Error e

let write_file ~path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let read_file ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let size = in_channel_length ic in
      of_string (really_input_string ic size))
