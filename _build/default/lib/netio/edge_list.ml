module Graph = Cold_graph.Graph

let to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" (Graph.node_count g) (Graph.edge_count g));
  Graph.iter_edges g (fun u v -> Buffer.add_string buf (Printf.sprintf "%d %d\n" u v));
  Buffer.contents buf

let of_string s =
  let meaningful =
    String.split_on_char '\n' s
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "" && l.[0] <> '#')
  in
  match meaningful with
  | [] -> failwith "Edge_list.of_string: empty input"
  | (header_line, header) :: rest ->
    let parse_two line text =
      match String.split_on_char ' ' text |> List.filter (( <> ) "") with
      | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | Some x, Some y -> (x, y)
        | _ -> failwith (Printf.sprintf "Edge_list.of_string: line %d: not integers" line))
      | _ -> failwith (Printf.sprintf "Edge_list.of_string: line %d: expected two fields" line)
    in
    let (n, m) = parse_two header_line header in
    if n < 0 || m < 0 then
      failwith (Printf.sprintf "Edge_list.of_string: line %d: negative header" header_line);
    let g = Graph.create n in
    List.iter
      (fun (line, text) ->
        let (u, v) = parse_two line text in
        if u < 0 || v < 0 || u >= n || v >= n then
          failwith (Printf.sprintf "Edge_list.of_string: line %d: vertex out of range" line);
        if u = v then
          failwith (Printf.sprintf "Edge_list.of_string: line %d: self-loop" line);
        Graph.add_edge g u v)
      rest;
    if Graph.edge_count g <> m then
      failwith
        (Printf.sprintf "Edge_list.of_string: header claims %d edges, found %d" m
           (Graph.edge_count g));
    g

let write_file ~path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string g))

let read_file ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let size = in_channel_length ic in
      of_string (really_input_string ic size))
