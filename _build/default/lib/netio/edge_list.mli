(** Plain edge-list serialization: a header line [n m] followed by one
    [u v] pair per line. Round-trips exactly; the simplest interchange for
    feeding topologies to simulators or re-importing reference graphs. *)

val to_string : Cold_graph.Graph.t -> string

val of_string : string -> (Cold_graph.Graph.t, Parse_error.t) result
(** [of_string s] parses; malformed input (bad header, vertex out of range,
    self-loop, wrong edge count) yields [Error] carrying the offending
    1-based line. Blank lines and [#] comment lines are ignored. *)

val write_file : path:string -> Cold_graph.Graph.t -> unit

val read_file : path:string -> (Cold_graph.Graph.t, Parse_error.t) result
(** [read_file ~path] parses a file. I/O failures still raise [Sys_error];
    only parse problems are reported as [Error]. *)
