(** Plain edge-list serialization: a header line [n m] followed by one
    [u v] pair per line. Round-trips exactly; the simplest interchange for
    feeding topologies to simulators or re-importing reference graphs. *)

val to_string : Cold_graph.Graph.t -> string

val of_string : string -> Cold_graph.Graph.t
(** Raises [Failure] with a line-numbered message on malformed input
    (bad header, vertex out of range, self-loop, wrong edge count). Blank
    lines and [#] comment lines are ignored. *)

val write_file : path:string -> Cold_graph.Graph.t -> unit

val read_file : path:string -> Cold_graph.Graph.t
