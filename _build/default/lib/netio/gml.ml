module Graph = Cold_graph.Graph
module Network = Cold_net.Network
module Capacity = Cold_net.Capacity
module Context = Cold_context.Context

let of_graph ?(label = "topology") g =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf (Printf.sprintf "graph [\n  label \"%s\"\n" label);
  for v = 0 to Graph.node_count g - 1 do
    Buffer.add_string buf (Printf.sprintf "  node [\n    id %d\n  ]\n" v)
  done;
  Graph.iter_edges g (fun u v ->
      Buffer.add_string buf
        (Printf.sprintf "  edge [\n    source %d\n    target %d\n  ]\n" u v));
  Buffer.add_string buf "]\n";
  Buffer.contents buf

let of_network ?(label = "network") (net : Network.t) =
  let g = net.Network.graph in
  let ctx = net.Network.context in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "graph [\n  label \"%s\"\n" label);
  for v = 0 to Graph.node_count g - 1 do
    let p = ctx.Context.points.(v) in
    Buffer.add_string buf
      (Printf.sprintf
         "  node [\n    id %d\n    graphics [\n      x %.6f\n      y %.6f\n    ]\n  ]\n"
         v p.Cold_geom.Point.x p.Cold_geom.Point.y)
  done;
  Graph.iter_edges g (fun u v ->
      Buffer.add_string buf
        (Printf.sprintf
           "  edge [\n    source %d\n    target %d\n    value %.6f\n    capacity %.2f\n  ]\n"
           u v
           (Network.link_length net u v)
           (Capacity.capacity net.Network.capacities u v)));
  Buffer.add_string buf "]\n";
  Buffer.contents buf
