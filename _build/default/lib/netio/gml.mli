(** GML export — the format the Internet Topology Zoo distributes its maps
    in, so synthesized networks can flow into existing Zoo tooling. *)

val of_network : ?label:string -> Cold_net.Network.t -> string
(** Nodes carry [graphics] x/y from the PoP coordinates; edges carry a
    [capacity] attribute and [value] = link length. *)

val of_graph : ?label:string -> Cold_graph.Graph.t -> string
