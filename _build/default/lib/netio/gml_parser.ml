module Graph = Cold_graph.Graph

type token = Lbracket | Rbracket | Word of string

let tokenize text =
  let tokens = ref [] in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    let c = text.[!i] in
    if c = '[' then begin
      tokens := Lbracket :: !tokens;
      incr i
    end
    else if c = ']' then begin
      tokens := Rbracket :: !tokens;
      incr i
    end
    else if c = '"' then begin
      (* Quoted string: consumed as one token, quotes stripped. *)
      let j = ref (!i + 1) in
      while !j < n && text.[!j] <> '"' do
        incr j
      done;
      if !j >= n then failwith "Gml_parser: unterminated string";
      tokens := Word (String.sub text (!i + 1) (!j - !i - 1)) :: !tokens;
      i := !j + 1
    end
    else if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else begin
      let j = ref !i in
      while
        !j < n
        &&
        let d = text.[!j] in
        d <> ' ' && d <> '\t' && d <> '\n' && d <> '\r' && d <> '[' && d <> ']'
      do
        incr j
      done;
      tokens := Word (String.sub text !i (!j - !i)) :: !tokens;
      i := !j
    end
  done;
  List.rev !tokens

(* A GML value is either a scalar word or a bracketed list of (key, value)
   pairs. *)
type value = Scalar of string | Block of (string * value) list

(* Parses pairs until Rbracket (closed = true) or end of input
   (closed = false); returns (pairs, rest, closed). *)
let rec parse_block tokens =
  match tokens with
  | [] -> ([], [], false)
  | Rbracket :: rest -> ([], rest, true)
  | Word key :: Lbracket :: rest ->
    let (inner, rest, closed) = parse_block rest in
    if not closed then failwith ("Gml_parser: unterminated block: " ^ key);
    let (siblings, rest, closed) = parse_block rest in
    ((key, Block inner) :: siblings, rest, closed)
  | Word key :: Word v :: rest ->
    let (siblings, rest, closed) = parse_block rest in
    ((key, Scalar v) :: siblings, rest, closed)
  | Word key :: ([] | Rbracket :: _) ->
    failwith ("Gml_parser: key without value: " ^ key)
  | Lbracket :: _ -> failwith "Gml_parser: unexpected '['"

let find_all key pairs =
  List.filter_map (fun (k, v) -> if k = key then Some v else None) pairs

let find_scalar key pairs =
  match find_all key pairs with
  | Scalar s :: _ -> Some s
  | _ -> None

let parse text =
  let tokens = tokenize text in
  let (top, rest, closed) = parse_block tokens in
  if closed || rest <> [] then failwith "Gml_parser: unbalanced brackets";
  let graph_pairs =
    match find_all "graph" top with
    | Block pairs :: _ -> pairs
    | _ -> failwith "Gml_parser: no graph block"
  in
  let node_ids =
    List.filter_map
      (function
        | Block pairs -> (
          match find_scalar "id" pairs with
          | Some s -> (
            match int_of_string_opt s with
            | Some id -> Some id
            | None -> failwith "Gml_parser: non-integer node id")
          | None -> failwith "Gml_parser: node without id")
        | Scalar _ -> failwith "Gml_parser: malformed node")
      (find_all "node" graph_pairs)
  in
  let sorted = List.sort_uniq compare node_ids in
  let index = Hashtbl.create (List.length sorted) in
  List.iteri (fun i id -> Hashtbl.replace index id i) sorted;
  let g = Graph.create (List.length sorted) in
  List.iter
    (function
      | Block pairs -> (
        let endpoint key =
          match find_scalar key pairs with
          | Some s -> (
            match int_of_string_opt s with
            | Some id -> (
              match Hashtbl.find_opt index id with
              | Some i -> i
              | None -> failwith "Gml_parser: edge endpoint is not a declared node")
            | None -> failwith "Gml_parser: non-integer edge endpoint")
          | None -> failwith "Gml_parser: edge without source/target"
        in
        let u = endpoint "source" and v = endpoint "target" in
        (* Zoo files contain self-loops and parallel edges; drop/collapse. *)
        if u <> v then Graph.add_edge g u v)
      | Scalar _ -> failwith "Gml_parser: malformed edge")
    (find_all "edge" graph_pairs);
  g

let read_file ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let roundtrip_check g = Graph.equal g (parse (Gml.of_graph g))
