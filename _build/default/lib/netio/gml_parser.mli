(** Minimal GML reader for topology interchange.

    Parses the subset of GML that the Internet Topology Zoo (and our
    {!Gml} writer) actually uses: a [graph] block with [node] blocks carrying
    integer [id]s and [edge] blocks carrying [source]/[target]. All other
    attributes (labels, graphics, capacities, …) are skipped structurally, so
    real Zoo files load. Node ids need not be dense — they are compacted to
    [0 .. n-1] preserving id order. *)

val parse : string -> (Cold_graph.Graph.t, Parse_error.t) result
(** [parse text] builds the topology. Duplicate edges collapse; self-loops
    are dropped (Zoo files contain both). Malformed input (unbalanced
    brackets, edge endpoints without node declarations, missing fields)
    yields [Error] carrying the offending source line. *)

val read_file : path:string -> (Cold_graph.Graph.t, Parse_error.t) result
(** [read_file ~path] parses a file. I/O failures still raise [Sys_error];
    only parse problems are reported as [Error]. *)

val roundtrip_check : Cold_graph.Graph.t -> bool
(** [roundtrip_check g] is [true] iff writing [g] with {!Gml.of_graph} and
    re-parsing yields an identical graph — a self-test hook. *)
