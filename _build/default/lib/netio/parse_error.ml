type t = { line : int; message : string }

let make ~line message = { line; message }

let to_string e =
  if e.line > 0 then Printf.sprintf "line %d: %s" e.line e.message
  else e.message
