lib/par/par.ml: Array Condition Domain Fun List Mutex Printexc
