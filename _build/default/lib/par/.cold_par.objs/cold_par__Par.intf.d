lib/par/par.mli:
