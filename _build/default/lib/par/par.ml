(* Fixed-size domain pool with index-addressed results.

   Shared state is guarded by one mutex; two condition variables separate
   the two waiting directions (workers waiting for work, the submitter
   waiting for completion). A job is a closure [run : int -> unit] plus a
   task count; domains race to claim indices off a shared cursor, run the
   claimed task unlocked, and report completion under the lock. The
   submitting domain participates in the draining loop, so a pool with k
   streams spawns only k-1 domains.

   Publication safety: a worker writes its result slot before taking the
   mutex to decrement [unfinished]; the submitter only reads results after
   observing [unfinished = 0] under the same mutex, so every write
   happens-before every read (release/acquire via the mutex). *)

type shared = {
  mutex : Mutex.t;
  work_ready : Condition.t;  (* a job arrived, or shutdown *)
  work_done : Condition.t;  (* unfinished hit zero *)
  mutable job : (int -> unit) option;
  mutable total : int;
  mutable cursor : int;  (* next unclaimed task index *)
  mutable unfinished : int;  (* claimed-or-unclaimed tasks not yet finished *)
  mutable stop : bool;
}

type pool = {
  shared : shared;
  workers : unit Domain.t list;
  mutable closed : bool;
}

type t = Sequential | Pool of pool

let resolve ?(domains = 1) () =
  if domains < 0 then invalid_arg "Par.resolve: domains must be >= 0";
  if domains = 0 then Domain.recommended_domain_count () else domains

(* Claim and run tasks until the cursor reaches the job's end. Caller must
   hold the mutex; returns with the mutex held. *)
let drain shared =
  match shared.job with
  | None -> ()
  | Some run ->
    while shared.cursor < shared.total do
      let i = shared.cursor in
      shared.cursor <- i + 1;
      Mutex.unlock shared.mutex;
      run i;
      Mutex.lock shared.mutex;
      shared.unfinished <- shared.unfinished - 1;
      if shared.unfinished = 0 then Condition.broadcast shared.work_done
    done

let rec worker_loop shared =
  Mutex.lock shared.mutex;
  while (not shared.stop) && (shared.job = None || shared.cursor >= shared.total)
  do
    Condition.wait shared.work_ready shared.mutex
  done;
  if shared.stop then Mutex.unlock shared.mutex
  else begin
    drain shared;
    Mutex.unlock shared.mutex;
    worker_loop shared
  end

let create ~domains =
  let streams = resolve ~domains () in
  if streams <= 1 then Sequential
  else begin
    let shared =
      {
        mutex = Mutex.create ();
        work_ready = Condition.create ();
        work_done = Condition.create ();
        job = None;
        total = 0;
        cursor = 0;
        unfinished = 0;
        stop = false;
      }
    in
    let workers =
      List.init (streams - 1) (fun _ -> Domain.spawn (fun () -> worker_loop shared))
    in
    Pool { shared; workers; closed = false }
  end

let parallelism = function
  | Sequential -> 1
  | Pool p -> 1 + List.length p.workers

let shutdown = function
  | Sequential -> ()
  | Pool p ->
    if not p.closed then begin
      p.closed <- true;
      let shared = p.shared in
      Mutex.lock shared.mutex;
      shared.stop <- true;
      Condition.broadcast shared.work_ready;
      Mutex.unlock shared.mutex;
      List.iter Domain.join p.workers
    end

let with_pool ~domains f =
  let pool = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)

let sequential_map_array f xs = Array.map f xs

let pool_map_array p f xs =
  if p.closed then invalid_arg "Par.map_array: pool is shut down";
  let shared = p.shared in
  let n = Array.length xs in
  let results = Array.make n None in
  (* The smallest-index exception wins, whatever domain hits it. *)
  let first_exn = ref None in
  let run i =
    match f xs.(i) with
    | v -> results.(i) <- Some v
    | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Mutex.lock shared.mutex;
      (match !first_exn with
      | Some (j, _, _) when j < i -> ()
      | _ -> first_exn := Some (i, e, bt));
      Mutex.unlock shared.mutex
  in
  Mutex.lock shared.mutex;
  shared.job <- Some run;
  shared.total <- n;
  shared.cursor <- 0;
  shared.unfinished <- n;
  Condition.broadcast shared.work_ready;
  drain shared;
  while shared.unfinished > 0 do
    Condition.wait shared.work_done shared.mutex
  done;
  shared.job <- None;
  let failed = !first_exn in
  Mutex.unlock shared.mutex;
  (match failed with
  | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ());
  Array.map (function Some v -> v | None -> assert false) results

let map_array t f xs =
  if Array.length xs = 0 then [||]
  else
    match t with
    | Sequential -> sequential_map_array f xs
    | Pool p -> pool_map_array p f xs

let map t f xs = Array.to_list (map_array t f (Array.of_list xs))
