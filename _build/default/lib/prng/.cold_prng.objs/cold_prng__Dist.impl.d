lib/prng/dist.ml: Array Float Prng
