lib/prng/prng.ml: Char Int64 String
