lib/prng/prng.mli:
