(** Random variates and sampling utilities on top of {!Prng}.

    Every sampler takes the generator explicitly so call sites control
    determinism. The distributions here are exactly the ones the COLD paper
    needs: exponential and Pareto populations for the gravity traffic model
    (§3.1), the geometric mutation magnitudes of the genetic algorithm
    (§4.1.2), and uniform machinery for point processes and selection. *)

val uniform : Prng.t -> lo:float -> hi:float -> float
(** [uniform g ~lo ~hi] is uniform on [\[lo, hi)]. *)

val exponential : Prng.t -> mean:float -> float
(** [exponential g ~mean] is exponential with the given mean (inverse-CDF).
    Raises [Invalid_argument] if [mean <= 0]. *)

val pareto : Prng.t -> shape:float -> scale:float -> float
(** [pareto g ~shape ~scale] is Pareto(α=[shape], x_m=[scale]): values are
    [>= scale] with P(X > x) = (scale/x)^shape. Raises [Invalid_argument]
    unless [shape > 0] and [scale > 0]. *)

val pareto_with_mean : Prng.t -> shape:float -> mean:float -> float
(** [pareto_with_mean g ~shape ~mean] is a Pareto variate with shape [α] and
    scale chosen so the distribution's mean is [mean] (requires [shape > 1];
    the paper uses α = 10/9 and α = 1.5 with mean 30). *)

val geometric : Prng.t -> p:float -> int
(** [geometric g ~p] counts failures before the first success:
    P(X = k) = (1-p)^k · p for k = 0, 1, 2, … With [p = 0.5] the mean is 1,
    matching the paper's link-mutation magnitude. *)

val normal : Prng.t -> mean:float -> stddev:float -> float
(** [normal g ~mean ~stddev] is Gaussian (Box–Muller). *)

val poisson : Prng.t -> mean:float -> int
(** [poisson g ~mean] is Poisson-distributed (Knuth's method for small means,
    normal approximation above 60). *)

val bernoulli : Prng.t -> p:float -> bool
(** [bernoulli g ~p] is [true] with probability [p]. *)

val shuffle : Prng.t -> 'a array -> unit
(** [shuffle g a] permutes [a] in place uniformly (Fisher–Yates). *)

val permutation : Prng.t -> int -> int array
(** [permutation g n] is a uniform random permutation of [0..n-1]. *)

val sample_without_replacement : Prng.t -> k:int -> n:int -> int array
(** [sample_without_replacement g ~k ~n] draws [k] distinct indices from
    [0..n-1], in random order. Raises [Invalid_argument] if [k > n] or
    [k < 0]. *)

val choose_weighted : Prng.t -> float array -> int
(** [choose_weighted g w] draws index [i] with probability [w.(i) / Σ w].
    Raises [Invalid_argument] if weights are empty, negative, or all zero. *)
