type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

(* SplitMix64 finalizer: variant of MurmurHash3's 64-bit mix. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed =
  (* Mix the seed once so that small consecutive seeds give unrelated
     streams. *)
  { state = mix64 (Int64.of_int seed) }

let copy g = { state = g.state }

let next_state g =
  g.state <- Int64.add g.state golden_gamma;
  g.state

let bits64 g = mix64 (next_state g)

let split g = { state = bits64 g }

let split_at g i =
  (* Derive child state from current state and index without advancing. *)
  let s = Int64.add g.state (Int64.mul golden_gamma (Int64.of_int (i + 1))) in
  { state = mix64 (Int64.logxor (mix64 s) 0xD6E8FEB86659FD93L) }

let float g =
  (* Use the top 53 bits for a uniform double in [0,1). *)
  let bits = Int64.shift_right_logical (bits64 g) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let int g n =
  if n <= 0 then invalid_arg "Prng.int: bound must be positive";
  if n = 1 then 0
  else begin
    (* Rejection sampling on 62 bits to avoid modulo bias. *)
    let mask = 0x3FFFFFFFFFFFFFFFL in
    let bound = Int64.of_int n in
    let rec draw () =
      let r = Int64.logand (bits64 g) mask in
      let v = Int64.rem r bound in
      (* Reject the final partial block. *)
      if Int64.sub r v > Int64.sub (Int64.sub mask bound) 1L then draw ()
      else Int64.to_int v
    in
    draw ()
  end

let bool g = Int64.logand (bits64 g) 1L = 1L

let seed_of_string s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Int64.to_int (Int64.logand !h 0x3FFFFFFFFFFFFFFFL)
