(** Deterministic, splittable pseudo-random number generator.

    The generator is SplitMix64 (Steele, Lea & Flood, OOPSLA 2014): a 64-bit
    state advanced by a Weyl sequence and finalized by a mixing function. It
    is fast, has a period of 2^64, passes BigCrush, and — crucially for a
    synthesis tool whose outputs must be reproducible — supports {e splitting}
    into statistically independent child generators, so that every experiment
    in the benchmark harness can derive its own stream from a single seed. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] builds a generator from an integer seed. Two generators
    built from the same seed produce identical streams. *)

val copy : t -> t
(** [copy g] is an independent generator with the same current state. *)

val split : t -> t
(** [split g] advances [g] and returns a child generator whose stream is
    statistically independent of the remainder of [g]'s stream. *)

val split_at : t -> int -> t
(** [split_at g i] derives the [i]-th child deterministically {e without}
    advancing [g]: the same [(g, i)] always yields the same child. Useful for
    parallel or order-independent derivation of per-trial streams. *)

val bits64 : t -> int64
(** [bits64 g] is the next 64 uniformly random bits. *)

val float : t -> float
(** [float g] is uniform on [\[0, 1)] with 53 bits of precision. *)

val int : t -> int -> int
(** [int g n] is uniform on [\[0, n-1\]]. Raises [Invalid_argument] if
    [n <= 0]. Unbiased (rejection sampling). *)

val bool : t -> bool
(** [bool g] is a fair coin flip. *)

val seed_of_string : string -> int
(** [seed_of_string s] hashes [s] (FNV-1a) into a seed, so experiments can be
    keyed by name. *)
