lib/router_level/expand.ml: Array Cold_context Cold_graph Cold_net Cold_traffic Float Hashtbl List Option Template
