lib/router_level/expand.mli: Cold_graph Cold_net Template
