lib/router_level/router_network.ml: Array Cold_context Cold_geom Cold_net Cold_traffic Expand Float Template
