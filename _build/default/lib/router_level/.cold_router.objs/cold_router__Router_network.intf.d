lib/router_level/router_network.mli: Cold_net Expand Template
