lib/router_level/template.ml: List
