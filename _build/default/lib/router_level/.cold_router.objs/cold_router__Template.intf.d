lib/router_level/template.mli:
