module Graph = Cold_graph.Graph
module Network = Cold_net.Network
module Capacity = Cold_net.Capacity
module Gravity = Cold_traffic.Gravity
module Context = Cold_context.Context

type router = { pop : int; local : int; is_core : bool }

type t = {
  graph : Graph.t;
  routers : router array;
  pop_base : int array;
  templates : Template.t array;
  link_capacity : (int * int) -> float;
}

let expand ?(thresholds = Template.default_thresholds) (net : Network.t) =
  let pop_graph = net.Network.graph in
  let n = Graph.node_count pop_graph in
  let tm = net.Network.context.Context.tm in
  let total = Gravity.total tm in
  let templates =
    Array.init n (fun pop ->
        let share = if total <= 0.0 then 0.0 else Gravity.row_total tm pop /. total in
        Template.for_share thresholds share)
  in
  let pop_base = Array.make n 0 in
  let total_routers = ref 0 in
  Array.iteri
    (fun pop t ->
      pop_base.(pop) <- !total_routers;
      total_routers := !total_routers + Template.router_count t)
    templates;
  let routers = Array.make !total_routers { pop = 0; local = 0; is_core = false } in
  Array.iteri
    (fun pop t ->
      let cores = Template.core_indices t in
      for local = 0 to Template.router_count t - 1 do
        routers.(pop_base.(pop) + local) <-
          { pop; local; is_core = List.mem local cores }
      done)
    templates;
  let g = Graph.create !total_routers in
  (* Intra-PoP wiring. *)
  Array.iteri
    (fun pop t ->
      List.iter
        (fun (a, b) -> Graph.add_edge g (pop_base.(pop) + a) (pop_base.(pop) + b))
        (Template.internal_edges t))
    templates;
  (* Inter-PoP links: terminate on cores, alternating per PoP for spread. *)
  let next_core = Array.make n 0 in
  let capacities = Hashtbl.create (Graph.edge_count pop_graph * 2) in
  let core_of pop =
    let cores = Array.of_list (Template.core_indices templates.(pop)) in
    let c = cores.(next_core.(pop) mod Array.length cores) in
    next_core.(pop) <- next_core.(pop) + 1;
    pop_base.(pop) + c
  in
  Graph.iter_edges pop_graph (fun a b ->
      let ra = core_of a and rb = core_of b in
      Graph.add_edge g ra rb;
      let cap = Capacity.capacity net.Network.capacities a b in
      Hashtbl.replace capacities (min ra rb, max ra rb) cap);
  (* Intra-PoP capacity: the PoP's largest inter-PoP capacity. *)
  let pop_max_cap =
    Array.init n (fun pop ->
        Graph.fold_neighbors pop_graph pop
          (fun acc nb -> Float.max acc (Capacity.capacity net.Network.capacities pop nb))
          0.0)
  in
  Array.iteri
    (fun pop t ->
      List.iter
        (fun (a, b) ->
          let u = pop_base.(pop) + a and v = pop_base.(pop) + b in
          Hashtbl.replace capacities (min u v, max u v) pop_max_cap.(pop))
        (Template.internal_edges t))
    templates;
  let link_capacity (u, v) =
    Option.value ~default:0.0 (Hashtbl.find_opt capacities (min u v, max u v))
  in
  { graph = g; routers; pop_base; templates; link_capacity }

let router_count t = Array.length t.routers

let routers_of_pop t pop =
  if pop < 0 || pop >= Array.length t.pop_base then
    invalid_arg "Expand.routers_of_pop";
  let base = t.pop_base.(pop) in
  let count = Template.router_count t.templates.(pop) in
  List.init count (fun i -> base + i)
