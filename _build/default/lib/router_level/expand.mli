(** Router-level expansion of a PoP-level network.

    The second layer of COLD's layered design (§1: "the generation of the
    router-level network from the PoP level can be easily accomplished using
    ... structural methods"; §8 future work). Each PoP is expanded by a
    traffic-sized {!Template}; inter-PoP links terminate on core routers,
    alternating between cores for load spreading, and inherit the PoP-level
    link's capacity. *)

type router = {
  pop : int;  (** PoP this router belongs to. *)
  local : int;  (** Index within the PoP's template. *)
  is_core : bool;
}

type t = {
  graph : Cold_graph.Graph.t;  (** Router-level topology. *)
  routers : router array;  (** Indexed by router-level vertex id. *)
  pop_base : int array;  (** First router id of each PoP. *)
  templates : Template.t array;
  link_capacity : (int * int) -> float;
      (** Capacity of a router-level link; intra-PoP links get the PoP's
          largest incident inter-PoP capacity (internal links are
          over-provisioned — they are cheap, per §3). *)
}

val expand :
  ?thresholds:Template.thresholds -> Cold_net.Network.t -> t
(** [expand net] builds the router-level network. The router-level graph is
    connected whenever [net] is. *)

val router_count : t -> int

val routers_of_pop : t -> int -> int list
(** Router ids belonging to a PoP. *)
