module Point = Cold_geom.Point
module Context = Cold_context.Context
module Gravity = Cold_traffic.Gravity
module Network = Cold_net.Network

type t = {
  expansion : Expand.t;
  network : Network.t;
  pop_network : Network.t;
}

let build ?thresholds ?policy (pop_net : Network.t) =
  let expansion = Expand.expand ?thresholds pop_net in
  let pop_ctx = pop_net.Network.context in
  let pop_points = pop_ctx.Context.points in
  let pop_pops = Gravity.populations pop_ctx.Context.tm in
  let n_routers = Expand.router_count expansion in
  (* Offset scale: small against typical link lengths so routing decisions
     stay PoP-driven; non-zero so stretch/length stay well-defined. *)
  let diameter = Cold_geom.Distmat.max_distance pop_ctx.Context.dist in
  let eps = if diameter > 0.0 then 1e-4 *. diameter else 1e-6 in
  let points =
    Array.init n_routers (fun r ->
        let router = expansion.Expand.routers.(r) in
        let base = pop_points.(router.Expand.pop) in
        (* Deterministic placement on a tiny circle around the PoP. *)
        let angle =
          2.0 *. Float.pi *. float_of_int router.Expand.local
          /. float_of_int
               (Template.router_count expansion.Expand.templates.(router.Expand.pop))
        in
        Point.make
          (base.Point.x +. (eps *. cos angle))
          (base.Point.y +. (eps *. sin angle)))
  in
  let populations =
    Array.init n_routers (fun r ->
        let router = expansion.Expand.routers.(r) in
        let share =
          Template.router_count expansion.Expand.templates.(router.Expand.pop)
        in
        pop_pops.(router.Expand.pop) /. float_of_int share)
  in
  let ctx =
    Context.of_points_and_populations
      ~traffic_scale:pop_ctx.Context.spec.Context.traffic_scale points populations
  in
  let network = Network.build ?policy ctx expansion.Expand.graph in
  { expansion; network; pop_network = pop_net }

let pop_of_router t r = t.expansion.Expand.routers.(r).Expand.pop

let inter_pop_demand t a b =
  let tm = t.network.Network.context.Context.tm in
  let n = Expand.router_count t.expansion in
  let total = ref 0.0 in
  for r1 = 0 to n - 1 do
    for r2 = 0 to n - 1 do
      if pop_of_router t r1 = a && pop_of_router t r2 = b then
        total := !total +. Gravity.demand tm r1 r2
    done
  done;
  !total
