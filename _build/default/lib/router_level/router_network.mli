(** Router-level {e networks}: the template expansion of {!Expand} promoted
    to a routable {!Cold_net.Network.t}.

    Each PoP's population is split evenly across its routers and each router
    is placed at its PoP's location (with a tiny deterministic offset so
    intra-PoP links have near-zero — but not zero — length). Gravity over
    the split populations then reproduces every inter-PoP demand exactly
    (shares per PoP sum to 1) while adding a small intra-PoP component —
    the metro traffic a real PoP carries between its own routers. The
    resulting context routes with the ordinary machinery, so capacities,
    utilization, failure analysis ({!Cold_net.Resilience}) and stretch all
    work at the router level unchanged — the pay-off of the paper's layered
    design. *)

type t = {
  expansion : Expand.t;
  network : Cold_net.Network.t;  (** Router-level network (routed, capacitied). *)
  pop_network : Cold_net.Network.t;  (** The PoP-level design it came from. *)
}

val build :
  ?thresholds:Template.thresholds ->
  ?policy:Cold_net.Capacity.policy ->
  Cold_net.Network.t ->
  t
(** [build pop_net] expands and routes. Raises [Routing.Disconnected] never —
    expansion preserves connectivity of connected inputs. *)

val pop_of_router : t -> int -> int
(** Which PoP a router-level vertex belongs to. *)

val inter_pop_demand : t -> int -> int -> float
(** [inter_pop_demand t a b] is the summed router-level demand between PoPs
    [a] and [b] — equal to the PoP-level demand (a conservation law the test
    suite checks). *)
