type t = Single | Dual | Full of { access : int }

type thresholds = {
  dual_share : float;
  full_share : float;
  access_per_share : float;
}

let default_thresholds =
  { dual_share = 0.02; full_share = 0.06; access_per_share = 1.5 }

let for_share th share =
  if share < 0.0 || share > 1.0 then invalid_arg "Template.for_share";
  if share < th.dual_share then Single
  else if share < th.full_share then Dual
  else begin
    let excess_percent = (share -. th.full_share) *. 100.0 in
    let access = 1 + int_of_float (th.access_per_share *. excess_percent) in
    Full { access = min access 16 }
  end

let router_count = function
  | Single -> 1
  | Dual -> 2
  | Full { access } -> 2 + access

let internal_edges = function
  | Single -> []
  | Dual -> [ (0, 1) ]
  | Full { access } ->
    (0, 1)
    :: List.concat
         (List.init access (fun i -> [ (0, 2 + i); (1, 2 + i) ]))

let core_indices = function
  | Single -> [ 0 ]
  | Dual | Full _ -> [ 0; 1 ]
