(** PoP-internal design templates.

    The paper's layered-design premise (§1, §3): "the internal design of PoPs
    is almost completely determined by simple templates, since the cost of
    internal links is much lower than inter-PoP links". A template is chosen
    per PoP from the traffic volume it originates — the same cue a network
    engineer uses to size a PoP — and prescribes the routers inside the PoP
    and their internal wiring. *)

type t =
  | Single  (** One router: a small leaf PoP. *)
  | Dual  (** Two cross-linked core routers: a medium, redundant PoP. *)
  | Full of { access : int }
      (** Two core routers plus [access] access routers, each dual-homed to
          both cores (the classic core/access pattern of ISP design
          templates). *)

type thresholds = {
  dual_share : float;
      (** A PoP originating at least this fraction of total traffic gets
          [Dual]; default 0.02. *)
  full_share : float;  (** … at least this gets [Full]; default 0.06. *)
  access_per_share : float;
      (** Access routers per 1 % of traffic share above [full_share];
          default 1.5. *)
}

val default_thresholds : thresholds

val for_share : thresholds -> float -> t
(** [for_share th share] selects the template for a PoP originating [share]
    (∈ [0, 1]) of the network's traffic. *)

val router_count : t -> int

val internal_edges : t -> (int * int) list
(** Intra-PoP links on local router indices [0 .. router_count-1]; cores are
    indices 0 (and 1 when present). *)

val core_indices : t -> int list
(** Local indices of routers that may terminate inter-PoP links. *)
