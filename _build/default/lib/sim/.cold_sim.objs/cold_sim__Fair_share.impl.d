lib/sim/fair_share.ml: Float Hashtbl List Option
