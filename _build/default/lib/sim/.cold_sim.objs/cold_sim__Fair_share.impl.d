lib/sim/fair_share.ml: Float Hashtbl Int List Option
