lib/sim/fair_share.mli:
