lib/sim/flow_sim.ml: Array Cold_context Cold_graph Cold_net Cold_prng Cold_traffic Fair_share Float Hashtbl List
