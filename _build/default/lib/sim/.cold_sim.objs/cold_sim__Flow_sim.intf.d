lib/sim/flow_sim.mli: Cold_net Cold_prng
