(** Max–min fair rate allocation (water-filling).

    Given flows with fixed routes and link capacities, assign each flow the
    max–min fair rate: repeatedly find the most-congested link, freeze its
    flows at the equal share of its remaining capacity, remove them, and
    continue. This is the classical fluid model of TCP-like bandwidth
    sharing and the allocation rule inside {!Flow_sim}. *)

type flow = {
  id : int;
  links : (int * int) list;  (** Links traversed, [(u, v)] with [u < v]. *)
}

val allocate :
  capacity:(int * int -> float) -> flow list -> (int * float) list
(** [allocate ~capacity flows] returns [(id, rate)] for every flow, in
    ascending id order. Raises [Invalid_argument] on a flow with an empty
    route, a non-positive-capacity link, or duplicate ids. Flows whose
    routes avoid each other simply get their bottleneck capacity. *)

val is_max_min :
  capacity:(int * int -> float) -> flow list -> (int * float) list -> bool
(** [is_max_min ~capacity flows rates] checks the defining property: every
    flow crosses at least one saturated link on which its rate is maximal
    (within tolerance). A test oracle. *)
