(** Flow-level network simulation over a synthesized network.

    The reason topology synthesis exists (§1: topologies are "used in
    network simulation and emulation in order to test new networking
    algorithms and protocols"). This is the classical fluid model: flows
    arrive as a Poisson process with pair probabilities proportional to the
    context's traffic matrix, carry exponentially-distributed volumes, follow
    the network's routed paths, and share link capacity max–min fairly
    ({!Fair_share}); the event loop advances between arrivals and the next
    flow completion under the current rates.

    [load] scales offered traffic relative to the network's provisioned
    capacity: the default capacity policy over-provisions by 2×, so
    [load = 1.0] offers exactly the traffic the network was designed for and
    the system is stable. Push [load] beyond the over-provisioning factor
    and flows start piling up — visible as exploding completion times. *)

type config = {
  load : float;  (** Offered traffic as a multiple of the design traffic. *)
  mean_flow_size : float;  (** Mean volume per flow (same unit as demand·time). *)
  flow_limit : int;  (** Stop after this many completed flows. *)
  warmup : int;  (** Completions discarded before statistics start. *)
}

type stats = {
  completed : int;
  mean_fct : float;  (** Mean flow completion time (post-warmup). *)
  p95_fct : float;
  mean_throughput : float;  (** Mean per-flow size / FCT. *)
  peak_active : int;  (** Largest number of concurrent flows observed. *)
  sim_time : float;  (** Simulated time span. *)
}

val default_config : config
(** load 1.0, mean size 100, 500 flows after 50 warm-up. *)

val run : config -> Cold_net.Network.t -> Cold_prng.Prng.t -> stats
(** [run config net rng] simulates and summarizes. Raises [Invalid_argument]
    on non-positive load/size/limits or a network with no traffic. *)
