lib/stats/bootstrap.ml: Array Cold_prng Descriptive Format
