lib/stats/bootstrap.mli: Cold_prng Format
