lib/stats/descriptive.mli:
