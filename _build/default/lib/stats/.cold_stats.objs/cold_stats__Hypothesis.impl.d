lib/stats/hypothesis.ml: Array Float
