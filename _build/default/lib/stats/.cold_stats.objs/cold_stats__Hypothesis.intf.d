lib/stats/hypothesis.mli:
