lib/stats/regression.ml: Array Float
