lib/stats/regression.mli:
