module Prng = Cold_prng.Prng

type interval = { lo : float; hi : float; point : float }

let confidence_interval ?(replicates = 1000) ?(level = 0.95) ~statistic g xs =
  if Array.length xs = 0 then invalid_arg "Bootstrap: empty sample";
  if level <= 0.0 || level >= 1.0 then invalid_arg "Bootstrap: level out of range";
  if replicates < 1 then invalid_arg "Bootstrap: replicates must be positive";
  let n = Array.length xs in
  let resample = Array.make n 0.0 in
  let stats =
    Array.init replicates (fun _ ->
        for i = 0 to n - 1 do
          resample.(i) <- xs.(Prng.int g n)
        done;
        statistic resample)
  in
  let alpha = (1.0 -. level) /. 2.0 in
  {
    lo = Descriptive.quantile stats alpha;
    hi = Descriptive.quantile stats (1.0 -. alpha);
    point = statistic xs;
  }

let mean_ci ?replicates ?level g xs =
  confidence_interval ?replicates ?level ~statistic:Descriptive.mean g xs

let pp fmt i = Format.fprintf fmt "%.4f [%.4f, %.4f]" i.point i.lo i.hi
