(** Bootstrap confidence intervals.

    The paper's figures carry "95 % bootstrap confidence intervals for the
    mean" (Fig 3) and 95 % confidence bars over 200 simulations per point
    (Figs 5–9). This module reproduces that: non-parametric percentile
    bootstrap of an arbitrary statistic. *)

type interval = { lo : float; hi : float; point : float }
(** [point] is the statistic on the original sample. *)

val confidence_interval :
  ?replicates:int ->
  ?level:float ->
  statistic:(float array -> float) ->
  Cold_prng.Prng.t ->
  float array ->
  interval
(** [confidence_interval ~replicates ~level ~statistic g xs] resamples [xs]
    with replacement [replicates] times (default 1000) and returns the
    percentile interval at confidence [level] (default 0.95). Raises
    [Invalid_argument] on an empty sample or a level outside (0, 1). *)

val mean_ci :
  ?replicates:int -> ?level:float -> Cold_prng.Prng.t -> float array -> interval
(** Bootstrap CI for the mean — the paper's error bars. *)

val pp : Format.formatter -> interval -> unit
(** Prints as [point [lo, hi]]. *)
