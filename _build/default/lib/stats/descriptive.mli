(** Descriptive statistics over float samples. Used throughout the benchmark
    harness to summarize per-trial topology statistics. All functions raise
    [Invalid_argument] on empty input unless stated otherwise. *)

val mean : float array -> float

val variance : float array -> float
(** Unbiased (n-1) sample variance; 0 for a single observation. *)

val stddev : float array -> float

val coefficient_of_variation : float array -> float
(** Population-std / mean (matching the paper's CVND convention); 0 when the
    mean is 0. *)

val min_value : float array -> float

val max_value : float array -> float

val quantile : float array -> float -> float
(** [quantile xs q] with [q ∈ [0,1]], linear interpolation between order
    statistics (type-7). Does not mutate the input. *)

val median : float array -> float

val sum : float array -> float
(** 0 on empty input. *)
