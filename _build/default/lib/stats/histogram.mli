(** Fixed-width histograms and empirical CDFs, for distribution-shaped
    figures (Fig 8a's CVND distribution). *)

type t = {
  lo : float;
  hi : float;
  counts : int array;  (** [counts.(i)] covers [lo + i·w, lo + (i+1)·w). *)
  total : int;
}

val create : lo:float -> hi:float -> bins:int -> float array -> t
(** Values outside [lo, hi] clamp into the first/last bin. Raises
    [Invalid_argument] if [bins < 1] or [hi <= lo]. *)

val bin_width : t -> float

val fraction : t -> int -> float
(** Fraction of the sample in bin [i]. *)

val cdf : float array -> (float -> float)
(** [cdf xs] is the empirical CDF: [cdf xs x] = fraction of values <= x. *)

val fraction_above : float array -> float -> float
(** [fraction_above xs t] = fraction of values strictly greater than [t]
    (the paper: "about 15 % of the networks have a CVND over 1"). *)

val pp_ascii : ?width:int -> Format.formatter -> t -> unit
(** Horizontal bar rendering for terminal output. *)
