type result = { u_statistic : float; z_score : float; p_value : float }

(* Standard normal CDF via the complementary error function (Abramowitz &
   Stegun 7.1.26 polynomial, |error| < 1.5e-7). *)
let normal_cdf x =
  let t = 1.0 /. (1.0 +. (0.3275911 *. Float.abs x /. sqrt 2.0)) in
  let poly =
    t
    *. (0.254829592
       +. (t *. (-0.284496736 +. (t *. (1.421413741 +. (t *. (-1.453152027 +. (t *. 1.061405429))))))))
  in
  let erf = 1.0 -. (poly *. exp (-.(x *. x /. 2.0))) in
  if x >= 0.0 then 0.5 *. (1.0 +. erf) else 0.5 *. (1.0 -. erf)

let mann_whitney_u xs ys =
  let n1 = Array.length xs and n2 = Array.length ys in
  if n1 = 0 || n2 = 0 then invalid_arg "Hypothesis.mann_whitney_u: empty sample";
  (* Pool, sort, assign mid-ranks to ties. *)
  let pooled =
    Array.append (Array.map (fun x -> (x, true)) xs) (Array.map (fun y -> (y, false)) ys)
  in
  Array.sort (fun (a, _) (b, _) -> Float.compare a b) pooled;
  let n = n1 + n2 in
  let ranks = Array.make n 0.0 in
  let tie_correction = ref 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && fst pooled.(!j + 1) = fst pooled.(!i) do
      incr j
    done;
    (* Elements i..j are tied: mid-rank. *)
    let mid = float_of_int (!i + !j + 2) /. 2.0 in
    for k = !i to !j do
      ranks.(k) <- mid
    done;
    let t = float_of_int (!j - !i + 1) in
    tie_correction := !tie_correction +. ((t *. t *. t) -. t);
    i := !j + 1
  done;
  let r1 = ref 0.0 in
  Array.iteri (fun k (_, is_x) -> if is_x then r1 := !r1 +. ranks.(k)) pooled;
  let fn1 = float_of_int n1 and fn2 = float_of_int n2 and fn = float_of_int n in
  let u1 = !r1 -. (fn1 *. (fn1 +. 1.0) /. 2.0) in
  let mean_u = fn1 *. fn2 /. 2.0 in
  let var_u =
    fn1 *. fn2 /. 12.0
    *. ((fn +. 1.0) -. (!tie_correction /. (fn *. (fn -. 1.0))))
  in
  if var_u <= 0.0 then
    invalid_arg "Hypothesis.mann_whitney_u: pooled sample is constant";
  (* Continuity correction towards the mean. *)
  let delta = u1 -. mean_u in
  let corrected =
    if delta > 0.5 then delta -. 0.5 else if delta < -0.5 then delta +. 0.5 else 0.0
  in
  let z = corrected /. sqrt var_u in
  let p = 2.0 *. (1.0 -. normal_cdf (Float.abs z)) in
  { u_statistic = u1; z_score = z; p_value = Float.min 1.0 p }

let significant ?(alpha = 0.05) r = r.p_value < alpha
