(** Non-parametric hypothesis testing for ensemble comparisons.

    Simulation conclusions of the form "design A strands less traffic than
    design B" need more than two means — topology statistics are skewed and
    ensembles are small, so the Mann–Whitney U test (rank-based, no
    normality assumption) is the appropriate tool. Normal approximation with
    tie correction; accurate for samples of ≥ 8, which ensemble studies
    easily provide. *)

type result = {
  u_statistic : float;  (** U for the first sample. *)
  z_score : float;  (** Standardized (tie-corrected); sign: negative when the
                        first sample ranks lower. *)
  p_value : float;  (** Two-sided. *)
}

val mann_whitney_u : float array -> float array -> result
(** [mann_whitney_u xs ys] tests H0: the two samples come from the same
    distribution. Raises [Invalid_argument] if either sample is empty or the
    pooled values are all identical. *)

val significant : ?alpha:float -> result -> bool
(** [significant r] is [p_value < alpha] (default 0.05). *)
