(** Least-squares line fitting, including log–log power-law fits.

    Fig 4 claims GA runtime grows as ~n³; we verify by fitting
    [time = c·n^e] via ordinary least squares on (log n, log time) and
    checking the exponent. *)

type fit = { slope : float; intercept : float; r_squared : float }

val linear : (float * float) array -> fit
(** [linear points] fits y = slope·x + intercept. Requires >= 2 points with
    non-zero x-variance ([Invalid_argument] otherwise). *)

val power_law : (float * float) array -> exponent:float ref -> coefficient:float ref -> float
(** [power_law points ~exponent ~coefficient] fits y = coefficient·x^exponent
    by log–log least squares (all coordinates must be positive); sets the two
    refs and returns R² of the log-space fit. *)
