lib/traffic/gravity.ml: Array
