lib/traffic/gravity.mli:
