lib/traffic/population.ml: Array Cold_prng
