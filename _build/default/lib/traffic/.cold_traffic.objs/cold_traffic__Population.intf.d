lib/traffic/population.mli: Cold_prng
