type t = { pops : float array; scale : float }

let of_populations ?(scale = 1.0) pops =
  if scale < 0.0 then invalid_arg "Gravity.of_populations: negative scale";
  Array.iter
    (fun p -> if p < 0.0 then invalid_arg "Gravity.of_populations: negative population")
    pops;
  { pops = Array.copy pops; scale }

let size tm = Array.length tm.pops

let demand tm s d =
  let n = size tm in
  if s < 0 || d < 0 || s >= n || d >= n then invalid_arg "Gravity.demand";
  if s = d then 0.0 else tm.scale *. tm.pops.(s) *. tm.pops.(d)

let pair_demand tm u v = demand tm u v +. demand tm v u

let total tm =
  let sum = Array.fold_left ( +. ) 0.0 tm.pops in
  let sum_sq = Array.fold_left (fun acc p -> acc +. (p *. p)) 0.0 tm.pops in
  tm.scale *. ((sum *. sum) -. sum_sq)

let row_total tm s =
  let sum = Array.fold_left ( +. ) 0.0 tm.pops in
  tm.scale *. tm.pops.(s) *. (sum -. tm.pops.(s))

let populations tm = Array.copy tm.pops

let scale_total tm ~target =
  if target < 0.0 then invalid_arg "Gravity.scale_total";
  let current = total tm in
  if current <= 0.0 then tm
  else { tm with scale = tm.scale *. target /. current }
