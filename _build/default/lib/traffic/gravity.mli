(** Gravity-model traffic matrices (§3.1).

    Demand from PoP [s] to PoP [d] is proportional to the product of their
    populations: [t(s,d) = scale · pop(s) · pop(d)] for [s ≠ d], and
    [t(s,s) = 0]. This is the maximum-entropy traffic model given per-PoP
    totals and matches measured traffic-matrix distributions well. The
    matrix is directed (and symmetric by construction since populations are
    scalars); routing sums both directions onto each undirected link. *)

type t

val of_populations : ?scale:float -> float array -> t
(** [of_populations ~scale pops] builds the traffic matrix. Default [scale]
    is 1 — with exponential populations of mean 30 this reproduces the
    paper's k2 operating range (see DESIGN.md). Raises [Invalid_argument] on
    negative populations or scale. *)

val size : t -> int

val demand : t -> int -> int -> float
(** [demand tm s d]; diagonal entries are 0. *)

val pair_demand : t -> int -> int -> float
(** [pair_demand tm u v] = demand u→v + demand v→u: the undirected load if
    the pair were directly linked. *)

val total : t -> float
(** Sum of all demands. *)

val row_total : t -> int -> float
(** Total traffic originating at a PoP. *)

val populations : t -> float array
(** The populations used to build the matrix (copy). *)

val scale_total : t -> target:float -> t
(** [scale_total tm ~target] rescales so that {!total} equals [target] —
    used for network-growth scenarios where traffic volume grows
    independently of PoP count. *)
