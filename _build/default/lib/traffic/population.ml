module Dist = Cold_prng.Dist

type model =
  | Exponential of { mean : float }
  | Pareto of { shape : float; mean : float }
  | Log_normal of { mean : float; sigma : float }
  | Capital of { mean : float; dominance : float }
  | Constant of float

let default = Exponential { mean = 30.0 }

let pareto_heavy = Pareto { shape = 10.0 /. 9.0; mean = 30.0 }

let pareto_moderate = Pareto { shape = 1.5; mean = 30.0 }

let draw model g =
  match model with
  | Exponential { mean } -> Dist.exponential g ~mean
  | Pareto { shape; mean } -> Dist.pareto_with_mean g ~shape ~mean
  | Log_normal { mean; sigma } ->
    if mean <= 0.0 then invalid_arg "Population: log-normal mean must be positive";
    (* E[exp(N(mu, sigma))] = exp(mu + sigma^2/2) = mean. *)
    let mu = log mean -. (sigma *. sigma /. 2.0) in
    exp (Dist.normal g ~mean:mu ~stddev:sigma)
  | Capital _ -> invalid_arg "Population.draw: Capital is drawn jointly"
  | Constant c -> c

let generate model ~n g =
  if n < 0 then invalid_arg "Population.generate";
  match model with
  | Capital { mean; dominance } ->
    if n = 0 then [||]
    else begin
      if dominance < 0.0 || dominance >= float_of_int n then
        invalid_arg "Population.generate: dominance must be in [0, n)";
      (* Residual mean keeps the overall mean at [mean]. *)
      let rest_mean =
        if n = 1 then mean
        else mean *. (float_of_int n -. dominance) /. float_of_int (n - 1)
      in
      Array.init n (fun i ->
          if i = 0 then dominance *. mean
          else Dist.exponential g ~mean:rest_mean)
    end
  | _ -> Array.init n (fun _ -> draw model g)

let mean_of = function
  | Exponential { mean } -> mean
  | Pareto { mean; _ } -> mean
  | Log_normal { mean; _ } -> mean
  | Capital { mean; _ } -> mean
  | Constant c -> c
