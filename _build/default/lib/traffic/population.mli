(** PoP population models (§3.1).

    The gravity traffic model assigns each PoP a random "population"; traffic
    between two PoPs is proportional to the product of their populations. The
    paper's default is i.i.d. exponential populations with mean 30; Pareto
    populations with shape 10/9 and 1.5 (same mean) are used in the §7
    heavy-tail ablation. *)

type model =
  | Exponential of { mean : float }  (** The paper's default, mean 30. *)
  | Pareto of { shape : float; mean : float }
      (** Heavy-tailed; the paper uses shape 1.5 and 10/9 with mean 30.
          Requires shape > 1 for the mean to exist. *)
  | Log_normal of { mean : float; sigma : float }
      (** Moderately skewed; [sigma] is the log-space standard deviation and
          [mean] the (linear-space) mean. Sits between exponential and
          Pareto in tail weight — a common fit for city populations. *)
  | Capital of { mean : float; dominance : float }
      (** One "capital" PoP (index 0) carries [dominance] times the mean;
          others are i.i.d. exponential adjusted so the overall mean stays
          [mean]. Models countries with a single dominant metro. Requires
          [dominance < n] at generation time. *)
  | Constant of float  (** Degenerate model for tests and uniform traffic. *)

val default : model
(** [Exponential { mean = 30.0 }], the paper's default. *)

val pareto_heavy : model
(** Shape 10/9 (the paper's "infinite variance case"), mean 30. *)

val pareto_moderate : model
(** Shape 1.5, mean 30. *)

val generate : model -> n:int -> Cold_prng.Prng.t -> float array
(** [generate model ~n g] draws [n] i.i.d. populations. *)

val mean_of : model -> float
