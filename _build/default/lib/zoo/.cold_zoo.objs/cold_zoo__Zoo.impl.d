lib/zoo/zoo.ml: Array Cold_graph Cold_metrics Cold_prng List Printf
