lib/zoo/zoo.mli: Cold_graph
