module Graph = Cold_graph.Graph
module Builders = Cold_graph.Builders
module Prng = Cold_prng.Prng
module Dist = Cold_prng.Dist
module Degree = Cold_metrics.Degree
module Clustering = Cold_metrics.Clustering

type entry = { name : string; graph : Graph.t }

(* Abilene (Internet2), 11 PoPs:
   0 Seattle, 1 Sunnyvale, 2 Los Angeles, 3 Denver, 4 Kansas City, 5 Houston,
   6 Chicago, 7 Indianapolis, 8 Atlanta, 9 Washington DC, 10 New York. *)
let abilene () =
  {
    name = "Abilene";
    graph =
      Graph.of_edges 11
        [
          (0, 1); (0, 3); (1, 2); (1, 3); (2, 5); (3, 4); (4, 5); (4, 7);
          (5, 8); (6, 7); (6, 10); (7, 8); (8, 9); (9, 10);
        ];
  }

(* NSFNET T1 backbone (1991), 14 PoPs, 21 links — the canonical 14-node
   topology of the optical-networking literature:
   0 WA, 1 CA1 (Palo Alto), 2 CA2 (San Diego), 3 UT, 4 CO, 5 TX, 6 NE, 7 IL,
   8 MI, 9 GA, 10 PA, 11 NY, 12 NJ, 13 MD. *)
let nsfnet () =
  {
    name = "NSFNET-T1";
    graph =
      Graph.of_edges 14
        [
          (0, 1); (0, 2); (0, 7); (1, 2); (1, 3); (2, 5); (3, 4); (3, 10);
          (4, 5); (4, 6); (5, 9); (5, 13); (6, 7); (7, 8); (8, 9); (8, 11);
          (9, 12); (10, 11); (10, 13); (11, 12); (12, 13);
        ];
  }

let stylized_hub_spoke () =
  let g = Graph.create 20 in
  (* Two linked hubs; spokes alternate between them. *)
  Graph.add_edge g 0 1;
  for v = 2 to 19 do
    Graph.add_edge g (v mod 2) v
  done;
  { name = "stylized-hub-spoke"; graph = g }

let stylized_ring_mesh () =
  let g = Graph.create 20 in
  (* 8-PoP core ring. *)
  for v = 0 to 7 do
    Graph.add_edge g v ((v + 1) mod 8)
  done;
  (* One chord for redundancy. *)
  Graph.add_edge g 0 4;
  (* 12 leaves spread around the ring. *)
  for leaf = 8 to 19 do
    Graph.add_edge g (leaf mod 8) leaf
  done;
  { name = "stylized-ring-mesh"; graph = g }

let reference () =
  [ abilene (); nsfnet (); stylized_hub_spoke (); stylized_ring_mesh () ]

(* --- Synthetic zoo ------------------------------------------------------- *)

(* Family weights calibrated to the Zoo's published shape: ~15 % pure
   hub-and-spoke (CVND > 1), the rest a mix of trees, rings with tails,
   sparse meshes and lattices; a small dense tail carries the top decile of
   clustering. *)
type family =
  | F_star
  | F_double_star
  | F_tree
  | F_ring_tails
  | F_mesh
  | F_ladder
  | F_dense

let families =
  [|
    (F_star, 0.09);
    (F_double_star, 0.06);
    (F_tree, 0.22);
    (F_ring_tails, 0.28);
    (F_mesh, 0.22);
    (F_ladder, 0.05);
    (F_dense, 0.08);
  |]

let size rng = 5 + Prng.int rng 56 (* 5..60 *)

let connected_gnm ~n ~m rng =
  (* Random tree backbone plus random extra links: connected by
     construction, sparse-mesh shaped. *)
  let g = Builders.random_tree n rng in
  let extra = max 0 (m - (n - 1)) in
  let added = ref 0 in
  let attempts = ref 0 in
  while !added < extra && !attempts < 50 * extra do
    incr attempts;
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v && not (Graph.mem_edge g u v) then begin
      Graph.add_edge g u v;
      incr added
    end
  done;
  g

let ring_with_tails rng =
  let core = 4 + Prng.int rng 9 (* 4..12 *) in
  let tails = 2 + Prng.int rng 20 in
  let n = core + tails in
  let g = Graph.create n in
  for v = 0 to core - 1 do
    Graph.add_edge g v ((v + 1) mod core)
  done;
  if core >= 6 && Prng.bool rng then Graph.add_edge g 0 (core / 2);
  for leaf = core to n - 1 do
    Graph.add_edge g (Prng.int rng core) leaf
  done;
  g

let build family rng =
  match family with
  | F_star -> Builders.star (size rng)
  | F_double_star -> Builders.double_star (size rng)
  | F_tree -> Builders.random_tree (size rng) rng
  | F_ring_tails -> ring_with_tails rng
  | F_mesh ->
    let n = size rng in
    let m = int_of_float (float_of_int n *. Dist.uniform rng ~lo:1.2 ~hi:2.0) in
    connected_gnm ~n ~m rng
  | F_ladder -> Builders.ladder (3 + Prng.int rng 10)
  | F_dense ->
    (* Small, clustered: the Zoo's few high-GCC networks are tiny. *)
    let n = 5 + Prng.int rng 5 in
    let m = int_of_float (float_of_int (n * (n - 1) / 2) *. Dist.uniform rng ~lo:0.5 ~hi:0.8) in
    connected_gnm ~n ~m rng

let family_name = function
  | F_star -> "star"
  | F_double_star -> "double-star"
  | F_tree -> "tree"
  | F_ring_tails -> "ring-tails"
  | F_mesh -> "mesh"
  | F_ladder -> "ladder"
  | F_dense -> "dense"

let synthetic ?(count = 250) ~seed () =
  if count < 0 then invalid_arg "Zoo.synthetic";
  let root = Prng.create seed in
  let weights = Array.map snd families in
  List.init count (fun i ->
      let rng = Prng.split_at root i in
      let (family, _) = families.(Dist.choose_weighted rng weights) in
      let graph = build family rng in
      { name = Printf.sprintf "%s-%03d" (family_name family) i; graph })

let cvnd_values entries =
  Array.of_list
    (List.map (fun e -> Degree.coefficient_of_variation e.graph) entries)

let gcc_values entries =
  Array.of_list (List.map (fun e -> Clustering.global e.graph) entries)
