(** A stand-in for the Internet Topology Zoo (Knight et al., the paper's
    [16]).

    The paper calibrates COLD's tunable range against ~250 operator-drawn
    PoP-level maps; that dataset is not available in this sealed environment.
    This module provides (a) four embedded reference topologies — two
    well-known public research backbones (Abilene, NSFNET-T1) and two
    stylized operator shapes — used as unit-test ground truth, and (b) a
    {e synthetic zoo}: an ensemble of networks drawn from the structural
    families the Zoo actually contains (stars, double-hubs, rings with leaf
    tails, trees, ladders/grids, sparse meshes), with the family mix
    calibrated to the published summary statistics the paper cites:
    ≈15 % of networks with CVND > 1 (Fig 8a) and ≈90 % of global clustering
    coefficients below 0.25 (§6). See DESIGN.md, substitution 1. *)

type entry = { name : string; graph : Cold_graph.Graph.t }

val abilene : unit -> entry
(** The Internet2/Abilene backbone: 11 PoPs, 14 links. *)

val nsfnet : unit -> entry
(** The NSFNET T1 backbone (1991): 14 PoPs, 21 links. *)

val stylized_hub_spoke : unit -> entry
(** A national hub-and-spoke ISP: 2 hub cities, 18 spoke PoPs — CVND ≈ 2,
    the high end of Fig 8a. *)

val stylized_ring_mesh : unit -> entry
(** A regional ring-core ISP: 8-PoP core ring with 12 leaf tails. *)

val reference : unit -> entry list
(** All four embedded topologies. *)

val synthetic : ?count:int -> seed:int -> unit -> entry list
(** [synthetic ~seed ()] draws a zoo of [count] (default 250) networks across
    the structural families, sizes 5–60. Deterministic in [seed]. All
    networks are connected. *)

val cvnd_values : entry list -> float array
(** CVND of each entry — the data behind Fig 8a. *)

val gcc_values : entry list -> float array
