test/test_baselines.ml: Alcotest Array Cold_baselines Cold_geom Cold_graph Cold_metrics Cold_prng Float Format Hashtbl List Option Printf String
