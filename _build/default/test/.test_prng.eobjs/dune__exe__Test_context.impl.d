test/test_context.ml: Alcotest Array Cold_context Cold_geom Cold_prng Cold_traffic
