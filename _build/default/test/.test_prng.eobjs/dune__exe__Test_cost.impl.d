test/test_cost.ml: Alcotest Cold Cold_context Cold_geom Cold_graph Cold_metrics Cold_prng Float QCheck QCheck_alcotest
