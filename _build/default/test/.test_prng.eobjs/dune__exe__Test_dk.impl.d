test/test_dk.ml: Alcotest Array Cold_dk Cold_graph Cold_metrics Cold_prng List Printf QCheck QCheck_alcotest
