test/test_dk.mli:
