test/test_ga.ml: Alcotest Array Cold Cold_context Cold_graph Cold_metrics Cold_prng Float List Printf QCheck QCheck_alcotest
