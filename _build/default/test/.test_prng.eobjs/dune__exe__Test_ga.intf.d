test/test_ga.mli:
