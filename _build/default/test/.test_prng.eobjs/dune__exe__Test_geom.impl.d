test/test_geom.ml: Alcotest Array Cold_geom Cold_prng Float Format Printf QCheck QCheck_alcotest
