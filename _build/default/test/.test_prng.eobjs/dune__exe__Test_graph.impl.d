test/test_graph.ml: Alcotest Array Cold_graph Cold_prng Float List QCheck QCheck_alcotest
