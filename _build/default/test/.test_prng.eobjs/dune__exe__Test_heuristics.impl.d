test/test_heuristics.ml: Alcotest Cold Cold_context Cold_graph Cold_metrics Cold_prng Float List Printf
