test/test_lint.ml: Alcotest Cold_lint List String
