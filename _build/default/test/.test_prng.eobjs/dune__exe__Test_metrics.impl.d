test/test_metrics.ml: Alcotest Array Cold_graph Cold_metrics Float List QCheck QCheck_alcotest String
