test/test_net.ml: Alcotest Array Cold_context Cold_geom Cold_graph Cold_net Cold_prng Cold_traffic Float List Printf QCheck QCheck_alcotest
