test/test_netio.ml: Alcotest Cold_context Cold_geom Cold_graph Cold_net Cold_netio Cold_prng Filename List Option QCheck QCheck_alcotest String Sys
