test/test_netio.mli:
