test/test_optimizers.ml: Alcotest Cold Cold_context Cold_graph Cold_net Cold_prng Float List Printf
