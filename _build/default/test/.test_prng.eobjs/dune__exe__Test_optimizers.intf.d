test/test_optimizers.mli:
