test/test_par.ml: Alcotest Array Cold Cold_context Cold_graph Cold_net Cold_par Cold_prng Float Fun List Printf
