test/test_prng.ml: Alcotest Array Cold_prng Float Fun Hashtbl List Printf QCheck QCheck_alcotest
