test/test_resilience.ml: Alcotest Cold Cold_context Cold_geom Cold_graph Cold_net List
