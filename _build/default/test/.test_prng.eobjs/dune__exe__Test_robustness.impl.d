test/test_robustness.ml: Alcotest Array Cold_graph Cold_metrics Cold_prng Float Fun List QCheck QCheck_alcotest
