test/test_router.ml: Alcotest Array Cold Cold_context Cold_geom Cold_graph Cold_net Cold_prng Cold_router Cold_traffic Float Fun List Printf
