test/test_sim.ml: Alcotest Cold Cold_context Cold_geom Cold_graph Cold_net Cold_prng Cold_sim Float List Printf QCheck QCheck_alcotest
