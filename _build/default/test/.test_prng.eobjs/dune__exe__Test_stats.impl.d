test/test_stats.ml: Alcotest Array Cold_prng Cold_stats Float QCheck QCheck_alcotest
