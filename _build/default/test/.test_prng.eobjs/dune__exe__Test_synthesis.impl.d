test/test_synthesis.ml: Alcotest Array Cold Cold_context Cold_graph Cold_metrics Cold_net Cold_prng Cold_stats Float List
