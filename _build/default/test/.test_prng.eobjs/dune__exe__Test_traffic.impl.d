test/test_traffic.ml: Alcotest Array Cold_prng Cold_traffic Float List Printf QCheck QCheck_alcotest
