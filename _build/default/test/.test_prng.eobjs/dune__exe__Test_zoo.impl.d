test/test_zoo.ml: Alcotest Array Cold_graph Cold_metrics Cold_stats Cold_zoo List Printf
