(* Tests for the Table-1 baseline generators. *)

module Graph = Cold_graph.Graph
module Traversal = Cold_graph.Traversal
module Prng = Cold_prng.Prng
module Region = Cold_geom.Region
module Point_process = Cold_geom.Point_process
module Er = Cold_baselines.Erdos_renyi
module Waxman = Cold_baselines.Waxman
module Plrg = Cold_baselines.Plrg
module Ba = Cold_baselines.Barabasi_albert
module Fkp = Cold_baselines.Fkp
module Comparison = Cold_baselines.Comparison

let test_gnp_counts () =
  let rng = Prng.create 1 in
  let trials = 200 in
  let n = 20 and p = 0.3 in
  let total = ref 0 in
  for _ = 1 to trials do
    total := !total + Graph.edge_count (Er.gnp ~n ~p rng)
  done;
  let expected = p *. float_of_int (n * (n - 1) / 2) in
  let mean = float_of_int !total /. float_of_int trials in
  Alcotest.(check bool) "edge count near p*C(n,2)" true
    (Float.abs (mean -. expected) < 0.05 *. expected)

let test_gnp_extremes () =
  let rng = Prng.create 2 in
  Alcotest.(check int) "p=0 empty" 0 (Graph.edge_count (Er.gnp ~n:10 ~p:0.0 rng));
  Alcotest.(check int) "p=1 complete" 45 (Graph.edge_count (Er.gnp ~n:10 ~p:1.0 rng));
  Alcotest.check_raises "p out of range" (Invalid_argument "Erdos_renyi.gnp: p out of range")
    (fun () -> ignore (Er.gnp ~n:5 ~p:1.5 rng))

let test_gnm_exact () =
  let rng = Prng.create 3 in
  for m = 0 to 21 do
    let g = Er.gnm ~n:7 ~m rng in
    Alcotest.(check int) "exact m" m (Graph.edge_count g)
  done;
  Alcotest.check_raises "m too big" (Invalid_argument "Erdos_renyi.gnm: m out of range")
    (fun () -> ignore (Er.gnm ~n:4 ~m:7 rng))

let test_gnm_uniform_pairs () =
  (* Each pair should appear with roughly equal frequency. *)
  let rng = Prng.create 4 in
  let counts = Hashtbl.create 16 in
  let trials = 3000 in
  for _ = 1 to trials do
    let g = Er.gnm ~n:5 ~m:3 rng in
    Graph.iter_edges g (fun u v ->
        Hashtbl.replace counts (u, v)
          (1 + Option.value ~default:0 (Hashtbl.find_opt counts (u, v))))
  done;
  (* 10 pairs, 3 slots → expected 900 each. *)
  Hashtbl.iter
    (fun _ c ->
      Alcotest.(check bool) "roughly uniform" true (c > 750 && c < 1050))
    counts;
  Alcotest.(check int) "all pairs seen" 10 (Hashtbl.length counts)

let test_waxman_locality () =
  let rng = Prng.create 5 in
  let points =
    Point_process.generate Point_process.Uniform ~region:Region.unit_square ~n:60 rng
  in
  let short = ref 0 and long = ref 0 and short_links = ref 0 and long_links = ref 0 in
  for _ = 1 to 20 do
    let g = Waxman.generate ~alpha:0.15 ~beta:0.6 points rng in
    for u = 0 to 59 do
      for v = u + 1 to 59 do
        let d = Cold_geom.Point.distance points.(u) points.(v) in
        if d < 0.3 then begin
          incr short;
          if Graph.mem_edge g u v then incr short_links
        end
        else begin
          incr long;
          if Graph.mem_edge g u v then incr long_links
        end
      done
    done
  done;
  let frac a b = float_of_int a /. float_of_int (max 1 b) in
  Alcotest.(check bool) "short links likelier" true
    (frac !short_links !short > 2.0 *. frac !long_links !long)

let test_waxman_invalid () =
  let rng = Prng.create 6 in
  Alcotest.check_raises "alpha" (Invalid_argument "Waxman.generate: alpha must be positive")
    (fun () -> ignore (Waxman.generate ~alpha:0.0 ~beta:0.5 [||] rng))

let test_power_law_weights () =
  let w = Plrg.power_law_weights ~n:100 ~exponent:2.5 ~average:3.0 in
  let mean = Array.fold_left ( +. ) 0.0 w /. 100.0 in
  Alcotest.(check (float 1e-9)) "mean rescaled" 3.0 mean;
  Alcotest.(check bool) "decreasing" true (w.(0) > w.(50) && w.(50) > w.(99))

let test_power_law_degrees () =
  let rng = Prng.create 7 in
  let deg = Plrg.power_law_degrees ~n:200 ~exponent:2.5 ~min_degree:1 rng in
  Alcotest.(check bool) "even sum" true (Array.fold_left ( + ) 0 deg mod 2 = 0);
  Array.iter
    (fun d -> Alcotest.(check bool) "within range" true (d >= 1 && d <= 199))
    deg

let test_chung_lu_mean_degree () =
  let rng = Prng.create 8 in
  let w = Plrg.power_law_weights ~n:100 ~exponent:2.8 ~average:4.0 in
  let total = ref 0 in
  let trials = 50 in
  for _ = 1 to trials do
    total := !total + Graph.edge_count (Plrg.chung_lu w rng)
  done;
  let mean_deg = 2.0 *. float_of_int !total /. float_of_int (trials * 100) in
  (* min() clipping biases slightly low; generous tolerance. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean degree near 4 (got %.2f)" mean_deg)
    true
    (mean_deg > 2.8 && mean_deg < 4.5)

let test_configuration_model () =
  let rng = Prng.create 9 in
  let deg = [| 3; 2; 2; 2; 1 |] in
  let g = Plrg.configuration deg rng in
  (* The erased variant can only undershoot requested degrees. *)
  Array.iteri
    (fun v d -> Alcotest.(check bool) "no overshoot" true (Graph.degree g v <= d))
    deg;
  Alcotest.check_raises "odd sum" (Invalid_argument "Plrg.configuration: odd degree sum")
    (fun () -> ignore (Plrg.configuration [| 1; 2 |] rng))

let test_barabasi_albert () =
  let rng = Prng.create 10 in
  let g = Ba.generate ~n:50 ~m:2 rng in
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  (* m(m+1)/2 seed edges + (n-m-1)·m attachment edges. *)
  Alcotest.(check int) "edge count" (3 + (47 * 2)) (Graph.edge_count g);
  (* Preferential attachment should produce a hub larger than the minimum. *)
  Alcotest.(check bool) "has a hub" true (Cold_metrics.Degree.max_degree g >= 6);
  Alcotest.check_raises "bad m" (Invalid_argument "Barabasi_albert.generate: need 1 <= m < n")
    (fun () -> ignore (Ba.generate ~n:5 ~m:5 rng))

let test_fkp_tree () =
  let rng = Prng.create 11 in
  let (g, points) = Fkp.generate ~n:40 ~alpha:10.0 ~region:Region.unit_square rng in
  Alcotest.(check int) "tree edges" 39 (Graph.edge_count g);
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  Alcotest.(check int) "positions" 40 (Array.length points)

let test_fkp_alpha_zero_star () =
  (* alpha = 0: cost is pure hop count, so everyone attaches to the root. *)
  let rng = Prng.create 12 in
  let (g, _) = Fkp.generate ~n:20 ~alpha:0.0 ~region:Region.unit_square rng in
  Alcotest.(check int) "root degree" 19 (Graph.degree g 0)

let test_fkp_alpha_extremes_differ () =
  let rng = Prng.create 13 in
  let (star_like, _) = Fkp.generate ~n:60 ~alpha:0.5 ~region:Region.unit_square rng in
  let (geo_like, _) = Fkp.generate ~n:60 ~alpha:400.0 ~region:Region.unit_square rng in
  Alcotest.(check bool) "low alpha more hub-dominated" true
    (Cold_metrics.Degree.max_degree star_like > Cold_metrics.Degree.max_degree geo_like)

let test_comparison_table () =
  (* Cheap configuration: the point is the verdicts' shape, not precision. *)
  let rows = Comparison.run ~trials:6 ~n:16 ~seed:99 () in
  Alcotest.(check int) "six methods" 6 (List.length rows);
  let find name = List.find (fun r -> r.Comparison.name = name) rows in
  let cold = find "COLD" in
  Array.iteri
    (fun i v ->
      Alcotest.(check bool)
        (Printf.sprintf "COLD criterion %d is Yes" i)
        true (v = Comparison.Yes))
    cold.Comparison.verdicts;
  let dk = find "dK-series" in
  Alcotest.(check bool) "dK fails variation" true
    (dk.Comparison.verdicts.(0) = Comparison.No);
  Alcotest.(check bool) "dK not simple" true (dk.Comparison.verdicts.(5) = Comparison.No);
  let er = find "ER" in
  Alcotest.(check bool) "ER varies" true (er.Comparison.verdicts.(0) = Comparison.Yes);
  Alcotest.(check bool) "ER fails constraints" true
    (er.Comparison.verdicts.(1) = Comparison.No);
  (* The rendering works. *)
  let rendered = Format.asprintf "%a" Comparison.pp_table rows in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "table mentions COLD" true (contains rendered "COLD")

let () =
  Alcotest.run "cold_baselines"
    [
      ( "erdos_renyi",
        [
          Alcotest.test_case "gnp counts" `Quick test_gnp_counts;
          Alcotest.test_case "gnp extremes" `Quick test_gnp_extremes;
          Alcotest.test_case "gnm exact" `Quick test_gnm_exact;
          Alcotest.test_case "gnm uniform" `Quick test_gnm_uniform_pairs;
        ] );
      ( "waxman",
        [
          Alcotest.test_case "locality" `Quick test_waxman_locality;
          Alcotest.test_case "invalid" `Quick test_waxman_invalid;
        ] );
      ( "plrg",
        [
          Alcotest.test_case "weights" `Quick test_power_law_weights;
          Alcotest.test_case "degrees" `Quick test_power_law_degrees;
          Alcotest.test_case "chung-lu mean degree" `Quick test_chung_lu_mean_degree;
          Alcotest.test_case "configuration model" `Quick test_configuration_model;
        ] );
      ( "barabasi_albert",
        [ Alcotest.test_case "structure" `Quick test_barabasi_albert ] );
      ( "fkp",
        [
          Alcotest.test_case "tree" `Quick test_fkp_tree;
          Alcotest.test_case "alpha zero star" `Quick test_fkp_alpha_zero_star;
          Alcotest.test_case "alpha extremes" `Quick test_fkp_alpha_extremes_differ;
        ] );
      ( "comparison",
        [ Alcotest.test_case "table shape" `Slow test_comparison_table ] );
    ]
