(* Tests for Cold_context. *)

module Prng = Cold_prng.Prng
module Point = Cold_geom.Point
module Context = Cold_context.Context
module Gravity = Cold_traffic.Gravity
module Population = Cold_traffic.Population

let feq = Alcotest.(check (float 1e-9))

let test_default_spec () =
  let spec = Context.default_spec ~n:30 in
  Alcotest.(check int) "n" 30 spec.Context.n;
  feq "traffic scale" Context.default_traffic_scale spec.Context.traffic_scale;
  feq "calibrated region area" 2500.0 (Cold_geom.Region.area Context.default_region)

let test_generate () =
  let ctx = Context.generate (Context.default_spec ~n:25) (Prng.create 5) in
  Alcotest.(check int) "points" 25 (Array.length ctx.Context.points);
  Alcotest.(check int) "n accessor" 25 (Context.n ctx);
  Alcotest.(check int) "tm size" 25 (Gravity.size ctx.Context.tm)

let test_deterministic () =
  let a = Context.generate (Context.default_spec ~n:10) (Prng.create 7) in
  let b = Context.generate (Context.default_spec ~n:10) (Prng.create 7) in
  Array.iteri
    (fun i p -> Alcotest.(check bool) "same points" true (Point.equal p b.Context.points.(i)))
    a.Context.points;
  feq "same demand" (Gravity.demand a.Context.tm 0 1) (Gravity.demand b.Context.tm 0 1)

let test_different_seeds_differ () =
  let a = Context.generate (Context.default_spec ~n:10) (Prng.create 1) in
  let b = Context.generate (Context.default_spec ~n:10) (Prng.create 2) in
  Alcotest.(check bool) "different geometry" true
    (not (Point.equal a.Context.points.(0) b.Context.points.(0)))

let test_distance_consistency () =
  let ctx = Context.generate (Context.default_spec ~n:12) (Prng.create 9) in
  for i = 0 to 11 do
    for j = 0 to 11 do
      feq "distance matches points"
        (Point.distance ctx.Context.points.(i) ctx.Context.points.(j))
        (Context.distance ctx i j)
    done
  done

let test_of_points_and_populations () =
  let points = [| Point.make 0.0 0.0; Point.make 1.0 0.0 |] in
  let ctx = Context.of_points_and_populations points [| 2.0; 3.0 |] in
  Alcotest.(check int) "n" 2 (Context.n ctx);
  feq "distance" 1.0 (Context.distance ctx 0 1);
  feq "demand" 6.0 (Gravity.demand ctx.Context.tm 0 1);
  (* Defensive copies. *)
  points.(0) <- Point.make 9.0 9.0;
  feq "points copied" 1.0 (Context.distance ctx 0 1)

let test_of_points_mismatch () =
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Context.of_points_and_populations: length mismatch")
    (fun () ->
      ignore (Context.of_points_and_populations [| Point.make 0.0 0.0 |] [| 1.0; 2.0 |]))

let test_traffic_scale () =
  let points = [| Point.make 0.0 0.0; Point.make 1.0 0.0 |] in
  let ctx = Context.of_points_and_populations ~traffic_scale:10.0 points [| 2.0; 3.0 |] in
  feq "scaled" 60.0 (Gravity.demand ctx.Context.tm 0 1)

let test_pareto_spec () =
  let spec =
    { (Context.default_spec ~n:15) with Context.population = Population.pareto_heavy }
  in
  let ctx = Context.generate spec (Prng.create 3) in
  Alcotest.(check int) "generated" 15 (Context.n ctx)

let () =
  Alcotest.run "cold_context"
    [
      ( "context",
        [
          Alcotest.test_case "default spec" `Quick test_default_spec;
          Alcotest.test_case "generate" `Quick test_generate;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "seeds differ" `Quick test_different_seeds_differ;
          Alcotest.test_case "distance consistency" `Quick test_distance_consistency;
          Alcotest.test_case "of_points" `Quick test_of_points_and_populations;
          Alcotest.test_case "mismatch" `Quick test_of_points_mismatch;
          Alcotest.test_case "traffic scale" `Quick test_traffic_scale;
          Alcotest.test_case "pareto spec" `Quick test_pareto_spec;
        ] );
    ]
