(* Tests for Cold.Cost: hand-computed costs and the §3.2.3 dominance
   structure (k0/k1 → trees, k2 → cliques, k3 → stars). *)

module Graph = Cold_graph.Graph
module Builders = Cold_graph.Builders
module Prng = Cold_prng.Prng
module Point = Cold_geom.Point
module Context = Cold_context.Context
module Cost = Cold.Cost

let feq = Alcotest.(check (float 1e-6))

let line_context () =
  Context.of_points_and_populations
    [| Point.make 0.0 0.0; Point.make 1.0 0.0; Point.make 2.0 0.0 |]
    [| 1.0; 2.0; 3.0 |]

let test_params_defaults () =
  let p = Cost.params () in
  feq "k0" 10.0 p.Cost.k0;
  feq "k1" 1.0 p.Cost.k1;
  feq "k3" 0.0 p.Cost.k3

let test_params_invalid () =
  Alcotest.check_raises "negative cost"
    (Invalid_argument "Cost.params: costs must be non-negative") (fun () ->
      ignore (Cost.params ~k2:(-1.0) ()))

let test_hand_computed () =
  (* Path on the line context. Loads: (0,1)=10, (1,2)=18 (see test_net).
     With k0=10, k1=1, k2=0.1, k3=5:
       existence: 2·10 = 20
       length: 1·(1+1) = 2
       bandwidth: 0.1·(10·1 + 18·1) = 2.8
       hub: node 1 has degree 2 → 5
       total = 29.8 *)
  let ctx = line_context () in
  let p = Cost.params ~k0:10.0 ~k1:1.0 ~k2:0.1 ~k3:5.0 () in
  let b = Cost.evaluate_breakdown p ctx (Builders.path 3) in
  feq "existence" 20.0 b.Cost.existence;
  feq "length" 2.0 b.Cost.length;
  feq "bandwidth" 2.8 b.Cost.bandwidth;
  feq "hub" 5.0 b.Cost.hub;
  feq "total" 29.8 b.Cost.total;
  feq "evaluate agrees" b.Cost.total (Cost.evaluate p ctx (Builders.path 3))

let test_disconnected_infeasible () =
  let ctx = line_context () in
  let g = Graph.of_edges 3 [ (0, 1) ] in
  feq "infinite" infinity (Cost.evaluate (Cost.params ()) ctx g);
  let b = Cost.evaluate_breakdown (Cost.params ()) ctx g in
  feq "breakdown total" infinity b.Cost.total

let test_size_mismatch () =
  let ctx = line_context () in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Cost.evaluate: graph size does not match context") (fun () ->
      ignore (Cost.evaluate (Cost.params ()) ctx (Builders.path 4)))

let random_context n seed =
  Context.generate (Context.default_spec ~n) (Prng.create seed)

(* When k1 dominates (k0=k2=k3=0), the optimum is the Euclidean MST. *)
let test_k1_dominant_mst_optimal () =
  let ctx = random_context 6 11 in
  let p = Cost.params ~k0:0.0 ~k1:1.0 ~k2:0.0 ~k3:0.0 () in
  let (opt, opt_cost) = Cold.Brute_force.optimal p ctx in
  let mst = Cold.Heuristics.mst_topology ctx in
  feq "MST cost is optimal" opt_cost (Cost.evaluate p ctx mst);
  Alcotest.(check bool) "optimum is the MST" true (Graph.equal opt mst)

(* When k2 dominates, the optimum is the clique. *)
let test_k2_dominant_clique_optimal () =
  let ctx = random_context 5 12 in
  let p = Cost.params ~k0:0.0 ~k1:0.0 ~k2:1.0 ~k3:0.0 () in
  let (opt, _) = Cold.Brute_force.optimal p ctx in
  Alcotest.(check bool) "optimum is the clique" true
    (Graph.equal opt (Graph.complete 5))

(* When k0 dominates, any optimum is a spanning tree (n-1 links). *)
let test_k0_dominant_tree_optimal () =
  let ctx = random_context 6 13 in
  let p = Cost.params ~k0:1000.0 ~k1:1.0 ~k2:1e-7 ~k3:0.0 () in
  let (opt, _) = Cold.Brute_force.optimal p ctx in
  Alcotest.(check int) "spanning tree" 5 (Graph.edge_count opt)

(* When k3 dominates, the optimum is hub-and-spoke: exactly one core node. *)
let test_k3_dominant_star_optimal () =
  let ctx = random_context 6 14 in
  let p = Cost.params ~k0:1.0 ~k1:1.0 ~k2:1e-7 ~k3:10_000.0 () in
  let (opt, _) = Cold.Brute_force.optimal p ctx in
  Alcotest.(check int) "one hub" 1 (Cold_metrics.Degree.hub_count opt);
  Alcotest.(check int) "star edges" 5 (Graph.edge_count opt)

(* Monotonicity: the cost of a fixed graph is increasing in each ki. *)
let test_cost_monotone_in_params () =
  let ctx = random_context 8 15 in
  let g = Cold.Heuristics.mst_topology ctx in
  let base = Cost.evaluate (Cost.params ~k0:1.0 ~k2:1e-4 ~k3:1.0 ()) ctx g in
  Alcotest.(check bool) "k0 up" true
    (Cost.evaluate (Cost.params ~k0:2.0 ~k2:1e-4 ~k3:1.0 ()) ctx g > base);
  Alcotest.(check bool) "k2 up" true
    (Cost.evaluate (Cost.params ~k0:1.0 ~k2:2e-4 ~k3:1.0 ()) ctx g > base);
  Alcotest.(check bool) "k3 up" true
    (Cost.evaluate (Cost.params ~k0:1.0 ~k2:1e-4 ~k3:2.0 ()) ctx g > base)

(* Scale invariance (§3.2.3: "costs are all relative"): multiplying all ki by
   a constant multiplies every cost by the same constant, so argmins are
   unchanged. *)
let test_scale_invariance () =
  let ctx = random_context 6 16 in
  let g = Cold.Heuristics.mst_topology ctx in
  let c1 = Cost.evaluate (Cost.params ~k0:10.0 ~k1:1.0 ~k2:1e-4 ~k3:5.0 ()) ctx g in
  let c3 = Cost.evaluate (Cost.params ~k0:30.0 ~k1:3.0 ~k2:3e-4 ~k3:15.0 ()) ctx g in
  feq "3x params = 3x cost" (3.0 *. c1) c3

let test_breakdown_components_sum () =
  let ctx = random_context 7 17 in
  let g = Cold.Heuristics.mst_topology ctx in
  let b = Cost.evaluate_breakdown (Cost.params ~k3:2.0 ()) ctx g in
  feq "components sum to total"
    (b.Cost.existence +. b.Cost.length +. b.Cost.bandwidth +. b.Cost.hub)
    b.Cost.total

let test_count_connected_oracle () =
  (* Known counts of connected labelled graphs. *)
  Alcotest.(check int) "n=1" 1 (Cold.Brute_force.count_connected 1);
  Alcotest.(check int) "n=2" 1 (Cold.Brute_force.count_connected 2);
  Alcotest.(check int) "n=3" 4 (Cold.Brute_force.count_connected 3);
  Alcotest.(check int) "n=4" 38 (Cold.Brute_force.count_connected 4);
  Alcotest.(check int) "n=5" 728 (Cold.Brute_force.count_connected 5)

let qcheck_cost_positive =
  QCheck.Test.make ~name:"feasible costs are positive and finite" ~count:40
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let ctx = random_context 6 seed in
      let g = Cold.Heuristics.mst_topology ctx in
      let c = Cost.evaluate (Cost.params ()) ctx g in
      Float.is_finite c && c > 0.0)

let () =
  Alcotest.run "cold_cost"
    [
      ( "cost",
        [
          Alcotest.test_case "defaults" `Quick test_params_defaults;
          Alcotest.test_case "invalid" `Quick test_params_invalid;
          Alcotest.test_case "hand computed" `Quick test_hand_computed;
          Alcotest.test_case "disconnected" `Quick test_disconnected_infeasible;
          Alcotest.test_case "size mismatch" `Quick test_size_mismatch;
          Alcotest.test_case "monotone in params" `Quick test_cost_monotone_in_params;
          Alcotest.test_case "scale invariance" `Quick test_scale_invariance;
          Alcotest.test_case "breakdown sums" `Quick test_breakdown_components_sum;
        ] );
      ( "dominance (brute force)",
        [
          Alcotest.test_case "k1 -> MST" `Quick test_k1_dominant_mst_optimal;
          Alcotest.test_case "k2 -> clique" `Quick test_k2_dominant_clique_optimal;
          Alcotest.test_case "k0 -> spanning tree" `Quick test_k0_dominant_tree_optimal;
          Alcotest.test_case "k3 -> star" `Quick test_k3_dominant_star_optimal;
        ] );
      ( "brute force",
        [ Alcotest.test_case "connected graph counts" `Quick test_count_connected_oracle ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_cost_positive ]);
    ]
