(* Tests for dK-distributions, the subgraph census (Fig 1 machinery) and
   dK-preserving rewiring (Fig 2 machinery). *)

module Graph = Cold_graph.Graph
module Builders = Cold_graph.Builders
module Traversal = Cold_graph.Traversal
module Prng = Cold_prng.Prng
module Dk = Cold_dk.Dk
module Census = Cold_dk.Subgraph_census
module Rewire = Cold_dk.Rewire

let feq = Alcotest.(check (float 1e-9))

let test_zero_k () =
  feq "cycle" 2.0 (Dk.zero_k (Builders.cycle 8));
  feq "empty" 0.0 (Dk.zero_k (Graph.create 0));
  feq "star 5" 1.6 (Dk.zero_k (Builders.star 5))

let test_one_k () =
  Alcotest.(check (list (pair int int))) "cycle" [ (2, 6) ] (Dk.one_k (Builders.cycle 6));
  Alcotest.(check (list (pair int int))) "star" [ (1, 4); (4, 1) ]
    (Dk.one_k (Builders.star 5))

let test_two_k () =
  Alcotest.(check (list (pair (pair int int) int))) "cycle jdd" [ ((2, 2), 6) ]
    (Dk.two_k (Builders.cycle 6));
  Alcotest.(check (list (pair (pair int int) int))) "star jdd" [ ((1, 4), 4) ]
    (Dk.two_k (Builders.star 5));
  (* Path 4: degrees 1,2,2,1: edges (1,2)x2 and (2,2)x1. *)
  Alcotest.(check (list (pair (pair int int) int))) "path jdd"
    [ ((1, 2), 2); ((2, 2), 1) ]
    (Dk.two_k (Builders.path 4))

let test_three_k_cycle () =
  let t = Dk.three_k (Builders.cycle 6) in
  Alcotest.(check (list (pair (triple int int int) int))) "wedges" [ ((2, 2, 2), 6) ]
    (List.map (fun ((a, b, c), n) -> ((a, b, c), n)) t.Dk.wedges);
  Alcotest.(check int) "no triangles" 0 (List.length t.Dk.triangles)

let test_three_k_clique () =
  let t = Dk.three_k (Graph.complete 4) in
  Alcotest.(check int) "no open wedges" 0 (List.length t.Dk.wedges);
  Alcotest.(check (list (pair (triple int int int) int))) "triangles"
    [ ((3, 3, 3), 4) ] t.Dk.triangles

let test_three_k_triangle_cycle_distinguished () =
  (* C3 vs C6: same 0K/1K/2K, different 3K. *)
  let c3 = Builders.cycle 3 and c6 = Builders.cycle 6 in
  Alcotest.(check bool) "same 1K per-node" true
    (Dk.one_k c3 = [ (2, 3) ] && Dk.one_k c6 = [ (2, 6) ]);
  Alcotest.(check bool) "3K differs" false
    (Dk.equal_three_k (Dk.three_k c3) (Dk.three_k c6))

let test_entry_counts () =
  Alcotest.(check int) "cycle 2K entries" 1 (Dk.two_k_entry_count (Builders.cycle 7));
  Alcotest.(check int) "cycle 3K entries" 1 (Dk.three_k_entry_count (Builders.cycle 7));
  Alcotest.(check int) "path 2K entries" 2 (Dk.two_k_entry_count (Builders.path 5))

(* --- census ----------------------------------------------------------------- *)

let test_census_small () =
  (* Path 3: degrees 1,2,1. d=2: one class (1,2). d=3: one class. *)
  Alcotest.(check int) "path3 d=2" 1 (Census.distinct (Builders.path 3) ~d:2);
  Alcotest.(check int) "path3 d=3" 1 (Census.distinct (Builders.path 3) ~d:3);
  (* Cycle n >= 5: one d=2 class, one d=3 class, one d=4 class. *)
  Alcotest.(check int) "cycle d=2" 1 (Census.distinct (Builders.cycle 6) ~d:2);
  Alcotest.(check int) "cycle d=3" 1 (Census.distinct (Builders.cycle 6) ~d:3);
  Alcotest.(check int) "cycle d=4" 1 (Census.distinct (Builders.cycle 6) ~d:4);
  (* K4: one class at each d. *)
  Alcotest.(check int) "K4 d=4" 1 (Census.distinct (Graph.complete 4) ~d:4);
  Alcotest.check_raises "bad d"
    (Invalid_argument "Subgraph_census.distinct: d must be 2, 3 or 4") (fun () ->
      ignore (Census.distinct (Builders.path 3) ~d:5))

let test_census_path4 () =
  (* Path 4 (degrees 1,2,2,1). d=2 classes: (1,2) and (2,2) → 2.
     d=3 classes: paths (1,2,2) centred at 2 → wedge (1,2,2) and (1,2,... )
     triples {0,1,2}: path centre 1 → (centre 2, ends 1,2) and {1,2,3}:
     mirror → same class → 1 class? Ends are degree 1 and 2, centre 2:
     class (0-path, centre=2, ends (1,2)). Both triples identical → 1.
     d=4: whole path, degrees (1,2,2,1) → 1. *)
  Alcotest.(check int) "path4 d=2" 2 (Census.distinct (Builders.path 4) ~d:2);
  Alcotest.(check int) "path4 d=3" 1 (Census.distinct (Builders.path 4) ~d:3);
  Alcotest.(check int) "path4 d=4" 1 (Census.distinct (Builders.path 4) ~d:4)

let test_census_star () =
  (* Star 5: d=2 all edges (1,4) → 1; d=3 wedges (1,4,1) → 1; d=4 stars → 1. *)
  Alcotest.(check int) "star d=2" 1 (Census.distinct (Builders.star 5) ~d:2);
  Alcotest.(check int) "star d=3" 1 (Census.distinct (Builders.star 5) ~d:3);
  Alcotest.(check int) "star d=4" 1 (Census.distinct (Builders.star 5) ~d:4)

let test_census_counts () =
  (* Totals with multiplicity. Path 4: 3 edges; 2 connected triples; 1 quad. *)
  Alcotest.(check int) "path4 #2" 3 (Census.connected_subgraph_count (Builders.path 4) ~d:2);
  Alcotest.(check int) "path4 #3" 2 (Census.connected_subgraph_count (Builders.path 4) ~d:3);
  Alcotest.(check int) "path4 #4" 1 (Census.connected_subgraph_count (Builders.path 4) ~d:4);
  (* K4: 6 edges, 4 triples (all connected), 1 quad. *)
  Alcotest.(check int) "K4 #3" 4 (Census.connected_subgraph_count (Graph.complete 4) ~d:3);
  Alcotest.(check int) "K5 #4" 5 (Census.connected_subgraph_count (Graph.complete 5) ~d:4)

let test_census_grows_with_d () =
  (* Fig 1's qualitative claim on a random-ish graph: more classes at higher d. *)
  let rng = Prng.create 42 in
  let g = Builders.random_tree 30 rng in
  for _ = 1 to 15 do
    let u = Prng.int rng 30 and v = Prng.int rng 30 in
    if u <> v then Graph.add_edge g u v
  done;
  let d2 = Census.distinct g ~d:2 in
  let d3 = Census.distinct g ~d:3 in
  let d4 = Census.distinct g ~d:4 in
  Alcotest.(check bool) (Printf.sprintf "d2=%d <= d3=%d" d2 d3) true (d2 <= d3);
  Alcotest.(check bool) (Printf.sprintf "d3=%d <= d4=%d" d3 d4) true (d3 <= d4);
  Alcotest.(check bool) "d4 large" true (d4 > 2 * d2)

(* --- rewiring ---------------------------------------------------------------- *)

let random_connected n seed =
  let rng = Prng.create seed in
  let g = Builders.random_tree n rng in
  for _ = 1 to n do
    let u = Prng.int rng n and v = Prng.int rng n in
    if u <> v then Graph.add_edge g u v
  done;
  g

let test_rewire_1k_preserves_degrees () =
  let g = random_connected 20 1 in
  let before = Graph.degree_sequence g in
  let accepted = Rewire.rewire ~level:Rewire.K1 ~attempts:300 g (Prng.create 2) in
  Alcotest.(check bool) "some moves accepted" true (accepted > 0);
  Alcotest.(check (array int)) "degrees preserved" before (Graph.degree_sequence g);
  Alcotest.(check bool) "still connected" true (Traversal.is_connected g)

let test_rewire_2k_preserves_jdd () =
  let g = random_connected 20 3 in
  let before = Dk.two_k g in
  ignore (Rewire.rewire ~level:Rewire.K2 ~attempts:300 g (Prng.create 4));
  Alcotest.(check bool) "JDD preserved" true (Dk.equal_two_k before (Dk.two_k g))

let test_rewire_3k_preserves_profile () =
  let g = random_connected 16 5 in
  let before = Dk.three_k g in
  ignore (Rewire.rewire ~level:Rewire.K3 ~attempts:200 g (Prng.create 6));
  Alcotest.(check bool) "3K preserved" true (Dk.equal_three_k before (Dk.three_k g))

let test_rewire_can_disconnect_when_allowed () =
  (* With require_connected:false the invariants still hold. *)
  let g = random_connected 14 7 in
  let before = Graph.degree_sequence g in
  ignore
    (Rewire.rewire ~require_connected:false ~level:Rewire.K1 ~attempts:200 g
       (Prng.create 8));
  Alcotest.(check (array int)) "degrees preserved" before (Graph.degree_sequence g)

let test_ring_rigidity_under_connectivity () =
  (* The paper's example: a ring is fully determined by its dK-distribution
     (+ connectivity). Degree-preserving swaps on a cycle either disconnect
     it (rejected) or keep it a single cycle — the output is always
     isomorphic to the input. *)
  let g = Builders.cycle 12 in
  ignore (Rewire.rewire ~level:Rewire.K2 ~attempts:300 g (Prng.create 9));
  Alcotest.(check bool) "still connected" true (Traversal.is_connected g);
  Alcotest.(check (list (pair int int))) "still 2-regular" [ (2, 12) ]
    (Cold_metrics.Degree.distribution g);
  Alcotest.(check int) "still 12 edges" 12 (Graph.edge_count g)

let test_sample_nondestructive () =
  let g = Builders.cycle 10 in
  let before = Graph.edges g in
  let out = Rewire.sample ~level:Rewire.K1 ~attempts:100 g (Prng.create 10) in
  Alcotest.(check (list (pair int int))) "input untouched" before (Graph.edges g);
  Alcotest.(check int) "same node count" 10 (Graph.node_count out)

(* --- construction -------------------------------------------------------------- *)

module Dk_gen = Cold_dk.Dk_gen

let test_gen_degree_sequence () =
  let rng = Prng.create 60 in
  let degrees = [| 3; 2; 2; 2; 2; 1 |] in
  match Dk_gen.degree_sequence_graph degrees rng with
  | None -> Alcotest.fail "graphical sequence should be realizable"
  | Some g ->
    Alcotest.(check (array int)) "degrees realized" degrees (Graph.degree_sequence g)

let test_gen_degree_sequence_invalid () =
  let rng = Prng.create 61 in
  Alcotest.check_raises "odd sum" (Invalid_argument "Dk_gen: odd degree sum") (fun () ->
      ignore (Dk_gen.degree_sequence_graph [| 1; 2 |] rng));
  (* Non-graphical: one node wants 5 neighbours among 3 others. *)
  Alcotest.(check bool) "non-graphical returns None" true
    (Dk_gen.degree_sequence_graph ~attempts:20 [| 5; 1; 1; 1 |] (Prng.create 62) = None)

let test_gen_two_k_matches () =
  let rng = Prng.create 63 in
  List.iter
    (fun reference ->
      match Dk_gen.two_k_graph reference rng with
      | None -> Alcotest.fail "2K construction should succeed on these shapes"
      | Some g ->
        Alcotest.(check bool) "JDD equal" true
          (Dk.equal_two_k (Dk.two_k reference) (Dk.two_k g));
        Alcotest.(check (array int)) "degrees equal"
          (Array.of_list (List.sort compare (Array.to_list (Graph.degree_sequence reference))))
          (Array.of_list (List.sort compare (Array.to_list (Graph.degree_sequence g)))))
    [ Builders.cycle 8; Builders.path 7; Builders.star 6; Builders.double_star 8 ]

let test_gen_two_k_varies () =
  (* 2K matching does NOT pin the graph the way 3K does: over several samples
     from a meshy reference we expect at least two distinct labelled
     outputs. *)
  let reference = random_connected 12 64 in
  let rng = Prng.create 65 in
  let samples =
    List.filter_map
      (fun _ -> Dk_gen.two_k_graph reference rng)
      [ 1; 2; 3; 4; 5; 6 ]
  in
  Alcotest.(check bool) "some samples" true (List.length samples >= 2);
  let distinct =
    List.fold_left
      (fun acc g -> if List.exists (Graph.equal g) acc then acc else g :: acc)
      [] samples
  in
  Alcotest.(check bool) "labelled variety" true (List.length distinct >= 2)

let test_gen_two_k_can_disconnect () =
  (* The paper's constraint critique: a 2K-matched cycle can come out as
     disconnected cycle unions. Verify the generator at least *may* emit
     valid graphs regardless of connectivity (all outputs must still be
     2K-correct, which test_gen_two_k_matches already covers). *)
  let reference = Builders.cycle 12 in
  let rng = Prng.create 66 in
  let connected = ref 0 and total = ref 0 in
  for _ = 1 to 10 do
    match Dk_gen.two_k_graph reference rng with
    | Some g ->
      incr total;
      if Traversal.is_connected g then incr connected
    | None -> ()
  done;
  Alcotest.(check bool) "samples produced" true (!total > 0)

(* --- isomorphism -------------------------------------------------------------- *)

module Iso = Cold_dk.Iso

let test_iso_positive () =
  (* Relabelled cycle. *)
  let c = Builders.cycle 7 in
  let relabelled = Graph.of_edges 7 [ (3, 5); (5, 1); (1, 6); (6, 0); (0, 2); (2, 4); (4, 3) ] in
  Alcotest.(check bool) "cycle relabelled" true (Iso.isomorphic c relabelled);
  Alcotest.(check bool) "self" true (Iso.isomorphic c c);
  Alcotest.(check bool) "empty graphs" true (Iso.isomorphic (Graph.create 0) (Graph.create 0))

let test_iso_negative () =
  Alcotest.(check bool) "path vs star" false
    (Iso.isomorphic (Builders.path 5) (Builders.star 5));
  Alcotest.(check bool) "different sizes" false
    (Iso.isomorphic (Builders.cycle 5) (Builders.cycle 6));
  (* Same degree sequence, non-isomorphic: C6 vs two triangles. *)
  let two_triangles = Graph.of_edges 6 [ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (3, 5) ] in
  Alcotest.(check bool) "C6 vs 2xC3" false (Iso.isomorphic (Builders.cycle 6) two_triangles)

let test_iso_hard_pair () =
  (* Same degree sequence [3;3;2;2;2;2]: prism (C3 x K2) vs K_{3,3} minus a
     perfect matching is C6... use prism vs Möbius–Kantor-ish: prism vs K4
     with two subdivided edges. Prism has triangles; the subdivided K4 pair
     chosen here has none on those vertices — distinguishable but only after
     invariants. *)
  let prism = Graph.of_edges 6 [ (0, 1); (1, 2); (0, 2); (3, 4); (4, 5); (3, 5); (0, 3); (1, 4); (2, 5) ] in
  let other = Graph.of_edges 6 [ (0, 1); (1, 2); (2, 3); (3, 0); (0, 4); (2, 4); (1, 5); (3, 5) ] in
  (* other has 8 edges, prism 9 → trivially different; instead compare prism
     against its own relabelling. *)
  let prism2 = Graph.of_edges 6 [ (5, 4); (4, 3); (5, 3); (2, 1); (1, 0); (2, 0); (5, 2); (4, 1); (3, 0) ] in
  Alcotest.(check bool) "prism relabelled" true (Iso.isomorphic prism prism2);
  Alcotest.(check bool) "prism vs 8-edge graph" false (Iso.isomorphic prism other)

let test_count_non_isomorphic () =
  let graphs =
    [ Builders.path 5; Builders.star 5; Builders.path 5; Builders.cycle 5 ]
  in
  Alcotest.(check int) "three classes" 3 (Iso.count_non_isomorphic graphs);
  Alcotest.(check int) "empty list" 0 (Iso.count_non_isomorphic [])

let test_3k_rewiring_rigidity_isomorphic () =
  (* Fig 2(c): 3K-constrained rewiring of a structured input only produces
     graphs isomorphic to the input. *)
  let input = Builders.double_star 8 in
  Graph.add_edge input 2 3;
  let rng = Prng.create 77 in
  for _ = 1 to 10 do
    let out = Rewire.sample ~level:Rewire.K3 ~attempts:200 input rng in
    Alcotest.(check bool) "isomorphic to input" true (Iso.isomorphic input out)
  done

let qcheck_rewire_preserves_edge_count =
  QCheck.Test.make ~name:"rewiring preserves edge count" ~count:40
    QCheck.(pair (int_range 0 1000) (int_range 6 16))
    (fun (seed, n) ->
      let g = random_connected n seed in
      let m = Graph.edge_count g in
      ignore (Rewire.rewire ~level:Rewire.K1 ~attempts:100 g (Prng.create (seed + 1)));
      Graph.edge_count g = m)

let () =
  Alcotest.run "cold_dk"
    [
      ( "dk distributions",
        [
          Alcotest.test_case "0K" `Quick test_zero_k;
          Alcotest.test_case "1K" `Quick test_one_k;
          Alcotest.test_case "2K" `Quick test_two_k;
          Alcotest.test_case "3K cycle" `Quick test_three_k_cycle;
          Alcotest.test_case "3K clique" `Quick test_three_k_clique;
          Alcotest.test_case "3K separates C3/C6" `Quick
            test_three_k_triangle_cycle_distinguished;
          Alcotest.test_case "entry counts" `Quick test_entry_counts;
        ] );
      ( "census",
        [
          Alcotest.test_case "small shapes" `Quick test_census_small;
          Alcotest.test_case "path4" `Quick test_census_path4;
          Alcotest.test_case "star" `Quick test_census_star;
          Alcotest.test_case "multiplicity counts" `Quick test_census_counts;
          Alcotest.test_case "growth with d" `Quick test_census_grows_with_d;
        ] );
      ( "rewire",
        [
          Alcotest.test_case "1K preserves degrees" `Quick test_rewire_1k_preserves_degrees;
          Alcotest.test_case "2K preserves JDD" `Quick test_rewire_2k_preserves_jdd;
          Alcotest.test_case "3K preserves profile" `Quick test_rewire_3k_preserves_profile;
          Alcotest.test_case "unconstrained connectivity" `Quick
            test_rewire_can_disconnect_when_allowed;
          Alcotest.test_case "ring rigidity" `Quick test_ring_rigidity_under_connectivity;
          Alcotest.test_case "sample nondestructive" `Quick test_sample_nondestructive;
        ] );
      ( "construction",
        [
          Alcotest.test_case "1K realization" `Quick test_gen_degree_sequence;
          Alcotest.test_case "1K invalid" `Quick test_gen_degree_sequence_invalid;
          Alcotest.test_case "2K matches reference" `Quick test_gen_two_k_matches;
          Alcotest.test_case "2K varies" `Quick test_gen_two_k_varies;
          Alcotest.test_case "2K ignores connectivity" `Quick
            test_gen_two_k_can_disconnect;
        ] );
      ( "iso",
        [
          Alcotest.test_case "positive" `Quick test_iso_positive;
          Alcotest.test_case "negative" `Quick test_iso_negative;
          Alcotest.test_case "prism pair" `Quick test_iso_hard_pair;
          Alcotest.test_case "count classes" `Quick test_count_non_isomorphic;
          Alcotest.test_case "3K rigidity is isomorphism (Fig 2c)" `Quick
            test_3k_rewiring_rigidity_isomorphic;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qcheck_rewire_preserves_edge_count ] );
    ]
