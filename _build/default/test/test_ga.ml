(* Tests for the genetic algorithm and its operators (§4). *)

module Graph = Cold_graph.Graph
module Traversal = Cold_graph.Traversal
module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Cost = Cold.Cost
module Ga = Cold.Ga
module Operators = Cold.Operators
module Repair = Cold.Repair

let ctx_of seed n = Context.generate (Context.default_spec ~n) (Prng.create seed)

let small_settings =
  {
    Ga.default_settings with
    Ga.population_size = 30;
    generations = 25;
    num_saved = 6;
    num_crossover = 15;
    num_mutation = 9;
  }

let test_validate_ok () = Ga.validate Ga.default_settings

let test_validate_errors () =
  Alcotest.check_raises "counts must sum"
    (Invalid_argument
       "Ga: num_saved + num_crossover + num_mutation must equal population_size")
    (fun () -> Ga.validate { Ga.default_settings with Ga.num_saved = 21 });
  Alcotest.check_raises "pool >= winners"
    (Invalid_argument "Ga: need tournament_pool >= tournament_winners >= 1") (fun () ->
      Ga.validate { Ga.default_settings with Ga.tournament_pool = 1 });
  Alcotest.check_raises "bad prob"
    (Invalid_argument "Ga: node_mutation_prob out of range") (fun () ->
      Ga.validate { Ga.default_settings with Ga.node_mutation_prob = 1.5 })

let test_run_returns_connected () =
  let ctx = ctx_of 1 12 in
  let r = Ga.run small_settings (Cost.params ()) ctx (Prng.create 2) in
  Alcotest.(check bool) "best connected" true (Traversal.is_connected r.Ga.best);
  Array.iter
    (fun (g, c) ->
      Alcotest.(check bool) "population connected" true (Traversal.is_connected g);
      Alcotest.(check bool) "finite cost" true (Float.is_finite c))
    r.Ga.final_population

let test_run_deterministic () =
  let run () =
    let ctx = ctx_of 3 10 in
    Ga.run small_settings (Cost.params ()) ctx (Prng.create 4)
  in
  let a = run () and b = run () in
  Alcotest.(check (float 1e-9)) "same best cost" a.Ga.best_cost b.Ga.best_cost;
  Alcotest.(check bool) "same topology" true (Graph.equal a.Ga.best b.Ga.best)

let test_history_monotone () =
  let ctx = ctx_of 5 12 in
  let r = Ga.run small_settings (Cost.params ~k2:2e-4 ()) ctx (Prng.create 6) in
  let prev = ref infinity in
  Array.iter
    (fun c ->
      Alcotest.(check bool) "elitism keeps best cost non-increasing" true (c <= !prev);
      prev := c)
    r.Ga.history;
  Alcotest.(check (float 1e-9)) "history ends at best"
    r.Ga.best_cost r.Ga.history.(Array.length r.Ga.history - 1)

let test_improves_over_mst_and_clique () =
  let ctx = ctx_of 7 12 in
  let p = Cost.params ~k2:2e-4 () in
  let r = Ga.run small_settings p ctx (Prng.create 8) in
  let mst_cost = Cost.evaluate p ctx (Cold.Heuristics.mst_topology ctx) in
  let clique_cost = Cost.evaluate p ctx (Cold.Heuristics.clique_topology ctx) in
  (* MST and clique are in the initial population, so the result can never be
     worse. *)
  Alcotest.(check bool) "<= MST" true (r.Ga.best_cost <= mst_cost +. 1e-9);
  Alcotest.(check bool) "<= clique" true (r.Ga.best_cost <= clique_cost +. 1e-9)

let test_seeds_respected () =
  let ctx = ctx_of 9 6 in
  let p = Cost.params () in
  (* Seed with the true brute-force optimum: the GA can then never return
     anything worse. *)
  let (opt, opt_cost) = Cold.Brute_force.optimal p ctx in
  let r = Ga.run ~seeds:[ opt ] small_settings p ctx (Prng.create 10) in
  Alcotest.(check (float 1e-6)) "seeded optimum survives" opt_cost r.Ga.best_cost

let test_seed_size_mismatch () =
  let ctx = ctx_of 11 10 in
  Alcotest.check_raises "seed size"
    (Invalid_argument "Ga.run: seed topology size does not match context") (fun () ->
      ignore
        (Ga.run ~seeds:[ Graph.create 5 ] small_settings (Cost.params ()) ctx
           (Prng.create 1)))

let test_finds_optimum_small_n () =
  (* §5: the GA finds the true optimum for small instances. Check at n = 5
     across several cost corners. *)
  let corners =
    [
      Cost.params ();
      Cost.params ~k2:1e-3 ();
      Cost.params ~k3:50.0 ();
      Cost.params ~k0:1.0 ~k2:5e-4 ~k3:10.0 ();
    ]
  in
  List.iteri
    (fun i p ->
      let ctx = ctx_of (100 + i) 5 in
      let (_, opt_cost) = Cold.Brute_force.optimal p ctx in
      let r = Ga.run small_settings p ctx (Prng.create (200 + i)) in
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "corner %d matches brute force" i)
        opt_cost r.Ga.best_cost)
    corners

(* --- operators -------------------------------------------------------------- *)

let test_tournament () =
  let pop =
    Array.init 10 (fun i -> (Graph.create 2, float_of_int (10 - i)))
    (* costs 10,9,...,1 *)
  in
  let rng = Prng.create 12 in
  let winners = Operators.tournament ~pool:10 ~winners:2 pop rng in
  Alcotest.(check int) "two winners" 2 (Array.length winners);
  Alcotest.(check bool) "winners sorted" true (snd winners.(0) <= snd winners.(1))

let test_select_inverse_cost_biased () =
  let g = Graph.create 2 in
  let pop = [| (g, 1.0); (g, 100.0) |] in
  let rng = Prng.create 13 in
  let low = ref 0 in
  for _ = 1 to 1000 do
    if Operators.select_inverse_cost pop rng = 0 then incr low
  done;
  (* weight 1 vs 0.01 → index 0 ≈ 99 %. *)
  Alcotest.(check bool) "cheap topology strongly preferred" true (!low > 950)

let test_select_infeasible_excluded () =
  let g = Graph.create 2 in
  let pop = [| (g, infinity); (g, 2.0) |] in
  let rng = Prng.create 14 in
  for _ = 1 to 50 do
    Alcotest.(check int) "never infeasible" 1 (Operators.select_inverse_cost pop rng)
  done

let test_crossover_identical_parents () =
  let ctx = ctx_of 15 8 in
  let parent = Cold.Heuristics.mst_topology ctx in
  let rng = Prng.create 16 in
  let child = Operators.crossover ctx ~parents:[| (parent, 10.0); (parent, 10.0) |] rng in
  Alcotest.(check bool) "child of identical parents is the parent" true
    (Graph.equal child parent)

let test_crossover_connected () =
  let ctx = ctx_of 17 10 in
  let rng = Prng.create 18 in
  let a = Cold.Heuristics.mst_topology ctx in
  let b = Cold.Heuristics.clique_topology ctx in
  for _ = 1 to 30 do
    let child = Operators.crossover ctx ~parents:[| (a, 5.0); (b, 20.0) |] rng in
    Alcotest.(check bool) "connected" true (Traversal.is_connected child)
  done

let test_crossover_gene_mix () =
  (* Every child edge must exist in at least one parent or come from repair;
     with both parents sharing an edge, the child always has it. *)
  let ctx = ctx_of 19 8 in
  let rng = Prng.create 20 in
  let a = Cold.Heuristics.mst_topology ctx in
  let b = Graph.copy a in
  Graph.add_edge b 0 (if Graph.mem_edge a 0 1 then 2 else 1);
  let shared = Graph.edges a in
  for _ = 1 to 10 do
    let child = Operators.crossover ctx ~parents:[| (a, 1.0); (b, 1.0) |] rng in
    List.iter
      (fun (u, v) ->
        Alcotest.(check bool) "shared edges inherited" true (Graph.mem_edge child u v))
      shared
  done

let test_link_mutation_keeps_connected () =
  let ctx = ctx_of 21 10 in
  let rng = Prng.create 22 in
  for _ = 1 to 50 do
    let g = Cold.Heuristics.mst_topology ctx in
    Operators.link_mutation ctx g rng;
    Alcotest.(check bool) "connected" true (Traversal.is_connected g)
  done

let test_node_mutation_creates_leaf () =
  let ctx = ctx_of 23 10 in
  let rng = Prng.create 24 in
  for _ = 1 to 50 do
    let g = Cold.Heuristics.clique_topology ctx in
    Operators.node_mutation ctx g rng;
    Alcotest.(check bool) "connected" true (Traversal.is_connected g);
    (* Some node must now be a leaf (cliques have none). *)
    Alcotest.(check bool) "a leaf exists" true (Cold_metrics.Degree.leaf_count g >= 1)
  done

let test_node_mutation_noop_without_hubs () =
  let ctx = ctx_of 25 2 in
  let rng = Prng.create 26 in
  let g = Graph.of_edges 2 [ (0, 1) ] in
  Operators.node_mutation ctx g rng;
  Alcotest.(check int) "unchanged" 1 (Graph.edge_count g)

let test_repair () =
  let ctx = ctx_of 27 8 in
  let g = Graph.create 8 in
  let added = Repair.repair ctx g in
  Alcotest.(check int) "tree added" 7 added;
  Alcotest.(check bool) "connected" true (Traversal.is_connected g);
  Alcotest.(check int) "no-op on connected" 0 (Repair.repair ctx g);
  Alcotest.(check bool) "feasible" true (Repair.is_feasible ctx g)

let qcheck_ga_population_invariants =
  QCheck.Test.make ~name:"GA final population sorted, sized, connected" ~count:6
    QCheck.(int_range 0 1000)
    (fun seed ->
      let ctx = ctx_of seed 8 in
      let r = Ga.run small_settings (Cost.params ()) ctx (Prng.create (seed + 7)) in
      let pop = r.Ga.final_population in
      Array.length pop = small_settings.Ga.population_size
      && snd pop.(0) = r.Ga.best_cost
      && (let sorted = ref true in
          for i = 0 to Array.length pop - 2 do
            if snd pop.(i) > snd pop.(i + 1) then sorted := false
          done;
          !sorted)
      && Array.for_all (fun (g, _) -> Traversal.is_connected g) pop)

let qcheck_ga_never_worse_than_seeds =
  QCheck.Test.make ~name:"GA never worse than its seeds" ~count:8
    QCheck.(int_range 0 1000)
    (fun seed ->
      let ctx = ctx_of seed 8 in
      let p = Cost.params ~k2:3e-4 () in
      let mst = Cold.Heuristics.mst_topology ctx in
      let seeds = [ mst ] in
      let r = Ga.run ~seeds small_settings p ctx (Prng.create (seed + 1)) in
      r.Ga.best_cost <= Cost.evaluate p ctx mst +. 1e-9)

let () =
  Alcotest.run "cold_ga"
    [
      ( "settings",
        [
          Alcotest.test_case "valid defaults" `Quick test_validate_ok;
          Alcotest.test_case "invalid settings" `Quick test_validate_errors;
        ] );
      ( "run",
        [
          Alcotest.test_case "connected outputs" `Quick test_run_returns_connected;
          Alcotest.test_case "deterministic" `Quick test_run_deterministic;
          Alcotest.test_case "history monotone" `Quick test_history_monotone;
          Alcotest.test_case "beats MST and clique seeds" `Quick
            test_improves_over_mst_and_clique;
          Alcotest.test_case "seeds respected" `Quick test_seeds_respected;
          Alcotest.test_case "seed size mismatch" `Quick test_seed_size_mismatch;
          Alcotest.test_case "optimal for small n (4 corners)" `Slow
            test_finds_optimum_small_n;
        ] );
      ( "operators",
        [
          Alcotest.test_case "tournament" `Quick test_tournament;
          Alcotest.test_case "inverse-cost selection" `Quick
            test_select_inverse_cost_biased;
          Alcotest.test_case "infeasible excluded" `Quick test_select_infeasible_excluded;
          Alcotest.test_case "crossover identical parents" `Quick
            test_crossover_identical_parents;
          Alcotest.test_case "crossover connected" `Quick test_crossover_connected;
          Alcotest.test_case "crossover inherits shared genes" `Quick
            test_crossover_gene_mix;
          Alcotest.test_case "link mutation connected" `Quick
            test_link_mutation_keeps_connected;
          Alcotest.test_case "node mutation leafifies" `Quick
            test_node_mutation_creates_leaf;
          Alcotest.test_case "node mutation no hubs" `Quick
            test_node_mutation_noop_without_hubs;
          Alcotest.test_case "repair" `Quick test_repair;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_ga_never_worse_than_seeds;
          QCheck_alcotest.to_alcotest qcheck_ga_population_invariants;
        ] );
    ]
