(* Tests for Cold_geom: points, regions, point processes, distance matrix. *)

module Prng = Cold_prng.Prng
module Point = Cold_geom.Point
module Region = Cold_geom.Region
module Point_process = Cold_geom.Point_process
module Distmat = Cold_geom.Distmat

let feq = Alcotest.(check (float 1e-9))

let test_distance () =
  feq "3-4-5 triangle" 5.0 (Point.distance (Point.make 0.0 0.0) (Point.make 3.0 4.0));
  feq "zero distance" 0.0 (Point.distance (Point.make 1.0 1.0) (Point.make 1.0 1.0));
  feq "distance_sq" 25.0 (Point.distance_sq (Point.make 0.0 0.0) (Point.make 3.0 4.0))

let test_midpoint () =
  let m = Point.midpoint (Point.make 0.0 0.0) (Point.make 2.0 4.0) in
  feq "mid x" 1.0 m.Point.x;
  feq "mid y" 2.0 m.Point.y

let test_point_equal_pp () =
  Alcotest.(check bool) "equal" true (Point.equal (Point.make 1.0 2.0) (Point.make 1.0 2.0));
  Alcotest.(check bool) "not equal" false (Point.equal (Point.make 1.0 2.0) (Point.make 2.0 1.0));
  Alcotest.(check string) "pp" "(1.0000, 2.0000)"
    (Format.asprintf "%a" Point.pp (Point.make 1.0 2.0))

let test_unit_square_sampling () =
  let g = Prng.create 1 in
  for _ = 1 to 1000 do
    let p = Region.sample Region.unit_square g in
    Alcotest.(check bool) "in region" true (Region.contains Region.unit_square p)
  done

let test_rectangle () =
  let r = Region.rectangle ~aspect:4.0 ~area:1.0 in
  feq "area" 1.0 (Region.area r);
  (match r with
  | Region.Rectangle { width; height } ->
    feq "aspect" 4.0 (width /. height)
  | _ -> Alcotest.fail "expected rectangle");
  let g = Prng.create 2 in
  for _ = 1 to 500 do
    Alcotest.(check bool) "sample inside" true (Region.contains r (Region.sample r g))
  done;
  Alcotest.check_raises "bad aspect"
    (Invalid_argument "Region.rectangle: aspect and area must be positive") (fun () ->
      ignore (Region.rectangle ~aspect:0.0 ~area:1.0))

let test_disk () =
  let d = Region.disk ~radius:2.0 in
  feq "diameter" 4.0 (Region.diameter d);
  let g = Prng.create 3 in
  for _ = 1 to 500 do
    Alcotest.(check bool) "sample inside" true (Region.contains d (Region.sample d g))
  done

let test_region_diameter () =
  feq "unit square diagonal" (sqrt 2.0) (Region.diameter Region.unit_square);
  let r = Region.rectangle ~aspect:1.0 ~area:4.0 in
  feq "2x2 diagonal" (2.0 *. sqrt 2.0) (Region.diameter r)

let test_uniform_process () =
  let g = Prng.create 4 in
  let pts =
    Point_process.generate Point_process.Uniform ~region:Region.unit_square ~n:100 g
  in
  Alcotest.(check int) "count" 100 (Array.length pts);
  Array.iter
    (fun p ->
      Alcotest.(check bool) "inside" true (Region.contains Region.unit_square p))
    pts

let test_uniform_process_deterministic () =
  let gen () =
    Point_process.generate Point_process.Uniform ~region:Region.unit_square ~n:10
      (Prng.create 99)
  in
  let a = gen () and b = gen () in
  Array.iteri
    (fun i p -> Alcotest.(check bool) "same points" true (Point.equal p b.(i)))
    a

let test_bursty_process () =
  let g = Prng.create 5 in
  let spec = Point_process.Bursty { clusters = 4; sigma = 0.05 } in
  let pts = Point_process.generate spec ~region:Region.unit_square ~n:80 g in
  Alcotest.(check int) "count" 80 (Array.length pts);
  Array.iter
    (fun p -> Alcotest.(check bool) "inside" true (Region.contains Region.unit_square p))
    pts

let test_bursty_is_clustered () =
  (* Mean nearest-neighbour distance should be smaller for the bursty process
     than for uniform at the same intensity. *)
  let nn_mean pts =
    let d = Distmat.of_points pts in
    let n = Distmat.size d in
    let total = ref 0.0 in
    for i = 0 to n - 1 do
      match Distmat.nearest d i ~except:(fun _ -> false) with
      | Some j -> total := !total +. Distmat.get d i j
      | None -> ()
    done;
    !total /. float_of_int n
  in
  let uniform =
    Point_process.generate Point_process.Uniform ~region:Region.unit_square ~n:200
      (Prng.create 6)
  in
  let bursty =
    Point_process.generate
      (Point_process.Bursty { clusters = 5; sigma = 0.02 })
      ~region:Region.unit_square ~n:200 (Prng.create 7)
  in
  Alcotest.(check bool) "bursty has closer neighbours" true
    (nn_mean bursty < nn_mean uniform)

let test_bursty_invalid () =
  let g = Prng.create 8 in
  Alcotest.check_raises "no clusters"
    (Invalid_argument "Point_process: clusters must be positive") (fun () ->
      ignore
        (Point_process.generate
           (Point_process.Bursty { clusters = 0; sigma = 0.1 })
           ~region:Region.unit_square ~n:10 g))

let test_jittered_grid () =
  let g = Prng.create 9 in
  let pts =
    Point_process.generate
      (Point_process.Jittered_grid { jitter = 0.2 })
      ~region:Region.unit_square ~n:49 g
  in
  Alcotest.(check int) "count" 49 (Array.length pts);
  Array.iter
    (fun p -> Alcotest.(check bool) "inside" true (Region.contains Region.unit_square p))
    pts

let test_poisson_process () =
  let g = Prng.create 20 in
  (* Mean count over draws should approach intensity * area. *)
  let total = ref 0 in
  let draws = 300 in
  for _ = 1 to draws do
    let pts =
      Point_process.generate Point_process.Uniform ~region:Region.unit_square
        ~n:0 g
    in
    ignore pts;
    let pts =
      Point_process.poisson Point_process.Uniform ~region:Region.unit_square
        ~intensity:25.0 g
    in
    total := !total + Array.length pts;
    Array.iter
      (fun p ->
        Alcotest.(check bool) "inside" true (Region.contains Region.unit_square p))
      pts
  done;
  let mean = float_of_int !total /. float_of_int draws in
  Alcotest.(check bool)
    (Printf.sprintf "mean count near 25 (got %.1f)" mean)
    true
    (Float.abs (mean -. 25.0) < 1.5);
  Alcotest.check_raises "negative intensity"
    (Invalid_argument "Point_process.poisson: intensity must be non-negative")
    (fun () ->
      ignore
        (Point_process.poisson Point_process.Uniform ~region:Region.unit_square
           ~intensity:(-1.0) g))

let test_negative_n () =
  let g = Prng.create 10 in
  Alcotest.check_raises "negative n"
    (Invalid_argument "Point_process.generate: n must be non-negative") (fun () ->
      ignore
        (Point_process.generate Point_process.Uniform ~region:Region.unit_square
           ~n:(-1) g))

let test_distmat_consistency () =
  let g = Prng.create 11 in
  let pts =
    Point_process.generate Point_process.Uniform ~region:Region.unit_square ~n:20 g
  in
  let d = Distmat.of_points pts in
  Alcotest.(check int) "size" 20 (Distmat.size d);
  for i = 0 to 19 do
    feq "diagonal zero" 0.0 (Distmat.get d i i);
    for j = 0 to 19 do
      feq "matches Point.distance" (Point.distance pts.(i) pts.(j)) (Distmat.get d i j);
      feq "symmetric" (Distmat.get d i j) (Distmat.get d j i)
    done
  done

let test_distmat_max () =
  let pts = [| Point.make 0.0 0.0; Point.make 1.0 0.0; Point.make 0.2 0.1 |] in
  let d = Distmat.of_points pts in
  feq "max distance" 1.0 (Distmat.max_distance d)

let test_distmat_nearest () =
  let pts =
    [| Point.make 0.0 0.0; Point.make 1.0 0.0; Point.make 0.1 0.0; Point.make 0.5 0.0 |]
  in
  let d = Distmat.of_points pts in
  Alcotest.(check (option int)) "nearest to 0" (Some 2)
    (Distmat.nearest d 0 ~except:(fun _ -> false));
  Alcotest.(check (option int)) "nearest excluding 2" (Some 3)
    (Distmat.nearest d 0 ~except:(fun j -> j = 2));
  Alcotest.(check (option int)) "all excluded" None
    (Distmat.nearest d 0 ~except:(fun _ -> true))

let test_distmat_bounds () =
  let d = Distmat.of_points [| Point.make 0.0 0.0; Point.make 1.0 1.0 |] in
  Alcotest.check_raises "out of range" (Invalid_argument "Distmat.get") (fun () ->
      ignore (Distmat.get d 0 2))

let qcheck_triangle_inequality =
  QCheck.Test.make ~name:"Euclidean triangle inequality" ~count:500
    QCheck.(triple (pair (float_bound_inclusive 10.) (float_bound_inclusive 10.))
              (pair (float_bound_inclusive 10.) (float_bound_inclusive 10.))
              (pair (float_bound_inclusive 10.) (float_bound_inclusive 10.)))
    (fun ((ax, ay), (bx, by), (cx, cy)) ->
      let a = Point.make ax ay and b = Point.make bx by and c = Point.make cx cy in
      Point.distance a c <= Point.distance a b +. Point.distance b c +. 1e-9)

let () =
  Alcotest.run "cold_geom"
    [
      ( "point",
        [
          Alcotest.test_case "distance" `Quick test_distance;
          Alcotest.test_case "midpoint" `Quick test_midpoint;
          Alcotest.test_case "equal/pp" `Quick test_point_equal_pp;
        ] );
      ( "region",
        [
          Alcotest.test_case "unit square sampling" `Quick test_unit_square_sampling;
          Alcotest.test_case "rectangle" `Quick test_rectangle;
          Alcotest.test_case "disk" `Quick test_disk;
          Alcotest.test_case "diameter" `Quick test_region_diameter;
        ] );
      ( "point_process",
        [
          Alcotest.test_case "uniform" `Quick test_uniform_process;
          Alcotest.test_case "uniform deterministic" `Quick
            test_uniform_process_deterministic;
          Alcotest.test_case "bursty" `Quick test_bursty_process;
          Alcotest.test_case "bursty clusters" `Quick test_bursty_is_clustered;
          Alcotest.test_case "bursty invalid" `Quick test_bursty_invalid;
          Alcotest.test_case "jittered grid" `Quick test_jittered_grid;
          Alcotest.test_case "poisson count" `Quick test_poisson_process;
          Alcotest.test_case "negative n" `Quick test_negative_n;
        ] );
      ( "distmat",
        [
          Alcotest.test_case "consistency" `Quick test_distmat_consistency;
          Alcotest.test_case "max" `Quick test_distmat_max;
          Alcotest.test_case "nearest" `Quick test_distmat_nearest;
          Alcotest.test_case "bounds" `Quick test_distmat_bounds;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_triangle_inequality ]);
    ]
