(* Tests for the §5 greedy hub heuristics. *)

module Graph = Cold_graph.Graph
module Traversal = Cold_graph.Traversal
module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Cost = Cold.Cost
module Heuristics = Cold.Heuristics

let ctx_of seed n = Context.generate (Context.default_spec ~n) (Prng.create seed)

let test_names () =
  Alcotest.(check string) "complete" "complete" (Heuristics.name Heuristics.Complete);
  Alcotest.(check string) "random greedy" "random greedy"
    (Heuristics.name (Heuristics.Random_greedy { permutations = 3 }));
  Alcotest.(check int) "all four" 4 (List.length (Heuristics.all ~permutations:3))

let test_best_star_structure () =
  let ctx = ctx_of 1 10 in
  let (star, cost) = Heuristics.best_star (Cost.params ()) ctx in
  Alcotest.(check int) "star edges" 9 (Graph.edge_count star);
  Alcotest.(check int) "one hub" 1 (Cold_metrics.Degree.hub_count star);
  Alcotest.(check bool) "finite" true (Float.is_finite cost)

let test_best_star_is_best () =
  (* Exhaustively check the best star beats every other star. *)
  let ctx = ctx_of 2 8 in
  let p = Cost.params ~k3:20.0 () in
  let (_, best) = Heuristics.best_star p ctx in
  for hub = 0 to 7 do
    let g = Graph.create 8 in
    for v = 0 to 7 do
      if v <> hub then Graph.add_edge g hub v
    done;
    Alcotest.(check bool) "no star beats it" true (Cost.evaluate p ctx g >= best -. 1e-9)
  done

let test_mst_and_clique_topologies () =
  let ctx = ctx_of 3 9 in
  let mst = Heuristics.mst_topology ctx in
  Alcotest.(check int) "mst edges" 8 (Graph.edge_count mst);
  Alcotest.(check bool) "mst connected" true (Traversal.is_connected mst);
  Alcotest.(check int) "clique edges" 36 (Graph.edge_count (Heuristics.clique_topology ctx))

let all_algorithms = Heuristics.all ~permutations:4

let test_outputs_connected () =
  let ctx = ctx_of 4 15 in
  let p = Cost.params ~k2:2e-4 ~k3:10.0 () in
  List.iter
    (fun alg ->
      let (g, c) = Heuristics.run alg p ctx (Prng.create 5) in
      Alcotest.(check bool)
        (Heuristics.name alg ^ " connected")
        true (Traversal.is_connected g);
      Alcotest.(check (float 1e-6))
        (Heuristics.name alg ^ " cost agrees with evaluate")
        (Cost.evaluate p ctx g) c)
    all_algorithms

let test_never_worse_than_star () =
  let ctx = ctx_of 6 15 in
  let p = Cost.params ~k3:50.0 () in
  let (_, star_cost) = Heuristics.best_star p ctx in
  List.iter
    (fun alg ->
      let (_, c) = Heuristics.run alg p ctx (Prng.create 7) in
      Alcotest.(check bool)
        (Heuristics.name alg ^ " <= star")
        true (c <= star_cost +. 1e-9))
    all_algorithms

let test_deterministic () =
  let p = Cost.params ~k2:1e-4 () in
  List.iter
    (fun alg ->
      let run () =
        let ctx = ctx_of 8 12 in
        snd (Heuristics.run alg p ctx (Prng.create 9))
      in
      Alcotest.(check (float 1e-9)) (Heuristics.name alg ^ " deterministic") (run ())
        (run ()))
    all_algorithms

let test_near_optimal_small_n () =
  (* On 6 nodes the heuristics should be within 20 % of the brute-force
     optimum at moderate parameters (they are competitive algorithms, §5). *)
  let ctx = ctx_of 10 6 in
  let p = Cost.params ~k2:2e-4 ~k3:5.0 () in
  let (_, opt) = Cold.Brute_force.optimal p ctx in
  List.iter
    (fun alg ->
      let (_, c) = Heuristics.run alg p ctx (Prng.create 11) in
      Alcotest.(check bool)
        (Printf.sprintf "%s within 20%% (got %.2f vs %.2f)" (Heuristics.name alg) c opt)
        true
        (c <= 1.2 *. opt))
    all_algorithms

let test_k3_dominant_yields_star () =
  (* With an overwhelming hub cost every heuristic should end hub-and-spoke. *)
  let ctx = ctx_of 12 10 in
  let p = Cost.params ~k3:100_000.0 () in
  List.iter
    (fun alg ->
      let (g, _) = Heuristics.run alg p ctx (Prng.create 13) in
      Alcotest.(check int) (Heuristics.name alg ^ " single hub") 1
        (Cold_metrics.Degree.hub_count g))
    all_algorithms

let test_seed_set () =
  let ctx = ctx_of 14 10 in
  let seeds = Heuristics.seed_set ~permutations:3 (Cost.params ()) ctx (Prng.create 15) in
  Alcotest.(check int) "five seeds (star + 4 heuristics)" 5 (List.length seeds);
  List.iter
    (fun g ->
      Alcotest.(check int) "right size" 10 (Graph.node_count g);
      Alcotest.(check bool) "connected" true (Traversal.is_connected g))
    seeds

let test_too_small () =
  let ctx = ctx_of 16 1 in
  Alcotest.check_raises "one PoP" (Invalid_argument "Heuristics.run: need at least 2 PoPs")
    (fun () -> ignore (Heuristics.run Heuristics.Complete (Cost.params ()) ctx (Prng.create 1)))

let () =
  Alcotest.run "cold_heuristics"
    [
      ( "heuristics",
        [
          Alcotest.test_case "names" `Quick test_names;
          Alcotest.test_case "best star structure" `Quick test_best_star_structure;
          Alcotest.test_case "best star optimal among stars" `Quick test_best_star_is_best;
          Alcotest.test_case "mst/clique topologies" `Quick test_mst_and_clique_topologies;
          Alcotest.test_case "outputs connected + cost consistent" `Quick
            test_outputs_connected;
          Alcotest.test_case "never worse than star" `Quick test_never_worse_than_star;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "near optimal small n" `Slow test_near_optimal_small_n;
          Alcotest.test_case "k3 dominant -> star" `Quick test_k3_dominant_yields_star;
          Alcotest.test_case "seed set" `Quick test_seed_set;
          Alcotest.test_case "too small" `Quick test_too_small;
        ] );
    ]
