(* Tests for Cold_metrics on graphs with hand-computable statistics. *)

module Graph = Cold_graph.Graph
module Builders = Cold_graph.Builders
module Degree = Cold_metrics.Degree
module Clustering = Cold_metrics.Clustering
module Distance_metrics = Cold_metrics.Distance_metrics
module Assortativity = Cold_metrics.Assortativity
module Betweenness = Cold_metrics.Betweenness
module Summary = Cold_metrics.Summary

let feq = Alcotest.(check (float 1e-9))
let feq4 = Alcotest.(check (float 1e-4))

let test_average_degree () =
  feq "cycle" 2.0 (Degree.average (Builders.cycle 7));
  feq "star" (8.0 /. 5.0) (Degree.average (Builders.star 5));
  feq "tree bound 2-2/n" (2.0 -. (2.0 /. 10.0)) (Degree.average (Builders.path 10));
  feq "empty" 0.0 (Degree.average (Graph.create 0))

let test_cvnd () =
  feq "regular graph" 0.0 (Degree.coefficient_of_variation (Builders.cycle 8));
  (* Star on n: mean = 2(n-1)/n; hub n-1, leaves 1. Hand value for n=5:
     degrees [4;1;1;1;1], mean=1.6, pop-var=(4-1.6)^2+4*(1-1.6)^2 all /5 = (5.76+1.44)/5=1.44,
     std=1.2, CV=0.75. *)
  feq4 "star 5" 0.75 (Degree.coefficient_of_variation (Builders.star 5));
  (* Large stars exceed CVND 1 — the paper's hub-and-spoke regime. *)
  Alcotest.(check bool) "star 20 over 1" true
    (Degree.coefficient_of_variation (Builders.star 20) > 1.0);
  feq "no edges" 0.0 (Degree.coefficient_of_variation (Graph.create 4))

let test_distribution_and_entropy () =
  Alcotest.(check (list (pair int int))) "star distribution" [ (1, 4); (4, 1) ]
    (Degree.distribution (Builders.star 5));
  feq "regular entropy" 0.0 (Degree.entropy (Builders.cycle 6));
  (* Star 5 entropy: -(4/5)ln(4/5) - (1/5)ln(1/5). *)
  feq4 "star entropy"
    (-.((4.0 /. 5.0) *. log (4.0 /. 5.0)) -. ((1.0 /. 5.0) *. log (1.0 /. 5.0)))
    (Degree.entropy (Builders.star 5))

let test_hubs_leaves () =
  let g = Builders.star 6 in
  Alcotest.(check int) "hubs" 1 (Degree.hub_count g);
  Alcotest.(check int) "leaves" 5 (Degree.leaf_count g);
  feq "leaf fraction" (5.0 /. 6.0) (Degree.leaf_fraction g);
  Alcotest.(check int) "max degree" 5 (Degree.max_degree g);
  Alcotest.(check int) "cycle hubs" 5 (Degree.hub_count (Builders.cycle 5))

let test_triangles () =
  Alcotest.(check int) "K4 triangles" 4 (Clustering.triangle_count (Graph.complete 4));
  Alcotest.(check int) "K5 triangles" 10 (Clustering.triangle_count (Graph.complete 5));
  Alcotest.(check int) "tree no triangles" 0 (Clustering.triangle_count (Builders.path 6));
  Alcotest.(check int) "cycle4 no triangles" 0 (Clustering.triangle_count (Builders.cycle 4))

let test_wedges () =
  (* Path 3: one wedge at the centre. *)
  Alcotest.(check int) "path3 wedges" 1 (Clustering.wedge_count (Builders.path 3));
  (* K4: each vertex C(3,2)=3 wedges → 12. *)
  Alcotest.(check int) "K4 wedges" 12 (Clustering.wedge_count (Graph.complete 4))

let test_global_clustering () =
  feq "clique gcc" 1.0 (Clustering.global (Graph.complete 5));
  feq "tree gcc" 0.0 (Clustering.global (Builders.path 5));
  feq "no wedges" 0.0 (Clustering.global (Graph.create 3));
  (* Triangle with a pendant: triangles=1, wedges: deg [2,2,3,1]:
     C(2,2)*2 + C(3,2) + 0 = 1+1+3 = 5; gcc = 3/5. *)
  let paw = Graph.of_edges 4 [ (0, 1); (1, 2); (0, 2); (2, 3) ] in
  feq "paw gcc" 0.6 (Clustering.global paw)

let test_local_clustering () =
  let paw = Graph.of_edges 4 [ (0, 1); (1, 2); (0, 2); (2, 3) ] in
  feq "leaf 0" 0.0 (Clustering.local_coefficient paw 3);
  feq "vertex 0" 1.0 (Clustering.local_coefficient paw 0);
  feq "vertex 2 (deg 3, one closed pair)" (1.0 /. 3.0)
    (Clustering.local_coefficient paw 2);
  feq "average" ((1.0 +. 1.0 +. (1.0 /. 3.0) +. 0.0) /. 4.0)
    (Clustering.average_local paw)

let test_diameter () =
  Alcotest.(check int) "path" 6 (Distance_metrics.diameter (Builders.path 7));
  Alcotest.(check int) "cycle even" 3 (Distance_metrics.diameter (Builders.cycle 6));
  Alcotest.(check int) "star" 2 (Distance_metrics.diameter (Builders.star 8));
  Alcotest.(check int) "clique" 1 (Distance_metrics.diameter (Graph.complete 5));
  Alcotest.(check int) "disconnected" (-1) (Distance_metrics.diameter (Graph.create 3));
  Alcotest.(check int) "trivial" 0 (Distance_metrics.diameter (Graph.create 1))

let test_radius_eccentricity () =
  let p = Builders.path 5 in
  Alcotest.(check int) "end eccentricity" 4 (Distance_metrics.eccentricity p 0);
  Alcotest.(check int) "centre eccentricity" 2 (Distance_metrics.eccentricity p 2);
  Alcotest.(check int) "radius" 2 (Distance_metrics.radius p);
  Alcotest.(check int) "disconnected radius" (-1) (Distance_metrics.radius (Graph.create 2))

let test_aspl () =
  (* Path 3: pairs (0,1)=1 (0,2)=2 (1,2)=1 → mean 4/3. *)
  feq4 "path3" (4.0 /. 3.0) (Distance_metrics.average_shortest_path (Builders.path 3));
  feq "clique" 1.0 (Distance_metrics.average_shortest_path (Graph.complete 6))

let test_assortativity () =
  (* Stars are maximally disassortative: r = -1. *)
  feq4 "star" (-1.0) (Assortativity.degree_assortativity (Builders.star 10));
  (* Regular graphs: zero variance → nan. *)
  Alcotest.(check bool) "cycle nan" true
    (Float.is_nan (Assortativity.degree_assortativity (Builders.cycle 6)));
  Alcotest.(check bool) "empty nan" true
    (Float.is_nan (Assortativity.degree_assortativity (Graph.create 3)))

let test_betweenness_nodes () =
  (* Star: centre lies on all C(n-1,2) pairs. *)
  let bc = Betweenness.nodes (Builders.star 6) in
  feq "star centre" 10.0 bc.(0);
  feq "star leaf" 0.0 bc.(3);
  (* Path 4: vertex 1 lies on pairs (0,2),(0,3) → 2; symmetric for 2. *)
  let bp = Betweenness.nodes (Builders.path 4) in
  feq "path inner" 2.0 bp.(1);
  feq "path end" 0.0 bp.(0)

let test_betweenness_split_paths () =
  (* Cycle 4: pair (0,2) has two shortest paths via 1 and 3 → each carries 0.5. *)
  let bc = Betweenness.nodes (Builders.cycle 4) in
  feq "split evenly" 0.5 bc.(1)

let test_edge_betweenness () =
  let eb = Betweenness.edges (Builders.path 3) in
  (* Edge (0,1): pairs (0,1) and (0,2) → 2. *)
  let find (u, v) = List.assoc (u, v) eb in
  feq "edge 0-1" 2.0 (find (0, 1));
  feq "edge 1-2" 2.0 (find (1, 2))

let test_summary () =
  let s = Summary.compute (Builders.star 5) in
  Alcotest.(check int) "nodes" 5 s.Summary.nodes;
  Alcotest.(check int) "edges" 4 s.Summary.edges;
  Alcotest.(check bool) "connected" true s.Summary.connected;
  Alcotest.(check int) "hubs" 1 s.Summary.hubs;
  Alcotest.(check int) "diameter" 2 s.Summary.diameter;
  feq4 "cvnd" 0.75 s.Summary.cvnd;
  (* CSV row round shape: same column count as header. *)
  let cols s = List.length (String.split_on_char ',' s) in
  Alcotest.(check int) "csv columns" (cols Summary.to_csv_header)
    (cols (Summary.to_csv_row s))

let qcheck_gcc_range =
  QCheck.Test.make ~name:"global clustering in [0,1]" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_bound 40) (pair (int_bound 9) (int_bound 9)))
    (fun pairs ->
      let g = Graph.create 10 in
      List.iter (fun (u, v) -> if u <> v then Graph.add_edge g u v) pairs;
      let c = Clustering.global g in
      c >= 0.0 && c <= 1.0 +. 1e-9)

let qcheck_triangle_wedge =
  QCheck.Test.make ~name:"3*triangles <= wedges" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_bound 40) (pair (int_bound 9) (int_bound 9)))
    (fun pairs ->
      let g = Graph.create 10 in
      List.iter (fun (u, v) -> if u <> v then Graph.add_edge g u v) pairs;
      3 * Clustering.triangle_count g <= Clustering.wedge_count g)

let () =
  Alcotest.run "cold_metrics"
    [
      ( "degree",
        [
          Alcotest.test_case "average" `Quick test_average_degree;
          Alcotest.test_case "cvnd" `Quick test_cvnd;
          Alcotest.test_case "distribution/entropy" `Quick test_distribution_and_entropy;
          Alcotest.test_case "hubs/leaves" `Quick test_hubs_leaves;
        ] );
      ( "clustering",
        [
          Alcotest.test_case "triangles" `Quick test_triangles;
          Alcotest.test_case "wedges" `Quick test_wedges;
          Alcotest.test_case "global" `Quick test_global_clustering;
          Alcotest.test_case "local" `Quick test_local_clustering;
        ] );
      ( "distance",
        [
          Alcotest.test_case "diameter" `Quick test_diameter;
          Alcotest.test_case "radius/eccentricity" `Quick test_radius_eccentricity;
          Alcotest.test_case "aspl" `Quick test_aspl;
        ] );
      ("assortativity", [ Alcotest.test_case "known values" `Quick test_assortativity ]);
      ( "betweenness",
        [
          Alcotest.test_case "nodes" `Quick test_betweenness_nodes;
          Alcotest.test_case "split paths" `Quick test_betweenness_split_paths;
          Alcotest.test_case "edges" `Quick test_edge_betweenness;
        ] );
      ("summary", [ Alcotest.test_case "fields" `Quick test_summary ]);
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_gcc_range;
          QCheck_alcotest.to_alcotest qcheck_triangle_wedge;
        ] );
    ]
