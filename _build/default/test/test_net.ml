(* Tests for Cold_net: routing, load accumulation, capacities, networks. *)

module Graph = Cold_graph.Graph
module Builders = Cold_graph.Builders
module Prng = Cold_prng.Prng
module Point = Cold_geom.Point
module Context = Cold_context.Context
module Gravity = Cold_traffic.Gravity
module Routing = Cold_net.Routing
module Capacity = Cold_net.Capacity
module Network = Cold_net.Network

let feq = Alcotest.(check (float 1e-6))

(* A 3-PoP line: 0 --- 1 --- 2, unit spacing, populations 1,2,3. *)
let line_context () =
  Context.of_points_and_populations
    [| Point.make 0.0 0.0; Point.make 1.0 0.0; Point.make 2.0 0.0 |]
    [| 1.0; 2.0; 3.0 |]

let test_route_line () =
  let ctx = line_context () in
  let g = Builders.path 3 in
  let loads =
    Routing.route g ~length:(fun u v -> Context.distance ctx u v) ~tm:ctx.Context.tm
  in
  (* Demands (both directions summed): t(0,1)=2·2=4, t(1,2)=2·6=12, t(0,2)=2·3=6.
     Link (0,1) carries pairs {0,1} and {0,2}: 4 + 6 = 10.
     Link (1,2) carries pairs {1,2} and {0,2}: 12 + 6 = 18. *)
  feq "link 0-1" 10.0 (Routing.load loads 0 1);
  feq "link 1-2" 18.0 (Routing.load loads 1 2);
  feq "non-link" 0.0 (Routing.load loads 0 2)

let test_route_shortcut () =
  (* Add the direct link 0-2 (length 2 = path length): tie resolved towards
     the smaller predecessor, so pair {0,2} uses the direct link (pred 0 over
     pred 1). *)
  let ctx = line_context () in
  let g = Graph.of_edges 3 [ (0, 1); (1, 2); (0, 2) ] in
  let loads =
    Routing.route g ~length:(fun u v -> Context.distance ctx u v) ~tm:ctx.Context.tm
  in
  feq "direct link takes pair 0-2" 6.0 (Routing.load loads 0 2);
  feq "link 0-1 only local" 4.0 (Routing.load loads 0 1);
  feq "link 1-2 only local" 12.0 (Routing.load loads 1 2)

let test_route_disconnected () =
  let ctx = line_context () in
  let g = Graph.of_edges 3 [ (0, 1) ] in
  Alcotest.check_raises "disconnected" Routing.Disconnected (fun () ->
      ignore
        (Routing.route g ~length:(fun u v -> Context.distance ctx u v)
           ~tm:ctx.Context.tm))

let test_total_volume_length () =
  let ctx = line_context () in
  let g = Builders.path 3 in
  let length u v = Context.distance ctx u v in
  let loads = Routing.route g ~length ~tm:ctx.Context.tm in
  (* Σ_r t_r L_r: pair 0-1: 4·1; 1-2: 12·1; 0-2: 6·2 = 28. *)
  feq "sum t_r L_r" 28.0 (Routing.total_volume_length loads ~length);
  feq "max load" 18.0 (Routing.max_load loads)

let test_fold_covers_links () =
  let ctx = line_context () in
  let g = Builders.path 3 in
  let loads =
    Routing.route g ~length:(fun u v -> Context.distance ctx u v) ~tm:ctx.Context.tm
  in
  let links = Routing.fold loads (fun acc u v _ -> (u, v) :: acc) [] in
  Alcotest.(check (list (pair int int))) "both links" [ (0, 1); (1, 2) ]
    (List.sort compare links)

let test_capacity_assign () =
  let ctx = line_context () in
  let g = Builders.path 3 in
  let loads =
    Routing.route g ~length:(fun u v -> Context.distance ctx u v) ~tm:ctx.Context.tm
  in
  let cap = Capacity.assign Capacity.default loads in
  feq "2x overprovision" 20.0 (Capacity.capacity cap 0 1);
  feq "symmetric" (Capacity.capacity cap 0 1) (Capacity.capacity cap 1 0);
  feq "absent pair" 0.0 (Capacity.capacity cap 0 2);
  feq "total" 56.0 (Capacity.total cap);
  feq "utilization 1/O" 0.5 (Capacity.utilization cap loads)

let test_capacity_modular () =
  let ctx = line_context () in
  let g = Builders.path 3 in
  let loads =
    Routing.route g ~length:(fun u v -> Context.distance ctx u v) ~tm:ctx.Context.tm
  in
  let cap =
    Capacity.assign { Capacity.overprovision = 1.0; module_size = Some 8.0 } loads
  in
  (* Loads 10 and 18 round up to 16 and 24. *)
  feq "rounded 0-1" 16.0 (Capacity.capacity cap 0 1);
  feq "rounded 1-2" 24.0 (Capacity.capacity cap 1 2)

let test_capacity_invalid () =
  let ctx = line_context () in
  let g = Builders.path 3 in
  let loads =
    Routing.route g ~length:(fun u v -> Context.distance ctx u v) ~tm:ctx.Context.tm
  in
  Alcotest.check_raises "overprovision < 1"
    (Invalid_argument "Capacity.assign: overprovision must be >= 1") (fun () ->
      ignore (Capacity.assign { Capacity.overprovision = 0.5; module_size = None } loads))

let test_network_build () =
  let ctx = line_context () in
  let net = Network.build ctx (Builders.path 3) in
  feq "link length" 1.0 (Network.link_length net 0 1);
  feq "total length" 2.0 (Network.total_link_length net);
  Alcotest.(check (list int)) "path 0->2" [ 0; 1; 2 ] (Network.path net 0 2);
  Alcotest.(check (list int)) "path reversed" [ 2; 1; 0 ] (Network.path net 2 0);
  Alcotest.(check (list int)) "self path" [ 1 ] (Network.path net 1 1);
  feq "path length" 2.0 (Network.path_length net 0 2)

let test_network_size_mismatch () =
  let ctx = line_context () in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Network.build: graph size does not match context") (fun () ->
      ignore (Network.build ctx (Builders.path 4)))

(* --- ECMP multipath ----------------------------------------------------------- *)

let diamond_context () =
  (* 0 at left, 3 at right, 1 above, 2 below: two equal-length 0-3 routes. *)
  Context.of_points_and_populations
    [| Point.make 0.0 0.0; Point.make 1.0 1.0; Point.make 1.0 (-1.0); Point.make 2.0 0.0 |]
    [| 1.0; 0.0; 0.0; 1.0 |]

let test_ecmp_splits_diamond () =
  let ctx = diamond_context () in
  let g = Graph.of_edges 4 [ (0, 1); (0, 2); (1, 3); (2, 3) ] in
  let length u v = Context.distance ctx u v in
  (* Only pair (0,3) has demand: 2 (1 each direction). *)
  let single = Routing.route g ~length ~tm:ctx.Context.tm in
  let ecmp = Routing.route ~multipath:true g ~length ~tm:ctx.Context.tm in
  (* Single path: all 2.0 on one side (tie-break via smaller pred: side 1). *)
  feq "single path concentrates" 2.0 (Routing.load single 0 1);
  feq "other side idle" 0.0 (Routing.load single 0 2);
  (* ECMP: 1.0 per side on every link. *)
  List.iter
    (fun (u, v) -> feq (Printf.sprintf "ecmp %d-%d" u v) 1.0 (Routing.load ecmp u v))
    [ (0, 1); (0, 2); (1, 3); (2, 3) ]

let test_ecmp_no_split_without_ties () =
  (* On the 3-PoP line there is a unique shortest path per pair: ECMP must
     agree with single-path routing exactly. *)
  let ctx = line_context () in
  let g = Builders.path 3 in
  let length u v = Context.distance ctx u v in
  let single = Routing.route g ~length ~tm:ctx.Context.tm in
  let ecmp = Routing.route ~multipath:true g ~length ~tm:ctx.Context.tm in
  Graph.iter_edges g (fun u v ->
      feq "identical loads" (Routing.load single u v) (Routing.load ecmp u v))

let test_ecmp_conserves_volume () =
  (* Total volume·length is invariant: ECMP only redistributes across
     equal-length paths. *)
  let ctx = diamond_context () in
  let g = Graph.of_edges 4 [ (0, 1); (0, 2); (1, 3); (2, 3); (0, 3) ] in
  let length u v = Context.distance ctx u v in
  let single = Routing.route g ~length ~tm:ctx.Context.tm in
  let ecmp = Routing.route ~multipath:true g ~length ~tm:ctx.Context.tm in
  feq "volume-length invariant"
    (Routing.total_volume_length single ~length)
    (Routing.total_volume_length ecmp ~length)

let test_ecmp_reduces_max_load () =
  (* A random meshy network: ECMP's max link load never exceeds
     single-path's. *)
  let rng = Prng.create 77 in
  for _ = 1 to 10 do
    let n = 10 in
    let g = Builders.random_tree n rng in
    for _ = 1 to n do
      let u = Prng.int rng n and v = Prng.int rng n in
      if u <> v then Graph.add_edge g u v
    done;
    let points = Array.init n (fun _ -> Point.make (Prng.float rng) (Prng.float rng)) in
    let pops = Array.init n (fun _ -> 1.0 +. Prng.float rng) in
    let ctx = Context.of_points_and_populations points pops in
    let length u v = Context.distance ctx u v in
    let single = Routing.route g ~length ~tm:ctx.Context.tm in
    let ecmp = Routing.route ~multipath:true g ~length ~tm:ctx.Context.tm in
    Alcotest.(check bool) "ecmp max load <= single" true
      (Routing.max_load ecmp <= Routing.max_load single +. 1e-6)
  done

(* --- stretch ---------------------------------------------------------------- *)

module Stretch = Cold_net.Stretch

let square_net topology =
  (* Unit square corners 0..3, uniform populations. *)
  let points =
    [| Point.make 0.0 0.0; Point.make 1.0 0.0; Point.make 1.0 1.0; Point.make 0.0 1.0 |]
  in
  let ctx = Context.of_points_and_populations points [| 1.0; 1.0; 1.0; 1.0 |] in
  Network.build ctx topology

let test_stretch_pairs () =
  let net = square_net (Builders.cycle 4) in
  feq "adjacent pair direct" 1.0 (Stretch.pair net 0 1);
  (* Diagonal 0-2: routed 2.0 over ring vs sqrt 2 direct. *)
  feq "diagonal detour" (2.0 /. sqrt 2.0) (Stretch.pair net 0 2)

let test_stretch_clique_is_one () =
  let net = square_net (Graph.complete 4) in
  let (mx, _) = Stretch.maximum net in
  feq "full mesh has stretch 1" 1.0 mx;
  feq "average 1" 1.0 (Stretch.average net)

let test_stretch_path_topology () =
  let net = square_net (Builders.path 4) in
  (* Pair (0,3): routed along 0-1-2-3 = 3.0 vs direct 1.0. *)
  feq "long way round" 3.0 (Stretch.pair net 0 3);
  let (mx, pair) = Stretch.maximum net in
  feq "worst is 0-3" 3.0 mx;
  Alcotest.(check (pair int int)) "worst pair" (0, 3) pair

let test_stretch_distribution () =
  let net = square_net (Builders.cycle 4) in
  let d = Stretch.distribution net in
  Alcotest.(check int) "C(4,2) pairs" 6 (Array.length d);
  Array.iter (fun x -> Alcotest.(check bool) "at least 1" true (x >= 1.0 -. 1e-9)) d

let test_stretch_errors () =
  let net = square_net (Builders.cycle 4) in
  Alcotest.check_raises "same endpoint" (Invalid_argument "Stretch.pair: bad endpoints")
    (fun () -> ignore (Stretch.pair net 1 1))

(* Property: on any random tree, the load on each edge equals the total
   demand across the cut the edge induces — flow conservation. *)
let qcheck_tree_cut_loads =
  QCheck.Test.make ~name:"tree edge load = demand across cut" ~count:60
    QCheck.(pair small_int (int_range 3 12))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let tree = Builders.random_tree n rng in
      let points =
        Array.init n (fun _ -> Point.make (Prng.float rng) (Prng.float rng))
      in
      let pops = Array.init n (fun _ -> 1.0 +. Prng.float rng) in
      let ctx = Context.of_points_and_populations points pops in
      let loads =
        Routing.route tree
          ~length:(fun u v -> Context.distance ctx u v)
          ~tm:ctx.Context.tm
      in
      Routing.fold loads
        (fun ok u v w ->
          if not ok then false
          else begin
            (* Remove (u,v); compute demand across the two components. *)
            let cut = Graph.copy tree in
            Graph.remove_edge cut u v;
            let (comp, _) = Cold_graph.Traversal.connected_components cut in
            let expected = ref 0.0 in
            for s = 0 to n - 1 do
              for d = s + 1 to n - 1 do
                if comp.(s) <> comp.(d) then
                  expected := !expected +. Gravity.pair_demand ctx.Context.tm s d
              done
            done;
            Float.abs (w -. !expected) <= 1e-6 *. (1.0 +. !expected)
          end)
        true)

(* Property: load conservation — total volume·length equals the demand-weighted
   routed path lengths computed independently via Dijkstra. *)
let qcheck_volume_length_consistency =
  QCheck.Test.make ~name:"Σ w·ℓ = Σ t_sd · dist(s,d)" ~count:40
    QCheck.(pair small_int (int_range 3 10))
    (fun (seed, n) ->
      let rng = Prng.create (seed + 1000) in
      (* Random connected graph: tree plus extra links. *)
      let g = Builders.random_tree n rng in
      for _ = 1 to n / 2 do
        let u = Prng.int rng n and v = Prng.int rng n in
        if u <> v then Graph.add_edge g u v
      done;
      let points =
        Array.init n (fun _ -> Point.make (Prng.float rng) (Prng.float rng))
      in
      let pops = Array.init n (fun _ -> 1.0 +. Prng.float rng) in
      let ctx = Context.of_points_and_populations points pops in
      let length u v = Context.distance ctx u v in
      let loads = Routing.route g ~length ~tm:ctx.Context.tm in
      let lhs = Routing.total_volume_length loads ~length in
      let rhs = ref 0.0 in
      for s = 0 to n - 1 do
        let t = Cold_graph.Shortest_path.dijkstra g ~length ~source:s in
        for d = s + 1 to n - 1 do
          rhs :=
            !rhs +. (Gravity.pair_demand ctx.Context.tm s d *. t.Cold_graph.Shortest_path.dist.(d))
        done
      done;
      Float.abs (lhs -. !rhs) <= 1e-6 *. (1.0 +. !rhs))

let () =
  Alcotest.run "cold_net"
    [
      ( "routing",
        [
          Alcotest.test_case "line loads" `Quick test_route_line;
          Alcotest.test_case "shortcut" `Quick test_route_shortcut;
          Alcotest.test_case "disconnected" `Quick test_route_disconnected;
          Alcotest.test_case "volume-length" `Quick test_total_volume_length;
          Alcotest.test_case "fold" `Quick test_fold_covers_links;
        ] );
      ( "capacity",
        [
          Alcotest.test_case "assign" `Quick test_capacity_assign;
          Alcotest.test_case "modular" `Quick test_capacity_modular;
          Alcotest.test_case "invalid" `Quick test_capacity_invalid;
        ] );
      ( "network",
        [
          Alcotest.test_case "build" `Quick test_network_build;
          Alcotest.test_case "size mismatch" `Quick test_network_size_mismatch;
        ] );
      ( "ecmp",
        [
          Alcotest.test_case "diamond split" `Quick test_ecmp_splits_diamond;
          Alcotest.test_case "no ties, no split" `Quick test_ecmp_no_split_without_ties;
          Alcotest.test_case "volume invariant" `Quick test_ecmp_conserves_volume;
          Alcotest.test_case "max load reduced" `Quick test_ecmp_reduces_max_load;
        ] );
      ( "stretch",
        [
          Alcotest.test_case "pairs" `Quick test_stretch_pairs;
          Alcotest.test_case "clique" `Quick test_stretch_clique_is_one;
          Alcotest.test_case "path" `Quick test_stretch_path_topology;
          Alcotest.test_case "distribution" `Quick test_stretch_distribution;
          Alcotest.test_case "errors" `Quick test_stretch_errors;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_tree_cut_loads;
          QCheck_alcotest.to_alcotest qcheck_volume_length_consistency;
        ] );
    ]
