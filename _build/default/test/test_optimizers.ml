(* Tests for Local_search (hill climbing / simulated annealing), the custom
   GA objective, and Evolution (incremental redesign). *)

module Graph = Cold_graph.Graph
module Traversal = Cold_graph.Traversal
module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Cost = Cold.Cost
module Ga = Cold.Ga
module Local_search = Cold.Local_search
module Evolution = Cold.Evolution
module Network = Cold_net.Network

let ctx_of seed n = Context.generate (Context.default_spec ~n) (Prng.create seed)

let quick_ls = { Local_search.default_settings with Local_search.iterations = 1500 }

(* --- local search ------------------------------------------------------------ *)

let test_ls_connected_and_improves () =
  let ctx = ctx_of 1 12 in
  let params = Cost.params ~k2:2e-4 () in
  let mst = Cold.Heuristics.mst_topology ctx in
  let start = Cost.evaluate params ctx mst in
  let r = Local_search.run quick_ls params ctx (Prng.create 2) in
  Alcotest.(check bool) "connected" true (Traversal.is_connected r.Local_search.best);
  Alcotest.(check bool) "never worse than start" true
    (r.Local_search.best_cost <= start +. 1e-9);
  Alcotest.(check bool) "cost consistent" true
    (Float.abs (Cost.evaluate params ctx r.Local_search.best -. r.Local_search.best_cost)
    < 1e-6)

let test_ls_deterministic () =
  let params = Cost.params () in
  let run () =
    let ctx = ctx_of 3 10 in
    (Local_search.run quick_ls params ctx (Prng.create 4)).Local_search.best_cost
  in
  Alcotest.(check (float 1e-9)) "deterministic" (run ()) (run ())

let test_hill_climb_monotone () =
  (* With temperature 0, every accepted move improves: best = final current,
     and accepted <= iterations. *)
  let ctx = ctx_of 5 10 in
  let params = Cost.params ~k3:20.0 () in
  let r =
    Local_search.run
      { Local_search.hill_climb_settings with Local_search.iterations = 1000 }
      params ctx (Prng.create 6)
  in
  Alcotest.(check bool) "some progress" true (r.Local_search.accepted > 0);
  Alcotest.(check bool) "evaluations counted" true (r.Local_search.evaluations >= 1000)

let test_ls_finds_optimum_small () =
  let ctx = ctx_of 7 5 in
  let params = Cost.params () in
  let (_, opt) = Cold.Brute_force.optimal params ctx in
  let r =
    Local_search.run
      { Local_search.default_settings with Local_search.iterations = 3000 }
      params ctx (Prng.create 8)
  in
  Alcotest.(check (float 1e-6)) "optimal at n=5" opt r.Local_search.best_cost

let test_ls_initial_respected () =
  let ctx = ctx_of 9 8 in
  let params = Cost.params () in
  let (star, star_cost) = Cold.Heuristics.best_star params ctx in
  let r =
    Local_search.run ~initial:star
      { Local_search.hill_climb_settings with Local_search.iterations = 0 }
      params ctx (Prng.create 10)
  in
  Alcotest.(check (float 1e-9)) "zero iterations returns initial cost" star_cost
    r.Local_search.best_cost

let test_ls_invalid () =
  let ctx = ctx_of 11 8 in
  Alcotest.check_raises "bad initial size"
    (Invalid_argument "Local_search.run: initial topology size mismatch") (fun () ->
      ignore
        (Local_search.run ~initial:(Graph.create 3) quick_ls (Cost.params ()) ctx
           (Prng.create 1)))

(* --- custom GA objective ------------------------------------------------------ *)

let test_ga_custom_objective () =
  (* Objective that hates edges: optimum is a spanning tree regardless of
     geometry. *)
  let ctx = ctx_of 13 8 in
  let objective g =
    if Traversal.is_connected g then float_of_int (Graph.edge_count g) else infinity
  in
  let settings =
    {
      Ga.default_settings with
      Ga.population_size = 20;
      generations = 10;
      num_saved = 4;
      num_crossover = 10;
      num_mutation = 6;
    }
  in
  let r = Ga.run_custom settings ~objective ctx (Prng.create 14) in
  Alcotest.(check (float 1e-9)) "tree found" 7.0 r.Ga.best_cost

(* --- evolution ---------------------------------------------------------------- *)

let quick_evo_config =
  {
    (Evolution.default_config ~params:(Cost.params ~k2:2e-4 ()) ()) with
    Evolution.ga =
      {
        Ga.default_settings with
        Ga.population_size = 24;
        generations = 15;
        num_saved = 6;
        num_crossover = 12;
        num_mutation = 6;
      };
  }

let test_evolution_grows () =
  let states =
    Evolution.run quick_evo_config ~initial_n:8
      ~steps:
        [
          { Evolution.new_pops = 3; traffic_growth = 1.5 };
          { Evolution.new_pops = 4; traffic_growth = 1.5 };
        ]
      ~seed:20
  in
  Alcotest.(check int) "three states" 3 (List.length states);
  let sizes = List.map (fun s -> Context.n s.Evolution.context) states in
  Alcotest.(check (list int)) "sizes grow" [ 8; 11; 15 ] sizes;
  List.iter
    (fun s ->
      Alcotest.(check bool) "network connected" true
        (Traversal.is_connected s.Evolution.network.Network.graph))
    states

let test_evolution_frozen_legacy () =
  (* With infinite decommission cost, every installed link survives. *)
  let cfg = { quick_evo_config with Evolution.decommission_cost = infinity } in
  let rng = Prng.create 21 in
  let ctx = Context.generate (Context.default_spec ~n:8) rng in
  let s0 = Evolution.greenfield cfg ctx rng in
  let s1 =
    Evolution.evolve cfg s0 { Evolution.new_pops = 3; traffic_growth = 2.0 } rng
  in
  List.iter
    (fun (u, v) ->
      Alcotest.(check bool) "legacy link kept" true
        (Graph.mem_edge s1.Evolution.network.Network.graph u v))
    s0.Evolution.installed;
  Alcotest.(check int) "no decommissions" 0 s1.Evolution.cumulative_decommissions

let test_evolution_zero_decommission_free () =
  (* With zero decommission cost the evolved design is exactly a fresh design
     of the new context... subject to optimizer noise, so check the evolved
     cost is within a few percent of the greenfield cost. *)
  let cfg = { quick_evo_config with Evolution.decommission_cost = 0.0 } in
  let rng = Prng.create 22 in
  let ctx = Context.generate (Context.default_spec ~n:8) rng in
  let s0 = Evolution.greenfield cfg ctx rng in
  let s1 =
    Evolution.evolve cfg s0 { Evolution.new_pops = 2; traffic_growth = 1.0 } rng
  in
  let penalty = Evolution.legacy_penalty cfg s1 (Prng.create 23) in
  Alcotest.(check bool)
    (Printf.sprintf "penalty small when decommission is free (got %.3f)" penalty)
    true
    (Float.abs penalty < 0.05)

let test_evolution_traffic_growth_effect () =
  let cfg = quick_evo_config in
  let rng = Prng.create 24 in
  let ctx = Context.generate (Context.default_spec ~n:10) rng in
  let s0 = Evolution.greenfield cfg ctx rng in
  let grown =
    Evolution.evolve cfg s0 { Evolution.new_pops = 0; traffic_growth = 20.0 }
      (Prng.create 25)
  in
  (* 20x the traffic should buy at least as many links. *)
  Alcotest.(check bool) "links do not shrink" true
    (Graph.edge_count grown.Evolution.network.Network.graph
    >= Graph.edge_count s0.Evolution.network.Network.graph);
  Alcotest.(check int) "same PoP count" 10 (Context.n grown.Evolution.context)

let test_evolution_invalid () =
  let cfg = quick_evo_config in
  let rng = Prng.create 26 in
  let ctx = Context.generate (Context.default_spec ~n:6) rng in
  let s0 = Evolution.greenfield cfg ctx rng in
  Alcotest.check_raises "negative growth"
    (Invalid_argument "Evolution.evolve: negative traffic growth") (fun () ->
      ignore
        (Evolution.evolve cfg s0 { Evolution.new_pops = 1; traffic_growth = -1.0 } rng))

let () =
  Alcotest.run "cold_optimizers"
    [
      ( "local_search",
        [
          Alcotest.test_case "connected + improving" `Quick test_ls_connected_and_improves;
          Alcotest.test_case "deterministic" `Quick test_ls_deterministic;
          Alcotest.test_case "hill climbing" `Quick test_hill_climb_monotone;
          Alcotest.test_case "optimal small n" `Quick test_ls_finds_optimum_small;
          Alcotest.test_case "initial respected" `Quick test_ls_initial_respected;
          Alcotest.test_case "invalid" `Quick test_ls_invalid;
        ] );
      ( "ga_custom",
        [ Alcotest.test_case "custom objective" `Quick test_ga_custom_objective ] );
      ( "evolution",
        [
          Alcotest.test_case "grows" `Quick test_evolution_grows;
          Alcotest.test_case "frozen legacy" `Quick test_evolution_frozen_legacy;
          Alcotest.test_case "free decommission" `Slow
            test_evolution_zero_decommission_free;
          Alcotest.test_case "traffic growth" `Quick test_evolution_traffic_growth_effect;
          Alcotest.test_case "invalid" `Quick test_evolution_invalid;
        ] );
    ]
