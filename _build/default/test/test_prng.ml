(* Tests for Cold_prng: determinism, splitting, distribution moments. *)

module Prng = Cold_prng.Prng
module Dist = Cold_prng.Dist

let check_float = Alcotest.(check (float 1e-9))

let test_determinism () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_seed_sensitivity () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let distinct = ref false in
  for _ = 1 to 10 do
    if Prng.bits64 a <> Prng.bits64 b then distinct := true
  done;
  Alcotest.(check bool) "different seeds differ" true !distinct

let test_copy_independent () =
  let a = Prng.create 7 in
  let b = Prng.copy a in
  let x = Prng.bits64 a in
  let y = Prng.bits64 b in
  Alcotest.(check int64) "copy resumes from same state" x y;
  ignore (Prng.bits64 a);
  (* advancing a does not affect b *)
  let a2 = Prng.bits64 a and b2 = Prng.bits64 b in
  Alcotest.(check bool) "streams diverge after independent draws" true (a2 <> b2 || true);
  ignore a2;
  ignore b2

let test_split_at_stable () =
  let g = Prng.create 11 in
  let c1 = Prng.split_at g 5 in
  let c2 = Prng.split_at g 5 in
  Alcotest.(check int64) "split_at is pure" (Prng.bits64 c1) (Prng.bits64 c2);
  let d = Prng.split_at g 6 in
  Alcotest.(check bool) "different index differs" true
    (Prng.bits64 (Prng.split_at g 5) <> Prng.bits64 d)

let test_split_advances () =
  let g = Prng.create 3 in
  let child = Prng.split g in
  Alcotest.(check bool) "child differs from parent continuation" true
    (Prng.bits64 child <> Prng.bits64 g)

let test_float_range () =
  let g = Prng.create 5 in
  for _ = 1 to 10_000 do
    let x = Prng.float g in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float out of range: %f" x
  done

let test_float_mean () =
  let g = Prng.create 6 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Prng.float g
  done;
  let mean = !sum /. float_of_int n in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (mean -. 0.5) < 0.01)

let test_int_bounds () =
  let g = Prng.create 8 in
  for bound = 1 to 50 do
    for _ = 1 to 200 do
      let x = Prng.int g bound in
      if x < 0 || x >= bound then Alcotest.failf "int %d out of [0,%d)" x bound
    done
  done

let test_int_invalid () =
  let g = Prng.create 9 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int g 0))

let test_int_covers_all () =
  let g = Prng.create 10 in
  let seen = Array.make 7 false in
  for _ = 1 to 2000 do
    seen.(Prng.int g 7) <- true
  done;
  Alcotest.(check bool) "all residues reached" true (Array.for_all Fun.id seen)

let test_bool_balance () =
  let g = Prng.create 12 in
  let n = 20_000 in
  let trues = ref 0 in
  for _ = 1 to n do
    if Prng.bool g then incr trues
  done;
  let frac = float_of_int !trues /. float_of_int n in
  Alcotest.(check bool) "fair coin" true (Float.abs (frac -. 0.5) < 0.02)

let test_seed_of_string () =
  Alcotest.(check int) "stable hash" (Prng.seed_of_string "cold")
    (Prng.seed_of_string "cold");
  Alcotest.(check bool) "different strings differ" true
    (Prng.seed_of_string "a" <> Prng.seed_of_string "b")

let sample_mean f n seed =
  let g = Prng.create seed in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. f g
  done;
  !sum /. float_of_int n

let test_exponential_mean () =
  let m = sample_mean (fun g -> Dist.exponential g ~mean:30.0) 50_000 21 in
  Alcotest.(check bool) "exp mean 30" true (Float.abs (m -. 30.0) < 1.0)

let test_exponential_invalid () =
  let g = Prng.create 1 in
  Alcotest.check_raises "non-positive mean"
    (Invalid_argument "Dist.exponential: mean must be positive") (fun () ->
      ignore (Dist.exponential g ~mean:0.0))

let test_pareto_support () =
  let g = Prng.create 22 in
  for _ = 1 to 1000 do
    let x = Dist.pareto g ~shape:1.5 ~scale:10.0 in
    if x < 10.0 then Alcotest.failf "pareto below scale: %f" x
  done

let test_pareto_with_mean () =
  (* shape 1.5 has finite mean; check the empirical mean lands near 30 (wide
     tolerance: heavy tail). *)
  let m = sample_mean (fun g -> Dist.pareto_with_mean g ~shape:1.5 ~mean:30.0) 200_000 23 in
  Alcotest.(check bool) (Printf.sprintf "pareto mean near 30 (got %f)" m) true
    (Float.abs (m -. 30.0) < 4.0)

let test_pareto_with_mean_invalid () =
  let g = Prng.create 1 in
  Alcotest.check_raises "shape <= 1"
    (Invalid_argument "Dist.pareto_with_mean: mean is finite only for shape > 1")
    (fun () -> ignore (Dist.pareto_with_mean g ~shape:1.0 ~mean:30.0))

let test_geometric_mean () =
  (* p = 0.5 → mean 1, the paper's mutation magnitude. *)
  let m = sample_mean (fun g -> float_of_int (Dist.geometric g ~p:0.5)) 50_000 24 in
  Alcotest.(check bool) "geometric(0.5) mean 1" true (Float.abs (m -. 1.0) < 0.05)

let test_geometric_support () =
  let g = Prng.create 25 in
  for _ = 1 to 1000 do
    if Dist.geometric g ~p:0.5 < 0 then Alcotest.fail "negative geometric"
  done;
  Alcotest.(check int) "p=1 is 0" 0 (Dist.geometric g ~p:1.0)

let test_normal_moments () =
  let g = Prng.create 26 in
  let n = 50_000 in
  let xs = Array.init n (fun _ -> Dist.normal g ~mean:5.0 ~stddev:2.0) in
  let mean = Array.fold_left ( +. ) 0.0 xs /. float_of_int n in
  let var =
    Array.fold_left (fun a x -> a +. ((x -. mean) ** 2.0)) 0.0 xs /. float_of_int n
  in
  Alcotest.(check bool) "normal mean" true (Float.abs (mean -. 5.0) < 0.1);
  Alcotest.(check bool) "normal var" true (Float.abs (var -. 4.0) < 0.2)

let test_poisson_mean () =
  let m = sample_mean (fun g -> float_of_int (Dist.poisson g ~mean:7.5)) 20_000 27 in
  Alcotest.(check bool) "poisson mean" true (Float.abs (m -. 7.5) < 0.15);
  let big = sample_mean (fun g -> float_of_int (Dist.poisson g ~mean:100.0)) 5_000 28 in
  Alcotest.(check bool) "poisson normal-approx mean" true (Float.abs (big -. 100.0) < 2.0)

let test_shuffle_is_permutation () =
  let g = Prng.create 29 in
  let a = Array.init 100 (fun i -> i) in
  Dist.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "permutation" (Array.init 100 (fun i -> i)) sorted

let test_permutation_uniformish () =
  (* Position of element 0 should be roughly uniform. *)
  let g = Prng.create 30 in
  let counts = Array.make 5 0 in
  for _ = 1 to 10_000 do
    let p = Dist.permutation g 5 in
    let idx = ref 0 in
    Array.iteri (fun i x -> if x = 0 then idx := i) p;
    counts.(!idx) <- counts.(!idx) + 1
  done;
  Array.iter
    (fun c ->
      Alcotest.(check bool) "roughly uniform position" true
        (c > 1700 && c < 2300))
    counts

let test_sample_without_replacement () =
  let g = Prng.create 31 in
  for _ = 1 to 100 do
    let s = Dist.sample_without_replacement g ~k:10 ~n:30 in
    Alcotest.(check int) "k elements" 10 (Array.length s);
    let tbl = Hashtbl.create 16 in
    Array.iter
      (fun x ->
        if x < 0 || x >= 30 then Alcotest.fail "out of range";
        if Hashtbl.mem tbl x then Alcotest.fail "duplicate";
        Hashtbl.add tbl x ())
      s
  done;
  Alcotest.check_raises "k > n" (Invalid_argument "Dist.sample_without_replacement")
    (fun () -> ignore (Dist.sample_without_replacement g ~k:5 ~n:3))

let test_choose_weighted () =
  let g = Prng.create 32 in
  let counts = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let i = Dist.choose_weighted g [| 1.0; 2.0; 7.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  let frac i = float_of_int counts.(i) /. 30_000.0 in
  Alcotest.(check bool) "w0 ~ 0.1" true (Float.abs (frac 0 -. 0.1) < 0.02);
  Alcotest.(check bool) "w1 ~ 0.2" true (Float.abs (frac 1 -. 0.2) < 0.02);
  Alcotest.(check bool) "w2 ~ 0.7" true (Float.abs (frac 2 -. 0.7) < 0.02)

let test_choose_weighted_errors () =
  let g = Prng.create 33 in
  Alcotest.check_raises "empty" (Invalid_argument "Dist.choose_weighted: empty weights")
    (fun () -> ignore (Dist.choose_weighted g [||]));
  Alcotest.check_raises "all zero" (Invalid_argument "Dist.choose_weighted: all weights zero")
    (fun () -> ignore (Dist.choose_weighted g [| 0.0; 0.0 |]));
  Alcotest.check_raises "negative" (Invalid_argument "Dist.choose_weighted: negative weight")
    (fun () -> ignore (Dist.choose_weighted g [| 1.0; -1.0 |]))

let test_uniform_range () =
  let g = Prng.create 34 in
  for _ = 1 to 1000 do
    let x = Dist.uniform g ~lo:(-3.0) ~hi:5.0 in
    if x < -3.0 || x >= 5.0 then Alcotest.failf "uniform out of range: %f" x
  done;
  ignore check_float

let qcheck_int_in_bounds =
  QCheck.Test.make ~name:"Prng.int always within bounds" ~count:1000
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let g = Prng.create seed in
      let x = Prng.int g bound in
      x >= 0 && x < bound)

let qcheck_shuffle_preserves_multiset =
  QCheck.Test.make ~name:"shuffle preserves elements" ~count:200
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let g = Prng.create seed in
      let a = Array.of_list l in
      let before = List.sort compare (Array.to_list a) in
      Dist.shuffle g a;
      List.sort compare (Array.to_list a) = before)

let () =
  Alcotest.run "cold_prng"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_seed_sensitivity;
          Alcotest.test_case "copy" `Quick test_copy_independent;
          Alcotest.test_case "split_at stable" `Quick test_split_at_stable;
          Alcotest.test_case "split advances" `Quick test_split_advances;
          Alcotest.test_case "float range" `Quick test_float_range;
          Alcotest.test_case "float mean" `Quick test_float_mean;
          Alcotest.test_case "int bounds" `Quick test_int_bounds;
          Alcotest.test_case "int invalid" `Quick test_int_invalid;
          Alcotest.test_case "int covers all residues" `Quick test_int_covers_all;
          Alcotest.test_case "bool balance" `Quick test_bool_balance;
          Alcotest.test_case "seed_of_string" `Quick test_seed_of_string;
        ] );
      ( "distributions",
        [
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "exponential invalid" `Quick test_exponential_invalid;
          Alcotest.test_case "pareto support" `Quick test_pareto_support;
          Alcotest.test_case "pareto mean" `Quick test_pareto_with_mean;
          Alcotest.test_case "pareto invalid" `Quick test_pareto_with_mean_invalid;
          Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
          Alcotest.test_case "geometric support" `Quick test_geometric_support;
          Alcotest.test_case "normal moments" `Quick test_normal_moments;
          Alcotest.test_case "poisson mean" `Quick test_poisson_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_is_permutation;
          Alcotest.test_case "permutation uniform" `Quick test_permutation_uniformish;
          Alcotest.test_case "sample without replacement" `Quick
            test_sample_without_replacement;
          Alcotest.test_case "choose_weighted frequencies" `Quick test_choose_weighted;
          Alcotest.test_case "choose_weighted errors" `Quick test_choose_weighted_errors;
          Alcotest.test_case "uniform range" `Quick test_uniform_range;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_int_in_bounds;
          QCheck_alcotest.to_alcotest qcheck_shuffle_preserves_multiset;
        ] );
    ]
