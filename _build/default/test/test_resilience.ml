(* Tests for Cold_net.Resilience. *)

module Graph = Cold_graph.Graph
module Builders = Cold_graph.Builders
module Point = Cold_geom.Point
module Context = Cold_context.Context
module Network = Cold_net.Network
module Resilience = Cold_net.Resilience

let feq = Alcotest.(check (float 1e-6))

(* 4 PoPs on a line with populations 1,1,1,1 on a path topology: every link
   is a bridge with hand-computable stranded fractions. *)
let line_net () =
  let points =
    [| Point.make 0.0 0.0; Point.make 1.0 0.0; Point.make 2.0 0.0; Point.make 3.0 0.0 |]
  in
  let ctx = Context.of_points_and_populations points [| 1.0; 1.0; 1.0; 1.0 |] in
  Network.build ctx (Builders.path 4)

(* Cycle topology on the same context: no bridge, nothing stranded. *)
let ring_net () =
  let points =
    [| Point.make 0.0 0.0; Point.make 1.0 0.0; Point.make 1.0 1.0; Point.make 0.0 1.0 |]
  in
  let ctx = Context.of_points_and_populations points [| 1.0; 1.0; 1.0; 1.0 |] in
  Network.build ctx (Builders.cycle 4)

let test_link_failure_fractions () =
  let net = line_net () in
  (* Total pair demand: 6 pairs x 2 = 12. Cutting (0,1) strands pairs
     {0,1},{0,2},{0,3}: 6/12 = 0.5? No: pair demand of each pair = 2, three
     pairs cut -> 6; total 12 -> 0.5. Cutting (1,2) strands 4 pairs x 2 = 8
     -> 2/3. *)
  feq "end link" 0.5 (Resilience.stranded_by_link_failure net 0 1);
  feq "middle link" (8.0 /. 12.0) (Resilience.stranded_by_link_failure net 1 2);
  feq "not a link" 0.0 (Resilience.stranded_by_link_failure net 0 3)

let test_ring_is_survivable () =
  let net = ring_net () in
  Alcotest.(check bool) "survivable" true (Resilience.survivable net);
  feq "no stranding" 0.0 (Resilience.stranded_by_link_failure net 0 1);
  Alcotest.(check (list int)) "no SPOFs" [] (Resilience.single_points_of_failure net)

let test_path_not_survivable () =
  let net = line_net () in
  Alcotest.(check bool) "not survivable" false (Resilience.survivable net);
  Alcotest.(check (list int)) "inner SPOFs" [ 1; 2 ]
    (Resilience.single_points_of_failure net)

let test_node_failure () =
  let net = line_net () in
  (* Node 1 fails: its own traffic 2*row_total(1) = 2*3*2/2... populations all
     1: row_total(1) = 3; own = 6. Plus separated pairs {0,2},{0,3}: 4.
     Total demand 12 -> (6+4)/12. *)
  feq "middle node" (10.0 /. 12.0) (Resilience.stranded_by_node_failure net 1);
  (* Leaf node 0: only its own traffic: 6/12. *)
  feq "leaf node" 0.5 (Resilience.stranded_by_node_failure net 0)

let test_worst_link () =
  let net = line_net () in
  let r = Resilience.worst_link net in
  Alcotest.(check (pair int int)) "middle link is worst" (1, 2) r.Resilience.link;
  Alcotest.(check bool) "bridge flagged" true r.Resilience.is_bridge;
  feq "stranded" (8.0 /. 12.0) r.Resilience.stranded_fraction

let test_link_reports_sorted () =
  let net = line_net () in
  let reports = Resilience.link_reports net in
  Alcotest.(check int) "all links" 3 (List.length reports);
  let rec desc = function
    | a :: (b :: _ as rest) ->
      a.Resilience.stranded_fraction >= b.Resilience.stranded_fraction && desc rest
    | _ -> true
  in
  Alcotest.(check bool) "descending" true (desc reports);
  (* Load fractions sum to 1. *)
  let total =
    List.fold_left (fun acc r -> acc +. r.Resilience.load_fraction) 0.0 reports
  in
  feq "load fractions" 1.0 total

let test_worst_link_no_edges () =
  let ctx =
    Context.of_points_and_populations [| Point.make 0.0 0.0 |] [| 1.0 |]
  in
  let net = Network.build ctx (Graph.create 1) in
  Alcotest.check_raises "no links"
    (Invalid_argument "Resilience.worst_link: network has no links") (fun () ->
      ignore (Resilience.worst_link net))

let test_synthesized_network_reports () =
  (* End-to-end: a synthesized network's reports are internally consistent. *)
  let cfg =
    {
      (Cold.Synthesis.default_config ~params:(Cold.Cost.params ~k2:4e-4 ()) ()) with
      Cold.Synthesis.ga =
        {
          Cold.Ga.default_settings with
          Cold.Ga.population_size = 24;
          generations = 15;
          num_saved = 6;
          num_crossover = 12;
          num_mutation = 6;
        };
      heuristic_permutations = 2;
    }
  in
  let net = Cold.Synthesis.synthesize cfg (Context.default_spec ~n:12) ~seed:3 in
  List.iter
    (fun r ->
      Alcotest.(check bool) "fraction in [0,1]" true
        (r.Resilience.stranded_fraction >= 0.0 && r.Resilience.stranded_fraction <= 1.0);
      (* Bridges strand traffic; non-bridges strand none. *)
      if r.Resilience.is_bridge then
        Alcotest.(check bool) "bridge strands" true (r.Resilience.stranded_fraction > 0.0)
      else
        Alcotest.(check (float 1e-9)) "non-bridge strands nothing" 0.0
          r.Resilience.stranded_fraction)
    (Resilience.link_reports net)

let () =
  Alcotest.run "cold_resilience"
    [
      ( "resilience",
        [
          Alcotest.test_case "link failure fractions" `Quick test_link_failure_fractions;
          Alcotest.test_case "ring survivable" `Quick test_ring_is_survivable;
          Alcotest.test_case "path not survivable" `Quick test_path_not_survivable;
          Alcotest.test_case "node failure" `Quick test_node_failure;
          Alcotest.test_case "worst link" `Quick test_worst_link;
          Alcotest.test_case "reports sorted" `Quick test_link_reports_sorted;
          Alcotest.test_case "no edges" `Quick test_worst_link_no_edges;
          Alcotest.test_case "synthesized consistency" `Quick
            test_synthesized_network_reports;
        ] );
    ]
