(* Tests for router-level expansion (layered design). *)

module Graph = Cold_graph.Graph
module Traversal = Cold_graph.Traversal
module Prng = Cold_prng.Prng
module Point = Cold_geom.Point
module Context = Cold_context.Context
module Network = Cold_net.Network
module Template = Cold_router.Template
module Expand = Cold_router.Expand

let test_template_selection () =
  let th = Template.default_thresholds in
  Alcotest.(check bool) "tiny -> single" true (Template.for_share th 0.001 = Template.Single);
  Alcotest.(check bool) "medium -> dual" true (Template.for_share th 0.03 = Template.Dual);
  (match Template.for_share th 0.10 with
  | Template.Full { access } -> Alcotest.(check bool) "full has access" true (access >= 1)
  | _ -> Alcotest.fail "expected Full");
  Alcotest.check_raises "bad share" (Invalid_argument "Template.for_share") (fun () ->
      ignore (Template.for_share th 1.5))

let test_template_structure () =
  Alcotest.(check int) "single routers" 1 (Template.router_count Template.Single);
  Alcotest.(check int) "dual routers" 2 (Template.router_count Template.Dual);
  Alcotest.(check int) "full routers" 5
    (Template.router_count (Template.Full { access = 3 }));
  Alcotest.(check (list (pair int int))) "dual edge" [ (0, 1) ]
    (Template.internal_edges Template.Dual);
  (* Full: core pair + each access dual-homed. *)
  let edges = Template.internal_edges (Template.Full { access = 2 }) in
  Alcotest.(check int) "full edges" 5 (List.length edges);
  Alcotest.(check (list int)) "cores" [ 0; 1 ]
    (Template.core_indices (Template.Full { access = 2 }))

(* A context with one dominant-population PoP so templates differ. *)
let skewed_network () =
  let n = 8 in
  let rng = Prng.create 3 in
  let points = Array.init n (fun _ -> Point.make (Prng.float rng) (Prng.float rng)) in
  let pops = Array.init n (fun i -> if i = 0 then 200.0 else 5.0) in
  let ctx = Context.of_points_and_populations points pops in
  let g = Cold.Heuristics.mst_topology ctx in
  Network.build ctx g

let test_expand_structure () =
  let net = skewed_network () in
  let r = Expand.expand net in
  (* Router-level graph is connected and at least as big as the PoP level. *)
  Alcotest.(check bool) "connected" true (Traversal.is_connected r.Expand.graph);
  Alcotest.(check bool) "at least one router per PoP" true (Expand.router_count r >= 8);
  (* The dominant PoP gets a multi-router template. *)
  Alcotest.(check bool) "big PoP expanded" true
    (Template.router_count r.Expand.templates.(0) >= 2);
  (* Router records are consistent with pop_base. *)
  Array.iteri
    (fun id router ->
      let members = Expand.routers_of_pop r router.Expand.pop in
      Alcotest.(check bool) "router listed under its PoP" true (List.mem id members))
    r.Expand.routers

let test_expand_partition () =
  let net = skewed_network () in
  let r = Expand.expand net in
  (* PoP router lists partition the router id space. *)
  let seen = Array.make (Expand.router_count r) false in
  for pop = 0 to 7 do
    List.iter
      (fun id ->
        Alcotest.(check bool) "no overlap" false seen.(id);
        seen.(id) <- true)
      (Expand.routers_of_pop r pop)
  done;
  Alcotest.(check bool) "full cover" true (Array.for_all Fun.id seen)

let test_inter_pop_links_on_cores () =
  let net = skewed_network () in
  let r = Expand.expand net in
  Graph.iter_edges r.Expand.graph (fun u v ->
      let ru = r.Expand.routers.(u) and rv = r.Expand.routers.(v) in
      if ru.Expand.pop <> rv.Expand.pop then begin
        Alcotest.(check bool) "endpoint u is core" true ru.Expand.is_core;
        Alcotest.(check bool) "endpoint v is core" true rv.Expand.is_core
      end)

let test_inter_pop_link_count () =
  let net = skewed_network () in
  let r = Expand.expand net in
  let inter = ref 0 in
  Graph.iter_edges r.Expand.graph (fun u v ->
      if r.Expand.routers.(u).Expand.pop <> r.Expand.routers.(v).Expand.pop then incr inter);
  Alcotest.(check int) "one router link per PoP link"
    (Graph.edge_count net.Network.graph) !inter

let test_capacities_inherited () =
  let net = skewed_network () in
  let r = Expand.expand net in
  (* Every inter-PoP router link must carry the PoP link's capacity. *)
  Graph.iter_edges r.Expand.graph (fun u v ->
      let ru = r.Expand.routers.(u) and rv = r.Expand.routers.(v) in
      if ru.Expand.pop <> rv.Expand.pop then begin
        let expected =
          Cold_net.Capacity.capacity net.Network.capacities ru.Expand.pop rv.Expand.pop
        in
        Alcotest.(check (float 1e-6)) "capacity inherited" expected
          (r.Expand.link_capacity (u, v))
      end)

let test_single_templates_when_uniform () =
  (* Uniform small populations: every PoP under the dual threshold on a large
     network → all Single, expansion is isomorphic to the PoP level. *)
  let n = 60 in
  let rng = Prng.create 4 in
  let points = Array.init n (fun _ -> Point.make (Prng.float rng) (Prng.float rng)) in
  let pops = Array.make n 1.0 in
  let ctx = Context.of_points_and_populations points pops in
  let net = Network.build ctx (Cold.Heuristics.mst_topology ctx) in
  let r = Expand.expand net in
  Alcotest.(check int) "same size" n (Expand.router_count r);
  Alcotest.(check int) "same links" (n - 1) (Graph.edge_count r.Expand.graph)

(* --- router-level networks ----------------------------------------------------- *)

module Router_network = Cold_router.Router_network
module Gravity = Cold_traffic.Gravity

let test_router_network_routes () =
  let pop_net = skewed_network () in
  let rn = Router_network.build pop_net in
  let g = rn.Router_network.network.Network.graph in
  Alcotest.(check bool) "router net connected" true (Traversal.is_connected g);
  Alcotest.(check int) "same size as expansion"
    (Cold_router.Expand.router_count rn.Router_network.expansion)
    (Graph.node_count g);
  (* Capacities cover routed loads with the default 2x policy. *)
  Alcotest.(check bool) "utilization 0.5" true
    (Float.abs
       (Cold_net.Capacity.utilization
          rn.Router_network.network.Network.capacities
          rn.Router_network.network.Network.loads
       -. 0.5)
    < 1e-9)

let test_router_network_demand_conservation () =
  (* Inter-PoP demand at the router level equals the PoP-level demand. *)
  let pop_net = skewed_network () in
  let rn = Router_network.build pop_net in
  let pop_tm = pop_net.Network.context.Context.tm in
  for a = 0 to 7 do
    for b = 0 to 7 do
      if a <> b then
        Alcotest.(check (float 1e-6))
          (Printf.sprintf "demand %d->%d preserved" a b)
          (Gravity.demand pop_tm a b)
          (Router_network.inter_pop_demand rn a b)
    done
  done

let test_router_network_pop_mapping () =
  let pop_net = skewed_network () in
  let rn = Router_network.build pop_net in
  let n = Cold_router.Expand.router_count rn.Router_network.expansion in
  for r = 0 to n - 1 do
    let pop = Router_network.pop_of_router rn r in
    Alcotest.(check bool) "pop in range" true (pop >= 0 && pop < 8);
    (* The router sits (almost) at its PoP's location. *)
    let rp = rn.Router_network.network.Network.context.Context.points.(r) in
    let pp = pop_net.Network.context.Context.points.(pop) in
    Alcotest.(check bool) "placed at its PoP" true (Cold_geom.Point.distance rp pp < 1.0)
  done

let test_router_network_resilience_works () =
  (* The whole net toolchain applies at the router level. *)
  let pop_net = skewed_network () in
  let rn = Router_network.build pop_net in
  let reports = Cold_net.Resilience.link_reports rn.Router_network.network in
  Alcotest.(check bool) "has reports" true (List.length reports > 0);
  List.iter
    (fun r ->
      Alcotest.(check bool) "fractions sane" true
        (r.Cold_net.Resilience.stranded_fraction >= 0.0
        && r.Cold_net.Resilience.stranded_fraction <= 1.0))
    reports

let () =
  Alcotest.run "cold_router"
    [
      ( "template",
        [
          Alcotest.test_case "selection" `Quick test_template_selection;
          Alcotest.test_case "structure" `Quick test_template_structure;
        ] );
      ( "expand",
        [
          Alcotest.test_case "structure" `Quick test_expand_structure;
          Alcotest.test_case "partition" `Quick test_expand_partition;
          Alcotest.test_case "links on cores" `Quick test_inter_pop_links_on_cores;
          Alcotest.test_case "link count" `Quick test_inter_pop_link_count;
          Alcotest.test_case "capacities" `Quick test_capacities_inherited;
          Alcotest.test_case "uniform -> identity" `Quick
            test_single_templates_when_uniform;
        ] );
      ( "router_network",
        [
          Alcotest.test_case "routes" `Quick test_router_network_routes;
          Alcotest.test_case "demand conservation" `Quick
            test_router_network_demand_conservation;
          Alcotest.test_case "pop mapping" `Quick test_router_network_pop_mapping;
          Alcotest.test_case "resilience applies" `Quick
            test_router_network_resilience_works;
        ] );
    ]
