(* Tests for the flow-level simulator: max-min fairness and the event loop. *)

module Prng = Cold_prng.Prng
module Point = Cold_geom.Point
module Builders = Cold_graph.Builders
module Context = Cold_context.Context
module Network = Cold_net.Network
module Fair_share = Cold_sim.Fair_share
module Flow_sim = Cold_sim.Flow_sim


(* --- fair share --------------------------------------------------------------- *)

let flow id links = { Fair_share.id; links }

let test_single_link_split () =
  let capacity _ = 10.0 in
  let rates = Fair_share.allocate ~capacity [ flow 0 [ (0, 1) ]; flow 1 [ (0, 1) ] ] in
  Alcotest.(check (list (pair int (float 1e-6)))) "equal halves"
    [ (0, 5.0); (1, 5.0) ] rates

let test_classic_water_filling () =
  (* Bertsekas–Gallager example: flows B,C cross the thin link l2 (cap 10)
     and the thick link l1 (cap 30); flow A uses only l1. B,C get 5; A gets
     the rest of l1: 20. *)
  let capacity l = if l = (1, 2) then 10.0 else 30.0 in
  let rates =
    Fair_share.allocate ~capacity
      [
        flow 0 [ (0, 1) ];
        flow 1 [ (0, 1); (1, 2) ];
        flow 2 [ (0, 1); (1, 2) ];
      ]
  in
  Alcotest.(check (list (pair int (float 1e-6)))) "water filling"
    [ (0, 20.0); (1, 5.0); (2, 5.0) ] rates

let test_disjoint_flows () =
  let capacity l = if l = (0, 1) then 7.0 else 3.0 in
  let rates = Fair_share.allocate ~capacity [ flow 0 [ (0, 1) ]; flow 1 [ (2, 3) ] ] in
  Alcotest.(check (list (pair int (float 1e-6)))) "each gets its bottleneck"
    [ (0, 7.0); (1, 3.0) ] rates

let test_allocate_errors () =
  Alcotest.check_raises "empty route"
    (Invalid_argument "Fair_share.allocate: flow with empty route") (fun () ->
      ignore (Fair_share.allocate ~capacity:(fun _ -> 1.0) [ flow 0 [] ]));
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Fair_share.allocate: duplicate flow id") (fun () ->
      ignore
        (Fair_share.allocate ~capacity:(fun _ -> 1.0)
           [ flow 0 [ (0, 1) ]; flow 0 [ (1, 2) ] ]));
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Fair_share.allocate: non-positive capacity") (fun () ->
      ignore (Fair_share.allocate ~capacity:(fun _ -> 0.0) [ flow 0 [ (0, 1) ] ]))

let test_is_max_min_oracle () =
  let capacity l = if l = (1, 2) then 10.0 else 30.0 in
  let flows =
    [ flow 0 [ (0, 1) ]; flow 1 [ (0, 1); (1, 2) ]; flow 2 [ (0, 1); (1, 2) ] ]
  in
  let rates = Fair_share.allocate ~capacity flows in
  Alcotest.(check bool) "allocation passes the oracle" true
    (Fair_share.is_max_min ~capacity flows rates);
  (* A uniform split is feasible but NOT max-min (flow 0 could grow). *)
  Alcotest.(check bool) "uniform split rejected" false
    (Fair_share.is_max_min ~capacity flows [ (0, 5.0); (1, 5.0); (2, 5.0) ])

let qcheck_allocation_is_max_min =
  QCheck.Test.make ~name:"allocation satisfies the max-min property" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 12)
              (pair (int_bound 5) (int_bound 5)))
    (fun pair_list ->
      (* Random flows over a 6-node line's links with varying capacities. *)
      let capacity (u, v) = float_of_int (3 + ((u + v) mod 5)) in
      let flows =
        List.mapi
          (fun i (a, b) ->
            let lo = min a b and hi = max a b in
            let lo, hi = if lo = hi then (lo, hi + 1) else (lo, hi) in
            (* Route: consecutive line links lo..hi. *)
            let links = List.init (hi - lo) (fun k -> (lo + k, lo + k + 1)) in
            flow i links)
          pair_list
      in
      let rates = Fair_share.allocate ~capacity flows in
      Fair_share.is_max_min ~capacity flows rates)

(* --- flow simulation ------------------------------------------------------------ *)

let test_network () =
  let points =
    [| Point.make 0.0 0.0; Point.make 1.0 0.0; Point.make 2.0 0.0; Point.make 3.0 0.0 |]
  in
  let ctx = Context.of_points_and_populations points [| 5.0; 5.0; 5.0; 5.0 |] in
  Network.build ctx (Builders.path 4)

let quick = { Flow_sim.default_config with Flow_sim.flow_limit = 300; warmup = 30 }

let test_sim_runs_and_is_sane () =
  let stats = Flow_sim.run quick (test_network ()) (Prng.create 1) in
  Alcotest.(check int) "completions" 300 stats.Flow_sim.completed;
  Alcotest.(check bool) "positive FCT" true (stats.Flow_sim.mean_fct > 0.0);
  Alcotest.(check bool) "p95 >= mean-ish" true
    (stats.Flow_sim.p95_fct >= stats.Flow_sim.mean_fct *. 0.5);
  Alcotest.(check bool) "positive throughput" true (stats.Flow_sim.mean_throughput > 0.0);
  Alcotest.(check bool) "time advanced" true (stats.Flow_sim.sim_time > 0.0);
  Alcotest.(check bool) "some concurrency" true (stats.Flow_sim.peak_active >= 1)

let test_sim_deterministic () =
  let run () = Flow_sim.run quick (test_network ()) (Prng.create 7) in
  let a = run () and b = run () in
  Alcotest.(check (float 1e-12)) "same mean FCT" a.Flow_sim.mean_fct b.Flow_sim.mean_fct;
  Alcotest.(check int) "same peak" a.Flow_sim.peak_active b.Flow_sim.peak_active

let test_sim_load_sensitivity () =
  (* Higher offered load -> longer completion times (queueing). The default
     capacity policy provisions 2x the design load, so load 1.8 approaches
     saturation. *)
  let net = test_network () in
  let at load =
    (Flow_sim.run { quick with Flow_sim.load } net (Prng.create 3)).Flow_sim.mean_fct
  in
  let light = at 0.2 and heavy = at 1.8 in
  Alcotest.(check bool)
    (Printf.sprintf "FCT grows with load (%.3f -> %.3f)" light heavy)
    true (heavy > light)

let test_sim_throughput_bounded_by_capacity () =
  (* A flow can never beat its bottleneck capacity. On this network the
     largest capacity bounds every per-flow throughput. *)
  let net = test_network () in
  let stats = Flow_sim.run { quick with Flow_sim.load = 0.1 } net (Prng.create 9) in
  let max_cap = Cold_net.Capacity.total net.Network.capacities in
  Alcotest.(check bool) "throughput below total capacity" true
    (stats.Flow_sim.mean_throughput < max_cap)

let test_sim_invalid () =
  let net = test_network () in
  Alcotest.check_raises "bad load"
    (Invalid_argument "Flow_sim.run: load and mean_flow_size must be positive")
    (fun () ->
      ignore (Flow_sim.run { quick with Flow_sim.load = 0.0 } net (Prng.create 1)));
  Alcotest.check_raises "bad warmup"
    (Invalid_argument "Flow_sim.run: need 0 <= warmup < flow_limit") (fun () ->
      ignore
        (Flow_sim.run { quick with Flow_sim.warmup = 1000 } net (Prng.create 1)))

let test_sim_on_synthesized_network () =
  (* End to end: simulate on an actual COLD output. *)
  let cfg =
    {
      (Cold.Synthesis.default_config ~params:(Cold.Cost.params ~k2:4e-4 ()) ()) with
      Cold.Synthesis.ga =
        {
          Cold.Ga.default_settings with
          Cold.Ga.population_size = 24;
          generations = 15;
          num_saved = 6;
          num_crossover = 12;
          num_mutation = 6;
        };
      heuristic_permutations = 2;
    }
  in
  let net = Cold.Synthesis.synthesize cfg (Context.default_spec ~n:10) ~seed:4 in
  let stats =
    Flow_sim.run { quick with Flow_sim.flow_limit = 200; warmup = 20 } net
      (Prng.create 5)
  in
  Alcotest.(check int) "completions" 200 stats.Flow_sim.completed;
  Alcotest.(check bool) "finite FCT" true (Float.is_finite stats.Flow_sim.mean_fct)

let () =
  Alcotest.run "cold_sim"
    [
      ( "fair_share",
        [
          Alcotest.test_case "single link" `Quick test_single_link_split;
          Alcotest.test_case "water filling" `Quick test_classic_water_filling;
          Alcotest.test_case "disjoint" `Quick test_disjoint_flows;
          Alcotest.test_case "errors" `Quick test_allocate_errors;
          Alcotest.test_case "oracle" `Quick test_is_max_min_oracle;
        ] );
      ( "flow_sim",
        [
          Alcotest.test_case "sanity" `Quick test_sim_runs_and_is_sane;
          Alcotest.test_case "deterministic" `Quick test_sim_deterministic;
          Alcotest.test_case "load sensitivity" `Quick test_sim_load_sensitivity;
          Alcotest.test_case "throughput bounded" `Quick
            test_sim_throughput_bounded_by_capacity;
          Alcotest.test_case "invalid" `Quick test_sim_invalid;
          Alcotest.test_case "on synthesized network" `Quick
            test_sim_on_synthesized_network;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest qcheck_allocation_is_max_min ]);
    ]
