(* Tests for Cold_stats. *)

module Prng = Cold_prng.Prng
module D = Cold_stats.Descriptive
module Bootstrap = Cold_stats.Bootstrap
module Histogram = Cold_stats.Histogram
module Regression = Cold_stats.Regression

let feq = Alcotest.(check (float 1e-9))
let feq4 = Alcotest.(check (float 1e-4))

let sample = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |]

let test_descriptive () =
  feq "mean" 5.0 (D.mean sample);
  (* population variance 4 → sample variance 32/7. *)
  feq4 "variance" (32.0 /. 7.0) (D.variance sample);
  feq4 "stddev" (sqrt (32.0 /. 7.0)) (D.stddev sample);
  feq "cv (population)" (2.0 /. 5.0) (D.coefficient_of_variation sample);
  feq "min" 2.0 (D.min_value sample);
  feq "max" 9.0 (D.max_value sample);
  feq "sum" 40.0 (D.sum sample);
  feq "sum empty" 0.0 (D.sum [||])

let test_descriptive_singleton () =
  feq "variance of single" 0.0 (D.variance [| 3.0 |]);
  feq "mean single" 3.0 (D.mean [| 3.0 |])

let test_descriptive_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Descriptive.mean: empty sample")
    (fun () -> ignore (D.mean [||]))

let test_quantile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  feq "q0" 1.0 (D.quantile xs 0.0);
  feq "q1" 4.0 (D.quantile xs 1.0);
  feq "median interpolated" 2.5 (D.quantile xs 0.5);
  feq "q1/3" 2.0 (D.quantile xs (1.0 /. 3.0));
  feq "median via median" 2.5 (D.median xs);
  (* Input not mutated. *)
  let ys = [| 3.0; 1.0; 2.0 |] in
  ignore (D.median ys);
  Alcotest.(check (array (float 0.0))) "unmutated" [| 3.0; 1.0; 2.0 |] ys

let test_quantile_invalid () =
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Descriptive.quantile: q out of range") (fun () ->
      ignore (D.quantile [| 1.0 |] 1.5))

let test_bootstrap_mean_ci () =
  let g = Prng.create 42 in
  let xs = Array.init 200 (fun i -> float_of_int (i mod 10)) in
  let ci = Bootstrap.mean_ci g xs in
  feq4 "point is sample mean" (D.mean xs) ci.Bootstrap.point;
  Alcotest.(check bool) "lo <= point" true (ci.Bootstrap.lo <= ci.Bootstrap.point);
  Alcotest.(check bool) "point <= hi" true (ci.Bootstrap.point <= ci.Bootstrap.hi);
  (* Interval should be reasonably tight for n=200 of bounded values. *)
  Alcotest.(check bool) "tight" true (ci.Bootstrap.hi -. ci.Bootstrap.lo < 1.5)

let test_bootstrap_deterministic () =
  let run () = Bootstrap.mean_ci (Prng.create 7) [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  let a = run () and b = run () in
  feq "same lo" a.Bootstrap.lo b.Bootstrap.lo;
  feq "same hi" a.Bootstrap.hi b.Bootstrap.hi

let test_bootstrap_constant_sample () =
  let ci = Bootstrap.mean_ci (Prng.create 1) [| 5.0; 5.0; 5.0 |] in
  feq "degenerate lo" 5.0 ci.Bootstrap.lo;
  feq "degenerate hi" 5.0 ci.Bootstrap.hi

let test_bootstrap_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Bootstrap: empty sample") (fun () ->
      ignore (Bootstrap.mean_ci (Prng.create 1) [||]));
  Alcotest.check_raises "bad level" (Invalid_argument "Bootstrap: level out of range")
    (fun () -> ignore (Bootstrap.mean_ci ~level:1.0 (Prng.create 1) [| 1.0 |]))

let test_bootstrap_custom_statistic () =
  let g = Prng.create 3 in
  let ci =
    Bootstrap.confidence_interval ~statistic:D.max_value g [| 1.0; 2.0; 10.0 |]
  in
  feq "point is max" 10.0 ci.Bootstrap.point

let test_histogram () =
  let h = Histogram.create ~lo:0.0 ~hi:10.0 ~bins:5 [| 0.5; 1.0; 3.0; 9.9; 11.0; -1.0 |] in
  Alcotest.(check int) "first bin gets clamped low" 3 h.Histogram.counts.(0);
  Alcotest.(check int) "last bin gets clamped high" 2 h.Histogram.counts.(4);
  Alcotest.(check int) "bin of 3.0" 1 h.Histogram.counts.(1);
  feq "bin width" 2.0 (Histogram.bin_width h);
  feq "fraction" 0.5 (Histogram.fraction h 0)

let test_cdf () =
  let cdf = Histogram.cdf [| 1.0; 2.0; 3.0; 4.0 |] in
  feq "below all" 0.0 (cdf 0.5);
  feq "half" 0.5 (cdf 2.0);
  feq "above all" 1.0 (cdf 10.0);
  feq "interior" 0.75 (cdf 3.5)

let test_fraction_above () =
  feq "strictly above" 0.25 (Histogram.fraction_above [| 1.0; 2.0; 3.0; 4.0 |] 3.0);
  feq "empty" 0.0 (Histogram.fraction_above [||] 0.0)

let test_linear_regression () =
  let fit = Regression.linear [| (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) |] in
  feq4 "slope" 2.0 fit.Regression.slope;
  feq4 "intercept" 1.0 fit.Regression.intercept;
  feq4 "perfect fit" 1.0 fit.Regression.r_squared

let test_linear_regression_noise () =
  let fit = Regression.linear [| (0.0, 0.0); (1.0, 1.1); (2.0, 1.9); (3.0, 3.05) |] in
  Alcotest.(check bool) "slope near 1" true (Float.abs (fit.Regression.slope -. 1.0) < 0.1);
  Alcotest.(check bool) "r2 high" true (fit.Regression.r_squared > 0.99)

let test_regression_errors () =
  Alcotest.check_raises "too few"
    (Invalid_argument "Regression.linear: need at least 2 points") (fun () ->
      ignore (Regression.linear [| (1.0, 1.0) |]));
  Alcotest.check_raises "no x variance"
    (Invalid_argument "Regression.linear: zero x-variance") (fun () ->
      ignore (Regression.linear [| (1.0, 1.0); (1.0, 2.0) |]))

let test_power_law () =
  (* y = 3 x^2.5 exactly. *)
  let points = Array.init 10 (fun i ->
      let x = float_of_int (i + 1) in
      (x, 3.0 *. (x ** 2.5)))
  in
  let e = ref 0.0 and c = ref 0.0 in
  let r2 = Regression.power_law points ~exponent:e ~coefficient:c in
  feq4 "exponent" 2.5 !e;
  feq4 "coefficient" 3.0 !c;
  feq4 "r2" 1.0 r2

let test_power_law_invalid () =
  let e = ref 0.0 and c = ref 0.0 in
  Alcotest.check_raises "non-positive"
    (Invalid_argument "Regression.power_law: coordinates must be positive") (fun () ->
      ignore (Regression.power_law [| (0.0, 1.0); (1.0, 2.0) |] ~exponent:e ~coefficient:c))

(* --- hypothesis testing -------------------------------------------------------- *)

module Hypothesis = Cold_stats.Hypothesis

let test_mann_whitney_identical_distributions () =
  (* Same distribution: p should usually be large. *)
  let g = Prng.create 50 in
  let xs = Array.init 30 (fun _ -> Prng.float g) in
  let ys = Array.init 30 (fun _ -> Prng.float g) in
  let r = Hypothesis.mann_whitney_u xs ys in
  Alcotest.(check bool) "not significant" false (Hypothesis.significant r);
  Alcotest.(check bool) "p in range" true (r.Hypothesis.p_value >= 0.0 && r.Hypothesis.p_value <= 1.0)

let test_mann_whitney_shifted () =
  let g = Prng.create 51 in
  let xs = Array.init 30 (fun _ -> Prng.float g) in
  let ys = Array.init 30 (fun _ -> 2.0 +. Prng.float g) in
  let r = Hypothesis.mann_whitney_u xs ys in
  Alcotest.(check bool) "clearly significant" true (Hypothesis.significant r);
  Alcotest.(check bool) "direction: xs rank lower" true (r.Hypothesis.z_score < 0.0)

let test_mann_whitney_ties () =
  (* Heavily tied data must not crash and keeps sensible p. *)
  let xs = [| 1.0; 1.0; 2.0; 2.0; 3.0; 3.0 |] in
  let ys = [| 2.0; 2.0; 3.0; 3.0; 4.0; 4.0 |] in
  let r = Hypothesis.mann_whitney_u xs ys in
  Alcotest.(check bool) "p in range" true (r.Hypothesis.p_value > 0.0 && r.Hypothesis.p_value <= 1.0)

let test_mann_whitney_known_u () =
  (* xs all smaller than ys: U = 0. *)
  let r = Hypothesis.mann_whitney_u [| 1.0; 2.0; 3.0 |] [| 10.0; 11.0; 12.0 |] in
  Alcotest.(check (float 1e-9)) "U = 0" 0.0 r.Hypothesis.u_statistic

let test_mann_whitney_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Hypothesis.mann_whitney_u: empty sample")
    (fun () -> ignore (Hypothesis.mann_whitney_u [||] [| 1.0 |]));
  Alcotest.check_raises "constant"
    (Invalid_argument "Hypothesis.mann_whitney_u: pooled sample is constant") (fun () ->
      ignore (Hypothesis.mann_whitney_u [| 1.0; 1.0 |] [| 1.0; 1.0 |]))

let qcheck_mann_whitney_symmetric =
  QCheck.Test.make ~name:"Mann-Whitney p is symmetric in sample order" ~count:100
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 3 20) (float_range 0. 10.))
              (list_of_size (QCheck.Gen.int_range 3 20) (float_range 0. 10.)))
    (fun (l1, l2) ->
      let xs = Array.of_list l1 and ys = Array.of_list l2 in
      QCheck.assume
        (Array.length xs > 0 && Array.length ys > 0
        &&
        let all = Array.append xs ys in
        Array.exists (fun x -> x <> all.(0)) all);
      let a = Hypothesis.mann_whitney_u xs ys in
      let b = Hypothesis.mann_whitney_u ys xs in
      Float.abs (a.Hypothesis.p_value -. b.Hypothesis.p_value) < 1e-9)

let qcheck_quantile_bounds =
  QCheck.Test.make ~name:"quantile between min and max" ~count:300
    QCheck.(pair (list_of_size (QCheck.Gen.int_range 1 30) (float_range (-100.) 100.))
              (float_bound_inclusive 1.0))
    (fun (l, q) ->
      let xs = Array.of_list l in
      let v = D.quantile xs q in
      v >= D.min_value xs -. 1e-9 && v <= D.max_value xs +. 1e-9)

let qcheck_bootstrap_brackets_point =
  QCheck.Test.make ~name:"bootstrap CI brackets the point estimate" ~count:50
    QCheck.(pair small_int (list_of_size (QCheck.Gen.int_range 2 40) (float_range 0. 10.)))
    (fun (seed, l) ->
      let xs = Array.of_list l in
      let ci = Bootstrap.mean_ci (Prng.create seed) xs in
      ci.Bootstrap.lo <= ci.Bootstrap.point +. 1e-9
      && ci.Bootstrap.point <= ci.Bootstrap.hi +. 1e-9)

let () =
  Alcotest.run "cold_stats"
    [
      ( "descriptive",
        [
          Alcotest.test_case "moments" `Quick test_descriptive;
          Alcotest.test_case "singleton" `Quick test_descriptive_singleton;
          Alcotest.test_case "empty" `Quick test_descriptive_empty;
          Alcotest.test_case "quantile" `Quick test_quantile;
          Alcotest.test_case "quantile invalid" `Quick test_quantile_invalid;
        ] );
      ( "bootstrap",
        [
          Alcotest.test_case "mean ci" `Quick test_bootstrap_mean_ci;
          Alcotest.test_case "deterministic" `Quick test_bootstrap_deterministic;
          Alcotest.test_case "constant sample" `Quick test_bootstrap_constant_sample;
          Alcotest.test_case "errors" `Quick test_bootstrap_errors;
          Alcotest.test_case "custom statistic" `Quick test_bootstrap_custom_statistic;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "bins" `Quick test_histogram;
          Alcotest.test_case "cdf" `Quick test_cdf;
          Alcotest.test_case "fraction above" `Quick test_fraction_above;
        ] );
      ( "regression",
        [
          Alcotest.test_case "linear exact" `Quick test_linear_regression;
          Alcotest.test_case "linear noisy" `Quick test_linear_regression_noise;
          Alcotest.test_case "errors" `Quick test_regression_errors;
          Alcotest.test_case "power law" `Quick test_power_law;
          Alcotest.test_case "power law invalid" `Quick test_power_law_invalid;
        ] );
      ( "hypothesis",
        [
          Alcotest.test_case "identical distributions" `Quick
            test_mann_whitney_identical_distributions;
          Alcotest.test_case "shifted" `Quick test_mann_whitney_shifted;
          Alcotest.test_case "ties" `Quick test_mann_whitney_ties;
          Alcotest.test_case "known U" `Quick test_mann_whitney_known_u;
          Alcotest.test_case "errors" `Quick test_mann_whitney_errors;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest qcheck_quantile_bounds;
          QCheck_alcotest.to_alcotest qcheck_bootstrap_brackets_point;
          QCheck_alcotest.to_alcotest qcheck_mann_whitney_symmetric;
        ] );
    ]
