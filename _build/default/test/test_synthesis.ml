(* Tests for the end-to-end synthesis API, ensembles, ABC, multi-AS. *)

module Graph = Cold_graph.Graph
module Traversal = Cold_graph.Traversal
module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Network = Cold_net.Network
module Summary = Cold_metrics.Summary
module Cost = Cold.Cost
module Synthesis = Cold.Synthesis
module Ensemble = Cold.Ensemble
module Abc = Cold.Abc
module Multi_as = Cold.Multi_as

(* Reduced settings so the suite stays fast. *)
let quick_config ?(params = Cost.params ()) () =
  {
    (Synthesis.default_config ~params ()) with
    Synthesis.ga =
      {
        Cold.Ga.default_settings with
        Cold.Ga.population_size = 24;
        generations = 15;
        num_saved = 6;
        num_crossover = 12;
        num_mutation = 6;
      };
    heuristic_permutations = 2;
  }

let test_synthesize_deterministic () =
  let cfg = quick_config () in
  let spec = Context.default_spec ~n:10 in
  let a = Synthesis.synthesize cfg spec ~seed:42 in
  let b = Synthesis.synthesize cfg spec ~seed:42 in
  Alcotest.(check bool) "same graph" true (Graph.equal a.Network.graph b.Network.graph)

let test_synthesize_network_valid () =
  let cfg = quick_config ~params:(Cost.params ~k2:2e-4 ~k3:10.0 ()) () in
  let net = Synthesis.synthesize cfg (Context.default_spec ~n:12) ~seed:1 in
  Alcotest.(check bool) "connected" true (Traversal.is_connected net.Network.graph);
  Alcotest.(check int) "size" 12 (Graph.node_count net.Network.graph);
  (* Routing works end to end. *)
  let p = Network.path net 0 11 in
  Alcotest.(check bool) "route exists" true (List.length p >= 1);
  Alcotest.(check bool) "capacities cover loads" true
    (Cold_net.Capacity.utilization net.Network.capacities net.Network.loads <= 1.0)

let test_design_uses_heuristic_seeds () =
  (* The initialised GA must be at least as good as the best heuristic. *)
  let params = Cost.params ~k2:1e-4 ~k3:10.0 () in
  let cfg = quick_config ~params () in
  let ctx = Context.generate (Context.default_spec ~n:12) (Prng.create 3) in
  let result = Synthesis.design_ga cfg ctx (Prng.create 4) in
  let best_heuristic =
    List.fold_left
      (fun acc alg ->
        Float.min acc (snd (Cold.Heuristics.run alg params ctx (Prng.create 5))))
      infinity
      (Cold.Heuristics.all ~permutations:2)
  in
  Alcotest.(check bool) "initialised GA <= best heuristic" true
    (result.Cold.Ga.best_cost <= best_heuristic +. 1e-9)

let test_ensemble_generate () =
  let cfg = quick_config () in
  let e = Ensemble.generate cfg (Context.default_spec ~n:8) ~count:6 ~seed:7 in
  Alcotest.(check int) "count" 6 (Array.length e.Ensemble.networks);
  Alcotest.(check int) "summaries" 6 (Array.length e.Ensemble.summaries);
  (* Networks are distinct by construction (§2 criterion 1). *)
  Alcotest.(check int) "all distinct" 6 (Ensemble.distinct_topologies e);
  Array.iter
    (fun s -> Alcotest.(check bool) "connected" true s.Summary.connected)
    e.Ensemble.summaries

let test_ensemble_same_context () =
  let cfg = quick_config () in
  let ctx = Context.generate (Context.default_spec ~n:8) (Prng.create 9) in
  let e = Ensemble.same_context cfg ctx ~count:4 ~seed:10 in
  Alcotest.(check int) "count" 4 (Array.length e.Ensemble.networks);
  Array.iter
    (fun n ->
      Alcotest.(check bool) "same context object" true (n.Network.context == ctx))
    e.Ensemble.networks

let test_ensemble_statistics () =
  let cfg = quick_config () in
  let e = Ensemble.generate cfg (Context.default_spec ~n:8) ~count:5 ~seed:11 in
  let degrees = Ensemble.statistic e (fun s -> s.Summary.average_degree) in
  Alcotest.(check int) "one value per network" 5 (Array.length degrees);
  let ci = Ensemble.mean_ci e (fun s -> s.Summary.average_degree) ~seed:12 in
  Alcotest.(check bool) "ci brackets" true
    (ci.Cold_stats.Bootstrap.lo <= ci.Cold_stats.Bootstrap.hi)

let test_ensemble_progress () =
  let cfg = quick_config () in
  let seen = ref [] in
  let _ =
    Ensemble.generate
      ~on_progress:(fun i -> seen := i :: !seen)
      cfg (Context.default_spec ~n:6) ~count:3 ~seed:13
  in
  Alcotest.(check (list int)) "progress callbacks" [ 0; 1; 2 ] (List.rev !seen)

let test_abc_observe () =
  let g = Cold_graph.Builders.star 12 in
  let obs = Abc.observe g in
  Alcotest.(check int) "n" 12 obs.Abc.n;
  Alcotest.(check (float 1e-9)) "diameter" 2.0 obs.Abc.diameter;
  Alcotest.(check (float 1e-9)) "self distance zero" 0.0 (Abc.distance obs obs)

let test_abc_distance_symmetry_zero () =
  let a = Abc.observe (Cold_graph.Builders.star 10) in
  let b = Abc.observe (Cold_graph.Builders.cycle 10) in
  Alcotest.(check bool) "positive between different shapes" true (Abc.distance a b > 0.0)

let test_abc_infer_accepts () =
  (* Observation from a tree-ish COLD target; rejection ABC with a loose
     epsilon must accept some samples and their k-values must lie in the
     prior's support. *)
  let obs =
    {
      Abc.n = 10;
      average_degree = 1.9;
      global_clustering = 0.0;
      cvnd = 0.6;
      diameter = 5.0;
    }
  in
  let samples = Abc.infer ~trials:12 ~epsilon:0.8 obs ~seed:21 in
  Alcotest.(check bool) "some acceptance" true (List.length samples > 0);
  List.iter
    (fun s ->
      Alcotest.(check bool) "k0 in prior" true
        (s.Abc.params.Cost.k0 >= 1.0 && s.Abc.params.Cost.k0 <= 100.0);
      Alcotest.(check bool) "distance within epsilon" true (s.Abc.distance <= 0.8))
    samples;
  (* Sorted ascending by distance. *)
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Abc.distance <= b.Abc.distance && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted" true (sorted samples);
  match Abc.posterior_mean samples with
  | None -> Alcotest.fail "posterior mean should exist"
  | Some p -> Alcotest.(check bool) "mean positive" true (p.Cost.k0 > 0.0)

let test_abc_posterior_mean_empty () =
  Alcotest.(check bool) "no samples -> None" true (Abc.posterior_mean [] = None)

let test_multi_as () =
  let cfg =
    {
      (Multi_as.default_config ~ases:3 ~cities:25 ()) with
      Multi_as.synthesis = quick_config ();
      presence = 0.6;
    }
  in
  let result = Multi_as.synthesize cfg ~seed:31 in
  Alcotest.(check int) "three ASes" 3 (Array.length result.Multi_as.ases);
  Alcotest.(check int) "city geography" 25 (Array.length result.Multi_as.city_points);
  Array.iter
    (fun (asn : Multi_as.as_network) ->
      Alcotest.(check bool) "at least 2 PoPs" true (Array.length asn.Multi_as.cities >= 2);
      Alcotest.(check bool) "network connected" true
        (Traversal.is_connected asn.Multi_as.network.Network.graph);
      (* City indices in range. *)
      Array.iter
        (fun c -> Alcotest.(check bool) "city in range" true (c >= 0 && c < 25))
        asn.Multi_as.cities)
    result.Multi_as.ases;
  (* Every interconnect is at a genuinely shared city. *)
  List.iter
    (fun ic ->
      let shared = Multi_as.shared_cities result ic.Multi_as.a ic.Multi_as.b in
      Alcotest.(check bool) "interconnect at shared city" true
        (List.mem ic.Multi_as.city shared))
    result.Multi_as.interconnects

let test_multi_as_deterministic () =
  let cfg =
    { (Multi_as.default_config ~ases:2 ~cities:15 ()) with
      Multi_as.synthesis = quick_config () }
  in
  let a = Multi_as.synthesize cfg ~seed:33 in
  let b = Multi_as.synthesize cfg ~seed:33 in
  Alcotest.(check int) "same interconnect count"
    (List.length a.Multi_as.interconnects)
    (List.length b.Multi_as.interconnects);
  Alcotest.(check bool) "same first AS topology" true
    (Graph.equal a.Multi_as.ases.(0).Multi_as.network.Network.graph
       b.Multi_as.ases.(0).Multi_as.network.Network.graph)

let () =
  Alcotest.run "cold_synthesis"
    [
      ( "synthesis",
        [
          Alcotest.test_case "deterministic" `Quick test_synthesize_deterministic;
          Alcotest.test_case "network valid" `Quick test_synthesize_network_valid;
          Alcotest.test_case "heuristic seeding" `Quick test_design_uses_heuristic_seeds;
        ] );
      ( "ensemble",
        [
          Alcotest.test_case "generate" `Quick test_ensemble_generate;
          Alcotest.test_case "same context" `Quick test_ensemble_same_context;
          Alcotest.test_case "statistics" `Quick test_ensemble_statistics;
          Alcotest.test_case "progress" `Quick test_ensemble_progress;
        ] );
      ( "abc",
        [
          Alcotest.test_case "observe" `Quick test_abc_observe;
          Alcotest.test_case "distance" `Quick test_abc_distance_symmetry_zero;
          Alcotest.test_case "infer accepts" `Slow test_abc_infer_accepts;
          Alcotest.test_case "posterior mean empty" `Quick test_abc_posterior_mean_empty;
        ] );
      ( "presets",
        [
          Alcotest.test_case "lookup" `Quick (fun () ->
              Alcotest.(check int) "four presets" 4 (List.length Cold.Presets.all);
              (match Cold.Presets.find "startup" with
              | Some p ->
                Alcotest.(check (float 1e-9)) "startup k3" 0.0 p.Cold.Presets.params.Cost.k3
              | None -> Alcotest.fail "startup preset missing");
              Alcotest.(check bool) "unknown is None" true
                (Cold.Presets.find "nope" = None);
              (* Presets are ordered by hubbiness intent: consolidated has the
                 largest k3. *)
              let k3_of p = p.Cold.Presets.params.Cost.k3 in
              Alcotest.(check bool) "consolidated most hub-averse" true
                (List.for_all
                   (fun p -> k3_of p <= k3_of Cold.Presets.consolidated_operator)
                   Cold.Presets.all));
          Alcotest.test_case "synthesis shapes" `Slow (fun () ->
              (* The startup preset yields trees; the consolidated preset
                 yields hubby networks. *)
              let net_of preset seed =
                let cfg =
                  { (quick_config ~params:preset.Cold.Presets.params ()) with
                    Cold.Synthesis.heuristic_permutations = 2 }
                in
                Cold.Synthesis.synthesize cfg (Context.default_spec ~n:15) ~seed
              in
              let tree = net_of Cold.Presets.startup 5 in
              Alcotest.(check int) "startup is a tree" 14
                (Graph.edge_count tree.Network.graph);
              let hubby = net_of Cold.Presets.consolidated_operator 5 in
              Alcotest.(check bool) "consolidated is hubby" true
                (Cold_metrics.Degree.coefficient_of_variation hubby.Network.graph > 1.0));
        ] );
      ( "multi_as",
        [
          Alcotest.test_case "structure" `Slow test_multi_as;
          Alcotest.test_case "deterministic" `Slow test_multi_as_deterministic;
        ] );
    ]
