(* Tests for Cold_traffic: population models and gravity matrices. *)

module Prng = Cold_prng.Prng
module Population = Cold_traffic.Population
module Gravity = Cold_traffic.Gravity

let feq = Alcotest.(check (float 1e-9))

let test_population_means () =
  let g = Prng.create 1 in
  let n = 100_000 in
  let mean model =
    let xs = Population.generate model ~n g in
    Array.fold_left ( +. ) 0.0 xs /. float_of_int n
  in
  let m = mean Population.default in
  Alcotest.(check bool) "exponential mean 30" true (Float.abs (m -. 30.0) < 0.6);
  let m = mean Population.pareto_moderate in
  Alcotest.(check bool) "pareto 1.5 mean 30" true (Float.abs (m -. 30.0) < 5.0);
  feq "constant" 7.0 (mean (Population.Constant 7.0))

let test_population_positive () =
  let g = Prng.create 2 in
  List.iter
    (fun model ->
      Array.iter
        (fun p -> if p < 0.0 then Alcotest.fail "negative population")
        (Population.generate model ~n:1000 g))
    [ Population.default; Population.pareto_heavy; Population.pareto_moderate ]

let test_pareto_heavier_tail () =
  (* Pareto 10/9 should show a larger max/mean ratio than exponential. *)
  let g = Prng.create 3 in
  let ratio model =
    let xs = Population.generate model ~n:20_000 g in
    let mx = Array.fold_left max 0.0 xs in
    let mean = Array.fold_left ( +. ) 0.0 xs /. 20_000.0 in
    mx /. mean
  in
  Alcotest.(check bool) "heavy tail dominates" true
    (ratio Population.pareto_heavy > ratio Population.default)

let test_mean_of () =
  feq "exp" 30.0 (Population.mean_of Population.default);
  feq "pareto" 30.0 (Population.mean_of Population.pareto_heavy);
  feq "const" 5.0 (Population.mean_of (Population.Constant 5.0));
  feq "log-normal" 30.0
    (Population.mean_of (Population.Log_normal { mean = 30.0; sigma = 1.0 }));
  feq "capital" 30.0
    (Population.mean_of (Population.Capital { mean = 30.0; dominance = 5.0 }))

let test_log_normal () =
  let g = Prng.create 40 in
  let model = Population.Log_normal { mean = 30.0; sigma = 1.0 } in
  let xs = Population.generate model ~n:100_000 g in
  let mean = Array.fold_left ( +. ) 0.0 xs /. 100_000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "log-normal mean near 30 (got %.2f)" mean)
    true
    (Float.abs (mean -. 30.0) < 1.0);
  Array.iter (fun x -> if x <= 0.0 then Alcotest.fail "non-positive draw") xs

let test_capital () =
  let g = Prng.create 41 in
  let model = Population.Capital { mean = 30.0; dominance = 6.0 } in
  let xs = Population.generate model ~n:20 g in
  feq "capital is dominance * mean" 180.0 xs.(0);
  (* Overall mean preserved in expectation: residual mean is
     30*(20-6)/19 ≈ 22.1; check over many draws. *)
  let total = ref 0.0 in
  let trials = 3000 in
  for _ = 1 to trials do
    let xs = Population.generate model ~n:20 g in
    total := !total +. (Array.fold_left ( +. ) 0.0 xs /. 20.0)
  done;
  let overall = !total /. float_of_int trials in
  Alcotest.(check bool)
    (Printf.sprintf "overall mean preserved (got %.2f)" overall)
    true
    (Float.abs (overall -. 30.0) < 1.0);
  Alcotest.check_raises "dominance too large"
    (Invalid_argument "Population.generate: dominance must be in [0, n)") (fun () ->
      ignore
        (Population.generate
           (Population.Capital { mean = 30.0; dominance = 5.0 })
           ~n:4 g))

let test_gravity_demands () =
  let tm = Gravity.of_populations [| 2.0; 3.0; 5.0 |] in
  feq "demand product" 6.0 (Gravity.demand tm 0 1);
  feq "symmetric populations" (Gravity.demand tm 1 0) (Gravity.demand tm 0 1);
  feq "diagonal zero" 0.0 (Gravity.demand tm 1 1);
  feq "pair demand doubles" 12.0 (Gravity.pair_demand tm 0 1);
  Alcotest.(check int) "size" 3 (Gravity.size tm)

let test_gravity_totals () =
  let tm = Gravity.of_populations [| 2.0; 3.0; 5.0 |] in
  (* total = (sum² - sum of squares) = 100 - 38 = 62. *)
  feq "total" 62.0 (Gravity.total tm);
  (* row 0: 2*(3+5) = 16. *)
  feq "row total" 16.0 (Gravity.row_total tm 0);
  (* Row totals sum to the grand total. *)
  feq "rows sum to total" (Gravity.total tm)
    (Gravity.row_total tm 0 +. Gravity.row_total tm 1 +. Gravity.row_total tm 2)

let test_gravity_scale () =
  let tm = Gravity.of_populations ~scale:2.0 [| 1.0; 4.0 |] in
  feq "scaled demand" 8.0 (Gravity.demand tm 0 1);
  let rescaled = Gravity.scale_total tm ~target:100.0 in
  feq "rescaled total" 100.0 (Gravity.total rescaled);
  (* Original untouched. *)
  feq "original total" 16.0 (Gravity.total tm)

let test_gravity_errors () =
  Alcotest.check_raises "negative population"
    (Invalid_argument "Gravity.of_populations: negative population") (fun () ->
      ignore (Gravity.of_populations [| 1.0; -2.0 |]));
  let tm = Gravity.of_populations [| 1.0; 2.0 |] in
  Alcotest.check_raises "bad index" (Invalid_argument "Gravity.demand") (fun () ->
      ignore (Gravity.demand tm 0 5))

let test_populations_copy () =
  let pops = [| 1.0; 2.0 |] in
  let tm = Gravity.of_populations pops in
  let out = Gravity.populations tm in
  out.(0) <- 99.0;
  feq "internal state unaffected" 2.0 (Gravity.demand tm 0 1)

let qcheck_gravity_maximum_entropy_consistency =
  (* For any positive populations: total = Σ_s row_total(s) and each demand
     is non-negative. *)
  QCheck.Test.make ~name:"gravity row totals consistent" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 2 12) (float_range 0.1 50.0))
    (fun pops ->
      let tm = Gravity.of_populations (Array.of_list pops) in
      let n = Gravity.size tm in
      let rows = ref 0.0 in
      for s = 0 to n - 1 do
        rows := !rows +. Gravity.row_total tm s
      done;
      Float.abs (!rows -. Gravity.total tm) < 1e-6 *. (1.0 +. Gravity.total tm))

let () =
  Alcotest.run "cold_traffic"
    [
      ( "population",
        [
          Alcotest.test_case "means" `Quick test_population_means;
          Alcotest.test_case "positive" `Quick test_population_positive;
          Alcotest.test_case "pareto tail" `Quick test_pareto_heavier_tail;
          Alcotest.test_case "mean_of" `Quick test_mean_of;
          Alcotest.test_case "log-normal" `Quick test_log_normal;
          Alcotest.test_case "capital" `Quick test_capital;
        ] );
      ( "gravity",
        [
          Alcotest.test_case "demands" `Quick test_gravity_demands;
          Alcotest.test_case "totals" `Quick test_gravity_totals;
          Alcotest.test_case "scale" `Quick test_gravity_scale;
          Alcotest.test_case "errors" `Quick test_gravity_errors;
          Alcotest.test_case "populations copy" `Quick test_populations_copy;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest qcheck_gravity_maximum_entropy_consistency ] );
    ]
