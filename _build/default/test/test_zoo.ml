(* Tests for the Topology-Zoo substitute. *)

module Graph = Cold_graph.Graph
module Traversal = Cold_graph.Traversal
module Degree = Cold_metrics.Degree
module Histogram = Cold_stats.Histogram
module Zoo = Cold_zoo.Zoo

let test_abilene () =
  let e = Zoo.abilene () in
  Alcotest.(check int) "11 PoPs" 11 (Graph.node_count e.Zoo.graph);
  Alcotest.(check int) "14 links" 14 (Graph.edge_count e.Zoo.graph);
  Alcotest.(check bool) "connected" true (Traversal.is_connected e.Zoo.graph);
  (* Abilene is 2-ish regular: degrees between 2 and 3. *)
  Alcotest.(check bool) "degrees sane" true
    (Degree.max_degree e.Zoo.graph <= 4 && Degree.leaf_count e.Zoo.graph = 0)

let test_nsfnet () =
  let e = Zoo.nsfnet () in
  Alcotest.(check int) "14 PoPs" 14 (Graph.node_count e.Zoo.graph);
  Alcotest.(check int) "21 links" 21 (Graph.edge_count e.Zoo.graph);
  Alcotest.(check bool) "connected" true (Traversal.is_connected e.Zoo.graph);
  Alcotest.(check (float 1e-9)) "average degree 3" 3.0 (Degree.average e.Zoo.graph)

let test_reference_structure () =
  (* Hop diameters of the embedded maps, as documented properties. *)
  Alcotest.(check int) "Abilene diameter" 5
    (Cold_metrics.Distance_metrics.diameter (Zoo.abilene ()).Zoo.graph);
  Alcotest.(check int) "NSFNET diameter" 4
    (Cold_metrics.Distance_metrics.diameter (Zoo.nsfnet ()).Zoo.graph);
  (* Both backbones are survivable rings-of-rings: no bridges. *)
  Alcotest.(check bool) "Abilene two-edge-connected" true
    (Cold_graph.Robustness.is_two_edge_connected (Zoo.abilene ()).Zoo.graph);
  Alcotest.(check bool) "NSFNET two-edge-connected" true
    (Cold_graph.Robustness.is_two_edge_connected (Zoo.nsfnet ()).Zoo.graph)

let test_stylized () =
  let hs = Zoo.stylized_hub_spoke () in
  Alcotest.(check bool) "hub-spoke CVND > 1.3" true
    (Degree.coefficient_of_variation hs.Zoo.graph > 1.3);
  Alcotest.(check int) "two hubs" 2 (Degree.hub_count hs.Zoo.graph);
  let rm = Zoo.stylized_ring_mesh () in
  Alcotest.(check bool) "ring-mesh connected" true (Traversal.is_connected rm.Zoo.graph);
  Alcotest.(check bool) "ring-mesh CVND moderate" true
    (Degree.coefficient_of_variation rm.Zoo.graph < 1.0)

let test_reference_set () =
  Alcotest.(check int) "four reference maps" 4 (List.length (Zoo.reference ()))

let test_synthetic_basics () =
  let zoo = Zoo.synthetic ~count:120 ~seed:5 () in
  Alcotest.(check int) "count" 120 (List.length zoo);
  List.iter
    (fun e ->
      Alcotest.(check bool) (e.Zoo.name ^ " connected") true
        (Traversal.is_connected e.Zoo.graph);
      let n = Graph.node_count e.Zoo.graph in
      Alcotest.(check bool) "size in 5..60" true (n >= 5 && n <= 60))
    zoo

let test_synthetic_deterministic () =
  let a = Zoo.synthetic ~count:30 ~seed:9 () in
  let b = Zoo.synthetic ~count:30 ~seed:9 () in
  List.iter2
    (fun x y ->
      Alcotest.(check string) "same names" x.Zoo.name y.Zoo.name;
      Alcotest.(check bool) "same graphs" true (Graph.equal x.Zoo.graph y.Zoo.graph))
    a b

let test_synthetic_cvnd_calibration () =
  (* Fig 8a: ~15 % of networks with CVND > 1 (we accept 8–25 %), with values
     reaching toward 2. *)
  let zoo = Zoo.synthetic ~count:250 ~seed:1 () in
  let cvnd = Zoo.cvnd_values zoo in
  let above = Histogram.fraction_above cvnd 1.0 in
  Alcotest.(check bool)
    (Printf.sprintf "fraction over 1 in [0.08,0.25] (got %.3f)" above)
    true
    (above >= 0.08 && above <= 0.25);
  let max_cvnd = Array.fold_left max 0.0 cvnd in
  Alcotest.(check bool)
    (Printf.sprintf "max CVND approaches 2 (got %.2f)" max_cvnd)
    true (max_cvnd > 1.6)

let test_synthetic_gcc_calibration () =
  (* §6: "90 % of the GCCs are below 0.25, and all of the higher GCCs belong
     to networks with very few nodes". *)
  let zoo = Zoo.synthetic ~count:250 ~seed:2 () in
  let gcc = Zoo.gcc_values zoo in
  let below = 1.0 -. Histogram.fraction_above gcc 0.25 in
  Alcotest.(check bool)
    (Printf.sprintf "fraction below 0.25 >= 0.85 (got %.3f)" below)
    true (below >= 0.85);
  (* High-GCC networks are small. *)
  List.iter
    (fun e ->
      if Cold_metrics.Clustering.global e.Zoo.graph > 0.25 then
        Alcotest.(check bool) "high GCC only on small nets" true
          (Graph.node_count e.Zoo.graph <= 15))
    zoo

let () =
  Alcotest.run "cold_zoo"
    [
      ( "reference",
        [
          Alcotest.test_case "abilene" `Quick test_abilene;
          Alcotest.test_case "nsfnet" `Quick test_nsfnet;
          Alcotest.test_case "reference structure" `Quick test_reference_structure;
          Alcotest.test_case "stylized" `Quick test_stylized;
          Alcotest.test_case "set" `Quick test_reference_set;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "basics" `Quick test_synthetic_basics;
          Alcotest.test_case "deterministic" `Quick test_synthetic_deterministic;
          Alcotest.test_case "CVND calibration (Fig 8a)" `Quick
            test_synthetic_cvnd_calibration;
          Alcotest.test_case "GCC calibration (§6)" `Quick test_synthetic_gcc_calibration;
        ] );
    ]
