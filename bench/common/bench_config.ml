(* Timing helper shared by every bench executable (main harness, smoke
   pass, serve sweep). Wall-clock reads are confined to bench/ and
   lib/serve by cold_lint's no-wall-clock rule; factoring the delta here
   keeps each driver free of hand-rolled gettimeofday arithmetic. *)

let timed f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, Unix.gettimeofday () -. t0)
