(* Shared configuration for the experiment harness.

   COLD_BENCH_SCALE selects the fidelity/run-time trade-off:
     smoke — seconds; sanity only.
     quick — minutes; the default. Reproduces every figure's shape with
             reduced trial counts and a reduced GA.
     full  — paper scale (T = M = 100, 20 trials, n up to 100, brute force
             to n = 7). Expect a long run. *)

type scale = Smoke | Quick | Full

let scale =
  match Sys.getenv_opt "COLD_BENCH_SCALE" with
  | Some "full" -> Full
  | Some "smoke" -> Smoke
  | _ -> Quick

let scale_name = match scale with Smoke -> "smoke" | Quick -> "quick" | Full -> "full"

(* Number of PoPs for the §6 tunability experiments (paper: 30). *)
let n_pops = match scale with Smoke -> 16 | Quick | Full -> 30

(* Trials per parameter point. Paper: 20 (Fig 3) / 200 (Figs 5-9). *)
let trials = match scale with Smoke -> 2 | Quick -> 5 | Full -> 20

let ga_settings =
  match scale with
  | Smoke ->
    {
      Cold.Ga.default_settings with
      Cold.Ga.population_size = 30;
      generations = 20;
      num_saved = 6;
      num_crossover = 15;
      num_mutation = 9;
    }
  | Quick ->
    {
      Cold.Ga.default_settings with
      Cold.Ga.population_size = 50;
      generations = 50;
      num_saved = 10;
      num_crossover = 25;
      num_mutation = 15;
    }
  | Full -> Cold.Ga.default_settings (* T = M = 100, as in §5 *)

let heuristic_permutations = match scale with Smoke -> 2 | Quick -> 3 | Full -> 10

(* The paper's Fig 3/5-9 x-axis: k2 from 2.5e-5 to 1.6e-3 (log grid). *)
let k2_grid =
  match scale with
  | Smoke -> [ 2.5e-5; 1.6e-3 ]
  | Quick -> [ 2.5e-5; 1.0e-4; 4.0e-4; 1.6e-3 ]
  | Full -> [ 2.5e-5; 5.0e-5; 1.0e-4; 2.0e-4; 4.0e-4; 8.0e-4; 1.6e-3 ]

(* Fig 5-7 series: k3 ∈ {0, 10, 100, 1000}. *)
let k3_series = [ 0.0; 10.0; 100.0; 1000.0 ]

(* Fig 8b/9 x-axis: k3 sweep at fixed k2 values. *)
let k3_grid =
  match scale with
  | Smoke -> [ 1.0; 1000.0 ]
  | Quick -> [ 1.0; 10.0; 100.0; 1000.0 ]
  | Full -> [ 1.0; 3.0; 10.0; 30.0; 100.0; 300.0; 1000.0 ]

let fig8_k2_series = [ 2.5e-5; 1.0e-4; 4.0e-4; 1.6e-3 ]

(* Fig 4 network sizes. Paper: up to several hundred. *)
let fig4_sizes =
  match scale with
  | Smoke -> [ 8; 12; 16 ]
  | Quick -> [ 10; 14; 20; 28; 40; 56 ]
  | Full -> [ 10; 14; 20; 28; 40; 56; 80; 100 ]

(* Brute-force validation size (§5: up to 8 in the paper; 2^21 graphs at
   n = 7 already takes minutes). *)
let brute_force_n = match scale with Smoke -> 5 | Quick -> 6 | Full -> 7

let table1_trials = match scale with Smoke -> 4 | Quick -> 8 | Full -> 20

let zoo_count = match scale with Smoke -> 60 | Quick -> 250 | Full -> 250

let fig1_sizes =
  match scale with
  | Smoke -> [ 10; 20; 30 ]
  | Quick | Full -> [ 10; 15; 20; 25; 30; 35; 40; 45; 50 ]

let master_seed = 20140702 (* CoNEXT'14 camera-ready vibes; any constant works. *)

let synthesis_config ?(params = Cold.Cost.params ()) () =
  {
    (Cold.Synthesis.default_config ~params ()) with
    Cold.Synthesis.ga = ga_settings;
    heuristic_permutations;
  }

(* --- output helpers --------------------------------------------------------- *)

let section title =
  Printf.printf "\n%s\n%s\n" title (String.make (String.length title) '=')

let subsection title = Printf.printf "\n-- %s --\n" title

let time_it = Bench_config.timed

let pp_ci (ci : Cold_stats.Bootstrap.interval) =
  Printf.sprintf "%8.3f [%8.3f, %8.3f]" ci.Cold_stats.Bootstrap.point
    ci.Cold_stats.Bootstrap.lo ci.Cold_stats.Bootstrap.hi

(* Mean + bootstrap CI of a per-trial statistic, with a deterministic
   bootstrap stream per label. *)
let ci_of label values =
  Cold_stats.Bootstrap.mean_ci
    (Cold_prng.Prng.create (Cold_prng.Prng.seed_of_string label))
    values

(* --- flat-JSON bench records -------------------------------------------------- *)

(* BENCH_*.json files are arrays of one-level objects (string and number
   values, no nesting). Benches used to clobber these files wholesale, which
   meant one bench's rerun erased every other bench's cells. The helpers
   below instead merge: rows are identified by a key (a list of field
   names), matching rows are replaced, everything else is preserved
   verbatim, and rows missing a key field — leftovers from an older schema —
   are dropped. A purpose-built scanner for exactly this flat shape keeps
   the harness dependency-free. *)

let split_json_objects s =
  (* Raw "{...}" substrings of a flat JSON array, in order. *)
  let objs = ref [] and depth = ref 0 and start = ref 0 in
  String.iteri
    (fun i c ->
      match c with
      | '{' ->
        if !depth = 0 then start := i;
        incr depth
      | '}' ->
        if !depth > 0 then begin
          decr depth;
          if !depth = 0 then
            objs := String.sub s !start (i - !start + 1) :: !objs
        end
      | _ -> ())
    s;
  List.rev !objs

let json_field obj name =
  (* The raw value of ["name"] in a flat object: quoted strings are
     unquoted, numbers returned as written. [None] if absent. *)
  let pat = "\"" ^ name ^ "\"" in
  let plen = String.length pat in
  let len = String.length obj in
  let rec find i =
    if i + plen > len then None
    else if String.sub obj i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some j ->
    let j = ref j in
    while !j < len && (obj.[!j] = ' ' || obj.[!j] = ':') do
      incr j
    done;
    if !j >= len then None
    else if obj.[!j] = '"' then begin
      let st = !j + 1 in
      let k = ref st in
      while !k < len && obj.[!k] <> '"' do
        incr k
      done;
      Some (String.sub obj st (!k - st))
    end
    else begin
      let st = !j in
      let k = ref st in
      let stop c = c = ',' || c = '}' || c = ' ' || c = '\n' || c = '\t' in
      while !k < len && not (stop obj.[!k]) do
        incr k
      done;
      if !k = st then None else Some (String.sub obj st (!k - st))
    end

let read_file path =
  match open_in path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))

let merge_json_rows ~path ~key new_rows =
  (* [new_rows] are raw "{...}" strings. Rows already in [path] whose key
     fields all match a new row are replaced; rows lacking a key field are
     dropped; the rest are kept in place. Returns the total row count. *)
  let key_of row =
    let fields = List.map (fun f -> json_field row f) key in
    if List.exists (fun v -> v = None) fields then None else Some fields
  in
  let new_keys = List.filter_map key_of new_rows in
  let old_rows =
    match read_file path with None -> [] | Some s -> split_json_objects s
  in
  let kept =
    List.filter
      (fun row ->
        match key_of row with
        | None -> false
        | Some k -> not (List.mem k new_keys))
      old_rows
  in
  let all = kept @ new_rows in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        ("[\n  " ^ String.concat ",\n  " all ^ "\n]\n"));
  List.length all
