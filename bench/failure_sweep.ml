(* Failure-trace replay: survivability of designs of increasing redundancy
   under the SAME deterministic failure schedule, plus the replay engine's
   throughput (steps/sec, sequential vs autodetected domains, asserted
   bit-identical).

   Four designs per size, fragile to redundant:
     mst             — the minimum spanning tree: every link a bridge;
     cold            — the unconstrained GA optimum;
     cold_survivable — the GA under the 2-edge-connected constraint;
     full_mesh       — the operator's brute-force upper bound.

   Cells land in BENCH_failure.json keyed by (bench, design, n, steps).
   Schema per row:
     {bench, design, n, steps, links, availability, worst_delivered,
      partitioned_steps, replay_s, steps_per_sec, speedup_vs_seq} *)

module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Graph = Cold_graph.Graph
module Mst = Cold_graph.Mst
module Network = Cold_net.Network
module Failure = Cold_sim.Failure
module Par = Cold_par.Par

type cell = {
  design : string;
  n : int;
  steps : int;
  links : int;
  availability : float;
  worst_delivered : float;
  partitioned_steps : int;
  replay_s : float;
  steps_per_sec : float;
  speedup_vs_seq : float;
}

let sizes =
  match Config.scale with
  | Config.Smoke -> [ 10 ]
  | Config.Quick -> [ 16; 24 ]
  | Config.Full -> [ 16; 24; 40 ]

let steps =
  match Config.scale with
  | Config.Smoke -> 10
  | Config.Quick -> 40
  | Config.Full -> 100

let rates =
  { Failure.link_rate = 0.02; node_rate = 0.01; regional_rate = 0.05;
    regional_radius = 12.0 }

let designs ctx =
  let n = Context.n ctx in
  let rng seed = Prng.create (Config.master_seed + seed) in
  let cold survivable =
    let cfg =
      { (Config.synthesis_config ()) with Cold.Synthesis.survivable } in
    (Cold.Synthesis.design_ga cfg ctx (rng 1)).Cold.Ga.best
  in
  [
    ("mst", Mst.mst_graph ~n ~weight:(fun u v -> Context.distance ctx u v));
    ("cold", cold false);
    ("cold_survivable", cold true);
    ("full_mesh", Graph.complete n);
  ]

let row (c : cell) =
  Printf.sprintf
    "{\"bench\": \"failure_sweep\", \"design\": \"%s\", \"n\": %d, \
     \"steps\": %d, \"links\": %d, \"availability\": %.5f, \
     \"worst_delivered\": %.5f, \"partitioned_steps\": %d, \
     \"replay_s\": %.3f, \"steps_per_sec\": %.1f, \"speedup_vs_seq\": %.3f}"
    c.design c.n c.steps c.links c.availability c.worst_delivered
    c.partitioned_steps c.replay_s c.steps_per_sec c.speedup_vs_seq

let print_cell (c : cell) =
  Printf.printf
    "%-16s n=%-3d %3d steps %4d links  avail %.4f  worst %.4f  part %3d  \
     %7.1f steps/s  vs seq %.2fx\n%!"
    c.design c.n c.steps c.links c.availability c.worst_delivered
    c.partitioned_steps c.steps_per_sec c.speedup_vs_seq

let run () =
  Config.section
    "Failure-trace replay: survivability vs redundancy (BENCH_failure.json)";
  let auto = Par.resolve ~domains:0 () in
  Printf.printf "autodetected domains: %d\n" auto;
  let cells = ref [] in
  List.iter
    (fun n ->
      let ctx =
        Context.generate (Context.default_spec ~n)
          (Prng.create (Config.master_seed + n))
      in
      (* One trace per size: every design faces the identical schedule. *)
      let trace = Failure.generate ~rates ~steps ctx ~seed:Config.master_seed in
      List.iter
        (fun (design, g) ->
          let net = Network.build ctx g in
          let (reports, seq_wall) =
            Config.time_it (fun () -> Failure.evaluate ~domains:1 net trace)
          in
          let (wall, speedup) =
            if auto > 1 then begin
              let (par_reports, par_wall) =
                Config.time_it (fun () ->
                    Failure.evaluate ~domains:auto net trace)
              in
              (* The replay contract: fan-out never moves a bit. *)
              Array.iteri
                (fun i (r : Cold_net.Survivability.report) ->
                  assert (
                    Float.equal r.Cold_net.Survivability.delivered_fraction
                      par_reports.(i)
                        .Cold_net.Survivability.delivered_fraction))
                reports;
              (par_wall, seq_wall /. par_wall)
            end
            else (seq_wall, 1.0)
          in
          let s = Failure.summarize (Prng.create 5) reports in
          let c =
            {
              design;
              n;
              steps;
              links = Graph.edge_count g;
              availability = s.Failure.availability.Cold_stats.Bootstrap.point;
              worst_delivered = s.Failure.worst_delivered;
              partitioned_steps = s.Failure.partitioned_steps;
              replay_s = wall;
              steps_per_sec = float_of_int steps /. wall;
              speedup_vs_seq = speedup;
            }
          in
          print_cell c;
          cells := c :: !cells)
        (designs ctx))
    sizes;
  let rows = List.rev_map row !cells in
  let total =
    Config.merge_json_rows ~path:"BENCH_failure.json"
      ~key:[ "bench"; "design"; "n"; "steps" ]
      rows
  in
  Printf.printf "merged BENCH_failure.json (%d new cells, %d total)\n"
    (List.length rows) total
