(* Optimizer hot-path throughput: evaluations/sec of the evaluation engine,
   full recomputation vs the delta-aware engines, sequential vs
   autodetected domains, at n = 20 and n = 40.

   Three workloads stress different evaluation mixes:
     ga_hotpath    — the standard GA (crossover-heavy: most children are far
                     from their parents, so incremental gains are modest);
     ga_mutation   — a mutation-heavy GA (most children are a few edge flips
                     from a parent: the incremental fast path's GA sweet spot);
     local_search  — simulated annealing (every candidate is a single move
                     from the current state: the incremental engine's
                     primary beneficiary).

   Engine variants:
     full          — Cost.evaluate from scratch per candidate;
     incremental   — the mark-dirty engine (repair:false): affected trees
                     recomputed by full per-source Dijkstra at refresh;
     dynamic       — the in-place tree-repair engine (repair:true, the
                     library default): affected trees patched by frontier
                     re-relaxation (doc/PERF.md "Dynamic SSSP repair").
   full, incremental and dynamic run the identical RNG trajectory and are
   asserted bit-identical in-bench.

   Cells land in BENCH_ga.json keyed by (bench, variant, n, domains):
   existing rows for other keys are preserved, matching rows are replaced —
   reruns accumulate instead of clobbering. Schema per row:
     {bench, variant, n, domains, evals_per_sec, wall_s,
      speedup_vs_seq, speedup_vs_full}
   where speedup_vs_seq compares against the 1-domain cell of the same
   variant and speedup_vs_full against the "full" variant of the same
   (bench, n, domains). The fitness memo is disabled so evals/sec stays a
   routing-throughput number. *)

module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Par = Cold_par.Par
module Ga = Cold.Ga
module Cost = Cold.Cost
module Local_search = Cold.Local_search

type cell = {
  bench : string;
  variant : string; (* "full" | "incremental" | "dynamic" | "locality" *)
  n : int;
  domains : int;
  evals_per_sec : float;
  wall_s : float;
  speedup_vs_seq : float;
  speedup_vs_full : float;
}

let ga_settings =
  match Config.scale with
  | Config.Smoke ->
    {
      Cold.Ga.default_settings with
      Cold.Ga.population_size = 20;
      generations = 10;
      num_saved = 4;
      num_crossover = 10;
      num_mutation = 6;
    }
  | Config.Quick ->
    {
      Cold.Ga.default_settings with
      Cold.Ga.population_size = 40;
      generations = 25;
      num_saved = 8;
      num_crossover = 20;
      num_mutation = 12;
    }
  | Config.Full -> Cold.Ga.default_settings

let mutation_settings =
  match Config.scale with
  | Config.Smoke ->
    {
      Cold.Ga.default_settings with
      Cold.Ga.population_size = 20;
      generations = 10;
      num_saved = 4;
      num_crossover = 2;
      num_mutation = 14;
    }
  | Config.Quick ->
    {
      Cold.Ga.default_settings with
      Cold.Ga.population_size = 40;
      generations = 25;
      num_saved = 8;
      num_crossover = 4;
      num_mutation = 28;
    }
  | Config.Full ->
    {
      Cold.Ga.default_settings with
      Cold.Ga.num_crossover = 10;
      num_mutation = 70;
    }

let ls_iterations =
  match Config.scale with
  | Config.Smoke -> 300
  | Config.Quick -> 1500
  | Config.Full -> 4000

let ctx_for n =
  Context.generate (Context.default_spec ~n) (Prng.create (Config.master_seed + n))

let params = Cost.params ~k2:1e-4 ()

(* The two delta-aware variants measured by every workload: the mark-dirty
   engine and the dynamic in-place repair engine. *)
let engines = [ ("incremental", false); ("dynamic", true) ]

let measure_ga ~settings ~incremental ?repair ~n ~domains () =
  let ctx = ctx_for n in
  let run () =
    Ga.run ~incremental ?repair ~domains ~cache_slots:0 settings params ctx
      (Prng.create 42)
  in
  let (result, wall) = Config.time_it run in
  (result, wall, float_of_int result.Cold.Ga.evaluations /. wall)

let measure_ls ~incremental ?repair ~n () =
  let ctx = ctx_for n in
  let settings =
    { Local_search.default_settings with Local_search.iterations = ls_iterations }
  in
  let run () =
    Local_search.run ~incremental ?repair settings params ctx (Prng.create 43)
  in
  let (result, wall) = Config.time_it run in
  (result, wall, float_of_int result.Local_search.evaluations /. wall)

let row c =
  Printf.sprintf
    "{\"bench\": \"%s\", \"variant\": \"%s\", \"n\": %d, \"domains\": %d, \
     \"evals_per_sec\": %.1f, \"wall_s\": %.3f, \"speedup_vs_seq\": %.3f, \
     \"speedup_vs_full\": %.3f}"
    c.bench c.variant c.n c.domains c.evals_per_sec c.wall_s c.speedup_vs_seq
    c.speedup_vs_full

let print_cell c =
  Printf.printf
    "%-12s %-11s n=%-3d %d domains %9.1f evals/s (%.2fs)  vs seq %.2fx  vs full %.2fx\n%!"
    c.bench c.variant c.n c.domains c.evals_per_sec c.wall_s c.speedup_vs_seq
    c.speedup_vs_full

let run () =
  Config.section
    "Evaluation engine: incremental vs full recomputation (BENCH_ga.json)";
  let auto = Par.resolve ~domains:0 () in
  Printf.printf "autodetected domains: %d\n" auto;
  let cells = ref [] in
  let add c =
    print_cell c;
    cells := c :: !cells
  in
  let ls_speedup_n40 = ref 0.0 in

  (* GA workloads: full, incremental and dynamic at 1 domain and (when
     available) the autodetected count, asserting bit-identical optima
     throughout. *)
  List.iter
    (fun (bench, settings) ->
      List.iter
        (fun n ->
          let (full_seq, full_wall, full_eps) =
            measure_ga ~settings ~incremental:false ~n ~domains:1 ()
          in
          add
            { bench; variant = "full"; n; domains = 1; evals_per_sec = full_eps;
              wall_s = full_wall; speedup_vs_seq = 1.0; speedup_vs_full = 1.0 };
          let full_par_eps = ref full_eps in
          if auto > 1 then begin
            let (full_par, fp_wall, fp_eps) =
              measure_ga ~settings ~incremental:false ~n ~domains:auto ()
            in
            assert (
              Float.equal full_par.Cold.Ga.best_cost full_seq.Cold.Ga.best_cost);
            add
              { bench; variant = "full"; n; domains = auto;
                evals_per_sec = fp_eps; wall_s = fp_wall;
                speedup_vs_seq = fp_eps /. full_eps; speedup_vs_full = 1.0 };
            full_par_eps := fp_eps
          end;
          List.iter
            (fun (variant, repair) ->
              let (inc_seq, inc_wall, inc_eps) =
                measure_ga ~settings ~incremental:true ~repair ~n ~domains:1 ()
              in
              assert (
                Float.equal inc_seq.Cold.Ga.best_cost full_seq.Cold.Ga.best_cost);
              add
                { bench; variant; n; domains = 1;
                  evals_per_sec = inc_eps; wall_s = inc_wall;
                  speedup_vs_seq = 1.0; speedup_vs_full = inc_eps /. full_eps };
              if auto > 1 then begin
                let (inc_par, ip_wall, ip_eps) =
                  measure_ga ~settings ~incremental:true ~repair ~n
                    ~domains:auto ()
                in
                assert (
                  Float.equal inc_par.Cold.Ga.best_cost
                    full_seq.Cold.Ga.best_cost);
                add
                  { bench; variant; n; domains = auto;
                    evals_per_sec = ip_eps; wall_s = ip_wall;
                    speedup_vs_seq = ip_eps /. inc_eps;
                    speedup_vs_full = ip_eps /. !full_par_eps }
              end)
            engines)
        [ 20; 40 ])
    [ ("ga_hotpath", ga_settings); ("ga_mutation", mutation_settings) ];

  (* Local search: the single-edge-move workload. *)
  List.iter
    (fun n ->
      let (full_r, full_wall, full_eps) = measure_ls ~incremental:false ~n () in
      add
        { bench = "local_search"; variant = "full"; n; domains = 1;
          evals_per_sec = full_eps; wall_s = full_wall; speedup_vs_seq = 1.0;
          speedup_vs_full = 1.0 };
      List.iter
        (fun (variant, repair) ->
          let (inc_r, inc_wall, inc_eps) =
            measure_ls ~incremental:true ~repair ~n ()
          in
          assert (
            Float.equal inc_r.Local_search.best_cost
              full_r.Local_search.best_cost);
          let speedup = inc_eps /. full_eps in
          if n = 40 && String.equal variant "dynamic" then
            ls_speedup_n40 := speedup;
          add
            { bench = "local_search"; variant; n; domains = 1;
              evals_per_sec = inc_eps; wall_s = inc_wall; speedup_vs_seq = 1.0;
              speedup_vs_full = speedup })
        engines)
    [ 20; 40 ];

  Printf.printf
    "\nlocal_search n=40: dynamic %.2fx over full recomputation\n"
    !ls_speedup_n40;
  let rows = List.rev_map row !cells in
  let total =
    Config.merge_json_rows ~path:"BENCH_ga.json"
      ~key:[ "bench"; "variant"; "n"; "domains" ]
      rows
  in
  Printf.printf "merged BENCH_ga.json (%d new cells, %d total)\n"
    (List.length rows) total

(* ------------------------------------------------------------------ *)
(* Large-n scaling cells: n ∈ {100, 300, 1000}, the same three workloads,
   four variants each — full recomputation, the mark-dirty incremental
   engine, the dynamic in-place repair engine (all three on the historical
   RNG trajectory, asserted bit-identical), and the opt-in spatial locality
   mode (its own deterministic trajectory, so its cost is reported, not
   asserted). Settings shrink with n so the n = 1000 cells stay minutes,
   not hours: the quantity measured is evals/sec of the evaluation engine,
   which tiny populations sample just as well. Runs under the @bench-large
   alias (COLD_BENCH_ONLY=ga_hotpath_large), never under @runtest. *)

let locality_k = 10

let large_ga ~mutation_heavy n =
  let base = Cold.Ga.default_settings in
  if n <= 100 then
    { base with
      Cold.Ga.population_size = 16; generations = 6; num_saved = 4;
      num_crossover = (if mutation_heavy then 2 else 6);
      num_mutation = (if mutation_heavy then 10 else 6) }
  else if n <= 300 then
    { base with
      Cold.Ga.population_size = 8; generations = 3; num_saved = 2;
      num_crossover = (if mutation_heavy then 1 else 3);
      num_mutation = (if mutation_heavy then 5 else 3) }
  else
    { base with
      Cold.Ga.population_size = 5; generations = 2; num_saved = 2;
      num_crossover = (if mutation_heavy then 0 else 1);
      num_mutation = (if mutation_heavy then 3 else 2) }

let large_ls_iterations n = if n <= 100 then 400 else if n <= 300 then 120 else 30

let large_ns =
  (* The n = 1000 cells are the point of the exercise but cost minutes;
     smoke scale (the CI alias) stops at 300. *)
  match Config.scale with
  | Config.Smoke -> [ 100; 300 ]
  | Config.Quick | Config.Full -> [ 100; 300; 1000 ]

let measure_ga_locality ~settings ~n =
  let ctx = ctx_for n in
  let run () =
    Ga.run ~incremental:true ~locality:locality_k ~domains:1 ~cache_slots:0
      settings params ctx (Prng.create 42)
  in
  let (result, wall) = Config.time_it run in
  (result, wall, float_of_int result.Cold.Ga.evaluations /. wall)

let measure_ls_locality ~n ~iterations =
  let ctx = ctx_for n in
  let settings =
    { Local_search.default_settings with Local_search.iterations } in
  let run () =
    Local_search.run ~incremental:true ~locality:locality_k settings params ctx
      (Prng.create 43)
  in
  let (result, wall) = Config.time_it run in
  (result, wall, float_of_int result.Local_search.evaluations /. wall)

let run_large () =
  Config.section
    "Large-n scaling: full vs incremental vs locality (BENCH_ga.json)";
  let cells = ref [] in
  let add c =
    print_cell c;
    cells := c :: !cells
  in
  (* The headline scaling numbers: the single-move workload (every candidate
     one edge flip from the current state) is what the delta-aware engines
     optimize; crossover-heavy GA churn is their documented worst case. The
     dynamic engine's target is >= 1.3x over the mark-dirty engine on the
     local-search workload (it saves the per-affected-source Dijkstra, not
     the accumulation). *)
  let inc_speedup_n100 = ref 0.0 in
  let dyn_vs_inc = ref [] in
  List.iter
    (fun n ->
      List.iter
        (fun (bench, mutation_heavy) ->
          let settings = large_ga ~mutation_heavy n in
          let (full_r, full_wall, full_eps) =
            measure_ga ~settings ~incremental:false ~n ~domains:1 ()
          in
          add
            { bench; variant = "full"; n; domains = 1; evals_per_sec = full_eps;
              wall_s = full_wall; speedup_vs_seq = 1.0; speedup_vs_full = 1.0 };
          List.iter
            (fun (variant, repair) ->
              let (inc_r, inc_wall, inc_eps) =
                measure_ga ~settings ~incremental:true ~repair ~n ~domains:1 ()
              in
              assert (
                Float.equal inc_r.Cold.Ga.best_cost full_r.Cold.Ga.best_cost);
              add
                { bench; variant; n; domains = 1;
                  evals_per_sec = inc_eps; wall_s = inc_wall;
                  speedup_vs_seq = 1.0;
                  speedup_vs_full = inc_eps /. full_eps })
            engines;
          let (_loc_r, loc_wall, loc_eps) =
            measure_ga_locality ~settings ~n
          in
          add
            { bench; variant = "locality"; n; domains = 1;
              evals_per_sec = loc_eps; wall_s = loc_wall; speedup_vs_seq = 1.0;
              speedup_vs_full = loc_eps /. full_eps })
        [ ("ga_hotpath", false); ("ga_mutation", true) ];
      let iterations = large_ls_iterations n in
      let ctx = ctx_for n in
      let settings =
        { Local_search.default_settings with Local_search.iterations } in
      let measure ~incremental ?repair () =
        let run () =
          Local_search.run ~incremental ?repair settings params ctx
            (Prng.create 43)
        in
        let (r, w) = Config.time_it run in
        (r, w, float_of_int r.Local_search.evaluations /. w)
      in
      let (full_r, full_wall, full_eps) = measure ~incremental:false () in
      add
        { bench = "local_search"; variant = "full"; n; domains = 1;
          evals_per_sec = full_eps; wall_s = full_wall; speedup_vs_seq = 1.0;
          speedup_vs_full = 1.0 };
      let inc_eps_of = ref full_eps in
      List.iter
        (fun (variant, repair) ->
          let (inc_r, inc_wall, inc_eps) = measure ~incremental:true ~repair () in
          assert (
            Float.equal inc_r.Local_search.best_cost
              full_r.Local_search.best_cost);
          if String.equal variant "incremental" then begin
            inc_eps_of := inc_eps;
            if n = 100 then inc_speedup_n100 := inc_eps /. full_eps
          end
          else dyn_vs_inc := (n, inc_eps /. !inc_eps_of) :: !dyn_vs_inc;
          add
            { bench = "local_search"; variant; n; domains = 1;
              evals_per_sec = inc_eps; wall_s = inc_wall; speedup_vs_seq = 1.0;
              speedup_vs_full = inc_eps /. full_eps })
        engines;
      let (_loc_r, loc_wall, loc_eps) = measure_ls_locality ~n ~iterations in
      add
        { bench = "local_search"; variant = "locality"; n; domains = 1;
          evals_per_sec = loc_eps; wall_s = loc_wall; speedup_vs_seq = 1.0;
          speedup_vs_full = loc_eps /. full_eps })
    large_ns;
  Printf.printf
    "\nlocal_search n=100: incremental %.2fx over full recomputation (target >= 2x)\n"
    !inc_speedup_n100;
  List.iter
    (fun (n, r) ->
      Printf.printf
        "local_search n=%d: dynamic %.2fx over mark-dirty incremental (target >= 1.3x)\n"
        n r)
    (List.rev !dyn_vs_inc);
  let rows = List.rev_map row !cells in
  let total =
    Config.merge_json_rows ~path:"BENCH_ga.json"
      ~key:[ "bench"; "variant"; "n"; "domains" ]
      rows
  in
  Printf.printf "merged BENCH_ga.json (%d new cells, %d total)\n"
    (List.length rows) total
