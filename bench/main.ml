(* COLD experiment harness: regenerates every table and figure of the paper
   plus the §5/§7 validation experiments. Scale with COLD_BENCH_SCALE =
   smoke | quick (default) | full; see bench/config.ml and EXPERIMENTS.md.
   COLD_BENCH_ONLY=name1,name2 runs a subset (names printed below). *)

let want =
  match Sys.getenv_opt "COLD_BENCH_ONLY" with
  | None | Some "" -> fun _ -> true
  | Some s ->
    let names = String.split_on_char ',' s in
    fun name -> List.exists (String.equal name) names

let bench name f = if want name then f ()

let () =
  Printf.printf "COLD benchmark harness — scale: %s\n" Config.scale_name;
  Printf.printf "(set COLD_BENCH_SCALE=smoke|quick|full to change)\n";
  let (), elapsed =
    Bench_config.timed (fun () ->
        bench "table1" Table1.run;
        bench "fig1" Fig1.run;
        bench "fig2" Fig2.run;
        bench "fig3" Fig3.run;
        bench "fig4" Fig4.run;
        bench "tunability" (fun () -> ignore (Tunability.run ()));
        bench "hubcost" Hubcost.run;
        bench "ga_optimality" Ga_optimality.run;
        bench "ablation_context" Ablation_context.run;
        bench "ablation_ga" Ablation_ga.run;
        bench "ablation_cost" Ablation_cost.run;
        bench "ablation_optimizer" Ablation_optimizer.run;
        bench "evolution" Evolution_experiment.run;
        bench "abc" Abc_experiment.run;
        bench "ablation_routing" Ablation_routing.run;
        bench "ga_hotpath" Ga_hotpath.run;
        bench "failure_sweep" Failure_sweep.run;
        bench "serve_sweep" Serve_sweep.run;
        (* Large-n scaling cells (n up to 1000): opt-in only — run via the
           @bench-large alias or COLD_BENCH_ONLY=ga_hotpath_large. *)
        (match Sys.getenv_opt "COLD_BENCH_ONLY" with
        | Some _ -> bench "ga_hotpath_large" Ga_hotpath.run_large
        | None -> ());
        bench "micro" Micro.run)
  in
  Printf.printf "\ntotal harness time: %.0fs\n" elapsed
