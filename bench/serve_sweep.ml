(* cold_serve throughput and tail latency (BENCH_serve.json).

   Boots the daemon in-process on an ephemeral loopback port and drives it
   with a single synchronous client, measuring the full wire round trip —
   request line out, response frame in. Two modes per cell:

     cold — distinct seeds, every request synthesizes from scratch;
     hit  — the same seeds again, every request replays from the cache.

   The contract worth paying for a daemon: cache-hit throughput must be at
   least an order of magnitude above cold-synthesis throughput (asserted
   here at every scale), because a hit is a table lookup plus one frame
   write while a miss runs the full GA pipeline. *)

module Server = Cold_serve.Server

(* --- minimal blocking client --------------------------------------------------- *)

type client = { fd : Unix.file_descr; mutable rbuf : string }

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  { fd; rbuf = "" }

let close_client c = try Unix.close c.fd with Unix.Unix_error _ -> ()

let send_line c line =
  let s = line ^ "\n" in
  let b = Bytes.of_string s in
  let rec go off len =
    if len > 0 then begin
      let w = Unix.write c.fd b off len in
      go (off + w) (len - w)
    end
  in
  go 0 (Bytes.length b)

let fill c =
  let chunk = Bytes.create 65536 in
  match Unix.read c.fd chunk 0 (Bytes.length chunk) with
  | 0 -> failwith "serve_sweep: daemon closed the connection"
  | n -> c.rbuf <- c.rbuf ^ Bytes.sub_string chunk 0 n

let read_line c =
  let rec go () =
    match String.index_opt c.rbuf '\n' with
    | Some i ->
      let line = String.sub c.rbuf 0 i in
      c.rbuf <- String.sub c.rbuf (i + 1) (String.length c.rbuf - i - 1);
      line
    | None ->
      fill c;
      go ()
  in
  go ()

let read_exact c n =
  while String.length c.rbuf < n do
    fill c
  done;
  let s = String.sub c.rbuf 0 n in
  c.rbuf <- String.sub c.rbuf n (String.length c.rbuf - n);
  s

let roundtrip c line =
  send_line c line;
  let header = read_line c in
  match String.split_on_char ' ' header with
  | [ "ok"; _id; len ] -> read_exact c (int_of_string len)
  | _ -> failwith (Printf.sprintf "serve_sweep: unexpected frame %S" header)

(* --- the sweep ------------------------------------------------------------------ *)

let percentile sorted q =
  let len = Array.length sorted in
  let idx = int_of_float (Float.of_int (len - 1) *. q +. 0.5) in
  sorted.(max 0 (min (len - 1) idx))

(* Issue [lines] in order, one at a time; returns (req/s, p50 ms, p99 ms). *)
let measure c lines =
  let latencies =
    List.map
      (fun line ->
        let (_payload, dt) = Bench_config.timed (fun () -> roundtrip c line) in
        dt)
      lines
  in
  let arr = Array.of_list latencies in
  Array.sort Float.compare arr;
  let total = Array.fold_left ( +. ) 0.0 arr in
  let n = float_of_int (Array.length arr) in
  (n /. total, 1000.0 *. percentile arr 0.5, 1000.0 *. percentile arr 0.99)

let synth_line ~id ~n ~seed =
  Printf.sprintf "synth %s n=%d seed=%d gens=10 pop=16 perms=2 format=summary"
    id n seed

let row ~mode ~n ~domains ~requests ~(rps : float) ~p50 ~p99 =
  Printf.sprintf
    "{\"bench\": \"serve_sweep\", \"mode\": \"%s\", \"n\": %d, \"domains\": %d, \
     \"requests\": %d, \"req_per_s\": %.1f, \"p50_ms\": %.3f, \"p99_ms\": %.3f}"
    mode n domains requests rps p50 p99

let run () =
  Config.section "cold_serve: request throughput and tail latency (BENCH_serve.json)";
  let requests, n =
    match Config.scale with
    | Config.Smoke -> (8, 16)
    | Config.Quick -> (24, 20)
    | Config.Full -> (64, 30)
  in
  let domains = 2 in
  let cfg =
    { Server.default_config with Server.domains; cache_slots = 1024 }
  in
  match Server.create cfg with
  | Error msg -> failwith ("serve_sweep: cannot start daemon: " ^ msg)
  | Ok server ->
    let runner = Domain.spawn (fun () -> Server.run server) in
    let c = connect (Server.port server) in
    let lines =
      List.init requests (fun i ->
          synth_line ~id:(Printf.sprintf "q%d" i) ~n
            ~seed:(Config.master_seed + i))
    in
    let (cold_rps, cold_p50, cold_p99) = measure c lines in
    let (hit_rps, hit_p50, hit_p99) = measure c lines in
    close_client c;
    Server.request_drain server;
    Domain.join runner;
    Printf.printf
      "cold: %8.1f req/s  p50 %8.3f ms  p99 %8.3f ms  (%d requests, n=%d)\n"
      cold_rps cold_p50 cold_p99 requests n;
    Printf.printf
      "hit:  %8.1f req/s  p50 %8.3f ms  p99 %8.3f ms  (replayed, bit-identical)\n"
      hit_rps hit_p50 hit_p99;
    let ratio = hit_rps /. cold_rps in
    Printf.printf "cache-hit speedup: %.1fx\n" ratio;
    if ratio < 10.0 then
      failwith
        (Printf.sprintf
           "serve_sweep: cache-hit throughput only %.1fx cold (contract: >= 10x)"
           ratio);
    let rows =
      [
        row ~mode:"cold" ~n ~domains ~requests ~rps:cold_rps ~p50:cold_p50
          ~p99:cold_p99;
        row ~mode:"hit" ~n ~domains ~requests ~rps:hit_rps ~p50:hit_p50
          ~p99:hit_p99;
      ]
    in
    let total =
      Config.merge_json_rows ~path:"BENCH_serve.json"
        ~key:[ "bench"; "mode"; "n"; "domains" ]
        rows
    in
    Printf.printf "merged BENCH_serve.json (%d new cells, %d total)\n"
      (List.length rows) total
