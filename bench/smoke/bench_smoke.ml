(* Bench smoke: a seconds-scale sanity pass over the evaluation engine,
   runnable as `dune build @bench-smoke` and attached to @runtest. Exercises
   the incremental engine against the stateless oracle on a miniature
   workload and fails loudly on any divergence. Writes no JSON — the real
   harness (bench/main.exe) owns BENCH_ga.json. *)

module Graph = Cold_graph.Graph
module Mst = Cold_graph.Mst
module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Cost = Cold.Cost
module Ga = Cold.Ga
module Incremental = Cold_net.Incremental
module Local_search = Cold.Local_search

let bits_equal a b = Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let fail fmt = Printf.ksprintf failwith fmt

(* Random single-flip trajectory: the SA move pattern, checked bitwise
   against the oracle at every step. Reports the incremental work done. *)
let check_trajectory ~n ~steps =
  let ctx = Context.generate (Context.default_spec ~n) (Prng.create 5) in
  let params = Cost.params ~k2:1e-4 () in
  let rng = Prng.create 6 in
  let g = Mst.mst_graph ~n ~weight:(fun u v -> Context.distance ctx u v) in
  let st = Cost.state ctx g in
  ignore (Cost.evaluate_state params ctx st);
  Incremental.commit st;
  let evals = ref 0 in
  for step = 1 to steps do
    let rec pick () =
      let u = Prng.int rng n and v = Prng.int rng n in
      if u = v then pick () else (u, v)
    in
    let (u, v) = pick () in
    let cur = Incremental.graph st in
    if Graph.mem_edge cur u v then Incremental.remove_edge st u v
    else Incremental.add_edge st u v;
    let a = Cost.evaluate_state params ctx st in
    let b = Cost.evaluate params ctx (Incremental.graph st) in
    incr evals;
    if not (bits_equal a b) then
      fail "trajectory step %d: incremental %h vs oracle %h" step a b;
    if step mod 3 = 0 then Incremental.rollback st else Incremental.commit st
  done;
  Printf.printf
    "smoke trajectory n=%d: %d evals, %.1f trees recomputed + %.1f repaired \
     in place/eval (full would be %d)\n%!"
    n !evals
    (float_of_int (Incremental.recomputed_trees st) /. float_of_int !evals)
    (float_of_int (Incremental.repaired_trees st) /. float_of_int !evals)
    n

(* Both delta-aware engines — mark-dirty (repair:false) and dynamic in-place
   repair (repair:true, the default) — against the stateless oracle on the
   same trajectory. *)
let check_local_search () =
  let ctx = Context.generate (Context.default_spec ~n:12) (Prng.create 7) in
  let params = Cost.params ~k2:2e-4 () in
  let settings =
    { Local_search.default_settings with Local_search.iterations = 400 }
  in
  let run incremental ?repair () =
    Local_search.run ~incremental ?repair settings params ctx (Prng.create 8)
  in
  let full = run false () in
  List.iter
    (fun (name, repair) ->
      let inc = run true ~repair () in
      if not (bits_equal full.Local_search.best_cost inc.Local_search.best_cost)
      then
        fail "local search diverged: full %h vs %s %h"
          full.Local_search.best_cost name inc.Local_search.best_cost;
      if full.Local_search.accepted <> inc.Local_search.accepted then
        fail "local search accepted counts diverged (full vs %s)" name)
    [ ("mark-dirty", false); ("dynamic", true) ];
  Printf.printf
    "smoke local search: full, mark-dirty and dynamic bit-identical\n%!"

let check_ga () =
  let ctx = Context.generate (Context.default_spec ~n:12) (Prng.create 9) in
  let params = Cost.params ~k2:1e-4 () in
  let settings =
    {
      Ga.default_settings with
      Ga.population_size = 16;
      generations = 8;
      num_saved = 4;
      num_crossover = 6;
      num_mutation = 6;
    }
  in
  let run incremental =
    Ga.run ~incremental ~cache_slots:0 settings params ctx (Prng.create 10)
  in
  let full = run false and inc = run true in
  if not (bits_equal full.Ga.best_cost inc.Ga.best_cost) then
    fail "ga diverged: full %h vs incremental %h" full.Ga.best_cost
      inc.Ga.best_cost;
  if not (Array.for_all2 bits_equal full.Ga.history inc.Ga.history) then
    fail "ga history diverged";
  Printf.printf "smoke ga: full and incremental bit-identical\n%!"

(* Failure replay: a short trace evaluated sequentially and fanned out must
   agree bit for bit, and the empty failure set must reproduce the baseline
   routing volume exactly. *)
let check_failure () =
  let n = 12 in
  let ctx = Context.generate (Context.default_spec ~n) (Prng.create 11) in
  let g = Mst.mst_graph ~n ~weight:(fun u v -> Context.distance ctx u v) in
  Graph.add_edge g 0 (n - 1);
  let net = Cold_net.Network.build ctx g in
  let trace =
    Cold_sim.Failure.generate
      ~rates:{ Cold_sim.Failure.link_rate = 0.05; node_rate = 0.03;
               regional_rate = 0.1; regional_radius = 15.0 }
      ~steps:8 ctx ~seed:12
  in
  let seq = Cold_sim.Failure.evaluate ~domains:1 net trace in
  let par = Cold_sim.Failure.evaluate ~domains:4 net trace in
  Array.iteri
    (fun i (r : Cold_net.Survivability.report) ->
      if
        not
          (bits_equal r.Cold_net.Survivability.delivered_fraction
             par.(i).Cold_net.Survivability.delivered_fraction
          && bits_equal r.Cold_net.Survivability.routed_volume_length
               par.(i).Cold_net.Survivability.routed_volume_length)
      then fail "failure replay diverged across domains at step %d" i)
    seq;
  let baseline =
    Cold_net.Survivability.evaluate net ~down_nodes:[] ~down_links:[]
  in
  let vl =
    Cold_net.Routing.total_volume_length net.Cold_net.Network.loads
      ~length:(fun u v -> Context.distance ctx u v)
  in
  if not (bits_equal baseline.Cold_net.Survivability.routed_volume_length vl)
  then fail "empty failure set is not the baseline routing";
  Printf.printf "smoke failure replay: sequential and fanned-out bit-identical\n%!"

let () =
  let (), elapsed =
    Bench_config.timed (fun () ->
        check_trajectory ~n:24 ~steps:150;
        check_local_search ();
        check_ga ();
        check_failure ())
  in
  Printf.printf "bench smoke passed in %.1fs\n" elapsed
