(* cold-gen: command-line front end for COLD topology synthesis.

   Subcommands:
     generate — synthesize one network and print/export it
     ensemble — synthesize many networks and print summary statistics
     zoo      — print statistics of the synthetic topology zoo
     expand   — synthesize and expand to the router level *)

open Cmdliner

module Context = Cold_context.Context
module Network = Cold_net.Network
module Summary = Cold_metrics.Summary

(* --- shared options ---------------------------------------------------------- *)

let pops =
  let doc = "Number of PoPs to synthesize." in
  Arg.(value & opt int 30 & info [ "n"; "pops" ] ~docv:"N" ~doc)

let seed =
  let doc = "Random seed (contexts and the GA are deterministic given it)." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc)

let k0 =
  let doc = "Per-link existence cost k0." in
  Arg.(value & opt float 10.0 & info [ "k0" ] ~docv:"K0" ~doc)

let k2 =
  let doc = "Bandwidth-length cost k2 (the paper explores 2.5e-5 .. 1.6e-3)." in
  Arg.(value & opt float 1e-4 & info [ "k2" ] ~docv:"K2" ~doc)

let k3 =
  let doc = "Hub (complexity) cost k3 for PoPs with more than one link." in
  Arg.(value & opt float 0.0 & info [ "k3" ] ~docv:"K3" ~doc)

let generations =
  let doc = "GA generations (paper default 100)." in
  Arg.(value & opt int 100 & info [ "generations" ] ~docv:"T" ~doc)

let population =
  let doc = "GA population size (paper default 100)." in
  Arg.(value & opt int 100 & info [ "population" ] ~docv:"M" ~doc)

let domains =
  let doc =
    "Domains evaluating candidates concurrently (0 = autodetect from the \
     machine). Synthesized networks are bit-identical at every setting; \
     only wall-clock time changes. See doc/PERF.md."
  in
  Arg.(value & opt int 1 & info [ "domains" ] ~docv:"K" ~doc)

let pareto =
  let doc = "Use Pareto(1.5) populations instead of exponential." in
  Arg.(value & flag & info [ "pareto" ] ~doc)

let bursty =
  let doc = "Use a bursty (Thomas cluster) PoP location process." in
  Arg.(value & flag & info [ "bursty" ] ~doc)

let preset_arg =
  let doc =
    "Parameter preset (overrides --k0/--k2/--k3): startup, mature-carrier, \
     consolidated-operator or regional-isp."
  in
  Arg.(value & opt (some string) None & info [ "preset" ] ~docv:"NAME" ~doc)

let format_arg =
  let doc = "Output format: summary, ascii, dot, gml or edges." in
  Arg.(
    value
    & opt
        (enum
           [ ("summary", `Summary); ("ascii", `Ascii); ("dot", `Dot);
             ("gml", `Gml); ("edges", `Edges) ])
        `Summary
    & info [ "f"; "format" ] ~docv:"FORMAT" ~doc)

let output =
  let doc = "Write output to $(docv) instead of stdout." in
  Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE" ~doc)

(* --- building blocks --------------------------------------------------------- *)

let spec_of ~pops ~pareto ~bursty =
  let base = Context.default_spec ~n:pops in
  let base =
    if pareto then
      { base with Context.population = Cold_traffic.Population.pareto_moderate }
    else base
  in
  if bursty then
    (* Cluster spread: 5 % of the region's diameter. *)
    let sigma = 0.05 *. Cold_geom.Region.diameter base.Context.region in
    { base with
      Context.point_process =
        Cold_geom.Point_process.Bursty { clusters = 5; sigma } }
  else base

let params_of ?preset ~k0 ~k2 ~k3 () =
  match preset with
  | None -> Cold.Cost.params ~k0 ~k2 ~k3 ()
  | Some name -> (
    match Cold.Presets.find name with
    | Some p -> p.Cold.Presets.params
    | None ->
      let known =
        String.concat ", " (List.map (fun p -> p.Cold.Presets.name) Cold.Presets.all)
      in
      failwith (Printf.sprintf "unknown preset %S (known: %s)" name known))

let config_of ?preset ?(domains = 1) ~k0 ~k2 ~k3 ~generations ~population () =
  let params = params_of ?preset ~k0 ~k2 ~k3 () in
  let saved = max 1 (population / 5) in
  let crossover = max 1 (population / 2) in
  let mutation = max 0 (population - saved - crossover) in
  {
    (Cold.Synthesis.default_config ~params ()) with
    Cold.Synthesis.ga =
      {
        Cold.Ga.default_settings with
        Cold.Ga.population_size = population;
        generations;
        num_saved = saved;
        num_crossover = crossover;
        num_mutation = mutation;
      };
    domains;
  }

let emit ~output text =
  match output with
  | None -> print_string text
  | Some path ->
    let oc = open_out path in
    Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text);
    Printf.printf "wrote %s\n" path

let render fmt net =
  match fmt with
  | `Summary ->
    Format.asprintf "%a@.%a@."
      Cold_metrics.Summary.pp
      (Summary.compute net.Network.graph)
      Network.pp_summary net
  | `Ascii -> Cold_netio.Ascii_map.render net ^ "\n"
  | `Dot -> Cold_netio.Dot.of_network net
  | `Gml -> Cold_netio.Gml.of_network net
  | `Edges -> Cold_netio.Edge_list.to_string net.Network.graph

(* --- generate ---------------------------------------------------------------- *)

let generate pops seed k0 k2 k3 preset generations population domains pareto bursty fmt output =
  let cfg = config_of ?preset ~domains ~k0 ~k2 ~k3 ~generations ~population () in
  let spec = spec_of ~pops ~pareto ~bursty in
  let net = Cold.Synthesis.synthesize cfg spec ~seed in
  emit ~output (render fmt net);
  0

let generate_cmd =
  let doc = "Synthesize one PoP-level network." in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(
      const generate $ pops $ seed $ k0 $ k2 $ k3 $ preset_arg $ generations
      $ population $ domains $ pareto $ bursty $ format_arg $ output)

(* --- ensemble ---------------------------------------------------------------- *)

let count =
  let doc = "Number of networks in the ensemble." in
  Arg.(value & opt int 10 & info [ "c"; "count" ] ~docv:"COUNT" ~doc)

let ensemble pops seed k0 k2 k3 generations population domains pareto bursty count =
  (* Parallelism pays best at the widest fan-out: whole ensemble members
     run concurrently while each inner GA stays sequential. *)
  let cfg = config_of ~k0 ~k2 ~k3 ~generations ~population () in
  let spec = spec_of ~pops ~pareto ~bursty in
  let e = Cold.Ensemble.generate ~domains cfg spec ~count ~seed in
  Printf.printf "%s\n" Summary.to_csv_header;
  Array.iter (fun s -> Printf.printf "%s\n" (Summary.to_csv_row s)) e.Cold.Ensemble.summaries;
  let stat name f =
    let ci = Cold.Ensemble.mean_ci e f ~seed:(seed + 1) in
    Printf.eprintf "%-22s %s\n" name
      (Format.asprintf "%a" Cold_stats.Bootstrap.pp ci)
  in
  Printf.eprintf "\nensemble means with 95%% bootstrap CIs (n=%d):\n" count;
  stat "average degree" (fun s -> s.Summary.average_degree);
  stat "CVND" (fun s -> s.Summary.cvnd);
  stat "diameter" (fun s -> float_of_int s.Summary.diameter);
  stat "global clustering" (fun s -> s.Summary.global_clustering);
  Printf.eprintf "distinct topologies: %d/%d\n" (Cold.Ensemble.distinct_topologies e) count;
  0

let ensemble_cmd =
  let doc = "Synthesize an ensemble and print per-network statistics as CSV." in
  Cmd.v
    (Cmd.info "ensemble" ~doc)
    Term.(
      const ensemble $ pops $ seed $ k0 $ k2 $ k3 $ generations $ population
      $ domains $ pareto $ bursty $ count)

(* --- zoo ---------------------------------------------------------------------- *)

let zoo seed count =
  let entries = Cold_zoo.Zoo.synthetic ~count ~seed () in
  let cvnd = Cold_zoo.Zoo.cvnd_values entries in
  Printf.printf "synthetic zoo: %d networks\n" count;
  Printf.printf "CVND > 1: %.1f%%\n"
    (100.0 *. Cold_stats.Histogram.fraction_above cvnd 1.0);
  let h = Cold_stats.Histogram.create ~lo:0.0 ~hi:2.0 ~bins:10 cvnd in
  Format.printf "%a" (Cold_stats.Histogram.pp_ascii ~width:40) h;
  print_endline "\nembedded reference maps:";
  List.iter
    (fun (e : Cold_zoo.Zoo.entry) ->
      let s = Summary.compute e.Cold_zoo.Zoo.graph in
      Printf.printf "  %-22s n=%-3d m=%-3d cvnd=%.2f diameter=%d\n"
        e.Cold_zoo.Zoo.name s.Summary.nodes s.Summary.edges s.Summary.cvnd
        s.Summary.diameter)
    (Cold_zoo.Zoo.reference ());
  0

let zoo_cmd =
  let doc = "Inspect the synthetic topology zoo (the Fig 8a substitute)." in
  Cmd.v (Cmd.info "zoo" ~doc) Term.(const zoo $ seed $ count)

(* --- expand ------------------------------------------------------------------- *)

let expand pops seed k0 k2 k3 generations population domains pareto bursty =
  let cfg = config_of ~domains ~k0 ~k2 ~k3 ~generations ~population () in
  let spec = spec_of ~pops ~pareto ~bursty in
  let net = Cold.Synthesis.synthesize cfg spec ~seed in
  let r = Cold_router.Expand.expand net in
  Printf.printf "PoP-level: %d PoPs, %d links\n"
    (Cold_graph.Graph.node_count net.Network.graph)
    (Cold_graph.Graph.edge_count net.Network.graph);
  Printf.printf "router-level: %d routers, %d links\n"
    (Cold_router.Expand.router_count r)
    (Cold_graph.Graph.edge_count r.Cold_router.Expand.graph);
  Array.iteri
    (fun pop t ->
      Printf.printf "  PoP %2d: %s (%d routers)\n" pop
        (match t with
        | Cold_router.Template.Single -> "single"
        | Cold_router.Template.Dual -> "dual"
        | Cold_router.Template.Full { access } ->
          Printf.sprintf "full (%d access)" access)
        (Cold_router.Template.router_count t))
    r.Cold_router.Expand.templates;
  0

let expand_cmd =
  let doc = "Synthesize a network and expand it to the router level." in
  Cmd.v
    (Cmd.info "expand" ~doc)
    Term.(
      const expand $ pops $ seed $ k0 $ k2 $ k3 $ generations $ population
      $ domains $ pareto $ bursty)

(* --- resilience ---------------------------------------------------------------- *)

let resilience pops seed k0 k2 k3 generations population domains pareto bursty =
  let cfg = config_of ~domains ~k0 ~k2 ~k3 ~generations ~population () in
  let spec = spec_of ~pops ~pareto ~bursty in
  let net = Cold.Synthesis.synthesize cfg spec ~seed in
  let module R = Cold_net.Resilience in
  Printf.printf "survivable (2-edge-connected): %b\n" (R.survivable net);
  (match R.single_points_of_failure net with
  | [] -> print_endline "single points of failure: none"
  | spofs ->
    Printf.printf "single points of failure: %s\n"
      (String.concat ", " (List.map string_of_int spofs)));
  Printf.printf "average stretch: %.3f\n" (Cold_net.Stretch.average net);
  Printf.printf "\n%10s %10s %10s %8s\n" "link" "stranded" "load" "bridge";
  List.iter
    (fun r ->
      let (u, v) = r.R.link in
      Printf.printf "%4d -%4d %9.1f%% %9.1f%% %8b\n" u v
        (100.0 *. r.R.stranded_fraction)
        (100.0 *. r.R.load_fraction)
        r.R.is_bridge)
    (R.link_reports net);
  0

let resilience_cmd =
  let doc = "Synthesize a network and analyze its failure behaviour." in
  Cmd.v
    (Cmd.info "resilience" ~doc)
    Term.(
      const resilience $ pops $ seed $ k0 $ k2 $ k3 $ generations $ population
      $ domains $ pareto $ bursty)

(* --- evolve ------------------------------------------------------------------- *)

let steps_arg =
  let doc = "Number of growth steps." in
  Arg.(value & opt int 3 & info [ "steps" ] ~docv:"STEPS" ~doc)

let growth_arg =
  let doc = "Per-step traffic growth factor." in
  Arg.(value & opt float 1.5 & info [ "growth" ] ~docv:"G" ~doc)

let added_arg =
  let doc = "PoPs added per step." in
  Arg.(value & opt int 5 & info [ "add" ] ~docv:"ADD" ~doc)

let decommission_arg =
  let doc = "Cost to remove an installed link." in
  Arg.(value & opt float 50.0 & info [ "decommission" ] ~docv:"COST" ~doc)

let evolve pops seed k0 k2 k3 steps growth added decommission =
  let module E = Cold.Evolution in
  let params = Cold.Cost.params ~k0 ~k2 ~k3 () in
  let cfg =
    { (E.default_config ~params ()) with E.decommission_cost = decommission }
  in
  let step_list =
    List.init steps (fun _ -> { E.new_pops = added; traffic_growth = growth })
  in
  let states = E.run cfg ~initial_n:pops ~steps:step_list ~seed in
  Printf.printf "%6s %6s %7s %12s %9s\n" "cycle" "PoPs" "links" "avg degree" "removed";
  List.iteri
    (fun i s ->
      let g = s.E.network.Cold_net.Network.graph in
      Printf.printf "%6d %6d %7d %12.2f %9d\n" i
        (Cold_graph.Graph.node_count g)
        (Cold_graph.Graph.edge_count g)
        (Cold_metrics.Degree.average g)
        s.E.cumulative_decommissions)
    states;
  0

let evolve_cmd =
  let doc = "Grow a network incrementally (legacy links constrain redesigns)." in
  Cmd.v
    (Cmd.info "evolve" ~doc)
    Term.(
      const evolve $ pops $ seed $ k0 $ k2 $ k3 $ steps_arg $ growth_arg
      $ added_arg $ decommission_arg)

(* --- fit ----------------------------------------------------------------------- *)

let input_arg =
  let doc = "Topology file to fit (.gml or edge-list format)." in
  Arg.(required & opt (some string) None & info [ "i"; "input" ] ~docv:"FILE" ~doc)

let trials_arg =
  let doc = "ABC simulation budget." in
  Arg.(value & opt int 200 & info [ "trials" ] ~docv:"TRIALS" ~doc)

let epsilon_arg =
  let doc = "ABC acceptance threshold (normalized statistic distance)." in
  Arg.(value & opt float 0.35 & info [ "epsilon" ] ~docv:"EPS" ~doc)

let fit input seed trials epsilon domains =
  let parsed =
    if Filename.check_suffix input ".gml" then
      Cold_netio.Gml_parser.read_file ~path:input
    else Cold_netio.Edge_list.read_file ~path:input
  in
  let g =
    match parsed with
    | Ok g -> g
    | Error e ->
      Printf.eprintf "cold fit: cannot parse %s: %s\n" input
        (Cold_netio.Parse_error.to_string e);
      exit 1
  in
  let obs = Cold.Abc.observe g in
  Printf.printf
    "observed: n=%d avg degree %.2f, clustering %.3f, CVND %.2f, diameter %.0f\n\
     running %d ABC trials (this synthesizes %d networks)...\n%!"
    obs.Cold.Abc.n obs.Cold.Abc.average_degree obs.Cold.Abc.global_clustering
    obs.Cold.Abc.cvnd obs.Cold.Abc.diameter trials trials;
  let samples = Cold.Abc.infer ~domains ~trials ~epsilon obs ~seed in
  Printf.printf "accepted %d/%d\n" (List.length samples) trials;
  (match Cold.Abc.posterior_mean samples with
  | None ->
    print_endline "no acceptance: raise --epsilon or --trials";
  | Some p ->
    Format.printf "posterior mean parameters: %a@." Cold.Cost.pp_params p;
    (match samples with
    | best :: _ ->
      Format.printf "best sample (distance %.3f): %a@." best.Cold.Abc.distance
        Cold.Cost.pp_params best.Cold.Abc.params
    | [] -> ()));
  0

let fit_cmd =
  let doc =
    "Estimate COLD cost parameters for an observed topology via ABC \
     (Approximate Bayesian Computation)."
  in
  Cmd.v
    (Cmd.info "fit" ~doc)
    Term.(const fit $ input_arg $ seed $ trials_arg $ epsilon_arg $ domains)

(* --- main ---------------------------------------------------------------------- *)

let () =
  let doc = "COLD: PoP-level network topology synthesis (CoNEXT 2014)" in
  let info = Cmd.info "cold-gen" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            generate_cmd; ensemble_cmd; zoo_cmd; expand_cmd; resilience_cmd;
            evolve_cmd; fit_cmd;
          ]))
