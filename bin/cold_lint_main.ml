(* cold_lint: enforce COLD's determinism and correctness invariants.

   Exit codes: 0 clean (or no findings beyond the baseline), 1 violations
   found, 2 usage or I/O error. *)

let usage =
  "usage: cold_lint [--json] [--rules r1,r2] [--list-rules] [--explain RULE]\n\
  \                 [--deep|--no-deep] [--call-graph]\n\
  \                 [--baseline FILE [--update-baseline]] PATH..."

let () =
  let json = ref false in
  let rules = ref None in
  let list_rules = ref false in
  let explain = ref None in
  let deep = ref true in
  let call_graph = ref false in
  let baseline = ref None in
  let update_baseline = ref false in
  let paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit findings as a JSON array");
      ( "--rules",
        Arg.String
          (fun s ->
            rules :=
              Some (String.split_on_char ',' s |> List.filter (( <> ) ""))),
        "R1,R2 run only the named rules" );
      ("--list-rules", Arg.Set list_rules, " print the rule catalogue and exit");
      ( "--explain",
        Arg.String (fun r -> explain := Some r),
        "RULE print RULE's summary and rationale and exit" );
      ( "--deep",
        Arg.Set deep,
        " run the interprocedural (whole-program) pass — the default" );
      ( "--no-deep",
        Arg.Clear deep,
        " token-level rules only; skip the interprocedural pass" );
      ( "--call-graph",
        Arg.Set call_graph,
        " dump the resolved call graph for PATH... and exit" );
      ( "--baseline",
        Arg.String (fun f -> baseline := Some f),
        "FILE fail only on findings not recorded in FILE" );
      ( "--update-baseline",
        Arg.Set update_baseline,
        " rewrite the --baseline file from the current findings" );
    ]
  in
  (try Arg.parse spec (fun p -> paths := p :: !paths) usage
   with _ -> exit 2);
  if !list_rules then begin
    List.iter
      (fun (r : Cold_lint.Rules.t) ->
        Printf.printf "%-24s %s\n" r.Cold_lint.Rules.name
          r.Cold_lint.Rules.summary)
      Cold_lint.Rules.all;
    List.iter
      (fun (i : Cold_lint.Rules.info) ->
        Printf.printf "%-24s %s\n" i.Cold_lint.Rules.iname
          i.Cold_lint.Rules.isummary)
      Cold_lint.Rules.deep;
    exit 0
  end;
  (match !explain with
  | None -> ()
  | Some name -> (
    match Cold_lint.Rules.info name with
    | Some i ->
      Printf.printf "%s — %s\n\n%s\n" i.Cold_lint.Rules.iname
        i.Cold_lint.Rules.isummary i.Cold_lint.Rules.irationale;
      exit 0
    | None ->
      Printf.eprintf "cold_lint: unknown rule: %s\n" name;
      exit 2));
  if !update_baseline && !baseline = None then begin
    prerr_endline "cold_lint: --update-baseline requires --baseline FILE";
    prerr_endline usage;
    exit 2
  end;
  let paths = List.rev !paths in
  if paths = [] then begin
    prerr_endline usage;
    exit 2
  end;
  if !call_graph then begin
    match Cold_lint.Engine.call_graph paths with
    | Ok dump ->
      print_string dump;
      exit 0
    | Error msg | (exception Sys_error msg) ->
      Printf.eprintf "cold_lint: %s\n" msg;
      exit 2
  end;
  match Cold_lint.Engine.check_paths ?only:!rules ~deep:!deep paths with
  | Error msg ->
    Printf.eprintf "cold_lint: %s\n" msg;
    exit 2
  | exception Sys_error msg ->
    Printf.eprintf "cold_lint: %s\n" msg;
    exit 2
  | Ok findings -> (
    match !baseline with
    | None ->
      print_string
        (if !json then Cold_lint.Report.json findings
         else Cold_lint.Report.text findings);
      if findings = [] then exit 0 else exit 1
    | Some file when !update_baseline ->
      let oc =
        try open_out_bin file
        with Sys_error msg ->
          Printf.eprintf "cold_lint: %s\n" msg;
          exit 2
      in
      output_string oc (Cold_lint.Report.json findings);
      close_out oc;
      Printf.printf "cold_lint: baseline %s updated (%d finding%s)\n" file
        (List.length findings)
        (if List.length findings = 1 then "" else "s");
      exit 0
    | Some file -> (
      match Cold_lint.Baseline.load ~path:file with
      | Error msg ->
        Printf.eprintf "cold_lint: %s\n" msg;
        exit 2
      | Ok base ->
        let d = Cold_lint.Baseline.diff ~baseline:base findings in
        if !json then print_string (Cold_lint.Report.json d.Cold_lint.Baseline.fresh)
        else begin
          print_string (Cold_lint.Report.text d.Cold_lint.Baseline.fresh);
          if d.Cold_lint.Baseline.fresh <> [] then
            Printf.printf "cold_lint: %d new finding%s not in baseline %s\n"
              (List.length d.Cold_lint.Baseline.fresh)
              (if List.length d.Cold_lint.Baseline.fresh = 1 then "" else "s")
              file;
          if d.Cold_lint.Baseline.stale > 0 then
            Printf.printf
              "cold_lint: %d baseline entr%s no longer fire%s — run \
               --update-baseline to prune\n"
              d.Cold_lint.Baseline.stale
              (if d.Cold_lint.Baseline.stale = 1 then "y" else "ies")
              (if d.Cold_lint.Baseline.stale = 1 then "s" else "")
        end;
        if d.Cold_lint.Baseline.fresh = [] then exit 0 else exit 1))
