(* cold_serve: the COLD topology-synthesis daemon. See doc/SERVE.md for the
   wire protocol and lib/serve for the architecture. *)

let () =
  let port = ref 7421 in
  let domains = ref 1 in
  let queue = ref Cold_serve.Server.default_config.Cold_serve.Server.queue_capacity in
  let batch = ref Cold_serve.Server.default_config.Cold_serve.Server.batch in
  let cache_slots =
    ref Cold_serve.Server.default_config.Cold_serve.Server.cache_slots
  in
  let cache_file = ref "" in
  let spec =
    [
      ("--port", Arg.Set_int port, "PORT listen on 127.0.0.1:PORT (0 = ephemeral; default 7421)");
      ("--domains", Arg.Set_int domains, "K evaluation streams (0 = autodetect; default 1)");
      ("--queue", Arg.Set_int queue, "N admission-queue capacity before shedding (default 64)");
      ("--batch", Arg.Set_int batch, "B max requests per scheduler batch (default 8)");
      ("--cache-slots", Arg.Set_int cache_slots, "S replay-cache slots (0 disables; default 256)");
      ("--cache-file", Arg.Set_string cache_file, "PATH reload the replay cache from PATH at startup and dump it there after draining");
    ]
  in
  let usage = "cold_serve [--port PORT] [--domains K] [--queue N] [--batch B] [--cache-slots S] [--cache-file PATH]" in
  Arg.parse spec (fun a -> raise (Arg.Bad ("unexpected argument " ^ a))) usage;
  let cfg =
    {
      Cold_serve.Server.default_config with
      Cold_serve.Server.port = !port;
      domains = !domains;
      queue_capacity = !queue;
      batch = !batch;
      cache_slots = !cache_slots;
      cache_file = (if !cache_file = "" then None else Some !cache_file);
    }
  in
  match Cold_serve.Server.create cfg with
  | Error msg ->
    prerr_endline ("cold_serve: " ^ msg);
    exit 1
  | Ok server ->
    Cold_serve.Server.install_sigterm server;
    Printf.printf "cold_serve listening on 127.0.0.1:%d (domains=%d queue=%d batch=%d cache=%d)\n%!"
      (Cold_serve.Server.port server) !domains !queue !batch !cache_slots;
    Cold_serve.Server.run server;
    print_endline "cold_serve: drained, bye"
