(* Network evolution: real backbones are not designed from scratch (§3).
   Watch an ISP grow from 10 to 25 PoPs with 4x traffic over three planning
   cycles, keeping its installed links unless removing them pays for the
   digging, and compare against a from-scratch redesign of the final market.

   Run with:  dune exec examples/network_evolution.exe *)

module Evolution = Cold.Evolution
module Network = Cold_net.Network
module Summary = Cold_metrics.Summary

let () =
  let params = Cold.Cost.params ~k2:2e-4 ~k3:10.0 () in
  let cfg =
    { (Evolution.default_config ~params ()) with Evolution.decommission_cost = 50.0 }
  in
  let steps =
    [
      { Evolution.new_pops = 5; traffic_growth = 1.6 };
      { Evolution.new_pops = 5; traffic_growth = 1.6 };
      { Evolution.new_pops = 5; traffic_growth = 1.6 };
    ]
  in
  let states = Evolution.run cfg ~initial_n:10 ~steps ~seed:42 in
  Printf.printf "%6s %7s %7s %12s %8s %10s\n" "cycle" "PoPs" "links" "avg degree"
    "hubs" "removed";
  List.iteri
    (fun i s ->
      let summary = Summary.compute s.Evolution.network.Network.graph in
      Printf.printf "%6d %7d %7d %12.2f %8d %10d\n" i summary.Summary.nodes
        summary.Summary.edges summary.Summary.average_degree summary.Summary.hubs
        s.Evolution.cumulative_decommissions)
    states;
  let final = List.nth states (List.length states - 1) in
  let penalty = Evolution.legacy_penalty cfg final (Cold_prng.Prng.create 43) in
  Printf.printf
    "\nlegacy penalty vs greenfield redesign of the final market: %.2f%%\n\
     (the cost of history: links in the ground shape what gets built next)\n"
    (100.0 *. penalty)
