(* Survivability study: replay ONE deterministic failure trace against COLD
   designs and classic router-level-inspired PoP templates, on the same
   context — identical failures, so differences are purely the topology's.

   Traces are drawn over all potential PoP pairs (failing an absent link is
   a no-op), which is what makes "the same trace" well-defined across
   designs with different link sets. The COLD entries show the paper's
   ensemble story (three GA runs = three similar-but-distinct networks) and
   the survivable knob (2-edge-connected repair); the templates are the
   usual hand-built alternatives an operator would reach for.

   Run with:  dune exec examples/survivability_study.exe *)

module Graph = Cold_graph.Graph
module Context = Cold_context.Context
module Network = Cold_net.Network
module Gravity = Cold_traffic.Gravity
module Failure = Cold_sim.Failure
module Prng = Cold_prng.Prng

let settings =
  {
    Cold.Ga.default_settings with
    Cold.Ga.population_size = 16;
    generations = 8;
    num_saved = 4;
    num_crossover = 8;
    num_mutation = 4;
  }

let params = Cold.Cost.params ~k2:3e-4 ~k3:50.0 ()

(* The ensemble runs skip heuristic seeding: with it, a 12-PoP search this
   small converges to the same design from any seed, and the whole point of
   an ensemble is three similar-but-DISTINCT networks. *)
let config ~survivable ~heuristics =
  {
    (Cold.Synthesis.default_config ~params ()) with
    Cold.Synthesis.ga = settings;
    seed_with_heuristics = heuristics;
    heuristic_permutations = 2;
    survivable;
  }

(* PoPs ranked by originating traffic, heaviest first (ties to low index). *)
let traffic_rank ctx =
  let tm = ctx.Context.tm in
  let order = Array.init (Context.n ctx) (fun i -> i) in
  Array.sort
    (fun i j ->
      match Float.compare (Gravity.row_total tm j) (Gravity.row_total tm i) with
      | 0 -> compare i j
      | c -> c)
    order;
  order

(* N+1 redundancy template: the two heaviest PoPs become hubs, every other
   PoP dual-homes to both — any single link failure leaves a path. *)
let n_plus_one ctx =
  let n = Context.n ctx in
  let g = Graph.create n in
  let rank = traffic_rank ctx in
  let h0 = rank.(0) and h1 = rank.(1) in
  Graph.add_edge g (min h0 h1) (max h0 h1);
  for v = 0 to n - 1 do
    if v <> h0 && v <> h1 then begin
      Graph.add_edge g (min v h0) (max v h0);
      Graph.add_edge g (min v h1) (max v h1)
    end
  done;
  g

(* Fat-tree-flavoured template: ceil(sqrt n) heaviest PoPs form a full-mesh
   core; every edge PoP homes to two cores, assigned round-robin. *)
let fat_tree ctx =
  let n = Context.n ctx in
  let g = Graph.create n in
  let rank = traffic_rank ctx in
  let k = max 2 (int_of_float (Float.ceil (sqrt (float_of_int n)))) in
  for i = 0 to k - 1 do
    for j = i + 1 to k - 1 do
      Graph.add_edge g (min rank.(i) rank.(j)) (max rank.(i) rank.(j))
    done
  done;
  let edge_pops = Array.sub rank k (n - k) in
  Array.iteri
    (fun i v ->
      let c0 = rank.(i mod k) and c1 = rank.((i + 1) mod k) in
      Graph.add_edge g (min v c0) (max v c0);
      Graph.add_edge g (min v c1) (max v c1))
    edge_pops;
  g

let () =
  let ctx = Context.generate (Context.default_spec ~n:12) (Prng.create 42) in
  let designs =
    List.concat
      [
        List.map
          (fun seed ->
            let r =
              Cold.Synthesis.design_ga
                (config ~survivable:false ~heuristics:false)
                ctx (Prng.create seed)
            in
            (Printf.sprintf "cold (seed %d)" seed, r.Cold.Ga.best))
          [ 1; 2; 3 ];
        [
          ( "cold survivable",
            (Cold.Synthesis.design_ga
               (config ~survivable:true ~heuristics:true)
               ctx (Prng.create 1))
              .Cold.Ga.best );
          ("full mesh", Graph.complete (Context.n ctx));
          ("n+1 dual hub", n_plus_one ctx);
          ("fat tree", fat_tree ctx);
        ];
      ]
  in
  let rates =
    {
      Failure.link_rate = 0.02;
      node_rate = 0.01;
      regional_rate = 0.05;
      regional_radius = 12.0;
    }
  in
  let trace = Failure.generate ~rates ~steps:40 ctx ~seed:7 in
  Printf.printf
    "one 40-step failure trace (seed 7), replayed against every design\n\
     on the same 12-PoP context: availability is the mean delivered\n\
     fraction with a 95%% bootstrap CI.\n\n";
  Printf.printf "%-16s %5s %8s  %-24s %7s %5s %5s\n" "design" "links" "cost"
    "availability" "worst" "part" "over";
  List.iter
    (fun (name, g) ->
      let net = Network.build ctx g in
      let reports = Failure.evaluate net trace in
      let s = Failure.summarize (Prng.create 5) reports in
      let ci = s.Failure.availability in
      Printf.printf "%-16s %5d %8.0f  %.4f [%.4f, %.4f]  %7.4f %5d %5d\n" name
        (Graph.edge_count g)
        (Cold.Cost.evaluate params ctx g)
        ci.Cold_stats.Bootstrap.point ci.Cold_stats.Bootstrap.lo
        ci.Cold_stats.Bootstrap.hi s.Failure.worst_delivered
        s.Failure.partitioned_steps s.Failure.overloaded_steps)
    designs;
  (* The survivable design, in the interchange format simulators consume. *)
  (match List.assoc_opt "cold survivable" designs with
  | Some g ->
    Printf.printf
      "\nsurvivable design, edge-list export (2-edge-connected: %b):\n%s"
      (Cold_graph.Robustness.is_two_edge_connected g)
      (Cold_netio.Edge_list.to_string g)
  | None -> ());
  print_endline
    "\ncost buys survivability: the constrained COLD run and the redundant\n\
     templates keep availability high through the same failures that\n\
     partition the cheapest unconstrained designs -- and the GA finds the\n\
     redundancy for a fraction of the full mesh's cost."
