module Graph = Cold_graph.Graph
module Prng = Cold_prng.Prng
module Tbl = Cold_util.Tbl

let generate ~n ~m rng =
  if m < 1 || m >= n then invalid_arg "Barabasi_albert.generate: need 1 <= m < n";
  let g = Graph.create n in
  (* Seed: clique on the first m+1 vertices. *)
  for u = 0 to m do
    for v = u + 1 to m do
      Graph.add_edge g u v
    done
  done;
  (* Repeated-targets list: each edge contributes both endpoints, so uniform
     choice from it is degree-proportional choice. *)
  let targets = ref [] in
  Graph.iter_edges g (fun u v -> targets := u :: v :: !targets);
  let target_array = ref (Array.of_list !targets) in
  for v = m + 1 to n - 1 do
    let chosen = Hashtbl.create m in
    while Hashtbl.length chosen < m do
      let t = !target_array.(Prng.int rng (Array.length !target_array)) in
      if t <> v then Hashtbl.replace chosen t ()
    done;
    let new_targets = ref [] in
    (* Sorted iteration: the wiring (and the repeated-targets list feeding
       later draws) must depend only on which targets were chosen, never on
       the chosen-set's hash layout. *)
    Tbl.iter_sorted ~cmp:Int.compare
      (fun t () ->
        Graph.add_edge g v t;
        new_targets := v :: t :: !new_targets)
      chosen;
    target_array := Array.append !target_array (Array.of_list !new_targets)
  done;
  g
