module Graph = Cold_graph.Graph
module Dist = Cold_prng.Dist

let power_law_weights ~n ~exponent ~average =
  if exponent <= 1.0 then invalid_arg "Plrg.power_law_weights: exponent must exceed 1";
  if n < 1 then invalid_arg "Plrg.power_law_weights: n must be positive";
  let gamma = 1.0 /. (exponent -. 1.0) in
  let w = Array.init n (fun i -> (float_of_int (i + 1)) ** (-.gamma)) in
  let mean = Array.fold_left ( +. ) 0.0 w /. float_of_int n in
  Array.map (fun x -> x *. average /. mean) w

let power_law_degrees ~n ~exponent ~min_degree rng =
  if exponent <= 1.0 || min_degree < 1 then invalid_arg "Plrg.power_law_degrees";
  let draw () =
    let d = Dist.pareto rng ~shape:(exponent -. 1.0) ~scale:(float_of_int min_degree) in
    (* Degrees are capped at n-1 in a simple graph. *)
    min (n - 1) (int_of_float (Float.floor d))
  in
  let deg = Array.init n (fun _ -> draw ()) in
  let sum = Array.fold_left ( + ) 0 deg in
  if sum mod 2 = 1 then deg.(0) <- deg.(0) + 1;
  deg

let chung_lu weights rng =
  let n = Array.length weights in
  let total = Array.fold_left ( +. ) 0.0 weights in
  let g = Graph.create n in
  if total > 0.0 then
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        let p = Float.min 1.0 (weights.(u) *. weights.(v) /. total) in
        if Dist.bernoulli rng ~p then Graph.add_edge g u v
      done
    done;
  g

let configuration degrees rng =
  Array.iter (fun d -> if d < 0 then invalid_arg "Plrg.configuration: negative degree") degrees;
  let sum = Array.fold_left ( + ) 0 degrees in
  if sum mod 2 = 1 then invalid_arg "Plrg.configuration: odd degree sum";
  let n = Array.length degrees in
  let stubs = Array.make sum 0 in
  let k = ref 0 in
  Array.iteri
    (fun v d ->
      for _ = 1 to d do
        stubs.(!k) <- v;
        incr k
      done)
    degrees;
  Dist.shuffle rng stubs;
  let g = Graph.create n in
  let i = ref 0 in
  while !i + 1 < sum do
    let u = stubs.(!i) and v = stubs.(!i + 1) in
    (* Erased variant: drop self-loops and parallel edges. *)
    if u <> v then Graph.add_edge g u v;
    i := !i + 2
  done;
  g
