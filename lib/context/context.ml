module Region = Cold_geom.Region
module Point_process = Cold_geom.Point_process
module Distmat = Cold_geom.Distmat
module Population = Cold_traffic.Population
module Gravity = Cold_traffic.Gravity

type spec = {
  n : int;
  region : Region.t;
  point_process : Point_process.spec;
  population : Population.model;
  traffic_scale : float;
}

type t = {
  spec : spec;
  points : Cold_geom.Point.t array;
  dist : Distmat.t;
  tm : Gravity.t;
}

(* The paper's printed parameter ranges (k0 = 10, k1 = 1, k2 in 2.5e-5 ..
   1.6e-3, k3 in 1 .. 1000) are only meaningful relative to the length and
   traffic units, which the paper does not pin down (its "unit square" cannot
   be literal: with k1 = 1 the total-length term would be negligible against
   k0 = 10 and k3 = 1 would already collapse networks to stars). A 50 x 50
   region with gravity scale 0.4 reproduces the published figure ranges; see
   DESIGN.md ("traffic and length calibration"). *)
let default_region = Region.rectangle ~aspect:1.0 ~area:2500.0

let default_traffic_scale = 0.4

let default_spec ~n =
  {
    n;
    region = default_region;
    point_process = Point_process.Uniform;
    population = Population.default;
    traffic_scale = default_traffic_scale;
  }

let generate spec g =
  if spec.n < 0 then invalid_arg "Context.generate: negative n";
  let points =
    Point_process.generate spec.point_process ~region:spec.region ~n:spec.n g
  in
  let pops = Population.generate spec.population ~n:spec.n g in
  {
    spec;
    points;
    dist = Distmat.of_points points;
    tm = Gravity.of_populations ~scale:spec.traffic_scale pops;
  }

let of_points_and_populations ?(traffic_scale = 1.0) points pops =
  if Array.length points <> Array.length pops then
    invalid_arg "Context.of_points_and_populations: length mismatch";
  let n = Array.length points in
  {
    spec = { (default_spec ~n) with traffic_scale };
    points = Array.copy points;
    dist = Distmat.of_points points;
    tm = Gravity.of_populations ~scale:traffic_scale pops;
  }

let n t = Array.length t.points

let distance t i j = Distmat.get t.dist i j

let spatial t = Distmat.spatial t.dist
