(** The synthesis {e context} (§3.1): everything random that the
    deterministic design step consumes.

    COLD's key modelling decision is that randomness enters through the
    context — PoP locations from a point process and a gravity traffic
    matrix — while the design step is a deterministic optimization of that
    context. Generating an ensemble therefore means generating many
    contexts. *)

type spec = {
  n : int;  (** Number of PoPs. *)
  region : Cold_geom.Region.t;
  point_process : Cold_geom.Point_process.spec;
  population : Cold_traffic.Population.model;
  traffic_scale : float;  (** Multiplier on the gravity matrix; 1.0 default. *)
}

type t = {
  spec : spec;
  points : Cold_geom.Point.t array;  (** PoP coordinates. *)
  dist : Cold_geom.Distmat.t;  (** Pairwise Euclidean distances. *)
  tm : Cold_traffic.Gravity.t;  (** Traffic matrix. *)
}

val default_region : Cold_geom.Region.t
(** A 50 × 50 square — the length calibration under which the paper's
    printed cost parameters (k0 = 10, k1 = 1, k2 ∈ 2.5e-5…1.6e-3,
    k3 ∈ 1…1000) reproduce the published figures. See DESIGN.md. *)

val default_traffic_scale : float
(** 0.4 — the matching gravity-model scale. *)

val default_spec : n:int -> spec
(** The paper's default context model: uniform PoP locations on
    {!default_region}, exponential populations with mean 30, gravity traffic
    at {!default_traffic_scale}. Every field can be overridden. *)

val generate : spec -> Cold_prng.Prng.t -> t
(** [generate spec g] draws one random context. *)

val of_points_and_populations :
  ?traffic_scale:float -> Cold_geom.Point.t array -> float array -> t
(** Deterministic construction from explicit data (e.g. real city
    coordinates). Raises [Invalid_argument] if lengths differ. *)

val n : t -> int

val distance : t -> int -> int -> float
(** Euclidean distance between two PoPs: the link length ℓ of the cost
    model. *)

val spatial : t -> Cold_geom.Spatial.t
(** The bucket-grid index over the PoP locations — k-nearest / radius
    queries for locality-aware candidate generation ({!Cold.Operators}). *)
