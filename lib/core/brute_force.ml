module Graph = Cold_graph.Graph
module Union_find = Cold_graph.Union_find
module Context = Cold_context.Context

(* All C(n,2) vertex pairs in a fixed order. *)
let pairs n =
  let acc = ref [] in
  for u = n - 1 downto 0 do
    for v = n - 1 downto u + 1 do
      acc := (u, v) :: !acc
    done
  done;
  Array.of_list !acc

(* Connectivity of an edge-subset given as a bitmask, via union-find. *)
let mask_connected n pair_array mask =
  let uf = Union_find.create n in
  Array.iteri
    (fun i (u, v) ->
      if mask land (1 lsl i) <> 0 then ignore (Union_find.union uf u v))
    pair_array;
  Union_find.count uf = 1

let graph_of_mask n pair_array mask =
  let g = Graph.create n in
  Array.iteri
    (fun i (u, v) -> if mask land (1 lsl i) <> 0 then Graph.add_edge g u v)
    pair_array;
  g

let rec popcount m acc = if m = 0 then acc else popcount (m lsr 1) (acc + (m land 1))

(* Earliest strict minimum over one contiguous mask range. *)
let best_in_range n pair_array params ctx ~lo ~hi =
  let best = ref None in
  for mask = lo to hi - 1 do
    (* A connected graph needs at least n-1 edges: cheap popcount prune. *)
    if popcount mask 0 >= n - 1 && mask_connected n pair_array mask then begin
      let g = graph_of_mask n pair_array mask in
      let c = Cost.evaluate params ctx g in
      match !best with
      | None -> best := Some (g, c)
      | Some (_, bc) -> if c < bc then best := Some (g, c)
    end
  done;
  !best

let optimal ?(domains = 1) ?(max_n = 8) params ctx =
  let n = Context.n ctx in
  if n < 2 then invalid_arg "Brute_force.optimal: need at least 2 PoPs";
  if n > max_n then invalid_arg "Brute_force.optimal: too many PoPs to enumerate";
  let pair_array = pairs n in
  let bits = Array.length pair_array in
  let total = 1 lsl bits in
  let streams = Cold_par.Par.resolve ~domains () in
  (* Contiguous chunks, merged in mask order with strict improvement only:
     the winner is the earliest mask attaining the minimum cost — the same
     candidate the sequential scan keeps — for any chunking, so the result
     does not depend on the chunk count or on scheduling. *)
  let chunks = Int.min total (Int.max 1 (streams * 8)) in
  let ranges =
    Array.init chunks (fun i ->
        (i * total / chunks, (i + 1) * total / chunks))
  in
  let candidates =
    Cold_par.Par.with_pool ~domains (fun pool ->
        Cold_par.Par.map_array pool
          (fun (lo, hi) -> best_in_range n pair_array params ctx ~lo ~hi)
          ranges)
  in
  let best =
    Array.fold_left
      (fun acc candidate ->
        match (acc, candidate) with
        | (None, c) -> c
        | (Some _, None) -> acc
        | (Some (_, bc), Some (_, c)) -> if c < bc then candidate else acc)
      None candidates
  in
  Option.get best

let count_connected n =
  if n < 1 || n > 6 then invalid_arg "Brute_force.count_connected: n must be in 1..6";
  if n = 1 then 1
  else begin
    let pair_array = pairs n in
    let bits = Array.length pair_array in
    let count = ref 0 in
    for mask = 0 to (1 lsl bits) - 1 do
      if mask_connected n pair_array mask then incr count
    done;
    !count
  end
