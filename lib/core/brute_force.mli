(** Exhaustive search for the true optimal topology (§5).

    The paper validates its GA by checking that "for networks of up to 8 PoPs
    the GA always finds the real optimal solution". This module enumerates
    all 2^C(n,2) graphs on [n] labelled vertices, skips disconnected ones,
    and returns the cheapest. Feasible only for small [n] (n = 7 is ~2M
    graphs); guarded at [n <= 8]. *)

val optimal :
  ?domains:int ->
  ?max_n:int ->
  Cost.params ->
  Cold_context.Context.t ->
  Cold_graph.Graph.t * float
(** [optimal params ctx] is the exact optimum and its cost. Raises
    [Invalid_argument] if the context exceeds [max_n] (default 8) or has
    fewer than 2 PoPs.

    [?domains] (default 1; 0 autodetects) sweeps the candidate masks in
    contiguous chunks across a domain pool. Ties keep the smallest mask at
    every setting, so the returned topology is bit-identical to the
    sequential scan. *)

val count_connected : int -> int
(** [count_connected n] is the number of connected labelled graphs on [n]
    vertices, by direct enumeration ([n <= 6]) — a test oracle (4 ⇒ 38,
    5 ⇒ 728). *)
