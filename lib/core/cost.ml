module Graph = Cold_graph.Graph
module Context = Cold_context.Context
module Routing = Cold_net.Routing
module Incremental = Cold_net.Incremental

type params = { k0 : float; k1 : float; k2 : float; k3 : float }

type breakdown = {
  existence : float;
  length : float;
  bandwidth : float;
  hub : float;
  total : float;
}

(* lint: allow magic-cost-constant — these defaults are the canonical values. *)
let params ?(k0 = 10.0) ?(k1 = 1.0) ?(k2 = 1e-4) ?(k3 = 0.0) () =
  if k0 < 0.0 || k1 < 0.0 || k2 < 0.0 || k3 < 0.0 then
    invalid_arg "Cost.params: costs must be non-negative";
  { k0; k1; k2; k3 }

let infeasible =
  { existence = infinity; length = infinity; bandwidth = infinity;
    hub = infinity; total = infinity }

(* Score a routed topology. One fused pass serves both length-dependent
   terms: each link's geometric length feeds the k1 sum and, scaled by the
   link's load, the k2 sum — so Context.distance is queried once per edge,
   not twice. Positive-load links are a subset of the edges and both sweeps
   are lexicographic, so each accumulator adds the same values in the same
   order as the two separate folds did (bit-identical totals). *)
let breakdown_of_loads p ctx g loads =
  let length u v = Context.distance ctx u v in
  let existence = p.k0 *. float_of_int (Graph.edge_count g) in
  let len = ref 0.0 and vl = ref 0.0 in
  Graph.iter_edges g (fun u v ->
      let l = length u v in
      len := !len +. l;
      let w = Routing.load loads u v in
      if w > 0.0 then vl := !vl +. (w *. l));
  let bandwidth = p.k2 *. !vl in
  let hub = p.k3 *. float_of_int (Graph.core_count g) in
  let length_cost = p.k1 *. !len in
  {
    existence;
    length = length_cost;
    bandwidth;
    hub;
    total = existence +. length_cost +. bandwidth +. hub;
  }

let evaluate_breakdown ?workspace p ctx g =
  if Graph.node_count g <> Context.n ctx then
    invalid_arg "Cost.evaluate: graph size does not match context";
  let length u v = Context.distance ctx u v in
  match Routing.route ?workspace g ~length ~tm:ctx.Context.tm with
  | exception Routing.Disconnected -> infeasible
  | loads -> breakdown_of_loads p ctx g loads

let evaluate ?workspace p ctx g = (evaluate_breakdown ?workspace p ctx g).total

let state ?multipath ?repair ctx g =
  if Graph.node_count g <> Context.n ctx then
    invalid_arg "Cost.state: graph size does not match context";
  Incremental.create ?multipath ?repair g
    ~length:(fun u v -> Context.distance ctx u v)
    ~tm:ctx.Context.tm

let evaluate_state p ctx st =
  let g = Incremental.graph st in
  if Graph.node_count g <> Context.n ctx then
    invalid_arg "Cost.evaluate_state: graph size does not match context";
  match Incremental.loads st with
  | exception Routing.Disconnected -> infinity
  | loads -> (breakdown_of_loads p ctx g loads).total

let pp_params fmt p =
  Format.fprintf fmt "{k0=%g; k1=%g; k2=%g; k3=%g}" p.k0 p.k1 p.k2 p.k3

let pp_breakdown fmt b =
  Format.fprintf fmt
    "total=%.4f (existence=%.4f length=%.4f bandwidth=%.4f hub=%.4f)" b.total
    b.existence b.length b.bandwidth b.hub
