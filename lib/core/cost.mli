(** The COLD cost model (§3.2).

    A candidate PoP-level topology G is scored by

    {v cost(G) = Σ_{i∈E} (k0 + k1·ℓi + k2·ℓi·wi) + Σ_{j: deg(j)>1} k3 v}

    where ℓi is the Euclidean link length, wi the bandwidth the link must
    carry under shortest-path routing of the context's traffic matrix, and
    the last sum is the {e hub (complexity) cost} over core PoPs (§3.2.2,
    §7 — the term required to reach CVND > 1). A topology that cannot carry
    the traffic (disconnected) costs [infinity].

    Costs are relative — only three degrees of freedom matter — so the
    conventional normalization fixes k1 = 1 and, following §6, k0 = 10.

    Two evaluation routes produce bit-identical scores: the stateless oracle
    {!evaluate} (route from scratch) and the stateful {!evaluate_state}
    (recompute only what an edge flip affected — see
    {!Cold_net.Incremental}). The optimizers use the latter; tests hold it
    to the former. *)

type params = {
  k0 : float;  (** Per-link existence cost. Dominant ⇒ spanning trees. *)
  k1 : float;  (** Per-unit-length cost. Dominant ⇒ minimum spanning tree. *)
  k2 : float;  (** Per-unit (length × bandwidth) cost. Dominant ⇒ clique. *)
  k3 : float;  (** Per-hub complexity cost. Dominant ⇒ hub-and-spoke. *)
}

type breakdown = {
  existence : float;  (** Σ k0. *)
  length : float;  (** Σ k1·ℓ. *)
  bandwidth : float;  (** Σ k2·ℓ·w. *)
  hub : float;  (** Σ k3 over core PoPs. *)
  total : float;
}

val params : ?k0:float -> ?k1:float -> ?k2:float -> ?k3:float -> unit -> params
(** Defaults: k0 = 10, k1 = 1, k2 = 1e-4, k3 = 0 — the paper's §6 baseline.
    Raises [Invalid_argument] on negative values. *)

val evaluate :
  ?workspace:Cold_net.Routing.workspace ->
  params ->
  Cold_context.Context.t ->
  Cold_graph.Graph.t ->
  float
(** [evaluate p ctx g] is the total cost; [infinity] if [g] is disconnected
    (traffic cannot be carried). Pure: depends only on arguments.
    [?workspace] reuses routing scratch across calls (results are
    bit-identical with and without it). *)

val evaluate_breakdown :
  ?workspace:Cold_net.Routing.workspace ->
  params ->
  Cold_context.Context.t ->
  Cold_graph.Graph.t ->
  breakdown
(** Like {!evaluate}, with per-term decomposition; every component is
    [infinity] when infeasible. The length-dependent terms are computed in
    one fused pass over the links (each link's geometric length is queried
    once, feeding both the k1 and k2 sums). *)

val state :
  ?multipath:bool ->
  ?repair:bool ->
  Cold_context.Context.t ->
  Cold_graph.Graph.t ->
  Cold_net.Incremental.t
(** [state ctx g] opens incremental evaluation state at topology [g], wired
    to the context's distances and traffic matrix — the constructor behind
    {!evaluate_state}. [repair] (default [true]) selects the dynamic
    in-place tree-repair engine; see {!Cold_net.Incremental.create}. *)

val evaluate_state :
  params -> Cold_context.Context.t -> Cold_net.Incremental.t -> float
(** [evaluate_state p ctx st] is the total cost of the state's current
    topology, bit-identical to [evaluate p ctx (Incremental.graph st)] but
    recomputing only the shortest-path trees invalidated since the state
    was last brought current. *)

val pp_params : Format.formatter -> params -> unit

val pp_breakdown : Format.formatter -> breakdown -> unit
