module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Network = Cold_net.Network
module Summary = Cold_metrics.Summary
module Graph = Cold_graph.Graph

module Par = Cold_par.Par

type t = { networks : Network.t array; summaries : Summary.t array }

let finish networks =
  {
    networks;
    summaries = Array.map (fun n -> Summary.compute n.Network.graph) networks;
  }

(* Members already draw from per-trial child PRNG streams (split_at), so
   each trial is a self-contained synthesis task: one context + GA per pool
   slot, results landing in trial order whatever domain ran them. *)
let generate ?(domains = 1) ?(on_progress = fun _ -> ()) cfg spec ~count ~seed =
  if count < 0 then invalid_arg "Ensemble.generate";
  let root = Prng.create seed in
  let trials = Array.init count (fun i -> i) in
  let networks =
    Par.with_pool ~domains (fun pool ->
        Par.map_array pool
          (fun i ->
            let rng = Prng.split_at root i in
            let ctx = Context.generate spec rng in
            let net = Synthesis.design cfg ctx rng in
            on_progress i;
            net)
          trials)
  in
  finish networks

let same_context ?(domains = 1) cfg ctx ~count ~seed =
  if count < 0 then invalid_arg "Ensemble.same_context";
  let root = Prng.create seed in
  let trials = Array.init count (fun i -> i) in
  let networks =
    Par.with_pool ~domains (fun pool ->
        Par.map_array pool
          (fun i ->
            let rng = Prng.split_at root i in
            Synthesis.design cfg ctx rng)
          trials)
  in
  finish networks

let statistic t f = Array.map f t.summaries

let mean_ci t f ~seed =
  Cold_stats.Bootstrap.mean_ci (Prng.create seed) (statistic t f)

let distinct_topologies t =
  let n = Array.length t.networks in
  let distinct = ref 0 in
  for i = 0 to n - 1 do
    let duplicate = ref false in
    for j = 0 to i - 1 do
      if
        (not !duplicate)
        && Graph.equal t.networks.(i).Network.graph t.networks.(j).Network.graph
      then duplicate := true
    done;
    if not !duplicate then incr distinct
  done;
  !distinct
