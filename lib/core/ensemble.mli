(** Ensembles of synthesized networks.

    The whole point of topology synthesis is to produce {e many} networks
    "similar but varied enough to perform statistical analysis of results"
    (§1, requirement 1). An ensemble draws k independent contexts from one
    spec (child PRNG streams split per trial, so members are reproducible
    and order-independent) and designs each. Summary statistics with
    bootstrap confidence intervals come out alongside. *)

type t = {
  networks : Cold_net.Network.t array;
  summaries : Cold_metrics.Summary.t array;
}

val generate :
  ?domains:int ->
  ?on_progress:(int -> unit) ->
  Synthesis.config ->
  Cold_context.Context.spec ->
  count:int ->
  seed:int ->
  t
(** [generate cfg spec ~count ~seed] synthesizes [count] networks.
    [on_progress i] is called after network [i] completes.

    [?domains] (default 1; 0 autodetects) spreads whole member syntheses
    across a domain pool — one context + GA per task. Members were already
    independent (per-trial split PRNG streams), so the ensemble is
    bit-identical at every setting. With [domains > 1], [on_progress] runs
    on worker domains and completion order is not trial order; keep inner
    GA parallelism ([cfg.domains]) at 1 unless the ensemble is smaller
    than the machine. *)

val same_context :
  ?domains:int ->
  Synthesis.config ->
  Cold_context.Context.t ->
  count:int ->
  seed:int ->
  t
(** [same_context cfg ctx ~count ~seed] designs [count] networks for a single
    fixed context (different GA streams) — the paper's "fixed context,
    multiple topologies" simulation mode (§3.3). [?domains] as in
    {!generate}. *)

val statistic : t -> (Cold_metrics.Summary.t -> float) -> float array
(** Extract one statistic across the ensemble. *)

val mean_ci :
  t ->
  (Cold_metrics.Summary.t -> float) ->
  seed:int ->
  Cold_stats.Bootstrap.interval
(** Bootstrap 95 % CI of an ensemble statistic's mean. *)

val distinct_topologies : t -> int
(** Number of pairwise non-identical (as labelled graphs) topologies — a
    cheap verification of requirement 1 ("distinct by construction"). *)
