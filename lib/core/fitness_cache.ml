module Graph = Cold_graph.Graph

type 'a entry = { key : Graph.t; value : 'a }

type 'a t = {
  mutex : Mutex.t;
  slots : 'a entry option array;  (* direct-mapped: slot = fingerprint mod capacity *)
  mutable hits : int;
  mutable misses : int;
  mutable entries : int;  (* occupied slots; insert over Some does not grow it *)
}

let create ~slots =
  if slots < 0 then invalid_arg "Fitness_cache.create: slots must be >= 0";
  {
    mutex = Mutex.create ();
    slots = Array.make slots None;
    hits = 0;
    misses = 0;
    entries = 0;
  }

let slot_of cache g =
  let capacity = Array.length cache.slots in
  let fp = Graph.fingerprint g in
  (* Mask the sign away before reducing mod capacity. *)
  Int64.to_int (Int64.rem (Int64.logand fp Int64.max_int) (Int64.of_int capacity))

let find_or_compute cache g compute =
  if Array.length cache.slots = 0 then begin
    Mutex.lock cache.mutex;
    cache.misses <- cache.misses + 1;
    Mutex.unlock cache.mutex;
    compute ()
  end
  else begin
    let slot = slot_of cache g in
    Mutex.lock cache.mutex;
    match cache.slots.(slot) with
    | Some e when Graph.equal e.key g ->
      cache.hits <- cache.hits + 1;
      Mutex.unlock cache.mutex;
      e.value
    | _ ->
      cache.misses <- cache.misses + 1;
      Mutex.unlock cache.mutex;
      let value = compute () in
      let e = { key = Graph.copy g; value } in
      Mutex.lock cache.mutex;
      (match cache.slots.(slot) with
      | None -> cache.entries <- cache.entries + 1
      | Some _ -> ());
      cache.slots.(slot) <- Some e;
      Mutex.unlock cache.mutex;
      value
  end

let hits cache =
  Mutex.lock cache.mutex;
  let h = cache.hits in
  Mutex.unlock cache.mutex;
  h

let misses cache =
  Mutex.lock cache.mutex;
  let m = cache.misses in
  Mutex.unlock cache.mutex;
  m

let entries cache =
  Mutex.lock cache.mutex;
  let e = cache.entries in
  Mutex.unlock cache.mutex;
  e

let fill cache =
  let capacity = Array.length cache.slots in
  if capacity = 0 then 0. else float_of_int (entries cache) /. float_of_int capacity
