(** Bounded memoization of topology fitness.

    Crossover of similar parents and elite-heavy populations make the GA
    re-evaluate byte-identical chromosomes constantly; each such duplicate
    costs n Dijkstras plus a load-accumulation pass for an answer already
    computed. This cache keys on a canonical fingerprint of the adjacency
    matrix ({!Cold_graph.Graph.fingerprint}, FNV-1a over the adjacency
    bytes) and confirms every hit with a full structural equality check, so
    a fingerprint collision can never return the wrong cost.

    The store is a fixed-size direct-mapped table: slot = fingerprint mod
    capacity, insert evicts whatever occupied the slot. Eviction affects
    only the hit rate, never a returned value — a memoized objective must
    be a pure function of the graph, so hits are bit-identical to
    recomputation by construction.

    All operations are guarded by a mutex; the cache is safe to share
    across the domains of a {!Cold_par.Par} pool. Keys are defensively
    copied on insert, so callers may mutate their graph afterwards. *)

type 'a t

val create : slots:int -> 'a t
(** [create ~slots] makes a cache with [slots] direct-mapped entries.
    [slots = 0] disables memoization (every lookup computes; counters still
    track). Raises [Invalid_argument] if [slots < 0]. *)

val find_or_compute : 'a t -> Cold_graph.Graph.t -> (unit -> 'a) -> 'a
(** [find_or_compute cache g compute] returns the cached value for [g] or
    runs [compute ()] and stores the result. [compute] runs outside the
    cache lock, so independent misses evaluate concurrently; two domains
    racing on the same key may both compute (both results are identical for
    a pure objective — the second store is a no-op in effect). *)

val hits : 'a t -> int
(** Lookups answered from the store. With a multi-domain pool the split
    between {!hits} and {!misses} can vary by a few counts across runs
    (racing duplicates); their sum — total lookups — cannot. *)

val misses : 'a t -> int
(** Lookups that ran [compute]. *)

val entries : 'a t -> int
(** Occupied slots. Grows monotonically from [0] towards capacity:
    direct-mapped eviction replaces an occupant in place, so the count
    never shrinks. *)

val fill : 'a t -> float
(** [entries / capacity] in [0, 1]; [0.] for a zero-slot cache. A fill
    near [1.] with a poor hit rate suggests the table is too small for the
    population's working set. *)
