module Graph = Cold_graph.Graph
module Mst = Cold_graph.Mst
module Dist = Cold_prng.Dist
module Context = Cold_context.Context
module Par = Cold_par.Par
module Incremental = Cold_net.Incremental

type settings = {
  population_size : int;
  generations : int;
  num_saved : int;
  num_crossover : int;
  num_mutation : int;
  tournament_pool : int;
  tournament_winners : int;
  node_mutation_prob : float;
  init_edge_factor : float;
}

type result = {
  best : Graph.t;
  best_cost : float;
  final_population : (Graph.t * float) array;
  history : float array;
  evaluations : int;
  cache_hits : int;
  cache_misses : int;
}

let default_settings =
  {
    population_size = 100;
    generations = 100;
    num_saved = 20;
    num_crossover = 50;
    num_mutation = 30;
    tournament_pool = 10;
    tournament_winners = 2;
    node_mutation_prob = 0.5;
    init_edge_factor = 1.5;
  }

let default_cache_slots = 1024

let validate s =
  if s.population_size < 2 then invalid_arg "Ga: population_size must be >= 2";
  if s.generations < 0 then invalid_arg "Ga: generations must be >= 0";
  if s.num_saved < 1 then invalid_arg "Ga: num_saved must be >= 1";
  if s.num_crossover < 0 || s.num_mutation < 0 then
    invalid_arg "Ga: operator counts must be non-negative";
  if s.num_saved + s.num_crossover + s.num_mutation <> s.population_size then
    invalid_arg "Ga: num_saved + num_crossover + num_mutation must equal population_size";
  if s.tournament_winners < 1 || s.tournament_pool < s.tournament_winners then
    invalid_arg "Ga: need tournament_pool >= tournament_winners >= 1";
  if s.node_mutation_prob < 0.0 || s.node_mutation_prob > 1.0 then
    invalid_arg "Ga: node_mutation_prob out of range";
  if s.init_edge_factor <= 0.0 then invalid_arg "Ga: init_edge_factor must be positive"

let erdos_renyi_repaired ctx ~p rng =
  let n = Context.n ctx in
  let g = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Dist.bernoulli rng ~p then Graph.add_edge g u v
    done
  done;
  ignore (Repair.repair ctx g);
  g

(* Sorting the population must permute the members' evaluation states along
   with the (graph, cost) pairs, so we sort an index permutation instead of
   the pairs. The comparator sees exactly the cost sequence the old
   pair-array sort saw, so [Array.sort] performs the identical comparison
   and swap sequence and lands on the identical permutation — equal-cost
   orderings included. *)
let sort_permutation pop =
  let order = Array.init (Array.length pop) (fun i -> i) in
  Array.sort (fun i j -> Float.compare (snd pop.(i)) (snd pop.(j))) order;
  order

(* Candidate graphs are produced serially with the RNG (so the random
   stream is identical at every domain count), then costed as one batch:
   the pool writes each cost into the slot named by its candidate's index,
   which keeps population order — and every downstream sort and tie-break —
   bit-identical to the sequential run. *)
let initial_population ?locality ~survivable ~seeds settings ctx rng
    ~evaluate_batch =
  let n = Context.n ctx in
  let mst = Mst.mst_graph ~n ~weight:(fun u v -> Context.distance ctx u v) in
  let clique = Graph.complete n in
  let fixed = mst :: clique :: seeds in
  (* Survivable mode lifts every member to 2-edge-connectivity. Seeds are
     caller-owned, so repair copies; the repair itself consumes no
     randomness, leaving the RNG stream — and with it domain-count
     determinism — untouched. *)
  let fixed =
    if not survivable then fixed
    else
      List.map
        (fun g ->
          let c = Graph.copy g in
          ignore (Repair.two_edge_connect ctx c);
          c)
        fixed
  in
  let fixed_count = List.length fixed in
  let pairs = float_of_int (n * (n - 1) / 2) in
  let p = Float.min 1.0 (settings.init_edge_factor *. float_of_int n /. pairs) in
  let random_count = max 0 (settings.population_size - fixed_count) in
  let graphs = Array.make (fixed_count + random_count) clique in
  List.iteri (fun i g -> graphs.(i) <- g) fixed;
  (* Locality mode seeds with geographically short random links (O(n·k) per
     topology, same expected link count); otherwise plain Erdős–Rényi. *)
  let random_seed () =
    let g =
      match locality with
      | Some k ->
        let pk = Float.min 1.0 (settings.init_edge_factor /. float_of_int k) in
        Operators.locality_random_graph ctx ~k ~p:pk rng
      | None -> erdos_renyi_repaired ctx ~p rng
    in
    if survivable then ignore (Repair.two_edge_connect ctx g);
    g
  in
  for i = 0 to random_count - 1 do
    graphs.(fixed_count + i) <- random_seed ()
  done;
  let (pop, states) =
    evaluate_batch graphs (Array.make (Array.length graphs) None)
  in
  let order = sort_permutation pop in
  (* If seeds overflow the population, keep the cheapest M. *)
  let keep = min (Array.length pop) settings.population_size in
  ( Array.init keep (fun k -> pop.(order.(k))),
    Array.init keep (fun k -> states.(order.(k))) )

(* The evaluation hook: cost a candidate, optionally returning reusable
   incremental state so mutants bred from this member later can be costed
   by delta instead of from scratch. [parent] is the evaluation state of
   the member the candidate was bred from, when one exists. *)
type eval_fn =
  parent:Incremental.t option -> Graph.t -> float * Incremental.t option

let run_impl ?(domains = 1) ?(cache_slots = default_cache_slots) ?(seeds = [])
    ?locality ?(survivable = false) settings ~(eval : eval_fn) ctx rng =
  validate settings;
  let n = Context.n ctx in
  if n < 2 then invalid_arg "Ga.run: need at least 2 PoPs";
  List.iter
    (fun g ->
      if Graph.node_count g <> n then
        invalid_arg "Ga.run: seed topology size does not match context")
    seeds;
  let cache = Fitness_cache.create ~slots:cache_slots in
  let evaluations = ref 0 in
  Par.with_pool ~domains (fun pool ->
      let evaluate_batch graphs parents =
        evaluations := !evaluations + Array.length graphs;
        let indices = Array.init (Array.length graphs) (fun i -> i) in
        let results =
          Par.map_array pool
            (fun i ->
              let g = graphs.(i) in
              (* The state rides out of the memo closure through a
                 task-local stash: a cache hit produces no state (the miss
                 that filled the slot may have run on another graph object),
                 and that is fine — stateless members simply evaluate their
                 next mutant from scratch. *)
              let stash = ref None in
              let cost =
                Fitness_cache.find_or_compute cache g (fun () ->
                    let (c, st) = eval ~parent:parents.(i) g in
                    stash := st;
                    c)
              in
              ((g, cost), !stash))
            indices
        in
        (Array.map fst results, Array.map snd results)
      in
      let (pop0, states0) =
        initial_population ?locality ~survivable ~seeds settings ctx rng
          ~evaluate_batch
      in
      (* Population is kept sorted ascending by cost; states.(i) is always
         member i's evaluation state (None for cache hits / custom
         objectives). *)
      let pop = ref pop0 in
      let pop_states = ref states0 in
      let history = Array.make (settings.generations + 1) infinity in
      history.(0) <- snd !pop.(0);
      let children_count = settings.num_crossover + settings.num_mutation in
      for gen = 1 to settings.generations do
        let prev = !pop in
        let prev_states = !pop_states in
        (* Children are bred serially — tournament, crossover and mutation
           all draw from the single RNG stream in the original order — and
           only their (pure) evaluations fan out across domains. *)
        let children = Array.make (max children_count 1) (fst prev.(0)) in
        let parent_of = Array.make (max children_count 1) (-1) in
        for i = 0 to settings.num_crossover - 1 do
          let parents =
            Operators.tournament ~pool:settings.tournament_pool
              ~winners:settings.tournament_winners prev rng
          in
          children.(i) <- Operators.crossover ctx ~parents rng
        done;
        for i = 0 to settings.num_mutation - 1 do
          let idx = Operators.select_inverse_cost prev rng in
          let mutant = Graph.copy (fst prev.(idx)) in
          if Dist.bernoulli rng ~p:settings.node_mutation_prob then
            Operators.node_mutation ctx mutant rng
          else Operators.link_mutation ?locality ctx mutant rng;
          children.(settings.num_crossover + i) <- mutant;
          (* A mutant differs from its parent by a handful of edge flips —
             exactly what the incremental engine is for. *)
          parent_of.(settings.num_crossover + i) <- idx
        done;
        (* Crossover children are freshly bred and mutants are copies, so
           in-place repair touches nothing the population still owns. The
           extra edges are an ordinary diff to the incremental engine's
           retarget. *)
        if survivable then
          for i = 0 to children_count - 1 do
            ignore (Repair.two_edge_connect ctx children.(i))
          done;
        let parents =
          Array.init children_count (fun i ->
              let p = parent_of.(i) in
              if p >= 0 then prev_states.(p) else None)
        in
        let (evaluated, child_states) =
          evaluate_batch (Array.sub children 0 children_count) parents
        in
        let next = Array.make settings.population_size prev.(0) in
        let next_states = Array.make settings.population_size None in
        (* Elites survive unchanged (they are never mutated in place). *)
        for i = 0 to settings.num_saved - 1 do
          next.(i) <- prev.(i);
          next_states.(i) <- prev_states.(i)
        done;
        Array.blit evaluated 0 next settings.num_saved children_count;
        Array.blit child_states 0 next_states settings.num_saved children_count;
        let order = sort_permutation next in
        pop := Array.map (fun i -> next.(i)) order;
        pop_states := Array.map (fun i -> next_states.(i)) order;
        history.(gen) <- snd !pop.(0)
      done;
      let (best, best_cost) = !pop.(0) in
      {
        best;
        best_cost;
        final_population = !pop;
        history;
        evaluations = !evaluations;
        cache_hits = Fitness_cache.hits cache;
        cache_misses = Fitness_cache.misses cache;
      })

let run_custom ?domains ?cache_slots ?seeds ?locality ?survivable settings
    ~objective ctx rng =
  run_impl ?domains ?cache_slots ?seeds ?locality ?survivable settings
    ~eval:(fun ~parent:_ g -> (objective g, None))
    ctx rng

(* Cost a candidate through the delta-aware engine. With a parent state the
   candidate is evaluated as a diff — clone, apply the edge flips, recompute
   only the affected trees; without one it is evaluated from scratch but
   still yields a state for its own future mutants. Both give the exact
   floats of [Cost.evaluate] (see Incremental's bit-identity contract), so
   mixing the two paths — and the fitness memo — never changes a result. *)
let eval_incremental ?repair params ctx : eval_fn =
 fun ~parent g ->
  let st =
    match parent with
    | Some parent_st ->
      (* Clones inherit the parent's engine choice, so one ?repair at the
         root of the population decides the whole run. *)
      let st = Incremental.clone parent_st in
      ignore (Incremental.retarget st g);
      st
    | None -> Cost.state ?repair ctx g
  in
  let cost = Cost.evaluate_state params ctx st in
  Incremental.commit st;
  (cost, Some st)

let run ?domains ?cache_slots ?seeds ?(incremental = true) ?repair ?locality
    ?survivable settings params ctx rng =
  if incremental then
    run_impl ?domains ?cache_slots ?seeds ?locality ?survivable settings
      ~eval:(eval_incremental ?repair params ctx) ctx rng
  else begin
    (* From-scratch evaluation reuses the calling domain's routing scratch —
       the load matrix and Dijkstra buffers — instead of allocating ~n²
       floats per candidate. Cost consumes the loads before returning, so
       the workspace-aliasing caveat never bites, and outputs are
       bit-identical with or without the reuse. *)
    let n = Context.n ctx in
    run_custom ?domains ?cache_slots ?seeds ?locality ?survivable settings
      ~objective:(fun g ->
        Cost.evaluate ~workspace:(Cold_net.Routing.domain_workspace ~n) params
          ctx g)
      ctx rng
  end
