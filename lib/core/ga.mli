(** The genetic algorithm (§4, §5).

    Each generation holds [population_size] candidate topologies with their
    costs. The next generation is the [num_saved] cheapest survivors, plus
    [num_crossover] children of tournament-selected parents, plus
    [num_mutation] mutants. The paper fixes T = M = 100 as a good
    speed/quality trade-off; those are the defaults here.

    The initial population contains the distance MST, the full clique, any
    caller-provided seed topologies (the "initialised GA" of Fig 3 seeds the
    greedy-heuristic solutions), and Erdős–Rényi graphs repaired to
    connectivity with link probability chosen so the expected number of
    links is [init_edge_factor · n]. *)

type settings = {
  population_size : int;  (** M; default 100. *)
  generations : int;  (** T; default 100. *)
  num_saved : int;  (** Elite survivors per generation; default 20. *)
  num_crossover : int;  (** Children per generation; default 50. *)
  num_mutation : int;  (** Mutants per generation; default 30. *)
  tournament_pool : int;  (** b in §4.1.1; default 10. *)
  tournament_winners : int;  (** a in §4.1.1; default 2. *)
  node_mutation_prob : float;
      (** Probability a mutation is a node (leaf-ification) mutation rather
          than a link mutation; default 0.5. *)
  init_edge_factor : float;
      (** Expected links in each random initial topology, as a multiple of
          n; default 1.5. *)
}

type result = {
  best : Cold_graph.Graph.t;
  best_cost : float;
  final_population : (Cold_graph.Graph.t * float) array;
      (** Final generation sorted by ascending cost — the paper notes one GA
          run yields a whole population of solutions (§3.3, "non-exclusive"). *)
  history : float array;  (** Best cost after each generation (length T+1,
                              starting with the initial population). *)
  evaluations : int;
      (** Number of fitness evaluations requested. Identical at every
          [?domains] and [?cache_slots] setting; memoized duplicates count
          (see {!result.cache_hits} for how many skipped routing). *)
  cache_hits : int;
      (** Evaluations answered by the fitness memo without routing. With
          [domains > 1] the hit/miss split may shift by a few counts across
          runs (racing duplicate evaluations); results never do. *)
  cache_misses : int;  (** Evaluations that ran the objective. *)
}

val default_settings : settings

val default_cache_slots : int
(** Default size of the per-run fitness memo (1024 direct-mapped slots). *)

val validate : settings -> unit
(** Raises [Invalid_argument] unless
    [num_saved + num_crossover + num_mutation = population_size] and all
    counts are sane. *)

val run :
  ?domains:int ->
  ?cache_slots:int ->
  ?seeds:Cold_graph.Graph.t list ->
  ?incremental:bool ->
  ?repair:bool ->
  ?locality:int ->
  ?survivable:bool ->
  settings ->
  Cost.params ->
  Cold_context.Context.t ->
  Cold_prng.Prng.t ->
  result
(** [run ?seeds settings params ctx rng] evolves topologies for [ctx].
    Deterministic given the rng state. All returned topologies are
    connected.

    [?incremental] (default [true]) costs mutants through the delta-aware
    engine ({!Cold_net.Incremental}): every evaluated member keeps its
    routing state, and a mutant — a handful of edge flips away from its
    parent — recomputes only the shortest-path trees those flips affect.
    Crossover children and cache hits evaluate as before. [false] scores
    everything with {!Cost.evaluate} from scratch. [?repair] (default
    [true]) additionally selects the dynamic in-place tree-repair engine
    for those states ({!Cold_net.Incremental.create}); clones inherit it,
    so the flag governs the whole population. All settings return
    bit-identical results at every [?domains] count and differ only in
    running time (and the memory for retained per-member states).

    [?domains] (default 1) sets how many domains evaluate candidates
    concurrently; [0] autodetects ([Domain.recommended_domain_count]).
    Children are bred serially from the single RNG stream and only their
    evaluations fan out, with results written into index-addressed slots —
    so [best], [best_cost], [history], [final_population] and
    [evaluations] are bit-identical at every domain count (doc/PERF.md has
    the full argument).

    [?cache_slots] (default {!default_cache_slots}) bounds the fitness
    memo that lets duplicate chromosomes skip routing; [0] disables it.
    Hits return the exact float the objective produced, so the setting
    never changes results.

    [?locality:k] switches link mutation and random initial topologies to
    spatially local candidate generation ({!Operators.link_mutation},
    {!Operators.locality_random_graph}): added links connect a node to one
    of its [k] geographically nearest non-neighbours, and random seeds are
    born with short links. Off by default; turning it on follows a
    different (still fully deterministic, domain-count-independent) RNG
    trajectory than the uniform operators, so results differ from the
    default mode — by construction, not by accident.

    [?survivable] (default [false]) constrains the search to 2-edge-connected
    topologies: every initial member and every bred child is lifted through
    {!Repair.two_edge_connect} before evaluation, so [best] and all of
    [final_population] survive any single link failure (for contexts with at
    least 3 PoPs; the repair is deterministic and consumes no randomness, so
    domain-count determinism is preserved). The constraint prices in
    redundancy: no leaves means every PoP pays its hub cost. *)

val run_custom :
  ?domains:int ->
  ?cache_slots:int ->
  ?seeds:Cold_graph.Graph.t list ->
  ?locality:int ->
  ?survivable:bool ->
  settings ->
  objective:(Cold_graph.Graph.t -> float) ->
  Cold_context.Context.t ->
  Cold_prng.Prng.t ->
  result
(** Like {!run} but minimizing an arbitrary objective — the hook through
    which extensions add costs (§2 "extensibility"; e.g. the legacy-link
    charges of {!Evolution}). The objective should return [infinity] for
    topologies it deems infeasible.

    The objective must be a pure function of the graph: with [domains > 1]
    it runs concurrently on several domains, and with [cache_slots > 0]
    repeated values are assumed interchangeable. *)
