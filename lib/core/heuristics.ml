module Graph = Cold_graph.Graph
module Mst = Cold_graph.Mst
module Dist = Cold_prng.Dist
module Context = Cold_context.Context

type algorithm =
  | Complete
  | Mst_hubs
  | Greedy_attachment
  | Random_greedy of { permutations : int }

let name = function
  | Complete -> "complete"
  | Mst_hubs -> "mst"
  | Greedy_attachment -> "greedy attachment"
  | Random_greedy _ -> "random greedy"

let all ~permutations =
  [ Random_greedy { permutations }; Complete; Mst_hubs; Greedy_attachment ]

(* Every heuristic is a loop of full evaluations over trial topologies —
   best_star alone costs n of them, the promotion drivers O(n) per step —
   so they all route through the calling domain's reusable workspace
   rather than allocating an n²-float load matrix per trial. Cost consumes
   the loads before returning (aliasing never escapes) and the floats are
   bit-identical, per Routing's workspace contract. *)
let eval_full params ctx g =
  Cost.evaluate
    ~workspace:(Cold_net.Routing.domain_workspace ~n:(Context.n ctx))
    params ctx g

let mst_topology ctx =
  Mst.mst_graph ~n:(Context.n ctx) ~weight:(fun u v -> Context.distance ctx u v)

let clique_topology ctx = Graph.complete (Context.n ctx)

(* Attach every non-hub to its nearest hub. [hubs] is a bool array. The
   spatial grid behind Distmat.nearest finds each leaf's nearest hub in
   near-constant time instead of an O(n) scan; ties resolve to the lowest
   hub index, exactly as the historical strict-< scan did, and the distances
   compared are the same floats — so the attachment (and every golden
   topology built on it) is unchanged. *)
let attach_leaves ctx g hubs =
  let n = Context.n ctx in
  for v = 0 to n - 1 do
    if not hubs.(v) then
      match
        Cold_geom.Distmat.nearest ctx.Context.dist v
          ~except:(fun h -> not hubs.(h))
      with
      | Some h -> Graph.add_edge g v h
      | None -> ()
  done

(* Wire the hub set as a clique. *)
let wire_clique g hub_list =
  List.iter
    (fun h ->
      List.iter (fun h' -> if h < h' then Graph.add_edge g h h') hub_list)
    hub_list

(* Wire the hub set as a distance MST. *)
let wire_mst ctx g hub_list =
  let hubs = Array.of_list hub_list in
  let k = Array.length hubs in
  if k > 1 then begin
    let weight a b = Context.distance ctx hubs.(a) hubs.(b) in
    List.iter
      (fun (a, b) -> Graph.add_edge g hubs.(a) hubs.(b))
      (Mst.prim_complete ~n:k ~weight)
  end

let build_clique_style ctx hubs =
  let g = Graph.create (Context.n ctx) in
  let hub_list = ref [] in
  Array.iteri (fun v is_hub -> if is_hub then hub_list := v :: !hub_list) hubs;
  wire_clique g !hub_list;
  attach_leaves ctx g hubs;
  g

let build_mst_style ctx hubs =
  let g = Graph.create (Context.n ctx) in
  let hub_list = ref [] in
  Array.iteri (fun v is_hub -> if is_hub then hub_list := v :: !hub_list) hubs;
  wire_mst ctx g (List.rev !hub_list);
  attach_leaves ctx g hubs;
  g

let best_star params ctx =
  let n = Context.n ctx in
  if n < 1 then invalid_arg "Heuristics.best_star: empty context";
  let best = ref None in
  for hub = 0 to n - 1 do
    let hubs = Array.make n false in
    hubs.(hub) <- true;
    let g = build_clique_style ctx hubs in
    let c = eval_full params ctx g in
    match !best with
    | None -> best := Some (g, c)
    | Some (_, bc) -> if c < bc then best := Some (g, c)
  done;
  Option.get !best

(* Greedy-attachment wiring: connect new hub [h] to existing hubs, cheapest
   feasible link first, keep adding links while total cost decreases. The
   leaves are re-attached after each trial, so we rebuild candidate graphs
   from the hub structure. [inter_edges] is the current inter-hub edge set. *)
let build_with_edges ctx hubs inter_edges =
  let g = Graph.create (Context.n ctx) in
  List.iter (fun (a, b) -> Graph.add_edge g a b) inter_edges;
  attach_leaves ctx g hubs;
  g

let greedy_attach params ctx hubs inter_edges new_hub =
  (* Candidate endpoints: existing hubs. *)
  let targets = ref [] in
  Array.iteri (fun v is_hub -> if is_hub && v <> new_hub then targets := v :: !targets) hubs;
  (* First link: the one giving the cheapest network; then keep adding while
     cost decreases. *)
  let rec add_links edges cost targets =
    let best = ref None in
    List.iter
      (fun t ->
        let trial_edges = (min new_hub t, max new_hub t) :: edges in
        let g = build_with_edges ctx hubs trial_edges in
        let c = eval_full params ctx g in
        match !best with
        | None -> best := Some (t, c)
        | Some (_, bc) -> if c < bc then best := Some (t, c))
      targets;
    match !best with
    | Some (t, c) when c < cost || Float.equal cost infinity ->
      let edges = (min new_hub t, max new_hub t) :: edges in
      add_links edges c (List.filter (fun x -> x <> t) targets)
    | _ -> (edges, cost)
  in
  add_links inter_edges infinity !targets

(* The generic driver: repeatedly promote the leaf whose promotion reduces
   cost the most, using [promote] to produce (graph, cost, new inter-hub
   edges) for a candidate. Stops when no promotion helps. *)
let drive params ctx ~initial_hub ~wire =
  let n = Context.n ctx in
  let hubs = Array.make n false in
  hubs.(initial_hub) <- true;
  let inter_edges = ref [] in
  let current = ref (build_with_edges ctx hubs !inter_edges) in
  let current_cost = ref (eval_full params ctx !current) in
  let improved = ref true in
  while !improved do
    improved := false;
    let best = ref None in
    for candidate = 0 to n - 1 do
      if not hubs.(candidate) then begin
        hubs.(candidate) <- true;
        let (g, c, edges) = wire hubs !inter_edges candidate in
        hubs.(candidate) <- false;
        match !best with
        | None -> best := Some (candidate, g, c, edges)
        | Some (_, _, bc, _) -> if c < bc then best := Some (candidate, g, c, edges)
      end
    done;
    match !best with
    | Some (candidate, g, c, edges) when c < !current_cost ->
      hubs.(candidate) <- true;
      inter_edges := edges;
      current := g;
      current_cost := c;
      improved := true
    | _ -> ()
  done;
  (!current, !current_cost)

(* The hub of the best single-hub star: its max-degree node. *)
let star_hub star =
  let n = Graph.node_count star in
  let best = ref 0 in
  for v = 1 to n - 1 do
    if Graph.degree star v > Graph.degree star !best then best := v
  done;
  !best

let run_complete params ctx =
  let (star, star_cost) = best_star params ctx in
  let wire hubs _edges _candidate =
    let g = build_clique_style ctx hubs in
    (* Clique wiring is recomputed wholesale; edge list unused downstream. *)
    (g, eval_full params ctx g, [])
  in
  let (g, c) = drive params ctx ~initial_hub:(star_hub star) ~wire in
  if c <= star_cost then (g, c) else (star, star_cost)

let run_mst params ctx =
  let (star, star_cost) = best_star params ctx in
  let wire hubs _edges _candidate =
    let g = build_mst_style ctx hubs in
    (g, eval_full params ctx g, [])
  in
  let (g, c) = drive params ctx ~initial_hub:(star_hub star) ~wire in
  if c <= star_cost then (g, c) else (star, star_cost)

let run_greedy_attachment params ctx =
  let (star, star_cost) = best_star params ctx in
  let wire hubs edges candidate =
    let (edges', c) = greedy_attach params ctx hubs edges candidate in
    (build_with_edges ctx hubs edges', c, edges')
  in
  let (g, c) = drive params ctx ~initial_hub:(star_hub star) ~wire in
  if c <= star_cost then (g, c) else (star, star_cost)

let run_random_greedy ~permutations params ctx rng =
  let n = Context.n ctx in
  let (star, star_cost) = best_star params ctx in
  let initial_hub = star_hub star in
  let best_overall = ref (star, star_cost) in
  for _ = 1 to max 1 permutations do
    let hubs = Array.make n false in
    hubs.(initial_hub) <- true;
    let inter_edges = ref [] in
    let cost = ref (eval_full params ctx (build_with_edges ctx hubs !inter_edges)) in
    let order = Dist.permutation rng n in
    Array.iter
      (fun candidate ->
        if not hubs.(candidate) then begin
          hubs.(candidate) <- true;
          let (edges', c) = greedy_attach params ctx hubs !inter_edges candidate in
          if c < !cost then begin
            inter_edges := edges';
            cost := c
          end
          else hubs.(candidate) <- false
        end)
      order;
    let g = build_with_edges ctx hubs !inter_edges in
    let c = eval_full params ctx g in
    if c < snd !best_overall then best_overall := (g, c)
  done;
  !best_overall

let run alg params ctx rng =
  if Context.n ctx < 2 then invalid_arg "Heuristics.run: need at least 2 PoPs";
  match alg with
  | Complete -> run_complete params ctx
  | Mst_hubs -> run_mst params ctx
  | Greedy_attachment -> run_greedy_attachment params ctx
  | Random_greedy { permutations } -> run_random_greedy ~permutations params ctx rng

let seed_set ?(permutations = 10) params ctx rng =
  let (star, _) = best_star params ctx in
  star
  :: List.map (fun alg -> fst (run alg params ctx rng)) (all ~permutations)
