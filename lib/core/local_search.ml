module Graph = Cold_graph.Graph
module Prng = Cold_prng.Prng
module Dist = Cold_prng.Dist
module Context = Cold_context.Context
module Incremental = Cold_net.Incremental

type settings = {
  iterations : int;
  initial_temperature : float;
  cooling : float;
  node_move_prob : float;
}

type result = {
  best : Graph.t;
  best_cost : float;
  accepted : int;
  evaluations : int;
}

let default_settings =
  {
    iterations = 4000;
    initial_temperature = 0.03;
    (* ~1000x decay over the run: cooling^iterations = 1e-3. *)
    cooling = exp (log 1e-3 /. 4000.0);
    node_move_prob = 0.2;
  }

let hill_climb_settings = { default_settings with initial_temperature = 0.0 }

(* Propose a neighbour of [g], built in the caller-owned [into] buffer:
   toggle one random pair, or turn a random hub into a leaf. Repairs
   connectivity. Writing into a reused buffer (Graph.copy_into) instead of
   Graph.copy saves an n²-byte allocation per iteration — the proposal
   loop's entire allocation profile at large n — and changes no byte of any
   candidate. Callers must copy a candidate they intend to retain. *)
let propose ?locality ctx ~into g rng ~node_move_prob =
  Graph.copy_into ~src:g ~dst:into;
  let candidate = into in
  if Dist.bernoulli rng ~p:node_move_prob then
    Operators.node_mutation ctx candidate rng
  else begin
    match locality with
    | Some k ->
      (* Locality mode: remove a uniform existing link or add a spatially
         local one, 50/50 — its own deterministic RNG trajectory. *)
      (if Dist.bernoulli rng ~p:0.5 then
         match Operators.random_existing_edge candidate rng with
         | Some (u, v) -> Graph.remove_edge candidate u v
         | None -> ()
       else
         match Operators.locality_absent_pair ctx candidate rng ~k with
         | Some (u, v) -> Graph.add_edge candidate u v
         | None -> ());
      ignore (Repair.repair ctx candidate)
    | None ->
      let n = Graph.node_count candidate in
      let rec pick () =
        let u = Prng.int rng n and v = Prng.int rng n in
        if u = v then pick () else (u, v)
      in
      let (u, v) = pick () in
      if Graph.mem_edge candidate u v then Graph.remove_edge candidate u v
      else Graph.add_edge candidate u v;
      ignore (Repair.repair ctx candidate)
  end;
  candidate

let run ?(incremental = true) ?repair ?initial ?locality settings params ctx rng =
  if settings.iterations < 0 then invalid_arg "Local_search.run: negative iterations";
  if settings.cooling <= 0.0 || settings.cooling > 1.0 then
    invalid_arg "Local_search.run: cooling must be in (0, 1]";
  let n = Context.n ctx in
  if n < 2 then invalid_arg "Local_search.run: need at least 2 PoPs";
  let start =
    match initial with
    | Some g ->
      if Graph.node_count g <> n then
        invalid_arg "Local_search.run: initial topology size mismatch";
      Graph.copy g
    | None ->
      Cold_graph.Mst.mst_graph ~n ~weight:(fun u v -> Context.distance ctx u v)
  in
  let evaluations = ref 0 in
  let accepted = ref 0 in
  if incremental then begin
    (* Propose-on-state: the single-trajectory annealer is the ideal client
       of the incremental engine — each candidate differs from the current
       state by one or two edge flips (plus whatever repair touched), so
       only the affected shortest-path trees are recomputed. Accept commits
       the flips; reject rolls them back. Costs, and therefore the whole
       accept/reject trajectory, are bit-identical to the full-evaluation
       loop below. *)
    let st = Cost.state ?repair ctx start in
    let evaluate_st () =
      incr evaluations;
      Cost.evaluate_state params ctx st
    in
    (* One scratch graph hosts every proposal; retarget transfers its edge
       flips onto the persistent state, so the buffer is dead the moment the
       evaluation returns — except when the candidate is a new best, which
       takes the run's only per-improvement copy. *)
    let scratch = Graph.create n in
    let current_cost = ref (evaluate_st ()) in
    let best = ref start in
    let best_cost = ref !current_cost in
    let temperature = ref (settings.initial_temperature *. !current_cost) in
    for _ = 1 to settings.iterations do
      let candidate =
        propose ?locality ctx ~into:scratch (Incremental.graph st) rng
          ~node_move_prob:settings.node_move_prob
      in
      ignore (Incremental.retarget st candidate);
      let cost = evaluate_st () in
      let delta = cost -. !current_cost in
      let accept =
        delta <= 0.0
        || (!temperature > 0.0 && Prng.float rng < exp (-.delta /. !temperature))
      in
      if accept then begin
        Incremental.commit st;
        current_cost := cost;
        incr accepted;
        if cost < !best_cost then begin
          best := Graph.copy candidate;
          best_cost := cost
        end
      end
      else Incremental.rollback st;
      temperature := !temperature *. settings.cooling
    done;
    { best = !best; best_cost = !best_cost; accepted = !accepted;
      evaluations = !evaluations }
  end
  else begin
    (* Reusing the calling domain's routing workspace drops the ~n²-float
       load-matrix allocation per evaluation; Cost consumes the loads before
       returning, so aliasing is safe and every cost float is unchanged. *)
    let evaluate g =
      incr evaluations;
      Cost.evaluate ~workspace:(Cold_net.Routing.domain_workspace ~n) params
        ctx g
    in
    (* Double buffer: [current] and [scratch] swap on accept, so the whole
       trajectory allocates two graphs total (plus one copy per new best)
       instead of one per iteration. *)
    let current = ref start in
    let scratch = ref (Graph.create n) in
    let current_cost = ref (evaluate !current) in
    (* [best] must own its graph: [start]'s buffer enters the double-buffer
       rotation on the first accept and would be overwritten underneath an
       aliased best. *)
    let best = ref (Graph.copy !current) in
    let best_cost = ref !current_cost in
    let temperature = ref (settings.initial_temperature *. !current_cost) in
    for _ = 1 to settings.iterations do
      let candidate =
        propose ?locality ctx ~into:!scratch !current rng
          ~node_move_prob:settings.node_move_prob
      in
      let cost = evaluate candidate in
      let delta = cost -. !current_cost in
      let accept =
        delta <= 0.0
        || (!temperature > 0.0 && Prng.float rng < exp (-.delta /. !temperature))
      in
      if accept then begin
        let freed = !current in
        current := candidate;
        scratch := freed;
        current_cost := cost;
        incr accepted;
        if cost < !best_cost then begin
          best := Graph.copy candidate;
          best_cost := cost
        end
      end;
      temperature := !temperature *. settings.cooling
    done;
    { best = !best; best_cost = !best_cost; accepted = !accepted;
      evaluations = !evaluations }
  end
