(** Local-search optimizers: hill climbing and simulated annealing.

    The paper argues for a GA on flexibility grounds (§3.3) but notes network
    engineers optimize "using their own heuristics" — any good-solution
    search is admissible. These single-trajectory optimizers over the same
    move set (link toggles and leaf-ifications, with connectivity repair)
    serve as an ablation of that design choice: the harness compares their
    cost/time trade-off against the GA (bench: ablation_optimizer), and they
    make useful extra seeds for the initialised GA. *)

type settings = {
  iterations : int;  (** Proposed moves. Default 4000. *)
  initial_temperature : float;
      (** As a fraction of the starting cost; 0 gives pure hill climbing.
          Default 0.03. *)
  cooling : float;  (** Geometric factor applied each iteration. Default
                        chosen so temperature decays ~1000x over the run. *)
  node_move_prob : float;  (** Probability a proposal is a leaf-ification
                               rather than a link toggle. Default 0.2. *)
}

type result = {
  best : Cold_graph.Graph.t;
  best_cost : float;
  accepted : int;  (** Accepted proposals. *)
  evaluations : int;
}

val default_settings : settings

val hill_climb_settings : settings
(** [initial_temperature = 0]: strictly-improving moves only. *)

val run :
  ?incremental:bool ->
  ?repair:bool ->
  ?initial:Cold_graph.Graph.t ->
  ?locality:int ->
  settings ->
  Cost.params ->
  Cold_context.Context.t ->
  Cold_prng.Prng.t ->
  result
(** [run settings params ctx rng] anneals from [initial] (default: the
    Euclidean MST). The result is always connected; the returned best is the
    cheapest topology ever visited, not the final state.

    [incremental] (default [true]) evaluates proposals through the
    delta-aware engine ({!Cold_net.Incremental}): each candidate's edge
    flips are applied to persistent evaluation state, committed on accept
    and rolled back on reject, so only affected shortest-path trees are
    recomputed — or, with the default [repair:true], repaired in place by
    the dynamic SSSP engine ({!Cold_net.Incremental.create}).
    [repair:false] selects the mark-dirty/full-Dijkstra engine; the flag is
    meaningless without [incremental]. [false] evaluates every candidate
    from scratch with {!Cost.evaluate}. All paths are bit-identical — same
    proposals, same costs, same trajectory, same result — differing only in
    running time.

    [?locality:k] replaces the uniform link toggle with a 50/50 choice
    between removing a uniform existing link and adding one from a uniform
    node's [k] spatially nearest non-neighbours
    ({!Operators.locality_absent_pair}). Off by default; a deliberate,
    deterministic change of RNG trajectory when enabled. *)
