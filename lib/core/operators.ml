module Graph = Cold_graph.Graph
module Prng = Cold_prng.Prng
module Dist = Cold_prng.Dist
module Context = Cold_context.Context

let inverse_cost_weights pop =
  let w =
    Array.map
      (fun (_, c) -> if Float.is_finite c && c > 0.0 then 1.0 /. c else 0.0)
      pop
  in
  (* A custom objective can render a whole pool infeasible (e.g. frozen
     legacy links): fall back to uniform choice rather than failing. *)
  if Array.for_all (fun x -> Float.equal x 0.0) w then Array.map (fun _ -> 1.0) w else w

let select_inverse_cost pop rng =
  if Array.length pop = 0 then invalid_arg "Operators.select_inverse_cost: empty";
  Dist.choose_weighted rng (inverse_cost_weights pop)

let tournament ~pool ~winners pop rng =
  if pool < winners || winners < 1 then invalid_arg "Operators.tournament";
  let n = Array.length pop in
  if n = 0 then invalid_arg "Operators.tournament: empty population";
  let picks = Array.init pool (fun _ -> pop.(Prng.int rng n)) in
  Array.sort (fun (_, a) (_, b) -> Float.compare a b) picks;
  Array.sub picks 0 winners

let crossover ctx ~parents rng =
  if Array.length parents = 0 then invalid_arg "Operators.crossover: no parents";
  let weights = inverse_cost_weights parents in
  let n = Graph.node_count (fst parents.(0)) in
  let child = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let (parent, _) = parents.(Dist.choose_weighted rng weights) in
      if Graph.mem_edge parent u v then Graph.add_edge child u v
    done
  done;
  ignore (Repair.repair ctx child);
  child

let random_existing_edge g rng =
  let m = Graph.edge_count g in
  if m = 0 then None
  else
    (* Indexed lookup at the same lexicographic rank the old full edge scan
       selected, so every RNG trajectory is preserved. *)
    Some (Graph.nth_edge g (Prng.int rng m))

let random_absent_pair g rng =
  let n = Graph.node_count g in
  let total = n * (n - 1) / 2 in
  let absent = total - Graph.edge_count g in
  if absent = 0 then None
  else if 2 * absent >= total then begin
    (* Sparse regime (synthesis topologies live here): rejection sampling
       over uniform pairs succeeds in ~2 draws. This branch is verbatim the
       historical sampler, so every established RNG trajectory — and every
       golden output downstream of one — is preserved. *)
    let rec draw attempts =
      if attempts > 64 * total then None
      else begin
        let u = Prng.int rng n and v = Prng.int rng n in
        if u <> v && not (Graph.mem_edge g u v) then Some (min u v, max u v)
        else draw (attempts + 1)
      end
    in
    draw 0
  end
  else begin
    (* Dense regime: rejection degenerates (near-clique graphs used to spin
       for up to 64·C(n,2) draws — O(n²) RNG pulls per addition). A short
       burst keeps the common case cheap, then one uniform rank indexes
       straight into the r-th absent pair — O(n) via the forward-degree
       index, exact uniform distribution, never fails. *)
    let rec draw attempts =
      if attempts >= 64 then Some (Graph.nth_absent_pair g (Prng.int rng absent))
      else begin
        let u = Prng.int rng n and v = Prng.int rng n in
        if u <> v && not (Graph.mem_edge g u v) then Some (min u v, max u v)
        else draw (attempts + 1)
      end
    in
    draw 0
  end

(* Locality-biased addition: a uniform endpoint, then a uniform pick among
   its [k] spatially nearest non-neighbours. Saturated endpoints (all k
   nearest already linked, or full row) are redrawn a bounded number of
   times before falling back to the global sampler, so the draw fails only
   when the graph is complete. A distinct RNG trajectory from the global
   sampler by design — callers opt in via [?locality]. *)
let locality_absent_pair ctx g rng ~k =
  if k < 1 then invalid_arg "Operators.locality_absent_pair: k must be >= 1";
  let n = Graph.node_count g in
  let spatial = Context.spatial ctx in
  let rec draw attempts =
    if attempts >= 32 then random_absent_pair g rng
    else begin
      let u = Prng.int rng n in
      let cand =
        Cold_geom.Spatial.k_nearest ~except:(fun v -> Graph.mem_edge g u v)
          spatial u ~k
      in
      let len = Array.length cand in
      if len = 0 then draw (attempts + 1)
      else begin
        let v = cand.(Prng.int rng len) in
        Some (min u v, max u v)
      end
    end
  in
  draw 0

(* Locality-biased random topology: each node flips a coin per spatial
   neighbour instead of per possible pair, so seeding is O(n·k) instead of
   O(n²) and the raw graph is born with geographically short links — the
   structure cheap solutions actually have. Repaired to connectivity like
   its Erdős–Rényi counterpart. *)
let locality_random_graph ctx ~k ~p rng =
  if k < 1 then invalid_arg "Operators.locality_random_graph: k must be >= 1";
  let n = Context.n ctx in
  let spatial = Context.spatial ctx in
  let g = Graph.create n in
  for u = 0 to n - 1 do
    let cand = Cold_geom.Spatial.k_nearest spatial u ~k in
    Array.iter (fun v -> if Dist.bernoulli rng ~p then Graph.add_edge g u v) cand
  done;
  ignore (Repair.repair ctx g);
  g

let link_mutation ?locality ctx g rng =
  let removals = Dist.geometric rng ~p:0.5 in
  let additions = Dist.geometric rng ~p:0.5 in
  for _ = 1 to removals do
    match random_existing_edge g rng with
    | Some (u, v) -> Graph.remove_edge g u v
    | None -> ()
  done;
  (* [?locality] only redirects where ADDED links come from (removals stay
     uniform): absent pairs between distant PoPs are overwhelmingly the
     expensive ones, so the spatial bias concentrates proposals where
     acceptance is plausible. [None] is byte-for-byte the historical
     trajectory. *)
  for _ = 1 to additions do
    let pair =
      match locality with
      | Some k -> locality_absent_pair ctx g rng ~k
      | None -> random_absent_pair g rng
    in
    match pair with
    | Some (u, v) -> Graph.add_edge g u v
    | None -> ()
  done;
  ignore (Repair.repair ctx g)

let node_mutation ctx g rng =
  let non_leaves = Array.of_list (Graph.core_nodes g) in
  let k = Array.length non_leaves in
  if k > 0 then begin
    let v = non_leaves.(Prng.int rng k) in
    Graph.remove_all_edges_of g v;
    (* Closest non-leaf node other than v; degrees shift after detaching, so
       use the pre-mutation core set. *)
    let best = ref None in
    Array.iter
      (fun u ->
        if u <> v then
          match !best with
          | None -> best := Some u
          | Some b ->
            if Context.distance ctx v u < Context.distance ctx v b then
              best := Some u)
      non_leaves;
    (match !best with
    | Some u -> Graph.add_edge g v u
    | None ->
      (* v was the only hub (pure star): reattach to the nearest node. *)
      (match Cold_geom.Distmat.nearest ctx.Context.dist v ~except:(fun _ -> false) with
      | Some u -> Graph.add_edge g v u
      | None -> ()));
    ignore (Repair.repair ctx g)
  end
