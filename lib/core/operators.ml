module Graph = Cold_graph.Graph
module Prng = Cold_prng.Prng
module Dist = Cold_prng.Dist
module Context = Cold_context.Context

let inverse_cost_weights pop =
  let w =
    Array.map
      (fun (_, c) -> if Float.is_finite c && c > 0.0 then 1.0 /. c else 0.0)
      pop
  in
  (* A custom objective can render a whole pool infeasible (e.g. frozen
     legacy links): fall back to uniform choice rather than failing. *)
  if Array.for_all (fun x -> Float.equal x 0.0) w then Array.map (fun _ -> 1.0) w else w

let select_inverse_cost pop rng =
  if Array.length pop = 0 then invalid_arg "Operators.select_inverse_cost: empty";
  Dist.choose_weighted rng (inverse_cost_weights pop)

let tournament ~pool ~winners pop rng =
  if pool < winners || winners < 1 then invalid_arg "Operators.tournament";
  let n = Array.length pop in
  if n = 0 then invalid_arg "Operators.tournament: empty population";
  let picks = Array.init pool (fun _ -> pop.(Prng.int rng n)) in
  Array.sort (fun (_, a) (_, b) -> Float.compare a b) picks;
  Array.sub picks 0 winners

let crossover ctx ~parents rng =
  if Array.length parents = 0 then invalid_arg "Operators.crossover: no parents";
  let weights = inverse_cost_weights parents in
  let n = Graph.node_count (fst parents.(0)) in
  let child = Graph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let (parent, _) = parents.(Dist.choose_weighted rng weights) in
      if Graph.mem_edge parent u v then Graph.add_edge child u v
    done
  done;
  ignore (Repair.repair ctx child);
  child

let random_existing_edge g rng =
  let m = Graph.edge_count g in
  if m = 0 then None
  else
    (* Indexed lookup at the same lexicographic rank the old full edge scan
       selected, so every RNG trajectory is preserved. *)
    Some (Graph.nth_edge g (Prng.int rng m))

let random_absent_pair g rng =
  let n = Graph.node_count g in
  let total = n * (n - 1) / 2 in
  let absent = total - Graph.edge_count g in
  if absent = 0 then None
  else begin
    (* Rejection sampling: absent pairs are usually the vast majority. *)
    let rec draw attempts =
      if attempts > 64 * total then None
      else begin
        let u = Prng.int rng n and v = Prng.int rng n in
        if u <> v && not (Graph.mem_edge g u v) then Some (min u v, max u v)
        else draw (attempts + 1)
      end
    in
    draw 0
  end

let link_mutation ctx g rng =
  let removals = Dist.geometric rng ~p:0.5 in
  let additions = Dist.geometric rng ~p:0.5 in
  for _ = 1 to removals do
    match random_existing_edge g rng with
    | Some (u, v) -> Graph.remove_edge g u v
    | None -> ()
  done;
  for _ = 1 to additions do
    match random_absent_pair g rng with
    | Some (u, v) -> Graph.add_edge g u v
    | None -> ()
  done;
  ignore (Repair.repair ctx g)

let node_mutation ctx g rng =
  let non_leaves = Array.of_list (Graph.core_nodes g) in
  let k = Array.length non_leaves in
  if k > 0 then begin
    let v = non_leaves.(Prng.int rng k) in
    Graph.remove_all_edges_of g v;
    (* Closest non-leaf node other than v; degrees shift after detaching, so
       use the pre-mutation core set. *)
    let best = ref None in
    Array.iter
      (fun u ->
        if u <> v then
          match !best with
          | None -> best := Some u
          | Some b ->
            if Context.distance ctx v u < Context.distance ctx v b then
              best := Some u)
      non_leaves;
    (match !best with
    | Some u -> Graph.add_edge g v u
    | None ->
      (* v was the only hub (pure star): reattach to the nearest node. *)
      (match Cold_geom.Distmat.nearest ctx.Context.dist v ~except:(fun _ -> false) with
      | Some u -> Graph.add_edge g v u
      | None -> ()));
    ignore (Repair.repair ctx g)
  end
