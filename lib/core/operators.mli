(** Genetic operators on topology chromosomes (§4.1.1–4.1.2).

    A chromosome is an adjacency matrix ({!Cold_graph.Graph.t}). All
    operators return {e connected} children: any child disconnected by
    recombination is passed through {!Repair}. *)

val crossover :
  Cold_context.Context.t ->
  parents:(Cold_graph.Graph.t * float) array ->
  Cold_prng.Prng.t ->
  Cold_graph.Graph.t
(** [crossover ctx ~parents g] builds a child: for each of the C(n,2)
    possible links, one parent is drawn with probability inversely
    proportional to its cost and the link's presence is copied from it
    (§4.1.1). Parents must be non-empty with positive finite costs. The
    child is repaired to connectivity. *)

val link_mutation :
  ?locality:int ->
  Cold_context.Context.t -> Cold_graph.Graph.t -> Cold_prng.Prng.t -> unit
(** [link_mutation ctx g rng] removes [m+] random existing links and adds
    [m−] random absent links, where m+ and m− are geometric(0.5) — "an
    average of two link changes each time" (§4.1.2) — then repairs.

    [?locality:k] draws each added link from a uniform endpoint's [k]
    spatially nearest non-neighbours instead of from all absent pairs
    (removals are unchanged). A different — still deterministic — RNG
    trajectory; omitting it reproduces the historical stream exactly. *)

val random_existing_edge :
  Cold_graph.Graph.t -> Cold_prng.Prng.t -> (int * int) option
(** A uniform existing link [(u, v)], [u < v], via indexed rank lookup;
    [None] iff the graph has no links. *)

val random_absent_pair :
  Cold_graph.Graph.t -> Cold_prng.Prng.t -> (int * int) option
(** A uniform absent pair [(u, v)], [u < v]; [None] iff the graph is
    complete. Sparse graphs use rejection sampling (the historical RNG
    trajectory); dense graphs (< half the pairs absent) fall back after a
    bounded burst to an exact rank-indexed draw, so near-clique graphs no
    longer cost O(n²) RNG pulls per addition. *)

val locality_absent_pair :
  Cold_context.Context.t ->
  Cold_graph.Graph.t ->
  Cold_prng.Prng.t ->
  k:int ->
  (int * int) option
(** A locality-biased absent pair: a uniform endpoint, then a uniform pick
    among its [k] spatially nearest non-neighbours; bounded retries over
    saturated endpoints, global fallback after that. [None] iff the graph
    is complete. Raises [Invalid_argument] if [k < 1]. *)

val locality_random_graph :
  Cold_context.Context.t -> k:int -> p:float -> Cold_prng.Prng.t -> Cold_graph.Graph.t
(** A connected random topology built by flipping a [p]-coin per (node,
    spatial-neighbour) pair — O(n·k) work, geographically short raw links —
    then repairing. The locality-mode counterpart of the GA's Erdős–Rényi
    initial topologies. Raises [Invalid_argument] if [k < 1]. *)

val node_mutation :
  Cold_context.Context.t -> Cold_graph.Graph.t -> Cold_prng.Prng.t -> unit
(** [node_mutation ctx g rng] picks a non-leaf node uniformly at random and
    turns it into a leaf: all its links are removed and a single link is
    added to the closest remaining non-leaf node (§4.1.2), then repairs.
    No-op on graphs with no non-leaf node. *)

val select_inverse_cost :
  (Cold_graph.Graph.t * float) array -> Cold_prng.Prng.t -> int
(** [select_inverse_cost pop rng] draws an index with probability
    proportional to 1/cost (infeasible members get weight 0; if every member
    is infeasible the draw is uniform). Raises [Invalid_argument] on an
    empty population. *)

val tournament :
  pool:int ->
  winners:int ->
  (Cold_graph.Graph.t * float) array ->
  Cold_prng.Prng.t ->
  (Cold_graph.Graph.t * float) array
(** [tournament ~pool ~winners pop rng] picks [pool] members uniformly at
    random (b in the paper, with replacement) and returns the [winners]
    cheapest of them (a in the paper) — the parent-selection rule of
    §4.1.1. *)
