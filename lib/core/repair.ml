module Graph = Cold_graph.Graph
module Mst = Cold_graph.Mst
module Traversal = Cold_graph.Traversal
module Robustness = Cold_graph.Robustness
module Context = Cold_context.Context

let repair ctx g =
  if Graph.node_count g <> Context.n ctx then
    invalid_arg "Repair.repair: graph size does not match context";
  let weight u v = Context.distance ctx u v in
  let added = Mst.spanning_connector g ~weight in
  List.iter (fun (u, v) -> Graph.add_edge g u v) added;
  List.length added

let is_feasible ctx g =
  Graph.node_count g = Context.n ctx && Traversal.is_connected g

(* Survivable-design repair: connect, then kill bridges one at a time. Each
   round takes the lexicographically first remaining bridge, splits the graph
   along its cut, and adds the geometrically cheapest absent pair crossing
   the cut (ties to the lexicographically smallest pair). The new edge closes
   a cycle through the bridge, so the bridge count strictly decreases and the
   loop terminates; adding edges never creates bridges, so earlier repairs
   are never undone. No randomness anywhere: the result is a pure function of
   the (context, topology) pair. *)
let two_edge_connect ctx g =
  if Graph.node_count g <> Context.n ctx then
    invalid_arg "Repair.two_edge_connect: graph size does not match context";
  let n = Graph.node_count g in
  let added = ref (repair ctx g) in
  (* n <= 2 cannot be made bridge-free in a simple graph: leave connected. *)
  if n > 2 then begin
    let weight u v = Context.distance ctx u v in
    let rec kill () =
      match Robustness.bridges g with
      | [] -> ()
      | (bu, bv) :: _ ->
        Graph.remove_edge g bu bv;
        let (comp, _) = Traversal.connected_components g in
        Graph.add_edge g bu bv;
        (* Every crossing pair except the bridge itself is absent (any other
           present crossing edge would contradict bridge-ness), and for
           n >= 3 at least one exists. *)
        let best = ref None in
        for u = 0 to n - 1 do
          for v = u + 1 to n - 1 do
            if comp.(u) <> comp.(v) && not (Graph.mem_edge g u v) then begin
              let w = weight u v in
              match !best with
              | Some (bw, _, _) when not (w < bw) -> ()
              | _ -> best := Some (w, u, v)
            end
          done
        done;
        (match !best with
        | Some (_, u, v) ->
          Graph.add_edge g u v;
          incr added;
          kill ()
        | None -> ())
    in
    kill ()
  end;
  !added
