(** Connectivity repair (§4.1.3).

    Crossover and mutation can disconnect a candidate. COLD then finds all
    connected components and the shortest link between each pair of
    components, and adds a minimum spanning tree (in physical link distance)
    over the components. The repaired graph is always connected. *)

val repair : Cold_context.Context.t -> Cold_graph.Graph.t -> int
(** [repair ctx g] connects [g] in place; returns the number of links added
    (0 if already connected). *)

val is_feasible : Cold_context.Context.t -> Cold_graph.Graph.t -> bool
(** [is_feasible ctx g]: connected and of matching size. *)

val two_edge_connect : Cold_context.Context.t -> Cold_graph.Graph.t -> int
(** [two_edge_connect ctx g] lifts [g], in place, to a 2-edge-connected
    topology — one that survives any single link failure: first {!repair}
    connects it, then while a bridge remains the geometrically cheapest
    absent link crossing the lexicographically first bridge's cut is added
    (ties broken to the lexicographically smallest pair). Returns the total
    number of links added. Fully deterministic — a pure function of the
    (context, topology) pair, consuming no randomness — so the greedy
    additions are reproducible bit for bit.

    Graphs with at most 2 nodes cannot be 2-edge-connected as simple
    graphs; they are left merely connected. *)
