module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Network = Cold_net.Network
module Capacity = Cold_net.Capacity

type config = {
  params : Cost.params;
  ga : Ga.settings;
  seed_with_heuristics : bool;
  heuristic_permutations : int;
  capacity : Capacity.policy;
  domains : int;
  survivable : bool;
}

let default_config ?(params = Cost.params ()) () =
  {
    params;
    ga = Ga.default_settings;
    seed_with_heuristics = true;
    heuristic_permutations = 10;
    capacity = Capacity.default;
    domains = 1;
    survivable = false;
  }

let design_ga cfg ctx rng =
  let seeds =
    if cfg.seed_with_heuristics then
      Heuristics.seed_set ~permutations:cfg.heuristic_permutations cfg.params
        ctx rng
    else []
  in
  Ga.run ~domains:cfg.domains ~seeds ~survivable:cfg.survivable cfg.ga
    cfg.params ctx rng

let design cfg ctx rng =
  let result = design_ga cfg ctx rng in
  Network.build ~policy:cfg.capacity ctx result.Ga.best

let synthesize cfg spec ~seed =
  let rng = Prng.create seed in
  let ctx = Context.generate spec rng in
  design cfg ctx rng
