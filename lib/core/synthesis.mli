(** End-to-end COLD synthesis: context in, network out.

    This is the library's front door. It packages the full §3 pipeline:
    generate (or accept) a context, run the greedy heuristics, seed the GA
    with their solutions (the "initialised GA", the paper's recommended and
    uniformly best configuration), and return the designed {e network} with
    capacities and routing. *)

type config = {
  params : Cost.params;
  ga : Ga.settings;
  seed_with_heuristics : bool;
      (** Run the §5 greedy heuristics first and put their solutions in the
          initial GA population. Default [true] — the paper's initialised GA
          "outperforms all of its competitors over all parameter ranges
          tested". *)
  heuristic_permutations : int;  (** Random-greedy restarts. Default 10. *)
  capacity : Cold_net.Capacity.policy;
  domains : int;
      (** Domains evaluating GA candidates concurrently; [1] (the default)
          is sequential, [0] autodetects. Results are bit-identical at
          every setting — see {!Ga.run}. *)
  survivable : bool;
      (** Constrain the search to 2-edge-connected topologies — designs
          that survive any single link failure ({!Ga.run}'s [?survivable];
          every candidate passes through {!Repair.two_edge_connect}).
          Default [false]. *)
}

val default_config : ?params:Cost.params -> unit -> config
(** T = M = 100 GA, heuristic seeding on, capacity over-provisioning 2,
    sequential evaluation ([domains = 1]), survivability constraint off. *)

val design :
  config -> Cold_context.Context.t -> Cold_prng.Prng.t -> Cold_net.Network.t
(** [design cfg ctx rng] optimizes a topology for the given context and
    builds the final network (topology, capacities, routes). *)

val design_ga :
  config -> Cold_context.Context.t -> Cold_prng.Prng.t -> Ga.result
(** Like {!design} but exposing the raw GA result (final population, cost
    history) for analysis. *)

val synthesize :
  config -> Cold_context.Context.spec -> seed:int -> Cold_net.Network.t
(** [synthesize cfg spec ~seed] draws a fresh random context from [spec]
    (deterministically from [seed]) and designs a network for it — one
    complete COLD sample. *)
