module Graph = Cold_graph.Graph

type zero_k = float

type one_k = (int * int) list

type two_k = ((int * int) * int) list

type three_k = {
  wedges : ((int * int * int) * int) list;
  triangles : ((int * int * int) * int) list;
}

module Tbl = Cold_util.Tbl

(* Typed comparators: distribution entries are keyed by small int tuples, and
   canonical order must not depend on polymorphic compare. *)
let compare_pair (a1, b1) (a2, b2) =
  match Int.compare a1 a2 with 0 -> Int.compare b1 b2 | c -> c

let compare_triple (a1, b1, c1) (a2, b2, c2) =
  match Int.compare a1 a2 with
  | 0 -> (match Int.compare b1 b2 with 0 -> Int.compare c1 c2 | c -> c)
  | c -> c

let zero_k g =
  let n = Graph.node_count g in
  if n = 0 then 0.0 else 2.0 *. float_of_int (Graph.edge_count g) /. float_of_int n

let one_k g =
  let tbl = Hashtbl.create 16 in
  for v = 0 to Graph.node_count g - 1 do
    let d = Graph.degree g v in
    Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  done;
  Tbl.sorted_bindings ~cmp:Int.compare tbl

let two_k g =
  let tbl = Hashtbl.create 64 in
  Graph.iter_edges g (fun u v ->
      let du = Graph.degree g u and dv = Graph.degree g v in
      let key = (min du dv, max du dv) in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)));
  Tbl.sorted_bindings ~cmp:compare_pair tbl

let three_k g =
  let wedge_tbl = Hashtbl.create 256 in
  let tri_tbl = Hashtbl.create 256 in
  let bump tbl key =
    Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key))
  in
  let n = Graph.node_count g in
  (* Wedges: centre c with neighbour pair (a, b), a < b. *)
  for c = 0 to n - 1 do
    Graph.iter_neighbors g c (fun a ->
        Graph.iter_neighbors g c (fun b ->
            if a < b then begin
              let da = Graph.degree g a and db = Graph.degree g b in
              let dc = Graph.degree g c in
              let lo = min da db and hi = max da db in
              if Graph.mem_edge g a b then begin
                (* Count each triangle once: at its smallest vertex id. *)
                if c < a && c < b then begin
                  let s = List.sort Int.compare [ da; db; dc ] in
                  match s with
                  | [ x; y; z ] -> bump tri_tbl (x, y, z)
                  | _ -> assert false
                end
              end
              else bump wedge_tbl (lo, dc, hi)
            end))
  done;
  {
    wedges = Tbl.sorted_bindings ~cmp:compare_triple wedge_tbl;
    triangles = Tbl.sorted_bindings ~cmp:compare_triple tri_tbl;
  }

let equal_one_k (a : one_k) b = a = b

let equal_two_k (a : two_k) b = a = b

let equal_three_k (a : three_k) b = a.wedges = b.wedges && a.triangles = b.triangles

let two_k_entry_count g = List.length (two_k g)

let three_k_entry_count g =
  let t = three_k g in
  List.length t.wedges + List.length t.triangles
