module Graph = Cold_graph.Graph

(* Per-vertex invariant: (degree, sorted neighbour degrees, triangle count).
   Vertices can only map to vertices with equal invariants. *)
let compare_invariant (d1, nd1, t1) (d2, nd2, t2) =
  match Int.compare d1 d2 with
  | 0 -> (
    match List.compare Int.compare nd1 nd2 with
    | 0 -> Int.compare t1 t2
    | c -> c)
  | c -> c

let vertex_invariants g =
  let n = Graph.node_count g in
  Array.init n (fun v ->
      let nbr_degs =
        List.sort Int.compare (List.map (Graph.degree g) (Graph.neighbors g v))
      in
      let triangles = ref 0 in
      Graph.iter_neighbors g v (fun a ->
          Graph.iter_neighbors g v (fun b ->
              if a < b && Graph.mem_edge g a b then incr triangles));
      (Graph.degree g v, nbr_degs, !triangles))

let isomorphic g h =
  let n = Graph.node_count g in
  if n <> Graph.node_count h || Graph.edge_count g <> Graph.edge_count h then
    false
  else if n = 0 then true
  else begin
    let ig = vertex_invariants g and ih = vertex_invariants h in
    let sorted a = List.sort compare_invariant (Array.to_list a) in
    if sorted ig <> sorted ih then false
    else begin
      (* Backtracking: map g's vertices in order of rarest invariant first. *)
      let order =
        let counts = Hashtbl.create n in
        Array.iter
          (fun inv ->
            Hashtbl.replace counts inv
              (1 + Option.value ~default:0 (Hashtbl.find_opt counts inv)))
          ig;
        let vs = Array.init n (fun i -> i) in
        Array.sort
          (fun a b ->
            match Int.compare (Hashtbl.find counts ig.(a)) (Hashtbl.find counts ig.(b)) with
            | 0 -> Int.compare a b
            | c -> c)
          vs;
        vs
      in
      let mapping = Array.make n (-1) in
      let used = Array.make n false in
      let rec assign idx =
        if idx = n then true
        else begin
          let v = order.(idx) in
          let ok = ref false in
          let w = ref 0 in
          while (not !ok) && !w < n do
            let cand = !w in
            incr w;
            if (not used.(cand)) && ig.(v) = ih.(cand) then begin
              (* Consistency with already-mapped neighbours. *)
              let consistent = ref true in
              for j = 0 to idx - 1 do
                let u = order.(j) in
                if !consistent
                   && Graph.mem_edge g v u <> Graph.mem_edge h cand mapping.(u)
                then consistent := false
              done;
              if !consistent then begin
                mapping.(v) <- cand;
                used.(cand) <- true;
                if assign (idx + 1) then ok := true
                else begin
                  used.(cand) <- false;
                  mapping.(v) <- -1
                end
              end
            end
          done;
          !ok
        end
      in
      assign 0
    end
  end

let count_non_isomorphic graphs =
  let representatives = ref [] in
  List.iter
    (fun g ->
      if not (List.exists (fun r -> isomorphic g r) !representatives) then
        representatives := g :: !representatives)
    graphs;
  List.length !representatives
