module Graph = Cold_graph.Graph

(* All 24 permutations of [0;1;2;3]. *)
let perms4 =
  let rec insert x = function
    | [] -> [ [ x ] ]
    | y :: rest as l -> (x :: l) :: List.map (fun r -> y :: r) (insert x rest)
  in
  let rec permutations = function
    | [] -> [ [] ]
    | x :: rest -> List.concat_map (insert x) (permutations rest)
  in
  List.map Array.of_list (permutations [ 0; 1; 2; 3 ])

(* Canonical key of a 4-vertex induced subgraph: lexicographically smallest
   (edge-bitmask, degree-label tuple) over all vertex orderings. Edge bits
   are pairs (0,1),(0,2),(0,3),(1,2),(1,3),(2,3). *)
let canonical4 adj labels =
  let bit_pairs = [| (0, 1); (0, 2); (0, 3); (1, 2); (1, 3); (2, 3) |] in
  let best = ref None in
  List.iter
    (fun perm ->
      let mask = ref 0 in
      Array.iteri
        (fun i (a, b) ->
          if adj.(perm.(a)).(perm.(b)) then mask := !mask lor (1 lsl i))
        bit_pairs;
      let key =
        (!mask, labels.(perm.(0)), labels.(perm.(1)), labels.(perm.(2)), labels.(perm.(3)))
      in
      match !best with
      | None -> best := Some key
      | Some b -> if key < b then best := Some key)
    perms4;
  Option.get !best

let iter_connected_triples g f =
  let n = Graph.node_count g in
  (* Every connected triple contains a centre adjacent to the other two. To
     enumerate each triple exactly once, visit unordered triples {a,b,c} with
     a<b<c and check induced connectivity directly. O(n·deg²) via wedges
     would double-count triangles; direct check is simpler and still fast. *)
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      for c = b + 1 to n - 1 do
        let ab = Graph.mem_edge g a b
        and ac = Graph.mem_edge g a c
        and bc = Graph.mem_edge g b c in
        let edges = Bool.to_int ab + Bool.to_int ac + Bool.to_int bc in
        if edges >= 2 then f a b c ab ac bc
      done
    done
  done

let distinct2 g =
  let keys = Hashtbl.create 64 in
  Graph.iter_edges g (fun u v ->
      let du = Graph.degree g u and dv = Graph.degree g v in
      Hashtbl.replace keys (min du dv, max du dv) ());
  Hashtbl.length keys

let distinct3 g =
  let keys = Hashtbl.create 256 in
  iter_connected_triples g (fun a b c ab ac bc ->
      let da = Graph.degree g a and db = Graph.degree g b and dc = Graph.degree g c in
      let key =
        if ab && ac && bc then begin
          (* Triangle: sorted degree triple. *)
          match List.sort Int.compare [ da; db; dc ] with
          | [ x; y; z ] -> (1, x, y, z)
          | _ -> assert false
        end
        else begin
          (* Path: centre is the vertex on both edges. *)
          let centre, e1, e2 =
            if ab && ac then (da, db, dc)
            else if ab && bc then (db, da, dc)
            else (dc, da, db)
          in
          (0, centre, min e1 e2, max e1 e2)
        end
      in
      Hashtbl.replace keys key ());
  Hashtbl.length keys

let iter_connected_quads g f =
  let n = Graph.node_count g in
  let adj = Array.make_matrix 4 4 false in
  let labels = Array.make 4 0 in
  for a = 0 to n - 1 do
    for b = a + 1 to n - 1 do
      for c = b + 1 to n - 1 do
        for d = c + 1 to n - 1 do
          let vs = [| a; b; c; d |] in
          let edge_count = ref 0 in
          for i = 0 to 3 do
            for j = 0 to 3 do
              let e = i <> j && Graph.mem_edge g vs.(i) vs.(j) in
              adj.(i).(j) <- e;
              if i < j && e then incr edge_count
            done
          done;
          if !edge_count >= 3 then begin
            (* Connectivity of 4 vertices: BFS from 0 over the 4x4 matrix. *)
            let seen = Array.make 4 false in
            let rec dfs i =
              seen.(i) <- true;
              for j = 0 to 3 do
                if adj.(i).(j) && not seen.(j) then dfs j
              done
            in
            dfs 0;
            if Array.for_all Fun.id seen then begin
              for i = 0 to 3 do
                labels.(i) <- Graph.degree g vs.(i)
              done;
              f adj labels
            end
          end
        done
      done
    done
  done

let distinct4 g =
  let keys = Hashtbl.create 1024 in
  iter_connected_quads g (fun adj labels ->
      Hashtbl.replace keys (canonical4 adj labels) ());
  Hashtbl.length keys

let distinct g ~d =
  match d with
  | 2 -> distinct2 g
  | 3 -> distinct3 g
  | 4 -> distinct4 g
  | _ -> invalid_arg "Subgraph_census.distinct: d must be 2, 3 or 4"

let connected_subgraph_count g ~d =
  match d with
  | 2 -> Graph.edge_count g
  | 3 ->
    let c = ref 0 in
    iter_connected_triples g (fun _ _ _ _ _ _ -> incr c);
    !c
  | 4 ->
    let c = ref 0 in
    iter_connected_quads g (fun _ _ -> incr c);
    !c
  | _ -> invalid_arg "Subgraph_census.connected_subgraph_count: d must be 2, 3 or 4"
