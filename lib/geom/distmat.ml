type t = { n : int; data : float array; index : Spatial.t }
(* Upper triangle, row-major: entry (i, j) with i < j lives at
   [i*n - i*(i+1)/2 + (j - i - 1)]. [index] is the bucket grid over the same
   points: distance *lookups* stay O(1) array reads, nearest-neighbour
   *searches* go through the grid instead of scanning a whole row. *)

let index t i j =
  let i, j = if i < j then (i, j) else (j, i) in
  (i * t.n) - (i * (i + 1) / 2) + (j - i - 1)

let of_points pts =
  let n = Array.length pts in
  let data = Array.make (n * (n - 1) / 2) 0.0 in
  let t = { n; data; index = Spatial.create pts } in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      data.(index t i j) <- Point.distance pts.(i) pts.(j)
    done
  done;
  t

let size t = t.n

let spatial t = t.index

let get t i j =
  if i < 0 || j < 0 || i >= t.n || j >= t.n then invalid_arg "Distmat.get";
  if i = j then 0.0 else t.data.(index t i j)

let max_distance t = Array.fold_left Float.max 0.0 t.data

let nearest_scan t i ~except =
  if i < 0 || i >= t.n then invalid_arg "Distmat.nearest";
  let best = ref None in
  for j = 0 to t.n - 1 do
    if j <> i && not (except j) then
      match !best with
      | None -> best := Some j
      | Some b -> if get t i j < get t i b then best := Some j
  done;
  !best

(* The grid visits a superset of the scan's candidates pruned by geometry
   and applies the identical lowest-index tie-break, and Spatial computes
   distances with the same Point.distance expression of_points precomputed
   — so the two paths return the same index on every input (randomized
   equivalence sweep in test_geom.ml). *)
let nearest t i ~except = Spatial.nearest t.index i ~except
