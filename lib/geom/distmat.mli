(** Symmetric Euclidean distance matrices over point sets.

    Cost evaluation queries pairwise distances millions of times per GA run,
    so distances are precomputed once per context into a flat upper-triangular
    float array. *)

type t

val of_points : Point.t array -> t
(** [of_points pts] precomputes all pairwise distances. *)

val size : t -> int
(** Number of points. *)

val get : t -> int -> int -> float
(** [get d i j] is the distance between points [i] and [j]; [get d i i = 0].
    Raises [Invalid_argument] on out-of-range indices. *)

val max_distance : t -> float
(** Largest pairwise distance (0 for fewer than 2 points). *)

val spatial : t -> Spatial.t
(** The bucket-grid index built over the same points at {!of_points} time —
    the k-nearest / radius query engine backing locality-aware candidate
    generation. *)

val nearest : t -> int -> except:(int -> bool) -> int option
(** [nearest d i ~except] is the index [j <> i] minimizing [get d i j] among
    indices for which [except j] is [false]; ties break to the smaller index.
    [None] if no candidate exists. Answered through the spatial grid in
    O(cells touched) rather than an O(n) row scan; results are identical to
    {!nearest_scan}. *)

val nearest_scan : t -> int -> except:(int -> bool) -> int option
(** The O(n) linear-scan reference implementation of {!nearest}, kept for
    the grid/scan equivalence sweeps in the test suite. *)
