type t = {
  pts : Point.t array;
  nx : int;
  ny : int;
  x0 : float;
  y0 : float;
  cw : float; (* cell width; 0 when the x extent is degenerate (nx = 1) *)
  ch : float; (* cell height; 0 when the y extent is degenerate (ny = 1) *)
  start : int array; (* nx*ny + 1 bucket offsets into [cells] (CSR layout) *)
  cells : int array; (* point indices, ascending within each bucket *)
}

let size t = Array.length t.pts

let point t i =
  if i < 0 || i >= Array.length t.pts then invalid_arg "Spatial.point";
  t.pts.(i)

let cell_x t x =
  if t.cw <= 0.0 then 0
  else
    let c = int_of_float ((x -. t.x0) /. t.cw) in
    if c < 0 then 0 else if c >= t.nx then t.nx - 1 else c

let cell_y t y =
  if t.ch <= 0.0 then 0
  else
    let c = int_of_float ((y -. t.y0) /. t.ch) in
    if c < 0 then 0 else if c >= t.ny then t.ny - 1 else c

let create pts =
  let pts = Array.copy pts in
  let n = Array.length pts in
  let x0 = ref infinity and x1 = ref neg_infinity in
  let y0 = ref infinity and y1 = ref neg_infinity in
  Array.iter
    (fun p ->
      if p.Point.x < !x0 then x0 := p.Point.x;
      if p.Point.x > !x1 then x1 := p.Point.x;
      if p.Point.y < !y0 then y0 := p.Point.y;
      if p.Point.y > !y1 then y1 := p.Point.y)
    pts;
  let x0 = if n = 0 then 0.0 else !x0 and y0 = if n = 0 then 0.0 else !y0 in
  let x1 = if n = 0 then 0.0 else !x1 and y1 = if n = 0 then 0.0 else !y1 in
  (* ~1 point per cell on average: a √n × √n grid. Degenerate axes (all
     points sharing a coordinate) collapse to a single column/row so cell
     membership stays well-defined without dividing by zero. *)
  let axis = max 1 (int_of_float (sqrt (float_of_int (max n 1)))) in
  let nx = if x1 > x0 then axis else 1 in
  let ny = if y1 > y0 then axis else 1 in
  let cw = if nx > 1 then (x1 -. x0) /. float_of_int nx else 0.0 in
  let ch = if ny > 1 then (y1 -. y0) /. float_of_int ny else 0.0 in
  let t =
    { pts; nx; ny; x0; y0; cw; ch;
      start = Array.make ((nx * ny) + 1) 0; cells = Array.make n 0 }
  in
  let cell_of = Array.make n 0 in
  for i = 0 to n - 1 do
    let c = (cell_y t pts.(i).Point.y * nx) + cell_x t pts.(i).Point.x in
    cell_of.(i) <- c;
    t.start.(c + 1) <- t.start.(c + 1) + 1
  done;
  for c = 1 to nx * ny do
    t.start.(c) <- t.start.(c) + t.start.(c - 1)
  done;
  (* Counting sort, filled in ascending point order: each bucket's slice is
     automatically in ascending index order — the iteration order every
     query exposes. *)
  let cursor = Array.sub t.start 0 (nx * ny) in
  for i = 0 to n - 1 do
    let c = cell_of.(i) in
    t.cells.(cursor.(c)) <- i;
    cursor.(c) <- cursor.(c) + 1
  done;
  t

let iter_cell t cx cy f =
  if cx >= 0 && cx < t.nx && cy >= 0 && cy < t.ny then begin
    let c = (cy * t.nx) + cx in
    for k = t.start.(c) to t.start.(c + 1) - 1 do
      f t.cells.(k)
    done
  end

(* Points of every cell at Chebyshev ring distance exactly [r] from
   (cx, cy), rows ascending, columns ascending within a row — a fixed
   deterministic visit order. *)
let iter_ring t cx cy r f =
  if r = 0 then iter_cell t cx cy f
  else
    for yy = cy - r to cy + r do
      if yy - cy = -r || yy - cy = r then
        for xx = cx - r to cx + r do
          iter_cell t xx yy f
        done
      else begin
        iter_cell t (cx - r) yy f;
        iter_cell t (cx + r) yy f
      end
    done

(* Any point in a cell at ring distance rho >= 1 is at least (rho - 1)
   cells away from the query point along some axis with more than one
   column/row, hence at Euclidean distance >= (rho - 1) * dmin. Shrunk by
   one part in 10^9 so float rounding of the product can never prune a
   knife-edge candidate the exact real bound would admit. *)
let ring_lower_bound t rho =
  let dmin =
    match (t.nx > 1, t.ny > 1) with
    | true, true -> Float.min t.cw t.ch
    | true, false -> t.cw
    | false, true -> t.ch
    | false, false -> infinity
  in
  float_of_int (rho - 1) *. dmin *. (1.0 -. 1e-9)

let max_ring t cx cy =
  max (max cx (t.nx - 1 - cx)) (max cy (t.ny - 1 - cy))

let nearest t i ~except =
  let n = Array.length t.pts in
  if i < 0 || i >= n then invalid_arg "Spatial.nearest";
  let p = t.pts.(i) in
  let cx = cell_x t p.Point.x and cy = cell_y t p.Point.y in
  let best_d = ref infinity and best_j = ref (-1) in
  let consider j =
    if j <> i && not (except j) then begin
      let d = Point.distance p t.pts.(j) in
      if d < !best_d || (Float.equal d !best_d && j < !best_j) then begin
        best_d := d;
        best_j := j
      end
    end
  in
  let last = max_ring t cx cy in
  let r = ref 0 in
  let continue = ref true in
  while !continue && !r <= last do
    iter_ring t cx cy !r consider;
    if !best_j >= 0 && ring_lower_bound t (!r + 1) > !best_d then
      continue := false;
    incr r
  done;
  if !best_j < 0 then None else Some !best_j

let k_nearest ?(except = fun _ -> false) t i ~k =
  let n = Array.length t.pts in
  if i < 0 || i >= n then invalid_arg "Spatial.k_nearest";
  if k < 0 then invalid_arg "Spatial.k_nearest: negative k";
  if k = 0 then [||]
  else begin
    let p = t.pts.(i) in
    let cx = cell_x t p.Point.x and cy = cell_y t p.Point.y in
    let ds = Array.make k infinity in
    let js = Array.make k (-1) in
    let count = ref 0 in
    let better d j d' j' = d < d' || (Float.equal d d' && j < j') in
    let consider j =
      if j <> i && not (except j) then begin
        let d = Point.distance p t.pts.(j) in
        if !count < k || better d j ds.(k - 1) js.(k - 1) then begin
          (* Insertion sort by (distance, index): k is small and candidates
             arrive nearly sorted, so this beats a heap in practice. *)
          let pos = ref (min !count (k - 1)) in
          while !pos > 0 && better d j ds.(!pos - 1) js.(!pos - 1) do
            ds.(!pos) <- ds.(!pos - 1);
            js.(!pos) <- js.(!pos - 1);
            decr pos
          done;
          ds.(!pos) <- d;
          js.(!pos) <- j;
          if !count < k then incr count
        end
      end
    in
    let last = max_ring t cx cy in
    let r = ref 0 in
    let continue = ref true in
    while !continue && !r <= last do
      iter_ring t cx cy !r consider;
      if !count = k && ring_lower_bound t (!r + 1) > ds.(k - 1) then
        continue := false;
      incr r
    done;
    Array.sub js 0 !count
  end

let within t i ~radius =
  let n = Array.length t.pts in
  if i < 0 || i >= n then invalid_arg "Spatial.within";
  let p = t.pts.(i) in
  let cx = cell_x t p.Point.x and cy = cell_y t p.Point.y in
  let acc = ref [] in
  let consider j =
    if j <> i && Point.distance p t.pts.(j) <= radius then acc := j :: !acc
  in
  let last = max_ring t cx cy in
  let r = ref 0 in
  let continue = ref true in
  while !continue && !r <= last do
    iter_ring t cx cy !r consider;
    if ring_lower_bound t (!r + 1) > radius then continue := false;
    incr r
  done;
  List.sort Int.compare !acc
