(** Uniform bucket-grid index over a point set.

    The GA's candidate generators and the greedy seeding heuristics need
    nearest-neighbour answers millions of times per run; a linear scan makes
    each query O(n) and the whole hot loop O(n²). This index buckets the
    points of a fixed array into a √n × √n grid over their bounding box and
    answers nearest / k-nearest / radius queries by expanding rings of
    cells, so queries on geometrically spread inputs touch O(1) cells.

    {b Determinism.} Every answer is a pure function of the point array:
    cells are visited in a fixed row-major ring order, candidates within a
    cell in ascending index order, and all ties break to the lowest point
    index. Distances are computed with {!Point.distance} — the same
    expression {!Distmat.of_points} precomputes — so grid answers are
    bit-comparable with distance-matrix answers.

    Degenerate inputs (all points co-located, collinear points, n ≤ 1)
    collapse to a 1-cell axis and are handled by ring exhaustion rather
    than special cases. *)

type t

val create : Point.t array -> t
(** [create pts] builds the index in O(n). The array is copied; later
    mutation of the argument does not affect the index. *)

val size : t -> int
(** Number of indexed points. *)

val point : t -> int -> Point.t
(** [point t i] is the indexed copy of point [i]. Raises [Invalid_argument]
    on out-of-range indices. *)

val nearest : t -> int -> except:(int -> bool) -> int option
(** [nearest t i ~except] is the index [j <> i] minimizing
    [Point.distance (point t i) (point t j)] among indices with
    [except j = false]; ties break to the smallest [j]. [None] when no
    candidate qualifies. Same contract as {!Distmat.nearest}, verified
    equivalent by the test suite. *)

val k_nearest : ?except:(int -> bool) -> t -> int -> k:int -> int array
(** [k_nearest t i ~k] is up to [k] indices [j <> i] (fewer when the point
    set runs out), ascending by [(distance, index)] — the deterministic
    k-nearest-neighbour list. [except] filters candidates out entirely. *)

val within : t -> int -> radius:float -> int list
(** [within t i ~radius] is every index [j <> i] with
    [Point.distance (point t i) (point t j) <= radius], in ascending index
    order. *)
