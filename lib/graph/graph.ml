type t = {
  n : int;
  adj : Bytes.t; (* n*n bytes; adj[u*n+v] = '\001' iff edge present *)
  deg : int array;
  fwd : int array; (* fwd.(u) = #edges {u,v} with v > u: the rank index for nth_edge *)
  mutable m : int;
}

let check_vertex g v name =
  if v < 0 || v >= g.n then invalid_arg ("Graph." ^ name ^ ": vertex out of range")

let create n =
  if n < 0 then invalid_arg "Graph.create: negative size";
  {
    n;
    adj = Bytes.make (n * n) '\000';
    deg = Array.make n 0;
    fwd = Array.make n 0;
    m = 0;
  }

let node_count g = g.n

let edge_count g = g.m

let copy g =
  {
    n = g.n;
    adj = Bytes.copy g.adj;
    deg = Array.copy g.deg;
    fwd = Array.copy g.fwd;
    m = g.m;
  }

let copy_into ~src ~dst =
  if src.n <> dst.n then invalid_arg "Graph.copy_into: size mismatch";
  Bytes.blit src.adj 0 dst.adj 0 (src.n * src.n);
  Array.blit src.deg 0 dst.deg 0 src.n;
  Array.blit src.fwd 0 dst.fwd 0 src.n;
  dst.m <- src.m

let mem_edge g u v =
  check_vertex g u "mem_edge";
  check_vertex g v "mem_edge";
  u <> v && Bytes.unsafe_get g.adj ((u * g.n) + v) = '\001'

let add_edge g u v =
  check_vertex g u "add_edge";
  check_vertex g v "add_edge";
  if u = v then invalid_arg "Graph.add_edge: self-loop";
  if Bytes.unsafe_get g.adj ((u * g.n) + v) = '\000' then begin
    Bytes.unsafe_set g.adj ((u * g.n) + v) '\001';
    Bytes.unsafe_set g.adj ((v * g.n) + u) '\001';
    g.deg.(u) <- g.deg.(u) + 1;
    g.deg.(v) <- g.deg.(v) + 1;
    g.fwd.(min u v) <- g.fwd.(min u v) + 1;
    g.m <- g.m + 1
  end

let remove_edge g u v =
  check_vertex g u "remove_edge";
  check_vertex g v "remove_edge";
  if u <> v && Bytes.unsafe_get g.adj ((u * g.n) + v) = '\001' then begin
    Bytes.unsafe_set g.adj ((u * g.n) + v) '\000';
    Bytes.unsafe_set g.adj ((v * g.n) + u) '\000';
    g.deg.(u) <- g.deg.(u) - 1;
    g.deg.(v) <- g.deg.(v) - 1;
    g.fwd.(min u v) <- g.fwd.(min u v) - 1;
    g.m <- g.m - 1
  end

let complete n =
  let g = create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      add_edge g u v
    done
  done;
  g

let degree g v =
  check_vertex g v "degree";
  g.deg.(v)

let is_leaf g v = degree g v <= 1

let core_nodes g =
  let rec collect v acc =
    if v < 0 then acc
    else collect (v - 1) (if g.deg.(v) > 1 then v :: acc else acc)
  in
  collect (g.n - 1) []

let core_count g =
  let c = ref 0 in
  for v = 0 to g.n - 1 do
    if g.deg.(v) > 1 then incr c
  done;
  !c

let iter_neighbors g v f =
  check_vertex g v "iter_neighbors";
  let row = v * g.n in
  for u = 0 to g.n - 1 do
    if Bytes.unsafe_get g.adj (row + u) = '\001' then f u
  done

let fold_neighbors g v f init =
  check_vertex g v "fold_neighbors";
  let acc = ref init in
  iter_neighbors g v (fun u -> acc := f !acc u);
  !acc

let neighbors g v = List.rev (fold_neighbors g v (fun acc u -> u :: acc) [])

let iter_edges g f =
  for u = 0 to g.n - 1 do
    let row = u * g.n in
    for v = u + 1 to g.n - 1 do
      if Bytes.unsafe_get g.adj (row + v) = '\001' then f u v
    done
  done

let fold_edges g f init =
  let acc = ref init in
  iter_edges g (fun u v -> acc := f !acc u v);
  !acc

let edges g = List.rev (fold_edges g (fun acc u v -> (u, v) :: acc) [])

let nth_edge g k =
  if k < 0 || k >= g.m then invalid_arg "Graph.nth_edge: rank out of range";
  (* Walk the forward-degree index to the owning row, then scan that row's
     forward half for the residual rank. O(n) instead of the O(n^2) full
     edge scan, with no allocation. *)
  let u = ref 0 in
  let r = ref k in
  while !r >= g.fwd.(!u) do
    r := !r - g.fwd.(!u);
    incr u
  done;
  let row = !u * g.n in
  let v = ref !u in
  let remaining = ref (!r + 1) in
  while !remaining > 0 do
    incr v;
    if Bytes.unsafe_get g.adj (row + !v) = '\001' then decr remaining
  done;
  (!u, !v)

let nth_absent_pair g k =
  let absent = (g.n * (g.n - 1) / 2) - g.m in
  if k < 0 || k >= absent then
    invalid_arg "Graph.nth_absent_pair: rank out of range";
  (* Mirror of [nth_edge] over the complement: row u owns
     (n - 1 - u) - fwd.(u) absent forward slots. Walk the index to the
     owning row, then scan that row's forward half counting gaps. *)
  let u = ref 0 in
  let r = ref k in
  let row_absent u = g.n - 1 - u - g.fwd.(u) in
  while !r >= row_absent !u do
    r := !r - row_absent !u;
    incr u
  done;
  let row = !u * g.n in
  let v = ref !u in
  let remaining = ref (!r + 1) in
  while !remaining > 0 do
    incr v;
    if Bytes.unsafe_get g.adj (row + !v) = '\000' then decr remaining
  done;
  (!u, !v)

let edge_diff g h =
  if g.n <> h.n then invalid_arg "Graph.edge_diff: size mismatch";
  let removed = ref [] and added = ref [] in
  for u = g.n - 1 downto 0 do
    let row = u * g.n in
    for v = g.n - 1 downto u + 1 do
      let a = Bytes.unsafe_get g.adj (row + v) in
      let b = Bytes.unsafe_get h.adj (row + v) in
      if a <> b then
        if a = '\001' then removed := (u, v) :: !removed
        else added := (u, v) :: !added
    done
  done;
  (!removed, !added)

let of_edges n es =
  let g = create n in
  List.iter (fun (u, v) -> add_edge g u v) es;
  g

let degree_sequence g = Array.copy g.deg

let equal g h = g.n = h.n && g.m = h.m && Bytes.equal g.adj h.adj

let fingerprint g =
  (* FNV-1a over the adjacency bytes, seeded with n so that empty graphs of
     different sizes differ. The adjacency matrix is symmetric with a zero
     diagonal, so it is already a canonical encoding of the edge set. *)
  let fnv_prime = 0x100000001B3L in
  let h = ref 0xCBF29CE484222325L in
  let mix b =
    h := Int64.mul (Int64.logxor !h (Int64.of_int b)) fnv_prime
  in
  mix g.n;
  Bytes.iter (fun c -> mix (Char.code c)) g.adj;
  !h

let adjacency_arrays g =
  Array.init g.n (fun v ->
      let a = Array.make g.deg.(v) 0 in
      let k = ref 0 in
      let row = v * g.n in
      for u = 0 to g.n - 1 do
        if Bytes.unsafe_get g.adj (row + u) = '\001' then begin
          a.(!k) <- u;
          incr k
        end
      done;
      a)

let remove_all_edges_of g v =
  check_vertex g v "remove_all_edges_of";
  iter_neighbors g v (fun u -> remove_edge g u v)

module Csr = struct
  type graph = t

  type t = { offsets : int array; targets : int array }

  let of_graph ?reuse (g : graph) =
    let n = g.n in
    let m2 = 2 * g.m in
    let offsets, targets =
      match reuse with
      | Some c when Array.length c.offsets = n + 1 && Array.length c.targets >= m2
        ->
        (c.offsets, c.targets)
      | _ -> (Array.make (n + 1) 0, Array.make (max m2 1) 0)
    in
    let k = ref 0 in
    for v = 0 to n - 1 do
      offsets.(v) <- !k;
      let row = v * n in
      for u = 0 to n - 1 do
        if Bytes.unsafe_get g.adj (row + u) = '\001' then begin
          Array.unsafe_set targets !k u;
          incr k
        end
      done
    done;
    offsets.(n) <- !k;
    { offsets; targets }

  let node_count c = Array.length c.offsets - 1

  let degree c v =
    if v < 0 || v >= node_count c then invalid_arg "Graph.Csr.degree";
    c.offsets.(v + 1) - c.offsets.(v)

  let iter_neighbors c v f =
    if v < 0 || v >= node_count c then invalid_arg "Graph.Csr.iter_neighbors";
    for k = c.offsets.(v) to c.offsets.(v + 1) - 1 do
      f (Array.unsafe_get c.targets k)
    done

  let fold_neighbors c v f init =
    let acc = ref init in
    iter_neighbors c v (fun u -> acc := f !acc u);
    !acc
end

let pp fmt g =
  Format.fprintf fmt "n=%d m=%d edges=[" g.n g.m;
  let first = ref true in
  iter_edges g (fun u v ->
      if !first then first := false else Format.fprintf fmt "; ";
      Format.fprintf fmt "(%d,%d)" u v);
  Format.fprintf fmt "]"
