(** Undirected simple graphs on a fixed vertex set [0 .. n-1].

    This is the chromosome type of the COLD genetic algorithm (§4: "each
    candidate topology ... is stored as an n by n adjacency matrix") and the
    substrate for every topology statistic. The representation is a dense
    byte adjacency matrix plus a degree array: PoP-level networks are small
    (the paper: "it is rare to see a network with more than a 100 PoPs"), and
    dense adjacency gives O(1) membership, O(n) neighbour iteration and O(n²)
    copy — the operations the GA performs millions of times.

    Self-loops are forbidden; parallel edges cannot be represented. Mutation
    is in-place; use {!copy} when genetic operators must not alias. *)

type t

val create : int -> t
(** [create n] is the empty graph on [n] vertices. Raises [Invalid_argument]
    if [n < 0]. *)

val complete : int -> t
(** [complete n] is the clique K_n. *)

val copy : t -> t

val copy_into : src:t -> dst:t -> unit
(** [copy_into ~src ~dst] overwrites [dst] with [src]'s topology in place —
    the allocation-free alternative to {!copy} for optimizers that propose a
    mutant per iteration and can recycle one scratch graph instead of
    allocating n² bytes per evaluation. Raises [Invalid_argument] if the
    vertex counts differ. *)

val node_count : t -> int

val edge_count : t -> int

val mem_edge : t -> int -> int -> bool
(** [mem_edge g u v] is [true] iff the edge [{u,v}] is present.
    [mem_edge g u u] is [false]. Raises [Invalid_argument] on out-of-range
    vertices. *)

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] inserts [{u,v}]; no-op if present. Raises
    [Invalid_argument] if [u = v] or out of range. *)

val remove_edge : t -> int -> int -> unit
(** [remove_edge g u v] deletes [{u,v}]; no-op if absent. *)

val degree : t -> int -> int

val is_leaf : t -> int -> bool
(** [is_leaf g v] is [degree g v <= 1]: the paper's leaf PoPs have exactly
    one link, and isolated vertices also count as non-core. *)

val core_nodes : t -> int list
(** Vertices with degree > 1 — the paper's set N_C incurring the k3 hub
    cost (§3.2.2). Ascending order. *)

val core_count : t -> int

val iter_neighbors : t -> int -> (int -> unit) -> unit
(** [iter_neighbors g v f] applies [f] to each neighbour of [v] in ascending
    order. *)

val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a

val neighbors : t -> int -> int list
(** Ascending list of neighbours. *)

val iter_edges : t -> (int -> int -> unit) -> unit
(** [iter_edges g f] applies [f u v] once per edge with [u < v], in
    lexicographic order. *)

val fold_edges : t -> ('a -> int -> int -> 'a) -> 'a -> 'a

val edges : t -> (int * int) list
(** Lexicographically ordered [(u, v)] pairs with [u < v]. *)

val nth_edge : t -> int -> int * int
(** [nth_edge g k] is the [k]-th edge (0-based) in the lexicographic
    [(u, v)], [u < v] order of {!iter_edges} — the indexed lookup behind
    uniform random edge draws. A per-vertex forward-degree index finds the
    owning row directly, so the cost is O(n) (one index walk plus one row
    scan) rather than the O(n²) scan of enumerating all edges, and nothing
    is allocated. Raises [Invalid_argument] unless [0 <= k < edge_count]. *)

val nth_absent_pair : t -> int -> int * int
(** [nth_absent_pair g k] is the [k]-th {e absent} pair (0-based) in the
    lexicographic [(u, v)], [u < v] order over non-edges — the deterministic
    fallback behind uniform absent-pair draws on near-complete graphs, where
    rejection sampling degenerates. Same O(n) index walk as {!nth_edge},
    counting complement slots. Raises [Invalid_argument] unless
    [0 <= k < n*(n-1)/2 - edge_count]. *)

val edge_diff : t -> t -> (int * int) list * (int * int) list
(** [edge_diff g h] is [(removed, added)]: the edges of [g] absent from [h]
    and the edges of [h] absent from [g], each in lexicographic order —
    i.e. the operations turning [g] into [h]. Raises [Invalid_argument] if
    the vertex counts differ. O(n²) byte comparison. *)

val of_edges : int -> (int * int) list -> t
(** [of_edges n es] builds a graph on [n] vertices with the given edges.
    Duplicate edges collapse. Raises [Invalid_argument] on self-loops or
    out-of-range endpoints. *)

val degree_sequence : t -> int array
(** [degree_sequence g] is the per-vertex degree array (indexed by vertex,
    not sorted). *)

val equal : t -> t -> bool
(** Structural equality: same vertex count and same edge set. *)

val fingerprint : t -> int64
(** [fingerprint g] is a 64-bit FNV-1a hash of the vertex count and the
    adjacency matrix — a canonical fingerprint of the labelled topology:
    equal graphs always collide, unequal graphs almost never do. Callers
    needing certainty (e.g. fitness memoization) must confirm a match with
    {!equal}. O(n²). *)

val adjacency_arrays : t -> int array array
(** [adjacency_arrays g] materializes each vertex's neighbours as an array,
    ascending — the same order {!iter_neighbors} visits. One O(n²) scan
    buys O(deg) neighbour iteration for algorithms that sweep the graph
    many times (e.g. n-source Dijkstra); the arrays are a snapshot and do
    not track later mutation. *)

val remove_all_edges_of : t -> int -> unit
(** [remove_all_edges_of g v] detaches vertex [v] entirely (used by the
    node-mutation operator that turns a hub into a leaf, §4.1.2). *)

(** Flat CSR (compressed sparse row) adjacency snapshots.

    The dense byte matrix gives O(1) membership but O(n) neighbour
    iteration; at large n the read-only sweeps (n-source Dijkstra, BFS
    batteries, Brandes) spend all their time scanning mostly-empty rows.
    A CSR view packs every neighbour list into two flat int arrays —
    [targets.(offsets.(v) .. offsets.(v+1)-1)] are [v]'s neighbours in the
    {e same ascending order} {!iter_neighbors} visits, so any algorithm
    swapping a row scan for a CSR segment produces bit-identical output
    (randomized sweeps in test_graph.ml prove it).

    A view is a snapshot: it does not track later mutation of the source
    graph. Rebuild with [of_graph ?reuse] — one O(n²) scan, amortized over
    the n traversals that follow. *)
module Csr : sig
  type graph := t

  type t = { offsets : int array; targets : int array }
  (** [offsets] has n+1 entries; [targets] holds 2m neighbour ids. The
      record is exposed so hot loops can index the arrays directly.
      [targets] may be longer than 2m when a [reuse] buffer was larger —
      always bound iteration by [offsets], never by [Array.length]. *)

  val of_graph : ?reuse:t -> graph -> t
  (** [of_graph g] snapshots [g]'s adjacency. [reuse] recycles a previous
      view's arrays when they fit ([offsets] length n+1, [targets] capacity
      ≥ 2m) — the returned view then aliases them, so the old view is
      invalidated. *)

  val node_count : t -> int

  val degree : t -> int -> int

  val iter_neighbors : t -> int -> (int -> unit) -> unit
  (** Ascending neighbour order, identical to the dense row scan. *)

  val fold_neighbors : t -> int -> ('a -> int -> 'a) -> 'a -> 'a
end

val pp : Format.formatter -> t -> unit
(** Prints as [n=<n> m=<m> edges=[(u,v); …]]. *)
