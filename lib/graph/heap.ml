type t = {
  mutable prio : float array;
  mutable vert : int array;
  mutable len : int;
}

let create ~capacity =
  let capacity = max capacity 1 in
  { prio = Array.make capacity 0.0; vert = Array.make capacity 0; len = 0 }

let is_empty h = h.len = 0

let clear h = h.len <- 0

let size h = h.len

let less h i j =
  h.prio.(i) < h.prio.(j) || (h.prio.(i) = h.prio.(j) && h.vert.(i) < h.vert.(j))

let swap h i j =
  let p = h.prio.(i) and v = h.vert.(i) in
  h.prio.(i) <- h.prio.(j);
  h.vert.(i) <- h.vert.(j);
  h.prio.(j) <- p;
  h.vert.(j) <- v

let grow h =
  let cap = Array.length h.prio in
  let prio = Array.make (2 * cap) 0.0 and vert = Array.make (2 * cap) 0 in
  Array.blit h.prio 0 prio 0 h.len;
  Array.blit h.vert 0 vert 0 h.len;
  h.prio <- prio;
  h.vert <- vert

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less h i parent then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = if l < h.len && less h l i then l else i in
  let smallest = if r < h.len && less h r smallest then r else smallest in
  if smallest <> i then begin
    swap h i smallest;
    sift_down h smallest
  end

let push h ~priority v =
  if h.len = Array.length h.prio then grow h;
  h.prio.(h.len) <- priority;
  h.vert.(h.len) <- v;
  h.len <- h.len + 1;
  sift_up h (h.len - 1)

let pop_min h =
  if h.len = 0 then None
  else begin
    let p = h.prio.(0) and v = h.vert.(0) in
    h.len <- h.len - 1;
    if h.len > 0 then begin
      h.prio.(0) <- h.prio.(h.len);
      h.vert.(0) <- h.vert.(h.len);
      sift_down h 0
    end;
    Some (p, v)
  end

(* --- indexed variant ---------------------------------------------------------

   Same strict (priority, vertex-id) order as the lazy-deletion heap above,
   but with a vertex -> slot index so a better priority moves the existing
   entry instead of shadowing it. At most one live entry per vertex, so a
   consumer's accepted-pop sequence is exactly the lazy heap's: both yield
   each vertex once, at its minimal pushed priority, in ascending
   (priority, vertex) order. The repair pass in Cold_net.Incremental leans
   on that equivalence for bit-identity with Shortest_path.dijkstra. *)

module Indexed = struct
  type t = {
    prio : float array; (* slot -> priority *)
    vert : int array; (* slot -> vertex *)
    pos : int array; (* vertex -> slot, -1 when absent *)
    mutable len : int;
  }

  let create ~n =
    if n < 0 then invalid_arg "Heap.Indexed.create";
    {
      prio = Array.make (max n 1) 0.0;
      vert = Array.make (max n 1) 0;
      pos = Array.make (max n 1) (-1);
      len = 0;
    }

  let is_empty h = h.len = 0

  let size h = h.len

  let clear h =
    for i = 0 to h.len - 1 do
      h.pos.(h.vert.(i)) <- -1
    done;
    h.len <- 0

  let less h i j =
    h.prio.(i) < h.prio.(j)
    || (Float.equal h.prio.(i) h.prio.(j) && h.vert.(i) < h.vert.(j))

  let swap h i j =
    let p = h.prio.(i) and v = h.vert.(i) in
    h.prio.(i) <- h.prio.(j);
    h.vert.(i) <- h.vert.(j);
    h.prio.(j) <- p;
    h.vert.(j) <- v;
    h.pos.(h.vert.(i)) <- i;
    h.pos.(h.vert.(j)) <- j

  let rec sift_up h i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if less h i parent then begin
        swap h i parent;
        sift_up h parent
      end
    end

  let rec sift_down h i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = if l < h.len && less h l i then l else i in
    let smallest = if r < h.len && less h r smallest then r else smallest in
    if smallest <> i then begin
      swap h i smallest;
      sift_down h smallest
    end

  let decrease h ~priority v =
    let slot = h.pos.(v) in
    if slot < 0 then begin
      h.prio.(h.len) <- priority;
      h.vert.(h.len) <- v;
      h.pos.(v) <- h.len;
      h.len <- h.len + 1;
      sift_up h (h.len - 1)
    end
    else if priority < h.prio.(slot) then begin
      h.prio.(slot) <- priority;
      sift_up h slot
    end

  let pop_min h =
    if h.len = 0 then None
    else begin
      let p = h.prio.(0) and v = h.vert.(0) in
      h.pos.(v) <- -1;
      h.len <- h.len - 1;
      if h.len > 0 then begin
        h.prio.(0) <- h.prio.(h.len);
        h.vert.(0) <- h.vert.(h.len);
        h.pos.(h.vert.(0)) <- 0;
        sift_down h 0
      end;
      Some (p, v)
    end
end
