(** Binary min-heap keyed by float priorities, specialised for Dijkstra and
    Prim. Uses lazy deletion: {!push} may insert a vertex multiple times and
    consumers skip stale pops (cheaper than decrease-key at these sizes). *)

type t

val create : capacity:int -> t
(** [create ~capacity] pre-allocates; the heap grows if exceeded. *)

val is_empty : t -> bool

val clear : t -> unit
(** [clear h] empties the heap without releasing its storage, so a consumer
    looping over many Dijkstra runs can reuse one allocation. *)

val size : t -> int

val push : t -> priority:float -> int -> unit
(** [push h ~priority v] inserts vertex [v] with [priority]. *)

val pop_min : t -> (float * int) option
(** [pop_min h] removes and returns the entry with the smallest priority
    (ties broken by smaller vertex id, making consumers deterministic). *)
