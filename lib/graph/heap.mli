(** Binary min-heap keyed by float priorities, specialised for Dijkstra and
    Prim. Uses lazy deletion: {!push} may insert a vertex multiple times and
    consumers skip stale pops (cheaper than decrease-key at these sizes).

    {b The canonical tie-break invariant.} Every heap in this module orders
    entries by the strict pair [(priority, vertex-id)]: between two entries
    with bit-equal float priorities, the smaller vertex id pops first. This
    is not an implementation detail — it is the shared contract that makes
    {!Shortest_path.dijkstra} and the in-place tree repair of
    [Cold_net.Incremental] settle vertices in the {e same} deterministic
    sequence, so equal-length alternative paths resolve to the same
    predecessor either way. Any replacement heap must preserve it. *)

type t

val create : capacity:int -> t
(** [create ~capacity] pre-allocates; the heap grows if exceeded. *)

val is_empty : t -> bool

val clear : t -> unit
(** [clear h] empties the heap without releasing its storage, so a consumer
    looping over many Dijkstra runs can reuse one allocation. *)

val size : t -> int

val push : t -> priority:float -> int -> unit
(** [push h ~priority v] inserts vertex [v] with [priority]. *)

val pop_min : t -> (float * int) option
(** [pop_min h] removes and returns the entry with the smallest priority
    (ties broken by smaller vertex id, making consumers deterministic). *)

(** Decrease-key variant over a fixed vertex universe [0 .. n-1]: a
    vertex -> slot index keeps at most one live entry per vertex, so
    re-pushing a better priority moves the entry instead of shadowing it.
    Pops follow the same strict [(priority, vertex-id)] order as the lazy
    heap, and since each vertex surfaces exactly once — at its minimal
    pushed priority — the accepted-pop sequence of a lazy-deletion consumer
    and the pop sequence of an indexed consumer are identical. The
    frontier re-relaxation of [Cold_net.Incremental] is built on this. *)
module Indexed : sig
  type t

  val create : n:int -> t
  (** [create ~n] allocates for vertices [0 .. n-1]. *)

  val is_empty : t -> bool

  val size : t -> int

  val clear : t -> unit
  (** [clear h] empties the heap in O(live entries), retaining storage. *)

  val decrease : t -> priority:float -> int -> unit
  (** [decrease h ~priority v] inserts [v], or lowers its priority if
      [priority] beats the current entry; a worse priority is a no-op. *)

  val pop_min : t -> (float * int) option
  (** Smallest [(priority, vertex)] entry, removed. *)
end
