type tree = { dist : float array; pred : int array; order : int array }

(* Scratch reused across runs: only buffers that do NOT escape into the
   returned tree live here. [dist]/[pred] are always freshly allocated —
   trees are retained by callers (routing keeps one per source, the
   incremental engine keeps them across evaluations), so aliasing them to a
   workspace would let the next run corrupt a stored tree. [order] is staged
   in the workspace and copied out at its exact reachable length. *)
type workspace = {
  ws_n : int;
  ws_settled : bool array;
  ws_order : int array;
  ws_heap : Heap.t;
}

let workspace ~n =
  if n < 0 then invalid_arg "Shortest_path.workspace";
  {
    ws_n = n;
    ws_settled = Array.make (max n 1) false;
    ws_order = Array.make (max n 1) (-1);
    ws_heap = Heap.create ~capacity:(2 * max n 1);
  }

(* One lazily-created workspace per domain, rebuilt when the vertex count
   changes: the natural fit for Par pools, where tasks land on arbitrary
   domains but every domain can reuse its own scratch run after run. *)
let dls_workspace : workspace option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let domain_workspace ~n =
  match Domain.DLS.get dls_workspace with
  | Some ws when ws.ws_n = n -> ws
  | _ ->
    let ws = workspace ~n in
    Domain.DLS.set dls_workspace (Some ws);
    ws

let dijkstra ?adj ?csr ?workspace g ~length ~source =
  let n = Graph.node_count g in
  if source < 0 || source >= n then invalid_arg "Shortest_path.dijkstra";
  let (settled, order, heap) =
    match workspace with
    | Some ws ->
      if ws.ws_n <> n then invalid_arg "Shortest_path.dijkstra: workspace size";
      Array.fill ws.ws_settled 0 n false;
      Heap.clear ws.ws_heap;
      (ws.ws_settled, ws.ws_order, ws.ws_heap)
    | None ->
      (Array.make n false, Array.make n (-1), Heap.create ~capacity:(2 * n))
  in
  let dist = Array.make n infinity in
  let pred = Array.make n (-1) in
  let count = ref 0 in
  dist.(source) <- 0.0;
  Heap.push heap ~priority:0.0 source;
  let relax u d v =
    if not settled.(v) then begin
      let nd = d +. length u v in
      if nd < dist.(v) then begin
        dist.(v) <- nd;
        pred.(v) <- u;
        Heap.push heap ~priority:nd v
      end
      else if Float.equal nd dist.(v) && pred.(v) >= 0 && u < pred.(v) then
        (* Deterministic tie-break: prefer the smaller predecessor. *)
        pred.(v) <- u
    end
  in
  let rec drain () =
    match Heap.pop_min heap with
    | None -> ()
    | Some (d, u) ->
      if not settled.(u) && d <= dist.(u) then begin
        settled.(u) <- true;
        order.(!count) <- u;
        incr count;
        (* Precomputed neighbour views skip the O(n) adjacency-row scan per
           settle — the win compounds over the n sources of a routing pass.
           CSR and row arrays both present neighbours in the dense scan's
           ascending order, so all three paths relax identically. *)
        (match csr with
        | Some c ->
          let offsets = c.Graph.Csr.offsets and targets = c.Graph.Csr.targets in
          for k = offsets.(u) to offsets.(u + 1) - 1 do
            relax u d (Array.unsafe_get targets k)
          done
        | None ->
          (match adj with
          | Some neighbours -> Array.iter (relax u d) neighbours.(u)
          | None -> Graph.iter_neighbors g u (relax u d)))
      end;
      drain ()
  in
  drain ();
  { dist; pred; order = Array.sub order 0 !count }

(* The repair certificate: every settled non-source vertex sits strictly
   farther than its predecessor. When it holds, each vertex is pushed at its
   final priority before the first pop of its equal-distance group (the
   predecessor settles strictly earlier and relaxes it), so the lazy heap's
   strict (priority, vertex-id) order makes the settle sequence exactly
   ascending (dist, id) — the property Cold_net.Incremental's order merge
   depends on. Zero-length links (colocated PoPs) or additions rounded away
   by float precision violate it; such trees must be rebuilt from scratch
   rather than repaired. *)
let canonical t =
  let ok = ref true in
  Array.iter
    (fun v ->
      let p = t.pred.(v) in
      if p >= 0 && not (t.dist.(p) < t.dist.(v)) then ok := false)
    t.order;
  !ok

let path t v =
  if v < 0 || v >= Array.length t.dist then invalid_arg "Shortest_path.path";
  if Float.equal t.dist.(v) infinity then None
  else begin
    let rec walk v acc = if t.pred.(v) < 0 then v :: acc else walk t.pred.(v) (v :: acc) in
    Some (walk v [])
  end

let apsp_hops g =
  let csr = Graph.Csr.of_graph g in
  Array.init (Graph.node_count g) (fun s -> Traversal.bfs_hops ~csr g s)

let apsp_lengths g ~length =
  let csr = Graph.Csr.of_graph g in
  Array.init (Graph.node_count g) (fun s -> (dijkstra ~csr g ~length ~source:s).dist)
