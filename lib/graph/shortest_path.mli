(** Weighted single-source shortest paths (Dijkstra) with deterministic
    tie-breaking.

    COLD routes all traffic over length-shortest paths (§3.2.1), and the
    per-link bandwidth wi in the cost function is the traffic accumulated on
    each link by that routing — so shortest-path trees are evaluated once per
    candidate topology per source, making this the GA's hot path (the O(n³)
    in Fig 4). Ties are broken towards the smaller predecessor id so that
    routing (and therefore cost) is a pure function of the topology. *)

type tree = {
  dist : float array;  (** [dist.(v)]: length of the shortest path, [infinity] if unreachable. *)
  pred : int array;  (** [pred.(v)]: predecessor on the chosen path; [-1] for the source and unreachable vertices. *)
  order : int array;  (** Vertices in settling order (ascending distance); length = number of reachable vertices. *)
}

type workspace
(** Reusable scratch for repeated runs: the settled flags, the heap and the
    settling-order staging buffer — everything a run consumes but does not
    return. The [dist]/[pred] arrays of a {!tree} are always freshly
    allocated (callers retain trees), so a tree outlives the workspace that
    produced it and results are bit-identical with or without one. A
    workspace is single-threaded state: never share one across domains. *)

val workspace : n:int -> workspace
(** [workspace ~n] allocates scratch for graphs on [n] vertices. *)

val domain_workspace : n:int -> workspace
(** The calling domain's private workspace (domain-local storage), created
    on first use and rebuilt when [n] changes — the way evaluation fan-outs
    over a {e Par} pool get one reusable workspace per domain without
    threading state through task closures. *)

val dijkstra :
  ?adj:int array array ->
  ?csr:Graph.Csr.t ->
  ?workspace:workspace ->
  Graph.t ->
  length:(int -> int -> float) ->
  source:int ->
  tree
(** [dijkstra g ~length ~source] computes the shortest-path tree. [length u v]
    must be the positive length of edge [{u,v}]; it is queried only for
    existing edges.

    [?adj] accepts the graph's {!Graph.adjacency_arrays} and [?csr] a
    {!Graph.Csr} view ([csr] wins when both are given): callers running
    many sources over one topology (all-pairs routing, the GA's cost
    evaluation) precompute one and replace the O(n) adjacency-row scan
    per settled vertex with an O(degree) sweep — CSR additionally keeps
    all neighbour ids in two flat cache-friendly arrays. The view must
    describe [g] exactly; neighbour visit order (ascending) and hence every
    tie-break is identical across all three paths.

    [?workspace] reuses scratch buffers across runs (see {!workspace});
    output is bit-identical with and without it. Raises [Invalid_argument]
    if the workspace was built for a different vertex count. *)

val canonical : tree -> bool
(** [canonical t] is the {e repair certificate}: [true] iff every settled
    non-source vertex is strictly farther than its predecessor. When it
    holds, {!dijkstra}'s settle order is provably the ascending
    [(dist, vertex-id)] sort of the reachable vertices — each vertex is
    pushed at its final priority before the first pop of its equal-distance
    group, and the heap's canonical [(priority, vertex-id)] tie-break (see
    {!Heap}) does the rest. [Cold_net.Incremental] repairs trees in place
    only while the certificate holds; zero-length links (colocated PoPs) or
    float-rounding-degenerate additions violate it and force a full
    recomputation. O(reachable). *)

val path : tree -> int -> int list option
(** [path t v] is the source→[v] vertex sequence, or [None] if unreachable. *)

val apsp_hops : Graph.t -> int array array
(** [apsp_hops g] is the all-pairs hop-count matrix ([-1] when unreachable):
    BFS from every source. *)

val apsp_lengths : Graph.t -> length:(int -> int -> float) -> float array array
(** [apsp_lengths g ~length] is the all-pairs weighted distance matrix
    ([infinity] when unreachable). *)
