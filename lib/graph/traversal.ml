(* BFS visits neighbours in ascending id order on every path — the dense
   row scan and a CSR segment enumerate identically — so hop counts,
   component ids and member lists are the same whichever view serves the
   iteration. [?csr] lets all-sources sweeps (apsp_hops, the distance
   metrics) pay one adjacency materialization instead of n² row scans. *)

let iter_nbrs ?csr g u f =
  match csr with
  | Some c -> Graph.Csr.iter_neighbors c u f
  | None -> Graph.iter_neighbors g u f

let bfs_hops ?csr g s =
  let n = Graph.node_count g in
  let dist = Array.make n (-1) in
  let queue = Queue.create () in
  dist.(s) <- 0;
  Queue.add s queue;
  while not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    iter_nbrs ?csr g u (fun v ->
        if dist.(v) < 0 then begin
          dist.(v) <- dist.(u) + 1;
          Queue.add v queue
        end)
  done;
  dist

let connected_components g =
  let n = Graph.node_count g in
  let comp = Array.make n (-1) in
  let next_id = ref 0 in
  for s = 0 to n - 1 do
    if comp.(s) < 0 then begin
      let id = !next_id in
      incr next_id;
      let queue = Queue.create () in
      comp.(s) <- id;
      Queue.add s queue;
      while not (Queue.is_empty queue) do
        let u = Queue.pop queue in
        Graph.iter_neighbors g u (fun v ->
            if comp.(v) < 0 then begin
              comp.(v) <- id;
              Queue.add v queue
            end)
      done
    end
  done;
  (comp, !next_id)

let is_connected g =
  let n = Graph.node_count g in
  n <= 1
  ||
  let dist = bfs_hops g 0 in
  Array.for_all (fun d -> d >= 0) dist

let component_members (comp, k) =
  let members = Array.make k [] in
  for v = Array.length comp - 1 downto 0 do
    members.(comp.(v)) <- v :: members.(comp.(v))
  done;
  members
