(** Breadth-first traversal: hop distances, connectivity, components.

    Hop distances drive the paper's diameter statistic (Fig 6); components
    feed the GA's connectivity-repair step (§4.1.3). *)

val bfs_hops : ?csr:Graph.Csr.t -> Graph.t -> int -> int array
(** [bfs_hops g s] is the array of hop counts from [s]; unreachable vertices
    get [-1]. [?csr] (a snapshot of [g]) replaces each O(n) adjacency-row
    scan with an O(degree) flat-array sweep — identical output, worthwhile
    for all-sources batteries. *)

val is_connected : Graph.t -> bool
(** [is_connected g] — the empty graph and the singleton graph count as
    connected. *)

val connected_components : Graph.t -> int array * int
(** [connected_components g] is [(comp, k)] where [comp.(v)] is the component
    id of [v] (ids are [0 .. k-1], assigned in order of smallest member). *)

val component_members : int array * int -> int list array
(** [component_members (comp, k)] lists each component's vertices
    ascending. *)
