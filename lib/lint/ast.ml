type ref_site = { rpath : string list; rname : string; rline : int }

type def = {
  dname : string;
  dpath : string list;
  dline : int;
  drefs : ref_site list;
  dmutates : ref_site list;
  dcallbacks : ref_site list;
  dmediates : bool;
  dlocks : bool;
  dunlocks : bool;
  daccumulates : bool;
  dmutable_global : bool;
}

type t = {
  file : string;
  modname : string;
  opens : string list list;
  maliases : (string * string list) list;
  defs : def list;
  vals : string list;
}

let modname_of_file file =
  String.capitalize_ascii (Filename.remove_extension (Filename.basename file))

(* Identifiers that are keywords, binder syntax, or control flow — never a
   value reference. *)
let keywords =
  [ "let"; "in"; "rec"; "and"; "if"; "then"; "else"; "match"; "with"; "fun";
    "function"; "begin"; "end"; "struct"; "sig"; "module"; "open"; "include";
    "type"; "of"; "mutable"; "val"; "external"; "as"; "when"; "do"; "done";
    "for"; "to"; "while"; "downto"; "try"; "lazy"; "assert"; "new"; "object";
    "method"; "inherit"; "initializer"; "constraint"; "exception"; "private";
    "virtual"; "nonrec"; "true"; "false"; "or" ]

let is_keyword w = List.mem w keywords

let output_idents =
  [ "output_string"; "output_char"; "output_value"; "print_string";
    "print_endline"; "print_int"; "print_float"; "print_char";
    "print_newline"; "prerr_string"; "prerr_endline" ]

(* Mutable accumulation state for the definition under construction. *)
type building = {
  bname : string;
  bpath : string list;
  bline : int;
  mutable brefs : ref_site list;
  mutable bmutates : ref_site list;
  mutable bcallbacks : ref_site list;
  mutable bmediates : bool;
  mutable blocks_mutex : bool;
  mutable bunlocks : bool;
  mutable baccumulates : bool;
  bmutable_global : bool;
}

type block = Bstruct of string option | Bother

let summarize ~file tokens =
  let code =
    Array.of_list
      (List.filter
         (fun (t : Lexer.token) ->
           match t.Lexer.kind with Lexer.Comment _ -> false | _ -> true)
         tokens)
  in
  let n = Array.length code in
  let kind i = if i >= 0 && i < n then Some code.(i).Lexer.kind else None in
  let line i = if i >= 0 && i < n then code.(i).Lexer.line else 0 in
  (* Pre-pass: match [let]s with their [in]s like parentheses. A [let] never
     closed by an [in] is a structure item; an [and] chains a structure item
     iff the innermost pending [let] at that point is itself structural. *)
  let is_let_struct = Array.make (max n 1) false in
  let and_parent = Array.make (max n 1) (-1) in
  let let_stack = ref [] in
  for i = 0 to n - 1 do
    match code.(i).Lexer.kind with
    | Lexer.Ident "let" ->
      is_let_struct.(i) <- true;
      let_stack := i :: !let_stack
    | Lexer.Ident "in" -> (
      match !let_stack with
      | top :: rest ->
        is_let_struct.(top) <- false;
        let_stack := rest
      | [] -> ())
    | Lexer.Ident "and" -> (
      match !let_stack with top :: _ -> and_parent.(i) <- top | [] -> ())
    | _ -> ()
  done;
  let is_and_struct i =
    and_parent.(i) >= 0 && is_let_struct.(and_parent.(i))
  in
  (* Main walk state. *)
  let opens = ref [] in
  let maliases = ref [] in
  let vals = ref [] in
  let defs = ref [] in
  let blocks = ref ([] : block list) in
  let pending_module = ref None in
  let cur = ref None in
  let finish () =
    (match !cur with
    | Some b ->
      defs :=
        {
          dname = b.bname;
          dpath = b.bpath;
          dline = b.bline;
          drefs = List.rev b.brefs;
          dmutates = List.rev b.bmutates;
          dcallbacks = List.rev b.bcallbacks;
          dmediates = b.bmediates;
          dlocks = b.blocks_mutex;
          dunlocks = b.bunlocks;
          daccumulates = b.baccumulates;
          dmutable_global = b.bmutable_global;
        }
        :: !defs
    | None -> ());
    cur := None
  in
  let module_path () =
    List.rev
      (List.filter_map
         (function Bstruct (Some m) -> Some m | _ -> None)
         !blocks)
  in
  (* Read a [Uident (. Uident)*] chain starting at [i]; returns the chain and
     the index just past it. *)
  let read_uident_chain i =
    let rec go acc j =
      match kind j with
      | Some (Lexer.Uident u) -> (
        match (kind (j + 1), kind (j + 2)) with
        | Some (Lexer.Op "."), Some (Lexer.Uident _) -> go (u :: acc) (j + 2)
        | _ -> (List.rev (u :: acc), j + 1))
      | _ -> (List.rev acc, j)
    in
    go [] i
  in
  let add_ref b r = b.brefs <- r :: b.brefs in
  let add_mutation b r = b.bmutates <- r :: b.bmutates in
  (* Scan forward from [j] for the binding [=] of a [let], tracking bracket
     depth; returns [Some (eq_index, has_params)]. Parameters are any tokens
     at depth 0 between the name and the first [:] or [=]. *)
  let find_binding_eq j =
    let rec go k depth params steps =
      if steps > 300 then None
      else
        match kind k with
        | None -> None
        | Some (Lexer.Op ("(" | "[" | "{")) -> go (k + 1) (depth + 1) params (steps + 1)
        | Some (Lexer.Op (")" | "]" | "}")) -> go (k + 1) (depth - 1) params (steps + 1)
        | Some (Lexer.Op "=") when depth = 0 -> Some (k, params)
        | Some (Lexer.Op ":") when depth = 0 ->
          (* Type annotation: no parameters can follow before [=]. *)
          let rec to_eq k2 d2 s2 =
            if s2 > 300 then None
            else
              match kind k2 with
              | None -> None
              | Some (Lexer.Op ("(" | "[" | "{")) -> to_eq (k2 + 1) (d2 + 1) (s2 + 1)
              | Some (Lexer.Op (")" | "]" | "}")) -> to_eq (k2 + 1) (d2 - 1) (s2 + 1)
              | Some (Lexer.Op "=") when d2 = 0 -> Some (k2, params)
              | _ -> to_eq (k2 + 1) d2 (s2 + 1)
          in
          to_eq (k + 1) 0 (steps + 1)
        | Some (Lexer.Ident _ | Lexer.Uident _) when depth = 0 ->
          go (k + 1) depth true (steps + 1)
        | _ -> go (k + 1) depth params (steps + 1)
    in
    go j 0 false 0
  in
  let rhs_is_mutable eq =
    let rec head k =
      match kind k with
      | Some (Lexer.Op "(") -> head (k + 1)
      | Some (Lexer.Ident "ref") -> true
      | Some (Lexer.Uident "Hashtbl")
        when kind (k + 1) = Some (Lexer.Op ".")
             && kind (k + 2) = Some (Lexer.Ident "create") ->
        true
      | _ -> false
    in
    head (eq + 1)
  in
  (* Start a new definition whose name token sits at [j] (just after the
     [let]/[and] and any [rec]). *)
  let start_def ~line:def_line j =
    finish ();
    let name, name_end =
      match kind j with
      | Some (Lexer.Ident w) when not (is_keyword w) -> (w, j + 1)
      | Some (Lexer.Op "(") -> (
        match (kind (j + 1), kind (j + 2)) with
        | Some (Lexer.Op op), Some (Lexer.Op ")") -> (op, j + 3)
        | _ -> ("_", j))
      | _ -> ("_", j)
    in
    let mutable_global =
      match find_binding_eq name_end with
      | Some (eq, false) -> rhs_is_mutable eq
      | _ -> false
    in
    cur :=
      Some
        {
          bname = name;
          bpath = module_path ();
          bline = def_line;
          brefs = [];
          bmutates = [];
          bcallbacks = [];
          bmediates = false;
          blocks_mutex = false;
          bunlocks = false;
          baccumulates = false;
          bmutable_global = mutable_global;
        }
  in
  let with_cur f = match !cur with Some b -> f b | None -> () in
  (* Record a qualified reference and its side-channel classifications. *)
  let record_qualified b path name ref_line next_i =
    add_ref b { rpath = path; rname = name; rline = ref_line };
    (match (path, name) with
    | [ "Mutex" ], "lock" ->
      b.blocks_mutex <- true;
      b.bmediates <- true
    | [ "Mutex" ], ("unlock" | "protect") ->
      b.bunlocks <- true;
      b.bmediates <- true
    | _ ->
      if List.mem "DLS" path || List.mem "Atomic" path then
        b.bmediates <- true);
    (match path with
    | ("Buffer" | "Printf" | "Format") :: _ -> b.baccumulates <- true
    | _ -> ());
    if kind next_i = Some (Lexer.Op ":=") then
      add_mutation b { rpath = path; rname = name; rline = ref_line };
    (* [Hashtbl.add tbl …] and friends mutate their first argument. *)
    (if path = [ "Hashtbl" ]
        && List.mem name
             [ "add"; "replace"; "remove"; "reset"; "clear";
               "filter_map_inplace" ]
     then
       match kind next_i with
       | Some (Lexer.Ident t) when not (is_keyword t) ->
         add_mutation b { rpath = []; rname = t; rline = ref_line }
       | Some (Lexer.Uident _) ->
         let chain, j2 = read_uident_chain next_i in
         (match (chain, kind j2, kind (j2 + 1)) with
         | _ :: _, Some (Lexer.Op "."), Some (Lexer.Ident t) ->
           add_mutation b { rpath = chain; rname = t; rline = ref_line }
         | _ -> ())
       | _ -> ());
    (* Named callback handed to an order-sensitive Hashtbl traversal. *)
    if path = [ "Hashtbl" ] && List.mem name [ "iter"; "iteri"; "fold" ] then
      match kind next_i with
      | Some (Lexer.Ident g) when (not (is_keyword g)) && g <> "fun" ->
        b.bcallbacks <- { rpath = []; rname = g; rline = ref_line } :: b.bcallbacks
      | Some (Lexer.Uident _) -> (
        let chain, j2 = read_uident_chain next_i in
        match (kind j2, kind (j2 + 1)) with
        | Some (Lexer.Op "."), Some (Lexer.Ident g) when not (is_keyword g) ->
          b.bcallbacks <-
            { rpath = chain; rname = g; rline = ref_line } :: b.bcallbacks
        | _ -> ())
      | _ -> ()
  in
  let i = ref 0 in
  while !i < n do
    let t = code.(!i) in
    let struct_level =
      match !blocks with [] | Bstruct _ :: _ -> true | _ -> false
    in
    (match t.Lexer.kind with
    | Lexer.Ident "let" when is_let_struct.(!i) && struct_level ->
      let j = if kind (!i + 1) = Some (Lexer.Ident "rec") then !i + 2 else !i + 1 in
      start_def ~line:t.Lexer.line j;
      i := j
    | Lexer.Ident "and" when is_and_struct !i && struct_level && !cur <> None ->
      let j = if kind (!i + 1) = Some (Lexer.Ident "rec") then !i + 2 else !i + 1 in
      start_def ~line:t.Lexer.line j;
      i := j
    | Lexer.Ident "module"
      when struct_level
           && kind (!i - 1) <> Some (Lexer.Ident "let")
           && kind (!i - 1) <> Some (Lexer.Op "(") -> (
      finish ();
      match kind (!i + 1) with
      | Some (Lexer.Ident "type") -> i := !i + 2
      | Some (Lexer.Uident m) ->
        pending_module := Some m;
        i := !i + 2
      | _ -> incr i)
    | Lexer.Ident "struct" ->
      blocks := Bstruct !pending_module :: !blocks;
      pending_module := None;
      incr i
    | Lexer.Ident ("begin" | "sig" | "object" | "do") ->
      blocks := Bother :: !blocks;
      incr i
    | Lexer.Ident ("end" | "done") ->
      (match !blocks with
      | Bstruct _ :: rest ->
        finish ();
        blocks := rest
      | Bother :: rest -> blocks := rest
      | [] -> ());
      incr i
    | Lexer.Op "=" when !pending_module <> None -> (
      (* [module M = Path] (alias) vs [module M = struct] (handled when the
         [struct] token arrives). *)
      match kind (!i + 1) with
      | Some (Lexer.Uident _) ->
        let chain, j = read_uident_chain (!i + 1) in
        (match !pending_module with
        | Some m -> maliases := (m, chain) :: !maliases
        | None -> ());
        pending_module := None;
        i := j
      | Some (Lexer.Ident "struct") -> incr i
      | _ ->
        pending_module := None;
        incr i)
    | Lexer.Ident ("open" | "include") -> (
      match kind (!i + 1) with
      | Some (Lexer.Uident _) ->
        let chain, j = read_uident_chain (!i + 1) in
        opens := chain :: !opens;
        i := j
      | _ -> incr i)
    | Lexer.Ident "val" -> (
      match kind (!i + 1) with
      | Some (Lexer.Ident v) when not (is_keyword v) ->
        vals := v :: !vals;
        i := !i + 2
      | _ -> incr i)
    | Lexer.Uident _ when kind (!i - 1) <> Some (Lexer.Op ".") -> (
      let chain, j = read_uident_chain !i in
      match (kind j, kind (j + 1)) with
      | Some (Lexer.Op "."), Some (Lexer.Ident f)
        when (not (is_keyword f)) && chain <> [] ->
        with_cur (fun b -> record_qualified b chain f t.Lexer.line (j + 2));
        i := j + 2
      | _ -> i := j)
    | Lexer.Ident w
      when (not (is_keyword w))
           && kind (!i - 1) <> Some (Lexer.Op ".")
           && kind (!i - 1) <> Some (Lexer.Op "~")
           && kind (!i - 1) <> Some (Lexer.Op "?") ->
      with_cur (fun b ->
          add_ref b { rpath = []; rname = w; rline = t.Lexer.line };
          if kind (!i + 1) = Some (Lexer.Op ":=") then begin
            add_mutation b { rpath = []; rname = w; rline = t.Lexer.line };
            b.baccumulates <- true
          end;
          (if w = "incr" || w = "decr" then
             match kind (!i + 1) with
             | Some (Lexer.Ident g) when not (is_keyword g) ->
               add_mutation b { rpath = []; rname = g; rline = t.Lexer.line }
             | _ -> ());
          if List.mem w output_idents then b.baccumulates <- true);
      incr i
    | Lexer.Op "::" ->
      with_cur (fun b -> b.baccumulates <- true);
      incr i
    | Lexer.Op ":=" ->
      with_cur (fun b -> b.baccumulates <- true);
      incr i
    | Lexer.Op "<-" ->
      (* [base.field <- …]: attribute the write to the record base. *)
      with_cur (fun b ->
          match (kind (!i - 1), kind (!i - 2), kind (!i - 3)) with
          | Some (Lexer.Ident _), Some (Lexer.Op "."), Some (Lexer.Ident base)
            when not (is_keyword base) ->
            add_mutation b
              { rpath = []; rname = base; rline = line (!i - 3) }
          | Some (Lexer.Ident f), Some (Lexer.Op "."), Some (Lexer.Uident _)
            -> (
            (* Qualified base: walk the chain backwards. *)
            let rec back k acc =
              match (kind k, kind (k - 1)) with
              | Some (Lexer.Uident u), Some (Lexer.Op ".") ->
                back (k - 2) (u :: acc)
              | Some (Lexer.Uident u), _ -> u :: acc
              | _ -> acc
            in
            match back (!i - 3) [] with
            | [] -> ()
            | chain ->
              add_mutation b { rpath = chain; rname = f; rline = line (!i - 1) })
          | _ -> ());
      incr i
    | _ -> incr i)
  done;
  finish ();
  {
    file;
    modname = modname_of_file file;
    opens = List.rev !opens;
    maliases = List.rev !maliases;
    defs = List.rev !defs;
    vals = List.rev !vals;
  }
