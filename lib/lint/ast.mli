(** Per-file definition summaries for the interprocedural pass.

    A lightweight recursive-descent walk over the {!Lexer} token stream
    recovers just enough structure for whole-program analysis: module-level
    [let] bindings (with their enclosing submodule path), [open]/[include]
    directives, [module M = Path] aliases, and — per definition — every
    value reference, mutation site, and synchronization marker in the body.
    It is not a parser: anything it cannot classify is skipped, so the
    summaries are an under-approximation of the syntax but never misread
    comments or string literals (the lexer guarantees that). *)

type ref_site = {
  rpath : string list;
      (** module qualifiers, outermost first: [Cold_net.Routing.route] has
          [rpath = ["Cold_net"; "Routing"]]; unqualified uses have [[]] *)
  rname : string;  (** the referenced value name *)
  rline : int;  (** 1-based line of the reference *)
}

type def = {
  dname : string;
      (** simple binding name; ["_"] for pattern/unit bindings, the operator
          text for [let ( + ) …] *)
  dpath : string list;  (** enclosing submodule path within the file *)
  dline : int;  (** line the [let]/[and] keyword starts on *)
  drefs : ref_site list;  (** value references in the body, source order *)
  dmutates : ref_site list;
      (** mutation targets: [x := …], [r.f <- …], [incr]/[decr],
          [Hashtbl.add/replace/remove/reset/clear] first arguments *)
  dcallbacks : ref_site list;
      (** named (non-lambda) callbacks handed to [Hashtbl.iter]/[iteri]/
          [fold] — the helper-wrapped iteration the token rules cannot see *)
  dmediates : bool;
      (** body uses [Mutex.lock]/[Mutex.protect], [Domain.DLS] or [Atomic]:
          treated as a synchronization boundary by the parallel-safety rules *)
  dlocks : bool;  (** body references [Mutex.lock] *)
  dunlocks : bool;  (** body references [Mutex.unlock] or [Mutex.protect] *)
  daccumulates : bool;
      (** body conses ([::]), assigns a ref ([:=]), or writes to an output
          channel / [Buffer] / [Printf] / [Format] — order-sensitive *)
  dmutable_global : bool;
      (** a parameterless module-level binding whose right-hand side is
          visibly mutable state: [ref …] or [Hashtbl.create …] *)
}

type t = {
  file : string;
  modname : string;  (** capitalized basename: [lib/net/routing.ml] → [Routing] *)
  opens : string list list;  (** [open]/[include] paths, source order *)
  maliases : (string * string list) list;  (** [module M = Other.Path] *)
  defs : def list;  (** module-level definitions, source order *)
  vals : string list;  (** [val] names — populated for [.mli] files *)
}

val modname_of_file : string -> string
(** [modname_of_file "lib/net/routing.ml"] is ["Routing"]. *)

val summarize : file:string -> Lexer.token list -> t
(** [summarize ~file tokens] builds the summary; never raises. Comments are
    ignored; unrecognized constructs contribute nothing. *)
