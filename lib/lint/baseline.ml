type diff = { fresh : Finding.t list; baselined : int; stale : int }

(* --- minimal JSON reader ------------------------------------------------------ *)

(* Just enough JSON for the linter's own [--json] output (and hand edits of
   it): strings with escapes, integers, arrays, objects. Kept local so the
   linter stays dependency-free. *)

type json =
  | Str of string
  | Num of int
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let fail pos msg = raise (Bad (Printf.sprintf "offset %d: %s" pos msg))

let parse_json s =
  let n = String.length s in
  let i = ref 0 in
  let peek () = if !i < n then Some s.[!i] else None in
  let skip_ws () =
    while !i < n && (match s.[!i] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr i
    done
  in
  let expect c =
    if !i < n && s.[!i] = c then incr i
    else fail !i (Printf.sprintf "expected '%c'" c)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 32 in
    let fin = ref false in
    while not !fin do
      if !i >= n then fail !i "unterminated string";
      (match s.[!i] with
      | '"' -> fin := true
      | '\\' ->
        if !i + 1 >= n then fail !i "dangling escape";
        incr i;
        (match s.[!i] with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 't' -> Buffer.add_char buf '\t'
        | 'r' -> Buffer.add_char buf '\r'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !i + 4 >= n then fail !i "truncated \\u escape";
          let hex = String.sub s (!i + 1) 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some code when code < 0x80 -> Buffer.add_char buf (Char.chr code)
          | Some _ ->
            (* Non-ASCII escapes cannot occur in our own output; keep the
               reader total by passing the escape through verbatim. *)
            Buffer.add_string buf ("\\u" ^ hex)
          | None -> fail !i "bad \\u escape");
          i := !i + 4
        | c -> fail !i (Printf.sprintf "unknown escape '\\%c'" c))
      | c -> Buffer.add_char buf c);
      incr i
    done;
    Buffer.contents buf
  in
  let parse_int () =
    let start = !i in
    if peek () = Some '-' then incr i;
    while !i < n && s.[!i] >= '0' && s.[!i] <= '9' do
      incr i
    done;
    match int_of_string_opt (String.sub s start (!i - start)) with
    | Some v -> v
    | None -> fail start "expected integer"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '"' -> Str (parse_string ())
    | Some '[' ->
      expect '[';
      skip_ws ();
      if peek () = Some ']' then begin
        expect ']';
        Arr []
      end
      else begin
        let items = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          expect ',';
          items := parse_value () :: !items;
          skip_ws ()
        done;
        expect ']';
        Arr (List.rev !items)
      end
    | Some '{' ->
      expect '{';
      skip_ws ();
      if peek () = Some '}' then begin
        expect '}';
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let fields = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          expect ',';
          fields := field () :: !fields;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !fields)
      end
    | Some ('-' | '0' .. '9') -> Num (parse_int ())
    | Some c -> fail !i (Printf.sprintf "unexpected character '%c'" c)
    | None -> fail !i "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !i <> n then fail !i "trailing content";
  v

(* --- baseline file ------------------------------------------------------------ *)

let finding_of_json = function
  | Obj fields ->
    let str k =
      match List.assoc_opt k fields with
      | Some (Str s) -> s
      | _ -> raise (Bad (Printf.sprintf "finding lacks string field %S" k))
    in
    let line =
      match List.assoc_opt "line" fields with
      | Some (Num l) -> l
      | _ -> raise (Bad "finding lacks integer field \"line\"")
    in
    let id =
      match List.assoc_opt "id" fields with
      | Some (Str s) -> Some s
      | Some _ -> raise (Bad "field \"id\" must be a string")
      | None -> None
    in
    let chain =
      match List.assoc_opt "chain" fields with
      | Some (Arr links) ->
        List.map
          (function
            | Obj lf ->
              let lstr k =
                match List.assoc_opt k lf with
                | Some (Str s) -> s
                | _ ->
                  raise
                    (Bad (Printf.sprintf "chain link lacks string field %S" k))
              in
              let lline =
                match List.assoc_opt "line" lf with
                | Some (Num l) -> l
                | _ -> raise (Bad "chain link lacks integer field \"line\"")
              in
              {
                Finding.cfile = lstr "file";
                cline = lline;
                cname = lstr "name";
              }
            | _ -> raise (Bad "chain links must be objects"))
          links
      | Some _ -> raise (Bad "field \"chain\" must be an array")
      | None -> []
    in
    Finding.make ~rule:(str "rule") ~file:(str "file") ~line ?id ~chain
      (str "message")
  | _ -> raise (Bad "baseline entries must be objects")

let load ~path =
  match
    let ic = open_in_bin path in
    let text =
      Fun.protect
        ~finally:(fun () -> close_in ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    match parse_json text with
    | Arr entries -> List.map finding_of_json entries
    | _ -> raise (Bad "baseline must be a JSON array")
  with
  | findings -> Ok findings
  | exception Bad msg -> Error (Printf.sprintf "%s: %s" path msg)
  | exception Sys_error msg -> Error msg

(* --- line-insensitive multiset diff ------------------------------------------- *)

(* Chain findings carry a stable identity (sink/source definition names, no
   line numbers); matching on it instead of the message keeps the gate quiet
   when unrelated edits shift the chain's lines or reword the rendering. *)
let key (f : Finding.t) =
  ( f.Finding.rule,
    f.Finding.file,
    match f.Finding.id with Some id -> id | None -> f.Finding.message )

let compare_key (r1, f1, m1) (r2, f2, m2) =
  match String.compare f1 f2 with
  | 0 -> (
    match String.compare r1 r2 with
    | 0 -> String.compare m1 m2
    | c -> c)
  | c -> c

let diff ~baseline current =
  let cur =
    List.sort
      (fun a b ->
        match compare_key (key a) (key b) with
        | 0 -> Int.compare a.Finding.line b.Finding.line
        | c -> c)
      current
  in
  let base = List.sort compare_key (List.map key baseline) in
  let rec go cur base fresh baselined stale =
    match (cur, base) with
    | [], rest -> (fresh, baselined, stale + List.length rest)
    | rest, [] -> (List.rev_append rest fresh, baselined, stale)
    | c :: cs, b :: bs -> (
      match compare_key (key c) b with
      | 0 -> go cs bs fresh (baselined + 1) stale
      | d when d < 0 -> go cs base (c :: fresh) baselined stale
      | _ -> go cur bs fresh baselined (stale + 1))
  in
  let (fresh, baselined, stale) = go cur base [] 0 0 in
  { fresh = List.sort Finding.compare fresh; baselined; stale }
