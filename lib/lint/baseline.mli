(** Baseline-gated linting: diff current findings against a committed
    snapshot so new violations fail CI while legacy ones burn down
    incrementally.

    A baseline file is exactly the linter's [--json] output (an array of
    [{"rule", "file", "line", "message"}] objects, chain findings adding
    ["id"] and ["chain"]); [--update-baseline] rewrites it from the current
    findings. Matching is line-insensitive — a finding is identified by
    (rule, file, id) when it carries a stable id, (rule, file, message)
    otherwise — so unrelated edits that shift a legacy finding a few lines
    (or reshuffle an interprocedural chain's interior) do not break the
    gate, while a genuinely new violation (or a second copy of an old one)
    does. *)

type diff = {
  fresh : Finding.t list;
      (** findings not covered by the baseline, canonical order; these gate *)
  baselined : int;  (** current findings matched by a baseline entry *)
  stale : int;
      (** baseline entries with no current finding — fixed violations whose
          entry should be pruned via [--update-baseline] *)
}

val load : path:string -> (Finding.t list, string) result
(** [load ~path] reads and parses a baseline JSON file. [Error msg] when
    the file is unreadable or not an array of finding objects; messages
    carry the offending position. *)

val diff : baseline:Finding.t list -> Finding.t list -> diff
(** [diff ~baseline current] matches the two multisets on
    (rule, file, id-or-message). Each baseline entry absorbs at most one
    current finding; unmatched current findings are {!diff.fresh}. *)
