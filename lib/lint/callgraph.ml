type node = {
  nfile : string;
  nqual : string;
  nline : int;
  ndef : Ast.def;
}

type t = {
  nodes : node array;
  summaries : Ast.t array;  (* node index -> owning summary *)
  succ : int list array;
  pred : int list array;
}

let qual_name (s : Ast.t) (d : Ast.def) =
  String.concat "." ((s.Ast.modname :: d.Ast.dpath) @ [ d.Ast.dname ])

let build tab summaries =
  let ml =
    List.filter
      (fun (s : Ast.t) -> not (Filename.check_suffix s.Ast.file ".mli"))
      summaries
  in
  let nodes = ref [] in
  let owners = ref [] in
  List.iter
    (fun (s : Ast.t) ->
      List.iter
        (fun (d : Ast.def) ->
          nodes :=
            { nfile = s.Ast.file; nqual = qual_name s d; nline = d.Ast.dline;
              ndef = d }
            :: !nodes;
          owners := s :: !owners)
        s.Ast.defs)
    ml;
  let nodes = Array.of_list (List.rev !nodes) in
  let summaries_arr = Array.of_list (List.rev !owners) in
  let n = Array.length nodes in
  (* Identity map: a def record is physically unique per node. *)
  let id_of = Hashtbl.create (max n 1) in
  Array.iteri
    (fun i nd ->
      Hashtbl.replace id_of (nd.nfile, nd.ndef.Ast.dpath, nd.ndef.Ast.dname,
        nd.ndef.Ast.dline) i)
    nodes;
  let succ = Array.make (max n 1) [] in
  let pred = Array.make (max n 1) [] in
  Array.iteri
    (fun i nd ->
      let s = summaries_arr.(i) in
      let targets = ref [] in
      List.iter
        (fun (r : Ast.ref_site) ->
          match Symtab.resolve tab s r with
          | Some (file, d) -> (
            match
              Hashtbl.find_opt id_of
                (file, d.Ast.dpath, d.Ast.dname, d.Ast.dline)
            with
            (* The binding name itself lexes as a reference, so every
               definition would otherwise carry a spurious self-edge;
               self-loops add nothing to reachability or chains. *)
            | Some j when j <> i && not (List.mem j !targets) ->
              targets := j :: !targets
            | _ -> ())
          | None -> ())
        nd.ndef.Ast.drefs;
      let ts = List.rev !targets in
      succ.(i) <- ts;
      List.iter (fun j -> pred.(j) <- i :: pred.(j)) ts)
    nodes;
  (* pred lists were built backwards; restore ascending order. *)
  Array.iteri (fun j ps -> pred.(j) <- List.rev ps) pred;
  { nodes; summaries = summaries_arr; succ; pred }

let nodes g = g.nodes
let summary_of g i = g.summaries.(i)
let succ g i = g.succ.(i)
let pred g i = g.pred.(i)

let find g ~file ~name =
  let hit = ref None in
  Array.iteri
    (fun i nd ->
      if !hit = None && nd.nfile = file && nd.ndef.Ast.dname = name then
        hit := Some i)
    g.nodes;
  !hit

let node_of_line g ~file ~line =
  let best = ref None in
  Array.iteri
    (fun i nd ->
      if nd.nfile = file && nd.nline <= line then
        match !best with
        | Some j when g.nodes.(j).nline >= nd.nline -> ()
        | _ -> best := Some i)
    g.nodes;
  !best

let reachable g ~stop roots =
  let n = Array.length g.nodes in
  let seen = Array.make (max n 1) false in
  let q = Queue.create () in
  List.iter
    (fun r -> if r >= 0 && r < n && not (stop r) then Queue.add r q)
    roots;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter
        (fun w -> if (not seen.(w)) && not (stop w) then Queue.add w q)
        g.succ.(v)
    end
  done;
  seen

let reverse_bfs g src =
  let n = Array.length g.nodes in
  let dist = Array.make (max n 1) (-1) in
  let next = Array.make (max n 1) (-1) in
  if src >= 0 && src < n then begin
    dist.(src) <- 0;
    let q = Queue.create () in
    Queue.add src q;
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun u ->
          if dist.(u) < 0 then begin
            dist.(u) <- dist.(v) + 1;
            next.(u) <- v;
            Queue.add u q
          end)
        g.pred.(v)
    done
  end;
  (dist, next)

let dump g =
  let order = Array.init (Array.length g.nodes) (fun i -> i) in
  Array.sort
    (fun a b ->
      let na = g.nodes.(a) and nb = g.nodes.(b) in
      match String.compare na.nqual nb.nqual with
      | 0 -> (
        match String.compare na.nfile nb.nfile with
        | 0 -> Int.compare na.nline nb.nline
        | c -> c)
      | c -> c)
    order;
  let buf = Buffer.create 4096 in
  Array.iter
    (fun i ->
      let nd = g.nodes.(i) in
      Buffer.add_string buf
        (Printf.sprintf "%s (%s:%d)\n" nd.nqual nd.nfile nd.nline);
      let callees =
        List.sort String.compare
          (List.map (fun j -> g.nodes.(j).nqual) g.succ.(i))
      in
      List.iter
        (fun c -> Buffer.add_string buf (Printf.sprintf "  -> %s\n" c))
        callees)
    order;
  Buffer.contents buf
