(** Whole-program call graph over {!Ast} definition summaries.

    Nodes are module-level definitions of the [.ml] summaries, in summary
    order (deterministic). Edges follow every {!Symtab}-resolvable value
    reference — an over-approximation of "may call": passing a function as
    an argument counts, which is exactly what the taint pass wants (a
    closure handed to a pool runs). *)

type node = {
  nfile : string;
  nqual : string;  (** display name, [Mod.sub.name] *)
  nline : int;
  ndef : Ast.def;
}

type t

val build : Symtab.t -> Ast.t list -> t
(** [build tab summaries] resolves every reference of every definition.
    Interface summaries contribute no nodes. *)

val nodes : t -> node array

val summary_of : t -> int -> Ast.t
(** The summary the node's file came from. *)

val find : t -> file:string -> name:string -> int option
(** First node in [file] with simple definition name [name]. *)

val node_of_line : t -> file:string -> line:int -> int option
(** The definition whose extent contains [line] in [file] — the last
    definition starting at or before the line. *)

val succ : t -> int -> int list
val pred : t -> int -> int list

val reachable : t -> stop:(int -> bool) -> int list -> bool array
(** Forward BFS from the root set. Nodes satisfying [stop] are never
    expanded (their callees stay unreached through them); roots satisfying
    [stop] are not even marked. *)

val reverse_bfs : t -> int -> int array * int array
(** [reverse_bfs g src] walks callers-of transitively from [src]. Returns
    [(dist, next)] where [dist.(v)] is the call-chain length from [v] down
    to [src] ([-1] if unreachable) and [next.(v)] is the next node on a
    shortest chain from [v] towards [src] (BFS order, deterministic). *)

val dump : t -> string
(** Human-readable adjacency listing, sorted by qualified name, for
    [--call-graph]. *)
