(* Suppression comments: [(* lint: allow rule-a rule-b optional prose *)].
   Each yields (rule, first_line, last_line) covering the comment's span plus
   the following line. *)
let suppressions tokens =
  List.concat_map
    (fun (t : Lexer.token) ->
      match t.Lexer.kind with
      | Lexer.Comment text -> (
        let words =
          String.split_on_char ' ' text
          |> List.concat_map (String.split_on_char '\n')
          |> List.concat_map (String.split_on_char '\t')
          |> List.filter (fun w -> w <> "")
        in
        let rec after_allow = function
          | "lint:" :: "allow" :: rest -> Some rest
          | _ :: rest -> after_allow rest
          | [] -> None
        in
        match after_allow words with
        | None -> []
        | Some rest ->
          let rec rules_of = function
            | w :: rest when Rules.known w -> w :: rules_of rest
            | _ -> []
          in
          List.map
            (fun rule -> (rule, t.Lexer.line, t.Lexer.end_line + 1))
            (rules_of rest))
      | _ -> [])
    tokens

let rule_set only =
  match only with
  | None -> Rules.all
  | Some names ->
    List.filter (fun (r : Rules.t) -> List.mem r.Rules.name names) Rules.all

let check_tokens ?only ?mli_exists ~path tokens =
  let arr = Array.of_list tokens in
  let ctx = { Rules.path; mli_exists } in
  let raw =
    List.concat_map
      (fun (r : Rules.t) ->
        if r.Rules.applies path then r.Rules.check ctx arr else [])
      (rule_set only)
  in
  let sups = suppressions tokens in
  raw
  |> List.filter (fun (f : Finding.t) ->
         not
           (List.exists
              (fun (rule, first, last) ->
                rule = f.Finding.rule
                && f.Finding.line >= first
                && f.Finding.line <= last)
              sups))
  |> List.sort Finding.compare

let check_source ?only ?mli_exists ~path source =
  check_tokens ?only ?mli_exists ~path (Lexer.tokenize source)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let check_file ?only path =
  let mli_exists =
    if Filename.check_suffix path ".ml" then
      Some (Sys.file_exists (path ^ "i"))
    else None
  in
  check_source ?only ?mli_exists ~path (read_file path)

let is_ocaml path =
  Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"

(* [only] may mix token-level and deep names; each pass sees its own slice.
   [Some []] on a slice means "none of mine were requested" — the pass runs
   zero rules rather than all of them. *)
let split_only only =
  match only with
  | None -> (None, None)
  | Some names ->
    ( Some (List.filter (fun n -> Rules.find n <> None) names),
      Some (List.filter (fun n -> List.mem n Taint.rule_names) names) )

let unknown_rules only =
  match only with
  | None -> []
  | Some names -> List.filter (fun n -> not (Rules.known n)) names

let run ?only ?(deep = true) ~mli_exists_of sources =
  match unknown_rules only with
  | n :: _ -> Error (Printf.sprintf "unknown rule: %s" n)
  | [] ->
    let token_only, deep_only = split_only only in
    let toks =
      List.map (fun (path, src) -> (path, Lexer.tokenize src)) sources
    in
    let token_findings =
      List.concat_map
        (fun (path, tokens) ->
          let mli_exists =
            if Filename.check_suffix path ".ml" then Some (mli_exists_of path)
            else None
          in
          check_tokens ?only:token_only ?mli_exists ~path tokens)
        toks
    in
    let deep_findings =
      if (not deep) || deep_only = Some [] then []
      else begin
        let sups = Hashtbl.create 16 in
        List.iter
          (fun (path, tokens) ->
            Hashtbl.replace sups path (suppressions tokens))
          toks;
        let suppressed ~rule ~file ~line =
          match Hashtbl.find_opt sups file with
          | None -> false
          | Some spans ->
            List.exists
              (fun (r, first, last) ->
                r = rule && line >= first && line <= last)
              spans
        in
        Taint.analyze ?only:deep_only ~suppressed
          (List.filter (fun (p, _) -> is_ocaml p) toks)
      end
    in
    Ok (List.sort Finding.compare (token_findings @ deep_findings))

let check_sources ?only ?deep sources =
  let set = List.map fst sources in
  run ?only ?deep ~mli_exists_of:(fun p -> List.mem (p ^ "i") set) sources

let check_paths ?only ?deep paths =
  (* Validate rule names before touching the filesystem so a typoed --rules
     reports itself even when the paths are also wrong. *)
  match unknown_rules only with
  | n :: _ -> Error (Printf.sprintf "unknown rule: %s" n)
  | [] -> (
  match Walker.collect paths with
  | Error _ as e -> e
  | Ok files ->
    let sources = List.map (fun f -> (f, read_file f)) files in
    run ?only ?deep
      ~mli_exists_of:(fun p ->
        List.mem (p ^ "i") files || Sys.file_exists (p ^ "i"))
      sources)

let call_graph paths =
  match Walker.collect paths with
  | Error _ as e -> e
  | Ok files ->
    let summaries =
      List.filter_map
        (fun f ->
          if is_ocaml f then
            Some (Ast.summarize ~file:f (Lexer.tokenize (read_file f)))
          else None)
        files
    in
    let tab = Symtab.build summaries in
    Ok (Callgraph.dump (Callgraph.build tab summaries))
