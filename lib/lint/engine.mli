(** Runs the rule set over sources and filters suppressions.

    A finding is suppressed by a comment [(* lint: allow <rule> ... *)]
    placed on the same line as the violation or on the line directly above
    it (for multi-line comments: any line the comment touches, plus one).
    Several rule names may be listed in one comment; prose after the rule
    names is ignored. Deep (interprocedural) rule names are valid in
    suppression comments too: at a taint {e source} line they silence every
    chain rooted there, at a {e sink} line just that entry point.

    Token-level rules see one file at a time; the deep rules ({!Taint})
    need the whole file set at once, so they run only through
    {!check_sources} / {!check_paths}. *)

val check_source :
  ?only:string list ->
  ?mli_exists:bool ->
  path:string ->
  string ->
  Finding.t list
(** [check_source ~path src] lints one in-memory source with the
    token-level rules. [path] selects which rules apply (per-directory
    scoping) and is echoed in findings. [only] restricts to the named
    rules. [mli_exists] feeds the [mli-required] rule; when omitted the
    rule cannot fire. Findings are in canonical {!Finding.compare} order. *)

val check_file : ?only:string list -> string -> Finding.t list
(** [check_file path] reads and lints one file (token-level rules); the
    sibling [.mli] check is resolved against the filesystem. Raises
    [Sys_error] if unreadable. *)

val check_sources :
  ?only:string list ->
  ?deep:bool ->
  (string * string) list ->
  (Finding.t list, string) result
(** [check_sources sources] lints a set of in-memory [(path, content)]
    files: token-level rules per file, then — unless [~deep:false] — the
    interprocedural pass over the whole set. [mli-required] and export
    roots resolve against the set itself (a path's sibling [.mli] counts
    as existing iff it is in the set). [Error msg] on an unknown rule name
    in [only]. *)

val check_paths :
  ?only:string list ->
  ?deep:bool ->
  string list ->
  (Finding.t list, string) result
(** [check_paths paths] walks directories (via {!Walker.collect}), lints
    every [.ml]/[.mli] found, and merges findings in canonical order. The
    deep pass is on by default; [~deep:false] restores token-only
    behaviour. [Error msg] on a nonexistent path or unknown rule name in
    [only]. *)

val call_graph : string list -> (string, string) result
(** [call_graph paths] walks [paths] and renders the resolved whole-program
    call graph ({!Callgraph.dump}): one block per definition, sorted by
    qualified name, each listing its resolved callees. *)
