type chain_link = { cfile : string; cline : int; cname : string }

type t = {
  rule : string;
  file : string;
  line : int;
  message : string;
  id : string option;
  chain : chain_link list;
}

let make ~rule ~file ~line ?id ?(chain = []) message =
  { rule; file; line; message; id; chain }

let compare a b =
  match String.compare a.file b.file with
  | 0 -> (
    match Int.compare a.line b.line with
    | 0 -> (
      match String.compare a.rule b.rule with
      | 0 -> String.compare a.message b.message
      | c -> c)
    | c -> c)
  | c -> c

let chain_to_string chain =
  String.concat " -> "
    (List.map
       (fun l -> Printf.sprintf "%s (%s:%d)" l.cname l.cfile l.cline)
       chain)

let to_string f =
  let head = Printf.sprintf "%s:%d: [%s] %s" f.file f.line f.rule f.message in
  match f.chain with
  | [] -> head
  | chain -> head ^ "\n  chain: " ^ chain_to_string chain

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  let base =
    Printf.sprintf {|{"rule": "%s", "file": "%s", "line": %d, "message": "%s"|}
      (json_escape f.rule) (json_escape f.file) f.line (json_escape f.message)
  in
  let id_part =
    match f.id with
    | None -> ""
    | Some id -> Printf.sprintf {|, "id": "%s"|} (json_escape id)
  in
  let chain_part =
    match f.chain with
    | [] -> ""
    | chain ->
      let links =
        List.map
          (fun l ->
            Printf.sprintf {|{"file": "%s", "line": %d, "name": "%s"}|}
              (json_escape l.cfile) l.cline (json_escape l.cname))
          chain
      in
      Printf.sprintf {|, "chain": [%s]|} (String.concat ", " links)
  in
  base ^ id_part ^ chain_part ^ "}"
