(** A single lint violation: which rule fired, where, and why.

    Interprocedural rules attach a {e call chain} — the sink-to-source path
    the analysis followed — and a stable {e identity}. The identity is what
    the baseline machinery keys on (together with rule and file), so chain
    findings survive line shifts: it names the sink and source definitions,
    never line numbers. *)

type chain_link = {
  cfile : string;
  cline : int;
  cname : string;  (** qualified definition name, e.g. [Worker.task] *)
}

type t = {
  rule : string;
  file : string;
  line : int;
  message : string;
  id : string option;
      (** stable identity for baseline matching; [None] for single-location
          findings, which key on the message instead *)
  chain : chain_link list;  (** sink first, source last; [[]] if n/a *)
}

val make :
  rule:string ->
  file:string ->
  line:int ->
  ?id:string ->
  ?chain:chain_link list ->
  string ->
  t

val compare : t -> t -> int
(** Orders by file, then line, then rule name, then message — the canonical
    report order, independent of rule evaluation order. *)

val to_string : t -> string
(** ["file:line: [rule] message"] — one line, editor-clickable. Chain
    findings append ["  chain: f (a.ml:3) -> g (b.ml:9)"] lines. *)

val to_json : t -> string
(** A single JSON object [{"rule": …, "file": …, "line": …, "message": …}]
    with proper string escaping; chain findings add ["id"] and ["chain"]
    fields. *)
