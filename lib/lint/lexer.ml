type kind =
  | Ident of string
  | Uident of string
  | Int_lit of string
  | Float_lit of string
  | String_lit
  | Char_lit
  | Comment of string
  | Op of string

type token = { kind : kind; line : int; end_line : int }

let is_lower c = (c >= 'a' && c <= 'z') || c = '_'
let is_upper c = c >= 'A' && c <= 'Z'
let is_digit c = c >= '0' && c <= '9'

let is_ident_char c =
  is_lower c || is_upper c || is_digit c || c = '\''

(* Characters that form multi-character operator runs ([+.], [<>], [:=], …).
   Brackets and separators are emitted as single-character [Op]s instead so
   that [:(], [({], … never glue together. *)
let is_symbol_char c =
  match c with
  | '!' | '$' | '%' | '&' | '*' | '+' | '-' | '.' | '/' | ':' | '<' | '='
  | '>' | '?' | '@' | '^' | '|' | '~' -> true
  | _ -> false

let is_single_punct c =
  match c with
  | '(' | ')' | '[' | ']' | '{' | '}' | ',' | ';' | '#' | '`' -> true
  | _ -> false

let tokenize src =
  let n = String.length src in
  let tokens = ref [] in
  let i = ref 0 in
  let line = ref 1 in
  let emit kind start_line =
    tokens := { kind; line = start_line; end_line = !line } :: !tokens
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  (* Skip a string literal body starting after the opening quote; counts
     newlines and honours backslash escapes. *)
  let skip_string_body () =
    let fin = ref false in
    while (not !fin) && !i < n do
      (match src.[!i] with
      | '\\' -> if !i + 1 < n then incr i
      | '"' -> fin := true
      | '\n' -> incr line
      | _ -> ());
      incr i
    done
  in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '(' && peek 1 = Some '*' then begin
      (* Nested comment; a string inside a comment hides any close-comment
         sequence it contains. *)
      let start_line = !line in
      let start = !i + 2 in
      i := start;
      let depth = ref 1 in
      while !depth > 0 && !i < n do
        if src.[!i] = '(' && peek 1 = Some '*' then begin
          incr depth;
          i := !i + 2
        end
        else if src.[!i] = '*' && peek 1 = Some ')' then begin
          decr depth;
          i := !i + 2
        end
        else if src.[!i] = '"' then begin
          incr i;
          skip_string_body ()
        end
        else begin
          if src.[!i] = '\n' then incr line;
          incr i
        end
      done;
      let stop = if !depth = 0 then !i - 2 else !i in
      emit (Comment (String.sub src start (max 0 (stop - start)))) start_line
    end
    else if c = '"' then begin
      let start_line = !line in
      incr i;
      skip_string_body ();
      emit String_lit start_line
    end
    else if c = '{' then begin
      (* Quoted string literal [{id|...|id}] or plain brace. The grammar
         allows only lowercase letters and underscores in the delimiter;
         accepting digits would turn bigarray access like [m.{1}] followed
         by [|] pipes into an unterminated string. *)
      let j = ref (!i + 1) in
      while !j < n && is_lower src.[!j] do
        incr j
      done;
      if !j < n && src.[!j] = '|' then begin
        let delim = String.sub src (!i + 1) (!j - !i - 1) in
        let closing = "|" ^ delim ^ "}" in
        let close_len = String.length closing in
        let start_line = !line in
        i := !j + 1;
        let fin = ref false in
        while (not !fin) && !i < n do
          if
            !i + close_len <= n
            && String.equal (String.sub src !i close_len) closing
          then begin
            i := !i + close_len;
            fin := true
          end
          else begin
            if src.[!i] = '\n' then incr line;
            incr i
          end
        done;
        emit String_lit start_line
      end
      else begin
        emit (Op "{") !line;
        incr i
      end
    end
    else if c = '\'' then begin
      (* Char literal vs type variable / ident-trailing quote. *)
      let start_line = !line in
      match peek 1 with
      | Some '\\' ->
        (* Escape: consume until closing quote. *)
        i := !i + 2;
        while !i < n && src.[!i] <> '\'' do
          incr i
        done;
        if !i < n then incr i;
        emit Char_lit start_line
      | Some _ when peek 2 = Some '\'' ->
        i := !i + 3;
        emit Char_lit start_line
      | _ ->
        (* Type variable ['a]: consume quote plus identifier characters. *)
        incr i;
        while !i < n && is_ident_char src.[!i] do
          incr i
        done
    end
    else if is_digit c then begin
      let start_line = !line in
      let start = !i in
      let is_float = ref false in
      let hex = c = '0' && (peek 1 = Some 'x' || peek 1 = Some 'X') in
      if hex then i := !i + 2;
      let continue = ref true in
      while !continue && !i < n do
        let d = src.[!i] in
        if is_digit d || d = '_'
           || (hex
               && ((d >= 'a' && d <= 'f') || (d >= 'A' && d <= 'F')))
        then incr i
        else if d = '.' then begin
          is_float := true;
          incr i
        end
        else if (not hex) && (d = 'e' || d = 'E') then begin
          is_float := true;
          incr i;
          (match peek 0 with
          | Some ('+' | '-') -> incr i
          | _ -> ())
        end
        else continue := false
      done;
      let text = String.sub src start (!i - start) in
      emit (if !is_float then Float_lit text else Int_lit text) start_line
    end
    else if is_lower c || is_upper c then begin
      let start_line = !line in
      let start = !i in
      while !i < n && is_ident_char src.[!i] do
        incr i
      done;
      let text = String.sub src start (!i - start) in
      emit (if is_upper c then Uident text else Ident text) start_line
    end
    else if is_single_punct c then begin
      emit (Op (String.make 1 c)) !line;
      incr i
    end
    else if is_symbol_char c then begin
      let start_line = !line in
      let start = !i in
      while !i < n && is_symbol_char src.[!i] do
        incr i
      done;
      emit (Op (String.sub src start (!i - start))) start_line
    end
    else incr i
  done;
  List.rev !tokens
