let text findings =
  let buf = Buffer.create 256 in
  List.iter
    (fun f ->
      Buffer.add_string buf (Finding.to_string f);
      Buffer.add_char buf '\n')
    findings;
  (match findings with
  | [] -> Buffer.add_string buf "cold_lint: clean\n"
  | fs ->
    Buffer.add_string buf
      (Printf.sprintf "cold_lint: %d violation(s)\n" (List.length fs)));
  Buffer.contents buf

let json findings =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_string buf ",";
      Buffer.add_string buf "\n  ";
      Buffer.add_string buf (Finding.to_json f))
    findings;
  if findings <> [] then Buffer.add_char buf '\n';
  Buffer.add_string buf "]\n";
  Buffer.contents buf
