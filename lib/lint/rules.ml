type context = { path : string; mli_exists : bool option }

type t = {
  name : string;
  summary : string;
  rationale : string;
  applies : string -> bool;
  check : context -> Lexer.token array -> Finding.t list;
}

(* --- path scopes ------------------------------------------------------------ *)

let components path =
  String.split_on_char '/' path
  |> List.concat_map (String.split_on_char '\\')
  |> List.filter (fun c -> c <> "" && c <> ".")

let dir_components path =
  match List.rev (components path) with [] -> [] | _ :: dirs -> List.rev dirs

let in_dir d path = List.mem d (dir_components path)

let basename path =
  match List.rev (components path) with [] -> "" | b :: _ -> b

let is_ml path = Filename.check_suffix path ".ml"

let everywhere (_ : string) = true
let lib_only path = in_dir "lib" path
let lib_and_bin path = in_dir "lib" path || in_dir "bin" path

(* lib/serve is the daemon layer: the one place in lib/ where sockets and
   service-time clocks are legitimate (payloads stay deterministic — the
   clock only feeds the stats counters). *)
let serve_scope path = in_dir "lib" path && in_dir "serve" path
let outside_timed path = not (in_dir "bench" path) && not (serve_scope path)

let is_dune path = basename path = "dune"

(* --- token utilities -------------------------------------------------------- *)

(* Rules match against code tokens only; comments never participate in
   sequence patterns. *)
let code_tokens ts =
  Array.of_list
    (List.filter
       (fun (t : Lexer.token) ->
         match t.Lexer.kind with Lexer.Comment _ -> false | _ -> true)
       (Array.to_list ts))

let kind_at (code : Lexer.token array) i =
  if i >= 0 && i < Array.length code then Some code.(i).Lexer.kind else None

let is_float_lit = function Some (Lexer.Float_lit _) -> true | _ -> false

let finding ~rule ~(ctx : context) ~line message =
  Finding.make ~rule ~file:ctx.path ~line message

(* --- float-identifier inference ---------------------------------------------- *)

(* A lightweight intra-file pass that tracks let-bound identifiers whose
   float-ness is syntactically evident: float annotations, float-literal
   right-hand sides, results of [float_of_int]/[sqrt]/[Float.*], and float
   arithmetic chains. The generalized min/max and float-eq rules consult
   this set so [min x y] on inferred floats is caught without a type
   checker. Shadowing a tracked name with a visibly non-float binding
   removes it again, so the set stays per-file sound enough for linting. *)

module SS = Set.Make (String)

let float_constants =
  SS.of_list
    [ "infinity"; "neg_infinity"; "nan"; "max_float"; "min_float";
      "epsilon_float" ]

(* Stdlib functions that always return float. *)
let float_builtins =
  SS.of_list
    [ "sqrt"; "exp"; "log"; "log10"; "expm1"; "log1p"; "cos"; "sin"; "tan";
      "acos"; "asin"; "atan"; "atan2"; "cosh"; "sinh"; "tanh"; "ceil";
      "floor"; "abs_float"; "mod_float"; "float_of_int"; "float_of_string";
      "float"; "ldexp"; "copysign" ]

(* Float-module members that return float (not [equal]/[compare]/[to_int]). *)
let float_module_fns =
  SS.of_list
    [ "of_int"; "of_string"; "abs"; "neg"; "add"; "sub"; "mul"; "div"; "rem";
      "fma"; "succ"; "pred"; "sqrt"; "cbrt"; "exp"; "exp2"; "log"; "log10";
      "log2"; "expm1"; "log1p"; "pow"; "cos"; "sin"; "tan"; "acos"; "asin";
      "atan"; "atan2"; "hypot"; "cosh"; "sinh"; "tanh"; "trunc"; "round";
      "ceil"; "floor"; "copy_sign"; "min"; "max"; "min_num"; "max_num";
      "nan"; "infinity"; "neg_infinity"; "pi"; "epsilon"; "max_float";
      "min_float" ]

let float_operator = function
  | Some (Lexer.Op ("+." | "-." | "*." | "/." | "**")) -> true
  | _ -> false

let binding_break = function
  | Some (Lexer.Ident ("in" | "let" | "and" | "done" | "then" | "else"))
  | Some (Lexer.Op (";" | ";;" | ")" | "]" | "}" | ","))
  | None -> true
  | _ -> false

(* Does the expression starting at [j] syntactically denote a float? *)
let rec rhs_is_float fids code j =
  match kind_at code j with
  | Some (Lexer.Op ("(" | "-" | "-." | "+." | "+" | "~-." )) ->
    rhs_is_float fids code (j + 1)
  | Some (Lexer.Float_lit _) -> true
  | Some (Lexer.Ident s) when SS.mem s float_constants -> true
  | Some (Lexer.Ident s) when SS.mem s float_builtins -> true
  | Some (Lexer.Uident "Float") ->
    kind_at code (j + 1) = Some (Lexer.Op ".")
    && (match kind_at code (j + 2) with
       | Some (Lexer.Ident f) -> SS.mem f float_module_fns
       | _ -> false)
  | Some (Lexer.Ident s) when SS.mem s fids ->
    (* A known float ident: an alias binding, or the head of a float
       arithmetic chain. *)
    float_operator (kind_at code (j + 1)) || binding_break (kind_at code (j + 1))
  | _ -> false

let float_idents code =
  let fids = ref SS.empty in
  let n = Array.length code in
  for i = 0 to n - 1 do
    (match (kind_at code i, kind_at code (i + 1)) with
    (* [let x = <float rhs>] / [and x = <float rhs>]; a non-float rebind
       evicts a stale entry. *)
    | Some (Lexer.Ident ("let" | "and")), Some (Lexer.Ident x)
      when kind_at code (i + 2) = Some (Lexer.Op "=") ->
      if rhs_is_float !fids code (i + 3) then fids := SS.add x !fids
      else fids := SS.remove x !fids
    (* [let x : float = …]. *)
    | Some (Lexer.Ident ("let" | "and")), Some (Lexer.Ident x)
      when kind_at code (i + 2) = Some (Lexer.Op ":")
           && kind_at code (i + 3) = Some (Lexer.Ident "float") ->
      fids := SS.add x !fids
    (* Annotated pattern or parameter: [(x : float)]. *)
    | Some (Lexer.Op "("), Some (Lexer.Ident x)
      when kind_at code (i + 2) = Some (Lexer.Op ":")
           && kind_at code (i + 3) = Some (Lexer.Ident "float")
           && kind_at code (i + 4) = Some (Lexer.Op ")") ->
      fids := SS.add x !fids
    | _ -> ())
  done;
  !fids

(* --- no-stdlib-random ------------------------------------------------------- *)

let check_stdlib_random ctx ts =
  let code = code_tokens ts in
  let acc = ref [] in
  Array.iteri
    (fun _ (t : Lexer.token) ->
      match t.Lexer.kind with
      | Lexer.Uident "Random" ->
        acc :=
          finding ~rule:"no-stdlib-random" ~ctx ~line:t.Lexer.line
            "Stdlib.Random is seeded globally and not splittable; draw from \
             Cold_prng.Prng so runs stay reproducible"
          :: !acc
      | _ -> ())
    code;
  !acc

(* --- no-wall-clock ---------------------------------------------------------- *)

let wall_clock_calls =
  [ ("Sys", "time"); ("Unix", "gettimeofday"); ("Unix", "time");
    ("Unix", "localtime"); ("Unix", "gmtime") ]

let check_wall_clock ctx ts =
  let code = code_tokens ts in
  let acc = ref [] in
  for i = 0 to Array.length code - 3 do
    match (code.(i).Lexer.kind, code.(i + 1).Lexer.kind, code.(i + 2).Lexer.kind)
    with
    | Lexer.Uident m, Lexer.Op ".", Lexer.Ident f
      when List.mem (m, f) wall_clock_calls ->
      acc :=
        finding ~rule:"no-wall-clock" ~ctx ~line:code.(i).Lexer.line
          (Printf.sprintf
             "%s.%s reads the wall clock; outputs must depend only on the \
              seed (timing belongs in bench/)"
             m f)
        :: !acc
    | _ -> ()
  done;
  !acc

(* --- no-polymorphic-compare ------------------------------------------------- *)

let check_poly_compare ctx ts =
  let code = code_tokens ts in
  let acc = ref [] in
  let flag line =
    acc :=
      finding ~rule:"no-polymorphic-compare" ~ctx ~line
        "polymorphic compare silently depends on memory representation; use \
         a typed comparator (Int.compare, Float.compare, a record comparator)"
      :: !acc
  in
  Array.iteri
    (fun i (t : Lexer.token) ->
      match t.Lexer.kind with
      | Lexer.Ident "compare" -> (
        let prev = kind_at code (i - 1) in
        let next = kind_at code (i + 1) in
        let qualified = prev = Some (Lexer.Op ".") in
        let poly_module =
          qualified
          && (kind_at code (i - 2) = Some (Lexer.Uident "Stdlib")
             || kind_at code (i - 2) = Some (Lexer.Uident "Poly"))
        in
        let is_definition =
          match prev with
          | Some (Lexer.Ident ("let" | "and" | "rec" | "method" | "val" | "external"))
            -> true
          | _ -> false
        in
        let is_label =
          prev = Some (Lexer.Op "~")
          ||
          match next with
          | Some (Lexer.Op op) -> String.length op > 0 && op.[0] = ':'
          | _ -> false
        in
        if poly_module then flag t.Lexer.line
        else if (not qualified) && (not is_definition) && not is_label then
          flag t.Lexer.line)
      | _ -> ())
    code;
  !acc

(* --- no-polymorphic-minmax --------------------------------------------------- *)

(* Float detection: a float literal, a well-known float constant, or an
   identifier the intra-file inference pass ({!float_idents}) resolved to
   float. The inference covers annotations, float-literal bindings and
   [float_of_int]/[Float.*] results; floats visible only through module
   interfaces still escape — a merlin-backed mode remains future work. *)
let floatish_token fids = function
  | Some (Lexer.Float_lit _) -> true
  | Some (Lexer.Ident s) when SS.mem s float_constants -> true
  | Some (Lexer.Ident s) when SS.mem s fids -> true
  | _ -> false

(* Stop scanning at tokens that end the argument list of a simple
   application, so floats in a later expression cannot trigger a match. *)
let argument_window_break = function
  | Some (Lexer.Op (";" | "|" | "->" | ")" | "]" | "}" | "," | "<-" | ":="))
  | Some
      (Lexer.Ident
        ("then" | "else" | "in" | "do" | "done" | "with" | "when" | "and")) ->
    true
  | None -> true
  | _ -> false

let check_poly_minmax ctx ts =
  let code = code_tokens ts in
  let fids = float_idents code in
  let acc = ref [] in
  let flag line name =
    acc :=
      finding ~rule:"no-polymorphic-minmax" ~ctx ~line
        (Printf.sprintf
           "polymorphic '%s' on float-looking operands compares boxed \
            representations; use Float.%s (explicit NaN/-0. semantics, no \
            polymorphic dispatch)"
           name
           (match name with "compare" -> "compare" | n -> n))
      :: !acc
  in
  Array.iteri
    (fun i (t : Lexer.token) ->
      match t.Lexer.kind with
      | Lexer.Ident (("min" | "max" | "compare") as name) -> (
        let prev = kind_at code (i - 1) in
        let next = kind_at code (i + 1) in
        let qualified = prev = Some (Lexer.Op ".") in
        let is_definition =
          match prev with
          | Some (Lexer.Ident ("let" | "and" | "rec" | "method" | "val" | "external"))
            -> true
          | _ -> false
        in
        let is_label =
          prev = Some (Lexer.Op "~")
          ||
          match next with
          | Some (Lexer.Op op) -> String.length op > 0 && op.[0] = ':'
          | _ -> false
        in
        (* [max = ...] is a binding or record field, never an application. *)
        let is_binding = next = Some (Lexer.Op "=") in
        if not (qualified || is_definition || is_label || is_binding) then begin
          let rec scan j =
            if j > i + 4 then ()
            else if argument_window_break (kind_at code j) then ()
            else if floatish_token fids (kind_at code j) then
              flag t.Lexer.line name
            else scan (j + 1)
          in
          scan (i + 1)
        end)
      | _ -> ())
    code;
  !acc

(* --- no-failwith-in-lib ----------------------------------------------------- *)

let check_failwith ctx ts =
  let code = code_tokens ts in
  let acc = ref [] in
  Array.iteri
    (fun i (t : Lexer.token) ->
      match t.Lexer.kind with
      | Lexer.Ident "failwith"
        when kind_at code (i - 1) <> Some (Lexer.Op ".") ->
        acc :=
          finding ~rule:"no-failwith-in-lib" ~ctx ~line:t.Lexer.line
            "library errors must be typed: return a result or raise an \
             exception declared in the .mli (failwith hides the contract)"
          :: !acc
      | _ -> ())
    code;
  !acc

(* --- mli-required ----------------------------------------------------------- *)

let check_mli ctx (_ : Lexer.token array) =
  match ctx.mli_exists with
  | Some false ->
    [ finding ~rule:"mli-required" ~ctx ~line:1
        "library modules need a .mli: an explicit interface is the contract \
         the lint rules (and reviewers) check errors and determinism against" ]
  | _ -> []

(* --- no-naked-float-eq ------------------------------------------------------ *)

(* [=] doubles as binding syntax, so only flag it when backward context says
   we are inside an expression comparison. [<>], [==] and [!=] are always
   comparisons. *)
let comparison_context code i =
  let rec scan j steps =
    if j < 0 || steps > 40 then false
    else
      match code.(j).Lexer.kind with
      | Lexer.Ident
          ( "if" | "when" | "while" | "then" | "else" | "begin" | "do" | "in"
          | "not" ) -> true
      | Lexer.Op ("&&" | "||" | "->") -> true
      | Lexer.Ident
          ( "let" | "and" | "with" | "fun" | "function" | "module" | "type"
          | "method" | "val" | "mutable" ) -> false
      | Lexer.Op ("{" | ";" | "," | "|" | "~" | "?" | "<-" | ":=") -> false
      | _ -> scan (j - 1) (steps + 1)
  in
  scan (i - 1) 0

let check_float_eq ctx ts =
  let code = code_tokens ts in
  let fids = float_idents code in
  let acc = ref [] in
  let flag line op what =
    acc :=
      finding ~rule:"no-naked-float-eq" ~ctx ~line
        (Printf.sprintf
           "'%s' on %s: exact float equality is representation-dependent; \
            use Float.equal for intentional exact tests or compare against \
            an epsilon"
           op what)
      :: !acc
  in
  let float_ident = function
    | Some (Lexer.Ident s) -> SS.mem s fids || SS.mem s float_constants
    | _ -> false
  in
  Array.iteri
    (fun i (t : Lexer.token) ->
      match t.Lexer.kind with
      | Lexer.Op (("=" | "<>" | "==" | "!=") as op) ->
        let prev = kind_at code (i - 1) in
        let next = kind_at code (i + 1) in
        let prev_float = is_float_lit prev in
        let next_float = is_float_lit next in
        if prev_float || next_float then begin
          if op <> "=" then flag t.Lexer.line op "a float literal"
          else if prev_float || comparison_context code i then
            flag t.Lexer.line op "a float literal"
        end
        else if float_ident prev || float_ident next then begin
          (* Inferred operands: [=] only counts inside a comparison, so
             alias bindings ([let y = x]) never fire. *)
          let name =
            match (if float_ident prev then prev else next) with
            | Some (Lexer.Ident s) -> Printf.sprintf "'%s' (inferred float)" s
            | _ -> "an inferred float"
          in
          if op <> "=" || comparison_context code i then flag t.Lexer.line op name
        end
      | _ -> ())
    code;
  !acc

(* --- hashtbl-iteration-order ------------------------------------------------- *)

(* [Hashtbl.iter]/[fold] present bindings in unspecified hash order. A fold
   always feeds an accumulator, so it is a candidate unless the call sits
   inside a canonicalizing sort ([List.sort … (Hashtbl.fold …)]) or one of
   the blessed [Cold_util.Tbl] wrappers. An iter is a candidate only when
   its body visibly accumulates (list cons, ref assignment) or writes to an
   output channel — per-binding in-place mutation ([f.field <- …]) is
   order-insensitive and stays quiet. *)

let sort_markers =
  [ "sort"; "sort_uniq"; "stable_sort"; "fast_sort"; "sorted_bindings";
    "sorted_keys"; "iter_sorted"; "fold_sorted" ]

(* Did a sort application open just before [i], with no statement boundary
   in between? Catches [List.sort cmp (Hashtbl.fold …)] even when [cmp] is
   a multi-token comparator lambda. *)
let backward_sorted code i =
  let rec scan j steps =
    if j < 0 || steps > 60 then false
    else
      match code.(j).Lexer.kind with
      | Lexer.Ident s when List.mem s sort_markers -> true
      | Lexer.Ident ("let" | "in" | "do" | "done" | "begin" | "then" | "else")
        -> false
      | Lexer.Op (";" | ";;" | "<-" | ":=") -> false
      | _ -> scan (j - 1) (steps + 1)
  in
  scan (i - 1) 0

let output_idents =
  [ "output_string"; "output_char"; "output_value"; "print_string";
    "print_endline"; "print_int"; "print_float"; "print_char";
    "print_newline"; "prerr_string"; "prerr_endline" ]

(* Scan the argument following [Hashtbl.iter]/[iteri] — normally a [fun]
   lambda — for accumulation or output markers, stopping when the argument
   list closes or a statement boundary is reached. *)
let iter_body_accumulates code i =
  let n = Array.length code in
  let rec scan j depth steps =
    if j >= n || steps > 200 then false
    else
      match code.(j).Lexer.kind with
      | Lexer.Op ("(" | "[" | "{") -> scan (j + 1) (depth + 1) (steps + 1)
      | Lexer.Op (")" | "]" | "}") ->
        if depth <= 1 then false else scan (j + 1) (depth - 1) (steps + 1)
      | Lexer.Ident "begin" -> scan (j + 1) (depth + 1) (steps + 1)
      | Lexer.Ident "end" ->
        if depth <= 1 then false else scan (j + 1) (depth - 1) (steps + 1)
      | Lexer.Op ("::" | ":=") -> true
      | Lexer.Uident ("Buffer" | "Printf" | "Format") -> true
      | Lexer.Ident s when List.mem s output_idents -> true
      | Lexer.Op ";" when depth = 0 -> false
      | _ -> scan (j + 1) depth (steps + 1)
  in
  scan (i + 1) 0 0

let check_hashtbl_order ctx ts =
  let code = code_tokens ts in
  let acc = ref [] in
  let flag line what fix =
    acc :=
      finding ~rule:"hashtbl-iteration-order" ~ctx ~line
        (Printf.sprintf
           "%s visits bindings in unspecified hash order, so the result \
            depends on insertion history; %s"
           what fix)
      :: !acc
  in
  Array.iteri
    (fun i (t : Lexer.token) ->
      match t.Lexer.kind with
      | Lexer.Uident "Hashtbl"
        when kind_at code (i + 1) = Some (Lexer.Op ".") -> (
        match kind_at code (i + 2) with
        | Some (Lexer.Ident (("fold" | "to_seq" | "to_seq_keys" | "to_seq_values") as f))
          ->
          if not (backward_sorted code i) then
            flag t.Lexer.line
              (Printf.sprintf "Hashtbl.%s feeding an accumulator" f)
              "sort first (Cold_util.Tbl.fold_sorted / sorted_bindings) or \
               sort the result before it is consumed"
        | Some (Lexer.Ident (("iter" | "iteri") as f)) ->
          if iter_body_accumulates code (i + 2) then
            flag t.Lexer.line
              (Printf.sprintf
                 "Hashtbl.%s with an accumulating or output-writing body" f)
              "iterate in canonical key order (Cold_util.Tbl.iter_sorted)"
        | _ -> ())
      | _ -> ())
    code;
  !acc

(* --- unix-dependency-fence --------------------------------------------------- *)

(* The fence has two faces: [Unix.]-qualified code (and [open Unix]) in
   OCaml sources, and a [unix] library dependency in dune stanzas — the
   walker hands dune files to the token rules too, and the OCaml lexer
   tokenizes their sexps well enough to spot a bare [unix] atom. In dune
   files a dotted suffix like [notty.unix] names a sublibrary of something
   else and is not the unix dependency itself. *)

let check_unix_fence ctx ts =
  let code = code_tokens ts in
  let acc = ref [] in
  if is_dune ctx.path then
    Array.iteri
      (fun i (t : Lexer.token) ->
        match t.Lexer.kind with
        | Lexer.Ident "unix" when kind_at code (i - 1) <> Some (Lexer.Op ".") ->
          acc :=
            finding ~rule:"unix-dependency-fence" ~ctx ~line:t.Lexer.line
              "unix dependency in a lib/ dune stanza: core libraries must \
               stay free of sockets and clocks so synthesis is a pure \
               function of the seed; daemon code belongs in lib/serve"
            :: !acc
        | _ -> ())
      code
  else
    Array.iter
      (fun (t : Lexer.token) ->
        match t.Lexer.kind with
        | Lexer.Uident "Unix" ->
          acc :=
            finding ~rule:"unix-dependency-fence" ~ctx ~line:t.Lexer.line
              "Unix.* reference outside lib/serve: core libraries must not \
               touch sockets, clocks or processes; put daemon code in \
               lib/serve and keep the computation pure"
            :: !acc
        | _ -> ())
      code;
  !acc

(* --- todo-tracker ----------------------------------------------------------- *)

let todo_markers = [ "TODO"; "FIXME"; "XXX" ]

let find_bare_marker text =
  (* A marker counts as tracked when immediately followed by '(' — e.g.
     TODO(owner) or FIXME(#42). *)
  let n = String.length text in
  let is_word_char c =
    (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')
    || c = '_'
  in
  let rec try_marker = function
    | [] -> None
    | m :: rest ->
      let ml = String.length m in
      let rec scan i =
        if i + ml > n then try_marker rest
        else if
          String.sub text i ml = m
          && (i = 0 || not (is_word_char text.[i - 1]))
          && (i + ml >= n || text.[i + ml] <> '(')
          && (i + ml >= n || not (is_word_char text.[i + ml]))
        then Some m
        else scan (i + 1)
      in
      scan 0
  in
  try_marker todo_markers

let check_todo ctx ts =
  let acc = ref [] in
  Array.iter
    (fun (t : Lexer.token) ->
      match t.Lexer.kind with
      | Lexer.Comment text -> (
        match find_bare_marker text with
        | Some m ->
          acc :=
            finding ~rule:"todo-tracker" ~ctx ~line:t.Lexer.line
              (Printf.sprintf
                 "untracked %s: attach an owner or issue, e.g. %s(name), so \
                  stale markers cannot silently accumulate"
                 m m)
            :: !acc
        | None -> ())
      | _ -> ())
    ts;
  !acc

(* --- magic-cost-constant ---------------------------------------------------- *)

let cost_params = [ "k0"; "k1"; "k2"; "k3" ]

(* Value position may open with parens or unary minus before the literal. *)
let rec literal_after code i =
  match kind_at code i with
  | Some (Lexer.Op ("(" | "-" | "-." | "+." | "+")) -> literal_after code (i + 1)
  | Some (Lexer.Int_lit _ | Lexer.Float_lit _) -> true
  | _ -> false

let check_magic_cost ctx ts =
  let code = code_tokens ts in
  let acc = ref [] in
  let flag line k =
    acc :=
      finding ~rule:"magic-cost-constant" ~ctx ~line
        (Printf.sprintf
           "magic literal for cost parameter %s: name it or take it from \
            Presets so the paper's parameter points stay in one place"
           k)
      :: !acc
  in
  Array.iteri
    (fun i (t : Lexer.token) ->
      match t.Lexer.kind with
      | Lexer.Ident k when List.mem k cost_params -> (
        let next = kind_at code (i + 1) in
        let labelled =
          kind_at code (i - 1) = Some (Lexer.Op "~")
          &&
          match next with
          | Some (Lexer.Op op) -> String.length op > 0 && op.[0] = ':'
          | _ -> false
        in
        let bound = next = Some (Lexer.Op "=") in
        if (labelled || bound) && literal_after code (i + 2) then
          flag t.Lexer.line k)
      | _ -> ())
    code;
  !acc

(* --- catalogue -------------------------------------------------------------- *)

let all =
  [
    {
      name = "no-stdlib-random";
      summary = "all randomness must flow through Cold_prng.Prng";
      rationale =
        "Stdlib.Random has hidden global state; a stray call desynchronizes \
         seeded ensembles without failing any test.";
      applies = everywhere;
      check = check_stdlib_random;
    };
    {
      name = "no-wall-clock";
      summary = "no Sys.time / Unix.gettimeofday outside bench/ and lib/serve";
      rationale =
        "Wall-clock reads make output depend on when a run happened, \
         breaking bit-reproducibility of synthesized topologies. lib/serve \
         is exempt alongside bench/: the daemon times requests for its \
         stats counters, but response payloads remain clock-free (the \
         replay tests pin this).";
      applies = outside_timed;
      check = check_wall_clock;
    };
    {
      name = "no-polymorphic-compare";
      summary = "use typed comparators instead of bare compare";
      rationale =
        "Polymorphic compare on records, tuples-of-floats or lazy values is \
         representation-dependent; canonical orderings (edge lists, GA \
         populations) must be typed to stay stable across refactors.";
      applies = lib_and_bin;
      check = check_poly_compare;
    };
    {
      name = "no-polymorphic-minmax";
      summary = "use Float.min/Float.max/Float.compare on float operands";
      rationale =
        "Polymorphic min/max/compare on floats dispatch on the boxed \
         representation and pin down no NaN or -0. semantics; the Float \
         module's versions are explicit and branch-free. Detection covers \
         float literals/constants in the argument window plus let-bound \
         identifiers whose float-ness is syntactically inferable \
         (annotations, float-literal bindings, float_of_int/Float.* \
         results).";
      applies = lib_and_bin;
      check = check_poly_minmax;
    };
    {
      name = "hashtbl-iteration-order";
      summary =
        "no Hashtbl.iter/fold feeding accumulators or output without a sort";
      rationale =
        "Hashtbl iteration order is a function of key hashes and insertion \
         history, not of the table's contents; folding it into a list, \
         accumulator or output channel silently makes results depend on \
         how the table was built. Iterate in canonical key order via \
         Cold_util.Tbl (the blessed wrapper) or sort the result.";
      applies =
        (fun p ->
          (* lib/util/tbl.ml hosts the one sanctioned raw fold the blessed
             wrappers are built from. *)
          lib_and_bin p && not (basename p = "tbl.ml" && in_dir "util" p));
      check = check_hashtbl_order;
    };
    {
      name = "no-failwith-in-lib";
      summary = "library errors must be typed results or declared exceptions";
      rationale =
        "failwith \"...\" turns every caller mistake into an untyped crash; \
         parsers and validators must expose errors callers can match on.";
      applies = lib_only;
      check = check_failwith;
    };
    {
      name = "mli-required";
      summary = "every lib/**/*.ml needs a sibling .mli";
      rationale =
        "Without an interface, internal helpers leak and the determinism \
         audit cannot tell the contract from the implementation.";
      applies = (fun p -> lib_only p && is_ml p);
      check = check_mli;
    };
    {
      name = "no-naked-float-eq";
      summary = "no =, <>, == or != against float literals";
      rationale =
        "Exact float comparison against literals hides rounding assumptions \
         that differ across optimization levels and platforms.";
      applies = lib_and_bin;
      check = check_float_eq;
    };
    {
      name = "unix-dependency-fence";
      summary = "no Unix.* code or unix dune dependency in lib/ outside lib/serve";
      rationale =
        "The synthesis core must be a pure function of context and seed: a \
         socket, clock or process call smuggled into lib/ makes results \
         environment-dependent and unreplayable. All daemon concerns — \
         sockets, select loops, service timing — are fenced into lib/serve \
         (whose payloads the replay tests still pin bit-for-bit). The rule \
         checks both OCaml sources (any Unix.* reference) and dune stanzas \
         (a unix library dependency).";
      applies =
        (fun p ->
          lib_only p && (not (serve_scope p))
          && (is_ml p || Filename.check_suffix p ".mli" || is_dune p));
      check = check_unix_fence;
    };
    {
      name = "todo-tracker";
      summary = "TODO/FIXME/XXX must carry an owner or issue reference";
      rationale =
        "Bare markers rot; tracked ones — TODO(name) — keep the backlog \
         auditable as the system scales.";
      applies = everywhere;
      check = check_todo;
    };
    {
      name = "magic-cost-constant";
      summary = "k0–k3 literals belong in presets.ml (or a named constant)";
      rationale =
        "The paper's cost-parameter points define every figure; scattering \
         literal k-values makes ensembles incomparable across modules.";
      applies = (fun p -> lib_only p && basename p <> "presets.ml");
      check = check_magic_cost;
    };
  ]

let find name = List.find_opt (fun r -> r.name = name) all

(* --- interprocedural (deep) rules --------------------------------------------- *)

(* Checked in lib/lint/taint.ml, which needs the whole-program call graph;
   catalogued here so --list-rules, --explain and suppression comments see
   one uniform rule namespace. Taint.rule_names must stay in sync (a unit
   test pins this). *)

type info = { iname : string; isummary : string; irationale : string }

let deep =
  [
    {
      iname = "nondet-taint";
      isummary =
        "no nondeterminism reachable from lib exports or Cold_par tasks";
      irationale =
        "A wall-clock read, Stdlib.Random draw, unordered Hashtbl traversal \
         or polymorphic compare buried three calls deep still makes the \
         caller's output depend on timing, hashing or insertion history. \
         The interprocedural pass propagates taint over the whole-program \
         call graph and reports every exported lib value or Cold_par \
         scheduling site that can transitively reach such a source, with \
         the full sink-to-source call chain. Cut the path, or suppress at \
         the source (silences every chain from it) or at the sink \
         (silences just that entry point).";
    };
    {
      iname = "par-unsync-mutation";
      isummary =
        "no unmediated toplevel mutable state written from pool tasks";
      irationale =
        "Work handed to Cold_par runs on several domains at once; a ref, \
         Hashtbl or mutable record field at module level written from task \
         code without Mutex/Atomic/Domain.DLS mediation is a data race — \
         results vary with domain interleaving even under a fixed seed. \
         Mediate the write or move the state into the task.";
    };
    {
      iname = "mutex-unbalanced";
      isummary = "Mutex.lock must reach Mutex.unlock or Mutex.protect";
      irationale =
        "A lock whose matching unlock is unreachable from the locking \
         definition deadlocks the pool on the first raising path. Prefer \
         Mutex.protect, which releases on exceptions.";
    };
  ]

let known name =
  find name <> None || List.exists (fun i -> i.iname = name) deep

let info name =
  match find name with
  | Some r -> Some { iname = r.name; isummary = r.summary; irationale = r.rationale }
  | None -> List.find_opt (fun i -> i.iname = name) deep
