(** The COLD lint rule set.

    Each rule is a token-level check over one source file, paired with a
    default path scope (per-directory configuration): reproducibility rules
    run everywhere, strictness rules run on library code only, and [bench/]
    is exempt from wall-clock checks. See [doc/LINTS.md] for the catalogue
    and the reproducibility rationale behind every rule. *)

type context = {
  path : string;  (** path as handed to the engine, used in findings *)
  mli_exists : bool option;
      (** [Some false] iff the file is a [.ml] whose sibling [.mli] is known
          to be missing; [None] when linting an in-memory string *)
}

type t = {
  name : string;  (** kebab-case rule id, used in suppression comments *)
  summary : string;  (** one-line description for [--list-rules] *)
  rationale : string;  (** why the rule matters for COLD *)
  applies : string -> bool;  (** default scope, from the file path *)
  check : context -> Lexer.token array -> Finding.t list;
}

val all : t list
(** Every token-level rule, in catalogue order. *)

val find : string -> t option
(** Look up a token-level rule by [name]. *)

type info = {
  iname : string;
  isummary : string;
  irationale : string;
}
(** Catalogue entry shared by token-level and interprocedural rules, for
    [--list-rules] and [--explain]. *)

val deep : info list
(** The interprocedural rules (checked by {!Taint}), catalogue order.
    Names must match [Taint.rule_names]; a unit test pins the two. *)

val known : string -> bool
(** [known name] is true for any rule — token-level or deep. Suppression
    comments and [--rules] validate against this. *)

val info : string -> info option
(** Catalogue info for any rule, token-level or deep. *)
