type entry = { efile : string; edef : Ast.def }

type t = {
  byname : (string, entry list) Hashtbl.t;
      (* key: "Mod.Sub.name"; entries in summary order *)
  mli_vals : (string, string list) Hashtbl.t;
      (* key: path without extension, e.g. "lib/net/routing" *)
}

let key parts = String.concat "." parts

let add_entry tab k e =
  let prev = Option.value ~default:[] (Hashtbl.find_opt tab.byname k) in
  Hashtbl.replace tab.byname k (prev @ [ e ])

let is_mli file = Filename.check_suffix file ".mli"

let build summaries =
  let tab = { byname = Hashtbl.create 256; mli_vals = Hashtbl.create 64 } in
  List.iter
    (fun (s : Ast.t) ->
      if is_mli s.Ast.file then
        Hashtbl.replace tab.mli_vals
          (Filename.remove_extension s.Ast.file)
          s.Ast.vals
      else
        List.iter
          (fun (d : Ast.def) ->
            if d.Ast.dname <> "_" then begin
              let e = { efile = s.Ast.file; edef = d } in
              add_entry tab
                (key ((s.Ast.modname :: d.Ast.dpath) @ [ d.Ast.dname ]))
                e;
              (* Nested definitions are also reachable without the file's
                 module prefix — [Internal.f] from inside the same file. *)
              if d.Ast.dpath <> [] then
                add_entry tab (key (d.Ast.dpath @ [ d.Ast.dname ])) e
            end)
          s.Ast.defs)
    summaries;
  tab

let lookup tab k =
  match Hashtbl.find_opt tab.byname k with
  | Some (e :: _) -> Some (e.efile, e.edef)
  | _ -> None

(* Try progressively shorter qualifier suffixes, always keeping at least one
   module component: [Cold_net.Incremental.f] → [Incremental.f]. *)
let resolve_qualified tab path name =
  let rec go = function
    | [] -> None
    | _ :: rest as p -> (
      match lookup tab (key (p @ [ name ])) with
      | Some _ as hit -> hit
      | None -> go rest)
  in
  go path

let expand_alias (s : Ast.t) path =
  match path with
  | m :: rest -> (
    match List.assoc_opt m s.Ast.maliases with
    | Some target -> target @ rest
    | None -> path)
  | [] -> []

let resolve tab (s : Ast.t) (r : Ast.ref_site) =
  match expand_alias s r.Ast.rpath with
  | [] -> (
    (* Same file first: latest binding at or before the reference wins
       (shadowing); otherwise the first one (recursive forward reference). *)
    let candidates =
      List.filter (fun (d : Ast.def) -> d.Ast.dname = r.Ast.rname) s.Ast.defs
    in
    let before =
      List.filter (fun (d : Ast.def) -> d.Ast.dline <= r.Ast.rline) candidates
    in
    let local =
      match (List.rev before, candidates) with
      | d :: _, _ -> Some (s.Ast.file, d)
      | [], d :: _ -> Some (s.Ast.file, d)
      | [], [] -> None
    in
    match local with
    | Some _ -> local
    | None ->
      List.fold_left
        (fun acc o ->
          match acc with
          | Some _ -> acc
          | None -> resolve_qualified tab o r.Ast.rname)
        None s.Ast.opens)
  | path -> resolve_qualified tab path r.Ast.rname

let exported tab (s : Ast.t) =
  match Hashtbl.find_opt tab.mli_vals (Filename.remove_extension s.Ast.file) with
  | Some vals -> vals
  | None ->
    List.filter_map
      (fun (d : Ast.def) ->
        if d.Ast.dpath = [] && d.Ast.dname <> "_" then Some d.Ast.dname
        else None)
      s.Ast.defs
