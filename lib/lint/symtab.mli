(** Cross-file symbol table: links per-file {!Ast} summaries into one
    namespace so references can be resolved to definitions.

    Resolution is deliberately suffix-based: a reference
    [Cold_net.Incremental.add_edge] matches the definition [add_edge] in
    [incremental.ml] by trying progressively shorter qualifier suffixes
    (library wrapper modules like [Cold_net] have no source file of their
    own). Module aliases ([module R = Routing]) are expanded one level, and
    unqualified references try the defining file first, then every
    [open]ed/[include]d module. Unresolved references (stdlib calls,
    binders, record fields) resolve to [None] and simply contribute no call
    edge. *)

type t

val build : Ast.t list -> t
(** [build summaries] indexes every definition of the [.ml] summaries.
    Interface summaries participate only through {!exported}. *)

val resolve : t -> Ast.t -> Ast.ref_site -> (string * Ast.def) option
(** [resolve tab summary ref] resolves a reference occurring in [summary]
    to [(file, def)]. Deterministic: ties are broken by summary order. *)

val exported : t -> Ast.t -> string list
(** Names visible through the module's interface: the sibling [.mli]'s
    [val]s when one was summarized, otherwise every module-level
    definition name. *)
