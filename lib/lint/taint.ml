let nondet_rule = "nondet-taint"
let par_mutation_rule = "par-unsync-mutation"
let mutex_rule = "mutex-unbalanced"
let rule_names = [ nondet_rule; par_mutation_rule; mutex_rule ]

(* Token rules whose findings seed the taint: (rule, id tag, short text). *)
let source_rules =
  [
    ("no-wall-clock", "wall-clock", "a wall-clock read");
    ("no-stdlib-random", "stdlib-random", "Stdlib.Random");
    ( "hashtbl-iteration-order", "hashtbl-order",
      "an unordered Hashtbl traversal" );
    ("no-polymorphic-compare", "poly-compare", "polymorphic compare");
  ]

type source = {
  snode : int;  (** definition containing the source site *)
  sline : int;  (** line of the source site itself *)
  stag : string;  (** stable kind tag, part of the finding id *)
  sdesc : string;  (** human text for the message *)
}

let in_lib file =
  List.mem "lib"
    (String.split_on_char '/' file
    |> List.concat_map (String.split_on_char '\\'))

let is_par_ref (r : Ast.ref_site) =
  (r.Ast.rname = "map" || r.Ast.rname = "map_array")
  &&
  match List.rev r.Ast.rpath with "Par" :: _ -> true | _ -> false

let hashtbl_rule_applies =
  match Rules.find "hashtbl-iteration-order" with
  | Some r -> r.Rules.applies
  | None -> fun _ -> false

(* --- source collection -------------------------------------------------------- *)

let token_rule_sources ~suppressed graph files =
  List.concat_map
    (fun (path, tokens) ->
      if Filename.check_suffix path ".mli" then []
      else
        let arr = Array.of_list tokens in
        let ctx = { Rules.path; mli_exists = None } in
        List.concat_map
          (fun (rule, tag, desc) ->
            match Rules.find rule with
            | Some r when r.Rules.applies path ->
              List.filter_map
                (fun (f : Finding.t) ->
                  if
                    suppressed ~rule ~file:path ~line:f.Finding.line
                    || suppressed ~rule:nondet_rule ~file:path
                         ~line:f.Finding.line
                  then None
                  else
                    match
                      Callgraph.node_of_line graph ~file:path
                        ~line:f.Finding.line
                    with
                    | Some node ->
                      Some
                        { snode = node; sline = f.Finding.line; stag = tag;
                          sdesc = desc }
                    | None -> None)
                (r.Rules.check ctx arr)
            | _ -> [])
          source_rules)
    files

(* Helper-wrapped Hashtbl iteration: [Hashtbl.iter helper tbl] where the
   named helper visibly accumulates or mutates — invisible to the
   token-level body scan, which only sees the helper's name. *)
let helper_iteration_sources ~suppressed tab graph =
  let nodes = Callgraph.nodes graph in
  let acc = ref [] in
  Array.iteri
    (fun i nd ->
      if hashtbl_rule_applies nd.Callgraph.nfile then
        List.iter
          (fun (cb : Ast.ref_site) ->
            match Symtab.resolve tab (Callgraph.summary_of graph i) cb with
            | Some (_, d) when d.Ast.daccumulates || d.Ast.dmutates <> [] ->
              if
                not
                  (suppressed ~rule:"hashtbl-iteration-order"
                     ~file:nd.Callgraph.nfile ~line:cb.Ast.rline
                  || suppressed ~rule:nondet_rule ~file:nd.Callgraph.nfile
                       ~line:cb.Ast.rline)
              then
                acc :=
                  {
                    snode = i;
                    sline = cb.Ast.rline;
                    stag = "hashtbl-helper";
                    sdesc =
                      Printf.sprintf
                        "an unordered Hashtbl traversal through helper '%s'"
                        cb.Ast.rname;
                  }
                  :: !acc
            | _ -> ())
          nd.Callgraph.ndef.Ast.dcallbacks)
    nodes;
  List.rev !acc

(* --- roots -------------------------------------------------------------------- *)

type roots = { exported : bool array; par_entry : bool array }

let compute_roots tab graph =
  let nodes = Callgraph.nodes graph in
  let n = Array.length nodes in
  let exported = Array.make (max n 1) false in
  let par_entry = Array.make (max n 1) false in
  Array.iteri
    (fun i nd ->
      let d = nd.Callgraph.ndef in
      if
        in_lib nd.Callgraph.nfile && d.Ast.dpath = []
        && List.mem d.Ast.dname
             (Symtab.exported tab (Callgraph.summary_of graph i))
      then exported.(i) <- true;
      if List.exists is_par_ref d.Ast.drefs then par_entry.(i) <- true)
    nodes;
  { exported; par_entry }

(* --- nondet-taint ------------------------------------------------------------- *)

let chain_of graph next ~root ~src ~src_line =
  let nodes = Callgraph.nodes graph in
  let rec walk v acc =
    if v = src || next.(v) < 0 then List.rev (v :: acc)
    else walk next.(v) (v :: acc)
  in
  let path = walk root [] in
  List.map
    (fun v ->
      let nd = nodes.(v) in
      {
        Finding.cfile = nd.Callgraph.nfile;
        cline = (if v = src then src_line else nd.Callgraph.nline);
        cname = nd.Callgraph.nqual;
      })
    path

let nondet_findings ~suppressed roots graph sources =
  let nodes = Callgraph.nodes graph in
  (* Collapse duplicate sources: one per (definition, kind), earliest site. *)
  let sources =
    List.sort
      (fun a b ->
        match Int.compare a.snode b.snode with
        | 0 -> (
          match String.compare a.stag b.stag with
          | 0 -> Int.compare a.sline b.sline
          | c -> c)
        | c -> c)
      sources
  in
  let sources =
    List.fold_left
      (fun acc s ->
        match acc with
        | prev :: _ when prev.snode = s.snode && prev.stag = s.stag -> acc
        | _ -> s :: acc)
      [] sources
    |> List.rev
  in
  List.concat_map
    (fun s ->
      let dist, next = Callgraph.reverse_bfs graph s.snode in
      (* One finding per (sink file, source): the nearest root in each file
         represents it, so baselines stay small and line-stable. *)
      let best = Hashtbl.create 8 in
      let files_in_order = ref [] in
      Array.iteri
        (fun i nd ->
          if (roots.exported.(i) || roots.par_entry.(i)) && dist.(i) >= 0 then begin
            let f = nd.Callgraph.nfile in
            match Hashtbl.find_opt best f with
            | Some j when dist.(j) <= dist.(i) -> ()
            | Some _ -> Hashtbl.replace best f i
            | None ->
              Hashtbl.replace best f i;
              files_in_order := f :: !files_in_order
          end)
        nodes;
      List.filter_map
        (fun f ->
          match Hashtbl.find_opt best f with
          | None -> None
          | Some root ->
            let nd = nodes.(root) in
            if
              suppressed ~rule:nondet_rule ~file:nd.Callgraph.nfile
                ~line:nd.Callgraph.nline
            then None
            else
              let srcnd = nodes.(s.snode) in
              let role =
                match (roots.exported.(root), roots.par_entry.(root)) with
                | _, true -> "schedules Cold_par tasks"
                | true, false -> "is exported from lib"
                | false, false -> "is a sink"
              in
              let msg =
                Printf.sprintf
                  "'%s' %s and can transitively reach %s in '%s' (%s); a \
                   seeded run is no longer reproducible — cut the path or \
                   suppress at the source or this sink"
                  nd.Callgraph.nqual role s.sdesc srcnd.Callgraph.nqual
                  srcnd.Callgraph.nfile
              in
              let id =
                Printf.sprintf "%s<-%s#%s" nd.Callgraph.nqual
                  srcnd.Callgraph.nqual s.stag
              in
              Some
                (Finding.make ~rule:nondet_rule ~file:nd.Callgraph.nfile
                   ~line:nd.Callgraph.nline ~id
                   ~chain:
                     (chain_of graph next ~root ~src:s.snode
                        ~src_line:s.sline)
                   msg))
        (List.rev !files_in_order))
    sources

(* --- par-unsync-mutation ------------------------------------------------------ *)

let par_mutation_findings ~suppressed tab roots graph =
  let nodes = Callgraph.nodes graph in
  let n = Array.length nodes in
  let mediates i = nodes.(i).Callgraph.ndef.Ast.dmediates in
  (* Task closures are the callees of a scheduling definition: the
     scheduler's own body runs sequentially on the caller domain, so only
     what it hands to the pool (over-approximated as every reference it
     makes) is parallel context. *)
  let entry = ref [] in
  let owner = Array.make (max n 1) (-1) in
  Array.iteri
    (fun i _ ->
      if roots.par_entry.(i) then
        List.iter
          (fun j ->
            if (not (mediates j)) && owner.(j) < 0 then begin
              owner.(j) <- i;
              entry := j :: !entry
            end)
          (Callgraph.succ graph i))
    nodes;
  let entry = List.rev !entry in
  let parent = Array.make (max n 1) (-1) in
  let seen = Array.make (max n 1) false in
  let q = Queue.create () in
  List.iter (fun j -> Queue.add j q) entry;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    if not seen.(v) then begin
      seen.(v) <- true;
      List.iter
        (fun w ->
          if (not seen.(w)) && not (mediates w) then begin
            if parent.(w) < 0 then parent.(w) <- v;
            Queue.add w q
          end)
        (Callgraph.succ graph v)
    end
  done;
  let chain_to v =
    let rec up v acc =
      if parent.(v) < 0 then v :: acc else up parent.(v) (v :: acc)
    in
    let path = up v [] in
    let head =
      match path with
      | first :: _ when owner.(first) >= 0 -> owner.(first) :: path
      | _ -> path
    in
    List.map
      (fun i ->
        let nd = nodes.(i) in
        {
          Finding.cfile = nd.Callgraph.nfile;
          cline = nd.Callgraph.nline;
          cname = nd.Callgraph.nqual;
        })
      head
  in
  let acc = ref [] in
  Array.iteri
    (fun i nd ->
      if seen.(i) then
        List.iter
          (fun (m : Ast.ref_site) ->
            match Symtab.resolve tab (Callgraph.summary_of graph i) m with
            | Some (gfile, g) when g.Ast.dmutable_global ->
              if
                not
                  (suppressed ~rule:par_mutation_rule ~file:nd.Callgraph.nfile
                     ~line:m.Ast.rline)
              then
                let gqual =
                  Printf.sprintf "%s.%s"
                    (Ast.modname_of_file gfile)
                    g.Ast.dname
                in
                acc :=
                  Finding.make ~rule:par_mutation_rule
                    ~file:nd.Callgraph.nfile ~line:m.Ast.rline
                    ~id:
                      (Printf.sprintf "%s!%s" nd.Callgraph.nqual gqual)
                    ~chain:(chain_to i)
                    (Printf.sprintf
                       "'%s' mutates module-level mutable state '%s' while \
                        reachable from Cold_par tasks; domains race on it — \
                        mediate with Mutex/Atomic/Domain.DLS or move the \
                        state into the task"
                       nd.Callgraph.nqual gqual)
                  :: !acc
            | _ -> ())
          nd.Callgraph.ndef.Ast.dmutates)
    nodes;
  List.rev !acc

(* --- mutex-unbalanced --------------------------------------------------------- *)

let mutex_findings ~suppressed graph =
  let nodes = Callgraph.nodes graph in
  let acc = ref [] in
  Array.iteri
    (fun i nd ->
      let d = nd.Callgraph.ndef in
      if d.Ast.dlocks && not d.Ast.dunlocks then begin
        let reach = Callgraph.reachable graph ~stop:(fun _ -> false) [ i ] in
        let balanced = ref false in
        Array.iteri
          (fun j r ->
            if r && nodes.(j).Callgraph.ndef.Ast.dunlocks then
              balanced := true)
          reach;
        if not !balanced then
          let lock_line =
            match
              List.find_opt
                (fun (r : Ast.ref_site) ->
                  r.Ast.rpath = [ "Mutex" ] && r.Ast.rname = "lock")
                d.Ast.drefs
            with
            | Some r -> r.Ast.rline
            | None -> d.Ast.dline
          in
          if
            not
              (suppressed ~rule:mutex_rule ~file:nd.Callgraph.nfile
                 ~line:lock_line)
          then
            acc :=
              Finding.make ~rule:mutex_rule ~file:nd.Callgraph.nfile
                ~line:lock_line
                ~id:(Printf.sprintf "lock:%s" nd.Callgraph.nqual)
                (Printf.sprintf
                   "'%s' takes a Mutex.lock but neither it nor anything it \
                    calls reaches Mutex.unlock or Mutex.protect; a raising \
                    path leaves the mutex held forever"
                   nd.Callgraph.nqual)
              :: !acc
      end)
    nodes;
  List.rev !acc

(* --- entry point -------------------------------------------------------------- *)

let analyze ?only ~suppressed files =
  let wants rule =
    match only with None -> true | Some names -> List.mem rule names
  in
  if not (List.exists wants rule_names) then []
  else begin
    let summaries =
      List.map (fun (path, tokens) -> Ast.summarize ~file:path tokens) files
    in
    let tab = Symtab.build summaries in
    let graph = Callgraph.build tab summaries in
    let roots = compute_roots tab graph in
    let nondet =
      if wants nondet_rule then
        let sources =
          token_rule_sources ~suppressed graph files
          @ helper_iteration_sources ~suppressed tab graph
        in
        nondet_findings ~suppressed roots graph sources
      else []
    in
    let par_mut =
      if wants par_mutation_rule then
        par_mutation_findings ~suppressed tab roots graph
      else []
    in
    let mutex =
      if wants mutex_rule then mutex_findings ~suppressed graph else []
    in
    nondet @ par_mut @ mutex
  end
