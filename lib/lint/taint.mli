(** Interprocedural determinism-taint and parallel-safety analysis.

    Built on {!Ast}/{!Symtab}/{!Callgraph}, this pass sees what the
    token-level rules cannot: impurity that crosses function or module
    boundaries. Three rule families:

    - [nondet-taint]: a fixpoint marks every definition that transitively
      reaches a nondeterminism source — a wall-clock read, [Stdlib.Random],
      unordered [Hashtbl] traversal (including through a named helper
      callback), or polymorphic [compare] (including through aliases like
      [let cmp = compare]). A finding is reported when a tainted definition
      is {e exported from lib/} or {e schedules Cold_par tasks}, with the
      full sink-to-source call chain attached.
    - [par-unsync-mutation]: a definition reachable from a Cold_par task
      closure mutates module-level mutable state ([ref]/[Hashtbl] at
      toplevel) without [Mutex]/[Atomic]/[Domain.DLS] mediation.
    - [mutex-unbalanced]: [Mutex.lock] with no [Mutex.unlock] or
      [Mutex.protect] reachable from the locking definition.

    Sources double-count token-rule semantics: a source suppressed under
    its token rule (or under [nondet-taint]) at the source line produces no
    chains; a suppression at the sink line silences just that sink. *)

val nondet_rule : string
val par_mutation_rule : string
val mutex_rule : string

val rule_names : string list
(** The three deep rule names, catalogue order. *)

val analyze :
  ?only:string list ->
  suppressed:(rule:string -> file:string -> line:int -> bool) ->
  (string * Lexer.token list) list ->
  Finding.t list
(** [analyze ~suppressed files] runs the deep rules over the whole file
    set ([(path, tokens)] pairs, [.mli] included — interfaces define the
    export roots). [only], when given, restricts to the named deep rules.
    Findings are unsorted; the engine merges and orders them. *)
