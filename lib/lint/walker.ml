(* dune files ride along so stanza-level rules (unix-dependency-fence) see
   library dependencies; the deep pass filters them back out. *)
let is_source name =
  Filename.check_suffix name ".ml"
  || Filename.check_suffix name ".mli"
  || Filename.basename name = "dune"

let hidden name = String.length name > 0 && (name.[0] = '.' || name.[0] = '_')

let collect paths =
  let acc = ref [] in
  let rec walk path =
    if Sys.is_directory path then
      Array.iter
        (fun entry ->
          if not (hidden entry) then walk (Filename.concat path entry))
        (Sys.readdir path)
    else if is_source path then acc := path :: !acc
  in
  let missing = List.filter (fun p -> not (Sys.file_exists p)) paths in
  match missing with
  | p :: _ -> Error (Printf.sprintf "no such file or directory: %s" p)
  | [] ->
    (* Explicit non-source file arguments are linted anyway: the user asked. *)
    List.iter
      (fun p -> if Sys.is_directory p then walk p else acc := p :: !acc)
      paths;
    Ok (List.sort_uniq String.compare !acc)
