(** Deterministic source-tree walking for the linter. *)

val collect : string list -> (string list, string) result
(** [collect paths] expands each path: files are taken as-is, directories
    are walked recursively gathering [*.ml] and [*.mli] files. Entries whose
    name starts with ['.'] or ['_'] (e.g. [_build]) are skipped. The result
    is duplicate-free and sorted, so reports and baselines are stable.
    [Error msg] if a path does not exist. *)
