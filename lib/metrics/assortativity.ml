module Graph = Cold_graph.Graph

let degree_assortativity g =
  let m = Graph.edge_count g in
  if m = 0 then nan
  else begin
    (* Newman (2002): treat each edge as two ordered stubs. *)
    let sum_xy = ref 0.0 and sum_x = ref 0.0 and sum_x2 = ref 0.0 in
    Graph.iter_edges g (fun u v ->
        let du = float_of_int (Graph.degree g u) in
        let dv = float_of_int (Graph.degree g v) in
        sum_xy := !sum_xy +. (2.0 *. du *. dv);
        sum_x := !sum_x +. du +. dv;
        sum_x2 := !sum_x2 +. (du *. du) +. (dv *. dv));
    let inv = 1.0 /. (2.0 *. float_of_int m) in
    let mean = inv *. !sum_x in
    let num = (inv *. !sum_xy) -. (mean *. mean) in
    let den = (inv *. !sum_x2) -. (mean *. mean) in
    if Float.equal den 0.0 then nan else num /. den
  end
