module Graph = Cold_graph.Graph

(* Brandes (2001), unweighted BFS variant. One CSR snapshot serves all n
   source sweeps; segments enumerate neighbours in the dense row-scan's
   ascending order, so sigma/preds — and every centrality float — are
   unchanged. *)
let brandes g ~on_node ~on_edge =
  let n = Graph.node_count g in
  let csr = Graph.Csr.of_graph g in
  let sigma = Array.make n 0.0 in
  let dist = Array.make n (-1) in
  let delta = Array.make n 0.0 in
  let preds = Array.make n [] in
  let stack = Stack.create () in
  let queue = Queue.create () in
  for s = 0 to n - 1 do
    Array.fill sigma 0 n 0.0;
    Array.fill dist 0 n (-1);
    Array.fill delta 0 n 0.0;
    Array.fill preds 0 n [];
    sigma.(s) <- 1.0;
    dist.(s) <- 0;
    Queue.add s queue;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      Stack.push u stack;
      Graph.Csr.iter_neighbors csr u (fun v ->
          if dist.(v) < 0 then begin
            dist.(v) <- dist.(u) + 1;
            Queue.add v queue
          end;
          if dist.(v) = dist.(u) + 1 then begin
            sigma.(v) <- sigma.(v) +. sigma.(u);
            preds.(v) <- u :: preds.(v)
          end)
    done;
    while not (Stack.is_empty stack) do
      let w = Stack.pop stack in
      List.iter
        (fun u ->
          let c = sigma.(u) /. sigma.(w) *. (1.0 +. delta.(w)) in
          on_edge u w c;
          delta.(u) <- delta.(u) +. c)
        preds.(w);
      if w <> s then on_node w delta.(w)
    done
  done

let nodes g =
  let n = Graph.node_count g in
  let bc = Array.make n 0.0 in
  brandes g
    ~on_node:(fun v d -> bc.(v) <- bc.(v) +. d)
    ~on_edge:(fun _ _ _ -> ());
  (* Each unordered pair was counted twice (once from each endpoint). *)
  Array.map (fun x -> x /. 2.0) bc

let edges g =
  let tbl = Hashtbl.create (Graph.edge_count g) in
  brandes g
    ~on_node:(fun _ _ -> ())
    ~on_edge:(fun u w c ->
      let key = (min u w, max u w) in
      Hashtbl.replace tbl key (c +. Option.value ~default:0.0 (Hashtbl.find_opt tbl key)));
  Graph.fold_edges g
    (fun acc u v ->
      let c = Option.value ~default:0.0 (Hashtbl.find_opt tbl (u, v)) in
      ((u, v), c /. 2.0) :: acc)
    []
  |> List.rev
