module Graph = Cold_graph.Graph

let average g =
  let n = Graph.node_count g in
  if n = 0 then 0.0 else 2.0 *. float_of_int (Graph.edge_count g) /. float_of_int n

let coefficient_of_variation g =
  let n = Graph.node_count g in
  if n = 0 then 0.0
  else begin
    let mean = average g in
    if Float.equal mean 0.0 then 0.0
    else begin
      let var = ref 0.0 in
      for v = 0 to n - 1 do
        let d = float_of_int (Graph.degree g v) -. mean in
        var := !var +. (d *. d)
      done;
      sqrt (!var /. float_of_int n) /. mean
    end
  end

let distribution g =
  let tbl = Hashtbl.create 16 in
  for v = 0 to Graph.node_count g - 1 do
    let d = Graph.degree g v in
    Hashtbl.replace tbl d (1 + Option.value ~default:0 (Hashtbl.find_opt tbl d))
  done;
  Cold_util.Tbl.sorted_bindings ~cmp:Int.compare tbl

let hub_count = Graph.core_count

let leaf_count g =
  let c = ref 0 in
  for v = 0 to Graph.node_count g - 1 do
    if Graph.degree g v = 1 then incr c
  done;
  !c

let leaf_fraction g =
  let n = Graph.node_count g in
  if n = 0 then 0.0 else float_of_int (leaf_count g) /. float_of_int n

let max_degree g =
  let best = ref 0 in
  for v = 0 to Graph.node_count g - 1 do
    best := max !best (Graph.degree g v)
  done;
  !best

let entropy g =
  let n = Graph.node_count g in
  if n = 0 then 0.0
  else
    List.fold_left
      (fun acc (_, count) ->
        let p = float_of_int count /. float_of_int n in
        acc -. (p *. log p))
      0.0 (distribution g)
