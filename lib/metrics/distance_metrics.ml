module Graph = Cold_graph.Graph
module Traversal = Cold_graph.Traversal

let eccentricity g v =
  Array.fold_left max 0 (Traversal.bfs_hops g v)

(* The all-sources sweeps below run n BFS over one fixed topology, so one
   CSR snapshot amortizes to O(degree) neighbour iteration per visit where
   the dense row scan pays O(n) — hop counts are identical either way. *)

let diameter g =
  let n = Graph.node_count g in
  if n <= 1 then 0
  else begin
    let csr = Graph.Csr.of_graph g in
    let best = ref 0 in
    try
      for v = 0 to n - 1 do
        let hops = Traversal.bfs_hops ~csr g v in
        Array.iter
          (fun d ->
            if d < 0 then raise Exit;
            if d > !best then best := d)
          hops
      done;
      !best
    with Exit -> -1
  end

let radius g =
  let n = Graph.node_count g in
  if n <= 1 then 0
  else if not (Traversal.is_connected g) then -1
  else begin
    let csr = Graph.Csr.of_graph g in
    let best = ref max_int in
    for v = 0 to n - 1 do
      best := min !best (Array.fold_left max 0 (Traversal.bfs_hops ~csr g v))
    done;
    !best
  end

let average_shortest_path g =
  let n = Graph.node_count g in
  let csr = Graph.Csr.of_graph g in
  let total = ref 0 and pairs = ref 0 in
  for v = 0 to n - 1 do
    Array.iter
      (fun d -> if d > 0 then begin
          total := !total + d;
          incr pairs
        end)
      (Traversal.bfs_hops ~csr g v)
  done;
  if !pairs = 0 then nan else float_of_int !total /. float_of_int !pairs
