module Graph = Cold_graph.Graph
module Shortest_path = Cold_graph.Shortest_path
module Gravity = Cold_traffic.Gravity

type op = Add of int * int | Remove of int * int

type t = {
  g : Graph.t; (* private copy; the current (possibly uncommitted) topology *)
  length : int -> int -> float;
  tm : Gravity.t;
  multipath : bool;
  n : int;
  trees : Shortest_path.tree array; (* trees.(s) is current iff not dirty.(s) *)
  dirty : bool array;
  mutable dirty_count : int;
  (* n*n loads; meaningful iff matrix_valid. Allocated lazily on the first
     [loads] — populations of cloned states that are evaluated and discarded
     before ever asking for loads never pay the 8n² bytes. *)
  mutable matrix : float array;
  subtree : float array; (* accumulation scratch *)
  pair_dem : float array; (* n*n Gravity.pair_demand table; immutable *)
  mutable matrix_valid : bool;
  (* Adjacency snapshot, kept in sync with [g]: edge flips rewrite just the
     two endpoint rows (each row is a fresh array; rows are never mutated in
     place, so clones may share them). Meaningful iff adj_valid. *)
  mutable adj : int array array;
  mutable adj_valid : bool;
  mutable journal : op list; (* uncommitted ops, most recent first *)
  (* First-touch snapshots since the last commit: (source, tree, was_dirty).
     Rollback restores exactly these, so its cost is proportional to what
     the rejected proposal actually touched. *)
  mutable undo : (int * Shortest_path.tree * bool) list;
  touched : bool array;
  mutable recomputed : int;
}

let dummy_tree = { Shortest_path.dist = [||]; pred = [||]; order = [||] }

let create ?(multipath = false) g ~length ~tm =
  let n = Graph.node_count g in
  if Gravity.size tm <> n then invalid_arg "Incremental.create: size mismatch";
  let pair_dem = Array.make (max (n * n) 1) 0.0 in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      pair_dem.((s * n) + d) <- Gravity.pair_demand tm s d
    done
  done;
  {
    g = Graph.copy g;
    length;
    tm;
    multipath;
    n;
    trees = Array.make n dummy_tree;
    dirty = Array.make n true;
    dirty_count = n;
    matrix = [||];
    subtree = Array.make (max n 1) 0.0;
    pair_dem;
    matrix_valid = false;
    adj = [||];
    adj_valid = false;
    journal = [];
    undo = [];
    touched = Array.make n false;
    recomputed = 0;
  }

let graph st = st.g

let pending_sources st = st.dirty_count

let recomputed_trees st = st.recomputed

let touch st s =
  if not st.touched.(s) then begin
    st.touched.(s) <- true;
    st.undo <- (s, st.trees.(s), st.dirty.(s)) :: st.undo
  end

let mark_dirty st s =
  if not st.dirty.(s) then begin
    touch st s;
    st.dirty.(s) <- true;
    st.dirty_count <- st.dirty_count + 1
  end

(* The affected-source criteria. Both are conservative supersets of "the
   fresh Dijkstra tree would differ", which is what bit-identity needs.
   Dijkstra only ever relaxes from a settled vertex, whose distance is
   already final — so every relaxation candidate is ≥ the target's final
   distance, and the heap's strict (priority, vertex-id) order makes the
   settling sequence a function of the final distances alone: stale or
   tied-but-losing entries are skipped by lazy deletion without moving
   dist, pred or settling order. Consequently:

   - An added edge {u,v} of length l changes source s's tree only if it
     strictly improves an endpoint's final distance — dist_s(u) + l <
     dist_s(v) or symmetrically — or ties it exactly AND beats the current
     predecessor in the run's smaller-id tie-break (pred is the minimum id
     over tying achievers, so a tie with u ≥ pred_s(v) changes nothing).
     An exact tie between two unreachable endpoints (∞ = ∞ + l) falls out
     via pred = -1. ECMP load splits need no marking at all: multipath
     accumulation re-derives the split from dist and the current adjacency
     on every loads, and neither moved.

   - A removed edge {u,v} matters only if it was a tree edge of s
     (pred-linked) or tied a shortest distance exactly (an ECMP member, or
     the zero-length corner where equal-distance settling order could lean
     on it). Non-tree, non-tied edges influence no final distance and no
     settling push. If s cannot reach the edge at all (both endpoints at
     ∞ — they share a component, so one test suffices), its removal is
     invisible to s.

   Both tests read only clean trees; dirty sources are already scheduled
   for recomputation, so skipping them keeps the invariant: every clean
   tree equals a fresh Dijkstra on the current topology. *)

let affected_by_add st s u v l =
  let t = st.trees.(s) in
  let dist = t.Shortest_path.dist and pred = t.Shortest_path.pred in
  let du = dist.(u) and dv = dist.(v) in
  du +. l < dv || dv +. l < du
  || (Float.equal (du +. l) dv && u < pred.(v))
  || (Float.equal (dv +. l) du && v < pred.(u))

let affected_by_remove st s u v l =
  let t = st.trees.(s) in
  let dist = t.Shortest_path.dist and pred = t.Shortest_path.pred in
  pred.(v) = u || pred.(u) = v
  || (dist.(u) < infinity
      && (Float.equal (dist.(u) +. l) dist.(v)
          || Float.equal (dist.(v) +. l) dist.(u)))

(* One adjacency row, rebuilt from the graph: ascending neighbour ids,
   exactly as Graph.adjacency_arrays lays them out (iter_neighbors is the
   same ascending row scan), so Dijkstra relaxation order is identical. *)
let adj_row st v =
  let a = Array.make (Graph.degree st.g v) 0 in
  let k = ref 0 in
  Graph.iter_neighbors st.g v (fun u ->
      a.(!k) <- u;
      incr k);
  a

(* Keep the adjacency snapshot current across a flip by rewriting just the
   two endpoint rows — O(n) instead of rebuilding all n rows per
   evaluation. Fresh row arrays every time: live clones may still hold the
   old ones. *)
let patch_adj st u v =
  if st.adj_valid then begin
    st.adj.(u) <- adj_row st u;
    st.adj.(v) <- adj_row st v
  end

let add_edge st u v =
  if u = v then invalid_arg "Incremental.add_edge: self-loop";
  if not (Graph.mem_edge st.g u v) then begin
    let l = st.length u v in
    for s = 0 to st.n - 1 do
      if (not st.dirty.(s)) && affected_by_add st s u v l then mark_dirty st s
    done;
    Graph.add_edge st.g u v;
    patch_adj st u v;
    st.journal <- Add (u, v) :: st.journal;
    st.matrix_valid <- false
  end

let remove_edge st u v =
  if Graph.mem_edge st.g u v then begin
    let l = st.length u v in
    for s = 0 to st.n - 1 do
      if (not st.dirty.(s)) && affected_by_remove st s u v l then mark_dirty st s
    done;
    Graph.remove_edge st.g u v;
    patch_adj st u v;
    st.journal <- Remove (u, v) :: st.journal;
    st.matrix_valid <- false
  end

let retarget st target =
  let (removed, added) = Graph.edge_diff st.g target in
  List.iter (fun (u, v) -> remove_edge st u v) removed;
  List.iter (fun (u, v) -> add_edge st u v) added;
  List.length removed + List.length added

let refresh_adj st =
  if not st.adj_valid then begin
    st.adj <- Graph.adjacency_arrays st.g;
    st.adj_valid <- true
  end

let refresh st =
  if st.dirty_count > 0 then begin
    (* The adjacency snapshot is built once and then patched per flip, so
       consulting it is always cheaper than the graph's own row scans; the
       trees are bit-identical either way (see Shortest_path.dijkstra). *)
    refresh_adj st;
    let adj = Some st.adj in
    let ws = Shortest_path.domain_workspace ~n:st.n in
    for s = 0 to st.n - 1 do
      if st.dirty.(s) then begin
        touch st s;
        st.trees.(s) <-
          Shortest_path.dijkstra ?adj ~workspace:ws st.g ~length:st.length
            ~source:s;
        st.dirty.(s) <- false;
        st.recomputed <- st.recomputed + 1
      end
    done;
    st.dirty_count <- 0
  end

let loads st =
  refresh st;
  if not st.matrix_valid then begin
    let adj =
      if st.multipath then begin
        refresh_adj st;
        Some st.adj
      end
      else None
    in
    if Array.length st.matrix < st.n * st.n then
      st.matrix <- Array.make (st.n * st.n) 0.0
    else Array.fill st.matrix 0 (st.n * st.n) 0.0;
    for s = 0 to st.n - 1 do
      let tree = st.trees.(s) in
      (* A tree that settled all n vertices has every distance finite, so
         check_routable cannot raise — skipping it then is behaviourally
         identical and saves n demand lookups per source. *)
      if Array.length tree.Shortest_path.order < st.n then
        Routing.check_routable ~tm:st.tm ~dist:tree.Shortest_path.dist
          ~source:s;
      Routing.accumulate ?adj ~pair_demands:st.pair_dem
        ~multipath:st.multipath ~length:st.length ~tm:st.tm ~matrix:st.matrix
        ~subtree:st.subtree ~n:st.n tree ~source:s
    done;
    st.matrix_valid <- true
  end;
  Routing.of_parts ~n:st.n ~matrix:st.matrix ~trees:st.trees

let commit st =
  st.journal <- [];
  List.iter (fun (s, _, _) -> st.touched.(s) <- false) st.undo;
  st.undo <- []

let rollback st =
  (* journal is most-recent-first, so a head-first sweep undoes ops in
     reverse chronological order. *)
  List.iter
    (function
      | Add (u, v) -> Graph.remove_edge st.g u v
      | Remove (u, v) -> Graph.add_edge st.g u v)
    st.journal;
  (* Re-sync the adjacency rows the undone flips had patched (idempotent,
     so endpoints appearing in several ops are fine). *)
  List.iter
    (function
      | Add (u, v) | Remove (u, v) -> patch_adj st u v)
    st.journal;
  st.journal <- [];
  List.iter
    (fun (s, tree, was_dirty) ->
      st.trees.(s) <- tree;
      st.dirty.(s) <- was_dirty;
      st.touched.(s) <- false)
    st.undo;
  st.undo <- [];
  let count = ref 0 in
  for s = 0 to st.n - 1 do
    if st.dirty.(s) then incr count
  done;
  st.dirty_count <- !count;
  st.matrix_valid <- false

let clone st =
  {
    g = Graph.copy st.g;
    length = st.length;
    tm = st.tm;
    multipath = st.multipath;
    n = st.n;
    (* Tree records are immutable once built (refresh replaces, never
       mutates), so sharing them across clones is safe. *)
    trees = Array.copy st.trees;
    dirty = Array.copy st.dirty;
    dirty_count = st.dirty_count;
    (* No matrix copy: [loads] always replays the accumulation in full from
       the (shared, immutable) trees, so a clone can start from an empty
       buffer and still produce bit-identical loads. This turns clone from
       O(n²) floats into O(n) + adjacency-pointer copies — the difference
       between 8 MB and a few KB per GA mutant at n = 1000. *)
    matrix = [||];
    subtree = Array.make (max st.n 1) 0.0;
    pair_dem = st.pair_dem; (* immutable; shared *)
    matrix_valid = false;
    (* Copy the outer array only: rows are immutable (patch_adj replaces,
       never mutates), so sharing them across clones is safe, but each
       state must be free to re-point its own rows. *)
    adj = (if st.adj_valid then Array.copy st.adj else [||]);
    adj_valid = st.adj_valid;
    journal = [];
    undo = [];
    touched = Array.make st.n false;
    recomputed = 0;
  }
