module Graph = Cold_graph.Graph
module Heap = Cold_graph.Heap
module Shortest_path = Cold_graph.Shortest_path
module Gravity = Cold_traffic.Gravity

type op = Add of int * int | Remove of int * int

(* Raised inside a repair pass when completing it would violate the repair
   certificate (see Shortest_path.canonical) — i.e. when the fresh run's
   settle order could depend on push history rather than final distances.
   The caller falls back to marking the source dirty; the next refresh runs
   a full Dijkstra, so bit-identity holds either way. *)
exception Bail

(* Per-state scratch for the repair pass, lazily allocated: states that
   never repair (repair:false, or topologies that always bail) never pay
   for it. A state belongs to one domain at a time, so no sharing hazard. *)
type scratch = {
  rheap : Heap.Indexed.t; (* decrease-key frontier *)
  mark : bool array; (* remove-repair: cut-subtree membership *)
  settled : bool array; (* vertices settled by the current repair *)
  sub : int array; (* remove-repair: cut-subtree member list *)
  slist : int array; (* settled vertices in pop = ascending (dist, id) order *)
  norder : int array; (* staging buffer for the merged settle order *)
}

type t = {
  g : Graph.t; (* private copy; the current (possibly uncommitted) topology *)
  length : int -> int -> float;
  tm : Gravity.t;
  multipath : bool;
  repair : bool; (* dynamic-SSSP engine: repair trees in place per flip *)
  n : int;
  trees : Shortest_path.tree array; (* trees.(s) is current iff not dirty.(s) *)
  dirty : bool array;
  (* canon.(s): the clean tree satisfies the repair certificate
     (Shortest_path.canonical). Tracked for BOTH engines: the dynamic engine
     gates in-place repair on it, and the affected-source tests fall back to
     a stronger conservative criterion without it (settle order is only a
     function of final distances under the certificate). Meaningful only
     while not dirty.(s); refresh re-derives it from the fresh tree. *)
  canon : bool array;
  mutable dirty_count : int;
  (* n*n loads; meaningful iff matrix_valid. Allocated lazily on the first
     [loads] — populations of cloned states that are evaluated and discarded
     before ever asking for loads never pay the 8n² bytes. *)
  mutable matrix : float array;
  subtree : float array; (* accumulation scratch *)
  pair_dem : float array; (* n*n Gravity.pair_demand table; immutable *)
  mutable matrix_valid : bool;
  (* Adjacency snapshot, kept in sync with [g]: edge flips rewrite just the
     two endpoint rows (each row is a fresh array; rows are never mutated in
     place, so clones may share them). Meaningful iff adj_valid. *)
  mutable adj : int array array;
  mutable adj_valid : bool;
  mutable journal : op list; (* uncommitted ops, most recent first *)
  (* First-touch snapshots since the last commit:
     (source, tree, was_dirty, was_canon). Rollback restores exactly
     these, so its cost is proportional to what the rejected proposal
     actually touched. *)
  mutable undo : (int * Shortest_path.tree * bool * bool) list;
  touched : bool array;
  mutable recomputed : int;
  mutable repaired : int;
  mutable rs : scratch option;
}

let dummy_tree = { Shortest_path.dist = [||]; pred = [||]; order = [||] }

let create ?(multipath = false) ?(repair = true) g ~length ~tm =
  let n = Graph.node_count g in
  if Gravity.size tm <> n then invalid_arg "Incremental.create: size mismatch";
  let pair_dem = Array.make (max (n * n) 1) 0.0 in
  for s = 0 to n - 1 do
    for d = 0 to n - 1 do
      pair_dem.((s * n) + d) <- Gravity.pair_demand tm s d
    done
  done;
  {
    g = Graph.copy g;
    length;
    tm;
    multipath;
    repair;
    n;
    trees = Array.make n dummy_tree;
    dirty = Array.make n true;
    canon = Array.make n false;
    dirty_count = n;
    matrix = [||];
    subtree = Array.make (max n 1) 0.0;
    pair_dem;
    matrix_valid = false;
    adj = [||];
    adj_valid = false;
    journal = [];
    undo = [];
    touched = Array.make n false;
    recomputed = 0;
    repaired = 0;
    rs = None;
  }

let graph st = st.g

let pending_sources st = st.dirty_count

let recomputed_trees st = st.recomputed

let repaired_trees st = st.repaired

let touch st s =
  if not st.touched.(s) then begin
    st.touched.(s) <- true;
    st.undo <- (s, st.trees.(s), st.dirty.(s), st.canon.(s)) :: st.undo
  end

let mark_dirty st s =
  if not st.dirty.(s) then begin
    touch st s;
    st.dirty.(s) <- true;
    st.dirty_count <- st.dirty_count + 1
  end

(* The affected-source criteria. Both are conservative supersets of "the
   fresh Dijkstra tree would differ", which is what bit-identity needs.
   Dijkstra only ever relaxes from a settled vertex, whose distance is
   already final — so every relaxation candidate is ≥ the target's final
   distance, and under the repair certificate (canon.(s): every settled
   vertex's predecessor is strictly closer) the settle sequence is exactly
   ascending (dist, id): each vertex is pushed at its final priority before
   the first pop of its equal-distance group, so push timing is invisible
   and stale or tied-but-losing heap entries are skipped by lazy deletion
   without moving dist, pred or settle order. Consequently, for a
   certificate-carrying tree:

   - An added edge {u,v} of length l changes source s's tree only if it
     strictly improves an endpoint's final distance — dist_s(u) + l <
     dist_s(v) or symmetrically — or ties it exactly AND beats the current
     predecessor in the run's smaller-id tie-break (pred is the minimum id
     over tying achievers that settle first, so a tie with u ≥ pred_s(v)
     changes nothing). An exact tie between two unreachable endpoints
     (∞ = ∞ + l) falls out via pred = -1. ECMP load splits need no marking
     at all: multipath accumulation re-derives the split from dist and the
     current adjacency on every loads, and neither moved.

   WITHOUT the certificate (zero-length links: colocated PoPs) the settle
   order within an equal-distance group depends on push timing — a vertex
   reached only through a zero-length chain enters the heap mid-group. An
   added tying edge {u,v} with u ≥ pred_s(v) then still perturbs the run:
   when u settles while v's tentative distance is above final, the relax is
   a strict improvement that pushes v at final priority EARLIER than
   before, reordering the group (and with it downstream tie-broken preds)
   without moving any final distance. So a non-canonical tree falls back to
   the stronger criterion: affected on any strict improvement or exact tie
   (du + l ≤ dv, symmetrically), reachable endpoints only. That is complete:
   an edge with du + l > dv and dv + l > du strictly can only produce
   pushes at above-final priorities (rejected at pop without side effects)
   and tie-writes against above-final tentative distances (overwritten by
   the strict relax that later installs the final distance).

   - A removed edge {u,v} matters only if it was a tree edge of s
     (pred-linked) or tied a shortest distance exactly (an ECMP member, or
     the zero-length corner where equal-distance settling order could lean
     on it). Non-tree, non-tied edges influence no final distance and no
     settling push — a push at final priority through {u,v} needs
     dist_s(u) + l = dist_s(v) exactly (u relaxes only once settled, i.e.
     final), which IS the marked tie — so this test needs no certificate.
     If s cannot reach the edge at all (both endpoints at ∞ — they share a
     component, so one test suffices), its removal is invisible to s.

   Both tests read only clean trees; dirty sources are already scheduled
   for recomputation, so skipping them keeps the invariant: every clean
   tree equals a fresh Dijkstra on the current topology. *)

let affected_by_add st s u v l =
  let t = st.trees.(s) in
  let dist = t.Shortest_path.dist and pred = t.Shortest_path.pred in
  let du = dist.(u) and dv = dist.(v) in
  if st.canon.(s) then
    du +. l < dv || dv +. l < du
    || (Float.equal (du +. l) dv && u < pred.(v))
    || (Float.equal (dv +. l) du && v < pred.(u))
  else
    (du < infinity && du +. l <= dv) || (dv < infinity && dv +. l <= du)

let affected_by_remove st s u v l =
  let t = st.trees.(s) in
  let dist = t.Shortest_path.dist and pred = t.Shortest_path.pred in
  pred.(v) = u || pred.(u) = v
  || (dist.(u) < infinity
      && (Float.equal (dist.(u) +. l) dist.(v)
          || Float.equal (dist.(v) +. l) dist.(u)))

(* One adjacency row, rebuilt from the graph: ascending neighbour ids,
   exactly as Graph.adjacency_arrays lays them out (iter_neighbors is the
   same ascending row scan), so Dijkstra relaxation order is identical. *)
let adj_row st v =
  let a = Array.make (Graph.degree st.g v) 0 in
  let k = ref 0 in
  Graph.iter_neighbors st.g v (fun u ->
      a.(!k) <- u;
      incr k);
  a

(* Keep the adjacency snapshot current across a flip by rewriting just the
   two endpoint rows — O(n) instead of rebuilding all n rows per
   evaluation. Fresh row arrays every time: live clones may still hold the
   old ones. *)
let patch_adj st u v =
  if st.adj_valid then begin
    st.adj.(u) <- adj_row st u;
    st.adj.(v) <- adj_row st v
  end

let refresh_adj st =
  if not st.adj_valid then begin
    st.adj <- Graph.adjacency_arrays st.g;
    st.adj_valid <- true
  end

(* --- dynamic repair ---------------------------------------------------------

   Repair a clean tree in place of re-running Dijkstra from scratch. The
   whole pass leans on the repair certificate (Shortest_path.canonical):
   while every settled non-source vertex sits strictly farther than its
   predecessor, the fresh run's settle order is exactly the ascending
   (dist, id) sort of the reachable vertices — so the unchanged part of the
   old order is still sorted, the repaired part comes out of the frontier
   heap already sorted, and an ordered merge reconstructs the order the
   fresh run would produce, bit for bit. Whenever completing a repair would
   break the certificate (colocated PoPs, float-rounding-swallowed lengths),
   the pass raises Bail and the source falls back to full recomputation. *)

let scratch st =
  match st.rs with
  | Some rs -> rs
  | None ->
    let cap = max st.n 1 in
    let rs =
      {
        rheap = Heap.Indexed.create ~n:st.n;
        mark = Array.make cap false;
        settled = Array.make cap false;
        sub = Array.make cap 0;
        slist = Array.make cap 0;
        norder = Array.make cap 0;
      }
    in
    st.rs <- Some rs;
    rs

(* Bail-path cleanup: the repair built only private arrays, so the tree is
   untouched; just return the scratch to its all-clear resting state. *)
let reset_scratch st rs =
  Heap.Indexed.clear rs.rheap;
  Array.fill rs.mark 0 st.n false;
  Array.fill rs.settled 0 st.n false

(* One relaxation of the repair pass, mirroring Shortest_path.dijkstra's
   relax bit for bit: [w] settled at distance [d] offers neighbour [x] the
   path [d +. length w x]. Strict improvements move the frontier
   (decrease-key). An exact tie lowers the predecessor id exactly when the
   fresh run would — i.e. when [w] settles before [x], which under the
   certificate means d < dist(x), or w < x at equal distance; but the equal
   case would install an equal-distance predecessor and break the
   certificate, so it bails instead. *)
let relax_dyn st ndist npred settled rheap d w x =
  if not settled.(x) then begin
    let nd = d +. st.length w x in
    if nd < ndist.(x) then begin
      ndist.(x) <- nd;
      npred.(x) <- w;
      Heap.Indexed.decrease rheap ~priority:nd x
    end
    else if Float.equal nd ndist.(x) && npred.(x) >= 0 && w < npred.(x) then begin
      if d < ndist.(x) then npred.(x) <- w else if w < x then raise Bail
    end
  end

(* Drain the repair frontier: settle in ascending (priority, id) order —
   exactly the fresh run's order restricted to the re-settled vertices —
   re-relaxing each settled vertex's whole adjacency row. The certificate
   is enforced at every settle. Returns the settle count (the filled prefix
   of rs.slist). *)
let drain_frontier st rs ndist npred =
  let settled = rs.settled and rheap = rs.rheap and slist = rs.slist in
  let adj = st.adj in
  let sc = ref 0 in
  let rec loop () =
    match Heap.Indexed.pop_min rheap with
    | None -> !sc
    | Some (d, w) ->
      let p = npred.(w) in
      if p < 0 || not (ndist.(p) < d) then raise Bail;
      settled.(w) <- true;
      slist.(!sc) <- w;
      incr sc;
      let row = adj.(w) in
      for k = 0 to Array.length row - 1 do
        relax_dyn st ndist npred settled rheap d w row.(k)
      done;
      loop ()
  in
  loop ()

(* New settle order = ordered merge of the surviving old entries (their
   distances did not move, so their subsequence is still sorted) with the
   repair's own settle list, both ascending (dist, id). [skip] masks old
   entries the repair superseded (re-settled, or cut off entirely). *)
let merge_order ndist ~old_order ~skip ~slist ~sc ~norder =
  let oc = Array.length old_order in
  let i = ref 0 and j = ref 0 and k = ref 0 in
  let advance () =
    while !i < oc && skip.(old_order.(!i)) do
      incr i
    done
  in
  advance ();
  while !i < oc || !j < sc do
    if !j >= sc then begin
      norder.(!k) <- old_order.(!i);
      incr k;
      incr i;
      advance ()
    end
    else if !i >= oc then begin
      norder.(!k) <- slist.(!j);
      incr j;
      incr k
    end
    else begin
      let a = old_order.(!i) and b = slist.(!j) in
      if ndist.(a) < ndist.(b) || (Float.equal ndist.(a) ndist.(b) && a < b)
      then begin
        norder.(!k) <- a;
        incr k;
        incr i;
        advance ()
      end
      else begin
        norder.(!k) <- b;
        incr j;
        incr k
      end
    end
  done;
  Array.sub norder 0 !k

type repair_result =
  | Unchanged (* the flip provably leaves the tree bit-identical *)
  | Repaired of Shortest_path.tree
  | Failed (* certificate would break: fall back to full Dijkstra *)

(* Insert repair, strict case: the new edge gives [dst] the better distance
   [nd] through [src]. Seed the frontier at [dst] and re-relax outward:
   a vertex's distance can only drop through the new edge, so every vertex
   the fresh run discovers differently is reached by the frontier, and
   vertices the frontier never pops provably keep distance, predecessor and
   settle position (an unaffected neighbour cannot tie a strictly-improved
   distance: its old relaxation already bounded the old distance). The old
   arrays are never mutated — the tree is built in fresh copies — so a bail
   or a later rollback costs nothing. *)
let repair_add_strict st rs ~src ~dst ~nd t =
  let ndist = Array.copy t.Shortest_path.dist in
  let npred = Array.copy t.Shortest_path.pred in
  ndist.(dst) <- nd;
  npred.(dst) <- src;
  Heap.Indexed.decrease rs.rheap ~priority:nd dst;
  let sc = drain_frontier st rs ndist npred in
  let order =
    merge_order ndist ~old_order:t.Shortest_path.order ~skip:rs.settled
      ~slist:rs.slist ~sc ~norder:rs.norder
  in
  for j = 0 to sc - 1 do
    rs.settled.(rs.slist.(j)) <- false
  done;
  { Shortest_path.dist = ndist; pred = npred; order }

(* Repair source [s]'s tree for the insertion of edge {u,v} (already applied
   to graph and adjacency). Caller guarantees: clean, canonical, affected,
   snapshotted. *)
let try_repair_add st s u v l =
  let t = st.trees.(s) in
  let dist = t.Shortest_path.dist and pred = t.Shortest_path.pred in
  let du = dist.(u) and dv = dist.(v) in
  if du +. l < dv then begin
    let rs = scratch st in
    try Repaired (repair_add_strict st rs ~src:u ~dst:v ~nd:(du +. l) t)
    with Bail ->
      reset_scratch st rs;
      Failed
  end
  else if dv +. l < du then begin
    let rs = scratch st in
    try Repaired (repair_add_strict st rs ~src:v ~dst:u ~nd:(dv +. l) t)
    with Bail ->
      reset_scratch st rs;
      Failed
  end
  else if Float.equal (du +. l) dv && u < pred.(v) && du < dv then begin
    (* Tie-only: no distance moves, so the settle order is untouched and
       only [v]'s predecessor drops to the smaller id ([u] settles first
       since du < dv). Share dist and order with the old record, patch a
       pred copy. *)
    let npred = Array.copy pred in
    npred.(v) <- u;
    Repaired { Shortest_path.dist; pred = npred; order = t.Shortest_path.order }
  end
  else if Float.equal (dv +. l) du && v < pred.(u) && dv < du then begin
    let npred = Array.copy pred in
    npred.(u) <- v;
    Repaired { Shortest_path.dist; pred = npred; order = t.Shortest_path.order }
  end
  else
    (* Degenerate: equal-distance endpoints tie through the new edge — any
       repair would need an equal-distance predecessor. Full recompute. *)
    Failed

(* Delete repair of a tree edge: [child]'s subtree is exactly the set of
   vertices whose tree path used the removed edge. Cut it to infinity, seed
   each member from its surviving non-subtree neighbours (the relaxations
   the fresh run receives from vertices that settle unchanged — no vertex
   outside the subtree can move: its tree path survives, and a distance
   increase never creates a new achiever for an unchanged distance), then
   re-settle through the frontier. Members that stay at infinity were
   disconnected by the removal and drop out of the order. *)
let repair_remove_subtree st ~child t =
  let rs = scratch st in
  let dist = t.Shortest_path.dist
  and pred = t.Shortest_path.pred
  and old_order = t.Shortest_path.order in
  let mark = rs.mark and sub = rs.sub in
  (* One ascending pass over the old order marks the subtree: the
     certificate settles every predecessor strictly before its children. *)
  let scount = ref 0 in
  Array.iter
    (fun w ->
      if w = child || (pred.(w) >= 0 && mark.(pred.(w))) then begin
        mark.(w) <- true;
        sub.(!scount) <- w;
        incr scount
      end)
    old_order;
  let scount = !scount in
  let ndist = Array.copy dist and npred = Array.copy pred in
  for i = 0 to scount - 1 do
    let w = sub.(i) in
    ndist.(w) <- infinity;
    npred.(w) <- -1
  done;
  match
    try
      for i = 0 to scount - 1 do
        let w = sub.(i) in
        let row = st.adj.(w) in
        for k = 0 to Array.length row - 1 do
          let x = row.(k) in
          if not mark.(x) then begin
            let dx = ndist.(x) in
            if dx < infinity then begin
              let d = dx +. st.length x w in
              if d < ndist.(w) then begin
                ndist.(w) <- d;
                npred.(w) <- x
              end
              else if Float.equal d ndist.(w) && x < npred.(w) then begin
                (* Same settle-before guard as relax_dyn: an achiever at the
                   candidate's own distance would be an equal-distance
                   predecessor — certificate break. *)
                if dx < d then npred.(w) <- x else if x < w then raise Bail
              end
            end
          end
        done;
        if ndist.(w) < infinity then
          Heap.Indexed.decrease rs.rheap ~priority:ndist.(w) w
      done;
      Some (drain_frontier st rs ndist npred)
    with Bail -> None
  with
  | None ->
    reset_scratch st rs;
    Failed
  | Some sc ->
    let order =
      merge_order ndist ~old_order ~skip:mark ~slist:rs.slist ~sc
        ~norder:rs.norder
    in
    for j = 0 to sc - 1 do
      rs.settled.(rs.slist.(j)) <- false
    done;
    for i = 0 to scount - 1 do
      mark.(sub.(i)) <- false
    done;
    Repaired { Shortest_path.dist = ndist; pred = npred; order }

(* Repair source [s]'s tree for the removal of edge {u,v} (already applied).
   A non-tree removal is an exact no-op under the certificate: distances
   cannot move (the tree path survives), the settle order is a function of
   the distances, and a tied-but-losing achiever was already losing the
   smaller-id tie-break — so the old engine's conservative recomputation of
   tied sources becomes free here. *)
let try_repair_remove st s u v =
  let t = st.trees.(s) in
  let pred = t.Shortest_path.pred in
  if pred.(v) = u then repair_remove_subtree st ~child:v t
  else if pred.(u) = v then repair_remove_subtree st ~child:u t
  else Unchanged

(* Dispatch one flip's effect on source [s]: repair in place when the
   dynamic engine is on and the tree carries the certificate, otherwise
   (or on bail) mark dirty for the next refresh. Every path snapshots the
   source first, so rollback restores the pre-flip tree either way. *)
let apply_to_source st s repair_fn =
  if st.repair && st.canon.(s) then begin
    touch st s;
    match repair_fn () with
    | Unchanged -> ()
    | Repaired tree ->
      st.trees.(s) <- tree;
      st.repaired <- st.repaired + 1
    | Failed -> mark_dirty st s
  end
  else mark_dirty st s

let add_edge st u v =
  if u = v then invalid_arg "Incremental.add_edge: self-loop";
  if not (Graph.mem_edge st.g u v) then begin
    let l = st.length u v in
    (* Mutate the topology first: the affected tests read only the (still
       pre-flip) trees, while the repair pass needs the post-flip
       adjacency. *)
    Graph.add_edge st.g u v;
    patch_adj st u v;
    st.journal <- Add (u, v) :: st.journal;
    st.matrix_valid <- false;
    if st.repair then refresh_adj st;
    for s = 0 to st.n - 1 do
      if (not st.dirty.(s)) && affected_by_add st s u v l then
        apply_to_source st s (fun () -> try_repair_add st s u v l)
    done
  end

let remove_edge st u v =
  if Graph.mem_edge st.g u v then begin
    let l = st.length u v in
    Graph.remove_edge st.g u v;
    patch_adj st u v;
    st.journal <- Remove (u, v) :: st.journal;
    st.matrix_valid <- false;
    if st.repair then refresh_adj st;
    for s = 0 to st.n - 1 do
      if (not st.dirty.(s)) && affected_by_remove st s u v l then
        apply_to_source st s (fun () -> try_repair_remove st s u v)
    done
  end

let retarget st target =
  let (removed, added) = Graph.edge_diff st.g target in
  List.iter (fun (u, v) -> remove_edge st u v) removed;
  List.iter (fun (u, v) -> add_edge st u v) added;
  List.length removed + List.length added

let refresh st =
  if st.dirty_count > 0 then begin
    (* The adjacency snapshot is built once and then patched per flip, so
       consulting it is always cheaper than the graph's own row scans; the
       trees are bit-identical either way (see Shortest_path.dijkstra). *)
    refresh_adj st;
    let adj = Some st.adj in
    let ws = Shortest_path.domain_workspace ~n:st.n in
    for s = 0 to st.n - 1 do
      if st.dirty.(s) then begin
        touch st s;
        st.trees.(s) <-
          Shortest_path.dijkstra ?adj ~workspace:ws st.g ~length:st.length
            ~source:s;
        st.canon.(s) <- Shortest_path.canonical st.trees.(s);
        st.dirty.(s) <- false;
        st.recomputed <- st.recomputed + 1
      end
    done;
    st.dirty_count <- 0
  end

let loads st =
  refresh st;
  if not st.matrix_valid then begin
    let adj =
      if st.multipath then begin
        refresh_adj st;
        Some st.adj
      end
      else None
    in
    if Array.length st.matrix < st.n * st.n then
      st.matrix <- Array.make (st.n * st.n) 0.0
    else Array.fill st.matrix 0 (st.n * st.n) 0.0;
    for s = 0 to st.n - 1 do
      let tree = st.trees.(s) in
      (* A tree that settled all n vertices has every distance finite, so
         check_routable cannot raise — skipping it then is behaviourally
         identical and saves n demand lookups per source. *)
      if Array.length tree.Shortest_path.order < st.n then
        Routing.check_routable ~tm:st.tm ~dist:tree.Shortest_path.dist
          ~source:s;
      Routing.accumulate ?adj ~pair_demands:st.pair_dem
        ~multipath:st.multipath ~length:st.length ~tm:st.tm ~matrix:st.matrix
        ~subtree:st.subtree ~n:st.n tree ~source:s
    done;
    st.matrix_valid <- true
  end;
  Routing.of_parts ~n:st.n ~matrix:st.matrix ~trees:st.trees

let commit st =
  st.journal <- [];
  List.iter (fun (s, _, _, _) -> st.touched.(s) <- false) st.undo;
  st.undo <- []

let rollback st =
  (* journal is most-recent-first, so a head-first sweep undoes ops in
     reverse chronological order. *)
  List.iter
    (function
      | Add (u, v) -> Graph.remove_edge st.g u v
      | Remove (u, v) -> Graph.add_edge st.g u v)
    st.journal;
  (* Re-sync the adjacency rows the undone flips had patched (idempotent,
     so endpoints appearing in several ops are fine). *)
  List.iter
    (function
      | Add (u, v) | Remove (u, v) -> patch_adj st u v)
    st.journal;
  st.journal <- [];
  List.iter
    (fun (s, tree, was_dirty, was_canon) ->
      st.trees.(s) <- tree;
      st.dirty.(s) <- was_dirty;
      st.canon.(s) <- was_canon;
      st.touched.(s) <- false)
    st.undo;
  st.undo <- [];
  let count = ref 0 in
  for s = 0 to st.n - 1 do
    if st.dirty.(s) then incr count
  done;
  st.dirty_count <- !count;
  st.matrix_valid <- false

let clone st =
  {
    g = Graph.copy st.g;
    length = st.length;
    tm = st.tm;
    multipath = st.multipath;
    repair = st.repair;
    n = st.n;
    (* Tree records are immutable once built (refresh and repair replace,
       never mutate), so sharing them across clones is safe. *)
    trees = Array.copy st.trees;
    dirty = Array.copy st.dirty;
    canon = Array.copy st.canon;
    dirty_count = st.dirty_count;
    (* No matrix copy: [loads] always replays the accumulation in full from
       the (shared, immutable) trees, so a clone can start from an empty
       buffer and still produce bit-identical loads. This turns clone from
       O(n²) floats into O(n) + adjacency-pointer copies — the difference
       between 8 MB and a few KB per GA mutant at n = 1000. *)
    matrix = [||];
    subtree = Array.make (max st.n 1) 0.0;
    pair_dem = st.pair_dem; (* immutable; shared *)
    matrix_valid = false;
    (* Copy the outer array only: rows are immutable (patch_adj replaces,
       never mutates), so sharing them across clones is safe, but each
       state must be free to re-point its own rows. *)
    adj = (if st.adj_valid then Array.copy st.adj else [||]);
    adj_valid = st.adj_valid;
    journal = [];
    undo = [];
    touched = Array.make st.n false;
    recomputed = 0;
    repaired = 0;
    rs = None; (* repair scratch is single-owner; the clone grows its own *)
  }
