(** Delta-aware cost-evaluation state: repair shortest-path trees in place
    for the sources an edge flip actually affects.

    The optimizers (local search, GA mutation) spend almost all their time
    evaluating candidates that differ from an already-evaluated topology by
    one or two edges. A full {!Routing.route} rebuilds all [n] shortest-path
    trees; a single-edge change typically invalidates only a few of them,
    and within each invalidated tree typically moves only a small frontier.
    This module keeps the evaluation state of one evolving topology — its
    graph, per-source trees and load matrix — and applies edge flips to it
    with two engines:

    - the {e dynamic} engine (default, [repair:true]) repairs each affected
      tree at flip time: an inserted edge seeds a decrease-key frontier at
      the improved endpoint; a deleted tree edge cuts the child's subtree
      and re-settles it from its surviving neighbours; a deleted non-tree
      edge is proven a no-op. Repair is attempted only while the tree
      carries the {e repair certificate} ({!Cold_graph.Shortest_path.canonical}:
      every vertex strictly farther than its predecessor — then the settle
      order is exactly ascending [(dist, id)] and can be merged instead of
      recomputed); a flip that would break it falls back to the full engine
      for that source.
    - the {e incremental} engine ([repair:false]) only marks affected
      sources dirty and re-runs full Dijkstra for them on the next
      {!loads}.

    {b Bit-identity.} Results are guaranteed byte-for-byte equal to a fresh
    {!Routing.route} on the same topology: the affected-source tests are
    conservative (any source whose fresh tree {e could} differ — including
    exact float ties that flip the deterministic tie-break or an ECMP
    split — is repaired or recomputed), unaffected trees are provably
    byte-stable, the repair pass replays exactly the relaxations the fresh
    run would add or lose (sharing the heap's canonical
    [(priority, vertex-id)] tie-break — see {!Cold_graph.Heap}), and load
    accumulation is always replayed in full source order so float summation
    order never changes. Only Dijkstra work is skipped.

    {b Transactions.} Edge flips are journalled. {!commit} makes them
    permanent; {!rollback} restores graph, trees and dirty flags to the last
    committed state — the propose/evaluate/reject loop of simulated
    annealing maps onto this directly.

    Not thread-safe: one [t] belongs to one domain at a time. Internal
    scratch uses {!Shortest_path.domain_workspace}, so a [t] may migrate
    between domains between calls (as GA members do under a Par pool). *)

type t

val create :
  ?multipath:bool ->
  ?repair:bool ->
  Cold_graph.Graph.t ->
  length:(int -> int -> float) ->
  tm:Cold_traffic.Gravity.t ->
  t
(** [create g ~length ~tm] starts evaluation state at topology [g] (copied;
    the argument is not retained). All trees start dirty — the first
    {!loads} costs the same as a full route. [multipath] selects ECMP
    accumulation exactly as in {!Routing.route}. [repair] (default [true])
    selects the dynamic in-place tree-repair engine; [repair:false] keeps
    the mark-dirty/full-Dijkstra engine. Both are bit-identical to the
    oracle — the flag trades only time. *)

val graph : t -> Cold_graph.Graph.t
(** The state's current topology. Read-only view: mutate it only through
    {!add_edge}/{!remove_edge}/{!retarget}, never directly. *)

val add_edge : t -> int -> int -> unit
(** [add_edge st u v] adds edge [{u,v}], marking every source whose tree the
    new edge could shorten (or tie) for recomputation. No-op if the edge
    already exists. *)

val remove_edge : t -> int -> int -> unit
(** [remove_edge st u v] removes edge [{u,v}], marking every source that
    routed over it (or could have, under a tie) for recomputation. No-op if
    the edge is absent. *)

val retarget : t -> Cold_graph.Graph.t -> int
(** [retarget st target] applies the edge flips turning the state's topology
    into [target] (via {!Cold_graph.Graph.edge_diff}), returning how many.
    [target] is not retained. *)

val loads : t -> Routing.loads
(** Bring the state current — recompute dirty trees, re-accumulate the load
    matrix — and return the loads, bit-identical to
    [Routing.route (graph st)]. Raises {!Routing.Disconnected} exactly when
    a full route would (the state stays usable: trees refreshed, matrix
    invalid). The returned value aliases internal buffers and is valid only
    until the next mutation of [st] — consume it before proposing again. *)

val commit : t -> unit
(** Accept all journalled flips: they become the new baseline and
    {!rollback} can no longer undo them. *)

val rollback : t -> unit
(** Undo all flips since the last {!commit} (or since {!create}): graph,
    trees and dirty flags return to the committed state. Cost is
    proportional to what the rejected flips touched. *)

val clone : t -> t
(** Independent state at the same topology. The clone's baseline is the
    source's {e current} (possibly uncommitted) topology with an empty
    journal; clean trees are shared structurally (safe: tree records are
    never mutated in place). GA mutants fork the parent's state this way. *)

val pending_sources : t -> int
(** Number of sources currently marked dirty — the Dijkstra work the next
    {!loads} will do. Exposed for tests and benchmarks. *)

val recomputed_trees : t -> int
(** Total trees recomputed from scratch over this state's lifetime (clones
    start at 0) — the full-Dijkstra work counter, for tests and
    benchmarks. *)

val repaired_trees : t -> int
(** Total trees repaired in place by the dynamic engine over this state's
    lifetime (clones start at 0). Always 0 when [repair:false]. Provably
    no-op flips (non-tree deletions under the certificate) count neither
    here nor in {!recomputed_trees}. *)
