(** Delta-aware cost-evaluation state: re-run Dijkstra only for the sources
    an edge flip can actually affect.

    The optimizers (local search, GA mutation) spend almost all their time
    evaluating candidates that differ from an already-evaluated topology by
    one or two edges. A full {!Routing.route} rebuilds all [n] shortest-path
    trees; a single-edge change typically invalidates only a few of them.
    This module keeps the evaluation state of one evolving topology — its
    graph, per-source trees and load matrix — applies edge flips to it, and
    on the next {!loads} recomputes only the affected trees.

    {b Bit-identity.} Results are guaranteed byte-for-byte equal to a fresh
    {!Routing.route} on the same topology: the affected-source tests are
    conservative (any source whose fresh tree {e could} differ — including
    exact float ties that flip the deterministic tie-break or an ECMP
    split — is recomputed), unaffected trees are provably byte-stable, and
    load accumulation is always replayed in full source order so float
    summation order never changes. Only Dijkstra work is skipped.

    {b Transactions.} Edge flips are journalled. {!commit} makes them
    permanent; {!rollback} restores graph, trees and dirty flags to the last
    committed state — the propose/evaluate/reject loop of simulated
    annealing maps onto this directly.

    Not thread-safe: one [t] belongs to one domain at a time. Internal
    scratch uses {!Shortest_path.domain_workspace}, so a [t] may migrate
    between domains between calls (as GA members do under a Par pool). *)

type t

val create :
  ?multipath:bool ->
  Cold_graph.Graph.t ->
  length:(int -> int -> float) ->
  tm:Cold_traffic.Gravity.t ->
  t
(** [create g ~length ~tm] starts evaluation state at topology [g] (copied;
    the argument is not retained). All trees start dirty — the first
    {!loads} costs the same as a full route. [multipath] selects ECMP
    accumulation exactly as in {!Routing.route}. *)

val graph : t -> Cold_graph.Graph.t
(** The state's current topology. Read-only view: mutate it only through
    {!add_edge}/{!remove_edge}/{!retarget}, never directly. *)

val add_edge : t -> int -> int -> unit
(** [add_edge st u v] adds edge [{u,v}], marking every source whose tree the
    new edge could shorten (or tie) for recomputation. No-op if the edge
    already exists. *)

val remove_edge : t -> int -> int -> unit
(** [remove_edge st u v] removes edge [{u,v}], marking every source that
    routed over it (or could have, under a tie) for recomputation. No-op if
    the edge is absent. *)

val retarget : t -> Cold_graph.Graph.t -> int
(** [retarget st target] applies the edge flips turning the state's topology
    into [target] (via {!Cold_graph.Graph.edge_diff}), returning how many.
    [target] is not retained. *)

val loads : t -> Routing.loads
(** Bring the state current — recompute dirty trees, re-accumulate the load
    matrix — and return the loads, bit-identical to
    [Routing.route (graph st)]. Raises {!Routing.Disconnected} exactly when
    a full route would (the state stays usable: trees refreshed, matrix
    invalid). The returned value aliases internal buffers and is valid only
    until the next mutation of [st] — consume it before proposing again. *)

val commit : t -> unit
(** Accept all journalled flips: they become the new baseline and
    {!rollback} can no longer undo them. *)

val rollback : t -> unit
(** Undo all flips since the last {!commit} (or since {!create}): graph,
    trees and dirty flags return to the committed state. Cost is
    proportional to what the rejected flips touched. *)

val clone : t -> t
(** Independent state at the same topology. The clone's baseline is the
    source's {e current} (possibly uncommitted) topology with an empty
    journal; clean trees are shared structurally (safe: tree records are
    never mutated in place). GA mutants fork the parent's state this way. *)

val pending_sources : t -> int
(** Number of sources currently marked dirty — the Dijkstra work the next
    {!loads} will do. Exposed for tests and benchmarks. *)

val recomputed_trees : t -> int
(** Total trees recomputed over this state's lifetime (clones start at 0) —
    the incremental engine's work counter, for tests and benchmarks. *)
