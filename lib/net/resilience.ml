module Graph = Cold_graph.Graph
module Traversal = Cold_graph.Traversal
module Robustness = Cold_graph.Robustness
module Context = Cold_context.Context
module Gravity = Cold_traffic.Gravity

type link_report = {
  link : int * int;
  stranded_fraction : float;
  load_fraction : float;
  is_bridge : bool;
}

let separated_demand tm comp =
  let n = Gravity.size tm in
  let stranded = ref 0.0 in
  for s = 0 to n - 1 do
    for d = s + 1 to n - 1 do
      if comp.(s) <> comp.(d) then
        stranded := !stranded +. Gravity.pair_demand tm s d
    done
  done;
  !stranded

let stranded_by_link_failure (net : Network.t) u v =
  let g = net.Network.graph in
  if not (Graph.mem_edge g u v) then 0.0
  else begin
    let tm = net.Network.context.Context.tm in
    let total = Gravity.total tm in
    if total <= 0.0 then 0.0
    else begin
      let broken = Graph.copy g in
      Graph.remove_edge broken u v;
      let (comp, k) = Traversal.connected_components broken in
      if k = 1 then 0.0 else separated_demand tm comp /. total
    end
  end

let stranded_by_node_failure (net : Network.t) v =
  let g = net.Network.graph in
  let n = Graph.node_count g in
  if v < 0 || v >= n then invalid_arg "Resilience.stranded_by_node_failure";
  let tm = net.Network.context.Context.tm in
  let total = Gravity.total tm in
  if total <= 0.0 then 0.0
  else begin
    (* Everything sourced or sunk at v is lost. *)
    let own = Gravity.row_total tm v *. 2.0 in
    let broken = Graph.copy g in
    Graph.remove_all_edges_of broken v;
    let (comp, _) = Traversal.connected_components broken in
    let stranded = ref 0.0 in
    for s = 0 to n - 1 do
      for d = s + 1 to n - 1 do
        if s <> v && d <> v && comp.(s) <> comp.(d) then
          stranded := !stranded +. Gravity.pair_demand tm s d
      done
    done;
    (own +. !stranded) /. total
  end

let link_reports (net : Network.t) =
  let bridges = Robustness.bridges net.Network.graph in
  let total_volume =
    Routing.fold net.Network.loads (fun acc _ _ w -> acc +. w) 0.0
  in
  let reports =
    Graph.fold_edges net.Network.graph
      (fun acc u v ->
        let load = Routing.load net.Network.loads u v in
        {
          link = (u, v);
          stranded_fraction = stranded_by_link_failure net u v;
          load_fraction = (if total_volume > 0.0 then load /. total_volume else 0.0);
          is_bridge = List.mem (u, v) bridges;
        }
        :: acc)
      []
  in
  let report_order a b =
    match Float.compare (-.a.stranded_fraction) (-.b.stranded_fraction) with
    | 0 -> (
      match Float.compare (-.a.load_fraction) (-.b.load_fraction) with
      | 0 ->
        let (u1, v1) = a.link and (u2, v2) = b.link in
        (match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c)
      | c -> c)
    | c -> c
  in
  List.sort report_order reports

let worst_link net =
  match link_reports net with
  | [] -> invalid_arg "Resilience.worst_link: network has no links"
  | r :: _ -> r

let single_points_of_failure (net : Network.t) =
  Robustness.articulation_points net.Network.graph

let survivable (net : Network.t) =
  Robustness.is_two_edge_connected net.Network.graph
