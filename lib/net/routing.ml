module Graph = Cold_graph.Graph
module Shortest_path = Cold_graph.Shortest_path
module Gravity = Cold_traffic.Gravity

exception Disconnected

type loads = {
  n : int;
  matrix : float array;  (* n*n, both (u,v) and (v,u) mirror the value *)
  trees : Shortest_path.tree array;
}

let of_parts ~n ~matrix ~trees =
  if Array.length matrix <> n * n || Array.length trees <> n then
    invalid_arg "Routing.of_parts";
  { n; matrix; trees }

(* Scratch reused across route calls: the load matrix, the subtree
   accumulator and the inner Dijkstra workspace. The trees of a [loads] are
   always freshly allocated, but with a workspace the returned matrix
   ALIASES the workspace buffer — see the .mli caveat. *)
type workspace = {
  w_n : int;
  w_matrix : float array;
  w_subtree : float array;
  w_sp : Shortest_path.workspace;
  (* CSR adjacency buffer, recycled across route calls: Csr.of_graph ?reuse
     rewrites it in place whenever the arrays still fit. *)
  mutable w_csr : Graph.Csr.t option;
}

let workspace ~n =
  if n < 0 then invalid_arg "Routing.workspace";
  {
    w_n = n;
    w_matrix = Array.make (n * n) 0.0;
    w_subtree = Array.make (max n 1) 0.0;
    w_sp = Shortest_path.workspace ~n;
    w_csr = None;
  }

let dls_workspace : workspace option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let domain_workspace ~n =
  match Domain.DLS.get dls_workspace with
  | Some ws when ws.w_n = n -> ws
  | _ ->
    let ws = workspace ~n in
    Domain.DLS.set dls_workspace (Some ws);
    ws

let check_routable ~tm ~dist ~source =
  (* Every demand from [source] must be routable. *)
  let n = Gravity.size tm in
  for d = 0 to n - 1 do
    if Gravity.demand tm source d > 0.0 && Float.equal dist.(d) infinity then
      raise Disconnected
  done

let accumulate ?adj ?csr ?pair_demands ~multipath ~length ~tm ~matrix ~subtree
    ~n tree ~source =
  let s = source in
  let dist = tree.Shortest_path.dist in
  let add_load u v w =
    matrix.((u * n) + v) <- matrix.((u * n) + v) +. w;
    matrix.((v * n) + u) <- matrix.((u * n) + v)
  in
  let pair_demand d =
    match pair_demands with
    | Some pd -> pd.((s * n) + d)
    | None -> Gravity.pair_demand tm s d
  in
  Array.fill subtree 0 n 0.0;
  let order = tree.Shortest_path.order in
  (* Reverse settling order: children are processed before parents, so each
     vertex's inflow is complete when we push it one hop towards [s].
     Demands s→d and d→s are both accumulated here (pair_demand), and the
     outer loop runs over unordered pairs once via d > s filtering. *)
  for i = Array.length order - 1 downto 0 do
    let v = order.(i) in
    if v <> s then begin
      if v > s then subtree.(v) <- subtree.(v) +. pair_demand v;
      if subtree.(v) > 0.0 then begin
        if multipath then begin
          (* ECMP: every neighbour on a shortest path shares equally. *)
          let on_path u =
            dist.(u) +. length u v <= dist.(v) +. (1e-9 *. (1.0 +. dist.(v)))
            && dist.(u) < dist.(v)
          in
          (* CSR segments and adjacency rows enumerate the same neighbours
             in the same ascending order, so the accumulated [preds] list —
             and every downstream float — is identical either way. *)
          let preds =
            match csr with
            | Some c ->
              Graph.Csr.fold_neighbors c v
                (fun acc u -> if on_path u then u :: acc else acc)
                []
            | None ->
              (match adj with
              | Some neighbours ->
                Array.fold_left
                  (fun acc u -> if on_path u then u :: acc else acc)
                  [] neighbours.(v)
              | None -> invalid_arg "Routing.accumulate: multipath needs ~adj")
          in
          (* Degenerate geometries (zero-length links) can leave the strict
             distance test empty; fall back to the tree predecessor. *)
          let preds = if preds = [] then [ tree.Shortest_path.pred.(v) ] else preds in
          let share = subtree.(v) /. float_of_int (List.length preds) in
          List.iter
            (fun u ->
              add_load u v share;
              if u <> s then subtree.(u) <- subtree.(u) +. share)
            preds
        end
        else begin
          let p = tree.Shortest_path.pred.(v) in
          add_load p v subtree.(v);
          if p <> s then subtree.(p) <- subtree.(p) +. subtree.(v)
        end
      end
    end
  done

let route ?(multipath = false) ?workspace g ~length ~tm =
  let n = Graph.node_count g in
  if Gravity.size tm <> n then invalid_arg "Routing.route: size mismatch";
  let (matrix, subtree, sp) =
    match workspace with
    | Some ws ->
      if ws.w_n <> n then invalid_arg "Routing.route: workspace size";
      Array.fill ws.w_matrix 0 (n * n) 0.0;
      (ws.w_matrix, ws.w_subtree, Some ws.w_sp)
    | None -> (Array.make (n * n) 0.0, Array.make (max n 1) 0.0, None)
  in
  (* One flat CSR materialization serves all n single-source trees (and,
     under a workspace, recycles the previous call's arrays). *)
  let csr =
    match workspace with
    | Some ws ->
      let c = Graph.Csr.of_graph ?reuse:ws.w_csr g in
      ws.w_csr <- Some c;
      c
    | None -> Graph.Csr.of_graph g
  in
  let trees =
    Array.init n (fun s ->
        Shortest_path.dijkstra ~csr ?workspace:sp g ~length ~source:s)
  in
  for s = 0 to n - 1 do
    let tree = trees.(s) in
    check_routable ~tm ~dist:tree.Shortest_path.dist ~source:s;
    accumulate ~csr ~multipath ~length ~tm ~matrix ~subtree ~n tree ~source:s
  done;
  { n; matrix; trees }

let load ld u v =
  if u < 0 || v < 0 || u >= ld.n || v >= ld.n then invalid_arg "Routing.load";
  ld.matrix.((u * ld.n) + v)

let fold ld f init =
  let acc = ref init in
  for u = 0 to ld.n - 1 do
    for v = u + 1 to ld.n - 1 do
      let w = ld.matrix.((u * ld.n) + v) in
      if w > 0.0 then acc := f !acc u v w
    done
  done;
  !acc

let total_volume_length ld ~length =
  fold ld (fun acc u v w -> acc +. (w *. length u v)) 0.0

let max_load ld = Array.fold_left Float.max 0.0 ld.matrix

let trees ld = ld.trees
