(** Shortest-path routing of a traffic matrix over a topology (§3.2.1).

    The paper routes every demand over the length-shortest path — "the
    natural choice ... which will minimize the length of routes, and hence
    the bandwidth dependent component of cost", and also what ISPs actually
    deploy. This module computes, for a candidate topology, the per-link
    bandwidth [w] that appears in the k2 cost term, by building one
    shortest-path tree per source and pushing each source's demands down the
    tree in reverse settling order — O(n·(m log n + n)) per topology, the
    dominant cost of the whole synthesis (Fig 4's n³).

    Loads are undirected: demand s→d and d→s both accumulate on the same
    links (shortest paths are symmetric under symmetric lengths and
    deterministic tie-breaking). *)

exception Disconnected
(** Raised when some demand cannot be routed. A data network that cannot
    carry its traffic matrix is infeasible (§1, requirement 2). *)

type loads
(** Per-link traffic volumes for one topology. *)

type workspace
(** Reusable scratch for repeated routing passes: the load matrix, the
    subtree accumulator and the inner Dijkstra workspace. {b Caveat}: a
    [loads] produced with a workspace aliases the workspace's matrix and is
    valid only until the next {!route} on the same workspace — callers that
    retain loads (e.g. {!Network.create}) must route without one. Never
    share a workspace across domains. *)

val workspace : n:int -> workspace
(** [workspace ~n] allocates routing scratch for [n]-PoP topologies. *)

val domain_workspace : n:int -> workspace
(** The calling domain's private workspace (domain-local storage), created
    on first use and rebuilt when [n] changes — one reusable workspace per
    {e Par} domain with no state threaded through task closures. *)

val route :
  ?multipath:bool ->
  ?workspace:workspace ->
  Cold_graph.Graph.t ->
  length:(int -> int -> float) ->
  tm:Cold_traffic.Gravity.t ->
  loads
(** [route g ~length ~tm] routes all demands. Raises {!Disconnected} if [g]
    does not connect every positive demand (with positive populations, any
    disconnection).

    [multipath] (default [false]) selects ECMP load balancing — the "tweaks
    … to allow load balancing" the paper notes real ISPs apply on top of
    shortest-path routing: at every node, traffic towards a destination is
    split equally across all next hops that lie on {e some} shortest path.
    Path lengths (and therefore the k2 cost term) are unchanged — only the
    per-link load distribution differs — so optimization under single-path
    routing remains valid and ECMP is an evaluation-time choice.

    [workspace] reuses scratch across calls; output values are bit-identical
    with and without it, but see the aliasing caveat on {!workspace}. *)

(** {2 Building blocks}

    The pieces [route] is made of, exposed for {!Incremental}, which
    re-runs them for affected sources only. Results are bit-identical to a
    full [route] because both call exactly this code in the same order. *)

val check_routable : tm:Cold_traffic.Gravity.t -> dist:float array -> source:int -> unit
(** Raises {!Disconnected} unless every positive demand out of [source]
    reaches a finite-distance destination in [dist]. *)

val accumulate :
  ?adj:int array array ->
  ?csr:Cold_graph.Graph.Csr.t ->
  ?pair_demands:float array ->
  multipath:bool ->
  length:(int -> int -> float) ->
  tm:Cold_traffic.Gravity.t ->
  matrix:float array ->
  subtree:float array ->
  n:int ->
  Cold_graph.Shortest_path.tree ->
  source:int ->
  unit
(** Push [source]'s demands down its tree in reverse settling order, adding
    onto [matrix] (row-major n×n, mirrored) using [subtree] (length ≥ n) as
    scratch. An adjacency view — [~csr] (a {!Cold_graph.Graph.Csr} snapshot,
    preferred) or [~adj] (the graph's adjacency arrays) — is required when
    [multipath] is true and ignored otherwise; both enumerate neighbours in
    the same ascending order, so results are bit-identical. [?pair_demands]
    is an optional row-major n×n table with [pd.(s*n+d) =
    Gravity.pair_demand tm s d], letting hot callers skip recomputing the
    (immutable) gravity products on every pass; results are bit-identical
    either way. *)

val of_parts :
  n:int ->
  matrix:float array ->
  trees:Cold_graph.Shortest_path.tree array ->
  loads
(** Assemble a [loads] from parts built with {!accumulate} — the incremental
    engine's exit point back into the public load API. Raises
    [Invalid_argument] on size mismatches; does not copy. *)

val load : loads -> int -> int -> float
(** [load ld u v] is the total traffic on link [{u,v}] (0 if not a link). *)

val fold : loads -> ('a -> int -> int -> float -> 'a) -> 'a -> 'a
(** [fold ld f init] folds over links with positive load, [u < v],
    lexicographic. *)

val total_volume_length : loads -> length:(int -> int -> float) -> float
(** [total_volume_length ld ~length] is Σ_links w·ℓ — equivalently
    Σ_routes t_r·L_r of equation (1). *)

val max_load : loads -> float

val trees : loads -> Cold_graph.Shortest_path.tree array
(** The per-source shortest-path trees used for routing — the "routing
    matrix" output of the paper's algorithm (§4, Outputs). *)
