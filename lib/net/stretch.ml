module Graph = Cold_graph.Graph
module Context = Cold_context.Context
module Gravity = Cold_traffic.Gravity

let pair net s d =
  let n = Graph.node_count net.Network.graph in
  if s < 0 || d < 0 || s >= n || d >= n || s = d then
    invalid_arg "Stretch.pair: bad endpoints";
  let direct = Context.distance net.Network.context s d in
  if direct <= 0.0 then invalid_arg "Stretch.pair: co-located PoPs";
  Network.path_length net s d /. direct

let distribution net =
  let n = Graph.node_count net.Network.graph in
  let acc = ref [] in
  for s = n - 1 downto 0 do
    for d = n - 1 downto s + 1 do
      acc := pair net s d :: !acc
    done
  done;
  Array.of_list !acc

let average net =
  let n = Graph.node_count net.Network.graph in
  if n < 2 then nan
  else begin
    let tm = net.Network.context.Context.tm in
    let num = ref 0.0 and den = ref 0.0 in
    for s = 0 to n - 1 do
      for d = s + 1 to n - 1 do
        let w = Gravity.pair_demand tm s d in
        num := !num +. (w *. pair net s d);
        den := !den +. w
      done
    done;
    if Float.equal !den 0.0 then nan else !num /. !den
  end

let maximum net =
  let n = Graph.node_count net.Network.graph in
  if n < 2 then invalid_arg "Stretch.maximum: need at least 2 PoPs";
  let best = ref (neg_infinity, (0, 1)) in
  for s = 0 to n - 1 do
    for d = s + 1 to n - 1 do
      let x = pair net s d in
      if x > fst !best then best := (x, (s, d))
    done
  done;
  !best
