module Graph = Cold_graph.Graph
module Shortest_path = Cold_graph.Shortest_path
module Context = Cold_context.Context
module Gravity = Cold_traffic.Gravity

type report = {
  down_node_count : int;
  down_link_count : int;
  delivered_fraction : float;
  lost_fraction : float;
  failed_pairs : int;
  disconnected_pairs : int;
  stretch : float;
  routed_volume_length : float;
  overloaded_links : int;
  max_utilization : float;
}

let evaluate (net : Network.t) ~down_nodes ~down_links =
  let g0 = net.Network.graph in
  let n = Graph.node_count g0 in
  let ctx = net.Network.context in
  let tm = ctx.Context.tm in
  let down = Array.make n false in
  List.iter
    (fun v ->
      if v < 0 || v >= n then
        invalid_arg "Survivability.evaluate: node out of range";
      down.(v) <- true)
    down_nodes;
  (* The degraded topology: failed PoPs lose every incident link, failed
     links disappear individually. Failing an absent pair is a no-op, so a
     trace drawn over all n(n-1)/2 potential conduits applies unchanged to
     any topology on the same context — the "identical traces across
     designs" contract of {!Cold_sim.Failure}. *)
  let degraded = Graph.copy g0 in
  let down_node_count = ref 0 in
  Array.iteri
    (fun v d ->
      if d then begin
        incr down_node_count;
        Graph.remove_all_edges_of degraded v
      end)
    down;
  let down_link_count = ref 0 in
  List.iter
    (fun (u, v) ->
      if u < 0 || v < 0 || u >= n || v >= n || u = v then
        invalid_arg "Survivability.evaluate: link out of range";
      if Graph.mem_edge degraded u v then begin
        Graph.remove_edge degraded u v;
        incr down_link_count
      end)
    down_links;
  let length u v = Context.distance ctx u v in
  (* Reroute with the same machinery a full Routing.route uses — one CSR
     snapshot, per-source Dijkstra through the calling domain's reusable
     workspace — so a failure-free evaluation is bit-identical to the
     baseline routing (trees, loads and volume·length all match exactly). *)
  let csr = Graph.Csr.of_graph degraded in
  let sp = Shortest_path.domain_workspace ~n in
  let trees =
    Array.init n (fun s ->
        Shortest_path.dijkstra ~csr ~workspace:sp degraded ~length ~source:s)
  in
  (* Routable demand table: pairs with a failed endpoint or separated by the
     failure carry nothing; everything else reroutes. *)
  let pd = Array.make (n * n) 0.0 in
  for s = 0 to n - 1 do
    if not down.(s) then begin
      let dist = trees.(s).Shortest_path.dist in
      for d = 0 to n - 1 do
        if d <> s && (not down.(d)) && dist.(d) < infinity then
          pd.((s * n) + d) <- Gravity.pair_demand tm s d
      done
    end
  done;
  let total = Gravity.total tm in
  let base_trees = Routing.trees net.Network.loads in
  let lost = ref 0.0 in
  let failed_pairs = ref 0 in
  let disconnected_pairs = ref 0 in
  let stretch_num = ref 0.0 in
  let stretch_den = ref 0.0 in
  for s = 0 to n - 1 do
    for d = s + 1 to n - 1 do
      if down.(s) || down.(d) then begin
        incr failed_pairs;
        lost := !lost +. Gravity.pair_demand tm s d
      end
      else begin
        let dist = trees.(s).Shortest_path.dist.(d) in
        if dist < infinity then begin
          let dem = Gravity.pair_demand tm s d in
          if dem > 0.0 then begin
            stretch_num := !stretch_num +. (dem *. dist);
            stretch_den :=
              !stretch_den +. (dem *. base_trees.(s).Shortest_path.dist.(d))
          end
        end
        else begin
          incr disconnected_pairs;
          lost := !lost +. Gravity.pair_demand tm s d
        end
      end
    done
  done;
  (* Push the routable demands down the degraded trees: the per-link loads
     the surviving network must carry, compared against the capacities the
     un-failed design was provisioned with. *)
  let matrix = Array.make (n * n) 0.0 in
  let subtree = Array.make (max n 1) 0.0 in
  for s = 0 to n - 1 do
    if not down.(s) then
      Routing.accumulate ~csr ~pair_demands:pd ~multipath:false ~length ~tm
        ~matrix ~subtree ~n trees.(s) ~source:s
  done;
  let dloads = Routing.of_parts ~n ~matrix ~trees in
  let routed_volume_length = Routing.total_volume_length dloads ~length in
  let overloaded_links = ref 0 in
  let max_utilization = ref 0.0 in
  Routing.fold dloads
    (fun () u v w ->
      let c = Capacity.capacity net.Network.capacities u v in
      if w > c then incr overloaded_links;
      if c > 0.0 then begin
        let u_ = w /. c in
        if u_ > !max_utilization then max_utilization := u_
      end)
    ();
  let lost_fraction = if total > 0.0 then !lost /. total else 0.0 in
  {
    down_node_count = !down_node_count;
    down_link_count = !down_link_count;
    delivered_fraction = 1.0 -. lost_fraction;
    lost_fraction;
    failed_pairs = !failed_pairs;
    disconnected_pairs = !disconnected_pairs;
    stretch =
      (if !stretch_den > 0.0 then !stretch_num /. !stretch_den else 1.0);
    routed_volume_length;
    overloaded_links = !overloaded_links;
    max_utilization = !max_utilization;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>down: %d PoPs, %d links@ delivered: %.4f (lost %.4f)@ pairs: %d \
     failed, %d disconnected@ stretch: %.4f@ overloaded links: %d (max \
     utilization %.3f)@]"
    r.down_node_count r.down_link_count r.delivered_fraction r.lost_fraction
    r.failed_pairs r.disconnected_pairs r.stretch r.overloaded_links
    r.max_utilization
