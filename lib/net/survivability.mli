(** Survivability evaluation of a network under a concrete failure set.

    {!Resilience} answers {e structural} questions about single failures
    (which traffic a cut strands, which links are bridges). This module
    evaluates an arbitrary {e simultaneous} failure set — down PoPs plus down
    links, e.g. one step of a {!Cold_sim.Failure} trace — by actually
    rerouting the context's traffic matrix over the degraded topology and
    reporting what the surviving network delivers, how far traffic detours,
    and where the rerouted load exceeds the capacities the un-failed design
    was provisioned with.

    Rerouting reuses the routing stack's own machinery (one CSR snapshot,
    per-source Dijkstra through the calling domain's reusable workspace,
    {!Routing.accumulate} for the loads), so an {e empty} failure set
    reproduces the baseline routing bit for bit: [routed_volume_length]
    equals [Routing.total_volume_length net.loads] exactly, and the k2 cost
    term of {!Cold.Cost} can be recovered from it. Evaluation is a pure
    function of its arguments — fan it out across domains freely. *)

type report = {
  down_node_count : int;  (** PoPs failed in this set. *)
  down_link_count : int;
      (** Links removed individually (present in the topology and not
          already implied by a failed endpoint). *)
  delivered_fraction : float;
      (** Demand still routable over the degraded topology, as a fraction
          of total demand. 1.0 under an empty failure set. *)
  lost_fraction : float;  (** [1 - delivered_fraction]. *)
  failed_pairs : int;  (** Unordered pairs with at least one failed endpoint. *)
  disconnected_pairs : int;
      (** Unordered pairs of surviving PoPs separated by the failure. *)
  stretch : float;
      (** Demand-weighted ratio of rerouted to baseline path length over
          delivered pairs; 1.0 when nothing is delivered (and exactly 1.0
          under an empty failure set). Always >= 1 otherwise. *)
  routed_volume_length : float;
      (** Sum of load × length over the degraded topology's links — the
          bandwidth-cost integrand restricted to delivered traffic. *)
  overloaded_links : int;
      (** Surviving links whose rerouted load exceeds their provisioned
          capacity (links the baseline routing left unloaded have capacity 0
          and count as overloaded as soon as any detour uses them). *)
  max_utilization : float;
      (** Max load/capacity over surviving links with positive capacity;
          [1/O] under an empty failure set with the default policy. *)
}

val evaluate :
  Network.t -> down_nodes:int list -> down_links:(int * int) list -> report
(** [evaluate net ~down_nodes ~down_links] reroutes [net]'s traffic matrix
    over the topology with the given PoPs and links removed. Failing an
    absent link (or a link of an already-failed PoP) is a no-op, so failure
    sets drawn over all potential conduits apply unchanged to any topology
    on the same context. Raises [Invalid_argument] on out-of-range indices
    or a self-loop link. *)

val pp_report : Format.formatter -> report -> unit
