module Graph = Cold_graph.Graph

(* Internal control flow only; every public entry point catches this and
   returns a typed [result]. *)
exception Err of Parse_error.t

let err line message = raise (Err (Parse_error.make ~line message))

type token = { kind : kind; line : int }
and kind = Lbracket | Rbracket | Word of string

let tokenize text =
  let tokens = ref [] in
  let n = String.length text in
  let i = ref 0 in
  let line = ref 1 in
  let push kind = tokens := { kind; line = !line } :: !tokens in
  while !i < n do
    let c = text.[!i] in
    if c = '[' then begin
      push Lbracket;
      incr i
    end
    else if c = ']' then begin
      push Rbracket;
      incr i
    end
    else if c = '"' then begin
      (* Quoted string: consumed as one token, quotes stripped. *)
      let start_line = !line in
      let j = ref (!i + 1) in
      while !j < n && text.[!j] <> '"' do
        if text.[!j] = '\n' then incr line;
        incr j
      done;
      if !j >= n then err start_line "unterminated string";
      tokens :=
        { kind = Word (String.sub text (!i + 1) (!j - !i - 1)); line = start_line }
        :: !tokens;
      i := !j + 1
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '\n' then begin
      incr line;
      incr i
    end
    else begin
      let j = ref !i in
      while
        !j < n
        &&
        let d = text.[!j] in
        d <> ' ' && d <> '\t' && d <> '\n' && d <> '\r' && d <> '[' && d <> ']'
      do
        incr j
      done;
      push (Word (String.sub text !i (!j - !i)));
      i := !j
    end
  done;
  List.rev !tokens

(* A GML value is either a scalar word or a bracketed list of (key, value)
   pairs; values remember the source line of their key for error reports. *)
type value = Scalar of string | Block of (string * located) list
and located = { value : value; vline : int }

(* Parses pairs until Rbracket (closed = true) or end of input
   (closed = false); returns (pairs, rest, closed). *)
let rec parse_block tokens =
  match tokens with
  | [] -> ([], [], false)
  | { kind = Rbracket; _ } :: rest -> ([], rest, true)
  | { kind = Word key; line } :: { kind = Lbracket; _ } :: rest ->
    let (inner, rest, closed) = parse_block rest in
    if not closed then err line ("unterminated block: " ^ key);
    let (siblings, rest, closed) = parse_block rest in
    ((key, { value = Block inner; vline = line }) :: siblings, rest, closed)
  | { kind = Word key; line } :: { kind = Word v; _ } :: rest ->
    let (siblings, rest, closed) = parse_block rest in
    ((key, { value = Scalar v; vline = line }) :: siblings, rest, closed)
  | { kind = Word key; line } :: ([] | { kind = Rbracket; _ } :: _) ->
    err line ("key without value: " ^ key)
  | { kind = Lbracket; line } :: _ -> err line "unexpected '['"

let find_all key pairs =
  List.filter_map (fun (k, v) -> if k = key then Some v else None) pairs

let find_scalar key pairs =
  match find_all key pairs with
  | { value = Scalar s; _ } :: _ -> Some s
  | _ -> None

let parse_internal text =
  let tokens = tokenize text in
  let (top, rest, closed) = parse_block tokens in
  if closed || rest <> [] then begin
    let line = match rest with t :: _ -> t.line | [] -> 0 in
    err line "unbalanced brackets"
  end;
  let graph_pairs =
    match find_all "graph" top with
    | { value = Block pairs; _ } :: _ -> pairs
    | _ -> err 0 "no graph block"
  in
  let node_ids =
    List.filter_map
      (function
        | { value = Block pairs; vline } -> (
          match find_scalar "id" pairs with
          | Some s -> (
            match int_of_string_opt s with
            | Some id -> Some id
            | None -> err vline "non-integer node id")
          | None -> err vline "node without id")
        | { value = Scalar _; vline } -> err vline "malformed node")
      (find_all "node" graph_pairs)
  in
  let sorted = List.sort_uniq Int.compare node_ids in
  let index = Hashtbl.create (List.length sorted) in
  List.iteri (fun i id -> Hashtbl.replace index id i) sorted;
  let g = Graph.create (List.length sorted) in
  List.iter
    (function
      | { value = Block pairs; vline } -> (
        let endpoint key =
          match find_scalar key pairs with
          | Some s -> (
            match int_of_string_opt s with
            | Some id -> (
              match Hashtbl.find_opt index id with
              | Some i -> i
              | None -> err vline "edge endpoint is not a declared node")
            | None -> err vline "non-integer edge endpoint")
          | None -> err vline "edge without source/target"
        in
        let u = endpoint "source" and v = endpoint "target" in
        (* Zoo files contain self-loops and parallel edges; drop/collapse. *)
        if u <> v then Graph.add_edge g u v)
      | { value = Scalar _; vline } -> err vline "malformed edge")
    (find_all "edge" graph_pairs);
  g

let parse text =
  match parse_internal text with
  | g -> Ok g
  | exception Err e -> Error e

let read_file ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> parse (really_input_string ic (in_channel_length ic)))

let roundtrip_check g =
  match parse (Gml.of_graph g) with
  | Ok h -> Graph.equal g h
  | Error _ -> false
