(** Shared error type for the topology parsers ({!Gml_parser},
    {!Edge_list}). Carries the 1-based source line the problem was detected
    on ([line = 0] when no position applies, e.g. empty input). *)

type t = { line : int; message : string }

val make : line:int -> string -> t

val to_string : t -> string
(** [to_string e] renders ["line L: message"] (or just the message when no
    position is attached) for CLI and log output. *)
