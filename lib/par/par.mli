(** Deterministic fixed-size domain pool for evaluation fan-outs.

    COLD's optimizer spends essentially all of its time in [Cost.evaluate];
    a GA run performs ~10⁴ independent evaluations per context and the
    ensemble layers multiply that by dozens of contexts. This module turns
    those fan-outs into multicore work without changing a single bit of
    output: tasks are indexed, every worker writes its result into the slot
    named by the task's index, and the caller reduces the result {e array}
    in index order. Reduction order — and therefore every float sum and
    tie-break downstream — is identical to the sequential run regardless of
    how the scheduler interleaves workers.

    Only the OCaml 5 stdlib is used: [Domain], [Mutex] and [Condition].

    {b Purity requirement.} With more than one domain the mapped function
    runs concurrently on several domains, so it must not mutate shared
    state (drawing from a shared {!Cold_prng.Prng} counts as mutation).
    Pure functions of their argument — like COLD cost evaluation — qualify.

    {b Determinism of exceptions.} If several tasks raise, the exception
    re-raised by {!map_array} is the one from the {e smallest} task index,
    matching what a sequential left-to-right run would report first. All
    tasks run to completion before the exception propagates. *)

type t
(** A pool of worker domains (or the sequential no-pool degenerate). Pools
    are not reentrant: do not call {!map_array} on the same pool from
    within a mapped function. *)

val resolve : ?domains:int -> unit -> int
(** [resolve ?domains ()] normalizes the user-facing concurrency knob:
    [None] and [Some 1] mean sequential (1), [Some 0] autodetects via
    [Domain.recommended_domain_count ()], [Some k] with [k >= 2] means [k]
    concurrent evaluation streams. Raises [Invalid_argument] if
    [domains < 0]. *)

val create : domains:int -> t
(** [create ~domains] makes a pool with [domains] concurrent evaluation
    streams: the calling domain participates in every map, so [domains - 1]
    worker domains are spawned. [domains = 1] spawns nothing and runs
    purely sequentially; [domains = 0] autodetects as in {!resolve}.
    Raises [Invalid_argument] if [domains < 0]. *)

val parallelism : t -> int
(** Number of concurrent evaluation streams (1 for a sequential pool). *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array pool f xs] is [Array.map f xs], computed by the pool.
    [f xs.(i)] lands in slot [i] of the result whatever domain ran it.
    Raises [Invalid_argument] if the pool has been shut down. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map pool f xs] is [List.map f xs], computed by the pool. *)

val shutdown : t -> unit
(** Stop and join the worker domains. Idempotent. The pool cannot be used
    afterwards. Sequential pools are unaffected. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [with_pool ~domains f] runs [f] with a fresh pool and always shuts it
    down, even if [f] raises. *)
