let uniform g ~lo ~hi = lo +. ((hi -. lo) *. Prng.float g)

let exponential g ~mean =
  if mean <= 0.0 then invalid_arg "Dist.exponential: mean must be positive";
  let u = 1.0 -. Prng.float g in
  -.mean *. log u

let pareto g ~shape ~scale =
  if shape <= 0.0 || scale <= 0.0 then
    invalid_arg "Dist.pareto: shape and scale must be positive";
  let u = 1.0 -. Prng.float g in
  scale /. (u ** (1.0 /. shape))

let pareto_with_mean g ~shape ~mean =
  if shape <= 1.0 then
    invalid_arg "Dist.pareto_with_mean: mean is finite only for shape > 1";
  let scale = mean *. (shape -. 1.0) /. shape in
  pareto g ~shape ~scale

let geometric g ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Dist.geometric: p must be in (0,1]";
  if Float.equal p 1.0 then 0
  else begin
    let u = 1.0 -. Prng.float g in
    (* Inverse CDF: k = floor (log u / log (1-p)). *)
    int_of_float (Float.floor (log u /. log (1.0 -. p)))
  end

let normal g ~mean ~stddev =
  let u1 = 1.0 -. Prng.float g and u2 = Prng.float g in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (stddev *. z)

let poisson g ~mean =
  if mean < 0.0 then invalid_arg "Dist.poisson: mean must be non-negative";
  if Float.equal mean 0.0 then 0
  else if mean > 60.0 then
    (* Normal approximation with continuity correction. *)
    max 0 (int_of_float (Float.round (normal g ~mean ~stddev:(sqrt mean))))
  else begin
    let limit = exp (-.mean) in
    let rec loop k prod =
      let prod = prod *. Prng.float g in
      if prod <= limit then k else loop (k + 1) prod
    in
    loop 0 1.0
  end

let bernoulli g ~p = Prng.float g < p

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = Prng.int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation g n =
  let a = Array.init n (fun i -> i) in
  shuffle g a;
  a

let sample_without_replacement g ~k ~n =
  if k < 0 || k > n then invalid_arg "Dist.sample_without_replacement";
  (* Partial Fisher–Yates over an index array. *)
  let a = Array.init n (fun i -> i) in
  for i = 0 to k - 1 do
    let j = i + Prng.int g (n - i) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.sub a 0 k

let choose_weighted g w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Dist.choose_weighted: empty weights";
  let total = Array.fold_left (fun acc x ->
      if x < 0.0 then invalid_arg "Dist.choose_weighted: negative weight";
      acc +. x) 0.0 w
  in
  if total <= 0.0 then invalid_arg "Dist.choose_weighted: all weights zero";
  let target = Prng.float g *. total in
  let rec find i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if target < acc then i else find (i + 1) acc
  in
  find 0 0.0
