type format = Edges | Gml | Summary

type design = {
  n : int;
  seed : int;
  params : Cold.Cost.params;
  generations : int;
  population : int;
  permutations : int;
  survivable : bool;
}

type job =
  | Synth of { design : design; format : format }
  | Ensemble of { design : design; count : int }
  | Survive of {
      design : design;
      steps : int;
      fseed : int;
      rates : Cold_sim.Failure.rates;
    }

type request = Job of job | Stats | Ping | Drain

type envelope = { id : string; body : request; deadline_ms : int option }

(* --- limits ----------------------------------------------------------------- *)

let max_id_len = 64
let max_n = 2000
let max_count = 10_000
let max_steps = 100_000
let max_population = 10_000
let max_generations = 100_000

let default_design ~n ~seed =
  {
    n;
    seed;
    params = Cold.Cost.params ();
    generations = 20;
    population = 16;
    permutations = 2;
    survivable = false;
  }

(* --- parsing ---------------------------------------------------------------- *)

let id_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '.' || c = '_' || c = '-' || c = ':'

let valid_id id =
  let len = String.length id in
  len > 0 && len <= max_id_len && String.for_all id_char id

(* One key=value token. *)
let split_kv tok =
  match String.index_opt tok '=' with
  | None -> None
  | Some i ->
    Some (String.sub tok 0 i, String.sub tok (i + 1) (String.length tok - i - 1))

let int_in ~key ~lo ~hi v =
  match int_of_string_opt v with
  | Some x when x >= lo && x <= hi -> Ok x
  | Some _ -> Error (Printf.sprintf "%s out of range [%d, %d]" key lo hi)
  | None -> Error (Printf.sprintf "%s is not an integer" key)

let any_int ~key v =
  match int_of_string_opt v with
  | Some x -> Ok x
  | None -> Error (Printf.sprintf "%s is not an integer" key)

let nonneg_float ~key v =
  match float_of_string_opt v with
  | Some x when Float.is_finite x && x >= 0.0 -> Ok x
  | Some _ -> Error (Printf.sprintf "%s must be finite and >= 0" key)
  | None -> Error (Printf.sprintf "%s is not a number" key)

let unit_float ~key v =
  match float_of_string_opt v with
  | Some x when Float.is_finite x && x >= 0.0 && x <= 1.0 -> Ok x
  | Some _ -> Error (Printf.sprintf "%s must be in [0, 1]" key)
  | None -> Error (Printf.sprintf "%s is not a number" key)

let bool_flag ~key v =
  match v with
  | "0" | "false" -> Ok false
  | "1" | "true" -> Ok true
  | _ -> Error (Printf.sprintf "%s must be 0/1 or true/false" key)

let format_of_name = function
  | "edges" -> Ok Edges
  | "gml" -> Ok Gml
  | "summary" -> Ok Summary
  | other ->
    Error (Printf.sprintf "unknown format %S (known: edges, gml, summary)" other)

let format_name = function Edges -> "edges" | Gml -> "gml" | Summary -> "summary"

(* Shared mutable scratch for one parse: the key=value pairs still
   unconsumed. Every verb takes what it knows; leftovers are an error, so
   typos ([stepz=5]) fail loudly instead of silently meaning defaults. *)
type pairs = { mutable kvs : (string * string) list }

let take pairs key =
  match List.assoc_opt key pairs.kvs with
  | None -> None
  | Some v ->
    pairs.kvs <- List.filter (fun (k, _) -> k <> key) pairs.kvs;
    Some v

let ( let* ) = Result.bind

let take_or ~default pairs key conv =
  match take pairs key with None -> Ok default | Some v -> conv ~key v

let take_req pairs key conv =
  match take pairs key with
  | None -> Error (Printf.sprintf "missing required %s=" key)
  | Some v -> conv ~key v

let parse_design pairs =
  let* n = take_req pairs "n" (int_in ~lo:2 ~hi:max_n) in
  let* seed = take_req pairs "seed" any_int in
  let d = default_design ~n ~seed in
  let* k0 = take_or ~default:d.params.Cold.Cost.k0 pairs "k0" nonneg_float in
  let* k1 = take_or ~default:d.params.Cold.Cost.k1 pairs "k1" nonneg_float in
  let* k2 = take_or ~default:d.params.Cold.Cost.k2 pairs "k2" nonneg_float in
  let* k3 = take_or ~default:d.params.Cold.Cost.k3 pairs "k3" nonneg_float in
  let* generations =
    take_or ~default:d.generations pairs "gens" (int_in ~lo:1 ~hi:max_generations)
  in
  let* population =
    take_or ~default:d.population pairs "pop" (int_in ~lo:4 ~hi:max_population)
  in
  let* permutations =
    take_or ~default:d.permutations pairs "perms" (int_in ~lo:0 ~hi:1000)
  in
  let* survivable = take_or ~default:d.survivable pairs "survivable" bool_flag in
  Ok
    {
      n;
      seed;
      params = { Cold.Cost.k0; k1; k2; k3 };
      generations;
      population;
      permutations;
      survivable;
    }

let parse_rates pairs =
  let d = Cold_sim.Failure.default_rates in
  let* link_rate =
    take_or ~default:d.Cold_sim.Failure.link_rate pairs "link_rate" unit_float
  in
  let* node_rate =
    take_or ~default:d.Cold_sim.Failure.node_rate pairs "node_rate" unit_float
  in
  let* regional_rate =
    take_or ~default:d.Cold_sim.Failure.regional_rate pairs "regional_rate"
      unit_float
  in
  let* regional_radius =
    take_or ~default:d.Cold_sim.Failure.regional_radius pairs "regional_radius"
      nonneg_float
  in
  Ok { Cold_sim.Failure.link_rate; node_rate; regional_rate; regional_radius }

let parse_body verb pairs =
  match verb with
  | "synth" ->
    let* design = parse_design pairs in
    let* format =
      match take pairs "format" with
      | None -> Ok Summary
      | Some v -> format_of_name v
    in
    Ok (Job (Synth { design; format }))
  | "ensemble" ->
    let* design = parse_design pairs in
    let* count = take_req pairs "count" (int_in ~lo:1 ~hi:max_count) in
    Ok (Job (Ensemble { design; count }))
  | "survive" ->
    let* design = parse_design pairs in
    let* steps = take_req pairs "steps" (int_in ~lo:1 ~hi:max_steps) in
    let* fseed = take_or ~default:design.seed pairs "fseed" any_int in
    let* rates = parse_rates pairs in
    Ok (Job (Survive { design; steps; fseed; rates }))
  | "stats" -> Ok Stats
  | "ping" -> Ok Ping
  | "drain" -> Ok Drain
  | other ->
    Error
      (Printf.sprintf
         "unknown verb %S (known: synth, ensemble, survive, stats, ping, drain)"
         other)

let parse line =
  let tokens =
    String.split_on_char ' ' line
    |> List.concat_map (String.split_on_char '\t')
    |> List.filter (fun t -> t <> "")
  in
  match tokens with
  | [] -> Error ("-", "empty request line")
  | [ _verb ] -> Error ("-", "missing request id")
  | verb :: id :: rest ->
    if not (valid_id id) then
      Error ("-", "invalid request id (1-64 chars of [A-Za-z0-9._:-])")
    else begin
      let kvs = List.map split_kv rest in
      if List.exists (fun o -> o = None) kvs then
        Error (id, "parameters must be key=value tokens")
      else begin
        let pairs = { kvs = List.filter_map Fun.id kvs } in
        match parse_body verb pairs with
        | Error msg -> Error (id, msg)
        | Ok body -> (
          let deadline =
            match take pairs "deadline_ms" with
            | None -> Ok None
            | Some v -> (
              match int_in ~key:"deadline_ms" ~lo:0 ~hi:86_400_000 v with
              | Ok ms -> Ok (Some ms)
              | Error e -> Error e)
          in
          match deadline with
          | Error msg -> Error (id, msg)
          | Ok deadline_ms -> (
            match pairs.kvs with
            | [] -> Ok { id; body; deadline_ms }
            | (k, _) :: _ ->
              Error (id, Printf.sprintf "unknown parameter %S for %s" k verb)))
      end
    end

(* --- canonical keys ---------------------------------------------------------- *)

let verb_of_job = function
  | Synth _ -> "synth"
  | Ensemble _ -> "ensemble"
  | Survive _ -> "survive"

(* Floats are rendered with %h (exact hexadecimal), so two parameter
   spellings canonicalize identically iff they denote the same double. *)
let canonical_design d =
  Printf.sprintf "n=%d seed=%d k0=%h k1=%h k2=%h k3=%h gens=%d pop=%d perms=%d \
                  survivable=%b"
    d.n d.seed d.params.Cold.Cost.k0 d.params.Cold.Cost.k1
    d.params.Cold.Cost.k2 d.params.Cold.Cost.k3 d.generations d.population
    d.permutations d.survivable

let canonical_job = function
  | Synth { design; format } ->
    Printf.sprintf "synth %s format=%s" (canonical_design design)
      (format_name format)
  | Ensemble { design; count } ->
    Printf.sprintf "ensemble %s count=%d" (canonical_design design) count
  | Survive { design; steps; fseed; rates } ->
    Printf.sprintf
      "survive %s steps=%d fseed=%d link_rate=%h node_rate=%h regional_rate=%h \
       regional_radius=%h"
      (canonical_design design) steps fseed rates.Cold_sim.Failure.link_rate
      rates.Cold_sim.Failure.node_rate rates.Cold_sim.Failure.regional_rate
      rates.Cold_sim.Failure.regional_radius

(* --- response framing -------------------------------------------------------- *)

let frame_ok ~id payload =
  Printf.sprintf "ok %s %d\n%s" id (String.length payload) payload

let frame_err ~id ~code msg =
  (* Keep the frame single-line whatever the message contains. *)
  let msg =
    String.map (fun c -> if c = '\n' || c = '\r' then ' ' else c) msg
  in
  Printf.sprintf "err %s %s %s\n" id code msg

let json_float x =
  (* Shortest decimal that round-trips: try increasing precision; %.17g is
     always exact for finite doubles. Deterministic by construction. *)
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.1f" x
  else
    let rec try_prec p =
      if p > 17 then Printf.sprintf "%.17g" x
      else
        let s = Printf.sprintf "%.*g" p x in
        if Float.equal (float_of_string s) x then s else try_prec (p + 1)
    in
    try_prec 9
