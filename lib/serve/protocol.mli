(** Wire codec for the [cold_serve] request/response protocol.

    The protocol is line-delimited ASCII: one request per ['\n']-terminated
    line, one response frame per request. The codec is {e pure} — no
    sockets, no clocks — so every parse and every frame rendering is a
    deterministic function of its input, and the robustness suite can
    exercise it without a daemon. See doc/SERVE.md for the full grammar.

    Requests:
    {v
    <verb> <id> [key=value]...
    v}
    where [verb] is one of [synth], [ensemble], [survive], [stats], [ping],
    [drain]; [id] is a client-chosen correlation token echoed verbatim in
    the response. Unknown keys, out-of-range values and malformed numbers
    are rejected with a typed error — parsing never raises.

    Responses:
    {v
    ok <id> <len>\n<len payload bytes>
    err <id> <code> <message>\n
    v}
    The payload length is exact, so frames can be read without lookahead;
    payloads themselves always end in a newline. A cached answer re-renders
    the identical frame: bit-for-bit equality of replayed responses is the
    service's core contract. *)

type format = Edges | Gml | Summary
(** Result serializations: the {!Cold_netio.Edge_list} text format, the
    Zoo-compatible {!Cold_netio.Gml} rendering, or a flat JSON summary of
    topology metrics and cost breakdown. *)

type design = {
  n : int;  (** PoP count of the drawn context (2..2000). *)
  seed : int;  (** Context + GA stream seed. *)
  params : Cold.Cost.params;  (** k0–k3; defaults = paper baseline. *)
  generations : int;  (** GA generations; default 20. *)
  population : int;  (** GA population; default 16. *)
  permutations : int;  (** Heuristic seeding restarts; default 2. *)
  survivable : bool;  (** 2-edge-connected constraint; default false. *)
}
(** One fully-normalized synthesis problem: context spec, cost point and
    GA budget. Two requests with the same [design] denote the same
    deterministic computation. *)

type job =
  | Synth of { design : design; format : format }
  | Ensemble of { design : design; count : int }
  | Survive of {
      design : design;
      steps : int;
      fseed : int;  (** Failure-trace seed (independent of the design seed). *)
      rates : Cold_sim.Failure.rates;
    }
      (** Cacheable computations — the verbs that reach the scheduler. *)

type request =
  | Job of job
  | Stats  (** Server counters as JSON; never cached. *)
  | Ping
  | Drain  (** Finish queued work, then shut down. *)

type envelope = {
  id : string;
  body : request;
  deadline_ms : int option;
      (** Queueing budget: a job still waiting after this many
          milliseconds is answered [err … deadline] instead of evaluated. *)
}

val parse : string -> (envelope, string * string) result
(** [parse line] decodes one request line. [Error (id, message)] carries
    the correlation token when the line got far enough to contain one and
    ["-"] otherwise, so the server can always address its error frame. *)

val canonical_job : job -> string
(** The canonical request key: verb plus every parameter (defaults filled
    in) in a fixed order, floats rendered exactly ([%h]). Two lines that
    parse to the same computation canonicalize identically — this string
    is the request cache's identity and the params half of its digest. *)

val verb_of_job : job -> string

val format_name : format -> string

val frame_ok : id:string -> string -> string
(** [frame_ok ~id payload] is ["ok <id> <len>\n" ^ payload]. *)

val frame_err : id:string -> code:string -> string -> string
(** [frame_err ~id ~code msg] is ["err <id> <code> <msg>\n"]. Codes in use:
    [parse], [params], [shed], [deadline], [draining], [oversized],
    [internal]. *)

val json_float : float -> string
(** Shortest decimal rendering that round-trips the double exactly
    ([%.17g] fallback) — deterministic, valid JSON. Used by every JSON
    payload so replayed bytes cannot drift. *)
