module P = Protocol

type config = {
  port : int;
  domains : int;
  queue_capacity : int;
  batch : int;
  cache_slots : int;
  max_line : int;
  cache_file : string option;
}

let default_config =
  {
    port = 0;
    domains = 1;
    queue_capacity = 64;
    batch = 8;
    cache_slots = 256;
    max_line = 4096;
    cache_file = None;
  }

(* One client connection. [wlock] serializes response frames; [inflight]
   counts queued-but-unanswered jobs so the file descriptor is only closed
   once the scheduler has written every pending reply (closing earlier
   would let the kernel recycle the fd number under the scheduler). *)
type conn = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  wlock : Mutex.t;
  mutable inflight : int;
  mutable dead : bool;  (* peer gone or protocol violation: stop reading *)
}

type job_item = {
  jconn : conn;
  jid : string;
  job : P.job;
  deadline_ms : int option;
  enqueued_at : float;
}

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  service : Service.t;
  qmutex : Mutex.t;
  qcond : Condition.t;
  queue : job_item Queue.t;
  mutable unanswered : int;  (* admitted jobs not yet replied to *)
  mutable draining : bool;
  mutable conns : conn list;
}

(* --- socket helpers ----------------------------------------------------------- *)

let rec write_all fd bytes off len =
  if len > 0 then begin
    let written = Unix.write fd bytes off len in
    write_all fd bytes (off + written) (len - written)
  end

(* Best-effort frame write: a vanished peer must not take the daemon down,
   so EPIPE and friends just mark the connection dead. *)
let send conn frame =
  Mutex.lock conn.wlock;
  (try
     let b = Bytes.unsafe_of_string frame in
     write_all conn.fd b 0 (Bytes.length b)
   with Unix.Unix_error _ | Sys_error _ -> conn.dead <- true);
  Mutex.unlock conn.wlock

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* Run [f] with SIGTERM/SIGINT blocked on the calling thread, restoring the
   previous mask afterwards. Domains spawned inside [f] inherit the blocked
   mask, so shutdown signals can only ever be delivered to the accept-loop
   thread — a worker parked in [Condition.wait] executes no OCaml and would
   otherwise swallow the signal without running its handler. *)
let with_shutdown_signals_blocked f =
  match Unix.sigprocmask Unix.SIG_BLOCK [ Sys.sigterm; Sys.sigint ] with
  | old ->
    Fun.protect
      ~finally:(fun () ->
        try ignore (Unix.sigprocmask Unix.SIG_SETMASK old)
        with Invalid_argument _ | Unix.Unix_error _ -> ())
      f
  | exception (Invalid_argument _ | Unix.Unix_error _) -> f ()

(* --- admission ---------------------------------------------------------------- *)

let enqueue t conn (env : P.envelope) job =
  let item =
    {
      jconn = conn;
      jid = env.P.id;
      job;
      deadline_ms = env.P.deadline_ms;
      enqueued_at = Unix.gettimeofday ();
    }
  in
  Mutex.lock t.qmutex;
  let decision =
    if t.draining then `Draining
    else if Queue.length t.queue >= t.cfg.queue_capacity then `Shed
    else begin
      conn.inflight <- conn.inflight + 1;
      t.unanswered <- t.unanswered + 1;
      Queue.add item t.queue;
      Condition.signal t.qcond;
      `Admitted
    end
  in
  Mutex.unlock t.qmutex;
  match decision with
  | `Admitted -> ()
  | `Draining ->
    Service.note_error t.service;
    send conn
      (P.frame_err ~id:env.P.id ~code:"draining"
         "server is draining; no new work accepted")
  | `Shed ->
    Service.note_shed t.service;
    send conn
      (P.frame_err ~id:env.P.id ~code:"shed"
         (Printf.sprintf "admission queue full (capacity %d)"
            t.cfg.queue_capacity))

(* --- scheduler domain ---------------------------------------------------------- *)

(* Counters only: every close happens in the accept-loop domain, which is
   the sole owner of [t.conns] — no fd is ever closed (and so recycled by
   the kernel) while another domain might still address it. *)
let job_done t conn =
  Mutex.lock t.qmutex;
  conn.inflight <- conn.inflight - 1;
  t.unanswered <- t.unanswered - 1;
  Mutex.unlock t.qmutex

let scheduler_loop t =
  let running = ref true in
  while !running do
    Mutex.lock t.qmutex;
    while Queue.is_empty t.queue && not t.draining do
      Condition.wait t.qcond t.qmutex
    done;
    let batch = ref [] in
    while Queue.length t.queue > 0 && List.length !batch < t.cfg.batch do
      batch := Queue.pop t.queue :: !batch
    done;
    let batch = List.rev !batch in
    if batch = [] && t.draining then running := false;
    Mutex.unlock t.qmutex;
    if batch <> [] then begin
      let now = Unix.gettimeofday () in
      (* Deadline check happens at dequeue: a job that already overstayed
         its queueing budget is answered without being evaluated. *)
      let expired, live =
        List.partition
          (fun item ->
            match item.deadline_ms with
            | None -> false
            | Some ms -> (now -. item.enqueued_at) *. 1000. > float_of_int ms)
          batch
      in
      List.iter
        (fun item ->
          Service.note_error t.service;
          send item.jconn
            (P.frame_err ~id:item.jid ~code:"deadline"
               "deadline exceeded while queued");
          job_done t item.jconn)
        expired;
      let live = Array.of_list live in
      let answers =
        Service.handle_batch t.service (Array.map (fun i -> i.job) live)
      in
      Array.iteri
        (fun i item ->
          (match answers.(i) with
          | Ok payload -> send item.jconn (P.frame_ok ~id:item.jid payload)
          | Error msg ->
            send item.jconn (P.frame_err ~id:item.jid ~code:"internal" msg));
          job_done t item.jconn)
        live
    end
  done

(* --- request dispatch ----------------------------------------------------------- *)

let queue_depth t =
  Mutex.lock t.qmutex;
  let d = Queue.length t.queue in
  Mutex.unlock t.qmutex;
  d

let handle_line t conn line =
  Service.note_request t.service;
  match P.parse line with
  | Error (id, msg) ->
    Service.note_error t.service;
    send conn (P.frame_err ~id ~code:"parse" msg)
  | Ok env -> (
    match env.P.body with
    | P.Ping -> send conn (P.frame_ok ~id:env.P.id "pong\n")
    | P.Stats ->
      send conn
        (P.frame_ok ~id:env.P.id
           (Service.stats_json t.service ~queue_depth:(queue_depth t)))
    | P.Drain ->
      send conn (P.frame_ok ~id:env.P.id "draining\n");
      Mutex.lock t.qmutex;
      t.draining <- true;
      Condition.broadcast t.qcond;
      Mutex.unlock t.qmutex
    | P.Job job -> enqueue t conn env job)

(* Split complete lines out of the connection buffer and dispatch each.
   Returns [false] if the connection must be torn down (oversized line). *)
let drain_buffer t conn =
  let ok = ref true in
  let continue = ref true in
  while !continue do
    let s = Buffer.contents conn.buf in
    match String.index_opt s '\n' with
    | Some i ->
      let line = String.sub s 0 i in
      let line =
        (* Tolerate CRLF clients. *)
        if String.length line > 0 && line.[String.length line - 1] = '\r' then
          String.sub line 0 (String.length line - 1)
        else line
      in
      Buffer.clear conn.buf;
      Buffer.add_substring conn.buf s (i + 1) (String.length s - i - 1);
      if line <> "" then handle_line t conn line
    | None ->
      if Buffer.length conn.buf > t.cfg.max_line then begin
        Service.note_request t.service;
        Service.note_error t.service;
        send conn
          (P.frame_err ~id:"-" ~code:"oversized"
             (Printf.sprintf "request line exceeds %d bytes" t.cfg.max_line));
        ok := false
      end;
      continue := false
  done;
  !ok

(* --- cache persistence ----------------------------------------------------------

   Best-effort on both ends: a daemon must come up without its cache file
   (first boot, deleted, corrupt — it is only a warm-start hint; every
   entry is re-derivable) and must not die for an unwritable dump path at
   teardown. Replay correctness never depends on the file: restored hits
   are verified against the canonical key like any other hit. *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let load_cache service = function
  | None -> ()
  | Some path ->
    (try ignore (Service.restore_cache service (read_file path))
     with Sys_error _ | End_of_file -> ())

let dump_cache_file t =
  match t.cfg.cache_file with
  | None -> ()
  | Some path -> (
    (* Write-then-rename so a crash mid-dump never truncates the previous
       dump, and a concurrent reader sees old bytes or new bytes, never a
       prefix. *)
    let tmp = path ^ ".tmp" in
    try
      let oc = open_out_bin tmp in
      (try
         output_string oc (Service.dump_cache t.service);
         close_out oc
       with e ->
         close_out_noerr oc;
         raise e);
      Sys.rename tmp path
    with Sys_error _ -> ())

(* --- accept loop ----------------------------------------------------------------- *)

let create cfg =
  match
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.setsockopt fd Unix.SO_REUSEADDR true;
       Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, cfg.port));
       Unix.listen fd 128
     with e ->
       close_quietly fd;
       raise e);
    let bound_port =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> p
      | Unix.ADDR_UNIX _ -> cfg.port
    in
    {
      cfg;
      listen_fd = fd;
      bound_port;
      service =
        (* Pool domains inherit a blocked mask: see
           [with_shutdown_signals_blocked]. *)
        with_shutdown_signals_blocked (fun () ->
            Service.create ~domains:cfg.domains ~cache_slots:cfg.cache_slots
              ~now:Unix.gettimeofday ());
      qmutex = Mutex.create ();
      qcond = Condition.create ();
      queue = Queue.create ();
      unanswered = 0;
      draining = false;
      conns = [];
    }
  with
  | t ->
    load_cache t.service t.cfg.cache_file;
    Ok t
  | exception Unix.Unix_error (err, fn, _) ->
    Error (Printf.sprintf "cannot listen on port %d: %s (%s)" cfg.port
             (Unix.error_message err) fn)

let port t = t.bound_port

let request_drain t =
  (* Callable from a signal handler: a plain flag write the loops poll.
     The condition broadcast is re-issued by the accept loop's next tick,
     so no lock is required here. *)
  t.draining <- true

let install_sigterm t =
  let handler = Sys.Signal_handle (fun _ -> request_drain t) in
  Sys.set_signal Sys.sigterm handler;
  Sys.set_signal Sys.sigint handler

(* Marking dead stops further reads; the fd itself is reaped by
   [sweep_dead] once the scheduler has answered everything in flight. *)
let teardown_conn conn = conn.dead <- true

let sweep_dead t =
  let reapable c =
    c.dead
    && begin
         Mutex.lock t.qmutex;
         let idle = c.inflight = 0 in
         Mutex.unlock t.qmutex;
         idle
       end
  in
  let reap, keep = List.partition reapable t.conns in
  List.iter (fun c -> close_quietly c.fd) reap;
  t.conns <- keep

let accept_tick t =
  match Unix.accept t.listen_fd with
  | fd, _addr ->
    let conn =
      { fd; buf = Buffer.create 256; wlock = Mutex.create (); inflight = 0;
        dead = false }
    in
    t.conns <- conn :: t.conns
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()

let read_tick t conn =
  let chunk = Bytes.create 4096 in
  match Unix.read conn.fd chunk 0 (Bytes.length chunk) with
  | 0 -> teardown_conn conn  (* EOF: truncated or finished client *)
  | len ->
    Buffer.add_subbytes conn.buf chunk 0 len;
    if not (drain_buffer t conn) then teardown_conn conn
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (_, _, _) -> teardown_conn conn

let finished t =
  Mutex.lock t.qmutex;
  let f = t.draining && Queue.is_empty t.queue && t.unanswered = 0 in
  Mutex.unlock t.qmutex;
  f

let run t =
  (* A peer that disappears mid-response must not kill the daemon: writes
     to a closed socket surface as EPIPE (handled in [send]) instead of a
     fatal SIGPIPE. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ | Sys_error _ -> ());
  let scheduler =
    with_shutdown_signals_blocked (fun () ->
        Domain.spawn (fun () -> scheduler_loop t))
  in
  let listening = ref true in
  while not (finished t) do
    sweep_dead t;
    (* Re-broadcast drain every tick: request_drain may have come from a
       signal handler that could not take the queue lock. *)
    if t.draining then begin
      Mutex.lock t.qmutex;
      Condition.broadcast t.qcond;
      Mutex.unlock t.qmutex;
      if !listening then begin
        close_quietly t.listen_fd;
        listening := false
      end
    end;
    let read_fds =
      (if !listening then [ t.listen_fd ] else [])
      @ List.filter_map
          (fun c -> if c.dead then None else Some c.fd)
          t.conns
    in
    match Unix.select read_fds [] [] 0.05 with
    | ready, _, _ ->
      List.iter
        (fun fd ->
          if !listening && fd = t.listen_fd then accept_tick t
          else
            match List.find_opt (fun c -> c.fd = fd) t.conns with
            | Some conn when not conn.dead -> read_tick t conn
            | _ -> ())
        ready
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done;
  Mutex.lock t.qmutex;
  Condition.broadcast t.qcond;
  Mutex.unlock t.qmutex;
  Domain.join scheduler;
  if !listening then close_quietly t.listen_fd;
  List.iter (fun c -> close_quietly c.fd) t.conns;
  t.conns <- [];
  dump_cache_file t;
  Service.shutdown t.service
