(** The [cold_serve] daemon: a TCP accept loop, a bounded admission queue
    and a scheduler domain feeding the {!Service} evaluation pool.

    {b Architecture.} The accept loop ([run]'s own domain) multiplexes the
    listening socket and every client connection with [Unix.select],
    assembles request lines, and answers the cheap verbs ([ping], [stats],
    [drain]) plus every error inline. Compute jobs ([synth], [ensemble],
    [survive]) are admitted to a bounded FIFO; a dedicated scheduler
    domain drains it in batches, fans each batch over the service's
    {!Cold_par.Par} pool, and writes the responses. Responses to one
    connection are serialized by a per-connection lock, so frames never
    interleave.

    {b Backpressure.} Admission is the only queue: when it holds
    [queue_capacity] jobs, further jobs are answered immediately and
    deterministically with [err <id> shed …] — the client knows within one
    round trip, nothing blocks, and the daemon's memory is bounded. A job
    that waited longer than its [deadline_ms] budget is answered
    [err <id> deadline …] at dequeue time instead of being evaluated.

    {b Drain.} A [drain] request — or SIGTERM once {!install_sigterm} is
    on — stops admission: the listener closes, queued jobs finish and are
    answered, new jobs get [err … draining], and {!run} returns after the
    scheduler exits. Nothing in flight is dropped.

    No exception escapes the accept loop: parse failures, validation
    failures, evaluation failures and peer disconnects are all turned
    into error frames or connection teardown. *)

type config = {
  port : int;  (** [0] picks an ephemeral port; see {!port}. *)
  domains : int;  (** Evaluation streams; [0] autodetects, default 1. *)
  queue_capacity : int;  (** Admission bound; default 64. *)
  batch : int;  (** Max jobs per scheduler batch; default 8. *)
  cache_slots : int;  (** Replay-cache slots; default 256, [0] disables. *)
  max_line : int;  (** Request-line byte budget; default 4096. *)
  cache_file : string option;
      (** Replay-cache persistence (default [None]): {!create} reloads the
          file if it exists and is well-formed ({!Service.restore_cache}),
          and {!run} dumps the cache to it — write-then-rename, so the
          previous dump is never truncated — after draining. Best-effort
          on both ends: a missing, corrupt or unwritable file never stops
          the daemon; the cache is a warm-start hint, every entry is
          re-derivable. Replayed hits return the dumped bytes verbatim, so
          restart replay stays bit-exact. *)
}

val default_config : config

type t

val create : config -> (t, string) result
(** Bind and listen on [127.0.0.1:port]. [Error msg] if the socket cannot
    be bound (port in use, permissions). *)

val port : t -> int
(** The bound port — the ephemeral one the kernel chose when
    [config.port = 0]. *)

val request_drain : t -> unit
(** Flip the drain flag from any domain or signal handler; the accept
    loop notices on its next tick. Idempotent. *)

val install_sigterm : t -> unit
(** Route SIGTERM (and SIGINT) to {!request_drain}. Call from
    [bin/cold_serve] only — tests drive drain over the wire instead. *)

val run : t -> unit
(** Serve until drained, then release every socket and the evaluation
    pool. Blocks the calling domain; spawn it on its own domain to run a
    client in the same process. *)
