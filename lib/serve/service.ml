module Prng = Cold_prng.Prng
module Context = Cold_context.Context
module Network = Cold_net.Network
module Par = Cold_par.Par
module P = Protocol

(* --- FNV-1a digests ----------------------------------------------------------

   The same hash family as Graph.fingerprint / Prng.seed_of_string, extended
   to fold whole 64-bit words so context fingerprints can absorb float bit
   patterns exactly. *)

let fnv_prime = 0x100000001B3L
let fnv_offset = 0xCBF29CE484222325L

let mix_byte h b = Int64.mul (Int64.logxor h (Int64.of_int b)) fnv_prime

let mix_int64 h x =
  let h = ref h in
  for shift = 0 to 7 do
    h :=
      mix_byte !h
        (Int64.to_int (Int64.logand (Int64.shift_right_logical x (8 * shift)) 0xFFL))
  done;
  !h

let mix_float h x = mix_int64 h (Int64.bits_of_float x)

let mix_string h s =
  String.fold_left (fun h c -> mix_byte h (Char.code c)) h s

(* Canonical fingerprint of a context: PoP count, every coordinate and
   every population, plus the gravity scale — exactly the data the design
   step consumes. Bit-identical contexts (same spec, same seed) fingerprint
   identically on every platform. *)
let context_fingerprint (ctx : Context.t) =
  let h = ref (mix_int64 fnv_offset (Int64.of_int (Context.n ctx))) in
  Array.iter
    (fun (p : Cold_geom.Point.t) ->
      h := mix_float !h p.Cold_geom.Point.x;
      h := mix_float !h p.Cold_geom.Point.y)
    ctx.Context.points;
  Array.iter
    (fun pop -> h := mix_float !h pop)
    (Cold_traffic.Gravity.populations ctx.Context.tm);
  mix_float !h ctx.Context.spec.Context.traffic_scale

(* --- replay cache ------------------------------------------------------------ *)

(* [key] is stored alongside the verification fields so a dumped cache can
   be re-slotted on reload without recomputing digests (the capacity — and
   with it the slot index — may differ between runs). *)
type entry = { key : int64; canon : string; ctx_fp : int64; payload : string }

type cache = {
  cmutex : Mutex.t;
  slots : entry option array;
  mutable entries : int;
  mutable hits : int;
  mutable misses : int;
}

let cache_create slots =
  {
    cmutex = Mutex.create ();
    slots = Array.make slots None;
    entries = 0;
    hits = 0;
    misses = 0;
  }

let slot_of cache key =
  let capacity = Array.length cache.slots in
  Int64.to_int (Int64.rem (Int64.logand key Int64.max_int) (Int64.of_int capacity))

(* The cache key triple: context fingerprint, canonical-params digest, seed
   (the seed also lives inside the canonical string; folding it explicitly
   keeps the key shape the documentation promises). *)
let cache_key ~ctx_fp ~canon ~seed =
  mix_int64 (mix_string (mix_int64 fnv_offset ctx_fp) canon) (Int64.of_int seed)

let cache_find cache ~key ~canon ~ctx_fp =
  if Array.length cache.slots = 0 then begin
    Mutex.lock cache.cmutex;
    cache.misses <- cache.misses + 1;
    Mutex.unlock cache.cmutex;
    None
  end
  else begin
    let slot = slot_of cache key in
    Mutex.lock cache.cmutex;
    let answer =
      match cache.slots.(slot) with
      | Some e when String.equal e.canon canon && Int64.equal e.ctx_fp ctx_fp ->
        cache.hits <- cache.hits + 1;
        Some e.payload
      | _ ->
        cache.misses <- cache.misses + 1;
        None
    in
    Mutex.unlock cache.cmutex;
    answer
  end

let cache_store cache ~key ~canon ~ctx_fp payload =
  if Array.length cache.slots > 0 then begin
    let slot = slot_of cache key in
    Mutex.lock cache.cmutex;
    if cache.slots.(slot) = None then cache.entries <- cache.entries + 1;
    cache.slots.(slot) <- Some { key; canon; ctx_fp; payload };
    Mutex.unlock cache.cmutex
  end

(* --- service state ------------------------------------------------------------ *)

type t = {
  pool : Par.t;
  cache : cache;
  now : unit -> float;
  mutex : Mutex.t;  (* counters + service-time reservoir *)
  mutable requests : int;
  mutable jobs : int;
  mutable sheds : int;
  mutable errors : int;
  mutable times : float array;  (* seconds; first [ntimes] are live *)
  mutable ntimes : int;
}

let create ?(domains = 1) ?(cache_slots = 256) ?(now = fun () -> 0.) () =
  if cache_slots < 0 then
    invalid_arg "Service.create: cache_slots must be >= 0";
  {
    pool = Par.create ~domains;
    cache = cache_create cache_slots;
    now;
    mutex = Mutex.create ();
    requests = 0;
    jobs = 0;
    sheds = 0;
    errors = 0;
    times = Array.make 64 0.;
    ntimes = 0;
  }

let parallelism t = Par.parallelism t.pool

let locked t f =
  Mutex.lock t.mutex;
  let r = f () in
  Mutex.unlock t.mutex;
  r

let note_request t = locked t (fun () -> t.requests <- t.requests + 1)
let note_shed t = locked t (fun () -> t.sheds <- t.sheds + 1)
let note_error t = locked t (fun () -> t.errors <- t.errors + 1)

let record_time t dt =
  locked t (fun () ->
      if t.ntimes = Array.length t.times then begin
        let bigger = Array.make (2 * t.ntimes) 0. in
        Array.blit t.times 0 bigger 0 t.ntimes;
        t.times <- bigger
      end;
      t.times.(t.ntimes) <- dt;
      t.ntimes <- t.ntimes + 1)

(* --- evaluation --------------------------------------------------------------- *)

let synthesis_config (d : P.design) =
  let pop = d.P.population in
  let saved = max 1 (pop / 5) in
  let crossover = max 1 (pop / 2) in
  let mutation = max 0 (pop - saved - crossover) in
  {
    (Cold.Synthesis.default_config ~params:d.P.params ()) with
    Cold.Synthesis.ga =
      {
        Cold.Ga.default_settings with
        Cold.Ga.population_size = pop;
        generations = d.P.generations;
        num_saved = saved;
        num_crossover = crossover;
        num_mutation = mutation;
      };
    heuristic_permutations = d.P.permutations;
    survivable = d.P.survivable;
    domains = 1;  (* request-level parallelism only: see Server *)
  }

(* Mirror Synthesis.synthesize exactly: one rng drives context generation
   and then the design, so served answers are bit-identical to CLI runs of
   the same (spec, seed). *)
let context_and_rng (d : P.design) =
  let rng = Prng.create d.P.seed in
  let ctx = Context.generate (Context.default_spec ~n:d.P.n) rng in
  (ctx, rng)

let buf_field buf ~first name value =
  if not first then Buffer.add_char buf ',';
  Buffer.add_string buf (Printf.sprintf "%S:%s" name value)

let json_of_fields fields =
  let buf = Buffer.create 256 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (name, value) -> buf_field buf ~first:(i = 0) name value)
    fields;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let jint = string_of_int
let jfloat = P.json_float

let synth_summary (d : P.design) (net : Network.t) =
  let g = net.Network.graph in
  let s = Cold_metrics.Summary.compute g in
  let b = Cold.Cost.evaluate_breakdown d.P.params net.Network.context g in
  json_of_fields
    [
      ("verb", "\"synth\"");
      ("n", jint d.P.n);
      ("seed", jint d.P.seed);
      ("edges", jint s.Cold_metrics.Summary.edges);
      ("total_link_length", jfloat (Network.total_link_length net));
      ("cost_existence", jfloat b.Cold.Cost.existence);
      ("cost_length", jfloat b.Cold.Cost.length);
      ("cost_bandwidth", jfloat b.Cold.Cost.bandwidth);
      ("cost_hub", jfloat b.Cold.Cost.hub);
      ("cost_total", jfloat b.Cold.Cost.total);
      ("average_degree", jfloat s.Cold_metrics.Summary.average_degree);
      ("max_degree", jint s.Cold_metrics.Summary.max_degree);
      ("hubs", jint s.Cold_metrics.Summary.hubs);
      ("leaves", jint s.Cold_metrics.Summary.leaves);
      ("diameter", jint s.Cold_metrics.Summary.diameter);
      ("average_shortest_path", jfloat s.Cold_metrics.Summary.average_shortest_path);
      ("cvnd", jfloat s.Cold_metrics.Summary.cvnd);
    ]

let compute_synth (d : P.design) format =
  let cfg = synthesis_config d in
  let ctx, rng = context_and_rng d in
  let net = Cold.Synthesis.design cfg ctx rng in
  match format with
  | P.Edges -> Cold_netio.Edge_list.to_string net.Network.graph
  | P.Gml -> Cold_netio.Gml.of_network net
  | P.Summary -> synth_summary d net

let compute_ensemble (d : P.design) count =
  let cfg = synthesis_config d in
  let spec = Context.default_spec ~n:d.P.n in
  let ens = Cold.Ensemble.generate cfg spec ~count ~seed:d.P.seed in
  let mean f =
    let sum =
      Array.fold_left
        (fun acc s -> acc +. f s)
        0. ens.Cold.Ensemble.summaries
    in
    sum /. float_of_int count
  in
  json_of_fields
    [
      ("verb", "\"ensemble\"");
      ("n", jint d.P.n);
      ("seed", jint d.P.seed);
      ("count", jint count);
      ("distinct", jint (Cold.Ensemble.distinct_topologies ens));
      ( "mean_edges",
        jfloat (mean (fun s -> float_of_int s.Cold_metrics.Summary.edges)) );
      ( "mean_average_degree",
        jfloat (mean (fun s -> s.Cold_metrics.Summary.average_degree)) );
      ( "mean_diameter",
        jfloat (mean (fun s -> float_of_int s.Cold_metrics.Summary.diameter)) );
      ( "mean_aspl",
        jfloat (mean (fun s -> s.Cold_metrics.Summary.average_shortest_path)) );
    ]

let compute_survive (d : P.design) ~steps ~fseed ~rates ~canon =
  let cfg = synthesis_config d in
  let ctx, rng = context_and_rng d in
  let net = Cold.Synthesis.design cfg ctx rng in
  let trace = Cold_sim.Failure.generate ~rates ~steps ctx ~seed:fseed in
  let reports = Cold_sim.Failure.evaluate ~domains:1 net trace in
  let summary =
    Cold_sim.Failure.summarize
      (Prng.create (Prng.seed_of_string canon))
      reports
  in
  let iv (i : Cold_stats.Bootstrap.interval) = i.Cold_stats.Bootstrap.point in
  json_of_fields
    [
      ("verb", "\"survive\"");
      ("n", jint d.P.n);
      ("seed", jint d.P.seed);
      ("steps", jint steps);
      ("fseed", jint fseed);
      ("availability", jfloat (iv summary.Cold_sim.Failure.availability));
      ( "availability_lo",
        jfloat summary.Cold_sim.Failure.availability.Cold_stats.Bootstrap.lo );
      ( "availability_hi",
        jfloat summary.Cold_sim.Failure.availability.Cold_stats.Bootstrap.hi );
      ("lost_traffic", jfloat (iv summary.Cold_sim.Failure.lost_traffic));
      ("worst_delivered", jfloat summary.Cold_sim.Failure.worst_delivered);
      ("mean_stretch", jfloat summary.Cold_sim.Failure.mean_stretch);
      ( "mean_disconnected_pairs",
        jfloat summary.Cold_sim.Failure.mean_disconnected_pairs );
      ("partitioned_steps", jint summary.Cold_sim.Failure.partitioned_steps);
      ("overloaded_steps", jint summary.Cold_sim.Failure.overloaded_steps);
    ]

let design_of_job = function
  | P.Synth { design; _ } | P.Ensemble { design; _ } | P.Survive { design; _ }
    -> design

let compute job ~canon =
  match job with
  | P.Synth { design; format } -> compute_synth design format
  | P.Ensemble { design; count } -> compute_ensemble design count
  | P.Survive { design; steps; fseed; rates } ->
    compute_survive design ~steps ~fseed ~rates ~canon

let respond t job =
  let t0 = t.now () in
  locked t (fun () -> t.jobs <- t.jobs + 1);
  let result =
    let d = design_of_job job in
    let canon = P.canonical_job job in
    (* The fingerprinted context is a throwaway: the computation re-derives
       its own from the same seed, so fingerprinting cannot perturb the
       stream a cached and an uncached run consume. *)
    let ctx, _rng = context_and_rng d in
    let ctx_fp = context_fingerprint ctx in
    let key = cache_key ~ctx_fp ~canon ~seed:d.P.seed in
    match cache_find t.cache ~key ~canon ~ctx_fp with
    | Some payload -> Ok payload
    | None -> (
      match compute job ~canon with
      | payload ->
        cache_store t.cache ~key ~canon ~ctx_fp payload;
        Ok payload
      | exception exn ->
        locked t (fun () -> t.errors <- t.errors + 1);
        Error (Printexc.to_string exn))
  in
  record_time t (t.now () -. t0);
  result

let handle_batch t jobs = Par.map_array t.pool (respond t) jobs

(* --- stats -------------------------------------------------------------------- *)

let cache_entries t =
  Mutex.lock t.cache.cmutex;
  let e = t.cache.entries in
  Mutex.unlock t.cache.cmutex;
  e

(* --- cache persistence ---------------------------------------------------------

   A dumped cache is a deterministic function of the cache contents: a
   one-line header, then one length-prefixed record per occupied slot in
   ascending slot order. Payloads are stored verbatim — restore hands back
   the exact bytes the original computation produced, so replay from a
   reloaded cache stays bit-exact. The record carries the full 64-bit key,
   so a restore into a different capacity just re-slots each entry. *)

let dump_cache t =
  let c = t.cache in
  Mutex.lock c.cmutex;
  let entries = List.filter_map Fun.id (Array.to_list c.slots) in
  Mutex.unlock c.cmutex;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "coldserve-cache 1 %d\n" (List.length entries));
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Printf.sprintf "%Lx %Lx %d %d\n" e.key e.ctx_fp
           (String.length e.canon) (String.length e.payload));
      Buffer.add_string buf e.canon;
      Buffer.add_string buf e.payload;
      Buffer.add_char buf '\n')
    entries;
  Buffer.contents buf

(* Internal early-exit for the restore parser; never escapes
   [restore_cache]. *)
exception Malformed of string

let restore_cache t s =
  let bad what = raise (Malformed what) in
  let len = String.length s in
  let pos = ref 0 in
  let restored = ref 0 in
  match
    let line () =
      match String.index_from_opt s !pos '\n' with
      | None -> bad "truncated"
      | Some i ->
        let l = String.sub s !pos (i - !pos) in
        pos := i + 1;
        l
    in
    let count =
      match String.split_on_char ' ' (line ()) with
      | [ "coldserve-cache"; "1"; c ] -> (
        match int_of_string_opt c with
        | Some c when c >= 0 -> c
        | _ -> bad "bad count")
      | _ -> bad "bad header"
    in
    for _ = 1 to count do
      match String.split_on_char ' ' (line ()) with
      | [ key; fp; clen; plen ] ->
        let parse_hex what h =
          match Int64.of_string_opt ("0x" ^ h) with
          | Some x -> x
          | None -> bad ("bad " ^ what)
        in
        let parse_len what l =
          match int_of_string_opt l with
          | Some n when n >= 0 -> n
          | _ -> bad ("bad " ^ what)
        in
        let key = parse_hex "key" key in
        let ctx_fp = parse_hex "fingerprint" fp in
        let clen = parse_len "canon length" clen in
        let plen = parse_len "payload length" plen in
        if len - !pos < clen + plen + 1 then bad "truncated record";
        let canon = String.sub s !pos clen in
        pos := !pos + clen;
        let payload = String.sub s !pos plen in
        pos := !pos + plen;
        if s.[!pos] <> '\n' then bad "missing record terminator";
        incr pos;
        if Array.length t.cache.slots > 0 then begin
          cache_store t.cache ~key ~canon ~ctx_fp payload;
          incr restored
        end
      | _ -> bad "bad record header"
    done
  with
  | () -> Ok !restored
  | exception Malformed what -> Error what

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(int_of_float (q *. float_of_int (n - 1)))

let stats_json t ~queue_depth =
  let requests, jobs, sheds, errors, times =
    locked t (fun () ->
        ( t.requests,
          t.jobs,
          t.sheds,
          t.errors,
          Array.sub t.times 0 t.ntimes ))
  in
  Array.sort Float.compare times;
  let hits, misses, entries, capacity =
    let c = t.cache in
    Mutex.lock c.cmutex;
    let r = (c.hits, c.misses, c.entries, Array.length c.slots) in
    Mutex.unlock c.cmutex;
    r
  in
  let fill =
    if capacity = 0 then 0.
    else float_of_int entries /. float_of_int capacity
  in
  json_of_fields
    [
      ("verb", "\"stats\"");
      ("requests", jint requests);
      ("jobs", jint jobs);
      ("hits", jint hits);
      ("misses", jint misses);
      ("sheds", jint sheds);
      ("errors", jint errors);
      ("cache_entries", jint entries);
      ("cache_capacity", jint capacity);
      ("cache_fill", jfloat fill);
      ("p50_ms", jfloat (1000. *. percentile times 0.50));
      ("p99_ms", jfloat (1000. *. percentile times 0.99));
      ("queue_depth", jint queue_depth);
      ("domains", jint (parallelism t));
    ]

let shutdown t = Par.shutdown t.pool
