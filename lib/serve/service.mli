(** The deterministic heart of [cold_serve]: request evaluation, the
    replay cache and the server-side counters — everything the daemon does
    except sockets.

    {b Determinism contract.} {!respond} is a pure function of its
    {!Protocol.job}: the answer is computed by the same seeded pipeline a
    CLI run would use ({!Cold.Synthesis}, {!Cold.Ensemble},
    {!Cold_sim.Failure}), every float in a JSON payload is rendered with
    {!Protocol.json_float}, and no timestamp, hostname or counter ever
    reaches a payload. A cache hit therefore returns the {e same bytes}
    the original computation produced, and a restarted daemon re-derives
    them identically — request-level replay is bit-exact, at any pool
    size.

    {b The request cache} is keyed by (context fingerprint, params digest,
    seed): the fingerprint is FNV-1a over the generated context's PoP
    coordinates and traffic populations (the same machinery as
    {!Cold_graph.Graph.fingerprint} / {!Cold.Fitness_cache}), the
    digest is FNV-1a over the canonical request key
    ({!Protocol.canonical_job}). Slots are direct-mapped like
    {!Cold.Fitness_cache}; every hit is confirmed against the stored
    canonical key, so a digest collision can never replay the wrong
    response. All cache and counter state is mutex-guarded — safe from
    every domain of the evaluation pool. *)

type t

val create :
  ?domains:int -> ?cache_slots:int -> ?now:(unit -> float) -> unit -> t
(** [create ()] builds a service. [domains] (default 1, [0] autodetects)
    sizes the {!Cold_par.Par} pool {!handle_batch} fans requests over.
    [cache_slots] (default 256; [0] disables) sizes the replay cache.
    [now] supplies the clock used {e only} for service-time statistics —
    never for payloads — so tests can inject a fake clock and the library
    itself stays wall-clock-free. *)

val parallelism : t -> int

val respond : t -> Protocol.job -> (string, string) result
(** [respond t job] answers one job from the cache or by computing it
    ([Ok payload]), updating hit/miss counters and service-time records.
    Computation runs outside the cache lock, so independent misses
    evaluate concurrently; two racing identical jobs both compute the
    same bytes and the second store is a no-op in effect. [Error msg]
    reports an unexpected evaluation failure (the caller frames it as
    [err … internal]); errors are never cached. *)

val handle_batch : t -> Protocol.job array -> (string, string) result array
(** [handle_batch t jobs] is [Array.map (respond t) jobs] fanned over the
    service's domain pool — slot [i] always holds job [i]'s answer, so
    scheduling order cannot leak into responses. *)

val note_request : t -> unit
(** Count one received request line (any verb, parseable or not). *)

val note_shed : t -> unit
(** Count one admission-queue overflow rejection. *)

val note_error : t -> unit
(** Count one error reply (parse, params, deadline, internal, …). *)

val cache_entries : t -> int
(** Occupied replay-cache slots. *)

val dump_cache : t -> string
(** Serialize every occupied replay-cache slot (ascending slot order) into
    a deterministic, restart-stable format: a versioned header line, then
    one length-prefixed record per entry carrying the 64-bit cache key,
    the context fingerprint, the canonical request key and the verbatim
    payload bytes. Same cache contents, same bytes. *)

val restore_cache : t -> string -> (int, string) result
(** [restore_cache t dump] re-inserts every record of a {!dump_cache}
    string into the cache, re-slotting by stored key (so the capacity may
    differ from the dumping run's), and returns [Ok n] with the number of
    entries inserted — [0] when the cache is disabled. Hits against
    restored entries return the original payload bytes verbatim,
    preserving the bit-exact replay contract across restarts.
    [Error what] describes a malformed dump; the cache retains whatever
    was inserted before the malformation was hit. *)

val stats_json : t -> queue_depth:int -> string
(** The [stats] payload: requests/jobs/hits/misses/sheds/errors counters,
    cache occupancy and fill fraction, p50/p99 service time (ms), current
    queue depth and pool size, as one flat JSON object. Not cached, not
    part of the determinism contract. *)

val shutdown : t -> unit
(** Stop the domain pool. Idempotent. *)
