module Prng = Cold_prng.Prng
module Dist = Cold_prng.Dist
module Context = Cold_context.Context
module Spatial = Cold_geom.Spatial
module Network = Cold_net.Network
module Survivability = Cold_net.Survivability
module Par = Cold_par.Par
module Bootstrap = Cold_stats.Bootstrap

type rates = {
  link_rate : float;
  node_rate : float;
  regional_rate : float;
  regional_radius : float;
}

let default_rates =
  { link_rate = 0.01; node_rate = 0.005; regional_rate = 0.02;
    regional_radius = 10.0 }

type event = {
  step : int;
  down_nodes : int array;
  down_links : (int * int) array;
}

type trace = { seed : int; rates : rates; n : int; events : event array }

let validate_rates r =
  let prob name p =
    if not (p >= 0.0 && p <= 1.0) then
      invalid_arg (Printf.sprintf "Failure: %s must be a probability" name)
  in
  prob "link_rate" r.link_rate;
  prob "node_rate" r.node_rate;
  prob "regional_rate" r.regional_rate;
  if not (r.regional_radius >= 0.0) then
    invalid_arg "Failure: regional_radius must be >= 0"

let generate ?(rates = default_rates) ~steps ctx ~seed =
  validate_rates rates;
  if steps < 0 then invalid_arg "Failure.generate: steps must be >= 0";
  let n = Context.n ctx in
  let spatial = Context.spatial ctx in
  let base = Prng.create seed in
  (* One independent child stream per step (split_at does not advance the
     base generator), so a step's events depend only on (seed, step): the
     schedule can be regenerated, truncated or extended without shifting
     any other step's draws. Within a step the draw order is fixed —
     potential links in lexicographic pair order, then PoPs ascending, then
     the regional cut — making the whole trace a pure function of
     (seed, rates, context). *)
  let events =
    Array.init steps (fun step ->
        let rng = Prng.split_at base step in
        let links = ref [] in
        for u = 0 to n - 1 do
          for v = u + 1 to n - 1 do
            if Dist.bernoulli rng ~p:rates.link_rate then
              links := (u, v) :: !links
          done
        done;
        let node_down = Array.make n false in
        for v = 0 to n - 1 do
          if Dist.bernoulli rng ~p:rates.node_rate then node_down.(v) <- true
        done;
        if n > 0 && Dist.bernoulli rng ~p:rates.regional_rate then begin
          (* Geographically correlated cut: a uniformly drawn epicentre PoP
             takes down itself and every PoP within the regional radius —
             one fibre-duct dig, one flooded metro area. *)
          let epicentre = Prng.int rng n in
          node_down.(epicentre) <- true;
          List.iter
            (fun j -> node_down.(j) <- true)
            (Spatial.within spatial epicentre ~radius:rates.regional_radius)
        end;
        let down_nodes = ref [] in
        for v = n - 1 downto 0 do
          if node_down.(v) then down_nodes := v :: !down_nodes
        done;
        {
          step;
          down_nodes = Array.of_list !down_nodes;
          down_links = Array.of_list (List.rev !links);
        })
  in
  { seed; rates; n; events }

let length trace = Array.length trace.events

let evaluate ?(domains = 1) (net : Network.t) trace =
  if Cold_graph.Graph.node_count net.Network.graph <> trace.n then
    invalid_arg "Failure.evaluate: trace size does not match network";
  Par.with_pool ~domains (fun pool ->
      Par.map_array pool
        (fun (e : event) ->
          Survivability.evaluate net
            ~down_nodes:(Array.to_list e.down_nodes)
            ~down_links:(Array.to_list e.down_links))
        trace.events)

type summary = {
  steps : int;
  availability : Bootstrap.interval;
  lost_traffic : Bootstrap.interval;
  mean_disconnected_pairs : float;
  mean_stretch : float;
  worst_delivered : float;
  partitioned_steps : int;
  overloaded_steps : int;
}

let summarize ?replicates rng (reports : Survivability.report array) =
  let steps = Array.length reports in
  if steps = 0 then invalid_arg "Failure.summarize: no reports";
  let delivered =
    Array.map (fun r -> r.Survivability.delivered_fraction) reports
  in
  let lost = Array.map (fun r -> r.Survivability.lost_fraction) reports in
  let mean xs = Array.fold_left ( +. ) 0.0 xs /. float_of_int steps in
  let count p = Array.fold_left (fun acc r -> if p r then acc + 1 else acc) 0 reports in
  {
    steps;
    availability = Bootstrap.mean_ci ?replicates rng delivered;
    lost_traffic = Bootstrap.mean_ci ?replicates rng lost;
    mean_disconnected_pairs =
      mean
        (Array.map
           (fun r -> float_of_int r.Survivability.disconnected_pairs)
           reports);
    mean_stretch = mean (Array.map (fun r -> r.Survivability.stretch) reports);
    worst_delivered = Array.fold_left Float.min infinity delivered;
    partitioned_steps =
      count (fun r -> r.Survivability.disconnected_pairs > 0);
    overloaded_steps = count (fun r -> r.Survivability.overloaded_links > 0);
  }

let pp_summary fmt s =
  Format.fprintf fmt
    "@[<v>steps: %d@ availability: %a@ lost traffic: %a@ mean disconnected \
     pairs: %.3f@ mean stretch: %.4f@ worst step delivered: %.4f@ \
     partitioned steps: %d@ overloaded steps: %d@]"
    s.steps Bootstrap.pp s.availability Bootstrap.pp s.lost_traffic
    s.mean_disconnected_pairs s.mean_stretch s.worst_delivered
    s.partitioned_steps s.overloaded_steps
