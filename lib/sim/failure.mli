(** Deterministic failure injection: seeded trace generation and replay.

    The paper (§8) argues synthesized topologies should be judged on how
    they degrade under component loss, not just on cost. This module
    generates {e failure traces} — immutable schedules of per-step failure
    sets — and replays them against a network through
    {!Cold_net.Survivability}.

    {b Rate model.} Each step draws independent failures from per-component
    rates: every {e potential} link (all n(n-1)/2 PoP pairs, so the same
    trace applies unchanged to any topology on the same context — failing an
    absent link is a no-op) fails with probability [link_rate]; every PoP
    with probability [node_rate]; and with probability [regional_rate] a
    geographically correlated cut fires — a uniformly drawn epicentre PoP
    takes down itself and every PoP within [regional_radius]
    ({!Cold_geom.Spatial.within}): one fibre-duct dig or regional outage.

    {b Determinism.} A trace is a pure function of (seed, rates, context):
    step [i] draws from the [i]-th {!Cold_prng.Prng.split_at} child of the
    seed, in a fixed order, so the same seed yields bit-identical traces
    however the schedule is consumed, and {!evaluate} — a pure per-step
    fan-out over an indexed {!Cold_par.Par} pool — returns bit-identical
    report arrays at any domain count. *)

type rates = {
  link_rate : float;  (** Per-step failure probability of each potential link. *)
  node_rate : float;  (** Per-step failure probability of each PoP. *)
  regional_rate : float;  (** Per-step probability of one regional cut. *)
  regional_radius : float;
      (** Radius of the correlated cut around its epicentre, in context
          coordinates (the default region is 50 × 50). *)
}

val default_rates : rates
(** link 0.01, node 0.005, regional 0.02 with radius 10. *)

type event = {
  step : int;
  down_nodes : int array;  (** Failed PoPs, ascending, deduplicated. *)
  down_links : (int * int) array;
      (** Failed potential links, [(u, v)] with [u < v], lexicographic. *)
}

type trace = {
  seed : int;
  rates : rates;
  n : int;  (** Number of PoPs of the generating context. *)
  events : event array;  (** One event per step; immutable by convention. *)
}

val generate :
  ?rates:rates -> steps:int -> Cold_context.Context.t -> seed:int -> trace
(** [generate ~steps ctx ~seed] draws a [steps]-step failure schedule.
    Raises [Invalid_argument] on rates outside [0, 1], a negative radius or
    negative [steps]. *)

val length : trace -> int

val evaluate :
  ?domains:int -> Cold_net.Network.t -> trace -> Cold_net.Survivability.report array
(** [evaluate net trace] replays the schedule: slot [i] of the result is
    the survivability report of step [i]. [?domains] (default 1; 0
    autodetects) fans steps across a {!Cold_par.Par} pool — results are
    bit-identical at every setting. Raises [Invalid_argument] if the trace
    was generated for a different PoP count. *)

type summary = {
  steps : int;
  availability : Cold_stats.Bootstrap.interval;
      (** Bootstrap CI of the mean per-step delivered fraction. *)
  lost_traffic : Cold_stats.Bootstrap.interval;
  mean_disconnected_pairs : float;
  mean_stretch : float;
  worst_delivered : float;  (** Delivered fraction of the worst step. *)
  partitioned_steps : int;
      (** Steps separating at least one pair of surviving PoPs. *)
  overloaded_steps : int;  (** Steps overloading at least one link. *)
}

val summarize :
  ?replicates:int ->
  Cold_prng.Prng.t ->
  Cold_net.Survivability.report array ->
  summary
(** [summarize rng reports] aggregates a replayed trace; the rng drives the
    bootstrap resampling (pass a fixed seed for reproducible intervals).
    Raises [Invalid_argument] on an empty report array. *)

val pp_summary : Format.formatter -> summary -> unit
