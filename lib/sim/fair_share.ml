module Tbl = Cold_util.Tbl

type flow = { id : int; links : (int * int) list }

let normalize_link (u, v) = (min u v, max u v)

let compare_link (u1, v1) (u2, v2) =
  match Int.compare u1 u2 with 0 -> Int.compare v1 v2 | c -> c

let allocate ~capacity flows =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if f.links = [] then invalid_arg "Fair_share.allocate: flow with empty route";
      if Hashtbl.mem seen f.id then invalid_arg "Fair_share.allocate: duplicate flow id";
      Hashtbl.add seen f.id ())
    flows;
  (* Remaining capacity per link and the unfrozen flows crossing it. *)
  let links = Hashtbl.create 64 in
  List.iter
    (fun f ->
      List.iter
        (fun l ->
          let l = normalize_link l in
          let c = capacity l in
          if c <= 0.0 then invalid_arg "Fair_share.allocate: non-positive capacity";
          if not (Hashtbl.mem links l) then Hashtbl.add links l (ref c, ref []))
        f.links)
    flows;
  List.iter
    (fun f ->
      List.iter
        (fun l ->
          let (_, fs) = Hashtbl.find links (normalize_link l) in
          if not (List.memq f !fs) then fs := f :: !fs)
        f.links)
    flows;
  let rates = Hashtbl.create 16 in
  let frozen f = Hashtbl.mem rates f.id in
  let remaining = ref (List.length flows) in
  while !remaining > 0 do
    (* Bottleneck link: smallest fair share among links with unfrozen flows.
       Sorted link order makes the tie-break (first strict minimum) a
       function of the link set, not of the table's insertion history. *)
    let best = ref None in
    Tbl.iter_sorted ~cmp:compare_link
      (fun l (cap, fs) ->
        let active = List.filter (fun f -> not (frozen f)) !fs in
        if active <> [] then begin
          let share = !cap /. float_of_int (List.length active) in
          match !best with
          | None -> best := Some (share, l, active)
          | Some (s, _, _) -> if share < s then best := Some (share, l, active)
        end)
      links;
    match !best with
    | None -> remaining := 0 (* flows with no shared link left: impossible here *)
    | Some (share, _, bottleneck_flows) ->
      (* Freeze the bottleneck's flows and charge every link they cross. *)
      List.iter
        (fun f ->
          Hashtbl.replace rates f.id share;
          decr remaining;
          List.iter
            (fun l ->
              let (cap, _) = Hashtbl.find links (normalize_link l) in
              cap := Float.max 0.0 (!cap -. share))
            f.links)
        bottleneck_flows
  done;
  List.sort
    (fun (i1, r1) (i2, r2) ->
      match Int.compare i1 i2 with 0 -> Float.compare r1 r2 | c -> c)
    (List.map (fun f -> (f.id, Hashtbl.find rates f.id)) flows)

let is_max_min ~capacity flows rates =
  let rate_of id = List.assoc id rates in
  let eps = 1e-6 in
  (* Per-link totals and maxima. *)
  let link_total = Hashtbl.create 64 in
  let link_max = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let r = rate_of f.id in
      List.iter
        (fun l ->
          let l = normalize_link l in
          Hashtbl.replace link_total l
            (r +. Option.value ~default:0.0 (Hashtbl.find_opt link_total l));
          Hashtbl.replace link_max l
            (Float.max r (Option.value ~default:0.0 (Hashtbl.find_opt link_max l))))
        f.links)
    flows;
  (* No link over capacity, and every flow has a saturated bottleneck where
     it is among the largest. *)
  let feasible =
    Tbl.fold_sorted ~cmp:compare_link
      (fun l total ok -> ok && total <= capacity l +. eps)
      link_total true
  in
  feasible
  && List.for_all
       (fun f ->
         let r = rate_of f.id in
         List.exists
           (fun l ->
             let l = normalize_link l in
             let total = Hashtbl.find link_total l in
             let mx = Hashtbl.find link_max l in
             total >= capacity l -. eps && r >= mx -. eps)
           f.links)
       flows
