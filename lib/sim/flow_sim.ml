module Dist = Cold_prng.Dist
module Graph = Cold_graph.Graph
module Tbl = Cold_util.Tbl
module Context = Cold_context.Context
module Gravity = Cold_traffic.Gravity
module Network = Cold_net.Network
module Capacity = Cold_net.Capacity

type config = {
  load : float;
  mean_flow_size : float;
  flow_limit : int;
  warmup : int;
}

type stats = {
  completed : int;
  mean_fct : float;
  p95_fct : float;
  mean_throughput : float;
  peak_active : int;
  sim_time : float;
}

let default_config =
  { load = 1.0; mean_flow_size = 100.0; flow_limit = 500; warmup = 50 }

type active_flow = {
  id : int;
  links : (int * int) list;
  mutable remaining : float;
  mutable rate : float;
  born : float;
  size : float;
}

let path_links net s d =
  let rec pairs = function
    | [] | [ _ ] -> []
    | u :: (v :: _ as rest) -> (min u v, max u v) :: pairs rest
  in
  pairs (Network.path net s d)

let run config (net : Network.t) rng =
  if config.load <= 0.0 || config.mean_flow_size <= 0.0 then
    invalid_arg "Flow_sim.run: load and mean_flow_size must be positive";
  if config.flow_limit <= 0 || config.warmup < 0 || config.warmup >= config.flow_limit
  then invalid_arg "Flow_sim.run: need 0 <= warmup < flow_limit";
  let ctx = net.Network.context in
  let tm = ctx.Context.tm in
  let n = Graph.node_count net.Network.graph in
  let total_demand = Gravity.total tm in
  if total_demand <= 0.0 then invalid_arg "Flow_sim.run: network carries no traffic";
  (* Poisson arrivals: offered volume per unit time = load × total demand, so
     arrival rate = that / mean flow size. *)
  let arrival_rate = config.load *. total_demand /. config.mean_flow_size in
  (* Pair sampler: weights = directed demands. *)
  let pairs = ref [] in
  for s = n - 1 downto 0 do
    for d = n - 1 downto 0 do
      if s <> d && Gravity.demand tm s d > 0.0 then
        pairs := ((s, d), Gravity.demand tm s d) :: !pairs
    done
  done;
  let pair_array = Array.of_list !pairs in
  let weights = Array.map snd pair_array in
  let capacity l = Capacity.capacity net.Network.capacities (fst l) (snd l) in
  (* Event loop. *)
  let now = ref 0.0 in
  let next_arrival = ref (Dist.exponential rng ~mean:(1.0 /. arrival_rate)) in
  let active : (int, active_flow) Hashtbl.t = Hashtbl.create 64 in
  let next_id = ref 0 in
  let completed = ref 0 in
  let fcts = ref [] in
  let throughputs = ref [] in
  let peak_active = ref 0 in
  let reallocate () =
    (* Sorted by flow id: Fair_share.allocate is order-invariant, but the
       list handed to it must still not leak the active-table's hash
       layout. *)
    let flows =
      Tbl.fold_sorted ~cmp:Int.compare
        (fun _ f acc -> { Fair_share.id = f.id; links = f.links } :: acc)
        active []
    in
    if flows <> [] then begin
      let rates = Fair_share.allocate ~capacity flows in
      List.iter (fun (id, r) -> (Hashtbl.find active id).rate <- r) rates
    end
  in
  let advance_to t =
    let dt = t -. !now in
    Hashtbl.iter (fun _ f -> f.remaining <- f.remaining -. (f.rate *. dt)) active;
    now := t
  in
  let next_completion () =
    (* Ascending flow-id order: simultaneous completions (exact float tie)
       resolve to the lowest id instead of whichever binding the hash
       layout presented first. *)
    Tbl.fold_sorted ~cmp:Int.compare
      (fun _ f acc ->
        if f.rate <= 0.0 then acc
        else begin
          let t = !now +. (f.remaining /. f.rate) in
          match acc with
          | None -> Some (t, f)
          | Some (tb, _) -> if t < tb then Some (t, f) else acc
        end)
      active None
  in
  while !completed < config.flow_limit do
    match next_completion () with
    | Some (t, f) when t <= !next_arrival ->
      advance_to t;
      Hashtbl.remove active f.id;
      incr completed;
      if !completed > config.warmup then begin
        let fct = t -. f.born in
        fcts := fct :: !fcts;
        throughputs := (f.size /. Float.max 1e-12 fct) :: !throughputs
      end;
      reallocate ()
    | _ ->
      advance_to !next_arrival;
      let ((s, d), _) = pair_array.(Dist.choose_weighted rng weights) in
      let size = Dist.exponential rng ~mean:config.mean_flow_size in
      let links = path_links net s d in
      (* Degenerate same-location pairs route to themselves: skip. *)
      if links <> [] then begin
        let f =
          { id = !next_id; links; remaining = size; rate = 0.0; born = !now; size }
        in
        incr next_id;
        Hashtbl.replace active f.id f;
        peak_active := max !peak_active (Hashtbl.length active);
        reallocate ()
      end;
      next_arrival := !now +. Dist.exponential rng ~mean:(1.0 /. arrival_rate)
  done;
  let fct_array = Array.of_list !fcts in
  let tp_array = Array.of_list !throughputs in
  let mean xs =
    if Array.length xs = 0 then nan
    else Array.fold_left ( +. ) 0.0 xs /. float_of_int (Array.length xs)
  in
  let p95 xs =
    if Array.length xs = 0 then nan
    else begin
      let sorted = Array.copy xs in
      Array.sort Float.compare sorted;
      sorted.(min (Array.length sorted - 1)
                (int_of_float (0.95 *. float_of_int (Array.length sorted))))
    end
  in
  {
    completed = !completed;
    mean_fct = mean fct_array;
    p95_fct = p95 fct_array;
    mean_throughput = mean tp_array;
    peak_active = !peak_active;
    sim_time = !now;
  }
