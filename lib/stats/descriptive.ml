let check xs name =
  if Array.length xs = 0 then invalid_arg ("Descriptive." ^ name ^ ": empty sample")

let sum xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  check xs "mean";
  sum xs /. float_of_int (Array.length xs)

let variance xs =
  check xs "variance";
  let n = Array.length xs in
  if n = 1 then 0.0
  else begin
    let m = mean xs in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    ss /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let coefficient_of_variation xs =
  check xs "coefficient_of_variation";
  let m = mean xs in
  if Float.equal m 0.0 then 0.0
  else begin
    let n = float_of_int (Array.length xs) in
    let ss = Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (ss /. n) /. m
  end

let min_value xs =
  check xs "min_value";
  Array.fold_left Float.min xs.(0) xs

let max_value xs =
  check xs "max_value";
  Array.fold_left Float.max xs.(0) xs

let quantile xs q =
  check xs "quantile";
  if q < 0.0 || q > 1.0 then invalid_arg "Descriptive.quantile: q out of range";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  let h = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor h) in
  let hi = min (lo + 1) (n - 1) in
  let frac = h -. float_of_int lo in
  ((1.0 -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let median xs = quantile xs 0.5
