type t = { lo : float; hi : float; counts : int array; total : int }

let create ~lo ~hi ~bins xs =
  if bins < 1 then invalid_arg "Histogram.create: bins must be positive";
  if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
  let counts = Array.make bins 0 in
  let w = (hi -. lo) /. float_of_int bins in
  Array.iter
    (fun x ->
      let i = int_of_float (Float.floor ((x -. lo) /. w)) in
      let i = max 0 (min (bins - 1) i) in
      counts.(i) <- counts.(i) + 1)
    xs;
  { lo; hi; counts; total = Array.length xs }

let bin_width t = (t.hi -. t.lo) /. float_of_int (Array.length t.counts)

let fraction t i =
  if i < 0 || i >= Array.length t.counts then invalid_arg "Histogram.fraction";
  if t.total = 0 then 0.0 else float_of_int t.counts.(i) /. float_of_int t.total

let cdf xs =
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  fun x ->
    if n = 0 then 0.0
    else begin
      (* Binary search for the last index <= x. *)
      let rec search lo hi =
        if lo > hi then lo
        else begin
          let mid = (lo + hi) / 2 in
          if sorted.(mid) <= x then search (mid + 1) hi else search lo (mid - 1)
        end
      in
      float_of_int (search 0 (n - 1)) /. float_of_int n
    end

let fraction_above xs t =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let c = Array.fold_left (fun acc x -> if x > t then acc + 1 else acc) 0 xs in
    float_of_int c /. float_of_int n
  end

let pp_ascii ?(width = 50) fmt t =
  let maxc = Array.fold_left max 1 t.counts in
  let w = bin_width t in
  Array.iteri
    (fun i c ->
      let bar = String.make (c * width / maxc) '#' in
      Format.fprintf fmt "[%6.2f, %6.2f) %5d %s@."
        (t.lo +. (float_of_int i *. w))
        (t.lo +. (float_of_int (i + 1) *. w))
        c bar)
    t.counts
