type fit = { slope : float; intercept : float; r_squared : float }

let linear points =
  let n = Array.length points in
  if n < 2 then invalid_arg "Regression.linear: need at least 2 points";
  let fn = float_of_int n in
  let sx = Array.fold_left (fun a (x, _) -> a +. x) 0.0 points in
  let sy = Array.fold_left (fun a (_, y) -> a +. y) 0.0 points in
  let sxx = Array.fold_left (fun a (x, _) -> a +. (x *. x)) 0.0 points in
  let sxy = Array.fold_left (fun a (x, y) -> a +. (x *. y)) 0.0 points in
  let denom = (fn *. sxx) -. (sx *. sx) in
  if Float.equal denom 0.0 then invalid_arg "Regression.linear: zero x-variance";
  let slope = ((fn *. sxy) -. (sx *. sy)) /. denom in
  let intercept = (sy -. (slope *. sx)) /. fn in
  let mean_y = sy /. fn in
  let ss_tot = Array.fold_left (fun a (_, y) -> a +. ((y -. mean_y) ** 2.0)) 0.0 points in
  let ss_res =
    Array.fold_left
      (fun a (x, y) ->
        let e = y -. ((slope *. x) +. intercept) in
        a +. (e *. e))
      0.0 points
  in
  let r_squared = if Float.equal ss_tot 0.0 then 1.0 else 1.0 -. (ss_res /. ss_tot) in
  { slope; intercept; r_squared }

let power_law points ~exponent ~coefficient =
  Array.iter
    (fun (x, y) ->
      if x <= 0.0 || y <= 0.0 then
        invalid_arg "Regression.power_law: coordinates must be positive")
    points;
  let logged = Array.map (fun (x, y) -> (log x, log y)) points in
  let fit = linear logged in
  exponent := fit.slope;
  coefficient := exp fit.intercept;
  fit.r_squared
