(* The one blessed raw Hashtbl.fold: every other module gets ordering by
   going through the sort below. The [hashtbl-iteration-order] rule exempts
   exactly this file (see lib/lint/rules.ml). *)

let sorted_bindings ~cmp tbl =
  (* The rev restores Hashtbl.fold's presentation order (consing reversed it),
     so duplicate keys really are most-recent-first before the stable sort. *)
  let raw = List.rev (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []) in
  (* Stable sort: bindings of equal keys keep Hashtbl.fold's documented
     most-recent-first order, so the result is a pure function of the
     table's contents. *)
  List.stable_sort (fun (k1, _) (k2, _) -> cmp k1 k2) raw

let sorted_keys ~cmp tbl = List.map fst (sorted_bindings ~cmp tbl)

let iter_sorted ~cmp f tbl =
  List.iter (fun (k, v) -> f k v) (sorted_bindings ~cmp tbl)

let fold_sorted ~cmp f tbl init =
  List.fold_left (fun acc (k, v) -> f k v acc) init (sorted_bindings ~cmp tbl)
