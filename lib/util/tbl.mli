(** Deterministic iteration over [Hashtbl.t].

    [Hashtbl.iter]/[Hashtbl.fold] present bindings in an unspecified order
    that depends on the key hashes and on insertion history. Any code path
    that feeds such an iteration into an accumulator, a list, or an output
    channel makes its result depend on how the table happened to be built —
    exactly the class of silent nondeterminism COLD's reproducibility
    contract forbids (and that the [hashtbl-iteration-order] lint rule
    flags). These wrappers iterate in a caller-supplied canonical key
    order; they are the lint-blessed replacement for raw table iteration.

    All functions snapshot the bindings first, so the callback may mutate
    the table freely. Cost is O(n log n) in the number of bindings — the
    sites that need determinism are never hot enough for this to matter.

    For tables with duplicate keys (added via [Hashtbl.add]), bindings of
    the same key appear most-recent-first, matching [Hashtbl.fold]'s
    documented per-key order; the sort is stable, so the overall order is
    still fully determined by the table's contents. *)

val sorted_bindings : cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> ('k * 'v) list
(** All bindings sorted by key under [cmp]. *)

val sorted_keys : cmp:('k -> 'k -> int) -> ('k, 'v) Hashtbl.t -> 'k list
(** All keys (duplicates included) sorted under [cmp]. *)

val iter_sorted :
  cmp:('k -> 'k -> int) -> ('k -> 'v -> unit) -> ('k, 'v) Hashtbl.t -> unit
(** [iter_sorted ~cmp f tbl] applies [f] to every binding in ascending key
    order. *)

val fold_sorted :
  cmp:('k -> 'k -> int) ->
  ('k -> 'v -> 'acc -> 'acc) ->
  ('k, 'v) Hashtbl.t ->
  'acc ->
  'acc
(** [fold_sorted ~cmp f tbl init] folds over the bindings in ascending key
    order. *)
