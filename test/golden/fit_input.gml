graph [
  label "network"
  node [
    id 0
    graphics [
      x 39.015099
      y 3.429278
    ]
  ]
  node [
    id 1
    graphics [
      x 11.027118
      y 9.871004
    ]
  ]
  node [
    id 2
    graphics [
      x 4.322934
      y 4.272647
    ]
  ]
  node [
    id 3
    graphics [
      x 31.673897
      y 11.419348
    ]
  ]
  node [
    id 4
    graphics [
      x 6.368860
      y 32.898886
    ]
  ]
  node [
    id 5
    graphics [
      x 24.234687
      y 18.665330
    ]
  ]
  node [
    id 6
    graphics [
      x 12.602568
      y 35.639340
    ]
  ]
  node [
    id 7
    graphics [
      x 16.939802
      y 45.209675
    ]
  ]
  edge [
    source 0
    target 3
    value 10.850552
    capacity 633.72
  ]
  edge [
    source 1
    target 2
    value 8.734282
    capacity 138.09
  ]
  edge [
    source 1
    target 5
    value 15.867578
    capacity 224.62
  ]
  edge [
    source 3
    target 5
    value 10.384898
    capacity 1150.83
  ]
  edge [
    source 4
    target 6
    value 6.809494
    capacity 3081.26
  ]
  edge [
    source 5
    target 6
    value 20.577250
    capacity 3895.60
  ]
  edge [
    source 6
    target 7
    value 10.507278
    capacity 2686.41
  ]
]
