let hits = ref 0

let bump x =
  incr hits;
  x

let crunch pool xs = Par.map_array pool bump xs
