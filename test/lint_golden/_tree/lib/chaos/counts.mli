val bump : int -> int
val crunch : 'a -> int array -> int array
