let scale x = x *. Noise.jitter ()
