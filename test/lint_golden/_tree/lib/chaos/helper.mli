val scale : float -> float
