let m = Mutex.create ()

let grab () = Mutex.lock m
