val grab : unit -> unit
