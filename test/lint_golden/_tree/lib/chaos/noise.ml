(* Planted nondeterminism source: the golden test pins the chain report. *)
let jitter () = Random.float 1.0
