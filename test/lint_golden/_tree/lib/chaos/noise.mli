val jitter : unit -> float
