let task x = Helper.scale x

let run pool xs = Par.map_array pool task xs
