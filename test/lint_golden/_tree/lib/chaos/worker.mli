val task : float -> float
val run : 'a -> float array -> float array
